// Prototype spins up a small QSA grid of REAL TCP peers on loopback — the
// network prototype the paper names as future work (§6) — and aggregates a
// streaming session across it: discovery fan-out, probing with measured
// RTTs, distributed hop-by-hop Φ selection, and reservations that expire
// with the session.
//
// Run with:
//
//	go run ./examples/prototype
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/netproto"
	"repro/internal/qos"
	"repro/internal/service"
)

func main() {
	// Six peers: a mix of strong and weak hosts.
	var peers []*netproto.Peer
	for i := 0; i < 6; i++ {
		cpu := 400.0
		if i%2 == 1 {
			cpu = 120
		}
		p, err := netproto.Start(netproto.Config{Listen: "127.0.0.1:0", CPU: cpu, Memory: cpu})
		if err != nil {
			log.Fatal(err)
		}
		defer p.Close()
		peers = append(peers, p)
		if i > 0 {
			if err := p.Join(peers[0].Addr()); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("peer %d up at %s (cpu=%g)\n", i, p.Addr(), cpu)
	}

	// Register a two-component application on several providers.
	source := &service.Instance{
		ID: "camfeed/mpeg", Service: "camfeed",
		Qin:     qos.MustVector(qos.Sym("media", "cam")),
		Qout:    qos.MustVector(qos.Sym("format", "MPEG"), qos.Range("fps", 22, 28)),
		R:       []float64{60, 60},
		OutKbps: 80,
	}
	mixer := &service.Instance{
		ID: "mixer/std", Service: "mixer",
		Qin:     qos.MustVector(qos.Sym("format", "MPEG"), qos.Range("fps", 0, 30)),
		Qout:    qos.MustVector(qos.Sym("format", "MPEG"), qos.Range("fps", 22, 28)),
		R:       []float64{40, 40},
		OutKbps: 80,
	}
	for _, i := range []int{0, 1, 2} {
		must(peers[i].Provide(source))
	}
	for _, i := range []int{2, 3, 4} {
		must(peers[i].Provide(mixer))
	}

	// Peer 5 is the user: aggregate over actual sockets.
	fmt.Println("\naggregating camfeed → mixer at ≥20 fps over TCP ...")
	plan, err := peers[5].Aggregate(
		[]service.Name{"camfeed", "mixer"},
		qos.MustVector(qos.Range("fps", 20, 1e9)),
		2*time.Second,
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session %s admitted (cost %.4f):\n", plan.SessionID, plan.Cost)
	for i := range plan.Instances {
		fmt.Printf("  hop %d: %-14s on %s\n", i, plan.Instances[i], plan.Peers[i])
	}

	for i, p := range peers {
		if p.ActiveSessions() > 0 {
			av := p.Available()
			fmt.Printf("peer %d holds a reservation (available now %v)\n", i, av)
		}
	}

	fmt.Println("\nwaiting for the session to expire ...")
	time.Sleep(2500 * time.Millisecond)
	leaked := false
	for i, p := range peers {
		if p.ActiveSessions() != 0 {
			fmt.Printf("peer %d still holds a reservation!\n", i)
			leaked = true
		}
	}
	if !leaked {
		fmt.Println("all reservations released — the grid is idle again.")
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
