// Quickstart: build a tiny P2P grid, register a two-component application
// (a media source feeding a player), and let QSA aggregate it with QoS
// guarantees.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	qsa "repro"
)

func main() {
	grid, err := qsa.New(qsa.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// A handful of peers: some beefy servers, some laptops, and the user.
	var peers []qsa.PeerID
	for i := 0; i < 8; i++ {
		cap := 1000.0 // server-class
		if i%2 == 1 {
			cap = 150 // laptop-class
		}
		p, err := grid.AddPeer(cap, cap)
		if err != nil {
			log.Fatal(err)
		}
		peers = append(peers, p)
	}
	user := peers[7]

	// Two instances of the "source" service with different output QoS, and
	// one player. QSA's composition tier must pick a QoS-consistent pair.
	sourceHD := qsa.Instance{
		ID: "source/hd", Service: "source",
		Input:  qsa.QoS{qsa.Sym("format", "RAW")},
		Output: qsa.QoS{qsa.Sym("format", "MPEG"), qsa.Range("fps", 25, 30)},
		CPU:    120, Memory: 120, Kbps: 90,
	}
	sourceSD := qsa.Instance{
		ID: "source/sd", Service: "source",
		Input:  qsa.QoS{qsa.Sym("format", "RAW")},
		Output: qsa.QoS{qsa.Sym("format", "MPEG"), qsa.Range("fps", 12, 15)},
		CPU:    40, Memory: 40, Kbps: 30,
	}
	// Two player instances with different accepted input rates and output
	// quality — the paper's "real player vs windows media player" style
	// instance diversity.
	playerHD := qsa.Instance{
		ID: "player/hd", Service: "player",
		Input:  qsa.QoS{qsa.Sym("format", "MPEG"), qsa.Range("fps", 20, 40)},
		Output: qsa.QoS{qsa.Sym("format", "SCREEN"), qsa.Range("fps", 20, 30)},
		CPU:    90, Memory: 90, Kbps: 60,
	}
	playerSD := qsa.Instance{
		ID: "player/sd", Service: "player",
		Input:  qsa.QoS{qsa.Sym("format", "MPEG"), qsa.Range("fps", 0, 19)},
		Output: qsa.QoS{qsa.Sym("format", "SCREEN"), qsa.Range("fps", 12, 19)},
		CPU:    30, Memory: 30, Kbps: 20,
	}
	// Replicate each instance on several provider peers — the redundancy
	// QSA exploits.
	for _, p := range peers[:4] {
		must(grid.Provide(p, sourceHD))
		must(grid.Provide(p, sourceSD))
	}
	for _, p := range peers[4:7] {
		must(grid.Provide(p, playerHD))
		must(grid.Provide(p, playerSD))
	}

	// A low-demand request: any source qualifies; QCS picks the one with
	// the smallest aggregated resource footprint (the SD source).
	plan, err := grid.Aggregate(user, qsa.Request{
		Path:     []string{"source", "player"},
		MinQoS:   qsa.QoS{qsa.Range("fps", 10, 1e9)},
		Duration: 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("low-fps request:")
	printPlan(grid, plan)

	// A demanding request: only the HD source sustains ≥ 20 fps.
	plan2, err := grid.Aggregate(user, qsa.Request{
		Path:     []string{"source", "player"},
		MinQoS:   qsa.QoS{qsa.Range("fps", 20, 1e9)},
		Duration: 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nhigh-fps request:")
	printPlan(grid, plan2)

	// Drive the virtual clock past the session durations.
	grid.Advance(31)
	st, _ := grid.Status(plan.SessionID)
	st2, _ := grid.Status(plan2.SessionID)
	fmt.Printf("\nafter 31 minutes: session %d is %s, session %d is %s\n",
		plan.SessionID, st, plan2.SessionID, st2)
}

func printPlan(grid *qsa.Grid, plan *qsa.Plan) {
	for i, inst := range plan.Instances {
		cpu, mem, _ := grid.Available(plan.Peers[i])
		fmt.Printf("  hop %d: %-12s on peer %d (available after reservation: cpu=%g mem=%g)\n",
			i, inst, plan.Peers[i], cpu, mem)
	}
	fmt.Printf("  aggregated path cost: %.4f\n", plan.Cost)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
