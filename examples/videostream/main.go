// Videostream reproduces the paper's motivating scenario (§3.2): the user
// names the abstract service path
//
//	video server → Chinese-to-English translator → image enhancement →
//	video player
//
// and QSA aggregates it across the grid. Each abstract service has several
// instances with different Qin/Qout — codecs and subtitle languages — so
// the composition tier has to thread a consistent chain: the chosen
// translator must accept the server's codec and emit what the enhancer
// accepts, and so on up to the user's QoS requirement.
//
// Run with:
//
//	go run ./examples/videostream
package main

import (
	"fmt"
	"log"

	qsa "repro"
)

func main() {
	grid, err := qsa.New(qsa.Config{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	var peers []qsa.PeerID
	for i := 0; i < 20; i++ {
		p, err := grid.AddPeer(800, 800)
		if err != nil {
			log.Fatal(err)
		}
		peers = append(peers, p)
	}
	user := peers[19]

	// The catalog. The "lang" dimension tracks the subtitle language
	// through the chain; "format" tracks the codec.
	instances := []qsa.Instance{
		// Video servers: one MPEG source and one AVI source, Chinese subs.
		{ID: "server/mpeg", Service: "video-server",
			Input:  qsa.QoS{qsa.Sym("media", "disk")},
			Output: qsa.QoS{qsa.Sym("format", "MPEG"), qsa.Sym("lang", "zh"), qsa.Range("fps", 22, 26)},
			CPU:    60, Memory: 80, Kbps: 80},
		{ID: "server/avi", Service: "video-server",
			Input:  qsa.QoS{qsa.Sym("media", "disk")},
			Output: qsa.QoS{qsa.Sym("format", "AVI"), qsa.Sym("lang", "zh"), qsa.Range("fps", 22, 26)},
			CPU:    50, Memory: 70, Kbps: 90},
		// Translators: one per codec; both turn zh subtitles into en.
		{ID: "cn2en/mpeg", Service: "cn2en-translator",
			Input:  qsa.QoS{qsa.Sym("format", "MPEG"), qsa.Sym("lang", "zh"), qsa.Range("fps", 0, 30)},
			Output: qsa.QoS{qsa.Sym("format", "MPEG"), qsa.Sym("lang", "en"), qsa.Range("fps", 22, 26)},
			CPU:    90, Memory: 60, Kbps: 80},
		{ID: "cn2en/avi", Service: "cn2en-translator",
			Input:  qsa.QoS{qsa.Sym("format", "AVI"), qsa.Sym("lang", "zh"), qsa.Range("fps", 0, 30)},
			Output: qsa.QoS{qsa.Sym("format", "AVI"), qsa.Sym("lang", "en"), qsa.Range("fps", 22, 26)},
			CPU:    120, Memory: 70, Kbps: 90},
		// Image enhancement: MPEG only — this forces QCS away from the
		// (individually cheaper) AVI chain.
		{ID: "enhance/mpeg", Service: "image-enhancer",
			Input:  qsa.QoS{qsa.Sym("format", "MPEG"), qsa.Sym("lang", "en"), qsa.Range("fps", 0, 30)},
			Output: qsa.QoS{qsa.Sym("format", "MPEG"), qsa.Sym("lang", "en"), qsa.Range("fps", 22, 26)},
			CPU:    100, Memory: 100, Kbps: 80},
		// Players.
		{ID: "player/real", Service: "video-player",
			Input:  qsa.QoS{qsa.Sym("format", "MPEG"), qsa.Sym("lang", "en"), qsa.Range("fps", 0, 30)},
			Output: qsa.QoS{qsa.Sym("screen", "yes"), qsa.Sym("lang", "en"), qsa.Range("fps", 22, 26)},
			CPU:    40, Memory: 50, Kbps: 60},
		{ID: "player/wmp", Service: "video-player",
			Input:  qsa.QoS{qsa.Sym("format", "AVI"), qsa.Sym("lang", "en"), qsa.Range("fps", 0, 30)},
			Output: qsa.QoS{qsa.Sym("screen", "yes"), qsa.Sym("lang", "en"), qsa.Range("fps", 22, 26)},
			CPU:    35, Memory: 45, Kbps: 55},
	}
	// Spread providers: each instance on 4 peers.
	for i, inst := range instances {
		for j := 0; j < 4; j++ {
			if err := grid.Provide(peers[(i*3+j*5)%18], inst); err != nil {
				log.Fatal(err)
			}
		}
	}

	path := []string{"video-server", "cn2en-translator", "image-enhancer", "video-player"}
	plan, err := grid.Aggregate(user, qsa.Request{
		Path:     path,
		MinQoS:   qsa.QoS{qsa.Sym("lang", "en"), qsa.Range("fps", 20, 1e9)},
		Duration: 45,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("aggregated video delivery (English subtitles, ≥20 fps):")
	for i, inst := range plan.Instances {
		fmt.Printf("  hop %d: %-14s → peer %d\n", i, inst, plan.Peers[i])
	}
	fmt.Printf("  aggregated cost: %.4f\n", plan.Cost)
	fmt.Println("\nnote: the whole chain is MPEG — the enhancer only speaks MPEG, so")
	fmt.Println("the composition tier discarded the cheaper AVI server/translator pair.")

	// An unsatisfiable request: nobody translates to French.
	_, err = grid.Aggregate(user, qsa.Request{
		Path:     path,
		MinQoS:   qsa.QoS{qsa.Sym("lang", "fr")},
		Duration: 10,
	})
	fmt.Printf("\nrequesting French subtitles fails as it should: %v\n", err)

	grid.Advance(45)
	st, _ := grid.Status(plan.SessionID)
	fmt.Printf("\nsession %d after 45 minutes: %s\n", plan.SessionID, st)
}
