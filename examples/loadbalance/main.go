// Loadbalance shows the Φ metric's load-balancing behaviour on a
// heterogeneous grid (paper §3.3: "the larger the ratio between resource
// availability and resource requirement, the more advantageous it is to
// select this peer for achieving load balance in heterogeneous P2P
// systems").
//
// Laptops (150 units), desktops (500) and servers (1000) all provide the
// same service instance. As sessions accumulate, QSA keeps the *relative*
// load even: the servers absorb proportionally more sessions, and no class
// is driven to saturation while another idles.
//
// Run with:
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"

	qsa "repro"
)

func main() {
	// ω = [0.5, 0.5, 0]: this workload is CPU/memory bound, so the grid is
	// configured to weigh end-system resources only — the paper's
	// "adaptively configured according to the application's semantics".
	// The registry TTL covers the whole demo; long-running providers would
	// normally re-Provide periodically (soft state).
	grid, err := qsa.New(qsa.Config{
		Seed:        3,
		Weights:     []float64{0.5, 0.5, 0},
		RegistryTTL: 600,
	})
	if err != nil {
		log.Fatal(err)
	}

	classes := []struct {
		name string
		cap  float64
		n    int
	}{
		{"laptop", 150, 4},
		{"desktop", 500, 4},
		{"server", 1000, 4},
	}
	classOf := map[qsa.PeerID]string{}
	var providers []qsa.PeerID
	for _, c := range classes {
		for i := 0; i < c.n; i++ {
			p, err := grid.AddPeer(c.cap, c.cap)
			if err != nil {
				log.Fatal(err)
			}
			classOf[p] = c.name
			providers = append(providers, p)
		}
	}
	user, err := grid.AddPeer(300, 300)
	if err != nil {
		log.Fatal(err)
	}

	worker := qsa.Instance{
		ID: "transcode/x264", Service: "transcode",
		Input:  qsa.QoS{qsa.Sym("format", "RAW")},
		Output: qsa.QoS{qsa.Sym("format", "MPEG"), qsa.Range("fps", 20, 25)},
		CPU:    50, Memory: 50, Kbps: 10,
	}
	for _, p := range providers {
		if err := grid.Provide(p, worker); err != nil {
			log.Fatal(err)
		}
	}

	// Long sessions, issued over time so the probe cache refreshes and Φ
	// sees the accumulating load.
	hosts := map[qsa.PeerID]int{}
	admitted := 0
	for i := 0; i < 72; i++ {
		plan, err := grid.Aggregate(user, qsa.Request{
			Path:     []string{"transcode"},
			MinQoS:   qsa.QoS{qsa.Range("fps", 15, 1e9)},
			Duration: 500,
		})
		if err != nil {
			// Saturation: admission control rejects once nothing fits.
			fmt.Printf("request %d rejected (%v)\n\n", i, err)
			break
		}
		hosts[plan.Peers[0]]++
		admitted++
		grid.Advance(1.5)
	}

	fmt.Printf("admitted %d concurrent 50-unit sessions\n\n", admitted)
	fmt.Printf("%-10s%-8s%-10s%-12s%s\n", "peer", "class", "sessions", "capacity", "utilization")
	perClass := map[string][2]float64{} // used, capacity
	for _, p := range providers {
		cpu, _, err := grid.Available(p)
		if err != nil {
			log.Fatal(err)
		}
		cap := map[string]float64{"laptop": 150, "desktop": 500, "server": 1000}[classOf[p]]
		used := cap - cpu
		fmt.Printf("%-10d%-8s%-10d%-12g%.0f%%\n", p, classOf[p], hosts[p], cap, 100*used/cap)
		agg := perClass[classOf[p]]
		perClass[classOf[p]] = [2]float64{agg[0] + used, agg[1] + cap}
	}
	fmt.Println()
	for _, c := range classes {
		agg := perClass[c.name]
		fmt.Printf("class %-8s aggregate utilization %.0f%%\n", c.name, 100*agg[0]/agg[1])
	}
	fmt.Println("\nΦ = Σ ωᵢ·RAᵢ/rᵢ keeps picking the peer with the most headroom,")
	fmt.Println("so the powerful peers absorb proportionally more sessions and no")
	fmt.Println("class saturates while another idles (random selection would load")
	fmt.Println("the laptops at the same absolute rate as the servers).")
}
