// Churn demonstrates QSA under topological variation — the paper's second
// set of experiments — through the public API: sessions are aggregated,
// then provider peers depart mid-session. Without recovery every affected
// session fails (the paper's observation that performance is very
// sensitive to churn); with the runtime-recovery extension enabled, the
// grid re-homes the lost component and most sessions survive.
//
// Run with:
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"

	qsa "repro"
)

// scenario runs the same workload + departure schedule on a fresh grid and
// reports how many of the admitted sessions completed.
func scenario(recovery bool) (completed, failed int) {
	// The registry TTL covers the demo; long-lived providers would
	// re-Provide periodically (soft state).
	grid, err := qsa.New(qsa.Config{Seed: 5, EnableRecovery: recovery, RegistryTTL: 600})
	if err != nil {
		log.Fatal(err)
	}
	var peers []qsa.PeerID
	for i := 0; i < 16; i++ {
		p, err := grid.AddPeer(600, 600)
		if err != nil {
			log.Fatal(err)
		}
		peers = append(peers, p)
	}
	user := peers[15]

	src := qsa.Instance{
		ID: "feed/live", Service: "feed",
		Input:  qsa.QoS{qsa.Sym("media", "cam")},
		Output: qsa.QoS{qsa.Sym("format", "MPEG"), qsa.Range("fps", 18, 24)},
		CPU:    40, Memory: 40, Kbps: 25,
	}
	mix := qsa.Instance{
		ID: "mixer/std", Service: "mixer",
		Input:  qsa.QoS{qsa.Sym("format", "MPEG"), qsa.Range("fps", 0, 30)},
		Output: qsa.QoS{qsa.Sym("format", "MPEG"), qsa.Range("fps", 18, 24)},
		CPU:    30, Memory: 30, Kbps: 25,
	}
	for _, p := range peers[:6] {
		must(grid.Provide(p, src))
	}
	for _, p := range peers[6:12] {
		must(grid.Provide(p, mix))
	}

	// Admit ten half-hour sessions, remembering which peers host them.
	var sessions []uint64
	hostSet := map[qsa.PeerID]bool{}
	var hosts []qsa.PeerID
	for i := 0; i < 10; i++ {
		plan, err := grid.Aggregate(user, qsa.Request{
			Path:     []string{"feed", "mixer"},
			MinQoS:   qsa.QoS{qsa.Range("fps", 15, 1e9)},
			Duration: 30,
		})
		if err != nil {
			log.Fatal(err)
		}
		sessions = append(sessions, plan.SessionID)
		for _, h := range plan.Peers {
			if !hostSet[h] {
				hostSet[h] = true
				hosts = append(hosts, h)
			}
		}
		grid.Advance(0.5)
	}

	// Churn: three peers that actually provision sessions leave mid-run.
	for _, victim := range hosts[:3] {
		grid.Advance(2)
		if err := grid.Depart(victim); err != nil {
			log.Fatal(err)
		}
	}
	grid.Advance(60) // let everything finish

	for _, id := range sessions {
		st, err := grid.Status(id)
		if err != nil {
			log.Fatal(err)
		}
		if st == qsa.SessionCompleted {
			completed++
		} else {
			failed++
		}
	}
	return completed, failed
}

func main() {
	c1, f1 := scenario(false)
	fmt.Printf("without recovery: %d/%d sessions survived the churn (%d failed)\n", c1, c1+f1, f1)
	c2, f2 := scenario(true)
	fmt.Printf("with recovery:    %d/%d sessions survived the churn (%d failed)\n", c2, c2+f2, f2)
	if c2 <= c1 {
		fmt.Println("(unexpected: recovery should help — try another seed)")
	} else {
		fmt.Println("\nruntime recovery re-homes components of sessions whose provider")
		fmt.Println("departed — the paper's future-work extension (§6), implemented here.")
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
