package netproto_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/load"
	"repro/internal/netproto"
	"repro/internal/qos"
	"repro/internal/resource"
	"repro/internal/service"
)

// This file is the engine behind scripts/bench_serving.sh: the
// sustained-throughput record for the serving plane (DESIGN §14). An
// open-loop generator drives real aggregate RPCs at a fixed offered
// rate over {constant, bursty} × {JSON/TCP, binary/UDP}, and each leg
// must hold the p99 completion target with zero shedding; a fifth leg
// offers ~8× the sustainable rate into a one-worker admission plane
// and must show the opposite — nonzero shedding with the p99 of the
// admitted work still bounded, the load-shedding contract. Gated on
// QSA_SERVING_BENCH (wall-clock percentiles are not unit-test
// material); QSA_SERVING_N scales arrivals per leg and
// QSA_SERVING_OUT, when set, receives BENCH_serving.json.

const servingP99Target = 250 * time.Millisecond

type servingLeg struct {
	Schedule        string  `json:"schedule"`
	Codec           string  `json:"codec"`
	Transport       string  `json:"transport"`
	OfferedRPS      float64 `json:"offered_rps"`
	Requests        uint64  `json:"requests"`
	OK              uint64  `json:"ok"`
	Shed            uint64  `json:"shed"`
	Errors          uint64  `json:"errors"`
	Dropped         uint64  `json:"dropped"`
	OKPerSec        float64 `json:"ok_per_sec"`
	OKPerSecPerCore float64 `json:"ok_per_sec_per_core"`
	P50Ms           float64 `json:"p50_ms"`
	P99Ms           float64 `json:"p99_ms"`
	P999Ms          float64 `json:"p999_ms"`
}

type servingReport struct {
	GeneratedBy string       `json:"generated_by"`
	NumCPU      int          `json:"num_cpu"`
	GoMaxProcs  int          `json:"gomaxprocs"`
	P99TargetMs float64      `json:"p99_target_ms"`
	Workload    string       `json:"workload"`
	Legs        []servingLeg `json:"legs"`
	Overload    servingLeg   `json:"overload"`
	Note        string       `json:"note"`
}

// benchCluster starts a serving peer with the given admission plane
// plus two big providers of "work", the whole overlay on one network.
func benchCluster(t *testing.T, network string, admit netproto.AdmitConfig) *netproto.Peer {
	t.Helper()
	srv, err := netproto.Start(netproto.Config{Listen: "127.0.0.1:0", Network: network,
		CPU: 100, Memory: 100, RPCTimeout: 2 * time.Second, Admit: admit})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	for i := 0; i < 2; i++ {
		w, err := netproto.Start(netproto.Config{Listen: "127.0.0.1:0", Network: network,
			CPU: 1e5, Memory: 1e5, RPCTimeout: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		if err := w.Join(srv.Addr()); err != nil {
			t.Fatal(err)
		}
		in := &service.Instance{
			ID:      fmt.Sprintf("work#%d", i),
			Service: "work",
			Qin:     qos.MustVector(qos.Sym("format", "A"), qos.Range("rate", 0, 40)),
			Qout:    qos.MustVector(qos.Sym("format", "B"), qos.Range("rate", 20, 25)),
			R:       resource.Vec2(5, 5),
			OutKbps: 50,
		}
		if err := w.Provide(in); err != nil {
			t.Fatal(err)
		}
	}
	return srv
}

// servingLegRun fires one open-loop leg and folds the report into the
// benchmark row.
func servingLegRun(t *testing.T, target, schedule, network, codec string, rate float64, n, retries int) servingLeg {
	t.Helper()
	sched, err := load.ParseSchedule(schedule, rate, 8, 0, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	client, err := netproto.NewClient(netproto.ClientConfig{
		Target: target, Network: network, Codec: codec, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	mix := load.Mix{
		{Name: "batch", Weight: 0.7, Services: []string{"work"}, MinRate: 10,
			Priority: 0, DTolerant: true, Duration: 50 * time.Millisecond},
		{Name: "interactive", Weight: 0.3, Services: []string{"work"}, MinRate: 10,
			Priority: 2, Duration: 50 * time.Millisecond},
	}
	runner, err := load.NewRunner(load.Config{
		Schedule: sched, ScheduleName: schedule, RateRPS: rate,
		Mix: mix, Requests: n, MaxInFlight: 512, ShedRetries: retries, Seed: 42,
	}, client)
	if err != nil {
		t.Fatal(err)
	}
	rep := runner.Run()
	leg := servingLeg{
		Schedule: schedule, Codec: codec, Transport: network,
		OfferedRPS: rate,
		Requests:   rep.Total.Sent + rep.Total.Dropped,
		OK:         rep.Total.OK, Shed: rep.Total.Shed,
		Errors: rep.Total.Errors, Dropped: rep.Total.Dropped,
		OKPerSec:        rep.Throughput(),
		OKPerSecPerCore: rep.Throughput() / float64(runtime.GOMAXPROCS(0)),
	}
	if rep.Total.Latency.Count > 0 {
		leg.P50Ms = 1000 * rep.Total.Latency.Quantile(0.50)
		leg.P99Ms = 1000 * rep.Total.Latency.Quantile(0.99)
		leg.P999Ms = 1000 * rep.Total.Latency.Quantile(0.999)
	}
	t.Logf("%s %s/%s @%.0f/s: %d ok %d shed %d err %d drop, %.0f ok/s (%.0f per core), p99 %.1fms",
		schedule, codec, network, rate, leg.OK, leg.Shed, leg.Errors, leg.Dropped,
		leg.OKPerSec, leg.OKPerSecPerCore, leg.P99Ms)
	return leg
}

// TestServingBenchReport is the engine of scripts/bench_serving.sh.
func TestServingBenchReport(t *testing.T) {
	if os.Getenv("QSA_SERVING_BENCH") == "" {
		t.Skip("set QSA_SERVING_BENCH=1 (see scripts/bench_serving.sh)")
	}
	n := 600
	if s := os.Getenv("QSA_SERVING_N"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 50 {
			t.Fatalf("bad QSA_SERVING_N %q", s)
		}
		n = v
	}
	rate := 200.0
	if s := os.Getenv("QSA_SERVING_RATE"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 {
			t.Fatalf("bad QSA_SERVING_RATE %q", s)
		}
		rate = v
	}

	// The sustained legs get a well-provisioned admission plane — slots
	// are I/O-bound (an admitted aggregation spends its time in RPC
	// fan-out, not on a core), so the count is fixed, generous enough to
	// absorb a full Poisson burst even on a one-core box. The contract
	// at this rate is zero shed and p99 under target. The binary/UDP
	// legs need a UDP-listening overlay — one peer speaks one network.
	sustained := netproto.AdmitConfig{Workers: 64, MaxQueue: 256}
	srv := benchCluster(t, "tcp", sustained)
	srvUDP := benchCluster(t, "udp", sustained)
	rep := servingReport{
		GeneratedBy: "scripts/bench_serving.sh",
		NumCPU:      runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		P99TargetMs: float64(servingP99Target.Milliseconds()),
		Workload: fmt.Sprintf("open-loop aggregate RPCs, %d arrivals per leg at %.0f/s offered, "+
			"2-class mix (70%% dtolerant batch p0, 30%% interactive p2), 50ms sessions, 2 providers", n, rate),
		Note: "ok_per_sec is sustained successful aggregations (an aggregation = discovery fan-out + probe + " +
			"select + reserve across the overlay, not a ping); the overload leg offers ~8x into a one-worker " +
			"admission plane and must shed rather than queue without bound — its p99 covers admitted work only.",
	}
	for _, leg := range []struct{ schedule, network, codec string }{
		{"constant", "tcp", "json"},
		{"constant", "udp", "binary"},
		{"bursty", "tcp", "json"},
		{"bursty", "udp", "binary"},
	} {
		target := srv.Addr()
		if leg.network == "udp" {
			target = srvUDP.Addr()
		}
		l := servingLegRun(t, target, leg.schedule, leg.network, leg.codec, rate, n, 0)
		if l.Errors > 0 || l.Dropped > 0 {
			t.Errorf("%s %s/%s: %d errors, %d drops at low load", leg.schedule, leg.codec, leg.network, l.Errors, l.Dropped)
		}
		if l.Shed > 0 {
			t.Errorf("%s %s/%s: %d shed at low load, want 0", leg.schedule, leg.codec, leg.network, l.Shed)
		}
		if target := float64(servingP99Target.Milliseconds()); l.P99Ms > target {
			t.Errorf("%s %s/%s: p99 %.1fms over the %.0fms target", leg.schedule, leg.codec, leg.network, l.P99Ms, target)
		}
		rep.Legs = append(rep.Legs, l)
	}

	// Overload: ~8x one worker's measured capacity into a two-deep
	// queue. Admission must shed (backpressure works) while the admitted
	// requests stay fast (the queue cannot grow without bound). The rate
	// scales off the constant/tcp leg's p50 so the leg overloads on any
	// machine speed rather than assuming one service time.
	serviceMs := rep.Legs[0].P50Ms
	if serviceMs < 0.1 {
		serviceMs = 0.1
	}
	overRate := 8 * 1000 / serviceMs
	if overRate > 20000 {
		overRate = 20000
	}
	over := benchCluster(t, "tcp", netproto.AdmitConfig{Workers: 1, MaxQueue: 2,
		RetryAfter: 20 * time.Millisecond})
	rep.Overload = servingLegRun(t, over.Addr(), "constant", "tcp", "json", overRate, n, 0)
	if rep.Overload.Shed == 0 {
		t.Error("overload leg shed nothing; admission control is not engaging")
	}
	if rep.Overload.OK == 0 {
		t.Error("overload leg admitted nothing; shedding must not starve the plane")
	}
	if target := float64(servingP99Target.Milliseconds()); rep.Overload.P99Ms > target {
		t.Errorf("overload p99 %.1fms over the %.0fms target: the bounded queue is not bounding latency", rep.Overload.P99Ms, target)
	}

	if out := os.Getenv("QSA_SERVING_OUT"); out != "" {
		blob, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", out)
	}
}
