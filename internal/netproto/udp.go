package netproto

import (
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
	"repro/internal/xrand"
)

// This file is the datagram transport of DESIGN.md §12: one RPC is one
// message (any codec), a message is 1..n individually-checksummed
// packets (wire.Packet), and reliability is end-to-end per message:
//
//   - the client sends every fragment, then waits;
//   - the server acks on complete reassembly and delivers the message
//     to the accept loop; the response travels back as PktResp
//     fragments (an implicit ack) and is cached for DedupTTL;
//   - a message whose header carries wire.FlagIdempotent is
//     retransmitted whole, up to RetransmitBudget times, after
//     deterministically-jittered exponential backoff, until its
//     RESPONSE completes — an ack alone does not stop retransmits,
//     since a lost response is recovered precisely by a duplicate
//     request hitting the server's dedup cache. Non-idempotent
//     messages (reserve, select — DESIGN.md §6) and JSON messages
//     (no readable flag) wait single-shot until the RPC deadline;
//   - duplicate requests (retransmit raced the ack, or fault-injected
//     duplication) are suppressed by (client address, message ID): the
//     server re-acks and resends the cached response instead of
//     executing twice, which is what keeps reserve at-most-once even
//     when the fault plane duplicates packets.

// PacketDecision is a fault-plane verdict for one outgoing datagram.
type PacketDecision struct {
	// Drop discards the datagram (it is never written to the socket).
	Drop bool
	// Duplicate writes the datagram twice back-to-back.
	Duplicate bool
	// Delay postpones the write, letting later datagrams overtake —
	// the reordering primitive.
	Delay time.Duration
}

// PacketFilter intercepts outgoing datagrams for fault injection.
// internal/faults implements it with seeded, replayable verdicts.
// Filtering only the send side of each host still exercises both
// directions of a flow: the client's filter drops client→server
// packets, the server's drops server→client.
type PacketFilter interface {
	// Packet decides the fate of one size-byte datagram to dst. dst is
	// the dialed peer address when known, else the remote socket
	// address (the ephemeral client port, for server→client packets).
	Packet(dst string, size int) PacketDecision
}

// WireConfig parameterizes the UDP transport and packet layer. The
// zero value means defaults throughout.
type WireConfig struct {
	// MTU is the maximum datagram size, header included. Messages
	// larger than MTU−wire.PacketOverhead are fragmented. Default
	// 1200 (safe under typical 1500-byte path MTUs with tunnel
	// headroom); bounds [wire.MinMTU, wire.MaxMTU].
	MTU int
	// AckTimeout is the base retransmit backoff: the wait before the
	// first retransmission, doubling each attempt (jittered, capped at
	// 8×). Default 40 ms.
	AckTimeout time.Duration
	// RetransmitBudget is how many times an unacked idempotent message
	// is retransmitted after its initial send. Default 3.
	RetransmitBudget int
	// DedupTTL is how long the server remembers a completed message ID
	// (with its cached response) to suppress duplicates. It must
	// comfortably exceed the client's total retransmit horizon.
	// Default 5 s.
	DedupTTL time.Duration
	// PacketFilter, when non-nil, intercepts outgoing datagrams —
	// the fault-injection hook (internal/faults).
	PacketFilter PacketFilter
}

func (w *WireConfig) fillDefaults() {
	if w.MTU == 0 {
		w.MTU = 1200
	}
	if w.AckTimeout == 0 {
		w.AckTimeout = 40 * time.Millisecond
	}
	if w.RetransmitBudget == 0 {
		w.RetransmitBudget = 3
	}
	if w.DedupTTL == 0 {
		w.DedupTTL = 5 * time.Second
	}
}

func (w WireConfig) validate() error {
	if w.MTU != 0 && (w.MTU < wire.MinMTU || w.MTU > wire.MaxMTU) {
		return fmt.Errorf("netproto: MTU %d outside [%d, %d]", w.MTU, wire.MinMTU, wire.MaxMTU)
	}
	if w.AckTimeout < 0 {
		return fmt.Errorf("netproto: negative AckTimeout %v", w.AckTimeout)
	}
	if w.RetransmitBudget < 0 {
		return fmt.Errorf("netproto: negative RetransmitBudget %d", w.RetransmitBudget)
	}
	if w.DedupTTL < 0 {
		return fmt.Errorf("netproto: negative DedupTTL %v", w.DedupTTL)
	}
	return nil
}

// nextUDPMsgID is the process-wide message ID source. Uniqueness per
// client address is all dedup needs; process-wide is stronger.
var nextUDPMsgID atomic.Uint64

// UDPTransport implements Transport over the reliable-datagram stack.
// Each Dial opens a fresh ephemeral UDP socket (so the 4-tuple routes
// responses without a connection table) and returns a net.Conn whose
// Write buffers the request message and whose first Read transmits it
// and blocks for the reassembled response.
type UDPTransport struct {
	cfg  WireConfig
	tele *wireTele
	// tracer, when set, turns retransmissions into trace events stamped
	// with the trace context the message carried (see traceCarrier).
	tracer *obs.Tracer
}

// NewUDPTransport returns a UDP transport with cfg (zero fields take
// defaults).
func NewUDPTransport(cfg WireConfig) *UDPTransport {
	cfg.fillDefaults()
	return &UDPTransport{cfg: cfg}
}

// Dial implements Transport.
func (t *UDPTransport) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	sock, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, err
	}
	return &udpClientConn{t: t, sock: sock, remote: addr, deadline: time.Now().Add(timeout)}, nil
}

// retransmitDelay is the jittered exponential backoff before
// retransmission attempt+1, deterministic per (local, remote, attempt)
// like RetryPolicy.backoff so concurrent clients desynchronize while a
// seeded run replays.
func retransmitDelay(base time.Duration, local, remote string, attempt int) time.Duration {
	d := base
	maxd := 8 * base
	for i := 0; i < attempt && d < maxd; i++ {
		d *= 2
	}
	if d > maxd {
		d = maxd
	}
	h := xrand.MixString(uint64(attempt), local)
	h = xrand.MixString(h, remote)
	frac := float64(h>>11) / (1 << 53) // uniform [0,1)
	half := d / 2
	return half + time.Duration(frac*float64(half))
}

// writePacket pushes one framed packet through the fault filter onto
// a send function. Filter verdicts: drop (not written), duplicate
// (written twice), delay (written later from a timer, after any
// packets sent meanwhile — the reorder primitive).
func writePacket(filter PacketFilter, send func([]byte), dst string, pkt []byte) {
	if filter != nil {
		d := filter.Packet(dst, len(pkt))
		if d.Drop {
			return
		}
		if d.Delay > 0 {
			cp := append([]byte(nil), pkt...)
			time.AfterFunc(d.Delay, func() { send(cp) })
			if d.Duplicate {
				cp2 := append([]byte(nil), pkt...)
				time.AfterFunc(d.Delay, func() { send(cp2) })
			}
			return
		}
		if d.Duplicate {
			send(pkt)
		}
	}
	send(pkt)
}

// sendFragments frames msg into MTU-sized packets of ptype and writes
// each through the filter. scratch is reused across calls.
func sendFragments(cfg *WireConfig, tele *wireTele, send func([]byte), dst string, ptype byte, msgID uint64, msg []byte, scratch *wire.Buf) error {
	n := wire.Fragments(len(msg), cfg.MTU)
	if n == 0 {
		return fmt.Errorf("netproto: message of %d bytes cannot be fragmented at MTU %d", len(msg), cfg.MTU)
	}
	usable := cfg.MTU - wire.PacketOverhead
	for i := 0; i < n; i++ {
		lo := i * usable
		hi := lo + usable
		if hi > len(msg) {
			hi = len(msg)
		}
		p := wire.Packet{Type: ptype, MsgID: msgID, FragIdx: uint16(i), FragCount: uint16(n), Payload: msg[lo:hi]}
		scratch.B = wire.AppendPacket(scratch.B[:0], &p)
		writePacket(cfg.PacketFilter, send, dst, scratch.B)
		tele.fragSent1()
	}
	return nil
}

// sendAck writes a single ack packet for msgID.
func sendAck(cfg *WireConfig, send func([]byte), dst string, msgID uint64, flags byte, scratch *wire.Buf) {
	p := wire.Packet{Type: wire.PktAck, Flags: flags, MsgID: msgID, FragIdx: 0, FragCount: 1}
	scratch.B = wire.AppendPacket(scratch.B[:0], &p)
	writePacket(cfg.PacketFilter, send, dst, scratch.B)
}

// reassembly collects the fragments of one message. Buffer layout:
// fragment i lands at offset i*usable; the final length is known once
// the last fragment arrives.
type reassembly struct {
	buf    *wire.Buf
	got    []bool
	have   int
	total  int
	msgLen int
	sawEnd bool
}

// add integrates one fragment; it reports whether the message is now
// complete. Inconsistent numbering or oversize payloads are ignored
// (false) — a hostile or corrupted-but-CRC-colliding packet cannot
// grow state.
func (a *reassembly) add(p *wire.Packet, usable int) bool {
	if a.total == 0 {
		t := int(p.FragCount)
		if t*usable > wire.MaxMessage+usable {
			// Claimed size exceeds any legal message: refuse before
			// allocating — a forged FragCount must not pin memory.
			return false
		}
		a.total = t
		a.buf = wire.GetBuf(a.total * usable)
		a.buf.B = a.buf.B[:a.total*usable]
		a.got = make([]bool, a.total)
	}
	if int(p.FragCount) != a.total || int(p.FragIdx) >= a.total || len(p.Payload) > usable {
		return false
	}
	last := int(p.FragIdx) == a.total-1
	if !last && len(p.Payload) != usable {
		return false
	}
	if a.got[p.FragIdx] {
		return false
	}
	a.got[p.FragIdx] = true
	a.have++
	copy(a.buf.B[int(p.FragIdx)*usable:], p.Payload)
	if last {
		a.sawEnd = true
		a.msgLen = (a.total-1)*usable + len(p.Payload)
	}
	return a.have == a.total && a.sawEnd
}

func (a *reassembly) release() {
	wire.PutBuf(a.buf)
	a.buf = nil
}

// udpClientConn is one RPC exchange over UDP masquerading as a
// net.Conn: Writes accumulate the request message; the first Read
// triggers transmit + ack/retransmit + response reassembly.
type udpClientConn struct {
	t        *UDPTransport
	sock     *net.UDPConn
	remote   string
	deadline time.Time

	// trace and span are the causal context of the request this conn
	// carries (zero for untraced traffic), handed down by rpcWith via
	// CarryTrace so retransmit events land inside the request's tree.
	trace, span uint64

	wbuf *wire.Buf // request message
	resp *wire.Buf // reassembled response message (owned via asm)
	rlen int
	rpos int
	sent bool
	err  error
}

// traceCarrier is implemented by conns that can attribute transport
// events (retransmits) to the causal trace of the message they carry.
type traceCarrier interface {
	CarryTrace(trace, span uint64)
}

// CarryTrace implements traceCarrier.
func (c *udpClientConn) CarryTrace(trace, span uint64) {
	c.trace, c.span = trace, span
}

func (c *udpClientConn) Write(b []byte) (int, error) {
	if c.wbuf == nil {
		c.wbuf = wire.GetBuf(len(b))
	}
	c.wbuf.B = append(c.wbuf.B, b...)
	return len(b), nil
}

func (c *udpClientConn) Read(b []byte) (int, error) {
	if !c.sent {
		c.sent = true
		c.err = c.exchange()
	}
	if c.err != nil {
		return 0, c.err
	}
	if c.rpos >= c.rlen {
		return 0, io.EOF
	}
	n := copy(b, c.resp.B[c.rpos:c.rlen])
	c.rpos += n
	return n, nil
}

// ReadMessage returns the complete response message, valid until
// Close. rpcWith uses it to skip stream re-framing on the binary path.
func (c *udpClientConn) ReadMessage() ([]byte, error) {
	if !c.sent {
		c.sent = true
		c.err = c.exchange()
	}
	if c.err != nil {
		return nil, c.err
	}
	c.rpos = c.rlen
	return c.resp.B[:c.rlen], nil
}

// exchange runs the reliability state machine for this message.
func (c *udpClientConn) exchange() error {
	if c.wbuf == nil {
		return fmt.Errorf("netproto: udp read before request write")
	}
	cfg := &c.t.cfg
	tele := c.t.tele
	msg := c.wbuf.B
	flags, haveFlags := wire.MessageFlags(msg)
	idem := haveFlags && flags&wire.FlagIdempotent != 0
	msgID := nextUDPMsgID.Add(1)
	local := c.sock.LocalAddr().String()
	send := func(pkt []byte) { _, _ = c.sock.Write(pkt) }

	scratch := wire.GetBuf(cfg.MTU)
	defer wire.PutBuf(scratch)
	if err := sendFragments(cfg, tele, send, c.remote, wire.PktData, msgID, msg, scratch); err != nil {
		return err
	}

	recv := wire.GetBuf(wire.MaxMTU)
	defer wire.PutBuf(recv)
	recv.B = recv.B[:cap(recv.B)]

	var asm reassembly
	defer asm.release()
	attempt := 0
	usable := cfg.MTU - wire.PacketOverhead
	var pkt wire.Packet
	for {
		// Wait until the retransmit horizon (idempotent, budget left) or
		// the RPC deadline. Retransmits continue even after an ack:
		// losing the RESPONSE would otherwise stall the exchange until
		// the deadline, and a duplicate request is what makes the server
		// resend its cached response (dedup keeps it at-most-once).
		wait := c.deadline
		canRetransmit := idem && attempt < cfg.RetransmitBudget
		if canRetransmit {
			if t := time.Now().Add(retransmitDelay(cfg.AckTimeout, local, c.remote, attempt)); t.Before(wait) {
				wait = t
			}
		}
		if err := c.sock.SetReadDeadline(wait); err != nil {
			return err
		}
		n, err := c.sock.Read(recv.B)
		if err != nil {
			if !os.IsTimeout(err) {
				return err
			}
			if !time.Now().Before(c.deadline) {
				return fmt.Errorf("netproto: udp rpc to %s timed out: %w", c.remote, os.ErrDeadlineExceeded)
			}
			if canRetransmit {
				attempt++
				tele.retransmit1()
				if tr := c.t.tracer; tr != nil {
					tr.Emit(obs.Event{Kind: obs.KindRetransmit, Peer: c.remote,
						Attempt: attempt, Trace: c.trace, Span: c.span})
				}
				if err := sendFragments(cfg, tele, send, c.remote, wire.PktData, msgID, msg, scratch); err != nil {
					return err
				}
			}
			continue
		}
		if err := wire.ParsePacket(recv.B[:n], &pkt); err != nil {
			tele.packetReject(err)
			continue
		}
		if pkt.MsgID != msgID {
			tele.dupDropped1() // stale packet from an earlier exchange on a reused port
			continue
		}
		switch pkt.Type {
		case wire.PktAck:
			// The request arrived; keep waiting for the response (and keep
			// the retransmit horizon armed in case the response is lost).
		case wire.PktResp:
			tele.fragRecv1()
			if asm.add(&pkt, usable) {
				c.resp = asm.buf
				asm.buf = nil // ownership moves to the conn
				c.rlen = asm.msgLen
				// Tell the server its cached response arrived so it can
				// forget the dedup entry early. Best effort.
				sendAck(cfg, send, c.remote, msgID, wire.AckOfResponse, scratch)
				return nil
			}
		}
	}
}

func (c *udpClientConn) Close() error {
	wire.PutBuf(c.wbuf)
	wire.PutBuf(c.resp)
	c.wbuf, c.resp = nil, nil
	return c.sock.Close()
}

func (c *udpClientConn) LocalAddr() net.Addr  { return c.sock.LocalAddr() }
func (c *udpClientConn) RemoteAddr() net.Addr { return c.sock.RemoteAddr() }

func (c *udpClientConn) SetDeadline(t time.Time) error {
	c.deadline = t
	return nil
}
func (c *udpClientConn) SetReadDeadline(t time.Time) error  { c.deadline = t; return nil }
func (c *udpClientConn) SetWriteDeadline(t time.Time) error { return nil }

// --- server side -----------------------------------------------------------

// dedupKey identifies a message across retransmissions: the client's
// socket address plus its message ID.
type dedupKey struct {
	addr string
	id   uint64
}

// dedupEntry remembers a completed message until expiry; resp holds
// the encoded response once the handler finished, for resend when a
// duplicate request arrives after the original response was lost.
type dedupEntry struct {
	expires time.Time
	resp    []byte
}

// udpListener implements net.Listener over one UDP socket: a read
// loop reassembles request messages, suppresses duplicates, acks, and
// surfaces each complete message as a connection-shaped exchange.
type udpListener struct {
	sock *net.UDPConn
	cfg  WireConfig
	tele *wireTele
	// tracer, when set, records duplicate suppressions as trace events.
	// They are unparented: the packet layer suppresses a duplicate by
	// (client address, message ID) without ever decoding the request,
	// so no trace context is available — Peer carries the client addr.
	tracer *obs.Tracer

	acceptCh chan *udpServerConn
	done     chan struct{}
	wg       sync.WaitGroup

	mu        sync.Mutex
	closed    bool
	asm       map[dedupKey]*reassembly
	seen      map[dedupKey]*dedupEntry
	nextSweep time.Time
}

// listenUDP opens the reliable-datagram listener on addr.
func listenUDP(addr string, cfg WireConfig, tele *wireTele, tracer *obs.Tracer) (*udpListener, error) {
	cfg.fillDefaults()
	laddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	sock, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, err
	}
	l := &udpListener{
		sock:     sock,
		cfg:      cfg,
		tele:     tele,
		tracer:   tracer,
		acceptCh: make(chan *udpServerConn, 64),
		done:     make(chan struct{}),
		asm:      make(map[dedupKey]*reassembly),
		seen:     make(map[dedupKey]*dedupEntry),
	}
	l.wg.Add(1)
	go l.readLoop()
	return l, nil
}

// Accept implements net.Listener.
func (l *udpListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.acceptCh:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener.
func (l *udpListener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.done)
	err := l.sock.Close()
	l.wg.Wait()
	return err
}

// Addr implements net.Listener.
func (l *udpListener) Addr() net.Addr { return l.sock.LocalAddr() }

// readLoop drains the socket until Close. It exits on any socket
// error (the socket is closed exactly by Close).
func (l *udpListener) readLoop() {
	defer l.wg.Done()
	buf := make([]byte, wire.MaxMTU)
	var pkt wire.Packet
	for {
		n, raddr, err := l.sock.ReadFromUDP(buf)
		if err != nil {
			return
		}
		if err := wire.ParsePacket(buf[:n], &pkt); err != nil {
			l.tele.packetReject(err)
			continue
		}
		if !l.handlePacket(raddr, &pkt) {
			return
		}
	}
}

// handlePacket processes one datagram; it reports false when the
// listener shut down mid-delivery.
func (l *udpListener) handlePacket(raddr *net.UDPAddr, pkt *wire.Packet) bool {
	key := dedupKey{addr: raddr.String(), id: pkt.MsgID}
	dst := key.addr
	send := func(b []byte) { _, _ = l.sock.WriteToUDP(b, raddr) }
	switch pkt.Type {
	case wire.PktAck:
		if pkt.Flags&wire.AckOfResponse != 0 {
			l.mu.Lock()
			delete(l.seen, key)
			l.mu.Unlock()
		}
		return true
	case wire.PktData:
		l.tele.fragRecv1()
	default:
		return true // servers never receive PktResp
	}

	l.mu.Lock()
	l.sweepLocked()
	if ent, ok := l.seen[key]; ok {
		// Duplicate of a completed message: re-ack, resend any cached
		// response, never re-execute — the at-most-once half of the
		// reliability contract.
		resp := ent.resp
		l.mu.Unlock()
		l.tele.dupDropped1()
		if l.tracer != nil {
			l.tracer.Emit(obs.Event{Kind: obs.KindDupReplay, Peer: dst})
		}
		scratch := wire.GetBuf(l.cfg.MTU)
		sendAck(&l.cfg, send, dst, pkt.MsgID, 0, scratch)
		if resp != nil {
			_ = sendFragments(&l.cfg, l.tele, send, dst, wire.PktResp, pkt.MsgID, resp, scratch)
		}
		wire.PutBuf(scratch)
		return true
	}
	a := l.asm[key]
	if a == nil {
		a = &reassembly{}
		l.asm[key] = a
	}
	usable := l.cfg.MTU - wire.PacketOverhead
	if !a.add(pkt, usable) {
		l.mu.Unlock()
		return true
	}
	delete(l.asm, key)
	l.seen[key] = &dedupEntry{expires: time.Now().Add(l.cfg.DedupTTL)}
	l.mu.Unlock()

	scratch := wire.GetBuf(l.cfg.MTU)
	sendAck(&l.cfg, send, dst, pkt.MsgID, 0, scratch)
	wire.PutBuf(scratch)

	conn := &udpServerConn{l: l, raddr: raddr, key: key, msg: a.buf, msgLen: a.msgLen}
	a.buf = nil // ownership moves to the conn
	select {
	case l.acceptCh <- conn:
		return true
	case <-l.done:
		conn.discard()
		return false
	}
}

// sweepLocked lazily expires dedup entries and stale half-assembled
// messages. Runs at most once per second.
func (l *udpListener) sweepLocked() {
	now := time.Now()
	if now.Before(l.nextSweep) {
		return
	}
	l.nextSweep = now.Add(time.Second)
	for k, e := range l.seen {
		if now.After(e.expires) {
			delete(l.seen, k)
		}
	}
	if len(l.asm) > 1024 {
		// A flood of half-messages (lost last fragments) cannot pin
		// memory: drop them all; retransmits rebuild the live ones.
		for k, a := range l.asm {
			a.release()
			delete(l.asm, k)
		}
	}
}

// udpServerConn presents one reassembled request message as a
// net.Conn: Reads drain the message, Writes buffer the response, and
// Close transmits the response fragments and caches them for dedup.
type udpServerConn struct {
	l      *udpListener
	raddr  *net.UDPAddr
	key    dedupKey
	msg    *wire.Buf
	msgLen int
	pos    int
	out    *wire.Buf
	closed bool
}

func (c *udpServerConn) Read(b []byte) (int, error) {
	if c.msg == nil || c.pos >= c.msgLen {
		return 0, io.EOF
	}
	n := copy(b, c.msg.B[c.pos:c.msgLen])
	c.pos += n
	return n, nil
}

func (c *udpServerConn) Write(b []byte) (int, error) {
	if c.closed {
		return 0, net.ErrClosed
	}
	if c.out == nil {
		c.out = wire.GetBuf(len(b))
	}
	c.out.B = append(c.out.B, b...)
	return len(b), nil
}

// Close sends the buffered response and retains a copy for duplicate
// suppression until the dedup entry expires or the client acks.
func (c *udpServerConn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	l := c.l
	send := func(b []byte) { _, _ = l.sock.WriteToUDP(b, c.raddr) }
	if c.out != nil && len(c.out.B) > 0 {
		scratch := wire.GetBuf(l.cfg.MTU)
		err := sendFragments(&l.cfg, l.tele, send, c.key.addr, wire.PktResp, c.key.id, c.out.B, scratch)
		wire.PutBuf(scratch)
		if err == nil {
			respCopy := append([]byte(nil), c.out.B...)
			l.mu.Lock()
			if ent, ok := l.seen[c.key]; ok {
				ent.resp = respCopy
			}
			l.mu.Unlock()
		}
	}
	c.discard()
	return nil
}

func (c *udpServerConn) discard() {
	wire.PutBuf(c.msg)
	wire.PutBuf(c.out)
	c.msg, c.out = nil, nil
}

func (c *udpServerConn) LocalAddr() net.Addr  { return c.l.sock.LocalAddr() }
func (c *udpServerConn) RemoteAddr() net.Addr { return c.raddr }

// Deadlines are inert: both directions are in-memory copies; the real
// network waiting happened in the listener's read loop.
func (c *udpServerConn) SetDeadline(time.Time) error      { return nil }
func (c *udpServerConn) SetReadDeadline(time.Time) error  { return nil }
func (c *udpServerConn) SetWriteDeadline(time.Time) error { return nil }

// messageConn is implemented by message-oriented conns: the response
// is one complete message, so rpcWith can skip stream re-framing.
type messageConn interface {
	ReadMessage() ([]byte, error)
}
