package netproto

import (
	"encoding/json"
	"testing"
)

// seedRequests are real wire messages of every type — the corpus is what
// actually crosses the TCP connections, captured by marshaling the same
// structs the peers exchange.
func seedRequests() [][]byte {
	in := inst("source#0", "source", "RAW", "MPEG", 40, 30)
	reqs := []request{
		{Type: msgJoin, Addr: "127.0.0.1:9001"},
		{Type: msgLeave, Addr: "127.0.0.1:9001"},
		{Type: msgLookup, Service: "source"},
		{Type: msgProbe},
		{
			Type:        msgSelect,
			Instances:   []WireInstance{ToWire(in)},
			Candidates:  map[string][]string{"source#0": {"127.0.0.1:9001", "127.0.0.1:9002"}},
			Idx:         0,
			Chain:       []string{"127.0.0.1:9002"},
			UserAddr:    "127.0.0.1:9003",
			DurationSec: 1.5,
		},
		{Type: msgReserve, SessionID: "127.0.0.1:9003/1", InstanceID: "source#0",
			CPU: 40, Memory: 40, DurationSec: 1.5},
		{Type: msgRelease, SessionID: "127.0.0.1:9003/1"},
	}
	var out [][]byte
	for _, r := range reqs {
		b, err := json.Marshal(r)
		if err != nil {
			panic(err)
		}
		out = append(out, b)
	}
	return out
}

// FuzzDecodeRequest checks the request envelope never panics on
// arbitrary JSON and that everything accepted re-encodes and re-decodes
// without loss, including the embedded wire instances (which must also
// survive FromWire/ToWire when they validate).
func FuzzDecodeRequest(f *testing.F) {
	for _, b := range seedRequests() {
		f.Add(b)
	}
	f.Add([]byte(`{"type":"select","idx":-1,"instances":[{"id":"x"}]}`))
	f.Add([]byte(`{"type":"reserve","cpu":-1,"duration_sec":1e308}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var req request
		if json.Unmarshal(data, &req) != nil {
			return
		}
		out, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted request failed to marshal: %v", err)
		}
		var back request
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("re-encoded request failed to decode: %v\n%s", err, out)
		}
		if back.Type != req.Type || back.SessionID != req.SessionID ||
			len(back.Instances) != len(req.Instances) ||
			len(back.Candidates) != len(req.Candidates) ||
			len(back.Chain) != len(req.Chain) {
			t.Fatalf("round trip mangled the request: %+v vs %+v", req, back)
		}
		for _, w := range req.Instances {
			in, err := FromWire(w) // must never panic
			if err != nil {
				continue
			}
			if got := ToWire(in); got.ID != w.ID || got.Service != w.Service {
				t.Fatalf("wire instance round trip mangled %+v into %+v", w, got)
			}
		}
	})
}

// seedResponses are real replies: membership, offers, probe results,
// selection chains and errors.
func seedResponses() [][]byte {
	in := inst("player#0", "player", "MPEG", "SCREEN", 30, 20)
	resps := []response{
		{OK: true, Members: []string{"127.0.0.1:9001", "127.0.0.1:9002"}},
		{OK: true, Offers: []offer{{Instance: ToWire(in), Provider: "127.0.0.1:9002"}}},
		{OK: true, Avail: []float64{160, 120}, UptimeSec: 42.5},
		{OK: true, Chain: []string{"127.0.0.1:9001", "127.0.0.1:9002"}},
		{Err: "insufficient resources"},
		{Err: "no selectable peer for player#0"},
	}
	var out [][]byte
	for _, r := range resps {
		b, err := json.Marshal(r)
		if err != nil {
			panic(err)
		}
		out = append(out, b)
	}
	return out
}

// FuzzDecodeResponse mirrors FuzzDecodeRequest for the reply envelope.
func FuzzDecodeResponse(f *testing.F) {
	for _, b := range seedResponses() {
		f.Add(b)
	}
	f.Add([]byte(`{"ok":true,"avail":[1e308,-1e308,0]}`))
	f.Add([]byte(`{"ok":false,"err":"","offers":[{}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var resp response
		if json.Unmarshal(data, &resp) != nil {
			return
		}
		out, err := json.Marshal(resp)
		if err != nil {
			t.Fatalf("accepted response failed to marshal: %v", err)
		}
		var back response
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("re-encoded response failed to decode: %v\n%s", err, out)
		}
		if back.OK != resp.OK || back.Err != resp.Err ||
			len(back.Members) != len(resp.Members) ||
			len(back.Offers) != len(resp.Offers) ||
			len(back.Avail) != len(resp.Avail) ||
			len(back.Chain) != len(resp.Chain) {
			t.Fatalf("round trip mangled the response: %+v vs %+v", resp, back)
		}
		for _, off := range resp.Offers {
			if _, err := FromWire(off.Instance); err != nil {
				continue // rejected offers are fine; panics are not
			}
		}
	})
}
