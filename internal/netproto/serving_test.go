package netproto

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// servingCluster starts a serving peer (admission-controlled, metered)
// plus workers providing "work", all joined.
func servingCluster(t *testing.T, admit AdmitConfig, reg *obs.Registry) (*Peer, []*Peer) {
	t.Helper()
	srv, err := Start(Config{Listen: "127.0.0.1:0", CPU: 100, Memory: 100,
		RPCTimeout: 2 * time.Second, Admit: admit, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	workers := make([]*Peer, 2)
	for i := range workers {
		w, err := Start(Config{Listen: "127.0.0.1:0", CPU: 100, Memory: 100,
			RPCTimeout: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		if err := w.Join(srv.Addr()); err != nil {
			t.Fatal(err)
		}
		if err := w.Provide(inst(fmt.Sprintf("work#%d", i), "work", "A", "B", 5, 50)); err != nil {
			t.Fatal(err)
		}
		workers[i] = w
	}
	return srv, workers
}

// TestServingAggregateRPC drives the aggregate RPC end to end over
// both codecs: a remote client asks the serving peer to run the whole
// pipeline and gets back a session.
func TestServingAggregateRPC(t *testing.T) {
	srv, workers := servingCluster(t, AdmitConfig{Workers: 2}, nil)
	for _, codec := range []string{"json", "binary"} {
		cl, err := NewClient(ClientConfig{Target: srv.Addr(), Codec: codec})
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Aggregate(AggRequest{Services: []string{"work"}, MinRate: 10,
			Priority: 1, Duration: 200 * time.Millisecond})
		if err != nil {
			t.Fatalf("%s: %v", codec, err)
		}
		if !res.OK || res.SessionID == "" || len(res.Chain) != 1 {
			t.Fatalf("%s: result %+v", codec, res)
		}
		hosts := map[string]bool{workers[0].Addr(): true, workers[1].Addr(): true}
		if !hosts[res.Chain[0]] {
			t.Fatalf("%s: work hosted on non-provider %s", codec, res.Chain[0])
		}
		cl.Close()
	}
}

// TestServingShedNeverReserves is the chaos-suite assertion for
// admission: under an overload where most requests shed, every shed
// reply left zero reservations behind, and admitted + shed accounts
// for every request.
func TestServingShedNeverReserves(t *testing.T) {
	reg := obs.NewRegistry()
	srv, workers := servingCluster(t, AdmitConfig{Workers: 1, MaxQueue: 1,
		RetryAfter: 50 * time.Millisecond}, reg)
	const n = 12
	results := make([]*AggResult, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := NewClient(ClientConfig{Target: srv.Addr(), Codec: "binary"})
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			res, err := cl.Aggregate(AggRequest{Services: []string{"work"}, MinRate: 10,
				Priority: i % 3, DTolerant: i%2 == 0, Duration: 100 * time.Millisecond})
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	okCount, shedCount := 0, 0
	for i, res := range results {
		if res == nil {
			continue
		}
		switch {
		case res.OK:
			okCount++
		case res.Shed:
			shedCount++
			if res.RetryAfter <= 0 {
				t.Errorf("request %d shed without a retry-after hint: %+v", i, res)
			}
			if !strings.HasPrefix(res.Err, "shed: ") {
				t.Errorf("request %d shed with error %q", i, res.Err)
			}
		default:
			t.Errorf("request %d neither admitted nor shed: %+v", i, res)
		}
	}
	if okCount == 0 {
		t.Fatal("no request was admitted")
	}
	snap := reg.Snapshot()
	admitted := snapCounter(t, snap, "serve.admitted")
	var shed uint64
	for _, r := range shedReasons {
		shed += snapCounter(t, snap, "serve.shed."+r)
	}
	if admitted != uint64(okCount) {
		t.Errorf("serve.admitted = %d, want %d", admitted, okCount)
	}
	if shed != uint64(shedCount) {
		t.Errorf("serve.shed.* = %d, want %d", shed, shedCount)
	}
	// The chaos invariant: once admitted sessions expire, no peer holds
	// a reservation a shed request could have leaked.
	deadline := time.Now().Add(3 * time.Second)
	for {
		held := srv.ActiveSessions()
		for _, w := range workers {
			held += w.ActiveSessions()
		}
		if held == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d reservations still held after all sessions expired", held)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func snapCounter(t *testing.T, snap obs.Snapshot, name string) uint64 {
	t.Helper()
	for _, c := range snap.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// TestServingRetryAfterDeterministic pins the backpressure contract:
// against a known queue state, every shed reply carries exactly
// base × (1 + queue length) — the deterministic hint clients key
// their backoff on.
func TestServingRetryAfterDeterministic(t *testing.T) {
	srv, _ := servingCluster(t, AdmitConfig{Workers: 1, MaxQueue: 1,
		RetryAfter: 200 * time.Millisecond}, nil)
	// Hold the single worker slot and fill the one queue slot with a
	// parked waiter of equal priority: every later equal-priority
	// arrival (younger, so first to shed) now sheds against queue
	// length 1, so the hint must be exactly 2 × base.
	if v := srv.admit.acquire(9, false, 0); !v.run {
		t.Fatalf("test could not occupy the worker slot: %+v", v)
	}
	defer srv.admit.release()
	parked := make(chan admitVerdict, 1)
	go func() { parked <- srv.admit.acquire(1, false, 0) }()
	waitForDepth(t, srv.admit, 1)
	cl, err := NewClient(ClientConfig{Target: srv.Addr(), Codec: "binary"})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 3; i++ {
		res, err := cl.Aggregate(AggRequest{Services: []string{"work"}, Priority: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Shed {
			t.Fatalf("attempt %d not shed: %+v", i, res)
		}
		if res.RetryAfter != 400*time.Millisecond {
			t.Fatalf("attempt %d: retry-after %v, want exactly 400ms (2 x base)", i, res.RetryAfter)
		}
	}
}

// TestAdmissionPriorityEviction: a full queue sheds in priority order —
// a high-priority arrival evicts the parked low-priority waiter, never
// the other way around.
func TestAdmissionPriorityEviction(t *testing.T) {
	a := newAdmission(AdmitConfig{Workers: 1, MaxQueue: 1, RetryAfter: 10 * time.Millisecond},
		make(chan struct{}), nil)
	if v := a.acquire(1, false, 0); !v.run {
		t.Fatalf("first acquire parked: %+v", v)
	}
	low := make(chan admitVerdict, 1)
	go func() { low <- a.acquire(0, true, 0) }()
	waitForDepth(t, a, 1)
	// Low-priority arrival against a full queue holding the tolerant
	// low-priority waiter: the ARRIVAL sheds (it is younger).
	if v := a.acquire(0, true, 0); v.run || v.reason != shedQueueFull {
		t.Fatalf("younger equal arrival: %+v, want queue_full shed", v)
	}
	// High-priority arrival evicts the parked waiter instead.
	high := make(chan admitVerdict, 1)
	go func() { high <- a.acquire(2, false, 0) }()
	v := <-low
	if v.run || v.reason != shedEvicted {
		t.Fatalf("low-priority waiter: %+v, want evicted shed", v)
	}
	a.release() // hand the slot to the high-priority waiter
	if v := <-high; !v.run {
		t.Fatalf("high-priority waiter shed: %+v", v)
	}
	a.release()
	if a.q.Active() != 0 || a.q.QueueLen() != 0 {
		t.Fatalf("queue not drained: active %d queued %d", a.q.Active(), a.q.QueueLen())
	}
}

// TestAdmissionDeadlineShedOnDequeue: a waiter whose latency budget
// expired while parked is shed at dequeue instead of wasting the slot.
func TestAdmissionDeadlineShedOnDequeue(t *testing.T) {
	a := newAdmission(AdmitConfig{Workers: 1, MaxQueue: 2, RetryAfter: 10 * time.Millisecond},
		make(chan struct{}), nil)
	a.acquire(0, false, 0)
	expired := make(chan admitVerdict, 1)
	go func() { expired <- a.acquire(0, false, time.Millisecond) }()
	waitForDepth(t, a, 1)
	fresh := make(chan admitVerdict, 1)
	go func() { fresh <- a.acquire(0, false, time.Minute) }()
	waitForDepth(t, a, 2)
	time.Sleep(20 * time.Millisecond) // let the first waiter's budget lapse
	a.release()
	if v := <-expired; v.run || v.reason != shedDeadline {
		t.Fatalf("expired waiter: %+v, want deadline shed", v)
	}
	// The slot fell through to the still-fresh waiter in the same
	// release call.
	if v := <-fresh; !v.run {
		t.Fatalf("fresh waiter: %+v, want run", v)
	}
}

// TestAdmissionShutdownUnparks: closing the peer's done channel frees
// every parked waiter with a shutdown shed instead of hanging them.
func TestAdmissionShutdownUnparks(t *testing.T) {
	done := make(chan struct{})
	a := newAdmission(AdmitConfig{Workers: 1, MaxQueue: 2, RetryAfter: 10 * time.Millisecond},
		done, nil)
	a.acquire(0, false, 0)
	parked := make(chan admitVerdict, 1)
	go func() { parked <- a.acquire(1, false, 0) }()
	waitForDepth(t, a, 1)
	close(done)
	select {
	case v := <-parked:
		if v.run || v.reason != shedShutdown {
			t.Fatalf("parked waiter on shutdown: %+v", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked waiter still hung after shutdown")
	}
}

func waitForDepth(t *testing.T, a *admission, depth int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		a.mu.Lock()
		n := a.q.QueueLen()
		a.mu.Unlock()
		if n == depth {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue depth stuck at %d, want %d", n, depth)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionFastPathAllocs is the ci-gated zero-allocation check on
// the netproto admission wrapper: an uncontended acquire/release —
// the steady state below the overload knee — touches no heap.
func TestAdmissionFastPathAllocs(t *testing.T) {
	a := newAdmission(AdmitConfig{Workers: 4, MaxQueue: 8, RetryAfter: 10 * time.Millisecond},
		make(chan struct{}), nil)
	per := testing.AllocsPerRun(1000, func() {
		v := a.acquire(1, false, 0)
		if !v.run {
			t.Fatal("uncontended acquire parked")
		}
		a.release()
	})
	if per != 0 {
		t.Fatalf("admission fast path allocates %.1f times per request", per)
	}
}

// TestConnPoolReuse: sequential RPCs to the same peer reuse one pooled
// connection — dials stay flat while reuses climb.
func TestConnPoolReuse(t *testing.T) {
	reg := obs.NewRegistry()
	srv, _ := servingCluster(t, AdmitConfig{}, nil)
	cl, err := NewClient(ClientConfig{Target: srv.Addr(), Codec: "binary", Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 5; i++ {
		if _, err := cl.Aggregate(AggRequest{Services: []string{"work"}, MinRate: 10,
			Duration: 50 * time.Millisecond}); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	dials := snapCounter(t, snap, "wire.conn_dials")
	reuses := snapCounter(t, snap, "wire.conn_reuses")
	if dials != 1 {
		t.Errorf("wire.conn_dials = %d, want 1 (one connection for all requests)", dials)
	}
	if reuses != 4 {
		t.Errorf("wire.conn_reuses = %d, want 4", reuses)
	}
	if cl.pool.idleCount(srv.Addr()) != 1 {
		t.Errorf("idle pool holds %d conns, want 1", cl.pool.idleCount(srv.Addr()))
	}
}

// transportFunc adapts a function to the Transport interface (tests).
type transportFunc func(addr string, timeout time.Duration) (net.Conn, error)

func (f transportFunc) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	return f(addr, timeout)
}

// TestConnPoolExpiry: a connection idling past the pool TTL is torn
// down, not handed out.
func TestConnPoolExpiry(t *testing.T) {
	dialed := 0
	tr := transportFunc(func(addr string, timeout time.Duration) (net.Conn, error) {
		dialed++
		c1, c2 := net.Pipe()
		go func() { // sink: swallow whatever the exchange writes
			buf := make([]byte, 1024)
			for {
				if _, err := c2.Read(buf); err != nil {
					return
				}
			}
		}()
		return c1, nil
	})
	pool := newConnPool(tr, nil, 1, 10*time.Millisecond)
	conn, err := pool.Dial("x", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	markReusable(conn)
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if pool.idleCount("x") != 1 {
		t.Fatalf("idle count %d, want 1", pool.idleCount("x"))
	}
	time.Sleep(20 * time.Millisecond)
	if _, err := pool.Dial("x", time.Second); err != nil {
		t.Fatal(err)
	}
	if dialed != 2 {
		t.Fatalf("dialed %d times, want 2 (expired conn must not be reused)", dialed)
	}
	pool.Close()
}

// TestGossipPropagatesMembership: with gossip on, a peer that only
// ever met the bootstrap learns the rest of the overlay from gossip
// batches, and announcements refresh already-probed cache entries.
func TestGossipPropagatesMembership(t *testing.T) {
	reg := obs.NewRegistry()
	gossip := GossipConfig{Interval: 20 * time.Millisecond, Fanout: 2, Batch: 8}
	a, err := Start(Config{Listen: "127.0.0.1:0", CPU: 10, Memory: 10, Gossip: gossip, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := Start(Config{Listen: "127.0.0.1:0", CPU: 10, Memory: 10, Gossip: gossip})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	if err := b.Join(a.Addr()); err != nil {
		t.Fatal(err)
	}
	// c joins through b only: it learns a's address via gossip alone
	// (Join announces to the members c knows — just b).
	c, err := Start(Config{Listen: "127.0.0.1:0", CPU: 10, Memory: 10, Gossip: gossip})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.Join(b.Addr()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		members := c.Members()
		if len(members) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("c still only knows %v", members)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// a's gossip counters moved: it sent rounds and ingested batches.
	deadline = time.Now().Add(3 * time.Second)
	for {
		snap := reg.Snapshot()
		if snapCounter(t, snap, "gossip.rounds_sent") > 0 &&
			snapCounter(t, snap, "gossip.batches_recv") > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("gossip counters never moved")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGossipRefreshKeepsRTT: a gossiped announcement about an
// already-probed peer refreshes availability and measurement time but
// never overwrites the directly measured RTT.
func TestGossipRefreshKeepsRTT(t *testing.T) {
	p, err := Start(Config{Listen: "127.0.0.1:0", CPU: 10, Memory: 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	stale := time.Now().Add(-10 * time.Second)
	p.mu.Lock()
	p.probes["10.9.9.9:1"] = probeResult{alive: true, rtt: 7 * time.Millisecond,
		uptime: time.Second, measured: stale}
	p.mu.Unlock()
	resp := p.handleGossip(request{Type: msgGossip, Addr: "10.0.0.2:1", Anns: []wireAnn{
		{Addr: "10.9.9.9:1", Avail: []float64{4, 4}, UptimeSec: 11, AgeSec: 0.5},
		{Addr: "10.8.8.8:1", Avail: []float64{1, 1}, UptimeSec: 2}, // never probed: learned only
	}})
	if !resp.OK {
		t.Fatalf("gossip rejected: %+v", resp)
	}
	p.mu.Lock()
	got := p.probes["10.9.9.9:1"]
	_, neverProbed := p.probes["10.8.8.8:1"]
	members := len(p.members)
	p.mu.Unlock()
	if got.rtt != 7*time.Millisecond {
		t.Errorf("gossip overwrote the measured RTT: %v", got.rtt)
	}
	if got.avail[0] != 4 || got.uptime != 11*time.Second {
		t.Errorf("gossip did not refresh availability: %+v", got)
	}
	if !got.measured.After(stale) {
		t.Error("gossip did not advance the measurement time")
	}
	if neverProbed {
		t.Error("gossip minted a probe entry for a peer never probed directly")
	}
	if members != 3 {
		t.Errorf("learned %d members, want 3 (sender + two announced)", members)
	}
}
