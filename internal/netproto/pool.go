package netproto

import (
	"net"
	"sync"
	"time"
)

// connPool is a Transport decorator that keeps cleanly finished TCP
// connections open for reuse, so an open-loop client (or a busy peer's
// select/probe fan-out) pays the dial handshake once per target rather
// than once per RPC. Reuse is opt-in per exchange: rpcWith marks a
// connection Reusable only after the response decoded cleanly, so a
// half-read stream is never parked.
//
// Pooled connections idle at most ttl before being torn down — kept
// well under the server's per-connection read deadline so the pool
// never hands out a connection the far side is about to reap.
type connPool struct {
	inner   Transport
	tele    *wireTele
	perAddr int
	ttl     time.Duration

	mu     sync.Mutex
	idle   map[string][]*pooledConn
	closed bool
}

func newConnPool(inner Transport, tele *wireTele, perAddr int, ttl time.Duration) *connPool {
	if perAddr <= 0 {
		perAddr = 2
	}
	if ttl <= 0 {
		ttl = 4 * time.Second
	}
	return &connPool{
		inner:   inner,
		tele:    tele,
		perAddr: perAddr,
		ttl:     ttl,
		idle:    make(map[string][]*pooledConn),
	}
}

// Dial implements Transport: a fresh-enough idle connection to addr is
// reused, otherwise the inner transport dials.
func (p *connPool) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	p.mu.Lock()
	for {
		conns := p.idle[addr]
		if len(conns) == 0 {
			break
		}
		// LIFO: the most recently parked connection is the least likely
		// to have idled past its welcome.
		pc := conns[len(conns)-1]
		p.idle[addr] = conns[:len(conns)-1]
		if time.Since(pc.parked) < p.ttl {
			p.mu.Unlock()
			p.tele.connReuse1()
			return pc, nil
		}
		_ = pc.Conn.Close()
	}
	p.mu.Unlock()
	conn, err := p.inner.Dial(addr, timeout)
	if err != nil {
		return nil, err
	}
	p.tele.connDial1()
	return &pooledConn{Conn: conn, pool: p, addr: addr}, nil
}

// put parks a reusable connection, or closes it when the pool is full
// or shut down.
func (p *connPool) put(pc *pooledConn) error {
	// Clear the exchange deadline so the parked socket does not fire a
	// stale timer into its next user.
	if err := pc.Conn.SetDeadline(time.Time{}); err != nil {
		return pc.Conn.Close()
	}
	p.mu.Lock()
	if p.closed || len(p.idle[pc.addr]) >= p.perAddr {
		p.mu.Unlock()
		return pc.Conn.Close()
	}
	pc.parked = time.Now()
	p.idle[pc.addr] = append(p.idle[pc.addr], pc)
	p.mu.Unlock()
	return nil
}

// Close tears down every idle connection and stops further pooling;
// in-flight connections close normally when their exchange ends.
func (p *connPool) Close() {
	p.mu.Lock()
	p.closed = true
	idle := p.idle
	p.idle = make(map[string][]*pooledConn)
	p.mu.Unlock()
	for _, conns := range idle {
		for _, pc := range conns {
			_ = pc.Conn.Close()
		}
	}
}

// idleCount reports pooled connections to addr (tests).
func (p *connPool) idleCount(addr string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle[addr])
}

// pooledConn wraps one transport connection. Close returns it to the
// pool when the last exchange marked it reusable; otherwise the
// underlying connection really closes.
type pooledConn struct {
	net.Conn
	pool   *connPool
	addr   string
	reuse  bool
	parked time.Time
}

// Reusable marks the connection's stream as cleanly message-aligned.
func (pc *pooledConn) Reusable() { pc.reuse = true }

// Close implements net.Conn.
func (pc *pooledConn) Close() error {
	if pc.reuse {
		pc.reuse = false
		return pc.pool.put(pc)
	}
	return pc.Conn.Close()
}
