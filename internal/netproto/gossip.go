package netproto

import (
	"sort"
	"time"

	"repro/internal/resource"
)

// Batched probe/announcement gossip (DESIGN §14). Without it, keeping
// N peers' availability fresh costs O(N) probe RPCs per peer per cache
// TTL — the background traffic the paper's full-membership prototype
// cannot afford at scale. With it, each peer sends ONE batch per
// interval to a small fanout: its own announcement plus its freshest
// cached measurements of others. Receivers use the batch to refresh
// probe-cache entries they already measured directly (keeping their
// own RTT — network quality is never taken on hearsay) and to learn
// members they had not met, so the next aggregation skips that many
// direct probes.

// GossipConfig parameterizes the batched announcement plane.
type GossipConfig struct {
	// Interval between gossip rounds. 0 disables gossip entirely (the
	// default — background traffic is opt-in).
	Interval time.Duration
	// Fanout is the number of members contacted per round. Default 2.
	Fanout int
	// Batch caps the announcements per message (self + cached
	// measurements of others). Default 16.
	Batch int
}

func (g *GossipConfig) fillDefaults() {
	if g.Interval <= 0 {
		return // disabled
	}
	if g.Fanout == 0 {
		g.Fanout = 2
	}
	if g.Batch == 0 {
		g.Batch = 16
	}
}

// gossipLoop runs rounds until Close.
func (p *Peer) gossipLoop() {
	defer p.wg.Done()
	ticker := time.NewTicker(p.cfg.Gossip.Interval)
	defer ticker.Stop()
	for round := 0; ; round++ {
		select {
		case <-p.done:
			return
		case <-ticker.C:
		}
		p.gossipRound(round)
	}
}

// gossipRound sends one announcement batch to Fanout members. Targets
// rotate deterministically through the sorted membership, so every
// member is refreshed within ⌈N/Fanout⌉ rounds — no randomized
// coupon-collector tail.
func (p *Peer) gossipRound(round int) {
	members := p.Members()
	if len(members) == 0 {
		return
	}
	req := request{Type: msgGossip, Addr: p.addr, Anns: p.gossipAnns()}
	fanout := p.cfg.Gossip.Fanout
	if fanout > len(members) {
		fanout = len(members)
	}
	for i := 0; i < fanout; i++ {
		target := members[(round*fanout+i)%len(members)]
		// Best effort, retried — gossip is idempotent, and a member that
		// stays unreachable is aged out by the probe plane anyway.
		_, _ = p.rpcRetry(target, req, p.cfg.RPCTimeout)
	}
	p.tele.gossipRound()
}

// gossipAnns assembles the outgoing batch: this peer's own fresh
// announcement first, then the freshest live probe-cache entries,
// oldest information dropped first when the batch cap binds.
func (p *Peer) gossipAnns() []wireAnn {
	p.mu.Lock()
	defer p.mu.Unlock()
	batch := p.cfg.Gossip.Batch
	anns := make([]wireAnn, 0, batch)
	services := make([]string, 0, len(p.provides))
	seen := make(map[string]bool, len(p.provides))
	for _, in := range p.provides {
		if !seen[string(in.Service)] {
			seen[string(in.Service)] = true
			services = append(services, string(in.Service))
		}
	}
	sort.Strings(services)
	avail := p.ledger.Available()
	anns = append(anns, wireAnn{
		Addr:      p.addr,
		Avail:     []float64{avail[resource.CPU], avail[resource.Memory]},
		UptimeSec: time.Since(p.start).Seconds(),
		Services:  services,
	})
	type aged struct {
		addr string
		res  probeResult
	}
	cached := make([]aged, 0, len(p.probes))
	for addr, res := range p.probes {
		if res.alive {
			cached = append(cached, aged{addr, res})
		}
	}
	sort.Slice(cached, func(i, j int) bool {
		if !cached[i].res.measured.Equal(cached[j].res.measured) {
			return cached[i].res.measured.After(cached[j].res.measured)
		}
		return cached[i].addr < cached[j].addr
	})
	covered := make(map[string]bool, len(cached)+1)
	covered[p.addr] = true
	for _, c := range cached {
		if len(anns) >= batch {
			break
		}
		covered[c.addr] = true
		anns = append(anns, wireAnn{
			Addr:      c.addr,
			Avail:     []float64{c.res.avail[resource.CPU], c.res.avail[resource.Memory]},
			UptimeSec: c.res.uptime.Seconds(),
			AgeSec:    time.Since(c.res.measured).Seconds(),
		})
	}
	// Membership anti-entropy: members this peer has not measured ride
	// along as bare announcements (address only), so a partially joined
	// overlay converges on full membership without extra RPCs.
	members := p.memberListLocked()
	for _, m := range members {
		if len(anns) >= batch {
			break
		}
		if !covered[m] {
			anns = append(anns, wireAnn{Addr: m})
		}
	}
	return anns
}

// handleGossip ingests one announcement batch: unknown addresses join
// the membership, and announcements about peers this node has already
// probed refresh those cache entries when the gossiped measurement is
// newer — keeping the directly measured RTT, which gossip cannot
// speak for.
func (p *Peer) handleGossip(req request) response {
	now := time.Now()
	p.mu.Lock()
	learned, refreshed := 0, 0
	learn := func(addr string) {
		if addr != "" && addr != p.addr && !p.members[addr] {
			p.members[addr] = true
			learned++
		}
	}
	learn(req.Addr)
	for _, a := range req.Anns {
		learn(a.Addr)
		if a.Addr == p.addr || len(a.Avail) < 2 {
			continue
		}
		cur, ok := p.probes[a.Addr]
		if !ok || !cur.alive {
			// Never measured (or last seen dead): first contact stays a
			// direct probe, so liveness and RTT are always first-hand.
			continue
		}
		measured := now.Add(-time.Duration(a.AgeSec * float64(time.Second)))
		if !measured.After(cur.measured) {
			continue
		}
		cur.avail = resource.Vec2(a.Avail[resource.CPU], a.Avail[resource.Memory])
		cur.uptime = time.Duration(a.UptimeSec * float64(time.Second))
		cur.measured = measured
		p.probes[a.Addr] = cur
		refreshed++
	}
	p.mu.Unlock()
	p.tele.gossipBatch(learned, refreshed)
	return response{OK: true}
}
