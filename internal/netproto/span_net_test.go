package netproto

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/wire"
)

// tracedPeer starts a peer with its own tracer writing into a buffer,
// so tests can assert on the per-peer event streams.
func tracedPeer(t *testing.T, cpu float64) (*Peer, *bytes.Buffer, *obs.Tracer) {
	t.Helper()
	var buf bytes.Buffer
	begin := time.Now()
	tr := obs.NewTracer(&buf, func() float64 { return time.Since(begin).Seconds() })
	p, err := Start(Config{Listen: "127.0.0.1:0", CPU: cpu, Memory: cpu,
		RPCTimeout: 2 * time.Second, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p, &buf, tr
}

// TestSpansStitchAcrossPeers is the tentpole's cross-peer property: the
// initiator's request span tree and the serving peers' spans share one
// trace ID, with parent links that cross the wire through the RPC
// envelope's trace context.
func TestSpansStitchAcrossPeers(t *testing.T) {
	type traced struct {
		p   *Peer
		buf *bytes.Buffer
		tr  *obs.Tracer
	}
	peers := make([]traced, 4)
	for i := range peers {
		p, buf, tr := tracedPeer(t, 200)
		peers[i] = traced{p: p, buf: buf, tr: tr}
		if i > 0 {
			if err := p.Join(peers[0].p.Addr()); err != nil {
				t.Fatal(err)
			}
		}
	}
	src := inst("source#0", "source", "RAW", "MPEG", 50, 40)
	snk := inst("player#0", "player", "MPEG", "SCREEN", 30, 30)
	if err := peers[1].p.Provide(src); err != nil {
		t.Fatal(err)
	}
	if err := peers[2].p.Provide(snk); err != nil {
		t.Fatal(err)
	}
	user := peers[3]
	if _, err := user.p.Aggregate([]service.Name{"source", "player"}, userQoS, 300*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	events := make([][]obs.Event, len(peers))
	for i := range peers {
		if err := peers[i].tr.Flush(); err != nil {
			t.Fatal(err)
		}
		evs, err := obs.ReadEvents(peers[i].buf)
		if err != nil {
			t.Fatalf("peer %d stream: %v", i, err)
		}
		events[i] = evs
	}

	// The initiator's tree: one root (no parent) plus the four stage
	// children, all under one trace.
	var root *obs.Event
	stages := map[string]*obs.Event{}
	for i := range events[3] {
		ev := &events[3][i]
		if ev.Kind != obs.KindSpan {
			continue
		}
		if ev.Parent == 0 && ev.Stage == "" {
			if root != nil {
				t.Fatal("more than one root span at the initiator")
			}
			root = ev
		} else if ev.Stage != "" && ev.Hop == 0 && ev.At == "" && stages[ev.Stage] == nil {
			// Stage spans carry no hop/peer attribution; the initiator's
			// own selection-hop spans (it executes the first hop locally)
			// do.
			stages[ev.Stage] = ev
		}
	}
	if root == nil {
		t.Fatal("initiator emitted no root span")
	}
	if !root.OK || root.Session == "" || root.Req != 1 {
		t.Fatalf("root span outcome wrong: %+v", root)
	}
	for _, want := range []string{obs.StageDiscovery, obs.StageCompose, obs.StageSelection, obs.StageAdmission} {
		sp := stages[want]
		if sp == nil {
			t.Fatalf("initiator missing %s stage span", want)
		}
		if sp.Trace != root.Trace {
			t.Errorf("%s span in trace %x, root in %x", want, sp.Trace, root.Trace)
		}
		if sp.Parent != root.Span {
			t.Errorf("%s span parented under %x, want root %x", want, sp.Parent, root.Span)
		}
		if !sp.OK {
			t.Errorf("%s stage span not OK: %+v", want, sp)
		}
		// Exact endpoint reconciliation: the stage lies inside the root.
		if start := sp.T - sp.Duration; start < root.T-root.Duration-1e-9 || sp.T > root.T+1e-9 {
			t.Errorf("%s span [%v, %v] outside root [%v, %v]", want, start, sp.T, root.T-root.Duration, root.T)
		}
	}

	// Serving peers: every span they emitted joined the initiator's
	// trace (selection hops chain across peers; reservations parent
	// under the admission stage span).
	sawRemoteSelection, sawReserve := false, false
	localSpanIDs := map[uint64]bool{root.Span: true}
	for _, sp := range stages {
		localSpanIDs[sp.Span] = true
	}
	for i := 0; i < 3; i++ {
		for _, ev := range events[i] {
			if ev.Kind != obs.KindSpan {
				continue
			}
			if ev.Trace != root.Trace {
				t.Fatalf("peer %d span in foreign trace %x: %+v", i, ev.Trace, ev)
			}
			if ev.Parent == 0 {
				t.Fatalf("peer %d span must be parented: %+v", i, ev)
			}
			switch ev.Stage {
			case obs.StageSelection:
				sawRemoteSelection = true
			case obs.StageAdmission:
				sawReserve = true
				if !localSpanIDs[ev.Parent] {
					t.Errorf("reserve span parented under unknown span %x", ev.Parent)
				}
			}
		}
	}
	if !sawRemoteSelection {
		t.Error("no serving peer emitted a selection hop span")
	}
	if !sawReserve {
		t.Error("no serving peer emitted a reservation span")
	}
}

// TestAggregateTracingOffMatchesOn: disabling the tracer must not
// change the functional outcome of an aggregation (same plan shape),
// and the untraced peer emits nothing.
func TestAggregateTracingOffMatchesOn(t *testing.T) {
	run := func(traced bool) *Plan {
		var tr *obs.Tracer
		if traced {
			begin := time.Now()
			tr = obs.NewTracer(&bytes.Buffer{}, func() float64 { return time.Since(begin).Seconds() })
		}
		boot, err := Start(Config{Listen: "127.0.0.1:0", CPU: 100, Memory: 100})
		if err != nil {
			t.Fatal(err)
		}
		defer boot.Close()
		user, err := Start(Config{Listen: "127.0.0.1:0", CPU: 100, Memory: 100, Tracer: tr})
		if err != nil {
			t.Fatal(err)
		}
		defer user.Close()
		if err := user.Join(boot.Addr()); err != nil {
			t.Fatal(err)
		}
		if err := boot.Provide(inst("source#0", "source", "RAW", "MPEG", 10, 40)); err != nil {
			t.Fatal(err)
		}
		plan, err := user.Aggregate([]service.Name{"source"}, userQoS, 100*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}
	on, off := run(true), run(false)
	if len(on.Peers) != len(off.Peers) || on.Instances[0] != off.Instances[0] || on.Cost != off.Cost {
		t.Fatalf("tracing changed the aggregation outcome:\non:  %+v\noff: %+v", on, off)
	}
}

// TestTraceSampleGatesSpans: TraceSample 0 falls back to the default of
// 1 (the Tracer itself is the opt-in), out-of-range values are rejected,
// and an infinitesimal fraction keeps every span — local and remote —
// out of the stream while the decision events still flow.
func TestTraceSampleGatesSpans(t *testing.T) {
	if err := (Config{TraceSample: 1.5}).Validate(); err == nil {
		t.Fatal("TraceSample 1.5 accepted")
	}
	if err := (Config{TraceSample: -0.1}).Validate(); err == nil {
		t.Fatal("TraceSample -0.1 accepted")
	}

	boot, err := Start(Config{Listen: "127.0.0.1:0", CPU: 100, Memory: 100})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { boot.Close() })
	if err := boot.Provide(inst("source#0", "source", "RAW", "MPEG", 10, 40)); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	begin := time.Now()
	tr := obs.NewTracer(&buf, func() float64 { return time.Since(begin).Seconds() })
	user, err := Start(Config{Listen: "127.0.0.1:0", CPU: 100, Memory: 100,
		Tracer: tr, TraceSample: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { user.Close() })
	if err := user.Join(boot.Addr()); err != nil {
		t.Fatal(err)
	}
	if _, err := user.Aggregate([]service.Name{"source"}, userQoS, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sawAdmit := false
	for _, ev := range events {
		if ev.Kind == obs.KindSpan {
			t.Fatalf("unsampled request emitted a span: %+v", ev)
		}
		if ev.Kind == obs.KindAdmit {
			sawAdmit = true
		}
	}
	if !sawAdmit {
		t.Fatal("decision stream missing with sampling off")
	}
}

// TestUDPTraceEvents pins the transport-level trace events: a dropped
// first transmission surfaces as a retransmit event carrying the
// message's trace context, and the duplicate delivery it causes
// surfaces as an (unparented) dedup-replay event at the server.
func TestUDPTraceEvents(t *testing.T) {
	var sbuf bytes.Buffer
	sBegin := time.Now()
	str := obs.NewTracer(&sbuf, func() float64 { return time.Since(sBegin).Seconds() })
	server, err := Start(Config{Listen: "127.0.0.1:0", Network: "udp",
		CPU: 10, Memory: 10, Tracer: str})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })

	var cbuf bytes.Buffer
	cBegin := time.Now()
	ctr := obs.NewTracer(&cbuf, func() float64 { return time.Since(cBegin).Seconds() })
	// Drop the very first data packet (forcing a retransmit), duplicate
	// everything after it (forcing a server-side dedup replay).
	filter := &countingFilter{decide: func(seen, size int) PacketDecision {
		if seen == 0 {
			return PacketDecision{Drop: true}
		}
		return PacketDecision{Duplicate: true}
	}}
	tr := &UDPTransport{tracer: ctr}
	tr.cfg = WireConfig{AckTimeout: 10 * time.Millisecond, PacketFilter: filter}
	tr.cfg.fillDefaults()

	resp, err := rpcWith(tr, wire.NewBinary(), nil, server.Addr(),
		request{Type: msgProbe, TraceID: 42, SpanID: 7}, 2*time.Second)
	if err != nil || !resp.OK {
		t.Fatalf("probe: %v %+v", err, resp)
	}

	if err := ctr.Flush(); err != nil {
		t.Fatal(err)
	}
	cevs, err := obs.ReadEvents(&cbuf)
	if err != nil {
		t.Fatal(err)
	}
	var retransmits int
	for _, ev := range cevs {
		if ev.Kind != obs.KindRetransmit {
			continue
		}
		retransmits++
		if ev.Trace != 42 || ev.Span != 7 {
			t.Fatalf("retransmit lost the trace context: %+v", ev)
		}
		if ev.Peer != server.Addr() || ev.Attempt < 1 {
			t.Fatalf("retransmit attribution wrong: %+v", ev)
		}
	}
	if retransmits == 0 {
		t.Fatal("dropped first packet produced no retransmit event")
	}

	// The duplicate delivery reaches the server's dedup cache.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := str.Flush(); err != nil {
			t.Fatal(err)
		}
		sevs, err := obs.ReadEvents(bytes.NewReader(sbuf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, ev := range sevs {
			if ev.Kind == obs.KindDupReplay && ev.Peer != "" && ev.Trace == 0 {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("duplicate delivery produced no dedup-replay event")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
