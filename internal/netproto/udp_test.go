package netproto

import (
	"bufio"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/wire"
)

// udpCluster starts n peers speaking binary over the reliable-datagram
// stack, joined into one overlay. Every peer records wire metrics.
func udpCluster(t *testing.T, n int, cpu float64, wc WireConfig) ([]*Peer, []*obs.Registry) {
	t.Helper()
	peers := make([]*Peer, n)
	regs := make([]*obs.Registry, n)
	for i := range peers {
		regs[i] = obs.NewRegistry()
		p, err := Start(Config{
			Listen: "127.0.0.1:0", Network: "udp",
			CPU: cpu, Memory: cpu,
			RPCTimeout: 2 * time.Second,
			Wire:       wc,
			Metrics:    regs[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		peers[i] = p
		if i > 0 {
			if err := p.Join(peers[0].Addr()); err != nil {
				t.Fatal(err)
			}
		}
	}
	return peers, regs
}

// TestUDPAggregateEndToEnd runs the full two-tier flow — join, lookup
// fan-out, probe, hop-by-hop select, reserve — entirely over UDP with
// the binary codec.
func TestUDPAggregateEndToEnd(t *testing.T) {
	peers, regs := udpCluster(t, 5, 200, WireConfig{})
	src := inst("source#0", "source", "RAW", "MPEG", 50, 40)
	snk := inst("player#0", "player", "MPEG", "SCREEN", 30, 30)
	for _, p := range peers[0:2] {
		if err := p.Provide(src); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range peers[2:4] {
		if err := p.Provide(snk); err != nil {
			t.Fatal(err)
		}
	}
	user := peers[4]
	plan, err := user.Aggregate([]service.Name{"source", "player"}, userQoS, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Peers) != 2 || plan.Instances[0] != "source#0" || plan.Instances[1] != "player#0" {
		t.Fatalf("plan = %+v", plan)
	}
	reserved := false
	for _, p := range peers {
		if p.ActiveSessions() > 0 {
			reserved = true
		}
	}
	if !reserved {
		t.Fatal("no reservations placed")
	}
	// The initiator sent binary bytes for at least lookup and probe.
	for _, typ := range []string{"lookup", "probe"} {
		if regs[4].Counter("wire.bytes_sent."+typ).Value() == 0 {
			t.Fatalf("no wire bytes accounted for %s", typ)
		}
	}
	// Tear down the session over UDP as well (covers release + dedup
	// bookkeeping on the hosts).
	if _, err := rpcWith(user.cfg.Transport, user.codec, nil, plan.Peers[0],
		request{Type: msgRelease, SessionID: plan.SessionID}, time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestBinaryOverTCP pins the third transport corner: binary framing on
// a stream socket (rpcWith's ReadFrame path, the server's sniffing).
func TestBinaryOverTCP(t *testing.T) {
	var peers []*Peer
	for i := 0; i < 3; i++ {
		p, err := Start(Config{Listen: "127.0.0.1:0", Codec: "binary",
			CPU: 100, Memory: 100, RPCTimeout: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		peers = append(peers, p)
		if i > 0 {
			if err := p.Join(peers[0].Addr()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := peers[1].Provide(inst("source#0", "source", "RAW", "MPEG", 10, 40)); err != nil {
		t.Fatal(err)
	}
	plan, err := peers[2].Aggregate([]service.Name{"source"}, userQoS, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Peers) != 1 || plan.Peers[0] != peers[1].Addr() {
		t.Fatalf("plan = %+v", plan)
	}
}

// TestJSONOverUDP pins codec/transport independence: JSON messages ride
// the datagram stack single-shot (their header carries no readable
// idempotency flag, so they never retransmit, but they must work).
func TestJSONOverUDP(t *testing.T) {
	reg := obs.NewRegistry()
	p, err := Start(Config{Listen: "127.0.0.1:0", Network: "udp", Codec: "json",
		CPU: 10, Memory: 10, RPCTimeout: 2 * time.Second, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	q, err := Start(Config{Listen: "127.0.0.1:0", Network: "udp", Codec: "json",
		CPU: 10, Memory: 10, RPCTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { q.Close() })
	if err := q.Join(p.Addr()); err != nil {
		t.Fatal(err)
	}
	if m := q.Members(); len(m) != 1 || m[0] != p.Addr() {
		t.Fatalf("members = %v", m)
	}
}

// countingFilter applies a fixed decision to the first n matching data
// packets and counts everything it sees.
type countingFilter struct {
	mu       sync.Mutex
	decide   func(seen int, size int) PacketDecision
	seen     int
	dropped  int
	duplated int
}

func (f *countingFilter) Packet(dst string, size int) PacketDecision {
	f.mu.Lock()
	defer f.mu.Unlock()
	d := f.decide(f.seen, size)
	f.seen++
	if d.Drop {
		f.dropped++
	}
	if d.Duplicate {
		f.duplated++
	}
	return d
}

// TestUDPRetransmitRecoversDrop drops the first outgoing datagram of
// every exchange on the client side; idempotent RPCs must recover via
// retransmission and the retransmit counter must show it.
func TestUDPRetransmitRecoversDrop(t *testing.T) {
	server, err := Start(Config{Listen: "127.0.0.1:0", Network: "udp",
		CPU: 10, Memory: 10, RPCTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })

	filter := &countingFilter{decide: func(seen, size int) PacketDecision {
		return PacketDecision{Drop: seen == 0}
	}}
	reg := obs.NewRegistry()
	client, err := Start(Config{Listen: "127.0.0.1:0", Network: "udp",
		CPU: 10, Memory: 10, RPCTimeout: 2 * time.Second, Metrics: reg,
		Wire: WireConfig{AckTimeout: 20 * time.Millisecond, PacketFilter: filter}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })

	if err := client.Join(server.Addr()); err != nil {
		t.Fatal(err)
	}
	if filter.dropped == 0 {
		t.Fatal("filter never dropped")
	}
	if reg.Counter("wire.retransmits").Value() == 0 {
		t.Fatal("drop recovered without a recorded retransmit")
	}
}

// rawExchange drives the server's datagram loop directly: it sends msg
// (pre-encoded) as packets from a plain UDP socket and returns the
// reassembled response message.
type rawClient struct {
	t    *testing.T
	sock *net.UDPConn
	cfg  WireConfig
}

func newRawClient(t *testing.T, server string) *rawClient {
	t.Helper()
	raddr, err := net.ResolveUDPAddr("udp", server)
	if err != nil {
		t.Fatal(err)
	}
	sock, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sock.Close() })
	cfg := WireConfig{}
	cfg.fillDefaults()
	return &rawClient{t: t, sock: sock, cfg: cfg}
}

func (rc *rawClient) send(msgID uint64, msg []byte) {
	rc.t.Helper()
	scratch := wire.GetBuf(rc.cfg.MTU)
	defer wire.PutBuf(scratch)
	send := func(b []byte) {
		if _, err := rc.sock.Write(b); err != nil {
			rc.t.Fatal(err)
		}
	}
	if err := sendFragments(&rc.cfg, nil, send, "server", wire.PktData, msgID, msg, scratch); err != nil {
		rc.t.Fatal(err)
	}
}

// recvResponse reads packets until the response message for msgID is
// complete; it reports whether one arrived before the deadline.
func (rc *rawClient) recvResponse(msgID uint64, deadline time.Duration) ([]byte, bool) {
	rc.t.Helper()
	if err := rc.sock.SetReadDeadline(time.Now().Add(deadline)); err != nil {
		rc.t.Fatal(err)
	}
	buf := make([]byte, wire.MaxMTU)
	var asm reassembly
	defer asm.release()
	usable := rc.cfg.MTU - wire.PacketOverhead
	var pkt wire.Packet
	for {
		n, err := rc.sock.Read(buf)
		if err != nil {
			return nil, false
		}
		if err := wire.ParsePacket(buf[:n], &pkt); err != nil || pkt.MsgID != msgID || pkt.Type != wire.PktResp {
			continue
		}
		if asm.add(&pkt, usable) {
			out := append([]byte(nil), asm.buf.B[:asm.msgLen]...)
			return out, true
		}
	}
}

// TestUDPDuplicateReserveExecutesOnce is the at-most-once contract: the
// same reserve message delivered twice (a retransmit that raced the
// ack, or fault-injected duplication) books capacity once, and the
// duplicate gets the cached response back.
func TestUDPDuplicateReserveExecutesOnce(t *testing.T) {
	reg := obs.NewRegistry()
	server, err := Start(Config{Listen: "127.0.0.1:0", Network: "udp",
		CPU: 10, Memory: 10, RPCTimeout: 2 * time.Second, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })

	bin := wire.NewBinary()
	req := request{Type: msgReserve, SessionID: "raw/1", InstanceID: "x",
		CPU: 4, Memory: 4, DurationSec: 30}
	frame, err := bin.AppendRequest(nil, 7, &req)
	if err != nil {
		t.Fatal(err)
	}

	rc := newRawClient(t, server.Addr())
	rc.send(99, frame)
	respFrame, ok := rc.recvResponse(99, 2*time.Second)
	if !ok {
		t.Fatal("no response to first delivery")
	}
	var resp response
	if _, err := bin.DecodeResponse(respFrame, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("reserve failed: %s", resp.Err)
	}
	if av := server.Available(); av[0] != 6 {
		t.Fatalf("available after reserve = %v, want 6", av)
	}

	// Deliver the exact same message again: the server must NOT
	// re-execute — same cached response, unchanged ledger.
	rc.send(99, frame)
	respFrame2, ok := rc.recvResponse(99, 2*time.Second)
	if !ok {
		t.Fatal("no cached response to duplicate delivery")
	}
	var resp2 response
	if _, err := bin.DecodeResponse(respFrame2, &resp2); err != nil {
		t.Fatal(err)
	}
	if !resp2.OK {
		t.Fatalf("duplicate got %+v, want the cached OK", resp2)
	}
	if av := server.Available(); av[0] != 6 {
		t.Fatalf("duplicate reserve changed the ledger: available = %v, want 6", av)
	}
	if reg.Counter("wire.dups_dropped").Value() == 0 {
		t.Fatal("duplicate not counted")
	}
}

// TestUDPFragmentationRoundTrip forces multi-fragment messages both
// ways with a minimum-MTU link and verifies the overlay still works.
func TestUDPFragmentationRoundTrip(t *testing.T) {
	peers, regs := udpCluster(t, 2, 100, WireConfig{MTU: wire.MinMTU})
	long := inst("instance-with-a-rather-long-identifier#0", "source", "RAW", "MPEG", 10, 40)
	if err := peers[0].Provide(long); err != nil {
		t.Fatal(err)
	}
	resp, err := peers[1].rpcRetry(peers[0].Addr(),
		request{Type: msgLookup, Service: "source"}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Offers) != 1 || resp.Offers[0].Instance.ID != long.ID {
		t.Fatalf("offers = %+v", resp.Offers)
	}
	sent := regs[1].Counter("wire.frags_sent").Value()
	if sent < 2 {
		t.Fatalf("frags_sent = %d, want multi-fragment traffic", sent)
	}
}

// TestUDPTimeoutOnBlackhole pins the deadline path: a filter that drops
// everything must surface a timeout, not hang.
func TestUDPTimeoutOnBlackhole(t *testing.T) {
	server, err := Start(Config{Listen: "127.0.0.1:0", Network: "udp",
		CPU: 10, Memory: 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })
	drop := &countingFilter{decide: func(int, int) PacketDecision {
		return PacketDecision{Drop: true}
	}}
	tr := NewUDPTransport(WireConfig{AckTimeout: 10 * time.Millisecond,
		RetransmitBudget: 1, PacketFilter: drop})
	_, err = rpcWith(tr, wire.NewBinary(), nil, server.Addr(),
		request{Type: msgProbe}, 150*time.Millisecond)
	if err == nil {
		t.Fatal("blackholed rpc succeeded")
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v, want timeout", err)
	}
}

// TestUDPDelayedDuplicates exercises the reorder/duplicate filter
// verdicts end to end: every packet is delayed and duplicated, and the
// exchange still completes exactly once.
func TestUDPDelayedDuplicates(t *testing.T) {
	reg := obs.NewRegistry()
	server, err := Start(Config{Listen: "127.0.0.1:0", Network: "udp",
		CPU: 10, Memory: 10, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })
	filter := &countingFilter{decide: func(seen, size int) PacketDecision {
		return PacketDecision{Duplicate: true, Delay: time.Duration(1+seen%3) * time.Millisecond}
	}}
	tr := NewUDPTransport(WireConfig{PacketFilter: filter})
	resp, err := rpcWith(tr, wire.NewBinary(), nil, server.Addr(),
		request{Type: msgProbe}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("probe = %+v", resp)
	}
}

// TestUDPListenerClose pins listener shutdown: Accept unblocks with
// net.ErrClosed and a second Close is a no-op.
func TestUDPListenerClose(t *testing.T) {
	l, err := listenUDP("127.0.0.1:0", WireConfig{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; !errors.Is(err, net.ErrClosed) {
		t.Fatalf("Accept after Close = %v, want net.ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal("second Close must be a no-op")
	}
}

// TestReassemblyRejects pins the packet-level validation: inconsistent
// numbering, oversize payloads, duplicates, and forged fragment counts
// must be ignored without growing state.
func TestReassemblyRejects(t *testing.T) {
	const usable = 100
	mk := func(idx, count uint16, n int) *wire.Packet {
		return &wire.Packet{Type: wire.PktData, MsgID: 1, FragIdx: idx,
			FragCount: count, Payload: make([]byte, n)}
	}
	var a reassembly
	defer a.release()
	if a.add(mk(0, 3, usable), usable) {
		t.Fatal("incomplete message reported complete")
	}
	if a.add(mk(0, 3, usable), usable) {
		t.Fatal("duplicate fragment accepted")
	}
	if a.add(mk(1, 4, usable), usable) {
		t.Fatal("inconsistent FragCount accepted")
	}
	if a.add(mk(1, 3, usable+1), usable) {
		t.Fatal("oversize payload accepted")
	}
	if a.add(mk(1, 3, usable-1), usable) {
		t.Fatal("short non-final fragment accepted")
	}
	if !a.add(mk(1, 3, usable), usable) && a.have != 2 {
		t.Fatal("valid middle fragment rejected")
	}
	if !a.add(mk(2, 3, 10), usable) {
		t.Fatal("final fragment did not complete the message")
	}
	if a.msgLen != 2*usable+10 {
		t.Fatalf("msgLen = %d, want %d", a.msgLen, 2*usable+10)
	}

	var forged reassembly
	defer forged.release()
	huge := &wire.Packet{Type: wire.PktData, MsgID: 2, FragIdx: 0,
		FragCount: 65535, Payload: make([]byte, usable)}
	if forged.add(huge, wire.MaxMessage) {
		t.Fatal("forged FragCount accepted")
	}
	if forged.buf != nil {
		t.Fatal("forged FragCount allocated a buffer")
	}
}

// TestWritePacketVerdicts pins the filter mechanics in isolation.
func TestWritePacketVerdicts(t *testing.T) {
	var mu sync.Mutex
	var sent [][]byte
	send := func(b []byte) {
		mu.Lock()
		sent = append(sent, append([]byte(nil), b...))
		mu.Unlock()
	}
	pkt := []byte("packet")
	writePacket(nil, send, "x", pkt)
	writePacket(&countingFilter{decide: func(int, int) PacketDecision {
		return PacketDecision{Drop: true}
	}}, send, "x", pkt)
	writePacket(&countingFilter{decide: func(int, int) PacketDecision {
		return PacketDecision{Duplicate: true}
	}}, send, "x", pkt)
	mu.Lock()
	n := len(sent)
	mu.Unlock()
	if n != 3 { // 1 plain + 0 dropped + 2 duplicated
		t.Fatalf("sends = %d, want 3", n)
	}
	writePacket(&countingFilter{decide: func(int, int) PacketDecision {
		return PacketDecision{Delay: time.Millisecond, Duplicate: true}
	}}, send, "x", pkt)
	deadline := time.Now().Add(time.Second)
	for {
		mu.Lock()
		n = len(sent)
		mu.Unlock()
		if n == 5 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if n != 5 {
		t.Fatalf("delayed duplicate sends = %d, want 5", n)
	}
}

// TestRetransmitDelayDeterministic pins backoff shape: deterministic
// per (local, remote, attempt), within [d/2, d), capped at 8× base.
func TestRetransmitDelayDeterministic(t *testing.T) {
	base := 40 * time.Millisecond
	for attempt := 0; attempt < 6; attempt++ {
		d1 := retransmitDelay(base, "a:1", "b:2", attempt)
		d2 := retransmitDelay(base, "a:1", "b:2", attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d not deterministic: %v vs %v", attempt, d1, d2)
		}
		full := base
		for i := 0; i < attempt && full < 8*base; i++ {
			full *= 2
		}
		if full > 8*base {
			full = 8 * base
		}
		if d1 < full/2 || d1 >= full {
			t.Fatalf("attempt %d delay %v outside [%v, %v)", attempt, d1, full/2, full)
		}
	}
	if d := retransmitDelay(base, "a:1", "c:3", 0); d == retransmitDelay(base, "a:1", "b:2", 0) {
		t.Fatal("different remotes produced identical jitter")
	}
}

// TestConfigValidateWireKnobs is the edge-case table for the new
// transport and codec configuration.
func TestConfigValidateWireKnobs(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error; "" means valid
	}{
		{"defaults", Config{}, ""},
		{"tcp", Config{Network: "tcp"}, ""},
		{"udp", Config{Network: "udp"}, ""},
		{"bad network", Config{Network: "sctp"}, "unknown network"},
		{"json codec", Config{Codec: "json"}, ""},
		{"binary codec", Config{Codec: "binary"}, ""},
		{"bad codec", Config{Codec: "protobuf"}, "unknown codec"},
		{"mtu below floor", Config{Wire: WireConfig{MTU: wire.MinMTU - 1}}, "MTU"},
		{"mtu above ceiling", Config{Wire: WireConfig{MTU: wire.MaxMTU + 1}}, "MTU"},
		{"mtu at floor", Config{Wire: WireConfig{MTU: wire.MinMTU}}, ""},
		{"mtu at ceiling", Config{Wire: WireConfig{MTU: wire.MaxMTU}}, ""},
		{"negative ack timeout", Config{Wire: WireConfig{AckTimeout: -time.Millisecond}}, "AckTimeout"},
		{"negative retransmit budget", Config{Wire: WireConfig{RetransmitBudget: -1}}, "RetransmitBudget"},
		{"negative dedup ttl", Config{Wire: WireConfig{DedupTTL: -time.Second}}, "DedupTTL"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestStartRejectsBadWireConfig pins that Start refuses a bad MTU
// instead of silently listening with it.
func TestStartRejectsBadWireConfig(t *testing.T) {
	if _, err := Start(Config{Listen: "127.0.0.1:0", Network: "udp",
		Wire: WireConfig{MTU: 10}}); err == nil {
		t.Fatal("Start accepted an impossible MTU")
	}
	if _, err := Start(Config{Listen: "127.0.0.1:0", Network: "quic"}); err == nil {
		t.Fatal("Start accepted an unknown network")
	}
}

// TestUDPBadBinaryRequestSurfacesError pins the server's bad-request
// reply on the binary path: a well-framed but wrong-direction message
// decodes as garbage and must come back as an error response.
func TestUDPBadBinaryRequestSurfacesError(t *testing.T) {
	server, err := Start(Config{Listen: "127.0.0.1:0", Network: "udp",
		CPU: 10, Memory: 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })
	bin := wire.NewBinary()
	// A response frame where a request belongs.
	frame, err := bin.AppendResponse(nil, 3, &response{OK: true})
	if err != nil {
		t.Fatal(err)
	}
	rc := newRawClient(t, server.Addr())
	rc.send(41, frame)
	respFrame, ok := rc.recvResponse(41, 2*time.Second)
	if !ok {
		t.Fatal("no reply to malformed binary request")
	}
	var resp response
	if _, err := bin.DecodeResponse(respFrame, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Err, "bad request") {
		t.Fatalf("resp = %+v, want bad-request error", resp)
	}
}

// TestUDPPacketRejectCounters pins the malformed-datagram accounting:
// garbage and CRC-corrupted packets hit distinct counters.
func TestUDPPacketRejectCounters(t *testing.T) {
	reg := obs.NewRegistry()
	server, err := Start(Config{Listen: "127.0.0.1:0", Network: "udp",
		CPU: 10, Memory: 10, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })
	rc := newRawClient(t, server.Addr())
	// Garbage: wrong magic.
	if _, err := rc.sock.Write([]byte("definitely not a packet")); err != nil {
		t.Fatal(err)
	}
	// Valid packet, one payload byte flipped after framing: CRC failure.
	good := wire.AppendPacket(nil, &wire.Packet{Type: wire.PktData, MsgID: 5,
		FragIdx: 0, FragCount: 1, Payload: []byte("hello")})
	good[wire.PacketHeaderSize] ^= 0xFF
	if _, err := rc.sock.Write(good); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Counter("wire.packet_rejects").Value() >= 1 &&
			reg.Counter("wire.crc_failures").Value() >= 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("rejects = %d, crc failures = %d; want >= 1 each",
		reg.Counter("wire.packet_rejects").Value(),
		reg.Counter("wire.crc_failures").Value())
}

// TestUDPConnPlumbing covers the small net.Conn surface of both conn
// types: address accessors, inert deadlines, read-before-write.
func TestUDPConnPlumbing(t *testing.T) {
	server, err := Start(Config{Listen: "127.0.0.1:0", Network: "udp",
		CPU: 10, Memory: 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })
	tr := NewUDPTransport(WireConfig{})
	conn, err := tr.Dial(server.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if conn.LocalAddr() == nil || conn.RemoteAddr() == nil {
		t.Fatal("nil addresses")
	}
	if err := conn.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := conn.SetWriteDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Read(make([]byte, 16)); err == nil {
		t.Fatal("read before request write must fail")
	}

	l, err := listenUDP("127.0.0.1:0", WireConfig{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	if l.Addr() == nil {
		t.Fatal("nil listener address")
	}
	sc := &udpServerConn{l: l, raddr: &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 1}}
	if sc.LocalAddr() == nil || sc.RemoteAddr() == nil {
		t.Fatal("nil server conn addresses")
	}
	if err := sc.SetDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := sc.SetReadDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := sc.SetWriteDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Read(make([]byte, 4)); err == nil {
		t.Fatal("read of empty server conn must report EOF")
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Write([]byte("late")); err == nil {
		t.Fatal("write after close must fail")
	}
	if err := sc.Close(); err != nil {
		t.Fatal("second close must be a no-op")
	}
}

// TestSweepExpiresState pins the lazy sweep: expired dedup entries go
// away, and a flood of half-assembled messages is dropped wholesale.
func TestSweepExpiresState(t *testing.T) {
	l := &udpListener{
		cfg:  WireConfig{DedupTTL: time.Minute},
		asm:  make(map[dedupKey]*reassembly),
		seen: make(map[dedupKey]*dedupEntry),
	}
	l.cfg.fillDefaults()
	l.seen[dedupKey{addr: "old", id: 1}] = &dedupEntry{expires: time.Now().Add(-time.Second)}
	l.seen[dedupKey{addr: "new", id: 2}] = &dedupEntry{expires: time.Now().Add(time.Hour)}
	for i := 0; i < 1025; i++ {
		l.asm[dedupKey{addr: "flood", id: uint64(i)}] = &reassembly{}
	}
	l.mu.Lock()
	l.sweepLocked()
	l.mu.Unlock()
	if _, ok := l.seen[dedupKey{addr: "old", id: 1}]; ok {
		t.Fatal("expired dedup entry survived the sweep")
	}
	if _, ok := l.seen[dedupKey{addr: "new", id: 2}]; !ok {
		t.Fatal("live dedup entry dropped")
	}
	if len(l.asm) != 0 {
		t.Fatalf("half-assembly flood survived: %d entries", len(l.asm))
	}
	// Within the same second the sweep is a no-op.
	l.seen[dedupKey{addr: "old", id: 3}] = &dedupEntry{expires: time.Now().Add(-time.Second)}
	l.mu.Lock()
	l.sweepLocked()
	l.mu.Unlock()
	if _, ok := l.seen[dedupKey{addr: "old", id: 3}]; !ok {
		t.Fatal("sweep ran again within its rate limit")
	}
}

// TestReadJSONResponseBounds pins the JSON read path's guards.
func TestReadJSONResponseBounds(t *testing.T) {
	var resp response
	big := strings.Repeat("x", 1<<20+2) + "\n"
	err := readJSONResponse(bufio.NewReaderSize(strings.NewReader(big), 1<<21), &resp, nil, "probe")
	if err == nil || !strings.Contains(err.Error(), "oversized") {
		t.Fatalf("oversized line: err = %v", err)
	}
	err = readJSONResponse(bufio.NewReader(strings.NewReader("not json\n")), &resp, nil, "probe")
	if err == nil {
		t.Fatal("garbage line decoded")
	}
	err = readJSONResponse(bufio.NewReader(strings.NewReader("")), &resp, nil, "probe")
	if err == nil {
		t.Fatal("empty stream decoded")
	}
}

// TestPeerLocalSurface covers the small local accessors alongside the
// wire work: uptime advances and local reservations move the ledger.
func TestPeerLocalSurface(t *testing.T) {
	p, err := Start(Config{Listen: "127.0.0.1:0", CPU: 10, Memory: 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	if p.Uptime() < 0 {
		t.Fatal("negative uptime")
	}
	if !p.ReserveLocal(4, 4) {
		t.Fatal("local reserve failed")
	}
	if av := p.Available(); av[0] != 6 {
		t.Fatalf("available = %v, want 6", av)
	}
	p.ReleaseLocal(4, 4)
	if av := p.Available(); av[0] != 10 {
		t.Fatalf("available after release = %v, want 10", av)
	}
}
