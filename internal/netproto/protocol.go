// Package netproto is a working network prototype of the QSA model — the
// prototype the paper leaves as future work ("we will implement a
// prototype of our model and test it in the real Internet environment",
// §6). Peers are real processes (or in-process instances) speaking
// either newline-delimited JSON over TCP (the rollback format) or the
// compact binary framing from internal/wire over TCP or reliable UDP:
//
//   - membership: a joiner contacts any bootstrap peer and announces
//     itself to the membership it learns (full membership at prototype
//     scale, standing in for the simulator's DHT);
//   - discovery: the requesting peer fans a lookup out to the members and
//     merges the (instance spec, provider) offers;
//   - probing: candidates are probed — resource availability and
//     uptime from the response, network quality from the measured RTT;
//   - composition: QCS runs on the requesting peer over the discovered
//     layers (package compose);
//   - peer selection: hop-by-hop over the network — each selected peer
//     receives the select request, probes ITS candidates with ITS own
//     measurements, picks the Φ-best, and forwards the request, exactly
//     the paper's distributed reverse-flow procedure;
//   - admission: reservations are placed on each selected peer for the
//     session duration and auto-expire.
//
// Substitutions relative to the simulator, documented per DESIGN.md §6:
// the network term of Φ uses 100/(1+RTT_ms) as the available-bandwidth
// proxy (a prototype cannot know pairwise bottleneck bandwidth without a
// measurement service like Nettimer, the paper's [12]).
//
// Every RPC dials through an injectable Transport (default: plain TCP;
// internal/faults supplies a deterministic fault-injecting one, and
// UDPTransport the datagram stack from DESIGN.md §12), and the
// idempotent messages (probe, lookup, join, leave, release) retry
// transport failures with bounded exponential backoff — reserve never
// does, because it is not idempotent (see RetryPolicy).
//
// A server never needs codec configuration: the first byte of a message
// distinguishes JSON ('{') from a binary frame (0x51), and the reply
// uses whatever codec the request arrived in.
package netproto

import (
	"bufio"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/qos"
	"repro/internal/resource"
	"repro/internal/service"
	"repro/internal/wire"
)

// The RPC message vocabulary now lives in internal/wire (the leaf
// package both codecs encode); these aliases keep netproto's public
// surface and its call sites unchanged.
type (
	// WireParam is the wire form of one QoS parameter.
	WireParam = wire.Param
	// WireInstance is the wire form of a service instance specification.
	WireInstance = wire.Instance
	// WireCand is one candidate considered during a selection hop.
	WireCand = wire.Cand
	// WireHop is the decision record of one distributed selection hop.
	WireHop = wire.Hop

	request  = wire.Request
	response = wire.Response
	offer    = wire.Offer
	wireAnn  = wire.Ann
)

// Message types.
const (
	msgJoin    = wire.TypeJoin
	msgLeave   = wire.TypeLeave
	msgLookup  = wire.TypeLookup
	msgProbe   = wire.TypeProbe
	msgSelect  = wire.TypeSelect
	msgReserve = wire.TypeReserve
	msgRelease = wire.TypeRelease
	// Serving plane (DESIGN §14).
	msgAggregate = wire.TypeAggregate
	msgGossip    = wire.TypeGossip
)

func toWireParams(v qos.Vector) []WireParam {
	out := make([]WireParam, len(v))
	for i, p := range v {
		out[i] = WireParam{Name: p.Name, Sym: p.Sym, Lo: p.Lo, Hi: p.Hi}
	}
	return out
}

func fromWireParams(ps []WireParam) (qos.Vector, error) {
	params := make([]qos.Param, len(ps))
	for i, p := range ps {
		if p.Sym != "" {
			params[i] = qos.Sym(p.Name, p.Sym)
		} else {
			if p.Hi < p.Lo {
				return nil, fmt.Errorf("netproto: inverted range %q", p.Name)
			}
			params[i] = qos.Range(p.Name, p.Lo, p.Hi)
		}
	}
	return qos.NewVector(params...)
}

// ToWire converts an instance to its wire form.
func ToWire(in *service.Instance) WireInstance {
	return WireInstance{
		ID:      in.ID,
		Service: string(in.Service),
		Qin:     toWireParams(in.Qin),
		Qout:    toWireParams(in.Qout),
		CPU:     in.R[resource.CPU],
		Memory:  in.R[resource.Memory],
		Kbps:    in.OutKbps,
	}
}

// FromWire converts a wire instance back to the domain type.
func FromWire(w WireInstance) (*service.Instance, error) {
	qin, err := fromWireParams(w.Qin)
	if err != nil {
		return nil, err
	}
	qout, err := fromWireParams(w.Qout)
	if err != nil {
		return nil, err
	}
	in := &service.Instance{
		ID:      w.ID,
		Service: service.Name(w.Service),
		Qin:     qin,
		Qout:    qout,
		R:       resource.Vec2(w.CPU, w.Memory),
		OutKbps: w.Kbps,
	}
	return in, in.Validate()
}

// nextReqID correlates binary requests with responses across the
// process (the JSON codec, one exchange per connection, ignores it).
var nextReqID atomic.Uint64

// rpc performs one JSON request/response exchange with addr through tr
// — the legacy entry point, kept for compatibility with older peers
// and tests that speak the rollback format.
func rpc(tr Transport, addr string, req request, timeout time.Duration) (*response, error) {
	return rpcWith(tr, wire.JSON{}, nil, addr, req, timeout)
}

// rpcWith performs one request/response exchange with addr through tr
// using codec, accounting message-level wire bytes into wt (nil
// disables). Encode buffers are pooled; the steady-state binary
// encode/decode path allocates only the response struct the caller
// keeps.
func rpcWith(tr Transport, codec wire.Codec, wt *wireTele, addr string, req request, timeout time.Duration) (*response, error) {
	conn, err := tr.Dial(addr, timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if tc, ok := conn.(traceCarrier); ok {
		// Hand the causal context down to the datagram layer, so a
		// retransmission of this message surfaces inside the request's
		// span tree rather than as an anonymous transport event.
		tc.CarryTrace(req.TraceID, req.SpanID)
	}
	deadline := time.Now().Add(timeout)
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	buf := wire.GetBuf(512)
	defer wire.PutBuf(buf)
	reqID := nextReqID.Add(1)
	buf.B, err = codec.AppendRequest(buf.B[:0], reqID, &req)
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(buf.B); err != nil {
		return nil, err
	}
	wt.message(req.Type, len(buf.B), false)
	var resp response
	if codec.Name() == "json" {
		br := bufio.NewReaderSize(conn, 64<<10)
		if err := readJSONResponse(br, &resp, wt, req.Type); err != nil {
			return nil, err
		}
		markReusable(conn)
	} else {
		var frame []byte
		if mc, ok := conn.(messageConn); ok {
			// Message-oriented transport (UDP): the response arrives as
			// one reassembled message — no stream re-framing needed.
			frame, err = mc.ReadMessage()
		} else {
			br := bufio.NewReaderSize(conn, 64<<10)
			buf.B, err = wire.ReadFrame(br, buf.B)
			frame = buf.B
		}
		if err != nil {
			return nil, err
		}
		gotID, err := codec.DecodeResponse(frame, &resp)
		if err != nil {
			return nil, err
		}
		if gotID != reqID {
			return nil, fmt.Errorf("netproto: response correlation mismatch (%d != %d)", gotID, reqID)
		}
		wt.message(req.Type, len(frame), true)
		markReusable(conn)
	}
	if !resp.OK {
		return &resp, fmt.Errorf("netproto: %s failed at %s: %s", req.Type, addr, resp.Err)
	}
	return &resp, nil
}

// markReusable tells a pooled connection (see connPool) the exchange
// completed cleanly — the stream is still message-aligned, so Close
// may park it for reuse instead of tearing it down. A plain net.Conn
// ignores this.
func markReusable(conn net.Conn) {
	if rc, ok := conn.(interface{ Reusable() }); ok {
		rc.Reusable()
	}
}

// readJSONResponse reads one newline-delimited JSON reply. Split out
// so the JSON-era 1 MiB read bound keeps a single owner.
func readJSONResponse(br *bufio.Reader, resp *response, wt *wireTele, typ string) error {
	line, err := br.ReadBytes('\n')
	if err != nil && len(line) == 0 {
		return err
	}
	if len(line) > 1<<20 {
		return fmt.Errorf("netproto: oversized JSON response (%d bytes)", len(line))
	}
	if _, err := (wire.JSON{}).DecodeResponse(line, resp); err != nil {
		return err
	}
	wt.message(typ, len(line), true)
	return nil
}
