// Package netproto is a working network prototype of the QSA model — the
// prototype the paper leaves as future work ("we will implement a
// prototype of our model and test it in the real Internet environment",
// §6). Peers are real processes (or in-process instances) speaking
// newline-delimited JSON over TCP:
//
//   - membership: a joiner contacts any bootstrap peer and announces
//     itself to the membership it learns (full membership at prototype
//     scale, standing in for the simulator's DHT);
//   - discovery: the requesting peer fans a lookup out to the members and
//     merges the (instance spec, provider) offers;
//   - probing: candidates are probed over TCP — resource availability and
//     uptime from the response, network quality from the measured RTT;
//   - composition: QCS runs on the requesting peer over the discovered
//     layers (package compose);
//   - peer selection: hop-by-hop over the network — each selected peer
//     receives the select request, probes ITS candidates with ITS own
//     measurements, picks the Φ-best, and forwards the request, exactly
//     the paper's distributed reverse-flow procedure;
//   - admission: reservations are placed on each selected peer for the
//     session duration and auto-expire.
//
// Substitutions relative to the simulator, documented per DESIGN.md §6:
// the network term of Φ uses 100/(1+RTT_ms) as the available-bandwidth
// proxy (a prototype cannot know pairwise bottleneck bandwidth without a
// measurement service like Nettimer, the paper's [12]).
//
// Every RPC dials through an injectable Transport (default: plain TCP;
// internal/faults supplies a deterministic fault-injecting one), and the
// idempotent messages (probe, lookup, join, leave, release) retry
// transport failures with bounded exponential backoff — reserve never
// does, because it is not idempotent (see RetryPolicy).
package netproto

import (
	"bufio"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/qos"
	"repro/internal/resource"
	"repro/internal/service"
)

// WireParam is the JSON form of one QoS parameter.
type WireParam struct {
	Name string  `json:"name"`
	Sym  string  `json:"sym,omitempty"`
	Lo   float64 `json:"lo,omitempty"`
	Hi   float64 `json:"hi,omitempty"`
}

// WireInstance is the JSON form of a service instance specification.
type WireInstance struct {
	ID      string      `json:"id"`
	Service string      `json:"service"`
	Qin     []WireParam `json:"qin"`
	Qout    []WireParam `json:"qout"`
	CPU     float64     `json:"cpu"`
	Memory  float64     `json:"memory"`
	Kbps    float64     `json:"kbps"`
}

func toWireParams(v qos.Vector) []WireParam {
	out := make([]WireParam, len(v))
	for i, p := range v {
		out[i] = WireParam{Name: p.Name, Sym: p.Sym, Lo: p.Lo, Hi: p.Hi}
	}
	return out
}

func fromWireParams(ps []WireParam) (qos.Vector, error) {
	params := make([]qos.Param, len(ps))
	for i, p := range ps {
		if p.Sym != "" {
			params[i] = qos.Sym(p.Name, p.Sym)
		} else {
			if p.Hi < p.Lo {
				return nil, fmt.Errorf("netproto: inverted range %q", p.Name)
			}
			params[i] = qos.Range(p.Name, p.Lo, p.Hi)
		}
	}
	return qos.NewVector(params...)
}

// ToWire converts an instance to its wire form.
func ToWire(in *service.Instance) WireInstance {
	return WireInstance{
		ID:      in.ID,
		Service: string(in.Service),
		Qin:     toWireParams(in.Qin),
		Qout:    toWireParams(in.Qout),
		CPU:     in.R[resource.CPU],
		Memory:  in.R[resource.Memory],
		Kbps:    in.OutKbps,
	}
}

// FromWire converts a wire instance back to the domain type.
func FromWire(w WireInstance) (*service.Instance, error) {
	qin, err := fromWireParams(w.Qin)
	if err != nil {
		return nil, err
	}
	qout, err := fromWireParams(w.Qout)
	if err != nil {
		return nil, err
	}
	in := &service.Instance{
		ID:      w.ID,
		Service: service.Name(w.Service),
		Qin:     qin,
		Qout:    qout,
		R:       resource.Vec2(w.CPU, w.Memory),
		OutKbps: w.Kbps,
	}
	return in, in.Validate()
}

// Message types.
const (
	msgJoin    = "join"    // announce a member; response carries membership
	msgLeave   = "leave"   // graceful departure announcement
	msgLookup  = "lookup"  // discover this peer's registrations of a service
	msgProbe   = "probe"   // resource availability + uptime
	msgSelect  = "select"  // continue hop-by-hop selection at this peer
	msgReserve = "reserve" // reserve resources for a session
	msgRelease = "release" // drop a session's reservation early
)

// WireCand is one candidate considered during a selection hop, with the
// Φ value it scored (when probed) and why it was or was not chosen.
type WireCand struct {
	Addr   string  `json:"addr"`
	Phi    float64 `json:"phi,omitempty"`
	Reason string  `json:"reason"`
}

// WireHop is the decision record of one distributed selection hop,
// carried back through the select recursion when the initiator asked for
// tracing (request.Trace). Idx is the 0-based instance index in
// aggregation-flow order; At is the peer that executed the step.
type WireHop struct {
	Idx    int        `json:"idx"`
	At     string     `json:"at"`
	Inst   string     `json:"inst"`
	Chosen string     `json:"chosen,omitempty"`
	Mode   string     `json:"mode,omitempty"`
	Cands  []WireCand `json:"cands,omitempty"`
}

// request is the wire envelope for every RPC.
type request struct {
	Type string `json:"type"`

	// join
	Addr string `json:"addr,omitempty"`

	// lookup
	Service string `json:"service,omitempty"`

	// select
	Instances  []WireInstance      `json:"instances,omitempty"`
	Candidates map[string][]string `json:"candidates,omitempty"` // instance ID -> provider addrs
	Idx        int                 `json:"idx,omitempty"`
	Chain      []string            `json:"chain,omitempty"`
	UserAddr   string              `json:"user_addr,omitempty"`
	Trace      bool                `json:"trace,omitempty"` // carry WireHop decision records back

	// reserve / release
	SessionID   string  `json:"session_id,omitempty"`
	InstanceID  string  `json:"instance_id,omitempty"`
	CPU         float64 `json:"cpu,omitempty"`
	Memory      float64 `json:"memory,omitempty"`
	DurationSec float64 `json:"duration_sec,omitempty"`
}

// offer is one (instance, provider) discovery result.
type offer struct {
	Instance WireInstance `json:"instance"`
	Provider string       `json:"provider"`
}

// response is the wire envelope for every reply.
type response struct {
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`

	Members []string `json:"members,omitempty"`
	Offers  []offer  `json:"offers,omitempty"`

	// probe
	Avail     []float64 `json:"avail,omitempty"`
	UptimeSec float64   `json:"uptime_sec,omitempty"`

	// select
	Chain []string  `json:"chain,omitempty"`
	Hops  []WireHop `json:"hops,omitempty"` // per-hop decision records (request.Trace)
}

// rpc performs one request/response exchange with addr through tr.
func rpc(tr Transport, addr string, req request, timeout time.Duration) (*response, error) {
	conn, err := tr.Dial(addr, timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	deadline := time.Now().Add(timeout)
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	enc := json.NewEncoder(conn)
	if err := enc.Encode(req); err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(conn, 1<<20)
	dec := json.NewDecoder(br)
	var resp response
	if err := dec.Decode(&resp); err != nil {
		return nil, err
	}
	if !resp.OK {
		return &resp, fmt.Errorf("netproto: %s failed at %s: %s", req.Type, addr, resp.Err)
	}
	return &resp, nil
}
