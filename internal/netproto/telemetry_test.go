// Telemetry-plane chaos test: run aggregations over a lossy fabric with
// tracing and metrics enabled, then check that the decision trace
// attributes every request to a concrete outcome that matches what the
// caller observed, and that the metric counters saw the same traffic.
package netproto_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/netproto"
	"repro/internal/obs"
	"repro/internal/service"
)

func TestTelemetryChaosAttribution(t *testing.T) {
	fab, err := faults.New(faults.Config{
		Seed:          42,
		DropRate:      0.10,
		Latency:       time.Millisecond,
		LatencyJitter: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	var tick uint64
	tracer := obs.NewTracer(&buf, func() float64 { tick++; return float64(tick) })

	const cpu = 400
	peers := chaosCluster(t, fab, 5, cpu, func(i int, cfg *netproto.Config) {
		cfg.Metrics = reg // fleet-wide registry: counters aggregate across peers
		if i == 4 {
			cfg.Tracer = tracer // only the initiator traces its aggregations
			cfg.MonitorInterval = 50 * time.Millisecond
		}
	})
	src := chaosInst("source#0", "source", "RAW", "MPEG", 40)
	snk := chaosInst("player#0", "player", "MPEG", "SCREEN", 30)
	for _, p := range peers[1:3] {
		if err := p.Provide(src); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range peers[2:4] {
		if err := p.Provide(snk); err != nil {
			t.Fatal(err)
		}
	}
	user := peers[4]
	const requests = 8
	okCount, failCount := 0, 0
	var sids []string
	for i := 0; i < requests; i++ {
		plan, err := user.Aggregate([]service.Name{"source", "player"}, chaosQoS, 250*time.Millisecond)
		if err != nil {
			failCount++
			continue
		}
		okCount++
		sids = append(sids, plan.SessionID)
	}
	// Wait for the monitor to resolve every admitted session so the
	// trace contains its end event.
	deadline := time.Now().Add(10 * time.Second)
	for _, sid := range sids {
		for {
			st, ok := user.SessionStatus(sid)
			if ok && st != netproto.StatusActive {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("session %s never resolved", sid)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	if err := tracer.Flush(); err != nil {
		t.Fatal(err)
	}

	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := obs.Analyze(events)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != requests {
		t.Fatalf("trace holds %d requests, initiator issued %d", rep.Total, requests)
	}
	// Every failed aggregation must be attributed to a concrete pipeline
	// stage, and the split must match what Aggregate returned.
	var failed, resolved int
	for _, r := range rep.Requests {
		switch r.Stage {
		case obs.StageDiscovery, obs.StageCompose, obs.StageSelection, obs.StageAdmission:
			failed++
		case obs.OutcomeSuccess, obs.StageDeparture:
			resolved++
		default:
			t.Errorf("request %d left in state %q", r.Req, r.Stage)
		}
	}
	if failed != failCount {
		t.Errorf("trace attributes %d pipeline failures, caller saw %d", failed, failCount)
	}
	if resolved != okCount {
		t.Errorf("trace resolved %d admitted sessions, caller admitted %d", resolved, okCount)
	}
	// A 10% drop rate must have surfaced in the transport counters, and
	// the RPC plane must have recorded traffic.
	snap := reg.Snapshot()
	vals := make(map[string]uint64, len(snap.Counters))
	for _, c := range snap.Counters {
		vals[c.Name] = c.Value
	}
	if vals["transport.dials"] == 0 {
		t.Error("transport.dials never incremented")
	}
	if vals["transport.dial_failures"] == 0 {
		t.Error("10% drop fabric produced no transport.dial_failures")
	}
	if vals["rpc.probe.sent"] == 0 || vals["rpc.lookup.sent"] == 0 {
		t.Errorf("rpc counters missing traffic: probe=%d lookup=%d",
			vals["rpc.probe.sent"], vals["rpc.lookup.sent"])
	}
	if got := vals["reserve.admitted"]; got == 0 && okCount > 0 {
		t.Error("admitted sessions but reserve.admitted is zero")
	}
	found := false
	for _, l := range snap.Latencies {
		if l.Name == "rpc.latency_seconds" && l.Count > 0 {
			found = true
			if p99 := l.Quantile(0.99); p99 <= 0 {
				t.Errorf("rpc.latency_seconds p99 = %v, want > 0", p99)
			}
		}
	}
	if !found {
		t.Error("rpc.latency_seconds latency histogram recorded nothing")
	}
	t.Logf("chaos telemetry: %d ok, %d failed, %d events, %d dials (%d failed)",
		okCount, failCount, len(events), vals["transport.dials"], vals["transport.dial_failures"])
}
