package netproto

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"testing"
	"time"

	"repro/internal/wire"
)

// This file is the measurement harness behind scripts/bench_rpc.sh: a
// closed-loop RPC driver comparing the rollback stack (JSON over TCP,
// one dial per exchange) against the production stack (binary over
// reliable UDP), plus the exact bytes-on-wire each codec spends per
// RPC type. It runs only when QSA_RPC_BENCH is set — wall-clock
// latency percentiles are not unit-test material — and writes
// BENCH_rpc.json itself when QSA_RPC_OUT names a path, so the shell
// script never has to parse timing out of test logs.

type rpcBenchLeg struct {
	Codec      string  `json:"codec"`
	Transport  string  `json:"transport"`
	Msgs       int     `json:"msgs"`
	MsgsPerSec float64 `json:"msgs_per_sec"`
	// Per core of the driving machine: the loop is one goroutine, so
	// this divides by GOMAXPROCS to stay honest on multi-core boxes.
	MsgsPerSecPerCore float64 `json:"msgs_per_sec_per_core"`
	P50Micros         float64 `json:"p50_us"`
	P99Micros         float64 `json:"p99_us"`
}

type rpcBenchSize struct {
	Type      string  `json:"type"`
	JSONBytes int     `json:"json_bytes"`
	BinBytes  int     `json:"binary_bytes"`
	Ratio     float64 `json:"json_over_binary"`
}

type rpcBenchReport struct {
	GeneratedBy string         `json:"generated_by"`
	NumCPU      int            `json:"num_cpu"`
	GoMaxProcs  int            `json:"gomaxprocs"`
	Workload    string         `json:"workload"`
	Legs        []rpcBenchLeg  `json:"legs"`
	BytesPerRPC []rpcBenchSize `json:"bytes_on_wire_per_rpc"`
	// Datagram framing cost the codec numbers above do not include:
	// per-fragment packet header + CRC trailer on the UDP path.
	UDPPacketOverheadBytes int `json:"udp_packet_overhead_bytes"`
	// One full aggregation's RPC mix in a 5-peer grid (lookup fans to
	// 4 members, each of 2 hops probes/selects/reserves/releases),
	// weighted by the per-type bytes above.
	AggregationJSONBytes int     `json:"aggregation_json_bytes"`
	AggregationBinBytes  int     `json:"aggregation_binary_bytes"`
	AggregationRatio     float64 `json:"aggregation_json_over_binary"`
	Note                 string  `json:"note"`
}

// benchWireSizes encodes one representative request/response pair per
// RPC type with both codecs and returns the per-exchange byte totals.
func benchWireSizes(t *testing.T) []rpcBenchSize {
	t.Helper()
	in := ToWire(inst("bench/i0", "bench", "RAW", "MPEG", 40, 400))
	exchanges := []struct {
		typ  string
		req  request
		resp response
	}{
		{msgJoin, request{Type: msgJoin, Addr: "127.0.0.1:9001"},
			response{OK: true, Members: []string{"127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003"}}},
		{msgLeave, request{Type: msgLeave, Addr: "127.0.0.1:9001"}, response{OK: true}},
		{msgLookup, request{Type: msgLookup, Service: "bench"},
			// A 5-peer grid's discovery reply: one offer per provider.
			response{OK: true, Offers: []offer{
				{Instance: in, Provider: "127.0.0.1:9001"},
				{Instance: in, Provider: "127.0.0.1:9002"},
				{Instance: in, Provider: "127.0.0.1:9003"},
				{Instance: in, Provider: "127.0.0.1:9004"},
			}}},
		{msgProbe, request{Type: msgProbe},
			response{OK: true, Avail: []float64{960, 960, 0}, UptimeSec: 321.5}},
		{msgSelect, request{
			Type:      msgSelect,
			Instances: []WireInstance{in, in},
			Candidates: map[string][]string{
				"bench/i0": {"127.0.0.1:9001", "127.0.0.1:9002"},
			},
			Chain:    []string{"127.0.0.1:9001"},
			UserAddr: "127.0.0.1:9000",
		}, response{OK: true, Chain: []string{"127.0.0.1:9001", "127.0.0.1:9002"}}},
		{msgReserve, request{Type: msgReserve, SessionID: "s-0000000001", InstanceID: "bench/i0", CPU: 40, Memory: 40, DurationSec: 30},
			response{OK: true}},
		{msgRelease, request{Type: msgRelease, SessionID: "s-0000000001", InstanceID: "bench/i0"},
			response{OK: true}},
	}
	bin := wire.NewBinary()
	js := wire.JSON{}
	sizes := make([]rpcBenchSize, 0, len(exchanges))
	for _, e := range exchanges {
		jq, err := js.AppendRequest(nil, 1, &e.req)
		if err != nil {
			t.Fatal(err)
		}
		jr, err := js.AppendResponse(nil, 1, &e.resp)
		if err != nil {
			t.Fatal(err)
		}
		bq, err := bin.AppendRequest(nil, 1, &e.req)
		if err != nil {
			t.Fatal(err)
		}
		br, err := bin.AppendResponse(nil, 1, &e.resp)
		if err != nil {
			t.Fatal(err)
		}
		j, b := len(jq)+len(jr), len(bq)+len(br)
		sizes = append(sizes, rpcBenchSize{
			Type: e.typ, JSONBytes: j, BinBytes: b,
			Ratio: float64(j) / float64(b),
		})
	}
	return sizes
}

// benchLeg drives n closed-loop lookup RPCs against addr and returns
// throughput and latency percentiles.
func benchLeg(t *testing.T, name, transport string, tr Transport, codec wire.Codec, addr string, n int) rpcBenchLeg {
	t.Helper()
	req := request{Type: msgLookup, Service: "bench"}
	do := func() {
		resp, err := rpcWith(tr, codec, nil, addr, req, 5*time.Second)
		if err != nil {
			t.Fatalf("%s over %s: %v", name, transport, err)
		}
		if len(resp.Offers) != 1 {
			t.Fatalf("%s over %s: %d offers, want 1", name, transport, len(resp.Offers))
		}
	}
	for i := 0; i < 50; i++ {
		do() // warm-up: pools, ARP/route cache, listener goroutines
	}
	lat := make([]time.Duration, n)
	start := time.Now()
	for i := range lat {
		t0 := time.Now()
		do()
		lat[i] = time.Since(t0)
	}
	elapsed := time.Since(start)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	rate := float64(n) / elapsed.Seconds()
	return rpcBenchLeg{
		Codec:             name,
		Transport:         transport,
		Msgs:              n,
		MsgsPerSec:        rate,
		MsgsPerSecPerCore: rate / float64(runtime.GOMAXPROCS(0)),
		P50Micros:         float64(lat[n/2].Microseconds()),
		P99Micros:         float64(lat[n*99/100].Microseconds()),
	}
}

// TestRPCBenchReport is the engine of scripts/bench_rpc.sh. Gated on
// QSA_RPC_BENCH so regular test runs skip it; QSA_RPC_N scales the
// closed loop and QSA_RPC_OUT, when set, receives the JSON report.
func TestRPCBenchReport(t *testing.T) {
	if os.Getenv("QSA_RPC_BENCH") == "" {
		t.Skip("set QSA_RPC_BENCH=1 (see scripts/bench_rpc.sh)")
	}
	n := 2000
	if s := os.Getenv("QSA_RPC_N"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 100 {
			t.Fatalf("bad QSA_RPC_N %q", s)
		}
		n = v
	}

	serve := func(network string) *Peer {
		p, err := Start(Config{Listen: "127.0.0.1:0", Network: network, CPU: 1000, Memory: 1000})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		if err := p.Provide(inst("bench/i0", "bench", "RAW", "MPEG", 40, 400)); err != nil {
			t.Fatal(err)
		}
		return p
	}
	tcpPeer := serve("tcp")
	udpPeer := serve("udp")

	rep := rpcBenchReport{
		GeneratedBy: "scripts/bench_rpc.sh",
		NumCPU:      runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Workload:    fmt.Sprintf("closed-loop lookup RPC (1 offer), %d msgs per leg after 50 warm-ups", n),
		Legs: []rpcBenchLeg{
			benchLeg(t, "json", "tcp", TCP{}, wire.JSON{}, tcpPeer.Addr(), n),
			benchLeg(t, "binary", "udp", NewUDPTransport(WireConfig{}), wire.NewBinary(), udpPeer.Addr(), n),
		},
		BytesPerRPC:            benchWireSizes(t),
		UDPPacketOverheadBytes: wire.PacketOverhead,
		Note: "one goroutine drives one RPC at a time, so msgs_per_sec is per-connection latency-bound, " +
			"not a saturation number; the JSON/TCP leg pays a fresh TCP handshake per RPC (the rollback " +
			"stack has no connection pool), the binary/UDP leg a fresh ephemeral socket. bytes_on_wire " +
			"counts codec output per request+response exchange; UDP adds udp_packet_overhead_bytes per fragment.",
	}

	// The acceptance bar: on the payload-bearing data-plane RPCs — the
	// ones that carry instance specs and QoS vectors, where bytes scale
	// with grid size — binary spends at most half the bytes of JSON.
	// Control messages (join, probe, release) are a handful of fields
	// dominated by the fixed 17-byte binary envelope, so their ratio
	// hovers near 1x by construction; the table reports them honestly.
	for _, s := range rep.BytesPerRPC {
		t.Logf("bytes %-8s json=%4dB binary=%4dB (%.1fx)", s.Type, s.JSONBytes, s.BinBytes, s.Ratio)
		if (s.Type == msgLookup || s.Type == msgSelect) && s.BinBytes*2 > s.JSONBytes {
			t.Errorf("%s: binary %dB not ≥2x smaller than JSON %dB", s.Type, s.BinBytes, s.JSONBytes)
		}
	}
	mix := map[string]int{msgJoin: 1, msgLeave: 1, msgLookup: 4, msgProbe: 6, msgSelect: 2, msgReserve: 2, msgRelease: 2}
	for _, s := range rep.BytesPerRPC {
		rep.AggregationJSONBytes += mix[s.Type] * s.JSONBytes
		rep.AggregationBinBytes += mix[s.Type] * s.BinBytes
	}
	rep.AggregationRatio = float64(rep.AggregationJSONBytes) / float64(rep.AggregationBinBytes)
	t.Logf("aggregation mix: json=%dB binary=%dB (%.2fx)",
		rep.AggregationJSONBytes, rep.AggregationBinBytes, rep.AggregationRatio)

	for _, l := range rep.Legs {
		t.Logf("%s/%s: %.0f msgs/s (%.0f per core), p50 %.0fus p99 %.0fus",
			l.Codec, l.Transport, l.MsgsPerSec, l.MsgsPerSecPerCore, l.P50Micros, l.P99Micros)
	}

	if out := os.Getenv("QSA_RPC_OUT"); out != "" {
		blob, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", out)
	}
}
