package netproto

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// Client is a lightweight serving-plane caller: it speaks the
// aggregate RPC to one peer without being a peer itself — the
// load-generator role (cmd/qsaload) and any external requester. TCP
// clients pool their connections, so an open-loop run pays the dial
// handshake once per in-flight slot rather than once per request.
type Client struct {
	cfg   ClientConfig
	codec wire.Codec
	tr    Transport
	pool  *connPool
	tele  *peerTele
}

// ClientConfig parameterizes a Client.
type ClientConfig struct {
	// Target is the serving peer's address.
	Target string
	// Network: "tcp" (default) or "udp" (reliable-datagram stack).
	Network string
	// Codec: "json" (default over TCP) or "binary" (default over UDP).
	Codec string
	// Wire parameterizes the UDP datagram layer; ignored over TCP.
	Wire WireConfig
	// Timeout bounds each aggregate exchange. Default 5 s — an
	// aggregation fans out to the whole overlay before answering.
	Timeout time.Duration
	// PoolConns caps idle pooled connections per target (TCP only):
	// 0 defaults to 2, -1 disables pooling.
	PoolConns int
	// Compress enables flate compression of large request bodies and
	// advertises decompression support to the server (binary only).
	Compress bool
	// Metrics, when non-nil, receives the client's RPC counters and
	// wire byte accounting.
	Metrics *obs.Registry
}

func (c *ClientConfig) fillDefaults() {
	if c.Network == "" {
		c.Network = "tcp"
	}
	if c.Codec == "" {
		if c.Network == "udp" {
			c.Codec = "binary"
		} else {
			c.Codec = "json"
		}
	}
	if c.Timeout == 0 {
		c.Timeout = 5 * time.Second
	}
	c.Wire.fillDefaults()
}

// NewClient builds a serving-plane client for cfg.Target.
func NewClient(cfg ClientConfig) (*Client, error) {
	cfg.fillDefaults()
	if cfg.Target == "" {
		return nil, fmt.Errorf("netproto: client needs a target")
	}
	switch cfg.Network {
	case "tcp", "udp":
	default:
		return nil, fmt.Errorf("netproto: unknown network %q", cfg.Network)
	}
	switch cfg.Codec {
	case "json", "binary":
	default:
		return nil, fmt.Errorf("netproto: unknown codec %q", cfg.Codec)
	}
	cl := &Client{cfg: cfg}
	if cfg.Metrics != nil {
		cl.tele = newPeerTele(cfg.Metrics)
	}
	bin := wire.NewBinary()
	if cfg.Compress {
		bin.SetCompression(wire.DefaultCompressMin)
	}
	if cfg.Codec == "binary" {
		cl.codec = bin
	} else {
		cl.codec = wire.JSON{}
	}
	if cfg.Network == "udp" {
		cl.tr = &UDPTransport{cfg: cfg.Wire, tele: cl.tele.wireTele()}
	} else {
		cl.tr = TCP{}
		if cfg.PoolConns >= 0 {
			cl.pool = newConnPool(cl.tr, cl.tele.wireTele(), cfg.PoolConns, cfg.Timeout)
			cl.tr = cl.pool
		}
	}
	return cl, nil
}

// Close releases pooled connections.
func (c *Client) Close() {
	if c.pool != nil {
		c.pool.Close()
	}
}

// AggRequest is one serving-plane aggregation request, mirroring the
// paper's ServiceRequest model: the service path, a rate floor, a
// priority class, a latency budget, and the disruption-tolerant flag.
type AggRequest struct {
	// Services is the requested path, user side last (as in Aggregate).
	Services []string
	// MinRate is the user QoS rate floor.
	MinRate float64
	// Priority is the request's class (higher = more important).
	Priority int
	// Deadline is the client's latency budget in seconds; the server
	// sheds the request rather than serve it later than this. 0 = none.
	Deadline float64
	// DTolerant marks a disruption-tolerant flow: first to shed within
	// its priority class.
	DTolerant bool
	// Duration is the session length to reserve.
	Duration time.Duration
}

// AggResult is the outcome of one Aggregate call.
type AggResult struct {
	// OK means a session was admitted end to end.
	OK bool
	// SessionID and Chain identify the admitted session and its hosts.
	SessionID string
	Chain     []string
	// Cost is the composed path's aggregation cost.
	Cost float64
	// Shed means the server refused under load; RetryAfter is its
	// deterministic backoff hint.
	Shed       bool
	RetryAfter time.Duration
	// Err is the server-reported failure, "" on success.
	Err string
}

// Aggregate performs one serving-plane aggregation RPC. A shed reply
// is not an error at this layer: the result carries Shed and the
// server's RetryAfter hint so open-loop callers can back off
// deterministically (err stays nil).
func (c *Client) Aggregate(req AggRequest) (*AggResult, error) {
	wreq := request{
		Type:        msgAggregate,
		Services:    req.Services,
		MinRate:     req.MinRate,
		Priority:    req.Priority,
		Deadline:    req.Deadline,
		DTolerant:   req.DTolerant,
		DurationSec: req.Duration.Seconds(),
	}
	start := time.Now()
	resp, rpcErr := rpcWith(c.tr, c.codec, c.tele.wireTele(), c.cfg.Target, wreq, c.cfg.Timeout)
	c.tele.observeRPC(msgAggregate, time.Since(start), rpcErr)
	if resp == nil {
		return nil, rpcErr
	}
	out := &AggResult{
		OK:         resp.OK,
		SessionID:  resp.SessionID,
		Chain:      resp.Chain,
		Cost:       resp.Cost,
		Shed:       resp.Shed,
		RetryAfter: time.Duration(resp.RetryAfterSec * float64(time.Second)),
		Err:        resp.Err,
	}
	if !resp.OK && !resp.Shed {
		return out, rpcErr
	}
	return out, nil
}
