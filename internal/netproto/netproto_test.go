package netproto

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/qos"
	"repro/internal/resource"
	"repro/internal/service"
)

func inst(id string, svc service.Name, inFmt, outFmt string, r, kbps float64) *service.Instance {
	return &service.Instance{
		ID:      id,
		Service: svc,
		Qin:     qos.MustVector(qos.Sym("format", inFmt), qos.Range("rate", 0, 40)),
		Qout:    qos.MustVector(qos.Sym("format", outFmt), qos.Range("rate", 20, 25)),
		R:       resource.Vec2(r, r),
		OutKbps: kbps,
	}
}

// cluster starts n peers on loopback, joined into one overlay.
func cluster(t *testing.T, n int, cpu float64) []*Peer {
	t.Helper()
	peers := make([]*Peer, n)
	for i := range peers {
		p, err := Start(Config{Listen: "127.0.0.1:0", CPU: cpu, Memory: cpu,
			RPCTimeout: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		peers[i] = p
		if i > 0 {
			if err := p.Join(peers[0].Addr()); err != nil {
				t.Fatal(err)
			}
		}
	}
	return peers
}

var userQoS = qos.MustVector(qos.Range("rate", 10, 1e9))

func TestMembership(t *testing.T) {
	peers := cluster(t, 4, 100)
	// Everyone must eventually know everyone (join announces immediately).
	for i, p := range peers {
		m := p.Members()
		if len(m) != 3 {
			t.Fatalf("peer %d knows %d members, want 3: %v", i, len(m), m)
		}
	}
}

func TestWireRoundTrip(t *testing.T) {
	in := inst("svc#1", "svc", "A", "B", 10, 50)
	w := ToWire(in)
	back, err := FromWire(w)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != in.ID || back.Service != in.Service ||
		back.R[0] != in.R[0] || back.OutKbps != in.OutKbps {
		t.Fatalf("round trip mangled the instance: %+v", back)
	}
	if _, ok := back.Qin.Get("format"); !ok {
		t.Fatal("Qin lost its format dimension")
	}
	if _, ok := back.Qout.Get("rate"); !ok {
		t.Fatal("Qout lost its rate dimension")
	}
	if _, err := FromWire(WireInstance{ID: "x", Service: "s",
		Qin: []WireParam{{Name: "r", Lo: 5, Hi: 1}}}); err == nil {
		t.Fatal("inverted wire range must fail")
	}
}

func TestAggregateEndToEnd(t *testing.T) {
	peers := cluster(t, 6, 200)
	src := inst("source#0", "source", "RAW", "MPEG", 50, 40)
	snk := inst("player#0", "player", "MPEG", "SCREEN", 30, 30)
	for _, p := range peers[0:2] {
		if err := p.Provide(src); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range peers[2:4] {
		if err := p.Provide(snk); err != nil {
			t.Fatal(err)
		}
	}
	user := peers[5]
	plan, err := user.Aggregate([]service.Name{"source", "player"}, userQoS, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Peers) != 2 || plan.Instances[0] != "source#0" || plan.Instances[1] != "player#0" {
		t.Fatalf("plan = %+v", plan)
	}
	srcHosts := map[string]bool{peers[0].Addr(): true, peers[1].Addr(): true}
	if !srcHosts[plan.Peers[0]] {
		t.Fatalf("source hosted on non-provider %s", plan.Peers[0])
	}
	// Reservations are live on the chosen hosts...
	reservedSomewhere := false
	for _, p := range peers {
		if p.ActiveSessions() > 0 {
			reservedSomewhere = true
			av := p.Available()
			if av[0] == 200 {
				t.Fatal("active session but full availability")
			}
		}
	}
	if !reservedSomewhere {
		t.Fatal("no reservations placed")
	}
	// ...and expire after the session duration.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, p := range peers {
			if p.ActiveSessions() != 0 {
				done = false
			}
		}
		if done {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, p := range peers {
		if p.ActiveSessions() != 0 {
			t.Fatal("reservation did not expire")
		}
		if av := p.Available(); av[0] != 200 {
			t.Fatalf("capacity not restored: %v", av)
		}
	}
}

func TestQCSPrefersCheapInstanceOverTheWire(t *testing.T) {
	peers := cluster(t, 4, 500)
	cheap := inst("player#cheap", "player", "RAW", "SCREEN", 20, 20)
	pricy := inst("player#pricy", "player", "RAW", "SCREEN", 200, 20)
	peers[1].Provide(cheap)
	peers[1].Provide(pricy)
	peers[2].Provide(cheap)
	plan, err := peers[3].Aggregate([]service.Name{"player"}, userQoS, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Instances[0] != "player#cheap" {
		t.Fatalf("QCS over the wire chose %s", plan.Instances[0])
	}
}

func TestSelectionAvoidsDeadPeer(t *testing.T) {
	peers := cluster(t, 5, 100)
	w := inst("work#0", "work", "A", "B", 30, 10)
	peers[1].Provide(w)
	peers[2].Provide(w)
	// Kill one provider; the other must carry the session.
	if err := peers[1].Close(); err != nil {
		t.Fatal(err)
	}
	plan, err := peers[4].Aggregate([]service.Name{"work"}, qos.MustVector(qos.Range("rate", 0, 1e9)), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Peers[0] != peers[2].Addr() {
		t.Fatalf("selected %s, want the surviving provider", plan.Peers[0])
	}
}

func TestSelectionPrefersIdlePeer(t *testing.T) {
	peers := cluster(t, 4, 100)
	w := inst("work#0", "work", "A", "B", 40, 10)
	peers[1].Provide(w)
	peers[2].Provide(w)
	// Pre-load peer 1 (e.g. local workload) so its availability drops.
	if !peers[1].ReserveLocal(55, 55) {
		t.Fatal("test reservation failed")
	}
	// The user weighs end-system resources only: on loopback the RTT term
	// is pure measurement jitter and would drown the signal under test.
	user, err := Start(Config{Listen: "127.0.0.1:0", CPU: 100, Memory: 100,
		RPCTimeout: 2 * time.Second, Weights: []float64{0.5, 0.5, 0}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { user.Close() })
	if err := user.Join(peers[0].Addr()); err != nil {
		t.Fatal(err)
	}
	plan, err := user.Aggregate([]service.Name{"work"}, qos.MustVector(qos.Range("rate", 0, 1e9)), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Peers[0] != peers[2].Addr() {
		t.Fatalf("Φ selected the loaded peer %s", plan.Peers[0])
	}
}

func TestAdmissionControl(t *testing.T) {
	peers := cluster(t, 3, 100)
	w := inst("work#0", "work", "A", "B", 60, 10)
	peers[1].Provide(w)
	// First session fits, second cannot (60+60 > 100).
	if _, err := peers[2].Aggregate([]service.Name{"work"}, userQoS, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := peers[2].Aggregate([]service.Name{"work"}, userQoS, 2*time.Second); err == nil {
		t.Fatal("over-capacity session admitted")
	}
}

func TestUnknownServiceFails(t *testing.T) {
	peers := cluster(t, 3, 100)
	if _, err := peers[0].Aggregate([]service.Name{"ghost"}, userQoS, time.Second); err == nil {
		t.Fatal("unknown service must fail")
	}
	if _, err := peers[0].Aggregate(nil, userQoS, time.Second); err == nil {
		t.Fatal("empty path must fail")
	}
}

func TestQoSInconsistencyFails(t *testing.T) {
	peers := cluster(t, 3, 100)
	// The only chain produces format B but the player only accepts C.
	a := inst("a#0", "svcA", "RAW", "B", 10, 10)
	b := inst("b#0", "svcB", "C", "SCREEN", 10, 10)
	peers[1].Provide(a)
	peers[1].Provide(b)
	_, err := peers[0].Aggregate([]service.Name{"svcA", "svcB"}, userQoS, time.Second)
	if err == nil || !strings.Contains(err.Error(), "consistent") {
		t.Fatalf("err = %v, want composition failure", err)
	}
}

func TestManualRelease(t *testing.T) {
	peers := cluster(t, 3, 100)
	w := inst("work#0", "work", "A", "B", 60, 10)
	peers[1].Provide(w)
	plan, err := peers[2].Aggregate([]service.Name{"work"}, userQoS, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rpc(TCP{}, plan.Peers[0], request{Type: msgRelease, SessionID: plan.SessionID}, time.Second); err != nil {
		t.Fatal(err)
	}
	if av := peers[1].Available(); av[0] != 100 {
		t.Fatalf("release did not restore capacity: %v", av)
	}
}

func TestMonitorRecoversFromHostFailure(t *testing.T) {
	// The user peer monitors its session; killing the chosen host must
	// re-home the component onto the surviving provider.
	var peers []*Peer
	for i := 0; i < 4; i++ {
		p, err := Start(Config{Listen: "127.0.0.1:0", CPU: 200, Memory: 200,
			RPCTimeout: time.Second, MonitorInterval: 50 * time.Millisecond,
			ProbeCacheTTL: 10 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		peers = append(peers, p)
		if i > 0 {
			if err := p.Join(peers[0].Addr()); err != nil {
				t.Fatal(err)
			}
		}
	}
	w := inst("work#0", "work", "A", "B", 40, 10)
	peers[1].Provide(w)
	peers[2].Provide(w)
	user := peers[3]
	plan, err := user.Aggregate([]service.Name{"work"}, qos.MustVector(qos.Range("rate", 0, 1e9)), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := user.SessionStatus(plan.SessionID)
	if !ok || st != StatusActive {
		t.Fatalf("status = %v, %v", st, ok)
	}
	// Kill the chosen host.
	var victim, survivor *Peer
	if plan.Peers[0] == peers[1].Addr() {
		victim, survivor = peers[1], peers[2]
	} else {
		victim, survivor = peers[2], peers[1]
	}
	victim.Close()

	deadline := time.Now().Add(3 * time.Second)
	recovered := false
	for time.Now().Before(deadline) {
		hosts, _ := user.SessionHosts(plan.SessionID)
		if len(hosts) == 1 && hosts[0] == survivor.Addr() {
			recovered = true
			break
		}
		if st, _ := user.SessionStatus(plan.SessionID); st == StatusFailed {
			t.Fatal("session failed although a replacement provider existed")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("monitor never re-homed the component")
	}
	if survivor.ActiveSessions() == 0 {
		t.Fatal("replacement host holds no reservation")
	}
	// And the session completes afterwards.
	deadline = time.Now().Add(4 * time.Second)
	for time.Now().Before(deadline) {
		if st, _ := user.SessionStatus(plan.SessionID); st == StatusCompleted {
			return
		}
		time.Sleep(30 * time.Millisecond)
	}
	t.Fatal("recovered session did not complete")
}

func TestMonitorFailsWhenNoReplacement(t *testing.T) {
	var peers []*Peer
	for i := 0; i < 3; i++ {
		p, err := Start(Config{Listen: "127.0.0.1:0", CPU: 200, Memory: 200,
			RPCTimeout: time.Second, MonitorInterval: 50 * time.Millisecond,
			ProbeCacheTTL: 10 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		peers = append(peers, p)
		if i > 0 {
			if err := p.Join(peers[0].Addr()); err != nil {
				t.Fatal(err)
			}
		}
	}
	w := inst("work#0", "work", "A", "B", 40, 10)
	peers[1].Provide(w) // single provider
	user := peers[2]
	plan, err := user.Aggregate([]service.Name{"work"}, qos.MustVector(qos.Range("rate", 0, 1e9)), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	peers[1].Close()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if st, _ := user.SessionStatus(plan.SessionID); st == StatusFailed {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("session with no surviving provider never failed")
}

func TestBadCapacityRejected(t *testing.T) {
	if _, err := Start(Config{Listen: "127.0.0.1:0", CPU: -1}); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestConfigRejectsNegatives(t *testing.T) {
	bad := []Config{
		{CPU: -1},
		{Memory: -1},
		{RPCTimeout: -time.Second},
		{ProbeCacheTTL: -time.Millisecond},
		{MonitorInterval: -time.Minute},
		{Retry: RetryPolicy{Attempts: -1}},
		{Retry: RetryPolicy{BaseDelay: -time.Millisecond}},
		{Retry: RetryPolicy{MaxDelay: -time.Millisecond}},
	}
	for i, cfg := range bad {
		// fillDefaults only replaces zero values: negatives must survive
		// it and be caught by Validate.
		cfg.fillDefaults()
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d: fillDefaults+Validate accepted %+v", i, bad[i])
		}
		cfg = bad[i]
		cfg.Listen = "127.0.0.1:0"
		if _, err := Start(cfg); err == nil {
			t.Fatalf("case %d: Start accepted %+v", i, cfg)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	var cfg Config
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("zero config invalid after fillDefaults: %v", err)
	}
	if cfg.Transport == nil {
		t.Fatal("no default transport")
	}
	if cfg.Retry.Attempts != 3 || cfg.Retry.BaseDelay <= 0 || cfg.Retry.MaxDelay < cfg.Retry.BaseDelay {
		t.Fatalf("unexpected retry defaults: %+v", cfg.Retry)
	}
}

func TestRetryBackoffBoundedAndDeterministic(t *testing.T) {
	pol := RetryPolicy{Attempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond}
	for attempt := 1; attempt <= 6; attempt++ {
		d := pol.backoff("127.0.0.1:1", "127.0.0.1:2", attempt)
		if d != pol.backoff("127.0.0.1:1", "127.0.0.1:2", attempt) {
			t.Fatalf("attempt %d: backoff not deterministic", attempt)
		}
		if d < 0 || d >= pol.MaxDelay {
			t.Fatalf("attempt %d: backoff %v outside [0, MaxDelay)", attempt, d)
		}
	}
	// The jitter desynchronizes distinct link pairs.
	if pol.backoff("a", "b", 2) == pol.backoff("c", "d", 2) {
		t.Fatal("distinct links share the same jittered backoff")
	}
}

func TestHandleSurfacesDecodeError(t *testing.T) {
	peers := cluster(t, 1, 100)
	resp, err := rpc(TCP{}, peers[0].Addr(), request{Type: "???"}, time.Second)
	if err == nil || resp == nil || resp.Err == "" {
		t.Fatalf("unknown message type: resp=%+v err=%v, want error response", resp, err)
	}
	// A syntactically broken request must come back as an error response,
	// not a silent hangup.
	conn, err := TCP{}.Dial(peers[0].Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	var r response
	if err := json.NewDecoder(conn).Decode(&r); err != nil {
		t.Fatalf("no response to malformed request: %v", err)
	}
	if r.OK || !strings.Contains(r.Err, "bad request") {
		t.Fatalf("response = %+v, want bad-request error", r)
	}
}

func TestCloseIdempotent(t *testing.T) {
	p, err := Start(Config{Listen: "127.0.0.1:0", CPU: 10, Memory: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal("second Close must be a no-op")
	}
}

func TestGracefulLeaveRemovesFromMembership(t *testing.T) {
	peers := cluster(t, 4, 100)
	leaver := peers[2]
	if err := leaver.Leave(); err != nil {
		t.Fatal(err)
	}
	for i, p := range peers {
		if i == 2 {
			continue
		}
		for _, m := range p.Members() {
			if m == leaver.Addr() {
				t.Fatalf("peer %d still lists the leaver", i)
			}
		}
	}
	// Leave implies Close: a second Close is a no-op.
	if err := leaver.Close(); err != nil {
		t.Fatal(err)
	}
}
