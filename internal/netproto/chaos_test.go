// Deterministic chaos suite: full aggregate/monitor/recovery scenarios
// run against the fault-injecting transport (internal/faults) at drop
// rates from 0 to 30%, asserting the protocol invariants:
//
//   - no double-reservation: after every session has been released or
//     has expired, every peer is back at full capacity;
//   - reservations are always released or expired after session failure;
//   - membership converges after partitions heal;
//   - sessions either complete or fail cleanly (an Aggregate error means
//     nothing is left reserved once rollback/expiry has run).
//
// The fault plane's decisions are pure functions of (seed, link,
// attempt), so a given seed replays the same per-link fault transcript
// run after run — that determinism is asserted here too.
package netproto_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/netproto"
	"repro/internal/qos"
	"repro/internal/resource"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/xrand"
)

func chaosInst(id string, svc service.Name, inFmt, outFmt string, r float64) *service.Instance {
	return &service.Instance{
		ID:      id,
		Service: svc,
		Qin:     qos.MustVector(qos.Sym("format", inFmt), qos.Range("rate", 0, 40)),
		Qout:    qos.MustVector(qos.Sym("format", outFmt), qos.Range("rate", 20, 25)),
		R:       resource.Vec2(r, r),
		OutKbps: 10,
	}
}

var chaosQoS = qos.MustVector(qos.Range("rate", 0, 1e9))

func nodeName(i int) string { return fmt.Sprintf("n%d", i) }

// chaosCluster starts n peers dialing through fab, named n0..n(n-1),
// joined into one overlay via n0. tweak (optional) edits each config
// before Start.
func chaosCluster(t *testing.T, fab *faults.Fabric, n int, cpu float64, tweak func(i int, cfg *netproto.Config)) []*netproto.Peer {
	t.Helper()
	peers := make([]*netproto.Peer, n)
	for i := range peers {
		cfg := netproto.Config{
			Listen:     "127.0.0.1:0",
			CPU:        cpu,
			Memory:     cpu,
			RPCTimeout: 2 * time.Second,
			Transport:  fab.Node(nodeName(i)),
		}
		if tweak != nil {
			tweak(i, &cfg)
		}
		p, err := netproto.Start(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		fab.Register(nodeName(i), p.Addr())
		peers[i] = p
	}
	for i := 1; i < n; i++ {
		if err := peers[i].Join(peers[0].Addr()); err != nil {
			t.Fatalf("join peer %d: %v", i, err)
		}
	}
	return peers
}

// waitFullCapacity polls until every peer has zero active sessions and
// its full capacity back — the no-double-reservation / always-released
// invariant.
func waitFullCapacity(t *testing.T, peers []*netproto.Peer, cpu float64, deadline time.Duration) {
	t.Helper()
	limit := time.Now().Add(deadline)
	for time.Now().Before(limit) {
		clean := true
		for _, p := range peers {
			if p.ActiveSessions() != 0 || p.Available()[0] != cpu {
				clean = false
				break
			}
		}
		if clean {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	for i, p := range peers {
		if p.ActiveSessions() != 0 || p.Available()[0] != cpu {
			t.Errorf("peer %d: %d sessions still active, available %v (capacity %v)",
				i, p.ActiveSessions(), p.Available(), cpu)
		}
	}
	t.Fatal("capacity never fully restored: reservation leaked or double-booked")
}

// TestChaosAggregateUnderDrop runs repeated end-to-end aggregations at
// 0%, 10% and 30% per-link drop rates. Whatever the rate, a request
// must either return a valid plan or a clean error, and once every
// session has expired all capacity must be back — no double
// reservation, no leaked reservation.
func TestChaosAggregateUnderDrop(t *testing.T) {
	for _, rate := range []float64{0, 0.10, 0.30} {
		t.Run(fmt.Sprintf("drop=%v", rate), func(t *testing.T) {
			fab, err := faults.New(faults.Config{
				Seed:          42,
				DropRate:      rate,
				Latency:       time.Millisecond,
				LatencyJitter: 2 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			const cpu = 400
			peers := chaosCluster(t, fab, 5, cpu, nil)
			src := chaosInst("source#0", "source", "RAW", "MPEG", 40)
			snk := chaosInst("player#0", "player", "MPEG", "SCREEN", 30)
			for _, p := range peers[1:3] {
				if err := p.Provide(src); err != nil {
					t.Fatal(err)
				}
			}
			for _, p := range peers[2:4] {
				if err := p.Provide(snk); err != nil {
					t.Fatal(err)
				}
			}
			user := peers[4]
			ok := 0
			const requests = 6
			for i := 0; i < requests; i++ {
				plan, err := user.Aggregate([]service.Name{"source", "player"}, chaosQoS, 250*time.Millisecond)
				if err != nil {
					continue // a clean failure is an allowed outcome under loss
				}
				ok++
				if len(plan.Peers) != 2 || len(plan.Instances) != 2 {
					t.Fatalf("request %d: malformed plan %+v", i, plan)
				}
			}
			if rate == 0 && ok != requests {
				t.Fatalf("lossless fabric completed %d/%d aggregations", ok, requests)
			}
			t.Logf("drop=%v: %d/%d aggregations completed", rate, ok, requests)
			waitFullCapacity(t, peers, cpu, 10*time.Second)
		})
	}
}

// TestChaosRetryBeatsBaseline scripts the exact scenario retry exists
// for: the single provider's discovery reply is dropped once. The
// no-retry baseline peer fails the aggregation; the retrying peer
// completes it.
func TestChaosRetryBeatsBaseline(t *testing.T) {
	fab, err := faults.New(faults.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	const cpu = 200
	// n0 bootstrap, n1 sole provider, n2 baseline user (retry disabled),
	// n3 retrying user (default policy).
	peers := chaosCluster(t, fab, 4, cpu, func(i int, cfg *netproto.Config) {
		if i == 2 {
			cfg.Retry = netproto.RetryPolicy{Attempts: 1}
		}
	})
	w := chaosInst("work#0", "work", "A", "B", 30)
	if err := peers[1].Provide(w); err != nil {
		t.Fatal(err)
	}

	fab.DropNext(nodeName(2), nodeName(1), 1)
	if _, err := peers[2].Aggregate([]service.Name{"work"}, chaosQoS, 100*time.Millisecond); err == nil {
		t.Fatal("baseline without retry survived the dropped lookup")
	}

	fab.DropNext(nodeName(3), nodeName(1), 1)
	plan, err := peers[3].Aggregate([]service.Name{"work"}, chaosQoS, 100*time.Millisecond)
	if err != nil {
		t.Fatalf("retrying peer failed the same scenario: %v", err)
	}
	if plan.Peers[0] != peers[1].Addr() {
		t.Fatalf("plan landed on %s, want the provider", plan.Peers[0])
	}
	waitFullCapacity(t, peers, cpu, 5*time.Second)
}

// TestChaosPartitionHealMembership: a joiner partitioned from one member
// ends up with asymmetric membership; after the partition heals, a
// re-join converges everyone onto the full view.
func TestChaosPartitionHealMembership(t *testing.T) {
	fab, err := faults.New(faults.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	peers := chaosCluster(t, fab, 3, 100, nil)

	// Start a fourth peer but partition it from n2 before it joins.
	cfg := netproto.Config{
		Listen: "127.0.0.1:0", CPU: 100, Memory: 100,
		RPCTimeout: time.Second, Transport: fab.Node(nodeName(3)),
		Retry: netproto.RetryPolicy{Attempts: 2, BaseDelay: 5 * time.Millisecond},
	}
	d, err := netproto.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	fab.Register(nodeName(3), d.Addr())
	fab.CutBoth(nodeName(3), nodeName(2))

	if err := d.Join(peers[0].Addr()); err != nil {
		t.Fatal(err)
	}
	// d learned n2 from the bootstrap's member list, but its announcement
	// to n2 was cut: the views are asymmetric.
	if !hasMember(d, peers[2].Addr()) {
		t.Fatal("joiner did not learn the partitioned member from the bootstrap")
	}
	if hasMember(peers[2], d.Addr()) {
		t.Fatal("announcement crossed a cut partition")
	}

	fab.HealAll()
	if err := d.Join(peers[0].Addr()); err != nil {
		t.Fatal(err)
	}
	all := append(peers, d)
	for i, p := range all {
		for j, q := range all {
			if i == j {
				continue
			}
			if !hasMember(p, q.Addr()) {
				t.Fatalf("after heal+rejoin, peer %d does not know peer %d", i, j)
			}
		}
	}
}

func hasMember(p *netproto.Peer, addr string) bool {
	for _, m := range p.Members() {
		if m == addr {
			return true
		}
	}
	return false
}

// TestChaosCrashRecoveryAndRestart: the session's chosen host crashes at
// the network level; the initiator's monitor re-homes the component onto
// the surviving provider and the session completes. After the crashed
// peer restarts, its orphaned reservation has expired on its own.
func TestChaosCrashRecoveryAndRestart(t *testing.T) {
	fab, err := faults.New(faults.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	const cpu = 200
	peers := chaosCluster(t, fab, 4, cpu, func(i int, cfg *netproto.Config) {
		cfg.RPCTimeout = time.Second
		cfg.MonitorInterval = 50 * time.Millisecond
		cfg.ProbeCacheTTL = 10 * time.Millisecond
		cfg.Retry = netproto.RetryPolicy{Attempts: 2, BaseDelay: 10 * time.Millisecond, MaxDelay: 20 * time.Millisecond}
	})
	w := chaosInst("work#0", "work", "A", "B", 40)
	if err := peers[1].Provide(w); err != nil {
		t.Fatal(err)
	}
	if err := peers[2].Provide(w); err != nil {
		t.Fatal(err)
	}
	user := peers[3]
	plan, err := user.Aggregate([]service.Name{"work"}, chaosQoS, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var victim, survivor int
	if plan.Peers[0] == peers[1].Addr() {
		victim, survivor = 1, 2
	} else {
		victim, survivor = 2, 1
	}
	fab.Crash(nodeName(victim))

	deadline := time.Now().Add(3 * time.Second)
	recovered := false
	for time.Now().Before(deadline) {
		hosts, _ := user.SessionHosts(plan.SessionID)
		if len(hosts) == 1 && hosts[0] == peers[survivor].Addr() {
			recovered = true
			break
		}
		if st, _ := user.SessionStatus(plan.SessionID); st == netproto.StatusFailed {
			t.Fatal("session failed although a replacement provider existed")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("monitor never re-homed the component off the crashed peer")
	}

	deadline = time.Now().Add(4 * time.Second)
	for time.Now().Before(deadline) {
		if st, _ := user.SessionStatus(plan.SessionID); st == netproto.StatusCompleted {
			break
		}
		time.Sleep(30 * time.Millisecond)
	}
	if st, _ := user.SessionStatus(plan.SessionID); st != netproto.StatusCompleted {
		t.Fatalf("recovered session ended as %q, want completed", st)
	}

	// The crashed peer kept running behind the partition; its reservation
	// must expire on its own, and after restart all capacity is back.
	fab.Restart(nodeName(victim))
	waitFullCapacity(t, peers, cpu, 6*time.Second)
}

// TestChaosCrashFailsCleanly: the only provider crashes; the session
// must fail cleanly and every surviving reservation must be released.
func TestChaosCrashFailsCleanly(t *testing.T) {
	fab, err := faults.New(faults.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	const cpu = 200
	peers := chaosCluster(t, fab, 3, cpu, func(i int, cfg *netproto.Config) {
		cfg.RPCTimeout = time.Second
		cfg.MonitorInterval = 50 * time.Millisecond
		cfg.ProbeCacheTTL = 10 * time.Millisecond
		cfg.Retry = netproto.RetryPolicy{Attempts: 2, BaseDelay: 10 * time.Millisecond, MaxDelay: 20 * time.Millisecond}
	})
	w := chaosInst("work#0", "work", "A", "B", 40)
	if err := peers[1].Provide(w); err != nil {
		t.Fatal(err)
	}
	user := peers[2]
	plan, err := user.Aggregate([]service.Name{"work"}, chaosQoS, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	fab.Crash(nodeName(1))
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if st, _ := user.SessionStatus(plan.SessionID); st == netproto.StatusFailed {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st, _ := user.SessionStatus(plan.SessionID); st != netproto.StatusFailed {
		t.Fatalf("session ended as %q with its only provider crashed, want failed", st)
	}
	fab.Restart(nodeName(1))
	waitFullCapacity(t, peers, cpu, 6*time.Second)
}

// TestChaosChurn drives crash/restart churn with the simulator's own
// churn distribution (sim.ChurnCounts — the knob the discrete-event
// simulator uses, reused by the fault plane) while aggregations keep
// arriving. Every request must complete or fail cleanly, and the grid
// must return to full capacity once the churn stops and sessions expire.
func TestChaosChurn(t *testing.T) {
	fab, err := faults.New(faults.Config{Seed: 11, DropRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	const cpu = 300
	peers := chaosCluster(t, fab, 6, cpu, nil)
	w := chaosInst("work#0", "work", "A", "B", 30)
	for _, p := range peers[1:4] {
		if err := p.Provide(w); err != nil {
			t.Fatal(err)
		}
	}
	user := peers[5]
	rng := xrand.New(23)
	crashed := make(map[int]bool)
	ok := 0
	const rounds = 4
	for round := 0; round < rounds; round++ {
		dep, arr := sim.ChurnCounts(rng, 4)
		for i := 0; i < dep; i++ {
			// Crash a random provider-side peer (never the user).
			victim := 1 + rng.Intn(4)
			if !crashed[victim] {
				crashed[victim] = true
				fab.Crash(nodeName(victim))
			}
		}
		for i := 0; i < arr && len(crashed) > 0; i++ {
			for victim := range crashed {
				delete(crashed, victim)
				fab.Restart(nodeName(victim))
				break
			}
		}
		plan, err := user.Aggregate([]service.Name{"work"}, chaosQoS, 150*time.Millisecond)
		if err != nil {
			continue
		}
		ok++
		if len(plan.Peers) != 1 {
			t.Fatalf("round %d: malformed plan %+v", round, plan)
		}
	}
	t.Logf("churn: %d/%d aggregations completed", ok, rounds)
	fab.HealAll()
	waitFullCapacity(t, peers, cpu, 10*time.Second)
}

// TestChaosTranscriptDeterministic pins the fault plane's determinism
// contract at the rates the suite runs: for a given seed, the verdict
// for the n-th dial on a link is identical across independent fabrics,
// and the stream actually injects faults at non-zero rates.
func TestChaosTranscriptDeterministic(t *testing.T) {
	for _, rate := range []float64{0, 0.10, 0.30} {
		a, err := faults.New(faults.Config{Seed: 42, DropRate: rate, LatencyJitter: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		b, err := faults.New(faults.Config{Seed: 42, DropRate: rate, LatencyJitter: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		drops := 0
		for _, l := range [][2]string{{"n0", "n1"}, {"n1", "n0"}, {"n4", "n2"}} {
			for n := uint64(1); n <= 200; n++ {
				va, vb := a.Verdict(l[0], l[1], n), b.Verdict(l[0], l[1], n)
				if va != vb {
					t.Fatalf("rate %v link %v attempt %d: verdicts diverged: %+v vs %+v", rate, l, n, va, vb)
				}
				if va.Drop {
					drops++
				}
			}
		}
		if rate == 0 && drops != 0 {
			t.Fatalf("lossless fabric dropped %d dials", drops)
		}
		if rate > 0 && drops == 0 {
			t.Fatalf("rate %v produced no drops in 600 verdicts", rate)
		}
	}
}
