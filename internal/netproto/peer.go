package netproto

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/compose"
	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/resource"
	"repro/internal/selection"
	"repro/internal/service"
	"repro/internal/wire"
	"repro/internal/xrand"
)

// Config parameterizes a network peer.
type Config struct {
	// Listen is the listen address ("127.0.0.1:0" for an ephemeral
	// port), on the network chosen by Network.
	Listen string
	// Network selects the listener and default transport: "tcp"
	// (default) or "udp" (the reliable-datagram stack of DESIGN.md §12).
	Network string
	// Codec selects the request encoding this peer SENDS: "json"
	// (newline-delimited, the rollback format) or "binary"
	// (internal/wire compact framing). Default: "json" over TCP,
	// "binary" over UDP. Servers need no setting — the first byte of
	// each incoming message picks the decode path, and replies use the
	// codec the request arrived in.
	Codec string
	// Wire parameterizes the UDP datagram layer (MTU, ack timeout,
	// retransmit budget, dedup TTL, packet-fault filter). Ignored when
	// Network is "tcp" and no UDPTransport is in play.
	Wire WireConfig
	// CPU and Memory are the peer's end-system capacity units.
	CPU, Memory float64
	// Weights are the Φ weights [cpu, memory, network]; default uniform.
	Weights []float64
	// RPCTimeout bounds every remote call. Default 2 s.
	RPCTimeout time.Duration
	// ProbeCacheTTL is how long probe results are reused. Default 1 s.
	ProbeCacheTTL time.Duration
	// MonitorInterval enables runtime failure detection and recovery (the
	// paper's §6 future work): sessions this peer initiates are probed at
	// this interval, and a component whose host stopped responding is
	// re-selected and re-reserved on a replacement provider. 0 disables
	// monitoring.
	MonitorInterval time.Duration
	// Transport dials remote peers. Default TCP{}; tests inject the
	// fault-injecting transport from internal/faults here.
	Transport Transport
	// Retry bounds retransmission of the idempotent RPCs (probe, lookup,
	// join, leave, release). Reserve and select are never retried — see
	// RetryPolicy.
	Retry RetryPolicy
	// Metrics, when non-nil, receives runtime counters (per-RPC
	// sent/failed/retried, RPC latency, probe cache hits/misses,
	// admission decisions, transport dials) and causes Transport to be
	// wrapped in a MeteredTransport. Nil disables the accounting at
	// near-zero cost.
	Metrics *obs.Registry
	// Tracer, when non-nil, receives the structured decision-trace
	// stream for aggregations this peer initiates (request, compose,
	// per-hop selection, reserve, admit, retry, recover, end). The
	// tracer's clock decides timestamping: cmd/qsapeer uses wall time,
	// tests inject deterministic clocks.
	Tracer *obs.Tracer
	// TraceSample, in [0, 1], is the fraction of this peer's
	// aggregations that mint causal spans (KindSpan) into the Tracer
	// stream. The decision is a pure hash of the request ID, so a given
	// request samples identically on every run. 0 means the default of
	// 1 (trace everything the Tracer sees); ignored when Tracer is nil.
	TraceSample float64
	// Admit bounds concurrent aggregate serving (DESIGN §14). Zero
	// Workers — the default — disables admission control entirely.
	Admit AdmitConfig
	// Gossip enables batched probe/announcement gossip: every Interval
	// the peer sends one batch of cached measurements to Fanout members,
	// amortizing background freshness traffic to O(1) datagrams per
	// interval. Zero Interval — the default — disables it.
	Gossip GossipConfig
	// PoolConns controls TCP connection reuse for outgoing RPCs: 0
	// (default) pools up to 2 idle connections per target when this
	// peer uses the default TCP transport; > 0 sets that per-target
	// cap explicitly (also on injected transports); -1 disables
	// pooling and dials per exchange.
	PoolConns int
	// Compress enables flate compression of outgoing binary bodies of
	// at least CompressMin bytes (default wire.DefaultCompressMin) and
	// advertises decompression support to servers. Decoding compressed
	// frames always works; this only gates encoding.
	Compress bool
	// CompressMin overrides the compression threshold when Compress is
	// set. 0 means wire.DefaultCompressMin.
	CompressMin int
}

func (c *Config) fillDefaults() {
	if c.Network == "" {
		c.Network = "tcp"
	}
	if c.Codec == "" {
		if c.Network == "udp" {
			c.Codec = "binary"
		} else {
			c.Codec = "json"
		}
	}
	if len(c.Weights) == 0 {
		c.Weights = []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	}
	if c.RPCTimeout == 0 {
		c.RPCTimeout = 2 * time.Second
	}
	if c.ProbeCacheTTL == 0 {
		c.ProbeCacheTTL = time.Second
	}
	if c.TraceSample == 0 {
		c.TraceSample = 1
	}
	c.Wire.fillDefaults()
	c.Admit.fillDefaults()
	c.Gossip.fillDefaults()
	if c.Transport == nil && c.Network != "udp" {
		// The UDP default is built in Start, where the telemetry handle
		// exists to plumb into the transport.
		c.Transport = TCP{}
	}
	c.Retry.fillDefaults()
}

// Validate rejects impossible configurations. Zero values mean "use the
// default" (fillDefaults); negatives are always errors — a negative
// timeout would make every RPC deadline already expired, and a negative
// interval or retry budget has no meaning.
func (c Config) Validate() error {
	switch c.Network {
	case "", "tcp", "udp":
	default:
		return fmt.Errorf("netproto: unknown network %q (want tcp or udp)", c.Network)
	}
	switch c.Codec {
	case "", "json", "binary":
	default:
		return fmt.Errorf("netproto: unknown codec %q (want json or binary)", c.Codec)
	}
	if err := c.Wire.validate(); err != nil {
		return err
	}
	if c.CPU < 0 || c.Memory < 0 {
		return fmt.Errorf("netproto: negative capacity")
	}
	if c.RPCTimeout < 0 {
		return fmt.Errorf("netproto: negative RPCTimeout %v", c.RPCTimeout)
	}
	if c.ProbeCacheTTL < 0 {
		return fmt.Errorf("netproto: negative ProbeCacheTTL %v", c.ProbeCacheTTL)
	}
	if c.MonitorInterval < 0 {
		return fmt.Errorf("netproto: negative MonitorInterval %v", c.MonitorInterval)
	}
	if c.TraceSample < 0 || c.TraceSample > 1 {
		return fmt.Errorf("netproto: trace sample fraction %g outside [0, 1]", c.TraceSample)
	}
	if c.Retry.Attempts < 0 {
		return fmt.Errorf("netproto: negative retry attempts %d", c.Retry.Attempts)
	}
	if c.Retry.BaseDelay < 0 || c.Retry.MaxDelay < 0 {
		return fmt.Errorf("netproto: negative retry backoff")
	}
	if c.Admit.Workers < 0 || c.Admit.MaxQueue < 0 || c.Admit.RetryAfter < 0 {
		return fmt.Errorf("netproto: negative admission bounds")
	}
	if c.Gossip.Interval < 0 || c.Gossip.Fanout < 0 || c.Gossip.Batch < 0 {
		return fmt.Errorf("netproto: negative gossip parameters")
	}
	if c.PoolConns < -1 {
		return fmt.Errorf("netproto: PoolConns %d (want >= -1)", c.PoolConns)
	}
	if c.CompressMin < 0 {
		return fmt.Errorf("netproto: negative CompressMin %d", c.CompressMin)
	}
	return nil
}

// probeResult is one cached measurement of a remote peer.
type probeResult struct {
	avail    resource.Vector
	uptime   time.Duration
	rtt      time.Duration
	alive    bool
	measured time.Time
}

// Plan is an admitted aggregation: instance IDs and the peer addresses
// hosting them, in aggregation-flow order.
type Plan struct {
	SessionID string
	Instances []string
	Peers     []string
	Cost      float64
}

// SessionStatus is the lifecycle state of a session this peer initiated.
type SessionStatus string

// Session lifecycle states (only tracked when monitoring is enabled).
const (
	StatusActive    SessionStatus = "active"
	StatusCompleted SessionStatus = "completed"
	StatusFailed    SessionStatus = "failed"
)

// initiated tracks one session this peer started, for monitoring.
type initiated struct {
	sid        string
	instances  []*service.Instance
	hosts      []string
	candidates map[string][]string
	deadline   time.Time
	status     SessionStatus
	recovered  int
}

// Peer is one QSA prototype node.
type Peer struct {
	cfg   Config
	codec wire.Codec   // codec for RPCs this peer sends
	bin   *wire.Binary // shared binary codec (server decode + binary sends)

	ln    net.Listener
	addr  string
	start time.Time

	mu        sync.Mutex
	conns     map[net.Conn]bool // open server-side connections
	members   map[string]bool   // other peers' addresses
	provides  map[string]*service.Instance
	ledger    *resource.Ledger
	sessions  map[string]resource.Vector // sessionID -> held reservation
	initiated map[string]*initiated      // sessions this peer started
	probes    map[string]probeResult
	nextSess  uint64
	nextReq   uint64
	closed    bool

	tele     *peerTele  // nil when Config.Metrics is nil
	spans    *obs.Spans // nil when Config.Tracer is nil
	spanSalt uint64     // TraceSample decision salt

	admit *admission // nil when admission control is disabled
	pool  *connPool  // nil when connection pooling is disabled

	done chan struct{} // closed on Close; stops session monitors
	wg   sync.WaitGroup
}

// Start launches a peer listening on cfg.Listen.
func Start(cfg Config) (*Peer, error) {
	injectedTransport := cfg.Transport != nil
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var tele *peerTele
	if cfg.Metrics != nil {
		tele = newPeerTele(cfg.Metrics)
	}
	if cfg.Transport == nil {
		// Only reachable for Network == "udp" (fillDefaults handles tcp):
		// build the datagram transport here so it shares the peer's wire
		// telemetry and trace sink.
		cfg.Transport = &UDPTransport{cfg: cfg.Wire, tele: tele.wireTele(), tracer: cfg.Tracer}
	}
	if cfg.Metrics != nil {
		cfg.Transport = NewMeteredTransport(cfg.Transport, cfg.Metrics)
	}
	// Connection pooling sits outermost so a reuse skips the metered
	// dial entirely. UDP conns are one message each, so the default
	// only pools the plain-TCP configuration; an explicit PoolConns > 0
	// also pools injected (e.g. fault-wrapped) transports.
	var pool *connPool
	if cfg.PoolConns > 0 || (cfg.PoolConns == 0 && !injectedTransport && cfg.Network == "tcp") {
		pool = newConnPool(cfg.Transport, tele.wireTele(), cfg.PoolConns, cfg.RPCTimeout*4)
		cfg.Transport = pool
	}
	ledger, err := resource.NewLedger(resource.Vec2(cfg.CPU, cfg.Memory))
	if err != nil {
		return nil, err
	}
	var ln net.Listener
	if cfg.Network == "udp" {
		ln, err = listenUDP(cfg.Listen, cfg.Wire, tele.wireTele(), cfg.Tracer)
	} else {
		ln, err = net.Listen("tcp", cfg.Listen)
	}
	if err != nil {
		return nil, err
	}
	bin := wire.NewBinary()
	if cfg.Compress {
		min := cfg.CompressMin
		if min == 0 {
			min = wire.DefaultCompressMin
		}
		bin.SetCompression(min)
	}
	var codec wire.Codec = wire.JSON{}
	if cfg.Codec == "binary" {
		codec = bin
	}
	p := &Peer{
		cfg:       cfg,
		codec:     codec,
		bin:       bin,
		ln:        ln,
		addr:      ln.Addr().String(),
		start:     time.Now(),
		conns:     make(map[net.Conn]bool),
		members:   make(map[string]bool),
		provides:  make(map[string]*service.Instance),
		ledger:    ledger,
		sessions:  make(map[string]resource.Vector),
		initiated: make(map[string]*initiated),
		probes:    make(map[string]probeResult),
		done:      make(chan struct{}),
		tele:      tele,
		// Span IDs are salted by the listen address: each peer mints IDs
		// from its own stream, so spans joined across peers cannot
		// collide while a fixed topology stays reproducible.
		spans:    obs.NewSpans(cfg.Tracer, xrand.MixString(0x51534153, ln.Addr().String())),
		spanSalt: xrand.MixString(0x53414d50, ln.Addr().String()),
		pool:     pool,
	}
	if cfg.Admit.Workers > 0 {
		p.admit = newAdmission(cfg.Admit, p.done, tele)
	}
	p.wg.Add(1)
	go p.serve()
	if cfg.Gossip.Interval > 0 {
		p.wg.Add(1)
		go p.gossipLoop()
	}
	return p, nil
}

// rootSpan mints the root span for request rid, or an inert span when
// rid falls outside the TraceSample fraction. The decision is a pure
// hash of (listen address, rid): re-running the same workload on the
// same topology traces the same requests, and an unsampled root hands
// every downstream stage — local and remote, via the empty wire trace
// context — an inert span.
func (p *Peer) rootSpan(rid uint64) obs.Span {
	if p.spans == nil {
		return obs.Span{}
	}
	if f := p.cfg.TraceSample; f < 1 {
		if float64(xrand.MixIndex(p.spanSalt, rid)>>11)/(1<<53) >= f {
			return obs.Span{}
		}
	}
	return p.spans.Root(rid)
}

// Addr returns the peer's listen address.
func (p *Peer) Addr() string { return p.addr }

// Uptime returns how long the peer has been running.
func (p *Peer) Uptime() time.Duration { return time.Since(p.start) }

// Leave departs gracefully: every known member is told to drop this peer
// from its membership (so discovery stops offering it), then the listener
// closes. Sessions this peer hosts are lost either way — the initiators'
// monitors recover them if enabled.
func (p *Peer) Leave() error {
	for _, m := range p.Members() {
		// Best effort (with retry — leave is idempotent): unreachable
		// members age the departed peer out on their own.
		_, _ = p.rpcRetry(m, request{Type: msgLeave, Addr: p.addr}, p.cfg.RPCTimeout)
	}
	return p.Close()
}

// Close departs abruptly: the listener stops, in-flight handlers finish.
func (p *Peer) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	close(p.done)
	err := p.ln.Close()
	// Sever open server connections: a handler blocked reading the next
	// exchange of a pooled client connection unblocks immediately
	// instead of idling out its deadline.
	for _, c := range conns {
		_ = c.Close()
	}
	p.wg.Wait()
	if p.pool != nil {
		p.pool.Close()
	}
	return err
}

// Join connects the peer into an existing overlay through any bootstrap
// member and announces it to everyone it learns about.
func (p *Peer) Join(bootstrap string) error {
	resp, err := p.rpcRetry(bootstrap, request{Type: msgJoin, Addr: p.addr}, p.cfg.RPCTimeout)
	if err != nil {
		return err
	}
	p.mu.Lock()
	p.members[bootstrap] = true
	for _, m := range resp.Members {
		if m != p.addr {
			p.members[m] = true
		}
	}
	members := p.memberListLocked()
	p.mu.Unlock()
	// Announce to the rest (best effort; the bootstrap already knows).
	for _, m := range members {
		if m == bootstrap {
			continue
		}
		_, _ = p.rpcRetry(m, request{Type: msgJoin, Addr: p.addr}, p.cfg.RPCTimeout)
	}
	return nil
}

// Members returns the known membership, self excluded, sorted.
func (p *Peer) Members() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.memberListLocked()
}

func (p *Peer) memberListLocked() []string {
	out := make([]string, 0, len(p.members))
	for m := range p.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Provide registers a service instance this peer can host.
func (p *Peer) Provide(in *service.Instance) error {
	if err := in.Validate(); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.provides[in.ID] = in
	return nil
}

// Available returns the currently unreserved capacity.
func (p *Peer) Available() resource.Vector {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ledger.Available()
}

// ReserveLocal reserves capacity for workload outside any QSA session
// (e.g. the owner's own use); it reports whether the reservation fit.
// Release it with ReleaseLocal.
func (p *Peer) ReserveLocal(cpu, mem float64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ledger.Reserve(resource.Vec2(cpu, mem))
}

// ReleaseLocal returns a ReserveLocal reservation.
func (p *Peer) ReleaseLocal(cpu, mem float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ledger.Release(resource.Vec2(cpu, mem))
}

// ActiveSessions returns the number of reservations currently held.
func (p *Peer) ActiveSessions() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.sessions)
}

// serve accepts connections until Close. Connections are tracked so
// shutdown can sever ones parked between exchanges by a pooling
// client — their handler goroutines would otherwise idle in a read
// until the connection deadline.
func (p *Peer) serve() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			_ = conn.Close()
			return
		}
		p.conns[conn] = true
		p.mu.Unlock()
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer func() {
				p.mu.Lock()
				delete(p.conns, conn)
				p.mu.Unlock()
				_ = conn.Close()
			}()
			p.handle(conn)
		}()
	}
}

func (p *Peer) handle(conn net.Conn) {
	// Generous deadline: a select request recurses through the remaining
	// hops before this handler can answer. Both codec loops refresh it
	// per exchange, so a pooled client connection stays serviceable
	// between requests without ever being deadline-free.
	if err := conn.SetDeadline(time.Now().Add(p.cfg.RPCTimeout * 16)); err != nil {
		// The connection is already dead; nothing can be sent on it.
		return
	}
	// Codec negotiation is the first byte: '{' opens a JSON object, a
	// binary frame opens with the wire magic. The reply always uses the
	// request's codec, so mixed-codec overlays interoperate and a JSON
	// rollback needs no flag day. The choice is per connection: clients
	// never switch codecs mid-stream.
	br := bufio.NewReaderSize(conn, 64<<10)
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	if wire.IsBinary(first) {
		p.handleBinary(conn, br)
		return
	}
	// Everything else — including malformed garbage — takes the JSON
	// path, whose decoder surfaces a bad-request reply instead of a
	// silent hangup.
	p.handleJSON(conn, br)
}

// handleJSON serves newline-delimited JSON exchanges until the client
// hangs up (one decoder for the connection: it reads ahead, so
// re-creating it per exchange would lose buffered bytes).
func (p *Peer) handleJSON(conn net.Conn, br *bufio.Reader) {
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(br)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			if err != io.EOF {
				// Surface malformed requests to the caller instead of
				// silently dropping the connection (best effort: the encode
				// itself can fail if the peer hung up mid-request).
				_ = enc.Encode(response{Err: fmt.Sprintf("bad request: %v", err)})
			}
			return
		}
		if err := enc.Encode(p.dispatch(req)); err != nil {
			return
		}
		if err := conn.SetDeadline(time.Now().Add(p.cfg.RPCTimeout * 16)); err != nil {
			return
		}
	}
}

// reqPool recycles server-side request structs: the binary decoder
// reuses their slice capacity, so a warm server decodes requests
// without allocating.
var reqPool = sync.Pool{New: func() any { return new(request) }}

// handleBinary serves framed binary exchanges until the stream ends —
// one message for a datagram connection, many for a pooled TCP one.
func (p *Peer) handleBinary(conn net.Conn, br *bufio.Reader) {
	buf := wire.GetBuf(512)
	defer wire.PutBuf(buf)
	req := reqPool.Get().(*request)
	// Handlers copy what they keep, so the request can be recycled when
	// the connection ends (the decoder reuses its slice capacity across
	// the exchanges in between).
	defer reqPool.Put(req)
	for {
		var err error
		buf.B, err = wire.ReadFrame(br, buf.B)
		if err != nil {
			// Unframeable bytes carry no request ID to correlate an error
			// reply with; drop the exchange. A clean EOF is the client
			// closing (or parking) the connection.
			return
		}
		// The reply may be flate-compressed only when this client
		// advertised it can inflate (satellite: flag-negotiated
		// compression, never sprung on an old peer).
		compressOK := false
		if flags, ok := wire.MessageFlags(buf.B); ok {
			compressOK = flags&wire.FlagCompressOK != 0
		}
		reqID, err := p.bin.DecodeRequest(buf.B, req)
		var resp response
		if err != nil {
			resp = response{Err: fmt.Sprintf("bad request: %v", err)}
		} else {
			resp = p.dispatch(*req)
		}
		buf.B, err = p.bin.AppendResponseNegotiated(buf.B[:0], reqID, &resp, compressOK)
		if err != nil {
			return
		}
		if _, err := conn.Write(buf.B); err != nil {
			return
		}
		if err := conn.SetDeadline(time.Now().Add(p.cfg.RPCTimeout * 16)); err != nil {
			return
		}
	}
}

func (p *Peer) dispatch(req request) response {
	switch req.Type {
	case msgJoin:
		return p.handleJoin(req)
	case msgLeave:
		return p.handleLeave(req)
	case msgLookup:
		return p.handleLookup(req)
	case msgProbe:
		return p.handleProbe()
	case msgSelect:
		return p.handleSelect(req)
	case msgReserve:
		return p.handleReserve(req)
	case msgRelease:
		return p.handleRelease(req)
	case msgAggregate:
		return p.handleAggregate(req)
	case msgGossip:
		return p.handleGossip(req)
	default:
		return response{Err: fmt.Sprintf("unknown message %q", req.Type)}
	}
}

func (p *Peer) handleJoin(req request) response {
	p.mu.Lock()
	defer p.mu.Unlock()
	members := append(p.memberListLocked(), p.addr)
	if req.Addr != "" && req.Addr != p.addr {
		p.members[req.Addr] = true
	}
	return response{OK: true, Members: members}
}

func (p *Peer) handleLeave(req request) response {
	p.mu.Lock()
	delete(p.members, req.Addr)
	delete(p.probes, req.Addr)
	p.mu.Unlock()
	return response{OK: true}
}

func (p *Peer) handleLookup(req request) response {
	p.mu.Lock()
	defer p.mu.Unlock()
	var offers []offer
	for _, in := range p.provides {
		if string(in.Service) == req.Service {
			offers = append(offers, offer{Instance: ToWire(in), Provider: p.addr})
		}
	}
	sort.Slice(offers, func(i, j int) bool { return offers[i].Instance.ID < offers[j].Instance.ID })
	return response{OK: true, Offers: offers}
}

func (p *Peer) handleProbe() response {
	p.mu.Lock()
	defer p.mu.Unlock()
	return response{
		OK:        true,
		Avail:     p.ledger.Available(),
		UptimeSec: time.Since(p.start).Seconds(),
	}
}

func (p *Peer) handleReserve(req request) response {
	sp := p.spans.Join(obs.SpanContext{Trace: req.TraceID, Span: req.SpanID}, 0)
	p.mu.Lock()
	defer p.mu.Unlock()
	need := resource.Vec2(req.CPU, req.Memory)
	if !p.ledger.Reserve(need) {
		p.tele.reserve(false)
		sp.End(obs.Event{Stage: obs.StageAdmission, At: p.addr, Inst: req.InstanceID,
			Session: req.SessionID, Err: "insufficient resources"})
		return response{Err: "insufficient resources"}
	}
	p.tele.reserve(true)
	sp.End(obs.Event{Stage: obs.StageAdmission, At: p.addr, Inst: req.InstanceID,
		Session: req.SessionID, OK: true})
	// A session may place several components on the same host; the
	// reservations accumulate and release together.
	if held, ok := p.sessions[req.SessionID]; ok {
		p.sessions[req.SessionID] = held.Add(need)
	} else {
		p.sessions[req.SessionID] = need
	}
	dur := time.Duration(req.DurationSec * float64(time.Second))
	sid := req.SessionID
	time.AfterFunc(dur, func() { p.releaseSession(sid) })
	return response{OK: true}
}

func (p *Peer) handleRelease(req request) response {
	p.releaseSession(req.SessionID)
	return response{OK: true}
}

// handleAggregate serves one remote aggregation request (the serving
// plane of DESIGN §14): the whole discover→compose→select→reserve
// pipeline runs on this peer on the client's behalf, gated by
// admission control when configured. A shed reply carries Shed plus a
// deterministic RetryAfterSec so the client backs off instead of
// hammering an overloaded peer; a shed request never reaches the
// pipeline, so it can never hold a reservation.
func (p *Peer) handleAggregate(req request) response {
	if len(req.Services) == 0 {
		return response{Err: "aggregate: no services"}
	}
	start := time.Now()
	if p.admit != nil {
		v := p.admit.acquire(req.Priority, req.DTolerant,
			time.Duration(req.Deadline*float64(time.Second)))
		if !v.run {
			p.tele.serveShed(v.reason)
			return response{Err: "shed: " + v.reason, Shed: true,
				RetryAfterSec: v.retryAfter.Seconds()}
		}
		defer p.admit.release()
		p.tele.serveAdmitted()
		if v.waited > 0 {
			p.tele.serveWaited(v.waited.Seconds())
		}
	}
	path := make([]service.Name, len(req.Services))
	for i, s := range req.Services {
		path[i] = service.Name(s)
	}
	// The request's rate floor becomes the user QoS vector, matching
	// the convention the closed-loop tests and qsapeer use.
	userQoS, err := qos.NewVector(qos.Range("rate", req.MinRate, 1e9))
	if err != nil {
		return response{Err: err.Error()}
	}
	plan, err := p.Aggregate(path, userQoS, time.Duration(req.DurationSec*float64(time.Second)))
	p.tele.served(req.Priority, time.Since(start).Seconds())
	if err != nil {
		return response{Err: err.Error()}
	}
	return response{OK: true, SessionID: plan.SessionID, Chain: plan.Peers, Cost: plan.Cost}
}

func (p *Peer) releaseSession(sid string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if held, ok := p.sessions[sid]; ok {
		p.ledger.Release(held)
		delete(p.sessions, sid)
	}
}

// probe measures a candidate (with a short-lived cache). The prober's own
// RTT measurement supplies the network term.
func (p *Peer) probe(addr string) probeResult {
	p.mu.Lock()
	if cached, ok := p.probes[addr]; ok && time.Since(cached.measured) < p.cfg.ProbeCacheTTL {
		p.mu.Unlock()
		p.tele.probeCache(true)
		return cached
	}
	p.mu.Unlock()
	p.tele.probeCache(false)
	// Retried (idempotent): one dropped dial must not mark a live peer
	// dead. The measured RTT then includes any backoff, which only makes
	// a lossy link look worse — exactly what Φ's network term wants.
	start := time.Now()
	resp, err := p.rpcRetry(addr, request{Type: msgProbe}, p.cfg.RPCTimeout)
	res := probeResult{measured: time.Now()}
	if err == nil {
		res.alive = true
		res.avail = resp.Avail
		res.uptime = time.Duration(resp.UptimeSec * float64(time.Second))
		res.rtt = time.Since(start)
	}
	p.mu.Lock()
	p.probes[addr] = res
	p.mu.Unlock()
	return res
}

// netTerm converts a measured RTT into Φ's network term: a prototype has
// no pairwise bottleneck-bandwidth oracle, so 100/(1+RTT_ms) stands in
// (closer peers look better), normalized against bNet = 1.
func netTerm(rtt time.Duration) float64 {
	return 100 / (1 + float64(rtt.Milliseconds()))
}

// selectNext is one hop-by-hop selection step executed AT THIS PEER: probe
// the candidates, apply the paper's filters, maximize Φ. With report set
// it also returns the per-candidate decision record (Φ values and
// filter reasons) for the WireHop trace; mode is "informed" when an
// uptime-qualified winner existed, "fallback" when only short-uptime
// candidates did, "none" on failure.
func (p *Peer) selectNext(inst *service.Instance, candidates []string, duration time.Duration, report bool) (string, bool, string, []WireCand) {
	p.tele.selectStep()
	type scored struct {
		addr string
		phi  float64
	}
	var best, bestAny *scored
	var cands []WireCand
	bestIdx, anyIdx := -1, -1
	note := func(addr string, phi float64, reason string) int {
		if !report {
			return -1
		}
		cands = append(cands, WireCand{Addr: addr, Phi: phi, Reason: reason})
		return len(cands) - 1
	}
	for _, c := range candidates {
		if c == p.addr {
			note(c, 0, "self")
			continue
		}
		res := p.probe(c)
		if !res.alive {
			note(c, 0, "dead")
			continue
		}
		if !res.avail.Fits(inst.R) {
			note(c, 0, "no-fit")
			continue
		}
		phi := selection.PhiValue(p.cfg.Weights, res.avail, netTerm(res.rtt), inst.R, 1)
		if res.uptime >= duration {
			i := note(c, phi, "lower-phi")
			if best == nil || phi > best.phi {
				best = &scored{addr: c, phi: phi}
				bestIdx = i
			}
		} else {
			i := note(c, phi, "short-uptime")
			if bestAny == nil || phi > bestAny.phi {
				bestAny = &scored{addr: c, phi: phi}
				anyIdx = i
			}
		}
	}
	chosen, mode, winner := "", "none", -1
	switch {
	case best != nil:
		chosen, mode, winner = best.addr, "informed", bestIdx
	case bestAny != nil:
		chosen, mode, winner = bestAny.addr, "fallback", anyIdx
	}
	if report && winner >= 0 {
		cands[winner].Reason = "chosen"
	}
	return chosen, chosen != "", mode, cands
}

// handleSelect continues the distributed reverse-flow selection: choose
// the host for instance Idx, then forward to it for Idx−1.
func (p *Peer) handleSelect(req request) response {
	if req.Idx < 0 || req.Idx >= len(req.Instances) {
		return response{Err: "bad hop index"}
	}
	inst, err := FromWire(req.Instances[req.Idx])
	if err != nil {
		return response{Err: err.Error()}
	}
	// Join the initiator's trace: this hop's work becomes a child of the
	// span whose context rode the request. Inert when this peer has no
	// tracer or the request is untraced.
	sp := p.spans.Join(obs.SpanContext{Trace: req.TraceID, Span: req.SpanID}, 0)
	// done stamps the hop's decision on the span; every return ends it
	// exactly once.
	done := func(chosen, mode string, ok bool) {
		sp.End(obs.Event{Stage: obs.StageSelection, Hop: req.Idx + 1, Inst: inst.ID,
			At: p.addr, Chosen: chosen, Mode: mode, OK: ok})
	}
	duration := time.Duration(req.DurationSec * float64(time.Second))
	chosen, ok, mode, cands := p.selectNext(inst, req.Candidates[inst.ID], duration, req.Trace)
	var hops []WireHop
	if req.Trace {
		hops = []WireHop{{Idx: req.Idx, At: p.addr, Inst: inst.ID, Chosen: chosen, Mode: mode, Cands: cands}}
	}
	if !ok {
		done("", mode, false)
		return response{Err: fmt.Sprintf("no selectable peer for %s", inst.ID), Hops: hops}
	}
	chain := append([]string{chosen}, req.Chain...)
	if req.Idx == 0 {
		done(chosen, mode, true)
		return response{OK: true, Chain: chain, Hops: hops}
	}
	next := req
	next.Idx--
	next.Chain = chain
	if sp.Active() {
		// The forwarded hop parents under this hop's span, stitching the
		// recursion into one causal chain across peers.
		ctx := sp.Context()
		next.TraceID, next.SpanID = ctx.Trace, ctx.Span
	}
	// Select is forwarded exactly once: a retry would re-run the whole
	// downstream selection recursion (amplifying probe traffic), and a
	// failed hop already fails the aggregation cleanly at the initiator.
	resp, err := p.rpc(chosen, next, p.cfg.RPCTimeout*time.Duration(req.Idx+1))
	if err != nil {
		// Keep whatever partial hop records came back so the initiator
		// can still explain how far selection got.
		out := response{Err: err.Error(), Hops: hops}
		if resp != nil {
			out.Hops = append(out.Hops, resp.Hops...)
		}
		done(chosen, mode, false)
		return out
	}
	out := *resp
	out.Hops = append(hops, out.Hops...)
	done(chosen, mode, out.OK)
	return out
}

// Aggregate runs the full two-tier model from this peer as the user's
// host: discover, compose (QCS), select hop-by-hop over the network, and
// reserve.
func (p *Peer) Aggregate(path []service.Name, userQoS qos.Vector, duration time.Duration) (*Plan, error) {
	if len(path) == 0 {
		return nil, fmt.Errorf("netproto: empty path")
	}
	tr := p.cfg.Tracer
	var rid uint64
	if tr != nil {
		p.mu.Lock()
		p.nextReq++
		rid = p.nextReq
		p.mu.Unlock()
		names := make([]string, len(path))
		for i, svc := range path {
			names[i] = string(svc)
		}
		tr.Emit(obs.Event{Kind: obs.KindRequest, Req: rid, User: p.addr,
			App: strings.Join(names, "+"), Duration: duration.Seconds()})
	}
	// The root span covers the whole aggregation; each pipeline stage
	// gets a child, and the remote legs (selection hops, reservations)
	// parent under the stage they serve via the wire trace context.
	// With tracing disabled (p.spans nil) every span below is inert.
	root := p.rootSpan(rid)
	aggStart := time.Now()
	// fail stamps the terminal failure stage on the request span and
	// passes the error through, so every early return below stays a
	// one-liner.
	fail := func(stage string, err error) error {
		if tr != nil {
			tr.Emit(obs.Event{Kind: obs.KindFail, Req: rid, Stage: stage, Err: err.Error()})
		}
		p.tele.aggregated(time.Since(aggStart).Seconds())
		root.End(obs.Event{Stage: stage, Err: err.Error()})
		return err
	}
	members := append(p.Members(), p.addr)

	spDisc := root.Child()
	discStart := time.Now()

	// Discovery fan-out, one goroutine per member.
	type lookupResult struct {
		svc    int
		offers []offer
	}
	results := make(chan lookupResult, len(members)*len(path))
	var wg sync.WaitGroup
	for si, svc := range path {
		for _, m := range members {
			wg.Add(1)
			go func(si int, svc service.Name, m string) {
				defer wg.Done()
				if m == p.addr {
					resp := p.handleLookup(request{Service: string(svc)})
					// lint:allow goleak results is buffered to the exact fan-out and each goroutine sends at most once
					results <- lookupResult{svc: si, offers: resp.Offers}
					return
				}
				resp, err := p.rpcRetry(m, request{Type: msgLookup, Service: string(svc)}, p.cfg.RPCTimeout)
				if err == nil {
					// lint:allow goleak results is buffered to the exact fan-out and each goroutine sends at most once
					results <- lookupResult{svc: si, offers: resp.Offers}
				}
			}(si, svc, m)
		}
	}
	wg.Wait()
	close(results)

	layers := make([][]*service.Instance, len(path))
	providers := make(map[string][]string) // instance ID -> provider addrs
	seen := make(map[int]map[string]*service.Instance)
	for r := range results {
		for _, off := range r.offers {
			in, err := FromWire(off.Instance)
			if err != nil {
				continue
			}
			if seen[r.svc] == nil {
				seen[r.svc] = make(map[string]*service.Instance)
			}
			if prev, ok := seen[r.svc][in.ID]; ok {
				in = prev
			} else {
				seen[r.svc][in.ID] = in
				layers[r.svc] = append(layers[r.svc], in)
			}
			providers[in.ID] = append(providers[in.ID], off.Provider)
		}
	}
	discDone := func(ok bool) {
		p.tele.stage(obs.StageDiscovery, time.Since(discStart).Seconds())
		spDisc.End(obs.Event{Stage: obs.StageDiscovery, OK: ok})
	}
	for k := range layers {
		if len(layers[k]) == 0 {
			discDone(false)
			return nil, fail(obs.StageDiscovery, fmt.Errorf("netproto: no candidates for %q", path[k]))
		}
		sort.Slice(layers[k], func(i, j int) bool { return layers[k][i].ID < layers[k][j].ID })
	}
	for id := range providers {
		sort.Strings(providers[id])
	}
	discDone(true)

	// Tier 1: composition.
	spComp := root.Child()
	compStart := time.Now()
	composed, err := compose.QCS(layers, userQoS, compose.Config{Weights: p.cfg.Weights, Obs: p.tele.composeObs()})
	p.tele.stage(obs.StageCompose, time.Since(compStart).Seconds())
	if err != nil {
		if tr != nil {
			tr.Emit(obs.Event{Kind: obs.KindCompose, Req: rid, Err: err.Error()})
		}
		spComp.End(obs.Event{Stage: obs.StageCompose, Err: err.Error()})
		return nil, fail(obs.StageCompose, err)
	}
	if tr != nil {
		ids := make([]string, len(composed.Instances))
		for i, in := range composed.Instances {
			ids[i] = in.ID
		}
		tr.Emit(obs.Event{Kind: obs.KindCompose, Req: rid, Path: ids, Cost: composed.Cost, OK: true})
	}
	spComp.End(obs.Event{Stage: obs.StageCompose, OK: true, Cost: composed.Cost})

	// Tier 2: distributed hop-by-hop selection starting at the user side.
	specs := make([]WireInstance, len(composed.Instances))
	cands := make(map[string][]string, len(composed.Instances))
	for i, in := range composed.Instances {
		specs[i] = ToWire(in)
		cands[in.ID] = providers[in.ID]
	}
	spSel := root.Child()
	selCtx := spSel.Context()
	selReq := request{
		Type:        msgSelect,
		Instances:   specs,
		Candidates:  cands,
		Idx:         len(specs) - 1,
		UserAddr:    p.addr,
		DurationSec: duration.Seconds(),
		Trace:       tr != nil,
		TraceID:     selCtx.Trace,
		SpanID:      selCtx.Span,
	}
	selStart := time.Now()
	resp := p.handleSelect(selReq)
	p.tele.stage(obs.StageSelection, time.Since(selStart).Seconds())
	// lint:allow detflow netproto traces record real-network outcomes; replay is sim-only
	spSel.End(obs.Event{Stage: obs.StageSelection, OK: resp.OK})
	if tr != nil {
		emitHops(tr, rid, resp.Hops)
	}
	if !resp.OK {
		return nil, fail(obs.StageSelection, fmt.Errorf("netproto: selection failed: %s", resp.Err))
	}
	chain := resp.Chain
	if len(chain) != len(composed.Instances) {
		return nil, fail(obs.StageSelection, fmt.Errorf("netproto: selection returned %d hosts for %d components", len(chain), len(composed.Instances)))
	}

	// Admission: reserve on every selected host, rolling back on failure.
	p.mu.Lock()
	p.nextSess++
	sid := fmt.Sprintf("%s/%d", p.addr, p.nextSess)
	p.mu.Unlock()
	spAdm := root.Child()
	admCtx := spAdm.Context()
	admStart := time.Now()
	admDone := func(ok bool) {
		p.tele.stage(obs.StageAdmission, time.Since(admStart).Seconds())
		spAdm.End(obs.Event{Stage: obs.StageAdmission, OK: ok})
	}
	reserved := make([]string, 0, len(chain))
	for i, host := range chain {
		in := composed.Instances[i]
		// Reserve is NOT retried: it is not idempotent. A retry after a
		// lost response would accumulate the session's demand twice on
		// the host (handleReserve adds per session), silently
		// double-booking capacity until the session expires.
		_, err := p.rpc(host, request{
			Type:        msgReserve,
			SessionID:   sid,
			InstanceID:  in.ID,
			CPU:         in.R[resource.CPU],
			Memory:      in.R[resource.Memory],
			DurationSec: duration.Seconds(),
			TraceID:     admCtx.Trace,
			SpanID:      admCtx.Span,
		}, p.cfg.RPCTimeout)
		if tr != nil {
			// lint:allow detflow netproto traces record real-network outcomes; bit-for-bit replay is a sim-only guarantee
			ev := obs.Event{Kind: obs.KindReserve, Req: rid, Peer: host, Inst: in.ID, OK: err == nil}
			if err != nil {
				ev.Err = err.Error() // lint:allow detflow netproto traces record real-network outcomes; replay is sim-only
			}
			tr.Emit(ev) // lint:allow detflow netproto traces record real-network outcomes; replay is sim-only
		}
		if err != nil {
			for _, h := range reserved {
				// Best-effort rollback (retried — release is idempotent):
				// an unreachable host's reservation expires with the
				// session duration anyway.
				_, _ = p.rpcRetry(h, request{Type: msgRelease, SessionID: sid}, p.cfg.RPCTimeout)
			}
			admDone(false)
			return nil, fail(obs.StageAdmission, fmt.Errorf("netproto: admission failed at %s: %v", host, err))
		}
		reserved = append(reserved, host)
	}
	admDone(true)

	plan := &Plan{SessionID: sid, Peers: chain, Cost: composed.Cost}
	for _, in := range composed.Instances {
		plan.Instances = append(plan.Instances, in.ID)
	}
	if tr != nil {
		tr.Emit(obs.Event{Kind: obs.KindAdmit, Req: rid, Session: sid,
			// lint:allow detflow netproto traces record real-network outcomes; replay is sim-only
			Path: append([]string(nil), chain...), OK: true})
	}
	p.tele.aggregated(time.Since(aggStart).Seconds())
	root.End(obs.Event{OK: true, Session: sid})

	if p.cfg.MonitorInterval > 0 {
		sess := &initiated{
			sid:        sid,
			instances:  composed.Instances,
			hosts:      append([]string(nil), chain...),
			candidates: cands,
			deadline:   time.Now().Add(duration),
			status:     StatusActive,
		}
		p.mu.Lock()
		p.initiated[sid] = sess
		p.mu.Unlock()
		p.wg.Add(1)
		go p.monitor(sess)
	}
	return plan, nil
}

// SessionStatus reports the lifecycle state of a session this peer
// initiated; only available when MonitorInterval is set.
func (p *Peer) SessionStatus(sid string) (SessionStatus, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.initiated[sid]
	if !ok {
		return "", false
	}
	return s.status, true
}

// SessionHosts returns the current hosts of an initiated session (they
// change when recovery re-homes a component).
func (p *Peer) SessionHosts(sid string) ([]string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.initiated[sid]
	if !ok {
		return nil, false
	}
	return append([]string(nil), s.hosts...), true
}

// monitor implements runtime failure detection and recovery for one
// initiated session: each interval, every host is probed; a dead host's
// component is re-selected among the remaining candidates and re-reserved
// for the session's remaining time. An unrecoverable loss fails the
// session and releases the surviving reservations.
func (p *Peer) monitor(sess *initiated) {
	defer p.wg.Done()
	ticker := time.NewTicker(p.cfg.MonitorInterval)
	defer ticker.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-ticker.C:
		}
		p.mu.Lock()
		deadline := sess.deadline
		hosts := append([]string(nil), sess.hosts...)
		p.mu.Unlock()
		if time.Now().After(deadline) {
			p.mu.Lock()
			completed := sess.status == StatusActive
			if completed {
				sess.status = StatusCompleted
			}
			p.mu.Unlock()
			if completed && p.cfg.Tracer != nil {
				p.cfg.Tracer.Emit(obs.Event{Kind: obs.KindEnd, Session: sess.sid, OK: true})
			}
			return
		}
		for k, host := range hosts {
			if res := p.probe(host); res.alive {
				continue
			}
			if !p.recoverComponent(sess, k, host) {
				p.failInitiated(sess)
				return
			}
		}
	}
}

// recoverComponent re-homes component k of the session after its host
// died. Selection runs at the initiating peer (a simplification of the
// paper's downstream-neighbor selection, acceptable because the initiator
// already holds the candidate lists).
func (p *Peer) recoverComponent(sess *initiated, k int, dead string) bool {
	inst := sess.instances[k]
	var alive []string
	for _, c := range sess.candidates[inst.ID] {
		if c != dead {
			alive = append(alive, c)
		}
	}
	remaining := time.Until(sess.deadline)
	if remaining <= 0 {
		return true // the session is about to complete anyway
	}
	emit := func(ok bool, replacement string) {
		if p.cfg.Tracer == nil {
			return
		}
		ev := obs.Event{Kind: obs.KindRecover, Session: sess.sid, Hop: k + 1, Inst: inst.ID, OK: ok}
		if ok {
			ev.Peer = replacement
		}
		p.cfg.Tracer.Emit(ev)
	}
	chosen, ok, _, _ := p.selectNext(inst, alive, remaining, false)
	if !ok {
		emit(false, "")
		return false
	}
	// Single attempt, like admission: reserve is not idempotent.
	_, err := p.rpc(chosen, request{
		Type:        msgReserve,
		SessionID:   sess.sid,
		InstanceID:  inst.ID,
		CPU:         inst.R[resource.CPU],
		Memory:      inst.R[resource.Memory],
		DurationSec: remaining.Seconds(),
	}, p.cfg.RPCTimeout)
	if err != nil {
		emit(false, "")
		return false
	}
	p.mu.Lock()
	sess.hosts[k] = chosen
	sess.recovered++
	p.mu.Unlock()
	emit(true, chosen)
	return true
}

// failInitiated marks the session failed and releases surviving
// reservations.
func (p *Peer) failInitiated(sess *initiated) {
	p.mu.Lock()
	sess.status = StatusFailed
	hosts := append([]string(nil), sess.hosts...)
	p.mu.Unlock()
	if p.cfg.Tracer != nil {
		p.cfg.Tracer.Emit(obs.Event{Kind: obs.KindEnd, Session: sess.sid, OK: false,
			Stage: obs.StageDeparture, Err: "component host departed; recovery failed"})
	}
	for _, h := range hosts {
		// Best effort (retried — release is idempotent): a host that
		// cannot be reached is the one that failed; its reservation
		// expires on its own.
		_, _ = p.rpcRetry(h, request{Type: msgRelease, SessionID: sess.sid}, p.cfg.RPCTimeout)
	}
}
