package netproto

import (
	"net"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// MeteredTransport wraps any Transport — including the fault-injecting
// one from internal/faults — and counts dial attempts and failures into
// an obs registry. Start installs it automatically when Config.Metrics
// is set, so drop/partition effects injected below the RPC layer show up
// as transport.dial_failures without the fault plane knowing about
// telemetry.
type MeteredTransport struct {
	Inner Transport
	// Dials counts every dial attempt; Failures the subset that returned
	// an error. Nil counters disable the accounting.
	Dials, Failures *obs.Counter
}

// NewMeteredTransport wraps inner with counters from reg
// (transport.dials, transport.dial_failures).
func NewMeteredTransport(inner Transport, reg *obs.Registry) MeteredTransport {
	return MeteredTransport{
		Inner:    inner,
		Dials:    reg.Counter("transport.dials"),
		Failures: reg.Counter("transport.dial_failures"),
	}
}

// Dial implements Transport.
func (m MeteredTransport) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	m.Dials.Inc()
	conn, err := m.Inner.Dial(addr, timeout)
	if err != nil {
		m.Failures.Inc()
	}
	return conn, err
}

// peerTele bundles a peer's metric instruments with the counter names
// pre-resolved at construction, so the RPC hot path does no map work in
// the registry. A nil *peerTele (telemetry disabled) makes every method
// a no-op.
type peerTele struct {
	rpcSent    map[string]*obs.Counter // rpc.<type>.sent
	rpcFailed  map[string]*obs.Counter // rpc.<type>.failed
	rpcRetried map[string]*obs.Counter // rpc.<type>.retried
	// rpcLatency is log-bucketed (obs.LatencyHist) rather than a
	// fixed-bounds Histogram, so /metrics and qsastat can report
	// p50/p99/p999 without pre-chosen bucket bounds.
	rpcLatency *obs.LatencyHist // rpc.latency_seconds

	stageLat map[string]*obs.LatencyHist // agg.stage_seconds.<stage>
	aggLat   *obs.LatencyHist            // agg.latency_seconds

	probeHits, probeMisses *obs.Counter // probe.cache_hits / probe.cache_misses
	admitOK, admitRejected *obs.Counter // reserve.admitted / reserve.rejected
	selectSteps            *obs.Counter // select.steps

	compose obs.ComposeCounters

	// Serving plane (DESIGN §14): admission outcomes, queue wait, and
	// end-to-end serve latency split by clamped priority class.
	serveAdmit *obs.Counter            // serve.admitted
	serveSheds map[string]*obs.Counter // serve.shed.<reason>
	serveWait  *obs.LatencyHist        // serve.queue_wait_seconds
	serveLat   [4]*obs.LatencyHist     // serve.latency_seconds.p<class>
	serveDepth *obs.Gauge              // serve.queue_depth

	gossipSent    *obs.Counter // gossip.rounds_sent
	gossipRecv    *obs.Counter // gossip.batches_recv
	gossipLearned *obs.Counter // gossip.peers_learned
	gossipRefresh *obs.Counter // gossip.probes_refreshed

	wire *wireTele
}

var msgTypes = []string{msgJoin, msgLeave, msgLookup, msgProbe, msgSelect, msgReserve, msgRelease, msgAggregate, msgGossip}

// shedReasons mirrors the shed* constants for counter pre-resolution.
var shedReasons = []string{shedQueueFull, shedEvicted, shedDeadline, shedShutdown}

func newPeerTele(reg *obs.Registry) *peerTele {
	t := &peerTele{
		rpcSent:       make(map[string]*obs.Counter, len(msgTypes)),
		rpcFailed:     make(map[string]*obs.Counter, len(msgTypes)),
		rpcRetried:    make(map[string]*obs.Counter, len(msgTypes)),
		rpcLatency:    reg.Latency("rpc.latency_seconds"),
		aggLat:        reg.Latency("agg.latency_seconds"),
		probeHits:     reg.Counter("probe.cache_hits"),
		probeMisses:   reg.Counter("probe.cache_misses"),
		admitOK:       reg.Counter("reserve.admitted"),
		admitRejected: reg.Counter("reserve.rejected"),
		selectSteps:   reg.Counter("select.steps"),
		compose:       obs.NewComposeCounters(reg),
		serveAdmit:    reg.Counter("serve.admitted"),
		serveSheds:    make(map[string]*obs.Counter, len(shedReasons)),
		serveWait:     reg.Latency("serve.queue_wait_seconds"),
		serveDepth:    reg.Gauge("serve.queue_depth"),
		gossipSent:    reg.Counter("gossip.rounds_sent"),
		gossipRecv:    reg.Counter("gossip.batches_recv"),
		gossipLearned: reg.Counter("gossip.peers_learned"),
		gossipRefresh: reg.Counter("gossip.probes_refreshed"),
		wire:          newWireTele(reg),
	}
	for _, r := range shedReasons {
		t.serveSheds[r] = reg.Counter("serve.shed." + r)
	}
	for c := range t.serveLat {
		t.serveLat[c] = reg.Latency("serve.latency_seconds.p" + string(rune('0'+c)))
	}
	for _, m := range msgTypes {
		t.rpcSent[m] = reg.Counter("rpc." + m + ".sent")
		t.rpcFailed[m] = reg.Counter("rpc." + m + ".failed")
		t.rpcRetried[m] = reg.Counter("rpc." + m + ".retried")
	}
	t.stageLat = map[string]*obs.LatencyHist{
		obs.StageDiscovery: reg.Latency("agg.stage_seconds." + obs.StageDiscovery),
		obs.StageCompose:   reg.Latency("agg.stage_seconds." + obs.StageCompose),
		obs.StageSelection: reg.Latency("agg.stage_seconds." + obs.StageSelection),
		obs.StageAdmission: reg.Latency("agg.stage_seconds." + obs.StageAdmission),
	}
	return t
}

// stage records the wall time one aggregation stage took on this peer.
func (t *peerTele) stage(name string, seconds float64) {
	if t == nil {
		return
	}
	t.stageLat[name].Observe(seconds)
}

// aggregated records one whole Aggregate call's wall time.
func (t *peerTele) aggregated(seconds float64) {
	if t == nil {
		return
	}
	t.aggLat.Observe(seconds)
}

// wireTele is the wire plane's instrument bundle: message-level bytes
// per RPC type plus the datagram-layer health counters (fragments,
// retransmits, suppressed duplicates, CRC failures). A nil *wireTele
// makes every method a no-op, so the transport never branches on
// whether telemetry is configured.
type wireTele struct {
	bytesSent map[string]*obs.Counter // wire.bytes_sent.<type>
	bytesRecv map[string]*obs.Counter // wire.bytes_recv.<type>
	otherSent *obs.Counter            // wire.bytes_sent.other
	otherRecv *obs.Counter            // wire.bytes_recv.other

	fragSent   *obs.Counter // wire.frags_sent
	fragRecv   *obs.Counter // wire.frags_recv
	retransmit *obs.Counter // wire.retransmits
	dupDropped *obs.Counter // wire.dups_dropped
	crcFail    *obs.Counter // wire.crc_failures
	pktReject  *obs.Counter // wire.packet_rejects (malformed, non-CRC)

	connDials  *obs.Counter // wire.conn_dials (pool misses: real dials)
	connReuses *obs.Counter // wire.conn_reuses (pool hits)
}

func newWireTele(reg *obs.Registry) *wireTele {
	t := &wireTele{
		bytesSent:  make(map[string]*obs.Counter, len(msgTypes)),
		bytesRecv:  make(map[string]*obs.Counter, len(msgTypes)),
		otherSent:  reg.Counter("wire.bytes_sent.other"),
		otherRecv:  reg.Counter("wire.bytes_recv.other"),
		fragSent:   reg.Counter("wire.frags_sent"),
		fragRecv:   reg.Counter("wire.frags_recv"),
		retransmit: reg.Counter("wire.retransmits"),
		dupDropped: reg.Counter("wire.dups_dropped"),
		crcFail:    reg.Counter("wire.crc_failures"),
		pktReject:  reg.Counter("wire.packet_rejects"),
		connDials:  reg.Counter("wire.conn_dials"),
		connReuses: reg.Counter("wire.conn_reuses"),
	}
	for _, m := range msgTypes {
		t.bytesSent[m] = reg.Counter("wire.bytes_sent." + m)
		t.bytesRecv[m] = reg.Counter("wire.bytes_recv." + m)
	}
	return t
}

// wireTele returns the wire-plane instruments (nil when telemetry is
// disabled; every wireTele method tolerates the nil).
func (t *peerTele) wireTele() *wireTele {
	if t == nil {
		return nil
	}
	return t.wire
}

// message accounts one encoded message: n bytes of the given RPC
// type, received (recv) or sent.
func (t *wireTele) message(typ string, n int, recv bool) {
	if t == nil {
		return
	}
	var c *obs.Counter
	if recv {
		c = t.bytesRecv[typ]
		if c == nil {
			c = t.otherRecv
		}
	} else {
		c = t.bytesSent[typ]
		if c == nil {
			c = t.otherSent
		}
	}
	c.Add(uint64(n))
}

func (t *wireTele) fragSent1() {
	if t == nil {
		return
	}
	t.fragSent.Inc()
}

func (t *wireTele) fragRecv1() {
	if t == nil {
		return
	}
	t.fragRecv.Inc()
}

func (t *wireTele) retransmit1() {
	if t == nil {
		return
	}
	t.retransmit.Inc()
}

func (t *wireTele) dupDropped1() {
	if t == nil {
		return
	}
	t.dupDropped.Inc()
}

// connDial1 counts one real dial through the connection pool.
func (t *wireTele) connDial1() {
	if t == nil {
		return
	}
	t.connDials.Inc()
}

// connReuse1 counts one pooled-connection reuse (a dial avoided).
func (t *wireTele) connReuse1() {
	if t == nil {
		return
	}
	t.connReuses.Inc()
}

// packetReject classifies a ParsePacket failure: CRC mismatches get
// their own counter (the corruption signal); everything else counts
// as a generic reject.
func (t *wireTele) packetReject(err error) {
	if t == nil {
		return
	}
	if err == wire.ErrCRC {
		t.crcFail.Inc()
	} else {
		t.pktReject.Inc()
	}
}

// observeRPC accounts one RPC exchange. An unknown message type falls
// through to the nil counter no-op.
func (t *peerTele) observeRPC(typ string, d time.Duration, err error) {
	if t == nil {
		return
	}
	t.rpcSent[typ].Inc()
	if err != nil {
		t.rpcFailed[typ].Inc()
	}
	t.rpcLatency.Observe(d.Seconds())
}

func (t *peerTele) retried(typ string) {
	if t == nil {
		return
	}
	t.rpcRetried[typ].Inc()
}

func (t *peerTele) probeCache(hit bool) {
	if t == nil {
		return
	}
	if hit {
		t.probeHits.Inc()
	} else {
		t.probeMisses.Inc()
	}
}

func (t *peerTele) reserve(ok bool) {
	if t == nil {
		return
	}
	if ok {
		t.admitOK.Inc()
	} else {
		t.admitRejected.Inc()
	}
}

func (t *peerTele) selectStep() {
	if t == nil {
		return
	}
	t.selectSteps.Inc()
}

func (t *peerTele) composeObs() obs.ComposeCounters {
	if t == nil {
		return obs.ComposeCounters{}
	}
	return t.compose
}

// serveAdmitted counts one request the admission gate let run.
func (t *peerTele) serveAdmitted() {
	if t == nil {
		return
	}
	t.serveAdmit.Inc()
}

// serveShed counts one shed request by reason.
func (t *peerTele) serveShed(reason string) {
	if t == nil {
		return
	}
	if c := t.serveSheds[reason]; c != nil {
		c.Inc()
	}
}

// serveWaited records time a request spent parked in the admission
// queue before running.
func (t *peerTele) serveWaited(seconds float64) {
	if t == nil {
		return
	}
	t.serveWait.Observe(seconds)
}

// serveClass clamps a wire priority into the four reported classes.
func serveClass(priority int) int {
	if priority < 0 {
		return 0
	}
	if priority > 3 {
		return 3
	}
	return priority
}

// served records one admitted aggregate's end-to-end serve time under
// its priority class.
func (t *peerTele) served(priority int, seconds float64) {
	if t == nil {
		return
	}
	t.serveLat[serveClass(priority)].Observe(seconds)
}

// serveQueueDepth publishes the instantaneous admission queue depth.
func (t *peerTele) serveQueueDepth(n int) {
	if t == nil {
		return
	}
	t.serveDepth.Set(int64(n))
}

func (t *peerTele) gossipRound() {
	if t == nil {
		return
	}
	t.gossipSent.Inc()
}

// gossipBatch accounts one received gossip batch: learned is the
// number of previously unknown peers, refreshed the number of probe
// cache entries renewed without a direct probe.
func (t *peerTele) gossipBatch(learned, refreshed int) {
	if t == nil {
		return
	}
	t.gossipRecv.Inc()
	t.gossipLearned.Add(uint64(learned))
	t.gossipRefresh.Add(uint64(refreshed))
}

// emitHops replays the wire-level selection report (one WireHop per hop,
// in selection order: user side first) into the initiator's tracer.
func emitHops(tr *obs.Tracer, rid uint64, hops []WireHop) {
	for _, wh := range hops {
		ev := obs.Event{
			Kind:   obs.KindHop,
			Req:    rid,
			Hop:    wh.Idx + 1, // 1-based instance index, aggregation-flow order
			Inst:   wh.Inst,
			At:     wh.At,
			Chosen: wh.Chosen,
			Mode:   wh.Mode,
		}
		for _, c := range wh.Cands {
			ev.Cands = append(ev.Cands, obs.Candidate{Peer: c.Addr, Phi: c.Phi, Reason: c.Reason})
		}
		tr.Emit(ev)
	}
}
