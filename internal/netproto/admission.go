package netproto

import (
	"sync"
	"time"

	"repro/internal/core"
)

// AdmitConfig bounds the serving peer's concurrent aggregation work
// (DESIGN §14). Zero Workers disables admission control entirely —
// the default, so closed-loop tests and the simulator-faithful paths
// are untouched.
type AdmitConfig struct {
	// Workers is the number of aggregations served concurrently.
	// 0 disables admission control.
	Workers int
	// MaxQueue bounds the requests waiting for a worker slot; beyond
	// it, the least important of (queue ∪ arrival) is shed with a
	// retry-after hint. Default 4× Workers.
	MaxQueue int
	// RetryAfter is the base backoff hint sent with a shed response;
	// the actual hint scales with queue depth (core.AdmitQueue).
	// Default 100 ms.
	RetryAfter time.Duration
}

func (a *AdmitConfig) fillDefaults() {
	if a.Workers <= 0 {
		return // disabled
	}
	if a.MaxQueue == 0 {
		a.MaxQueue = 4 * a.Workers
	}
	if a.RetryAfter == 0 {
		a.RetryAfter = 100 * time.Millisecond
	}
}

// admitVerdict is the outcome of one acquire.
type admitVerdict struct {
	run        bool
	reason     string        // shed reason when !run
	retryAfter time.Duration // backoff hint when !run
	waited     time.Duration // queue time when run after waiting
}

// admitWaiter parks one queued request. ready is buffered so the
// completer (Release or an eviction) never blocks on a waiter that
// is concurrently timing out.
type admitWaiter struct {
	ready    chan admitVerdict
	enqueued time.Time
	deadline time.Duration // client latency budget; 0 = none
}

var waiterPool = sync.Pool{New: func() any {
	return &admitWaiter{ready: make(chan admitVerdict, 1)}
}}

// admission wraps the pure core.AdmitQueue policy with the waiting
// mechanics: a mutex, parked waiters keyed by the policy's Seq
// handles, and the peer's shutdown signal.
type admission struct {
	mu      sync.Mutex
	q       *core.AdmitQueue
	waiters map[uint64]*admitWaiter
	base    time.Duration // retry-after base
	done    <-chan struct{}
	tele    *peerTele
}

func newAdmission(cfg AdmitConfig, done <-chan struct{}, tele *peerTele) *admission {
	return &admission{
		q:       core.NewAdmitQueue(cfg.Workers, cfg.MaxQueue),
		waiters: make(map[uint64]*admitWaiter, cfg.MaxQueue),
		base:    cfg.RetryAfter,
		done:    done,
		tele:    tele,
	}
}

// Shed reasons (wire error strings and telemetry counter suffixes).
const (
	shedQueueFull = "queue_full"
	shedEvicted   = "evicted"
	shedDeadline  = "deadline"
	shedShutdown  = "shutdown"
)

// acquire claims a worker slot for a request of the given priority
// class, parking until one frees when the queue has room. The
// uncontended path — a free slot — takes the lock, bumps a counter
// and returns; it allocates nothing (ci.sh gates this).
//
// lint:hotpath admission gate runs per serving request
func (a *admission) acquire(priority int, dtolerant bool, deadline time.Duration) admitVerdict {
	a.mu.Lock()
	d, item, evicted, hasEvict := a.q.Offer(priority, dtolerant)
	switch d {
	case core.AdmitRun:
		a.mu.Unlock()
		return admitVerdict{run: true}
	case core.AdmitShed:
		ra := a.retryAfterLocked()
		a.mu.Unlock()
		return admitVerdict{reason: shedQueueFull, retryAfter: ra}
	}
	// AdmitWait: park. Eviction of a lower-priority waiter happens
	// under the same lock, so its shed verdict is ordered before any
	// Release could pop it.
	if hasEvict {
		// lint:allow mutex-across-block every waiter's ready channel is buffered (cap 1, one completer); this never blocks
		a.completeLocked(evicted.Seq, admitVerdict{reason: shedEvicted, retryAfter: a.retryAfterLocked()})
	}
	// Queued requests are the contended cold path; the pool recycles waiters.
	w := waiterPool.Get().(*admitWaiter)
	w.enqueued = time.Now()
	w.deadline = deadline
	a.waiters[item.Seq] = w
	a.tele.serveQueueDepth(a.q.QueueLen())
	a.mu.Unlock()

	select {
	case v := <-w.ready:
		waiterPool.Put(w)
		return v
	case <-a.done:
		// Shutdown: the waiter may still be completed concurrently;
		// leave it un-pooled rather than risk a double Put.
		a.mu.Lock()
		delete(a.waiters, item.Seq)
		a.mu.Unlock()
		return admitVerdict{reason: shedShutdown, retryAfter: a.base}
	}
}

// release frees the caller's worker slot, handing it to the most
// important queued waiter. Waiters whose latency budget expired while
// queued are shed on dequeue — spending a slot on a request the
// client has already given up on only deepens an overload.
func (a *admission) release() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for {
		next, ok := a.q.Release()
		if !ok {
			a.tele.serveQueueDepth(a.q.QueueLen())
			return
		}
		w := a.waiters[next.Seq]
		if w == nil {
			// Abandoned by shutdown; the slot is free again.
			continue
		}
		waited := time.Since(w.enqueued)
		if w.deadline > 0 && waited > w.deadline {
			// lint:allow mutex-across-block ready is buffered (cap 1, one completer); this never blocks
			a.completeLocked(next.Seq, admitVerdict{reason: shedDeadline, retryAfter: a.retryAfterLocked()})
			continue
		}
		delete(a.waiters, next.Seq)
		// lint:allow mutex-across-block ready is buffered (cap 1, one completer); this never blocks
		w.ready <- admitVerdict{run: true, waited: waited}
		a.tele.serveQueueDepth(a.q.QueueLen())
		return
	}
}

// completeLocked delivers a shed verdict to a parked waiter.
func (a *admission) completeLocked(seq uint64, v admitVerdict) {
	w := a.waiters[seq]
	if w == nil {
		return
	}
	delete(a.waiters, seq)
	w.ready <- v
}

func (a *admission) retryAfterLocked() time.Duration {
	return time.Duration(a.q.RetryAfter(a.base.Seconds()) * float64(time.Second))
}
