package netproto

import (
	"net"
	"time"

	"repro/internal/obs"
	"repro/internal/xrand"
)

// Transport dials remote peers for RPC exchanges. The production
// implementation is TCP; tests inject fault-injecting transports
// (internal/faults) to exercise drop, latency, partition and crash
// behaviour without touching real listeners.
type Transport interface {
	// Dial opens a connection to addr, observing timeout for the
	// connection establishment. The caller owns the returned connection.
	Dial(addr string, timeout time.Duration) (net.Conn, error)
}

// TCP is the default Transport: a plain net.DialTimeout over "tcp".
type TCP struct{}

// Dial implements Transport.
func (TCP) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, timeout)
}

// RetryPolicy bounds retransmission of idempotent RPCs (probe, lookup,
// join, leave, release). Only transport-level failures are retried —
// an application-level error means the peer answered and retrying
// cannot change the outcome. Reserve is deliberately never retried:
// it is not idempotent, so a retry after a lost response could book
// the same session's capacity twice on one host.
type RetryPolicy struct {
	// Attempts is the total number of dial attempts per RPC.
	// 0 means the default (3); 1 disables retry.
	Attempts int
	// BaseDelay is the backoff before the second attempt; it doubles
	// with every further attempt. Default 25 ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth. Default 250 ms.
	MaxDelay time.Duration
}

func (r *RetryPolicy) fillDefaults() {
	if r.Attempts == 0 {
		r.Attempts = 3
	}
	if r.BaseDelay == 0 {
		r.BaseDelay = 25 * time.Millisecond
	}
	if r.MaxDelay == 0 {
		r.MaxDelay = 250 * time.Millisecond
	}
}

// backoff computes the jittered delay before attempt+1. The base doubles
// per attempt and is capped at MaxDelay; jitter scales it into
// [d/2, d) by a hash of (local addr, target addr, attempt), so
// concurrent retries desynchronize while a given configuration replays
// deterministically.
func (r RetryPolicy) backoff(local, remote string, attempt int) time.Duration {
	d := r.BaseDelay
	for i := 1; i < attempt && d < r.MaxDelay; i++ {
		d *= 2
	}
	if d > r.MaxDelay {
		d = r.MaxDelay
	}
	h := xrand.MixString(uint64(attempt), local)
	h = xrand.MixString(h, remote)
	frac := float64(h>>11) / (1 << 53) // uniform [0,1)
	half := d / 2
	return half + time.Duration(frac*float64(half))
}

// rpcRetry performs one idempotent RPC with bounded retry. Transport
// failures (resp == nil) are retried up to the policy's attempt budget;
// application-level failures (the peer answered with an error) and
// successes return immediately. Retries stop early when the peer shuts
// down.
func (p *Peer) rpcRetry(addr string, req request, timeout time.Duration) (*response, error) {
	for attempt := 1; ; attempt++ {
		resp, err := p.rpc(addr, req, timeout)
		if err == nil || resp != nil || attempt >= p.cfg.Retry.Attempts {
			return resp, err
		}
		p.tele.retried(req.Type)
		if tr := p.cfg.Tracer; tr != nil {
			tr.Emit(obs.Event{Kind: obs.KindRetry, RPC: req.Type, Peer: addr, Attempt: attempt,
				Trace: req.TraceID, Span: req.SpanID})
		}
		t := time.NewTimer(p.cfg.Retry.backoff(p.addr, addr, attempt))
		select {
		case <-p.done:
			t.Stop()
			return nil, err
		case <-t.C:
		}
	}
}

// rpc performs a single RPC exchange through the configured transport
// with the peer's configured codec, accounting the attempt and its
// latency when telemetry is enabled. The disabled path (tele == nil)
// adds one branch and no clock reads.
func (p *Peer) rpc(addr string, req request, timeout time.Duration) (*response, error) {
	if p.tele == nil {
		return rpcWith(p.cfg.Transport, p.codec, nil, addr, req, timeout)
	}
	start := time.Now()
	resp, err := rpcWith(p.cfg.Transport, p.codec, p.tele.wire, addr, req, timeout)
	p.tele.observeRPC(req.Type, time.Since(start), err)
	return resp, err
}
