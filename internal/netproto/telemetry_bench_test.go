package netproto

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// BenchmarkTelemetryDisabledRPCPath pins the disabled-sink overhead on
// the RPC hot path: with Config.Metrics nil every accounting call below
// is a nil-receiver no-op and must not allocate. ci.sh runs this with
// -benchtime=1x as a regression gate.
func BenchmarkTelemetryDisabledRPCPath(b *testing.B) {
	var tele *peerTele
	if allocs := testing.AllocsPerRun(1000, func() {
		tele.observeRPC(msgProbe, time.Millisecond, nil)
		tele.retried(msgProbe)
		tele.probeCache(true)
		tele.reserve(true)
		tele.selectStep()
	}); allocs != 0 {
		b.Fatalf("disabled telemetry allocated %v per RPC, want 0", allocs)
	}
	for i := 0; i < b.N; i++ {
		tele.observeRPC(msgProbe, time.Millisecond, nil)
	}
}

// BenchmarkTelemetryEnabledRPCPath pins the enabled path: pre-resolved
// counters and the latency histogram must stay allocation-free per RPC.
func BenchmarkTelemetryEnabledRPCPath(b *testing.B) {
	tele := newPeerTele(obs.NewRegistry())
	if allocs := testing.AllocsPerRun(1000, func() {
		tele.observeRPC(msgProbe, time.Millisecond, nil)
		tele.probeCache(false)
		tele.reserve(false)
	}); allocs != 0 {
		b.Fatalf("enabled telemetry allocated %v per RPC, want 0", allocs)
	}
	for i := 0; i < b.N; i++ {
		tele.observeRPC(msgProbe, time.Millisecond, nil)
	}
}
