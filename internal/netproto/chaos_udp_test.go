// Chaos suite over the UDP transport: the same protocol invariants as
// the TCP chaos tests (no double-reservation, reservations always
// released or expired, partition-heal convergence), but with faults
// injected per DATAGRAM rather than per dial — seeded drop,
// duplication and reordering of individual packets, exercising the
// fragmentation, ack/retransmit and dedup machinery of DESIGN.md §12.
package netproto_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/netproto"
	"repro/internal/service"
)

// udpChaosCluster starts n UDP/binary peers whose outgoing datagrams
// route through fab's packet plane, named n0..n(n-1), joined via n0.
func udpChaosCluster(t *testing.T, fab *faults.Fabric, n int, cpu float64, tweak func(i int, cfg *netproto.Config)) []*netproto.Peer {
	t.Helper()
	peers := make([]*netproto.Peer, n)
	for i := range peers {
		cfg := netproto.Config{
			Listen:  "127.0.0.1:0",
			Network: "udp",
			CPU:     cpu,
			Memory:  cpu,
			// Comfortably past the full retransmit horizon (~0.5 s at
			// AckTimeout 15 ms × budget 6), but short enough that lossy
			// single-shot RPCs don't serialize long stalls on 1 CPU.
			RPCTimeout: time.Second,
			Wire: netproto.WireConfig{
				AckTimeout:       15 * time.Millisecond,
				RetransmitBudget: 6,
				PacketFilter:     fab.PacketNode(nodeName(i)),
			},
		}
		if tweak != nil {
			tweak(i, &cfg)
		}
		p, err := netproto.Start(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		fab.Register(nodeName(i), p.Addr())
		peers[i] = p
	}
	for i := 1; i < n; i++ {
		if err := peers[i].Join(peers[0].Addr()); err != nil {
			t.Fatalf("join peer %d: %v", i, err)
		}
	}
	return peers
}

// TestChaosUDPAggregateUnderPacketLoss runs end-to-end aggregations
// over UDP at 0%, 10% and 30% per-packet drop (plus duplication and
// reordering at the lossy rates). Every request must return a valid
// plan or a clean error, and once every session has been rolled back
// or expired all capacity must be back — duplicated reserve packets
// must never double-book.
func TestChaosUDPAggregateUnderPacketLoss(t *testing.T) {
	for _, rate := range []float64{0, 0.10, 0.30} {
		t.Run(fmt.Sprintf("drop=%v", rate), func(t *testing.T) {
			fab, err := faults.New(faults.Config{Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			pc := faults.PacketConfig{DropRate: rate}
			if rate > 0 {
				pc.DupRate = 0.05
				pc.ReorderRate = 0.10
				pc.ReorderDelay = time.Millisecond
			}
			if err := fab.EnablePackets(pc); err != nil {
				t.Fatal(err)
			}
			const cpu = 400
			peers := udpChaosCluster(t, fab, 5, cpu, nil)
			src := chaosInst("source#0", "source", "RAW", "MPEG", 40)
			snk := chaosInst("player#0", "player", "MPEG", "SCREEN", 30)
			for _, p := range peers[1:3] {
				if err := p.Provide(src); err != nil {
					t.Fatal(err)
				}
			}
			for _, p := range peers[2:4] {
				if err := p.Provide(snk); err != nil {
					t.Fatal(err)
				}
			}
			user := peers[4]
			ok := 0
			const requests = 6
			for i := 0; i < requests; i++ {
				plan, err := user.Aggregate([]service.Name{"source", "player"}, chaosQoS, 250*time.Millisecond)
				if err != nil {
					continue // a clean failure is an allowed outcome under loss
				}
				ok++
				if len(plan.Peers) != 2 || len(plan.Instances) != 2 {
					t.Fatalf("request %d: malformed plan %+v", i, plan)
				}
			}
			if rate == 0 && ok != requests {
				t.Fatalf("lossless packet plane completed %d/%d aggregations", ok, requests)
			}
			t.Logf("packet drop=%v: %d/%d aggregations completed", rate, ok, requests)
			waitFullCapacity(t, peers, cpu, 10*time.Second)
			if rate > 0 {
				st := fab.PacketStatsFor(nodeName(4), nodeName(0))
				if st.Sent == 0 || st.Dropped == 0 {
					t.Fatalf("packet plane never engaged: %+v", st)
				}
			}
		})
	}
}

// TestChaosUDPDuplicationNeverDoubleReserves hammers the at-most-once
// contract directly: with heavy packet duplication (and no loss),
// every reserve datagram reaches the host at least twice, yet each
// session books capacity exactly once.
func TestChaosUDPDuplicationNeverDoubleReserves(t *testing.T) {
	fab, err := faults.New(faults.Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := fab.EnablePackets(faults.PacketConfig{DupRate: 1.0}); err != nil {
		t.Fatal(err)
	}
	const cpu = 100
	peers := udpChaosCluster(t, fab, 3, cpu, nil)
	w := chaosInst("work#0", "work", "A", "B", 30)
	if err := peers[1].Provide(w); err != nil {
		t.Fatal(err)
	}
	user := peers[2]
	for i := 0; i < 4; i++ {
		plan, err := user.Aggregate([]service.Name{"work"}, chaosQoS, 150*time.Millisecond)
		if err != nil {
			t.Fatalf("request %d failed under pure duplication: %v", i, err)
		}
		if plan.Peers[0] != peers[1].Addr() {
			t.Fatalf("request %d landed on %s", i, plan.Peers[0])
		}
		// While the session is live, exactly one reservation's worth of
		// capacity is gone — a duplicated reserve that executed twice
		// would show 40 reserved instead of 30.
		if av := peers[1].Available(); av[0] != cpu-30 {
			t.Fatalf("request %d: provider available %v, want %v (double-booked?)", i, av, cpu-30)
		}
		waitFullCapacity(t, peers, cpu, 5*time.Second)
	}
	st := fab.PacketStatsFor(nodeName(2), nodeName(1))
	if st.Duplicated == 0 {
		t.Fatal("duplication plane never engaged")
	}
}

// TestChaosUDPPartitionHealMembership is the partition-heal convergence
// invariant over the packet plane: a cut at the datagram level makes
// RPCs time out rather than fail at dial, but membership must still
// end up asymmetric during the cut and fully converged after healing.
func TestChaosUDPPartitionHealMembership(t *testing.T) {
	fab, err := faults.New(faults.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := fab.EnablePackets(faults.PacketConfig{}); err != nil {
		t.Fatal(err)
	}
	short := func(i int, cfg *netproto.Config) {
		cfg.RPCTimeout = 300 * time.Millisecond
		cfg.Retry = netproto.RetryPolicy{Attempts: 2, BaseDelay: 5 * time.Millisecond}
		cfg.Wire.RetransmitBudget = 2
	}
	peers := udpChaosCluster(t, fab, 3, 100, short)

	cfg := netproto.Config{
		Listen: "127.0.0.1:0", Network: "udp", CPU: 100, Memory: 100,
		Wire: netproto.WireConfig{
			AckTimeout:       15 * time.Millisecond,
			PacketFilter:     fab.PacketNode(nodeName(3)),
			RetransmitBudget: 2,
		},
	}
	short(3, &cfg)
	d, err := netproto.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	fab.Register(nodeName(3), d.Addr())
	fab.CutBoth(nodeName(3), nodeName(2))

	if err := d.Join(peers[0].Addr()); err != nil {
		t.Fatal(err)
	}
	if !hasMember(d, peers[2].Addr()) {
		t.Fatal("joiner did not learn the partitioned member from the bootstrap")
	}
	if hasMember(peers[2], d.Addr()) {
		t.Fatal("announcement crossed a datagram-level cut")
	}

	fab.HealAll()
	if err := d.Join(peers[0].Addr()); err != nil {
		t.Fatal(err)
	}
	all := append(peers, d)
	for i, p := range all {
		for j, q := range all {
			if i == j {
				continue
			}
			if !hasMember(p, q.Addr()) {
				t.Fatalf("after heal+rejoin, peer %d does not know peer %d", i, j)
			}
		}
	}
}

// TestChaosUDPPacketVerdictDeterministic pins the packet-plane replay
// contract: the verdict stream per link is a pure function of the seed.
func TestChaosUDPPacketVerdictDeterministic(t *testing.T) {
	mk := func(seed uint64) *faults.Fabric {
		fab, err := faults.New(faults.Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if err := fab.EnablePackets(faults.PacketConfig{
			DropRate: 0.2, DupRate: 0.2, ReorderRate: 0.2}); err != nil {
			t.Fatal(err)
		}
		return fab
	}
	a, b, c := mk(1), mk(1), mk(2)
	same, diff := true, false
	for n := uint64(1); n <= 200; n++ {
		va := a.PacketVerdict("n0", "n1", n)
		if vb := b.PacketVerdict("n0", "n1", n); va != vb {
			same = false
		}
		if vc := c.PacketVerdict("n0", "n1", n); va != vc {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed produced different packet verdict streams")
	}
	if !diff {
		t.Fatal("different seeds produced identical packet verdict streams")
	}
	if v := mk(3).PacketVerdict("n0", "n1", 1); v != mk(3).PacketVerdict("n0", "n1", 1) {
		t.Fatal("verdict not stable across fabric instances")
	}
}

// TestPacketConfigValidate is the edge table for the packet plane.
func TestPacketConfigValidate(t *testing.T) {
	bad := []faults.PacketConfig{
		{DropRate: -0.1},
		{DropRate: 1.1},
		{DupRate: 2},
		{ReorderRate: -1},
		{ReorderDelay: -time.Second},
	}
	for i, cfg := range bad {
		fab, err := faults.New(faults.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := fab.EnablePackets(cfg); err == nil {
			t.Errorf("case %d: invalid packet config accepted: %+v", i, cfg)
		}
	}
	fab, err := faults.New(faults.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := fab.EnablePackets(faults.PacketConfig{DropRate: 0.5, DupRate: 0.5, ReorderRate: 0.5}); err != nil {
		t.Fatal(err)
	}
	// Without EnablePackets the filter is a transparent no-op.
	bare, err := faults.New(faults.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if v := bare.PacketVerdict("a", "b", 1); v != (netproto.PacketDecision{}) {
		t.Fatalf("disabled packet plane returned %+v", v)
	}
	if st := bare.PacketStatsFor("a", "b"); st != (faults.PacketStats{}) {
		t.Fatalf("disabled packet plane has stats %+v", st)
	}
}
