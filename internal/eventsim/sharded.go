package eventsim

import (
	"container/heap"
	"runtime"
	"sync"
)

// ShardedEngine partitions the event queue across N per-shard heaps
// ("lanes") and synchronizes them with a conservative virtual-time
// barrier. The design goal is determinism first, parallelism second:
//
//   - Commits — the observable event handlers — always execute one at a
//     time on the caller's goroutine, in the global total order
//     (at, logical, seq). `logical` is a caller-chosen logical shard
//     index and `seq` is a single engine-global schedule counter, so the
//     order is independent of the configured physical shard count: any
//     N, including N=1, replays the exact same commit sequence for the
//     same schedule calls. Epoch boundaries batch work but never reorder
//     it.
//   - Serial preps — optional stateful stages attached via AtPrepared —
//     run on the coordinator at epoch start, in merged order over the
//     epoch's claimed events. A serial prep may touch shared state
//     (charge lookup statistics, position a random stream): because the
//     claimed set and its merged order depend only on (at, logical, seq),
//     every shard/worker configuration runs the same serial preps at the
//     same logical point.
//   - Prepares — optional speculative stages attached via AtPrepared —
//     then run ahead of the barrier on per-lane worker goroutines. A
//     prepare must be pure speculation: it may only touch lane-local
//     scratch and caches whose contents are proven invisible to results.
//     The commit validates whatever the stages precomputed and redoes
//     the work inline when stale, so a prepare that ran against outdated
//     state changes nothing observable.
//
// Each epoch the coordinator pops the globally minimal pending event,
// extends a lookahead horizon past it, claims every event inside the
// horizon, runs the claimed serial preps in merged order, fans the
// speculative prepares out to the lane workers (or runs them inline when
// no workers are configured), waits on the barrier, and then commits the
// horizon's events in merged order. Events scheduled during commits that
// land inside the current horizon simply miss the epoch pre-pass: both
// their stages run inline at commit time.
type ShardedEngine struct {
	shards    int
	lookahead float64
	now       Time
	seq       uint64
	executed  uint64
	lanes     []shardHeap

	workers   []*laneWorker
	prepWG    sync.WaitGroup
	preparing bool // set for the prepare window; guards against scheduling from prepares
	batches   [][]*ShardEvent
	merge     []int // k-way merge cursors over batches, reused across epochs
	hasSpec   bool  // at least one event ever carried a prep stage
	closed    bool
}

// ShardedConfig configures a ShardedEngine.
type ShardedConfig struct {
	// Shards is the number of physical event lanes. Values < 1 mean 1.
	Shards int
	// Lookahead is the virtual-time window (simulated minutes) past the
	// globally minimal event that one epoch claims for speculative
	// preparation. Zero means DefaultLookahead. Lookahead only changes
	// how much work each barrier batch covers, never the commit order.
	Lookahead float64
	// Parallel is the number of prepare worker goroutines. Zero picks
	// min(Shards, GOMAXPROCS); 1 disables workers entirely and runs
	// every prepare on the coordinator during the epoch pre-pass — the
	// exact serial shadow of the parallel schedule, with identical stage
	// timing. Tests force Parallel = Shards so the race detector
	// exercises the barrier even on one CPU.
	Parallel int
}

// DefaultLookahead is the epoch window in simulated minutes. Request
// inter-arrivals are uniform within a minute, so a quarter minute keeps
// epochs small enough that speculation rarely outruns registry churn.
const DefaultLookahead = 0.25

// NewSharded returns a sharded engine with the clock at 0. Callers that
// enable parallel prepares (Parallel != 1 on a multicore box) must call
// Close when done so the lane workers terminate.
func NewSharded(cfg ShardedConfig) *ShardedEngine {
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	la := cfg.Lookahead
	if la <= 0 {
		la = DefaultLookahead
	}
	e := &ShardedEngine{
		shards:    n,
		lookahead: la,
		lanes:     make([]shardHeap, n),
		batches:   make([][]*ShardEvent, n),
		merge:     make([]int, n),
	}
	w := cfg.Parallel
	if w == 0 {
		w = min(n, runtime.GOMAXPROCS(0))
	}
	if w > n {
		w = n
	}
	if w > 1 {
		e.workers = make([]*laneWorker, w)
		for i := range e.workers {
			lw := &laneWorker{ch: make(chan []*ShardEvent, n)}
			e.workers[i] = lw
			go e.runWorker(lw)
		}
	}
	return e
}

// laneWorker runs speculative prepares for the lanes assigned to it.
// Lanes map to workers by lane % len(workers), so each lane's prepares
// are always executed by the same single worker: lane-local scratch
// never sees two goroutines.
type laneWorker struct {
	ch chan []*ShardEvent
}

// runWorker drains prepare batches until Close closes the channel.
func (e *ShardedEngine) runWorker(w *laneWorker) {
	for batch := range w.ch {
		for _, ev := range batch {
			runPrepare(ev)
		}
		e.prepWG.Done()
	}
}

// runPrepare executes an event's speculative stage once. Safe to call
// for events without a prepare stage.
func runPrepare(ev *ShardEvent) {
	if ev.prepare != nil && !ev.prepared {
		ev.prepared = true
		ev.prepare()
	}
}

// runSerialPrep executes an event's serial pre-stage once. Safe to call
// for events without one.
func runSerialPrep(ev *ShardEvent) {
	if ev.serialPrep != nil && !ev.serialDone {
		ev.serialDone = true
		ev.serialPrep()
	}
}

// Close terminates the lane workers. It is required whenever parallel
// prepares are enabled and is a no-op otherwise (and on second call).
func (e *ShardedEngine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for _, w := range e.workers {
		close(w.ch)
	}
	e.workers = nil
}

// Shards returns the configured physical lane count.
func (e *ShardedEngine) Shards() int { return e.shards }

// ParallelWorkers returns how many prepare workers are running (0 in
// inline mode).
func (e *ShardedEngine) ParallelWorkers() int { return len(e.workers) }

// Now returns the current simulated time in minutes.
func (e *ShardedEngine) Now() Time { return e.now }

// Executed returns how many event handlers have committed.
func (e *ShardedEngine) Executed() uint64 { return e.executed }

// Pending returns how many scheduled (possibly cancelled) events remain
// across all lanes.
func (e *ShardedEngine) Pending() int {
	n := 0
	for i := range e.lanes {
		n += len(e.lanes[i])
	}
	return n
}

// ShardEvent is a scheduled callback in a sharded engine. It implements
// Handle with the same provably-inert-after-execution Cancel semantics
// as the single-threaded Event.
type ShardEvent struct {
	at         Time
	logical    int
	seq        uint64
	fn         func()
	serialPrep func()
	prepare    func()
	serialDone bool
	prepared   bool
	state      int8
	idx        int
}

// Cancel prevents a still-pending handler from running; cancelling an
// executed or already-cancelled event is a no-op. Cancel must be called
// from event handlers or between runs, never from a prepare stage.
func (ev *ShardEvent) Cancel() {
	if ev != nil && ev.state == stateScheduled {
		ev.state = stateCancelled
	}
}

// Cancelled reports whether Cancel arrived before the handler ran.
func (ev *ShardEvent) Cancelled() bool { return ev != nil && ev.state == stateCancelled }

// shardHeap orders events by the global key (at, logical, seq).
type shardHeap []*ShardEvent

func less(a, b *ShardEvent) bool {
	// lint:allow float-eq heap ordering needs the exact stored timestamps; a tolerance would break transitivity
	if a.at != b.at {
		return a.at < b.at
	}
	if a.logical != b.logical {
		return a.logical < b.logical
	}
	return a.seq < b.seq
}

func (h shardHeap) Len() int           { return len(h) }
func (h shardHeap) Less(i, j int) bool { return less(h[i], h[j]) }
func (h shardHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *shardHeap) Push(x any) {
	ev := x.(*ShardEvent)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *shardHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// AtShard schedules fn at absolute time t on logical shard `logical`.
// The logical index is part of the deterministic total order and is
// mapped onto a physical lane by logical % Shards, so the same schedule
// replays identically at any physical shard count. Negative logical
// indices and past timestamps panic. Scheduling from a prepare stage
// panics: prepares are speculative and must not have observable effects.
func (e *ShardedEngine) AtShard(logical int, t Time, fn func()) *ShardEvent {
	return e.atShard(logical, t, nil, nil, fn)
}

// AtPrepared schedules an event with up to two pre-stages ahead of fn.
// Either stage may be nil. The engine guarantees each stage runs exactly
// once before fn, in order serialPrep → prepare → fn:
//
//   - serialPrep runs on the coordinator goroutine, either during the
//     epoch pre-pass in merged (at, logical, seq) order over the claimed
//     window, or inline immediately before fn when the event was never
//     claimed. It may touch shared state; its position in the total
//     order is identical for every shard and worker count.
//   - prepare runs after every claimed serialPrep of its epoch has
//     finished — on the lane's worker goroutine when workers are
//     configured, on the coordinator otherwise. It must confine itself
//     to lane-local scratch and semantics-invisible caches.
//
// fn is responsible for validating the prepared result and recomputing
// inline if it went stale between the pre-pass and the commit.
func (e *ShardedEngine) AtPrepared(logical int, t Time, serialPrep, prepare, fn func()) *ShardEvent {
	return e.atShard(logical, t, serialPrep, prepare, fn)
}

func (e *ShardedEngine) atShard(logical int, t Time, serialPrep, prepare, fn func()) *ShardEvent {
	if e.preparing {
		// lint:allow panic-in-library scheduling from a speculative prepare would be an unsynchronized observable effect; it is a programming error with no meaningful recovery
		panic("eventsim: scheduling from a prepare stage")
	}
	if logical < 0 {
		// lint:allow panic-in-library a negative logical shard cannot be mapped deterministically; no caller can recover meaningfully
		panic("eventsim: negative logical shard")
	}
	if t < e.now {
		// lint:allow panic-in-library scheduling into the past would silently reorder causality; no caller can recover meaningfully
		panic("eventsim: scheduling event in the past")
	}
	ev := &ShardEvent{at: t, logical: logical, seq: e.seq, fn: fn, serialPrep: serialPrep, prepare: prepare}
	e.seq++
	if serialPrep != nil || prepare != nil {
		e.hasSpec = true
	}
	heap.Push(&e.lanes[logical%e.shards], ev)
	return ev
}

// At schedules fn at absolute time t on logical shard 0.
func (e *ShardedEngine) At(t Time, fn func()) *ShardEvent { return e.AtShard(0, t, fn) }

// After schedules fn to run d minutes from now on logical shard 0.
func (e *ShardedEngine) After(d float64, fn func()) *ShardEvent {
	return e.AtShard(0, e.now+d, fn)
}

// AfterShard schedules fn to run d minutes from now on the given
// logical shard.
func (e *ShardedEngine) AfterShard(logical int, d float64, fn func()) *ShardEvent {
	return e.AtShard(logical, e.now+d, fn)
}

// Schedule adapts AtShard to the Scheduler interface.
func (e *ShardedEngine) Schedule(t Time, fn func()) Handle { return e.AtShard(0, t, fn) }

// ScheduleAfter adapts AfterShard to the Scheduler interface.
func (e *ShardedEngine) ScheduleAfter(d float64, fn func()) Handle {
	return e.AfterShard(0, d, fn)
}

// ScheduleEvery adapts Every to the Scheduler interface.
func (e *ShardedEngine) ScheduleEvery(first, period float64, fn func()) Handle {
	return e.Every(first, period, fn)
}

// Every schedules fn to run now+first, then every period minutes, on
// logical shard 0, until the returned ticker is cancelled. As with the
// single-threaded Ticker, fn runs before the next occurrence is
// scheduled, so fn may cancel the ticker via the returned handle.
func (e *ShardedEngine) Every(first, period float64, fn func()) *ShardTicker {
	t := &ShardTicker{engine: e, period: period, fn: fn}
	t.schedule(first)
	return t
}

// ShardTicker is a repeating event on a sharded engine.
type ShardTicker struct {
	engine *ShardedEngine
	period float64
	fn     func()
	ev     *ShardEvent
	dead   bool
}

func (t *ShardTicker) schedule(d float64) {
	t.ev = t.engine.AfterShard(0, d, func() {
		if t.dead {
			return
		}
		t.fn()
		if !t.dead {
			t.schedule(t.period)
		}
	})
}

// Cancel stops the ticker.
func (t *ShardTicker) Cancel() {
	t.dead = true
	t.ev.Cancel()
}

// Cancelled reports whether the ticker has been stopped.
func (t *ShardTicker) Cancelled() bool { return t.dead }

// peekMin returns the globally minimal scheduled event without removing
// it, discarding cancelled lane tops along the way. Returns nil when
// every lane is empty.
func (e *ShardedEngine) peekMin() *ShardEvent {
	var best *ShardEvent
	for i := range e.lanes {
		lane := &e.lanes[i]
		for len(*lane) > 0 && (*lane)[0].state != stateScheduled {
			heap.Pop(lane)
		}
		if len(*lane) == 0 {
			continue
		}
		if best == nil || less((*lane)[0], best) {
			best = (*lane)[0]
		}
	}
	return best
}

// popMin removes and returns the globally minimal scheduled event, or
// nil when every lane is drained.
func (e *ShardedEngine) popMin() *ShardEvent {
	ev := e.peekMin()
	if ev == nil {
		return nil
	}
	return heap.Remove(&e.lanes[ev.logical%e.shards], ev.idx).(*ShardEvent)
}

// commit executes one event: any pre-stage the epoch pre-pass did not
// already run executes inline, then the event transitions to executed —
// pinning the state before the handler runs so even a self-Cancel is
// inert — the clock advances, and the handler runs.
func (e *ShardedEngine) commit(ev *ShardEvent) {
	runSerialPrep(ev)
	runPrepare(ev)
	ev.state = stateDone
	e.now = ev.at
	e.executed++
	ev.fn()
}

// Step executes the single next event in global order, if any, running
// its prepare inline. It reports whether an event ran. Step bypasses the
// epoch barrier entirely — it is the serial shadow of the parallel
// schedule and commits in the identical total order.
func (e *ShardedEngine) Step() bool {
	ev := e.popMin()
	if ev == nil {
		return false
	}
	e.commit(ev)
	return true
}

// RunUntil executes events in global (at, logical, seq) order until all
// lanes are drained or the next event is strictly after deadline; the
// clock is then set to deadline (never backwards). When parallel
// prepares are enabled this is the epoch loop: claim a lookahead window,
// fan prepares out to the lane workers, barrier, then commit the window
// serially in merged order.
func (e *ShardedEngine) RunUntil(deadline Time) {
	for {
		first := e.peekMin()
		if first == nil || first.at > deadline {
			break
		}
		horizon := first.at + e.lookahead
		if horizon > deadline {
			horizon = deadline
		}
		if e.hasSpec {
			e.prepareEpoch(horizon)
		}
		// Commit phase: pop merged-min while inside the horizon. Events
		// scheduled by commits that land inside the horizon run in their
		// correct merged position; they just miss the epoch pre-pass and
		// run their stages inline.
		for {
			next := e.peekMin()
			if next == nil || next.at > horizon {
				break
			}
			e.commit(e.popMin())
		}
	}
	if deadline > e.now {
		e.now = deadline
	}
}

// prepareEpoch claims every scheduled event with at <= horizon, runs
// their serial pre-stages in merged order, and then fans the speculative
// prepares out to the lane workers, returning after the barrier. Claimed
// events are popped in per-lane order and pushed straight back (the
// global seq keeps their position stable) before any worker starts, so
// the heaps are never touched concurrently.
func (e *ShardedEngine) prepareEpoch(horizon Time) {
	total := 0
	for i := range e.lanes {
		lane := &e.lanes[i]
		batch := e.batches[i][:0]
		for len(*lane) > 0 {
			top := (*lane)[0]
			if top.state != stateScheduled {
				heap.Pop(lane)
				continue
			}
			if top.at > horizon {
				break
			}
			batch = append(batch, heap.Pop(lane).(*ShardEvent))
		}
		for _, ev := range batch {
			heap.Push(lane, ev)
		}
		e.batches[i] = batch
		total += len(batch)
	}
	if total == 0 {
		return
	}
	e.preparing = true
	e.runSerialPreps()
	if len(e.workers) > 0 {
		dispatched := 0
		for _, batch := range e.batches {
			if hasPrepares(batch) {
				dispatched++
			}
		}
		if dispatched > 0 {
			e.prepWG.Add(dispatched)
			for i, batch := range e.batches {
				if hasPrepares(batch) {
					e.workers[i%len(e.workers)].ch <- batch
				}
			}
			e.prepWG.Wait()
		}
	} else {
		// Inline mode: the coordinator doubles as the lane worker. Lane
		// order (not merged order) is deliberate — prepares are pure per
		// event, so only the lane-local sequencing can matter, and that
		// matches what a single worker per lane would do.
		for _, batch := range e.batches {
			for _, ev := range batch {
				runPrepare(ev)
			}
		}
	}
	e.preparing = false
}

// runSerialPreps executes the claimed window's serial pre-stages in the
// global merged (at, logical, seq) order via a k-way merge over the
// per-lane batches, which heap extraction left individually sorted. The
// order — and thus every observable effect of the serial stages — is a
// pure function of the claimed set, independent of shard and worker
// counts.
func (e *ShardedEngine) runSerialPreps() {
	cur := e.merge
	for i := range cur {
		cur[i] = 0
	}
	for {
		var best *ShardEvent
		bi := -1
		for i, batch := range e.batches {
			if cur[i] < len(batch) {
				ev := batch[cur[i]]
				if best == nil || less(ev, best) {
					best, bi = ev, i
				}
			}
		}
		if best == nil {
			return
		}
		cur[bi]++
		runSerialPrep(best)
	}
}

// hasPrepares reports whether a claimed batch contains at least one
// event with an unexecuted prepare stage.
func hasPrepares(batch []*ShardEvent) bool {
	for _, ev := range batch {
		if ev.prepare != nil && !ev.prepared {
			return true
		}
	}
	return false
}

// Run executes events until every lane is drained.
func (e *ShardedEngine) Run() {
	for e.Step() {
	}
}
