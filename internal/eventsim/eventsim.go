// Package eventsim implements a deterministic discrete-event simulation
// engine: a virtual clock plus a priority queue of timestamped events.
//
// The QSA evaluation (paper §4) is a closed-loop simulation over simulated
// minutes: request arrivals, session completions, peer churn and periodic
// probe refreshes are all events. The engine is single-threaded by design —
// determinism matters more than parallelism inside one run; the experiment
// harness parallelizes across independent runs instead.
//
// Time is a float64 in simulated minutes, matching the paper's units
// (request rates in req/min, churn in peers/min, durations in minutes).
package eventsim

import "container/heap"

// Time is a point in simulated time, in minutes.
type Time = float64

// Handle is the cancellation surface of a scheduled event. Both the
// single-threaded Engine's *Event and the sharded engine's *ShardEvent
// (and both tickers) implement it, so callers that only need to cancel —
// the session manager's expiry timers, the simulator's workload tickers —
// work against either engine.
type Handle interface {
	// Cancel prevents a still-pending handler from running. Cancelling an
	// already executed or already cancelled event is provably inert: it
	// does not change the event's state, and it cannot touch whatever
	// event now occupies the recycled queue slot.
	Cancel()
	// Cancelled reports whether Cancel arrived in time to suppress the
	// handler. An event that already ran reports false forever.
	Cancelled() bool
}

// Scheduler is the scheduling surface shared by the Engine and the
// ShardedEngine. The method names are distinct from the engines' concrete
// helpers (At, After, Every) so both can keep their richer concrete
// signatures while satisfying one interface.
type Scheduler interface {
	Now() Time
	Schedule(t Time, fn func()) Handle
	ScheduleAfter(d float64, fn func()) Handle
	ScheduleEvery(first, period float64, fn func()) Handle
}

// Runner extends Scheduler with the execution loop — what a closed-loop
// simulation needs to drive either engine.
type Runner interface {
	Scheduler
	RunUntil(deadline Time)
	Run()
	Step() bool
	Executed() uint64
	Pending() int
}

// Lifecycle states of a scheduled event. The explicit state machine is
// what makes a stale Cancel provably inert: once an event has executed,
// its state is pinned to stateDone and Cancel refuses to touch it, even
// though its old heap slot has long been recycled by another event.
const (
	stateScheduled int8 = iota
	stateCancelled
	stateDone
)

// Event is a scheduled callback. Handlers run with the clock set to the
// event's time and may schedule further events.
type Event struct {
	at    Time
	seq   uint64 // tie-breaker: FIFO among equal timestamps
	fn    func()
	state int8
	idx   int // heap index, -1 when popped
}

// Cancel marks the event so its handler will not run. Cancelling an already
// executed or cancelled event is a no-op: the state machine only admits
// the scheduled→cancelled transition, so a stale handle kept past
// execution can never perturb the queue slot its event once occupied.
func (e *Event) Cancel() {
	if e != nil && e.state == stateScheduled {
		e.state = stateCancelled
	}
}

// Cancelled reports whether Cancel arrived before the handler ran.
func (e *Event) Cancelled() bool { return e != nil && e.state == stateCancelled }

// eventHeap orders events by (time, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	// lint:allow float-eq heap ordering needs the exact stored timestamps; a tolerance would break transitivity
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event scheduler. The zero value is ready to use with
// the clock at 0.
type Engine struct {
	now      Time
	seq      uint64
	queue    eventHeap
	executed uint64
}

// New returns an engine with the clock at 0.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time in minutes.
func (e *Engine) Now() Time { return e.now }

// Executed returns how many event handlers have run.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns how many scheduled (possibly cancelled) events remain.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now) panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		// lint:allow panic-in-library scheduling into the past would silently reorder causality; no caller can recover meaningfully
		panic("eventsim: scheduling event in the past")
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d minutes from now. Negative d panics.
func (e *Engine) After(d float64, fn func()) *Event {
	return e.At(e.now+d, fn)
}

// Every schedules fn to run now+first, then every period minutes, until the
// returned event is cancelled. fn runs before the next occurrence is
// scheduled, so fn may cancel the ticker via the returned handle.
func (e *Engine) Every(first, period float64, fn func()) *Ticker {
	t := &Ticker{engine: e, period: period, fn: fn}
	t.schedule(first)
	return t
}

// Ticker is a repeating event. Cancel stops future occurrences.
type Ticker struct {
	engine *Engine
	period float64
	fn     func()
	ev     *Event
	dead   bool
}

func (t *Ticker) schedule(d float64) {
	t.ev = t.engine.After(d, func() {
		if t.dead {
			return
		}
		t.fn()
		if !t.dead {
			t.schedule(t.period)
		}
	})
}

// Cancel stops the ticker.
func (t *Ticker) Cancel() {
	t.dead = true
	t.ev.Cancel()
}

// Cancelled reports whether the ticker has been stopped.
func (t *Ticker) Cancelled() bool { return t.dead }

// Schedule adapts At to the Scheduler interface.
func (e *Engine) Schedule(t Time, fn func()) Handle { return e.At(t, fn) }

// ScheduleAfter adapts After to the Scheduler interface.
func (e *Engine) ScheduleAfter(d float64, fn func()) Handle { return e.After(d, fn) }

// ScheduleEvery adapts Every to the Scheduler interface.
func (e *Engine) ScheduleEvery(first, period float64, fn func()) Handle {
	return e.Every(first, period, fn)
}

// Step executes the single next event, if any, advancing the clock to its
// timestamp. It reports whether an event ran (cancelled events are skipped
// and do not count). The event transitions to executed *before* its
// handler runs, so even a Cancel issued from inside the handler itself is
// inert.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.state != stateScheduled {
			continue
		}
		ev.state = stateDone
		e.now = ev.at
		e.executed++
		ev.fn()
		return true
	}
	return false
}

// RunUntil executes events in timestamp order until the queue is empty or
// the next event is strictly after deadline; the clock is then set to
// deadline (never backwards).
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 {
		// Peek: skip cancelled events without advancing time.
		next := e.queue[0]
		if next.state != stateScheduled {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if deadline > e.now {
		e.now = deadline
	}
}

// Run executes events until the queue is drained.
func (e *Engine) Run() {
	for e.Step() {
	}
}
