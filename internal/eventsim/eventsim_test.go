package eventsim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestOrdering(t *testing.T) {
	e := New()
	var got []int
	e.At(3, func() { got = append(got, 3) })
	e.At(1, func() { got = append(got, 1) })
	e.At(2, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("equal-time events ran out of submission order: %v", got)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := New()
	e.At(2.5, func() {
		if e.Now() != 2.5 {
			t.Errorf("Now inside handler = %v", e.Now())
		}
	})
	e.Run()
	if e.Now() != 2.5 {
		t.Fatalf("final Now = %v", e.Now())
	}
}

func TestAfterRelative(t *testing.T) {
	e := New()
	var at Time
	e.At(10, func() {
		e.After(5, func() { at = e.Now() })
	})
	e.Run()
	if at != 15 {
		t.Fatalf("After fired at %v, want 15", at)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	e := New()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestCancel(t *testing.T) {
	e := New()
	ran := false
	ev := e.At(1, func() { ran = true })
	ev.Cancel()
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() false after Cancel")
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	e := New()
	ran := false
	ev := e.At(2, func() { ran = true })
	e.At(1, func() { ev.Cancel() })
	e.Run()
	if ran {
		t.Fatal("event cancelled at t=1 still ran at t=2")
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var got []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	e.RunUntil(3)
	if len(got) != 3 {
		t.Fatalf("ran %d events, want 3", len(got))
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %v, want 3", e.Now())
	}
	e.RunUntil(10)
	if len(got) != 5 {
		t.Fatalf("ran %d events after second RunUntil", len(got))
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %v, want deadline 10", e.Now())
	}
}

func TestRunUntilInclusiveBoundary(t *testing.T) {
	e := New()
	ran := false
	e.At(3, func() { ran = true })
	e.RunUntil(3)
	if !ran {
		t.Fatal("event exactly at the deadline must run")
	}
}

func TestTicker(t *testing.T) {
	e := New()
	var fires []Time
	tk := e.Every(1, 2, func() {
		fires = append(fires, e.Now())
	})
	e.RunUntil(7.5)
	tk.Cancel()
	e.RunUntil(20)
	want := []Time{1, 3, 5, 7}
	if len(fires) != len(want) {
		t.Fatalf("ticker fired at %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("ticker fired at %v, want %v", fires, want)
		}
	}
}

func TestTickerSelfCancel(t *testing.T) {
	e := New()
	count := 0
	var tk *Ticker
	tk = e.Every(1, 1, func() {
		count++
		if count == 3 {
			tk.Cancel()
		}
	})
	e.Run()
	if count != 3 {
		t.Fatalf("ticker fired %d times after self-cancel at 3", count)
	}
}

func TestExecutedCount(t *testing.T) {
	e := New()
	for i := 0; i < 5; i++ {
		e.At(Time(i), func() {})
	}
	ev := e.At(9, func() {})
	ev.Cancel()
	e.Run()
	if e.Executed() != 5 {
		t.Fatalf("Executed = %d, want 5 (cancelled events do not count)", e.Executed())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := New()
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
	ev := e.At(1, func() {})
	ev.Cancel()
	if e.Step() {
		t.Fatal("Step with only cancelled events returned true")
	}
}

// Property: for any multiset of timestamps, events execute in sorted order.
func TestPropertySortedExecution(t *testing.T) {
	check := func(raw []uint16) bool {
		e := New()
		var got []Time
		for _, r := range raw {
			at := Time(r)
			e.At(at, func() { got = append(got, at) })
		}
		e.Run()
		return sort.Float64sAreSorted(got) && len(got) == len(raw)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.After(0.5, recurse)
		}
	}
	e.At(0, recurse)
	e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d", depth)
	}
	if e.Now() != 49.5 {
		t.Fatalf("Now = %v, want 49.5", e.Now())
	}
}
