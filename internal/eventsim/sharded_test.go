package eventsim

import (
	"fmt"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/xrand"
)

// --- Reference model -------------------------------------------------
//
// refModel is an independently written executor of the sharded engine's
// contract: events execute one at a time in (at, logical, seq) order,
// cancellation suppresses pending handlers, executed events are immune
// to Cancel. It shares no code with the engines, so agreement between
// the two is evidence, not tautology.

type refEvent struct {
	at        float64
	logical   int
	seq       uint64
	fn        func()
	cancelled bool
	done      bool
}

func (r *refEvent) Cancel() {
	if !r.done && !r.cancelled {
		r.cancelled = true
	}
}
func (r *refEvent) Cancelled() bool { return r.cancelled }

type refModel struct {
	clock  float64
	seq    uint64
	events []*refEvent
}

func (m *refModel) now() float64 { return m.clock }

func (m *refModel) schedule(logical int, at float64, fn func()) Handle {
	ev := &refEvent{at: at, logical: logical, seq: m.seq, fn: fn}
	m.seq++
	m.events = append(m.events, ev)
	return ev
}

func (m *refModel) run() {
	for {
		var best *refEvent
		for _, ev := range m.events {
			if ev.done || ev.cancelled {
				continue
			}
			if best == nil || ev.at < best.at ||
				(ev.at == best.at && (ev.logical < best.logical ||
					(ev.logical == best.logical && ev.seq < best.seq))) {
				best = ev
			}
		}
		if best == nil {
			return
		}
		best.done = true
		m.clock = best.at
		best.fn()
	}
}

// testSched abstracts the engines and the model so one scenario script
// drives all of them.
type testSched interface {
	now() float64
	schedule(logical int, at float64, fn func()) Handle
}

type shardedSched struct{ e *ShardedEngine }

func (s shardedSched) now() float64 { return s.e.Now() }
func (s shardedSched) schedule(logical int, at float64, fn func()) Handle {
	return s.e.AtShard(logical, at, fn)
}

type heapSched struct{ e *Engine }

func (s heapSched) now() float64 { return s.e.Now() }
func (s heapSched) schedule(logical int, at float64, fn func()) Handle {
	// The single-heap engine has no lanes; callers must pass logical 0.
	return s.e.Schedule(at, fn)
}

// --- Scenario generator ----------------------------------------------

// scenario is a deterministic schedule script: every event's behaviour —
// what it appends to the log, what it schedules next, what it cancels —
// is a pure function of (seed, event id). Timestamps are drawn from a
// tiny grid so equal times across lanes are the norm, not the exception.
type scenario struct {
	seed    uint64
	lanes   int // logical lanes used by the script
	initial int // events scheduled up front
	maxID   int // hard cap on total events (stops runaway growth)
}

// play runs the scenario on s and returns the execution log.
func (sc scenario) play(s testSched) []string {
	var log []string
	handles := make(map[int]Handle)
	nextID := 0
	var spawn func(id int)
	spawn = func(id int) {
		rng := xrand.New(xrand.MixIndex(sc.seed, uint64(id)))
		// Behaviour draws are fixed per id regardless of engine.
		nKids := rng.Intn(3)             // 0..2 children
		cancelTarget := rng.Intn(4) == 0 // cancel some earlier event
		lane := rng.Intn(sc.lanes)
		_ = lane // the event's own lane was chosen by its parent
		log = append(log, fmt.Sprintf("%d@%.2f", id, s.now()))
		if cancelTarget && id > 0 {
			victim := rng.Intn(id)
			if h := handles[victim]; h != nil {
				h.Cancel()
			}
		}
		for k := 0; k < nKids && nextID < sc.maxID; k++ {
			kidID := nextID
			nextID++
			kidLane := rng.Intn(sc.lanes)
			// Time grid: now, now+0.5, or now+1 — schedule-at-current-time
			// and cross-lane ties both occur constantly.
			dt := float64(rng.Intn(3)) * 0.5
			handles[kidID] = s.schedule(kidLane, s.now()+dt, func() { spawn(kidID) })
		}
	}
	rng := xrand.New(sc.seed)
	for i := 0; i < sc.initial; i++ {
		id := nextID
		nextID++
		lane := rng.Intn(sc.lanes)
		at := float64(rng.Intn(5)) * 0.5
		handles[id] = s.schedule(lane, at, func() { spawn(id) })
	}
	switch e := s.(type) {
	case shardedSched:
		e.e.RunUntil(1e6)
		e.e.Run()
	case heapSched:
		e.e.Run()
	case *refModel:
		e.run()
	}
	return log
}

func logsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardedMatchesReferenceModel replays randomized scenarios — heavy
// on equal timestamps, cross-lane cancels, and schedule-at-current-time
// — on the reference model and on the sharded engine at every
// (shards, workers, lookahead) combination. All logs must be identical.
func TestShardedMatchesReferenceModel(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		sc := scenario{seed: seed, lanes: 5, initial: 8, maxID: 200}
		ref := sc.play(&refModel{})
		if len(ref) == 0 {
			t.Fatalf("seed %d: empty reference log", seed)
		}
		for _, shards := range []int{1, 2, 3, 4, 8} {
			for _, workers := range []int{1, 2, shards} {
				for _, la := range []float64{0.1, 0.5, 1000} {
					e := NewSharded(ShardedConfig{Shards: shards, Lookahead: la, Parallel: workers})
					got := sc.play(shardedSched{e})
					e.Close()
					if !logsEqual(ref, got) {
						t.Fatalf("seed %d shards=%d workers=%d lookahead=%g: log diverged from model\nref: %v\ngot: %v",
							seed, shards, workers, la, ref, got)
					}
				}
			}
		}
	}
}

// TestShardedSingleLaneMatchesHeapEngine pins the sharded engine to the
// classic single-heap engine: with every event on logical lane 0 the
// total orders (at, 0, seq) and (at, seq) coincide, so the two engines
// must produce identical logs.
func TestShardedSingleLaneMatchesHeapEngine(t *testing.T) {
	for seed := uint64(1); seed <= 15; seed++ {
		sc := scenario{seed: seed, lanes: 1, initial: 6, maxID: 120}
		ref := sc.play(heapSched{New()})
		for _, shards := range []int{1, 4} {
			e := NewSharded(ShardedConfig{Shards: shards, Parallel: shards})
			got := sc.play(shardedSched{e})
			e.Close()
			if !logsEqual(ref, got) {
				t.Fatalf("seed %d shards=%d: diverged from heap engine\nref: %v\ngot: %v",
					seed, shards, ref, got)
			}
		}
	}
}

// --- Targeted adversarial cases --------------------------------------

// TestEqualTimestampsAcrossShards: events at the same instant on
// different logical lanes commit in lane order, then seq order,
// regardless of the physical shard count.
func TestEqualTimestampsAcrossShards(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 8} {
		e := NewSharded(ShardedConfig{Shards: shards, Parallel: 1})
		var got []int
		// Schedule in deliberately scrambled lane order; seq breaks the
		// tie between the two lane-1 events.
		e.AtShard(3, 5, func() { got = append(got, 3) })
		e.AtShard(1, 5, func() { got = append(got, 10) })
		e.AtShard(0, 5, func() { got = append(got, 0) })
		e.AtShard(1, 5, func() { got = append(got, 11) })
		e.AtShard(2, 5, func() { got = append(got, 2) })
		e.Run()
		want := []int{0, 10, 11, 2, 3}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("shards=%d: order = %v, want %v", shards, got, want)
		}
	}
}

// TestCancelFromOtherShard: a handler on one lane cancels a same-time
// event on another lane. The victim is later in the total order, so the
// cancel must always win — on every shard count.
func TestCancelFromOtherShard(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		e := NewSharded(ShardedConfig{Shards: shards, Parallel: 1})
		ran := false
		victim := e.AtShard(3, 7, func() { ran = true })
		e.AtShard(0, 7, func() { victim.Cancel() })
		e.RunUntil(100)
		if ran {
			t.Fatalf("shards=%d: cancelled cross-shard event ran", shards)
		}
		if !victim.Cancelled() {
			t.Fatalf("shards=%d: victim not reported cancelled", shards)
		}
	}
}

// TestScheduleAtCurrentTime: handlers scheduling at exactly Now() —
// inside and past the current epoch horizon — run at the same timestamp,
// after the scheduler, in seq order.
func TestScheduleAtCurrentTime(t *testing.T) {
	for _, shards := range []int{1, 4} {
		e := NewSharded(ShardedConfig{Shards: shards, Parallel: shards})
		var got []string
		e.AtShard(1, 2, func() {
			got = append(got, "a")
			e.AtShard(0, e.Now(), func() { got = append(got, "a0") })
			e.AtShard(3, e.Now(), func() { got = append(got, "a3") })
		})
		e.AtShard(2, 2, func() { got = append(got, "b") })
		e.RunUntil(10)
		e.Close()
		// At t=2: lane 1 "a" first; its children (logical 0 and 3, later
		// seq) land at t=2 too — logical 0 sorts before lane 2's "b",
		// logical 3 after.
		want := "[a a0 b a3]"
		if fmt.Sprint(got) != want {
			t.Fatalf("shards=%d: order = %v, want %v", shards, got, want)
		}
	}
}

// TestShardEventCancelAfterExecutionInert is the regression test for the
// event-reuse hazard: a handle retained past execution must be inert —
// Cancel must not resurrect, suppress, or report anything.
func TestShardEventCancelAfterExecutionInert(t *testing.T) {
	e := NewSharded(ShardedConfig{Shards: 2, Parallel: 1})
	runs := 0
	h := e.AtShard(0, 1, func() { runs++ })
	e.RunUntil(1)
	h.Cancel() // stale cancel, long after execution
	if h.Cancelled() {
		t.Fatal("executed event reports Cancelled after a stale Cancel")
	}
	// The heap slot is long recycled; new events must be unaffected.
	ran := false
	e.AtShard(0, 2, func() { ran = true })
	e.Run()
	if !ran || runs != 1 {
		t.Fatalf("stale Cancel perturbed the queue: runs=%d ran=%v", runs, ran)
	}
}

// TestShardEventSelfCancelInert: an event cancelling itself from its own
// handler is a no-op — the state was pinned to executed before fn ran.
func TestShardEventSelfCancelInert(t *testing.T) {
	e := NewSharded(ShardedConfig{Shards: 1, Parallel: 1})
	var h *ShardEvent
	ran := false
	h = e.AtShard(0, 1, func() {
		ran = true
		h.Cancel()
	})
	e.Run()
	if !ran {
		t.Fatal("event did not run")
	}
	if h.Cancelled() {
		t.Fatal("self-Cancel during execution flipped state")
	}
}

// TestShardedTickerCancel mirrors the single-threaded ticker contract.
func TestShardedTickerCancel(t *testing.T) {
	e := NewSharded(ShardedConfig{Shards: 2, Parallel: 1})
	n := 0
	var tk *ShardTicker
	tk = e.Every(1, 1, func() {
		n++
		if n == 3 {
			tk.Cancel()
		}
	})
	e.RunUntil(100)
	if n != 3 {
		t.Fatalf("ticker fired %d times, want 3", n)
	}
	if !tk.Cancelled() {
		t.Fatal("ticker not reported cancelled")
	}
}

// TestPrepareStages: serialPrep runs before prepare, prepare before fn,
// each exactly once, for claimed and unclaimed events alike.
func TestPrepareStages(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e := NewSharded(ShardedConfig{Shards: 4, Parallel: workers, Lookahead: 10})
		type rec struct{ serial, prep, committed int }
		recs := make([]rec, 8)
		order := make([]string, 0, 24)
		for i := 0; i < 8; i++ {
			i := i
			e.AtPrepared(i%4, float64(1+i%3), // ties across lanes
				func() { recs[i].serial++; order = append(order, fmt.Sprintf("s%d", i)) },
				func() { recs[i].prep++ }, // runs on workers: no shared log
				func() { recs[i].committed++; order = append(order, fmt.Sprintf("c%d", i)) })
		}
		e.RunUntil(100)
		e.Close()
		for i, r := range recs {
			if r.serial != 1 || r.prep != 1 || r.committed != 1 {
				t.Fatalf("workers=%d event %d stages ran %+v, want 1 each", workers, i, r)
			}
		}
		// With lookahead 10 every event is claimed in the first epoch:
		// all serial preps precede all commits, both in merged order.
		if len(order) != 16 {
			t.Fatalf("workers=%d: order log %v", workers, order)
		}
		for i := 0; i < 8; i++ {
			if order[i][0] != 's' || order[8+i][0] != 'c' {
				t.Fatalf("workers=%d: serial preps did not precede commits: %v", workers, order)
			}
			if order[i][1:] != order[8+i][1:] {
				t.Fatalf("workers=%d: serial-prep order differs from commit order: %v", workers, order)
			}
		}
	}
}

// TestSchedulingFromPreparePanics: prepares are speculative; observable
// effects like scheduling must be rejected loudly.
func TestSchedulingFromPreparePanics(t *testing.T) {
	e := NewSharded(ShardedConfig{Shards: 1, Parallel: 1, Lookahead: 10})
	var recovered any
	e.AtPrepared(0, 1,
		nil,
		func() {
			defer func() { recovered = recover() }()
			e.AtShard(0, 5, func() {})
		},
		func() {})
	e.RunUntil(10)
	e.Close()
	if recovered == nil {
		t.Fatal("scheduling from a prepare stage did not panic")
	}
}

// TestShardWorkersExit: Close terminates every lane worker — no leaked
// goroutines after a parallel run.
func TestShardWorkersExit(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 4; round++ {
		e := NewSharded(ShardedConfig{Shards: 8, Parallel: 8, Lookahead: 10})
		for i := 0; i < 64; i++ {
			i := i
			e.AtPrepared(i%8, float64(i%5), nil, func() {}, func() {})
		}
		e.RunUntil(100)
		e.Close()
		e.Close() // second Close is a no-op
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShardedPendingExecuted sanity-checks the bookkeeping surface.
func TestShardedPendingExecuted(t *testing.T) {
	e := NewSharded(ShardedConfig{Shards: 3, Parallel: 1})
	for i := 0; i < 9; i++ {
		e.AtShard(i%3, float64(i), func() {})
	}
	if e.Pending() != 9 {
		t.Fatalf("Pending = %d, want 9", e.Pending())
	}
	e.RunUntil(3.5)
	if e.Executed() != 4 {
		t.Fatalf("Executed = %d, want 4", e.Executed())
	}
	if e.Now() != 3.5 {
		t.Fatalf("Now = %g, want 3.5", e.Now())
	}
	e.Run()
	if e.Pending() != 0 || e.Executed() != 9 {
		t.Fatalf("after Run: pending=%d executed=%d", e.Pending(), e.Executed())
	}
}

// TestShardedPastSchedulingPanics mirrors the single-heap contract.
func TestShardedPastSchedulingPanics(t *testing.T) {
	e := NewSharded(ShardedConfig{Shards: 2, Parallel: 1})
	e.AtShard(0, 5, func() {})
	e.Run()
	for _, fn := range []func(){
		func() { e.AtShard(0, 1, func() {}) },
		func() { e.AtShard(-1, 10, func() {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

// FuzzShardMergeOrdering feeds arbitrary byte strings as schedule
// scripts: each byte triple (lane, timeslot, op) schedules, nests, or
// cancels events. The sharded engine at 4 lanes / 4 workers must replay
// the single-lane-worker configuration byte for byte.
func FuzzShardMergeOrdering(f *testing.F) {
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{7, 0, 1, 7, 0, 2, 3, 0, 0, 3, 0, 1})
	f.Add([]byte{255, 255, 255, 0, 0, 0, 128, 64, 32})
	run := func(shards, workers int, script []byte) []string {
		e := NewSharded(ShardedConfig{Shards: shards, Parallel: workers, Lookahead: 0.5})
		var log []string
		var handles []Handle
		for i := 0; i+2 < len(script); i += 3 {
			i := i
			lane := int(script[i]) % 8
			at := float64(script[i+1]%8) / 2
			op := script[i+2] % 3
			id := i
			switch op {
			case 0: // plain event
				handles = append(handles, e.AtShard(lane, at, func() {
					log = append(log, fmt.Sprintf("p%d@%.1f", id, e.Now()))
				}))
			case 1: // event that nests a child at the same instant
				handles = append(handles, e.AtShard(lane, at, func() {
					log = append(log, fmt.Sprintf("n%d@%.1f", id, e.Now()))
					e.AtShard((lane+1)%8, e.Now(), func() {
						log = append(log, fmt.Sprintf("k%d@%.1f", id, e.Now()))
					})
				}))
			case 2: // event that cancels an earlier handle
				handles = append(handles, e.AtShard(lane, at, func() {
					log = append(log, fmt.Sprintf("x%d@%.1f", id, e.Now()))
					if len(handles) > 0 {
						handles[id/3%len(handles)].Cancel()
					}
				}))
			}
		}
		e.RunUntil(100)
		e.Run()
		e.Close()
		return log
	}
	f.Fuzz(func(t *testing.T, script []byte) {
		ref := run(1, 1, script)
		for _, cfg := range [][2]int{{2, 1}, {4, 4}, {8, 2}} {
			got := run(cfg[0], cfg[1], script)
			if !logsEqual(ref, got) {
				t.Fatalf("shards=%d workers=%d diverged\nref: %v\ngot: %v", cfg[0], cfg[1], ref, got)
			}
		}
	})
}

// TestShardedSchedulerAdapters drives the Scheduler-interface surface —
// what the session manager and the simulator tickers use — through a
// Runner-typed variable, for both engines.
func TestShardedSchedulerAdapters(t *testing.T) {
	for _, r := range []Runner{New(), NewSharded(ShardedConfig{Shards: 2, Parallel: 1})} {
		var got []string
		r.Schedule(1, func() {
			got = append(got, "at")
			r.ScheduleAfter(0.5, func() { got = append(got, "after") })
		})
		tick := r.ScheduleEvery(2, 1, func() { got = append(got, "tick") })
		r.RunUntil(3)
		tick.Cancel()
		r.Run()
		want := "[at after tick tick]"
		if fmt.Sprint(got) != want {
			t.Fatalf("%T: got %v, want %v", r, got, want)
		}
		if sh, ok := r.(*ShardedEngine); ok {
			if sh.Shards() != 2 || sh.ParallelWorkers() != 0 {
				t.Fatalf("accessors: shards=%d workers=%d", sh.Shards(), sh.ParallelWorkers())
			}
			// At/After are the concrete-sugar equivalents of Schedule*.
			n := 0
			sh.At(sh.Now(), func() { n++ })
			sh.After(1, func() { n++ })
			sh.Run()
			if n != 2 {
				t.Fatalf("At/After ran %d of 2", n)
			}
		}
	}
}

// TestRunUntilDeterministicAcrossLookahead: commit order never depends
// on how the epochs batch the window.
func TestRunUntilDeterministicAcrossLookahead(t *testing.T) {
	build := func(la float64) []float64 {
		e := NewSharded(ShardedConfig{Shards: 4, Parallel: 1, Lookahead: la})
		var times []float64
		rng := xrand.New(99)
		for i := 0; i < 100; i++ {
			e.AtShard(rng.Intn(4), float64(rng.Intn(20))/4, func() {
				times = append(times, e.Now())
			})
		}
		e.RunUntil(10)
		return times
	}
	ref := build(0.1)
	for _, la := range []float64{0.25, 1, 100} {
		got := build(la)
		if !sort.Float64sAreSorted(got) {
			t.Fatalf("lookahead %g: commit times not monotone", la)
		}
		if fmt.Sprint(ref) != fmt.Sprint(got) {
			t.Fatalf("lookahead %g changed the commit sequence", la)
		}
	}
}
