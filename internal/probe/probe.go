// Package probe implements QSA's controlled, benefit-based probing and the
// dynamic neighbor resolution protocol (paper §2.2, §3.3).
//
// Each peer maintains up-to-date performance information — end-system
// resource availability, uptime, and end-to-end available bandwidth β —
// for at most M other peers ("neighbors"). Which peers qualify is decided
// by benefit rank: 1-hop direct neighbors first, then 1-hop indirect, then
// 2-hop direct, and so on; when the table is full a lower-benefit entry is
// evicted for a higher-benefit one, never the other way around. Neighbor
// entries are soft state: resolution messages refresh them, and entries
// that stop being refreshed expire.
//
// Measurements are cached for a probe period. A neighbor admitted (or
// refreshed) by resolution is re-probed only if its last measurement is
// older than the period, so a selector can act on information that is up
// to one period stale — the staleness the paper trades for a bounded
// probing overhead of M/N (100/10⁴ = 1%).
//
// The information consumer is the dynamic peer selection tier: a selecting
// peer may use ONLY its own table. A candidate it has no fresh entry for
// is invisible to the Φ metric and triggers the paper's random fallback.
package probe

import (
	"repro/internal/obs"
	"repro/internal/resource"
	"repro/internal/topology"
)

// Info is one probe measurement of a candidate peer, taken from the
// perspective of the probing peer.
type Info struct {
	Available resource.Vector // candidate's end-system availability RA
	Uptime    float64         // candidate's uptime at measurement time
	AvailKbps float64         // β: available bandwidth candidate → prober
	Alive     bool            // candidate was connected when probed
	Measured  float64         // measurement timestamp (simulated minutes)
}

// Rank encodes the benefit class of a neighbor, lower = more beneficial.
// The paper's probing order is: 1-hop direct, 1-hop indirect, 2-hop
// direct, 2-hop indirect, … which DirectRank/IndirectRank reproduce.
type Rank int

// DirectRank returns the benefit rank of an i-hop direct neighbor (i ≥ 1).
func DirectRank(hop int) Rank { return Rank(2 * (hop - 1)) }

// IndirectRank returns the benefit rank of an i-hop indirect neighbor.
func IndirectRank(hop int) Rank { return Rank(2*(hop-1) + 1) }

type entry struct {
	rank    Rank
	expires float64
	info    Info
	probed  bool
}

// orderSlot is one insertion-order cell of a table: the neighbor and its
// entry inline, or a tombstone (pid == tombstonePID) left by a removal.
type orderSlot struct {
	pid topology.PeerID
	e   *entry
}

const tombstonePID topology.PeerID = -1

// Table is one peer's neighbor table, capped at M entries. Insertion order
// is tracked so that eviction scans are deterministic (Go map iteration
// order is randomized, which would break run reproducibility). The order
// slice carries the entries inline and removals leave tombstones, so both
// lookups and removals are O(1) and the eviction scan is one contiguous
// walk with no map probes; tombstones are compacted once they outnumber
// live slots.
type Table struct {
	cap   int
	pos   map[topology.PeerID]int // pid -> index in order
	order []orderSlot
	dead  int // tombstones in order
}

func (t *Table) insert(p topology.PeerID, e *entry) {
	t.pos[p] = len(t.order)
	t.order = append(t.order, orderSlot{pid: p, e: e})
}

func (t *Table) remove(p topology.PeerID) {
	i, ok := t.pos[p]
	if !ok {
		return
	}
	t.order[i] = orderSlot{pid: tombstonePID}
	delete(t.pos, p)
	t.dead++
	if t.dead > len(t.order)-t.dead {
		t.compact()
	}
}

// compact squeezes tombstones out of order, preserving insertion order.
func (t *Table) compact() {
	kept := t.order[:0]
	for _, s := range t.order {
		if s.pid == tombstonePID {
			continue
		}
		t.pos[s.pid] = len(kept)
		kept = append(kept, s)
	}
	t.order = kept
	t.dead = 0
}

// lookup returns the entry for p, or nil.
func (t *Table) lookup(p topology.PeerID) *entry {
	if i, ok := t.pos[p]; ok {
		return t.order[i].e
	}
	return nil
}

// Len returns the number of neighbors currently tracked (including
// expired-but-not-yet-evicted ones).
func (t *Table) Len() int { return len(t.pos) }

// Stats counts manager-wide probing activity.
type Stats struct {
	Probes    uint64 // actual measurements taken
	CacheHits uint64 // resolutions served by a within-period measurement
	Evictions uint64 // lower-benefit neighbors displaced
	Rejected  uint64 // candidates denied because the table was full of
	// equal-or-higher-benefit neighbors
	Gossiped uint64 // neighbor entries refreshed from gossip batches
	// instead of direct probes (ApplyGossip)
}

// Config parameterizes the probing layer.
type Config struct {
	// M is the maximum number of neighbors any peer probes (paper: 100,
	// giving the 1% overhead bound on a 10⁴-peer grid).
	M int
	// TTL is the soft-state neighbor lifetime in minutes. Default 10.
	TTL float64
	// Period is the probe caching period in minutes: a measurement younger
	// than this is reused rather than re-taken. Default 1.
	Period float64
}

func (c *Config) fillDefaults() {
	if c.M == 0 {
		c.M = 100
	}
	if c.TTL == 0 {
		c.TTL = 10
	}
	if c.Period == 0 {
		c.Period = 1
	}
}

// Manager owns the neighbor tables of all peers and performs measurements
// against the network ground truth (a probe in the simulator is an
// instantaneous read of the target's true state — what a real probe packet
// would report, minus propagation delay).
type Manager struct {
	cfg    Config
	net    *topology.Network
	tables map[topology.PeerID]*Table
	stats  Stats

	// Obs mirrors the Stats increments into a metrics registry when
	// wired; the zero value no-ops.
	Obs obs.ProbeCounters
}

// NewManager returns a manager over the given network.
func NewManager(cfg Config, net *topology.Network) *Manager {
	cfg.fillDefaults()
	return &Manager{cfg: cfg, net: net, tables: make(map[topology.PeerID]*Table)}
}

// Stats returns cumulative probing statistics.
func (m *Manager) Stats() Stats { return m.stats }

// Config returns the active configuration.
func (m *Manager) Config() Config { return m.cfg }

// Table returns owner's neighbor table, creating it on first use.
func (m *Manager) Table(owner topology.PeerID) *Table {
	t, ok := m.tables[owner]
	if !ok {
		// lint:allow hotalloc per-peer table created on first use; steady-state refreshes hit the existing table
		t = &Table{cap: m.cfg.M, pos: make(map[topology.PeerID]int)}
		m.tables[owner] = t
	}
	return t
}

// DropPeer discards a departed peer's table.
func (m *Manager) DropPeer(owner topology.PeerID) { delete(m.tables, owner) }

// measure takes a fresh measurement of target from owner's perspective.
// reuse, when non-nil, donates its backing array to the measurement's
// availability vector (a refresh recycles the entry's previous one).
func (m *Manager) measure(owner, target topology.PeerID, now float64, reuse resource.Vector) Info {
	m.stats.Probes++
	m.Obs.Probes.Inc()
	p, err := m.net.Peer(target)
	if err != nil || !p.Alive {
		return Info{Alive: false, Measured: now}
	}
	return Info{
		Available: p.Ledger.AvailableInto(reuse[:0]),
		Uptime:    p.Uptime(now),
		AvailKbps: m.net.BandwidthLedger().Available(int(target), int(owner)),
		Alive:     true,
		Measured:  now,
	}
}

// Resolve runs one step of the dynamic neighbor resolution protocol:
// candidates become (or stay) neighbors of owner at the given benefit
// rank, their soft state is refreshed, and any candidate without a
// within-period measurement is probed. Candidates that do not fit under
// the M cap (after evicting strictly lower-benefit entries) are skipped.
// lint:hotpath probe refresh runs per resolution message on every simulated peer
func (m *Manager) Resolve(owner topology.PeerID, candidates []topology.PeerID, rank Rank, now float64) {
	t := m.Table(owner)
	for _, c := range candidates {
		if c == owner {
			continue
		}
		e := t.lookup(c)
		if e == nil {
			if t.Len() >= t.cap && !m.evictFor(t, rank, now) {
				m.stats.Rejected++
				m.Obs.Rejected.Inc()
				continue
			}
			// lint:allow hotalloc one entry per newly resolved neighbor, bounded by the M cap; refreshes recycle entries
			e = &entry{rank: rank}
			t.insert(c, e)
		}
		if rank < e.rank {
			e.rank = rank // promotion to a more beneficial class
		}
		e.expires = now + m.cfg.TTL
		if !e.probed || now-e.info.Measured >= m.cfg.Period {
			e.info = m.measure(owner, c, now, e.info.Available)
			e.probed = true
		} else {
			m.stats.CacheHits++
			m.Obs.CacheHits.Inc()
		}
	}
}

// evictFor frees one slot for a newcomer of the given rank: expired
// entries go first, then any entry of strictly worse (greater) rank. It
// reports whether a slot was freed.
func (m *Manager) evictFor(t *Table, rank Rank, now float64) bool {
	var victim topology.PeerID
	found := false
	for _, s := range t.order {
		if s.pid == tombstonePID {
			continue
		}
		if s.e.expires <= now {
			victim, found = s.pid, true
			break
		}
		if s.e.rank > rank && !found {
			victim, found = s.pid, true
			// keep scanning: an expired entry is a better victim
		}
	}
	if !found {
		return false
	}
	t.remove(victim)
	m.stats.Evictions++
	m.Obs.Evictions.Inc()
	return true
}

// Fresh returns owner's usable measurement of candidate: the entry must
// exist, be unexpired soft state, and have been probed. The caller decides
// what to do on a miss (the paper: fall back to random selection). The
// Info's Available vector aliases the table entry and is overwritten by
// the next re-probe — consume it before the clock advances, don't retain
// it.
func (m *Manager) Fresh(owner, candidate topology.PeerID, now float64) (Info, bool) {
	t, ok := m.tables[owner]
	if !ok {
		return Info{}, false
	}
	e := t.lookup(candidate)
	if e == nil || !e.probed || e.expires <= now {
		return Info{}, false
	}
	return e.info, true
}

// NeighborCount returns how many neighbors owner currently tracks.
func (m *Manager) NeighborCount(owner topology.PeerID) int {
	t, ok := m.tables[owner]
	if !ok {
		return 0
	}
	return t.Len()
}
