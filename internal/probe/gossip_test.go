package probe

import (
	"testing"

	"repro/internal/resource"
)

func TestApplyGossipRefreshesProbedEntries(t *testing.T) {
	m, net := newMgr(t, Config{TTL: 10, Period: 1}, 10)
	m.Resolve(0, ids(1, 2), DirectRank(1), 5)
	before, ok := m.Fresh(0, 1, 5)
	if !ok {
		t.Fatal("probed neighbor missing")
	}
	beta := before.AvailKbps

	n := m.ApplyGossip(0, []Ann{
		{Peer: 1, Available: resource.Vec2(3, 4), Uptime: 42, Measured: 7},
		// Stale: older than the direct probe at t=5 — must be ignored.
		{Peer: 2, Available: resource.Vec2(9, 9), Uptime: 1, Measured: 4},
		// Never probed: gossip must not mint an entry.
		{Peer: 3, Available: resource.Vec2(1, 1), Uptime: 1, Measured: 7},
		// Self and empty announcements are skipped.
		{Peer: 0, Available: resource.Vec2(1, 1), Measured: 7},
		{Peer: 1, Measured: 8},
	}, 7)
	if n != 1 {
		t.Fatalf("refreshed %d entries, want 1", n)
	}
	if m.Stats().Gossiped != 1 {
		t.Fatalf("Stats.Gossiped = %d, want 1", m.Stats().Gossiped)
	}

	got, ok := m.Fresh(0, 1, 7)
	if !ok {
		t.Fatal("refreshed neighbor missing")
	}
	if got.Available[0] != 3 || got.Available[1] != 4 || got.Uptime != 42 || got.Measured != 7 {
		t.Fatalf("refresh not applied: %+v", got)
	}
	if got.AvailKbps != beta {
		t.Fatalf("β changed to %g from hearsay, want %g kept", got.AvailKbps, beta)
	}
	if !got.Alive {
		t.Fatal("refreshed entry lost liveness")
	}

	stale, _ := m.Fresh(0, 2, 5)
	if stale.Measured != 5 || stale.Available[0] == 9 {
		t.Fatalf("stale announcement overwrote newer probe: %+v", stale)
	}
	if m.NeighborCount(0) != 2 {
		t.Fatalf("gossip minted an entry: %d neighbors, want 2", m.NeighborCount(0))
	}
	_ = net
}

// TestApplyGossipSavesProbes is the amortization claim end to end: a
// gossip refresh keeps an entry within-period, so the next Resolve is
// a cache hit instead of a measurement.
func TestApplyGossipSavesProbes(t *testing.T) {
	m, _ := newMgr(t, Config{TTL: 10, Period: 1}, 10)
	m.Resolve(0, ids(1), DirectRank(1), 0)
	probes := m.Stats().Probes

	// At t=2 the t=0 measurement is out of period; a gossiped t=1.5
	// measurement re-arms the cache.
	m.ApplyGossip(0, []Ann{{Peer: 1, Available: resource.Vec2(5, 5), Measured: 1.5}}, 2)
	m.Resolve(0, ids(1), DirectRank(1), 2)
	if got := m.Stats().Probes; got != probes {
		t.Fatalf("resolve after gossip refresh took %d extra probes, want 0", got-probes)
	}
	if m.Stats().CacheHits == 0 {
		t.Fatal("gossip-refreshed entry did not register as a cache hit")
	}

	// A dead-entry announcement must not resurrect: kill the ground
	// truth, re-probe (entry goes !Alive), then gossip about it.
	m.Resolve(0, ids(4), DirectRank(1), 2)
	tbl := m.Table(0)
	e := tbl.lookup(4)
	if e == nil {
		t.Fatal("setup: neighbor 4 missing")
	}
	e.info.Alive = false
	if n := m.ApplyGossip(0, []Ann{{Peer: 4, Available: resource.Vec2(5, 5), Measured: 3}}, 3); n != 0 {
		t.Fatalf("gossip refreshed a dead entry (%d), liveness must stay first-hand", n)
	}
}
