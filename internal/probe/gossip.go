package probe

import (
	"repro/internal/resource"
	"repro/internal/topology"
)

// Ann is one gossiped announcement about a peer: a second-hand copy of
// a measurement some other peer took at time Measured. It carries the
// end-system half of a probe (availability, uptime) but not the
// pairwise half — available bandwidth is between two specific
// endpoints, so hearsay cannot speak for this owner's β.
type Ann struct {
	Peer      topology.PeerID
	Available resource.Vector
	Uptime    float64
	Measured  float64 // when the announcer measured it (simulated minutes)
}

// ApplyGossip folds a batch of gossiped announcements into owner's
// neighbor table, mirroring the wire protocol's batched-gossip rule
// (DESIGN §14): an announcement refreshes an entry the owner has
// already probed directly when the gossiped measurement is newer —
// recycling the entry's availability vector and extending its soft
// state — and is otherwise ignored. Gossip never mints entries
// (first contact stays a direct probe, so liveness and β are always
// first-hand) and never touches the stored AvailKbps. Returns the
// number of entries refreshed.
func (m *Manager) ApplyGossip(owner topology.PeerID, batch []Ann, now float64) int {
	t := m.Table(owner)
	refreshed := 0
	for _, a := range batch {
		if a.Peer == owner || len(a.Available) == 0 {
			continue
		}
		e := t.lookup(a.Peer)
		if e == nil || !e.probed || !e.info.Alive {
			continue
		}
		if a.Measured <= e.info.Measured {
			continue
		}
		e.info.Available = append(e.info.Available[:0], a.Available...)
		e.info.Uptime = a.Uptime
		e.info.Measured = a.Measured
		e.expires = now + m.cfg.TTL
		refreshed++
	}
	m.stats.Gossiped += uint64(refreshed)
	return refreshed
}
