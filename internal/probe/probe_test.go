package probe

import (
	"testing"

	"repro/internal/resource"
	"repro/internal/topology"
)

func newMgr(t *testing.T, cfg Config, peers int) (*Manager, *topology.Network) {
	t.Helper()
	net, err := topology.New(topology.Default(1, peers))
	if err != nil {
		t.Fatal(err)
	}
	return NewManager(cfg, net), net
}

func ids(xs ...int) []topology.PeerID {
	out := make([]topology.PeerID, len(xs))
	for i, x := range xs {
		out[i] = topology.PeerID(x)
	}
	return out
}

func TestRanks(t *testing.T) {
	// Paper order: 1-hop direct < 1-hop indirect < 2-hop direct < …
	if !(DirectRank(1) < IndirectRank(1) &&
		IndirectRank(1) < DirectRank(2) &&
		DirectRank(2) < IndirectRank(2) &&
		IndirectRank(2) < DirectRank(3)) {
		t.Fatal("benefit ranking does not match the paper's probing order")
	}
}

func TestResolveAndFresh(t *testing.T) {
	m, net := newMgr(t, Config{}, 10)
	m.Resolve(0, ids(1, 2, 3), DirectRank(1), 5)
	info, ok := m.Fresh(0, 2, 5)
	if !ok {
		t.Fatal("resolved neighbor must have fresh info")
	}
	if !info.Alive || info.Measured != 5 {
		t.Fatalf("info = %+v", info)
	}
	p := net.MustPeer(2)
	if info.Uptime != p.Uptime(5) {
		t.Fatalf("uptime = %v, want %v", info.Uptime, p.Uptime(5))
	}
	if info.Available[0] != p.Capacity[0] {
		t.Fatalf("availability = %v, want full capacity %v", info.Available, p.Capacity)
	}
	if info.AvailKbps != net.Bandwidth(2, 0) {
		t.Fatalf("β = %v, want %v", info.AvailKbps, net.Bandwidth(2, 0))
	}
	if _, ok := m.Fresh(0, 7, 5); ok {
		t.Fatal("unresolved peer must be a miss")
	}
	if _, ok := m.Fresh(9, 1, 5); ok {
		t.Fatal("owner without a table must be a miss")
	}
}

func TestSelfNeverNeighbor(t *testing.T) {
	m, _ := newMgr(t, Config{}, 5)
	m.Resolve(0, ids(0, 1), DirectRank(1), 0)
	if _, ok := m.Fresh(0, 0, 0); ok {
		t.Fatal("a peer must not probe itself")
	}
	if m.NeighborCount(0) != 1 {
		t.Fatalf("NeighborCount = %d", m.NeighborCount(0))
	}
}

func TestProbeCaching(t *testing.T) {
	m, net := newMgr(t, Config{Period: 2}, 5)
	m.Resolve(0, ids(1), DirectRank(1), 0)
	// Load peer 1 so a re-measurement would observe different availability.
	p := net.MustPeer(1)
	p.Ledger.Reserve(resource.Vec2(50, 50))

	m.Resolve(0, ids(1), DirectRank(1), 1) // within period: cached
	info, _ := m.Fresh(0, 1, 1)
	if info.Measured != 0 {
		t.Fatal("measurement within the period must be reused")
	}
	if info.Available[0] != p.Capacity[0] {
		t.Fatal("cached info must reflect the old measurement")
	}
	s := m.Stats()
	if s.CacheHits != 1 || s.Probes != 1 {
		t.Fatalf("stats = %+v", s)
	}

	m.Resolve(0, ids(1), DirectRank(1), 2.5) // past period: re-probe
	info, _ = m.Fresh(0, 1, 2.5)
	if info.Measured != 2.5 {
		t.Fatal("stale measurement must be retaken")
	}
	if info.Available[0] != p.Capacity[0]-50 {
		t.Fatalf("fresh probe must see the load: %v", info.Available)
	}
}

func TestStaleInfoHidesDeparture(t *testing.T) {
	// Within the probe period, selection may still see a departed peer as
	// alive — the churn window the paper's experiments exercise.
	m, net := newMgr(t, Config{Period: 5}, 5)
	m.Resolve(0, ids(1), DirectRank(1), 0)
	net.Depart(1, 1)
	m.Resolve(0, ids(1), DirectRank(1), 2) // cache still valid
	info, ok := m.Fresh(0, 1, 2)
	if !ok || !info.Alive {
		t.Fatal("within the period the stale 'alive' view must persist")
	}
	m.Resolve(0, ids(1), DirectRank(1), 6) // re-probe
	info, _ = m.Fresh(0, 1, 6)
	if info.Alive {
		t.Fatal("re-probe must discover the departure")
	}
}

func TestSoftStateExpiry(t *testing.T) {
	m, _ := newMgr(t, Config{TTL: 3}, 5)
	m.Resolve(0, ids(1), DirectRank(1), 0)
	if _, ok := m.Fresh(0, 1, 2.9); !ok {
		t.Fatal("entry must be fresh before TTL")
	}
	if _, ok := m.Fresh(0, 1, 3); ok {
		t.Fatal("entry must expire at TTL without refresh")
	}
	m.Resolve(0, ids(1), DirectRank(1), 2) // refresh extends to 5
	if _, ok := m.Fresh(0, 1, 4.5); !ok {
		t.Fatal("refresh must extend the soft state")
	}
}

func TestCapacityAndBenefitEviction(t *testing.T) {
	m, _ := newMgr(t, Config{M: 3}, 20)
	m.Resolve(0, ids(1, 2, 3), IndirectRank(1), 0)
	if m.NeighborCount(0) != 3 {
		t.Fatalf("NeighborCount = %d", m.NeighborCount(0))
	}
	// A lower-benefit candidate must be rejected when full.
	m.Resolve(0, ids(4), IndirectRank(2), 0)
	if _, ok := m.Fresh(0, 4, 0); ok {
		t.Fatal("lower-benefit candidate must not displace higher-benefit neighbors")
	}
	if m.Stats().Rejected != 1 {
		t.Fatalf("Rejected = %d", m.Stats().Rejected)
	}
	// A higher-benefit candidate evicts one of the indirect entries.
	m.Resolve(0, ids(5), DirectRank(1), 0)
	if _, ok := m.Fresh(0, 5, 0); !ok {
		t.Fatal("higher-benefit candidate must be admitted by eviction")
	}
	if m.NeighborCount(0) != 3 {
		t.Fatalf("table must stay at capacity, got %d", m.NeighborCount(0))
	}
	if m.Stats().Evictions != 1 {
		t.Fatalf("Evictions = %d", m.Stats().Evictions)
	}
}

func TestExpiredEntriesEvictedFirst(t *testing.T) {
	m, _ := newMgr(t, Config{M: 2, TTL: 3}, 10)
	m.Resolve(0, ids(1), DirectRank(1), 0) // expires at 3
	m.Resolve(0, ids(2), DirectRank(1), 4) // 1 now expired
	m.Resolve(0, ids(3), IndirectRank(2), 4)
	// Even a low-benefit candidate takes an expired slot.
	if _, ok := m.Fresh(0, 3, 4); !ok {
		t.Fatal("expired entry should have been evicted for the newcomer")
	}
	if _, ok := m.Fresh(0, 1, 4); ok {
		t.Fatal("expired entry must be gone")
	}
}

func TestRankPromotion(t *testing.T) {
	m, _ := newMgr(t, Config{M: 2}, 10)
	m.Resolve(0, ids(1), IndirectRank(2), 0)
	m.Resolve(0, ids(1), DirectRank(1), 0) // same peer, better class
	m.Resolve(0, ids(2), DirectRank(1), 0)
	// Table full with two rank-0 entries; an indirect newcomer must fail,
	// proving peer 1 was promoted.
	m.Resolve(0, ids(3), IndirectRank(1), 0)
	if _, ok := m.Fresh(0, 3, 0); ok {
		t.Fatal("newcomer should have been rejected; promotion failed")
	}
}

func TestDropPeer(t *testing.T) {
	m, _ := newMgr(t, Config{}, 5)
	m.Resolve(0, ids(1, 2), DirectRank(1), 0)
	m.DropPeer(0)
	if m.NeighborCount(0) != 0 {
		t.Fatal("DropPeer must discard the table")
	}
}

func TestProbeOfUnknownPeer(t *testing.T) {
	m, _ := newMgr(t, Config{}, 3)
	m.Resolve(0, ids(99), DirectRank(1), 0)
	info, ok := m.Fresh(0, 99, 0)
	if !ok {
		t.Fatal("entry should exist even for unknown target")
	}
	if info.Alive {
		t.Fatal("unknown peer must probe as not alive")
	}
}

func TestDefaults(t *testing.T) {
	m, _ := newMgr(t, Config{}, 3)
	cfg := m.Config()
	if cfg.M != 100 || cfg.TTL != 10 || cfg.Period != 1 {
		t.Fatalf("defaults = %+v, want paper values M=100, TTL=10, Period=1", cfg)
	}
}
