package probe

import (
	"testing"

	"repro/internal/topology"
	"repro/internal/xrand"
)

// refTable is the pre-tombstone reference implementation of the neighbor
// table's eviction bookkeeping: a plain map plus an insertion-order slice
// with O(M) removals. The real Table must preserve its observable
// behaviour exactly — same victims, same rejections, in the same order.
type refTable struct {
	cap     int
	entries map[topology.PeerID]*entry
	order   []topology.PeerID
}

func (t *refTable) insert(p topology.PeerID, e *entry) {
	t.entries[p] = e
	t.order = append(t.order, p)
}

func (t *refTable) remove(p topology.PeerID) {
	delete(t.entries, p)
	for i, q := range t.order {
		if q == p {
			t.order = append(t.order[:i], t.order[i+1:]...)
			return
		}
	}
}

func (t *refTable) evictFor(rank Rank, now float64) (topology.PeerID, bool) {
	var victim topology.PeerID
	found := false
	for _, p := range t.order {
		e := t.entries[p]
		if e.expires <= now {
			victim, found = p, true
			break
		}
		if e.rank > rank && !found {
			victim, found = p, true
		}
	}
	if found {
		t.remove(victim)
	}
	return victim, found
}

// tableEvictFor mirrors Manager.evictFor's decision on a bare Table and
// reports the victim, so the model comparison sees which peer went.
func tableEvictFor(t *Table, rank Rank, now float64) (topology.PeerID, bool) {
	var victim topology.PeerID
	found := false
	for _, s := range t.order {
		if s.pid == tombstonePID {
			continue
		}
		if s.e.expires <= now {
			victim, found = s.pid, true
			break
		}
		if s.e.rank > rank && !found {
			victim, found = s.pid, true
		}
	}
	if found {
		t.remove(victim)
	}
	return victim, found
}

// TestTableMatchesReferenceModel drives the tombstone table and the naive
// reference through an identical randomized insert/remove/evict workload
// and requires identical eviction decisions and membership throughout.
func TestTableMatchesReferenceModel(t *testing.T) {
	rng := xrand.New(42)
	real := &Table{cap: 16, pos: make(map[topology.PeerID]int)}
	ref := &refTable{cap: 16, entries: make(map[topology.PeerID]*entry)}

	now := 0.0
	for step := 0; step < 5000; step++ {
		now += 0.01
		p := topology.PeerID(rng.Intn(40))
		switch rng.Intn(4) {
		case 0: // insert (evicting if full), mirroring Resolve's shape
			if real.lookup(p) != nil {
				continue
			}
			rank := Rank(rng.Intn(6))
			expires := now + 0.05 + rng.Float64()
			canReal, canRef := true, true
			if real.Len() >= real.cap {
				vReal, okReal := tableEvictFor(real, rank, now)
				vRef, okRef := ref.evictFor(rank, now)
				if okReal != okRef || (okReal && vReal != vRef) {
					t.Fatalf("step %d: eviction diverged: real (%v,%v) ref (%v,%v)",
						step, vReal, okReal, vRef, okRef)
				}
				canReal, canRef = okReal, okRef
			}
			if canReal && canRef {
				real.insert(p, &entry{rank: rank, expires: expires})
				ref.insert(p, &entry{rank: rank, expires: expires})
			}
		case 1: // remove
			real.remove(p)
			ref.remove(p)
		case 2: // refresh
			if e := real.lookup(p); e != nil {
				e.expires = now + 1
				ref.entries[p].expires = now + 1
			}
		case 3: // pure eviction probe at a random rank
			rank := Rank(rng.Intn(6))
			vReal, okReal := tableEvictFor(real, rank, now)
			vRef, okRef := ref.evictFor(rank, now)
			if okReal != okRef || (okReal && vReal != vRef) {
				t.Fatalf("step %d: eviction diverged: real (%v,%v) ref (%v,%v)",
					step, vReal, okReal, vRef, okRef)
			}
		}
		if real.Len() != len(ref.entries) {
			t.Fatalf("step %d: size diverged: %d vs %d", step, real.Len(), len(ref.entries))
		}
		// Insertion order of live members must match exactly.
		i := 0
		for _, s := range real.order {
			if s.pid == tombstonePID {
				continue
			}
			if i >= len(ref.order) || s.pid != ref.order[i] {
				t.Fatalf("step %d: order diverged at live slot %d", step, i)
			}
			if real.lookup(s.pid) != s.e {
				t.Fatalf("step %d: pos index stale for %v", step, s.pid)
			}
			i++
		}
		if i != len(ref.order) {
			t.Fatalf("step %d: live slot count %d vs ref %d", step, i, len(ref.order))
		}
	}
}

func TestTableCompaction(t *testing.T) {
	tab := &Table{cap: 1 << 30, pos: make(map[topology.PeerID]int)}
	for i := 0; i < 100; i++ {
		tab.insert(topology.PeerID(i), &entry{})
	}
	// Remove most of the table: tombstones must never stay in the
	// majority, and the survivors must keep their relative order.
	for i := 0; i < 90; i++ {
		tab.remove(topology.PeerID(i))
	}
	if tab.dead > len(tab.order)-tab.dead {
		t.Fatalf("tombstones in the majority: %d dead of %d", tab.dead, len(tab.order))
	}
	if tab.Len() != 10 {
		t.Fatalf("Len = %d, want 10", tab.Len())
	}
	want := topology.PeerID(90)
	for _, s := range tab.order {
		if s.pid == tombstonePID {
			continue
		}
		if s.pid != want {
			t.Fatalf("order corrupted: got %v, want %v", s.pid, want)
		}
		want++
	}
}

// BenchmarkTableRemove measures removal at the paper's M=100 table size —
// the operation the tombstone design takes from O(M) to O(1).
func BenchmarkTableRemove(b *testing.B) {
	const m = 100
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tab := &Table{cap: m, pos: make(map[topology.PeerID]int)}
		for j := 0; j < m; j++ {
			tab.insert(topology.PeerID(j), &entry{})
		}
		b.StartTimer()
		for j := 0; j < m; j++ {
			tab.remove(topology.PeerID(j))
		}
	}
}

// BenchmarkResolveFull measures Resolve against a full M=100 table where
// every resolution triggers an eviction scan.
func BenchmarkResolveFull(b *testing.B) {
	net, err := topology.New(topology.Default(1, 400))
	if err != nil {
		b.Fatal(err)
	}
	m := NewManager(Config{M: 100, TTL: 10, Period: 1}, net)
	cands := make([]topology.PeerID, 1)
	// Fill the table with rank-1 entries, then resolve rank-0 newcomers:
	// each insert scans for (and finds) a strictly-worse victim.
	fill := make([]topology.PeerID, 100)
	for i := range fill {
		fill[i] = topology.PeerID(i + 1)
	}
	m.Resolve(0, fill, IndirectRank(1), 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cands[0] = topology.PeerID(101 + i%250)
		m.Resolve(0, cands, DirectRank(1), 0.5)
	}
}
