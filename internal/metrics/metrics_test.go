package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRatio(t *testing.T) {
	var r Ratio
	if !math.IsNaN(r.Value()) {
		t.Fatal("empty ratio must be NaN")
	}
	if r.String() != "n/a (0/0)" {
		t.Fatalf("String = %q", r.String())
	}
	r.Add(true)
	r.Add(true)
	r.Add(false)
	if r.Total() != 3 {
		t.Fatalf("Total = %d", r.Total())
	}
	if math.Abs(r.Value()-2.0/3) > 1e-12 {
		t.Fatalf("Value = %v", r.Value())
	}
	if r.String() != "66.7% (2/3)" {
		t.Fatalf("String = %q", r.String())
	}
}

func TestSamplerWindows(t *testing.T) {
	s, err := NewSampler(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []struct {
		t  float64
		ok bool
	}{{0.5, true}, {1.9, false}, {2.1, true}, {6.5, true}} { // last: window [6,8), gap at [4,6)
		if err := s.Record(rec.t, rec.ok); err != nil {
			t.Fatal(err)
		}
	}
	pts := s.Series()
	if len(pts) != 3 {
		t.Fatalf("series = %v", pts)
	}
	if pts[0].Time != 2 || pts[0].Value != 0.5 || pts[0].N != 2 {
		t.Fatalf("window 0 = %+v", pts[0])
	}
	if pts[1].Time != 4 || pts[1].Value != 1 {
		t.Fatalf("window 1 = %+v", pts[1])
	}
	if pts[2].Time != 8 {
		t.Fatalf("window 2 = %+v", pts[2])
	}
	if s.Total().Total() != 4 || s.Total().Success != 3 {
		t.Fatalf("total = %+v", s.Total())
	}
}

func TestSamplerRejectsBadWindow(t *testing.T) {
	if _, err := NewSampler(0); err == nil {
		t.Fatal("zero window must be rejected")
	}
	if _, err := NewSampler(-1); err == nil {
		t.Fatal("negative window must be rejected")
	}
}

func TestSummarize(t *testing.T) {
	pts := []Point{{Value: 0.5}, {Value: 1.0}, {Value: math.NaN()}, {Value: 0.0}}
	s := Summarize(pts)
	if s.N != 3 {
		t.Fatalf("N = %d", s.N)
	}
	if math.Abs(s.Mean-0.5) > 1e-12 || s.Min != 0 || s.Max != 1 {
		t.Fatalf("summary = %+v", s)
	}
	want := math.Sqrt((0.25 + 0.25 + 0) / 3)
	if math.Abs(s.Stdev-want) > 1e-9 {
		t.Fatalf("Stdev = %v, want %v", s.Stdev, want)
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Mean) {
		t.Fatalf("empty summary = %+v", empty)
	}
}

// Property: sampler total equals the sum over windows, and every window
// value is a valid ratio.
func TestPropertySamplerConsistent(t *testing.T) {
	check := func(events []struct {
		T  uint8
		OK bool
	}) bool {
		s, err := NewSampler(2)
		if err != nil {
			return false
		}
		for _, e := range events {
			if err := s.Record(float64(e.T), e.OK); err != nil {
				return false
			}
		}
		var n, succ uint64
		for _, p := range s.Series() {
			if p.N == 0 || math.IsNaN(p.Value) {
				return false
			}
			if p.Value < 0 || p.Value > 1 {
				return false
			}
			n += p.N
			succ += uint64(math.Round(p.Value * float64(p.N)))
		}
		return n == s.Total().Total() && succ == s.Total().Success
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplerRejectsNegativeTime(t *testing.T) {
	s, err := NewSampler(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Record(-0.5, true); err == nil {
		t.Fatal("negative issue time must be rejected")
	}
	if s.Total().Total() != 0 {
		t.Fatal("rejected outcome must not be counted")
	}
	if len(s.Series()) != 0 {
		t.Fatal("rejected outcome must not create a window")
	}
}

// Regression for the naive E[x²]−mean² formula: ψ values clustered near
// 1.0 differ only in the low mantissa bits, and squaring first throws
// those bits away — the naive variance collapses to 0 (or goes negative)
// while Welford keeps the true spread.
func TestSummarizeWelfordNearOne(t *testing.T) {
	const d = 1e-9
	pts := []Point{{Value: 1 - d}, {Value: 1}, {Value: 1 + d}}
	s := Summarize(pts)
	want := math.Sqrt(2 * d * d / 3) // population stdev of {−d, 0, +d}
	if math.Abs(s.Stdev-want) > want/1e6 {
		t.Fatalf("Stdev = %g, want %g (naive formula loses it to cancellation)", s.Stdev, want)
	}
	if math.Abs(s.Mean-1) > 1e-12 {
		t.Fatalf("Mean = %v", s.Mean)
	}
}
