// Package metrics accumulates the QSA evaluation metric ψ — the service
// aggregation request success ratio (paper §4.1): a request is successful
// iff all of its service instances' resource requirements stay satisfied
// along the aggregation path for the entire session, i.e. it is admitted
// and no provisioning peer departs before the session ends.
//
// Outcomes are attributed to the minute the request was issued, which is
// how the paper's fluctuation plots (Figures 6 and 8) sample ψ over time.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Ratio is a success/failure counter.
type Ratio struct {
	Success, Failure uint64
}

// Add records one outcome.
func (r *Ratio) Add(ok bool) {
	if ok {
		r.Success++
	} else {
		r.Failure++
	}
}

// Total returns the number of recorded outcomes.
func (r Ratio) Total() uint64 { return r.Success + r.Failure }

// Value returns ψ in [0,1], or NaN when nothing was recorded.
func (r Ratio) Value() float64 {
	if r.Total() == 0 {
		return math.NaN()
	}
	return float64(r.Success) / float64(r.Total())
}

// String renders e.g. "87.5% (350/400)".
func (r Ratio) String() string {
	if r.Total() == 0 {
		return "n/a (0/0)"
	}
	return fmt.Sprintf("%.1f%% (%d/%d)", 100*r.Value(), r.Success, r.Total())
}

// Sampler buckets outcomes into fixed windows by issue time and produces
// the ψ-over-time series of the paper's fluctuation figures.
type Sampler struct {
	window  float64 // minutes per bucket (paper Fig. 6: 2)
	buckets map[int]*Ratio
	total   Ratio
}

// NewSampler returns a sampler with the given window length in minutes.
// Non-positive windows are rejected.
func NewSampler(window float64) (*Sampler, error) {
	if window <= 0 {
		return nil, fmt.Errorf("metrics: non-positive sampling window %g", window)
	}
	return &Sampler{window: window, buckets: make(map[int]*Ratio)}, nil
}

// Record attributes one outcome to the window containing issueTime.
// Negative times are rejected: int(issueTime/window) truncates toward
// zero, which would silently merge (−window, 0) into the first window
// [0, window) and skew its ψ sample.
func (s *Sampler) Record(issueTime float64, ok bool) error {
	if issueTime < 0 {
		return fmt.Errorf("metrics: negative time %v", issueTime)
	}
	b := int(issueTime / s.window)
	r, ok2 := s.buckets[b]
	if !ok2 {
		r = &Ratio{}
		s.buckets[b] = r
	}
	r.Add(ok)
	s.total.Add(ok)
	return nil
}

// Total returns the run-wide ratio.
func (s *Sampler) Total() Ratio { return s.total }

// Point is one sample of the ψ time series.
type Point struct {
	Time  float64 // end of the window, in minutes
	Value float64 // ψ within the window
	N     uint64  // outcomes in the window
}

// Series returns the windows in time order. Empty windows are skipped.
func (s *Sampler) Series() []Point {
	keys := make([]int, 0, len(s.buckets))
	for k := range s.buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]Point, 0, len(keys))
	for _, k := range keys {
		r := s.buckets[k]
		out = append(out, Point{
			Time:  float64(k+1) * s.window,
			Value: r.Value(),
			N:     r.Total(),
		})
	}
	return out
}

// Summary holds simple descriptive statistics.
type Summary struct {
	N                     int
	Mean, Min, Max, Stdev float64
}

// Summarize computes descriptive statistics of a series' values, skipping
// NaNs. The variance accumulates via Welford's online algorithm: the
// naive E[x²]−mean² form cancels catastrophically for ψ series clustered
// near 1.0 (two ~1.0 quantities subtracted leave mostly rounding error),
// whereas Welford keeps the running sum of squared deviations directly.
func Summarize(points []Point) Summary {
	var mean, m2 float64
	s := Summary{Min: math.Inf(1), Max: math.Inf(-1)}
	for _, p := range points {
		if math.IsNaN(p.Value) {
			continue
		}
		s.N++
		d := p.Value - mean
		mean += d / float64(s.N)
		m2 += d * (p.Value - mean)
		if p.Value < s.Min {
			s.Min = p.Value
		}
		if p.Value > s.Max {
			s.Max = p.Value
		}
	}
	if s.N == 0 {
		return Summary{Min: math.NaN(), Max: math.NaN(), Mean: math.NaN(), Stdev: math.NaN()}
	}
	s.Mean = mean
	v := m2 / float64(s.N) // population variance, as before
	if v < 0 {
		v = 0
	}
	s.Stdev = math.Sqrt(v)
	return s
}
