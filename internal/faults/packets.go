package faults

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/netproto"
	"repro/internal/xrand"
)

// This file extends the fault plane from per-dial to per-datagram
// semantics, for the UDP transport (netproto.PacketFilter): seeded
// drop, duplication and reordering of individual packets, layered
// under the same Crash/Cut script actions as the dial plane. The
// determinism contract is identical: the verdict for the n-th packet
// on a link is a pure function of (seed, src, dst, n), so a seeded
// chaos run replays its packet transcript bit-for-bit.

// PacketConfig parameterizes the datagram fault layer of a Fabric.
type PacketConfig struct {
	// DropRate is the per-packet probability, in [0,1], that a datagram
	// is discarded before it reaches the socket.
	DropRate float64
	// DupRate is the per-packet probability that a datagram is written
	// twice — the duplicate-delivery case the server's dedup table must
	// absorb without re-executing a request.
	DupRate float64
	// ReorderRate is the per-packet probability that a datagram is
	// delayed by ReorderDelay, letting packets sent after it overtake.
	ReorderRate float64
	// ReorderDelay is the delay applied to reordered packets.
	// Default 2 ms.
	ReorderDelay time.Duration
}

// Validate rejects probabilities outside [0,1] and negative delays.
func (c PacketConfig) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"DropRate", c.DropRate}, {"DupRate", c.DupRate}, {"ReorderRate", c.ReorderRate}} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faults: packet %s %v outside [0,1]", r.name, r.v)
		}
	}
	if c.ReorderDelay < 0 {
		return fmt.Errorf("faults: negative ReorderDelay")
	}
	return nil
}

func (c *PacketConfig) fillDefaults() {
	if c.ReorderDelay == 0 {
		c.ReorderDelay = 2 * time.Millisecond
	}
}

// PacketStats counts what the fault plane did to one link's packets.
type PacketStats struct {
	Sent, Dropped, Duplicated, Delayed uint64
}

// packetPlane is the shared per-datagram state, attached lazily to a
// Fabric by EnablePackets.
type packetPlane struct {
	cfg PacketConfig

	mu       sync.Mutex
	attempts map[link]uint64
	stats    map[link]*PacketStats
}

// EnablePackets switches on the datagram fault layer with cfg. Call it
// once, before handing out PacketNode filters.
func (f *Fabric) EnablePackets(cfg PacketConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	cfg.fillDefaults()
	f.mu.Lock()
	defer f.mu.Unlock()
	f.packets = &packetPlane{
		cfg:      cfg,
		attempts: make(map[link]uint64),
		stats:    make(map[link]*PacketStats),
	}
	return nil
}

// PacketVerdict reports the seeded decision for the n-th packet
// (1-based) on the src→dst link: a pure function of (Seed, src, dst,
// n). Script actions (Crash/Cut) are not reflected — this is the
// replayable probabilistic layer only.
func (f *Fabric) PacketVerdict(src, dst string, n uint64) netproto.PacketDecision {
	f.mu.Lock()
	pp := f.packets
	f.mu.Unlock()
	if pp == nil {
		return netproto.PacketDecision{}
	}
	h := verdictHash(f.cfg.Seed^packetSalt, src, dst, n)
	var d netproto.PacketDecision
	if pp.cfg.DropRate > 0 && unit(h) < pp.cfg.DropRate {
		d.Drop = true
		return d
	}
	if pp.cfg.DupRate > 0 && unit(xrand.Mix64(h^dupSalt)) < pp.cfg.DupRate {
		d.Duplicate = true
	}
	if pp.cfg.ReorderRate > 0 && unit(xrand.Mix64(h^reorderSalt)) < pp.cfg.ReorderRate {
		d.Delay = pp.cfg.ReorderDelay
	}
	return d
}

// PacketStatsFor returns what happened to the src→dst packet stream so
// far (zero stats for an untouched link).
func (f *Fabric) PacketStatsFor(src, dst string) PacketStats {
	f.mu.Lock()
	pp := f.packets
	f.mu.Unlock()
	if pp == nil {
		return PacketStats{}
	}
	pp.mu.Lock()
	defer pp.mu.Unlock()
	if s := pp.stats[link{src, dst}]; s != nil {
		return *s
	}
	return PacketStats{}
}

// admitPacket decides the fate of one outgoing datagram from src to
// the peer at dst (a registered listen address, or an ephemeral socket
// address for server→client traffic).
func (f *Fabric) admitPacket(src, dst string) netproto.PacketDecision {
	f.mu.Lock()
	pp := f.packets
	if name, ok := f.names[dst]; ok {
		dst = name
	}
	l := link{src, dst}
	crashed := f.crashed[src] || f.crashed[dst]
	cut := f.cut[l]
	f.mu.Unlock()
	if pp == nil {
		return netproto.PacketDecision{}
	}
	pp.mu.Lock()
	pp.attempts[l]++
	n := pp.attempts[l]
	st := pp.stats[l]
	if st == nil {
		st = &PacketStats{}
		pp.stats[l] = st
	}
	st.Sent++
	pp.mu.Unlock()
	var d netproto.PacketDecision
	if crashed || cut {
		d.Drop = true
	} else {
		d = f.PacketVerdict(src, dst, n)
	}
	pp.mu.Lock()
	if d.Drop {
		st.Dropped++
	}
	if d.Duplicate {
		st.Duplicated++
	}
	if d.Delay > 0 {
		st.Delayed++
	}
	pp.mu.Unlock()
	return d
}

// packetNode is one peer's datagram-level view of the fabric.
type packetNode struct {
	f    *Fabric
	name string
}

// PacketNode returns the PacketFilter for the peer with the given
// logical name. Wire it into netproto.Config.Wire.PacketFilter before
// Start, and Register the started peer's address as for Node.
func (f *Fabric) PacketNode(name string) netproto.PacketFilter {
	return &packetNode{f: f, name: name}
}

// Packet implements netproto.PacketFilter.
func (p *packetNode) Packet(dst string, size int) netproto.PacketDecision {
	return p.f.admitPacket(p.name, dst)
}

const (
	packetSalt  = 0xC3D2E1F00F1E2D3C
	dupSalt     = 0x5A5A5A5A5A5A5A5A
	reorderSalt = 0x3C3C3C3C3C3C3C3C
)
