// Package faults is a deterministic fault plane for the netproto
// prototype: a netproto.Transport that injects per-link drops, added
// latency, asymmetric partitions and whole-peer crash/restart into every
// dial, without touching the real listeners underneath.
//
// The paper's dynamic peer selection exists because peers in a P2P grid
// are unreliable ("peers can join and leave at any time", §2); netproto
// implements the §6-style recovery paths, and this package is how those
// paths get exercised and measured under controlled degradation instead
// of by killing real processes.
//
// Determinism contract: the seeded decision for a dial is a pure
// function of (seed, source node, destination node, per-link attempt
// number). Goroutine scheduling may reorder which logical RPC performs
// the n-th dial on a link, but the verdict sequence each link sees —
// the fault transcript — replays bit-for-bit for a given seed. Crash,
// Cut and DropNext are explicit script actions layered on top and take
// precedence over the seeded stream.
//
// Links are identified by logical node names, not TCP addresses, so a
// transcript is comparable across runs even though every run listens on
// fresh ephemeral ports: create each peer's transport with Node(name),
// then map the started peer's address back with Register(name, addr).
package faults

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/netproto"
	"repro/internal/xrand"
)

// Config parameterizes a Fabric.
type Config struct {
	// Seed drives every probabilistic decision; the same seed replays
	// the same per-link verdict sequence.
	Seed uint64
	// DropRate is the per-dial probability, in [0,1], that a link drops
	// the connection attempt (the dial fails immediately).
	DropRate float64
	// Latency is added to every admitted dial.
	Latency time.Duration
	// LatencyJitter adds a further uniform [0, LatencyJitter) delay,
	// deterministic per (link, attempt).
	LatencyJitter time.Duration
}

// Validate rejects probabilities outside [0,1] and negative delays.
func (c Config) Validate() error {
	if c.DropRate < 0 || c.DropRate > 1 {
		return fmt.Errorf("faults: DropRate %v outside [0,1]", c.DropRate)
	}
	if c.Latency < 0 || c.LatencyJitter < 0 {
		return fmt.Errorf("faults: negative latency")
	}
	return nil
}

// Decision is the fault plane's verdict for one dial attempt.
type Decision struct {
	// Drop reports whether the dial fails.
	Drop bool
	// Reason is why: "" (admitted), "drop" (seeded), "scripted"
	// (DropNext), "cut" (partition), "crashed" (either endpoint down).
	Reason string
	// Latency is the delay injected before the dial resolves.
	Latency time.Duration
}

// Event is one fault-transcript entry: the decision taken for the
// Attempt-th dial (1-based) on the Src→Dst link.
type Event struct {
	Src, Dst string
	Attempt  uint64
	Decision Decision
}

type link struct{ src, dst string }

// DropError is the dial error returned for an injected fault.
type DropError struct {
	Src, Dst, Reason string
}

func (e *DropError) Error() string {
	return fmt.Sprintf("faults: dial %s→%s failed (%s)", e.Src, e.Dst, e.Reason)
}

// Fabric is the shared fault plane: every peer's Transport routes its
// dials through the one Fabric, which decides drop/latency per link and
// records the transcript.
type Fabric struct {
	cfg   Config
	inner netproto.Transport

	mu       sync.Mutex
	names    map[string]string // listen addr -> logical node name
	crashed  map[string]bool
	cut      map[link]bool
	forced   map[link]int // remaining scripted drops
	attempts map[link]uint64
	trace    []Event
	packets  *packetPlane // datagram layer; nil until EnablePackets
}

// New returns a Fabric dialing real TCP underneath.
func New(cfg Config) (*Fabric, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Fabric{
		cfg:      cfg,
		inner:    netproto.TCP{},
		names:    make(map[string]string),
		crashed:  make(map[string]bool),
		cut:      make(map[link]bool),
		forced:   make(map[link]int),
		attempts: make(map[link]uint64),
	}, nil
}

// Node returns the Transport for the peer with the given logical name.
// Wire it into netproto.Config.Transport before Start, then Register the
// started peer's address so inbound links resolve to the name too.
func (f *Fabric) Node(name string) netproto.Transport {
	return &node{f: f, name: name}
}

// Register maps a peer's listen address to its logical node name.
func (f *Fabric) Register(name, addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.names[addr] = name
}

// Crash takes a node off the network: every dial from or to it fails
// until Restart. The peer process itself keeps running — this models a
// transient network-level crash where listener state survives.
func (f *Fabric) Crash(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed[name] = true
}

// Restart reconnects a crashed node.
func (f *Fabric) Restart(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.crashed, name)
}

// Cut partitions the src→dst direction: those dials fail until Heal.
// The reverse direction is unaffected (asymmetric partition).
func (f *Fabric) Cut(src, dst string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cut[link{src, dst}] = true
}

// CutBoth partitions both directions between a and b.
func (f *Fabric) CutBoth(a, b string) {
	f.Cut(a, b)
	f.Cut(b, a)
}

// Heal removes the src→dst partition.
func (f *Fabric) Heal(src, dst string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.cut, link{src, dst})
}

// HealAll clears every partition and restarts every crashed node.
func (f *Fabric) HealAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cut = make(map[link]bool)
	f.crashed = make(map[string]bool)
}

// DropNext force-drops the next n dials on the src→dst link, ahead of
// the seeded stream. Use it to script exact failure points.
func (f *Fabric) DropNext(src, dst string, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.forced[link{src, dst}] += n
}

// Transcript returns a copy of every decision taken so far, in the
// order the fabric admitted them.
func (f *Fabric) Transcript() []Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Event(nil), f.trace...)
}

// Verdict reports the seeded decision for the n-th dial (1-based) on
// the src→dst link: a pure function of (Seed, src, dst, n). Script
// actions (Crash/Cut/DropNext) are not reflected — this is the
// replayable probabilistic layer only.
func (f *Fabric) Verdict(src, dst string, n uint64) Decision {
	h := verdictHash(f.cfg.Seed, src, dst, n)
	var d Decision
	if f.cfg.DropRate > 0 && unit(h) < f.cfg.DropRate {
		d.Drop = true
		d.Reason = "drop"
	}
	d.Latency = f.cfg.Latency
	if f.cfg.LatencyJitter > 0 {
		d.Latency += time.Duration(unit(xrand.Mix64(h^jitterSalt)) * float64(f.cfg.LatencyJitter))
	}
	return d
}

// admit records and returns the decision for one dial.
func (f *Fabric) admit(src, addr string) Decision {
	f.mu.Lock()
	dst, ok := f.names[addr]
	if !ok {
		dst = addr // unregistered destination: the address is the name
	}
	l := link{src, dst}
	f.attempts[l]++
	n := f.attempts[l]
	var d Decision
	switch {
	case f.crashed[src] || f.crashed[dst]:
		d = Decision{Drop: true, Reason: "crashed"}
	case f.cut[l]:
		d = Decision{Drop: true, Reason: "cut"}
	case f.forced[l] > 0:
		f.forced[l]--
		d = Decision{Drop: true, Reason: "scripted"}
	default:
		d = f.Verdict(src, dst, n)
	}
	f.trace = append(f.trace, Event{Src: src, Dst: dst, Attempt: n, Decision: d})
	f.mu.Unlock()
	return d
}

// node is one peer's view of the fabric.
type node struct {
	f    *Fabric
	name string
}

// Dial implements netproto.Transport: consult the fabric, sleep the
// injected latency, then fail or dial through.
func (t *node) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	d := t.f.admit(t.name, addr)
	if d.Latency > 0 {
		time.Sleep(d.Latency)
	}
	if d.Drop {
		f := t.f
		f.mu.Lock()
		dst, ok := f.names[addr]
		f.mu.Unlock()
		if !ok {
			dst = addr
		}
		return nil, &DropError{Src: t.name, Dst: dst, Reason: d.Reason}
	}
	return t.f.inner.Dial(addr, timeout)
}

const jitterSalt = 0xA5A5A5A5A5A5A5A5

// unit maps a 64-bit hash to [0,1).
func unit(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// verdictHash mixes (seed, src, dst, n) into one 64-bit value. The
// length-keyed string mixer keeps the link identity unambiguous and
// asymmetric.
func verdictHash(seed uint64, src, dst string, n uint64) uint64 {
	h := xrand.Mix64(seed ^ 0x9E3779B97F4A7C15)
	h = xrand.MixString(h, src)
	h = xrand.MixString(h, dst)
	return xrand.Mix64(h ^ n)
}
