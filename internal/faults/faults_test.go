package faults

import (
	"errors"
	"net"
	"reflect"
	"testing"
	"time"
)

// echoListener accepts and immediately closes connections, so admitted
// dials succeed cheaply.
func echoListener(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	return ln.Addr().String()
}

func mustNew(t *testing.T, cfg Config) *Fabric {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestConfigValidate(t *testing.T) {
	for _, cfg := range []Config{
		{DropRate: -0.1},
		{DropRate: 1.1},
		{Latency: -time.Second},
		{LatencyJitter: -1},
	} {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
	if _, err := New(Config{DropRate: 1}); err != nil {
		t.Fatalf("boundary drop rate rejected: %v", err)
	}
}

// TestDialTranscriptDeterministic replays the same dial script through
// two fabrics with the same seed and requires identical transcripts —
// verdicts, reasons and injected latencies included.
func TestDialTranscriptDeterministic(t *testing.T) {
	addr := echoListener(t)
	script := func(f *Fabric) {
		f.Register("b", addr)
		ta, tb := f.Node("a"), f.Node("b")
		for i := 0; i < 40; i++ {
			if c, err := ta.Dial(addr, time.Second); err == nil {
				c.Close()
			}
			if c, err := tb.Dial(addr, time.Second); err == nil {
				c.Close()
			}
		}
	}
	cfg := Config{Seed: 99, DropRate: 0.5}
	f1, f2 := mustNew(t, cfg), mustNew(t, cfg)
	script(f1)
	script(f2)
	tr1, tr2 := f1.Transcript(), f2.Transcript()
	if len(tr1) != 80 {
		t.Fatalf("transcript has %d events, want 80", len(tr1))
	}
	if !reflect.DeepEqual(tr1, tr2) {
		t.Fatal("same seed, same dial script, different transcripts")
	}
	drops := 0
	for _, e := range tr1 {
		if e.Decision.Drop {
			drops++
		}
	}
	if drops == 0 || drops == len(tr1) {
		t.Fatalf("50%% drop rate produced %d/%d drops", drops, len(tr1))
	}

	// A different seed must eventually disagree.
	f3 := mustNew(t, Config{Seed: 100, DropRate: 0.5})
	script(f3)
	if reflect.DeepEqual(tr1, f3.Transcript()) {
		t.Fatal("different seeds produced identical transcripts")
	}
}

func TestCrashAndRestart(t *testing.T) {
	addr := echoListener(t)
	f := mustNew(t, Config{})
	f.Register("b", addr)
	f.Crash("b")
	// Dials to and from the crashed node fail.
	if _, err := f.Node("a").Dial(addr, time.Second); err == nil {
		t.Fatal("dial to crashed node succeeded")
	}
	if _, err := f.Node("b").Dial("127.0.0.1:1", time.Second); err == nil {
		t.Fatal("dial from crashed node succeeded")
	}
	var de *DropError
	_, err := f.Node("a").Dial(addr, time.Second)
	if !errors.As(err, &de) || de.Reason != "crashed" {
		t.Fatalf("err = %v, want DropError(crashed)", err)
	}
	f.Restart("b")
	c, err := f.Node("a").Dial(addr, time.Second)
	if err != nil {
		t.Fatalf("dial after restart: %v", err)
	}
	c.Close()
}

func TestCutIsAsymmetric(t *testing.T) {
	addr := echoListener(t)
	f := mustNew(t, Config{})
	f.Register("b", addr)
	f.Cut("a", "b")
	if _, err := f.Node("a").Dial(addr, time.Second); err == nil {
		t.Fatal("cut direction a→b dialed through")
	}
	// The reverse direction b→(addr of b) is a different link and open;
	// use an unregistered address as a stand-in destination "c".
	addr2 := echoListener(t)
	if c, err := f.Node("b").Dial(addr2, time.Second); err != nil {
		t.Fatalf("uncut direction failed: %v", err)
	} else {
		c.Close()
	}
	f.Heal("a", "b")
	if c, err := f.Node("a").Dial(addr, time.Second); err != nil {
		t.Fatalf("healed link failed: %v", err)
	} else {
		c.Close()
	}
}

func TestDropNextCountsDown(t *testing.T) {
	addr := echoListener(t)
	f := mustNew(t, Config{})
	f.Register("b", addr)
	f.DropNext("a", "b", 2)
	tr := f.Node("a")
	for i := 0; i < 2; i++ {
		var de *DropError
		_, err := tr.Dial(addr, time.Second)
		if !errors.As(err, &de) || de.Reason != "scripted" {
			t.Fatalf("dial %d: err = %v, want DropError(scripted)", i, err)
		}
	}
	c, err := tr.Dial(addr, time.Second)
	if err != nil {
		t.Fatalf("dial after scripted drops exhausted: %v", err)
	}
	c.Close()
	// Scripted drops are per-direction.
	f.DropNext("b", "a", 1)
	if c, err := tr.Dial(addr, time.Second); err != nil {
		t.Fatalf("a→b affected by b→a script: %v", err)
	} else {
		c.Close()
	}
}

func TestUnregisteredAddrUsesAddrAsName(t *testing.T) {
	f := mustNew(t, Config{})
	f.Cut("a", "10.0.0.9:1")
	var de *DropError
	_, err := f.Node("a").Dial("10.0.0.9:1", time.Second)
	if !errors.As(err, &de) || de.Dst != "10.0.0.9:1" {
		t.Fatalf("err = %v, want cut on the raw address link", err)
	}
}

func TestLatencyInjection(t *testing.T) {
	addr := echoListener(t)
	f := mustNew(t, Config{Latency: 30 * time.Millisecond})
	f.Register("b", addr)
	start := time.Now()
	c, err := f.Node("a").Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("dial returned after %v, want ≥ 30ms injected latency", elapsed)
	}
}
