package selection

import (
	"math"
	"testing"
)

// TestPhiValueEdgeCases pins PhiValue's behaviour at the boundaries the
// signature allows but the simulator never produces: empty or lopsided
// weight vectors, zero requirement denominators, zero/negative network
// normalizers and mismatched vector lengths. The contract, as
// implemented: the last weight is always the network weight (eq. 5's
// ω_{m+1}); a resource dimension contributes only when its requirement
// is positive AND all three of weights/avail/r cover the index; the
// network term contributes only when bNet > 0 and at least one weight
// exists. Nothing panics, whatever the shapes.
func TestPhiValueEdgeCases(t *testing.T) {
	third := 1.0 / 3
	cases := []struct {
		name     string
		weights  []float64
		avail    []float64
		availNet float64
		r        []float64
		bNet     float64
		want     float64
	}{
		{
			name:    "paper shape: two resources plus network",
			weights: []float64{third, third, third},
			avail:   []float64{30, 60}, availNet: 50,
			r: []float64{10, 20}, bNet: 1,
			want: third*3 + third*3 + third*50,
		},
		{
			name:    "nil weights yield zero",
			weights: nil,
			avail:   []float64{10}, availNet: 5, r: []float64{1}, bNet: 1,
			want: 0,
		},
		{
			name:    "single weight is the network weight",
			weights: []float64{1},
			avail:   []float64{10}, availNet: 8, r: []float64{2}, bNet: 2,
			want: 4, // no resource term: m = 0 dimensions
		},
		{
			name:    "zero requirement denominator contributes nothing",
			weights: []float64{0.5, 0.5},
			avail:   []float64{10}, availNet: 6, r: []float64{0}, bNet: 3,
			want: 0.5 * 6 / 3,
		},
		{
			name:    "zero bNet denominator skips the network term",
			weights: []float64{0.5, 0.5},
			avail:   []float64{10}, availNet: 100, r: []float64{5}, bNet: 0,
			want: 0.5 * 10 / 5,
		},
		{
			name:    "negative bNet treated like zero",
			weights: []float64{0.5, 0.5},
			avail:   []float64{10}, availNet: 100, r: []float64{5}, bNet: -1,
			want: 0.5 * 10 / 5,
		},
		{
			name:    "avail shorter than weights truncates the sum",
			weights: []float64{0.25, 0.25, 0.5},
			avail:   []float64{8}, availNet: 4, r: []float64{2, 2}, bNet: 2,
			want: 0.25*8/2 + 0.5*4/2, // dimension 1 has no availability
		},
		{
			name:    "r shorter than weights truncates the sum",
			weights: []float64{0.25, 0.25, 0.5},
			avail:   []float64{8, 8}, availNet: 4, r: []float64{2}, bNet: 2,
			want: 0.25*8/2 + 0.5*4/2, // dimension 1 has no requirement
		},
		{
			name:    "all-zero weights yield zero",
			weights: []float64{0, 0, 0},
			avail:   []float64{10, 10}, availNet: 10, r: []float64{1, 1}, bNet: 1,
			want: 0,
		},
		{
			name:    "zero resource weights leave only the network term",
			weights: []float64{0, 0, 1},
			avail:   []float64{10, 10}, availNet: 7, r: []float64{1, 1}, bNet: 1,
			want: 7,
		},
		{
			name:    "empty avail and r leave only the network term",
			weights: []float64{third, third, third},
			avail:   nil, availNet: 9, r: nil, bNet: 3,
			want: third * 3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := PhiValue(tc.weights, tc.avail, tc.availNet, tc.r, tc.bNet)
			if math.Abs(got-tc.want) > 1e-12 {
				t.Fatalf("PhiValue = %v, want %v", got, tc.want)
			}
		})
	}
}
