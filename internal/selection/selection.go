// Package selection implements the dynamic peer selection tier of QSA
// (paper §3.3): mapping the service instances chosen by the composition
// tier onto concrete peers, hop by hop, in the reverse direction of the
// service aggregation flow.
//
// Each selection step runs at the previously selected peer (starting at
// the user's host) and may use only that peer's locally probed performance
// information. A step:
//
//  1. resolves the candidate providers into the local neighbor table
//     (dynamic neighbor resolution, package probe) and probes them subject
//     to the M cap;
//  2. filters probed candidates by liveness, by uptime ≥ the application's
//     session duration (tolerance to topological variation), and by
//     resource/bandwidth feasibility against the instance requirements;
//  3. picks the qualified candidate maximizing the integrated configurable
//     metric Φ = Σᵢ ωᵢ·RAᵢ/rᵢ + ω_{m+1}·β/b (eq. 4–5);
//  4. falls back to a uniformly random pick among candidates whose
//     performance information is not available, as the paper prescribes.
//
// The package also provides the paper's two baselines: Random (uniform
// peer choice, no information) and Fixed (the same "dedicated server" peer
// every time — the client-server model).
package selection

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/probe"
	"repro/internal/service"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// Config parameterizes the QSA selector.
type Config struct {
	// Weights are ω₁…ω_m for the end-system resource dimensions followed
	// by ω_{m+1} for bandwidth; they must sum to 1 (eq. 5). Default
	// uniform [1/3, 1/3, 1/3], matching the paper's evaluation.
	Weights []float64
	// UseUptime enables the uptime ≥ session duration filter. On by
	// default in QSA; the ablation benches switch it off.
	UseUptime bool
	// UseFeasibility enables the availability/bandwidth pre-filter against
	// the instance requirements.
	UseFeasibility bool
}

// DefaultConfig returns the paper's QSA selector configuration.
func DefaultConfig() Config {
	return Config{
		Weights:        []float64{1.0 / 3, 1.0 / 3, 1.0 / 3},
		UseUptime:      true,
		UseFeasibility: true,
	}
}

// Validate checks the weight vector against eq. 5.
func (c Config) Validate() error {
	var sum float64
	for _, w := range c.Weights {
		if w < 0 {
			return fmt.Errorf("selection: negative weight %v", w)
		}
		sum += w
	}
	if sum < 1-1e-9 || sum > 1+1e-9 {
		return fmt.Errorf("selection: weights sum to %v, want 1", sum)
	}
	return nil
}

// Stats counts selection outcomes across a run.
type Stats struct {
	Informed  uint64 // steps decided by the Φ metric
	Fallbacks uint64 // steps decided by the random fallback
	Failures  uint64 // steps with no selectable candidate
}

// CandReport explains the fate of one candidate during a selection
// step. Reason uses the obs trace vocabulary: "chosen", "lower-phi",
// "short-uptime", "infeasible", "no-info", "dead", "self".
type CandReport struct {
	Peer   topology.PeerID
	Phi    float64 // zero when filtered before scoring
	Reason string
}

// StepReport describes one hop-by-hop selection step for the decision
// trace: where it ran, what it was selecting, every candidate's fate,
// and how the step was decided ("informed", "fallback", or "none").
type StepReport struct {
	Hop    int // 1-based, aggregation-flow order
	At     topology.PeerID
	Inst   string
	Chosen topology.PeerID // -1 when no candidate was selectable
	Mode   string
	Cands  []CandReport
}

// Selector is the QSA peer selector. It consults the probe manager for
// local performance information and never looks at global state.
type Selector struct {
	cfg    Config
	probes *probe.Manager
	rng    *xrand.Source
	stats  Stats

	// Obs, when non-nil, receives a StepReport for every SelectPath
	// step (recovery re-selections are not reported — they have no hop
	// context). Building the reports costs allocations, so leave it nil
	// unless a decision trace is wanted.
	Obs func(StepReport)
	// Counters, when wired to a registry, counts selection work and
	// outcomes; the zero value no-ops.
	Counters obs.SelectionCounters
}

// New returns a selector. rng drives only the random fallback.
func New(cfg Config, probes *probe.Manager, rng *xrand.Source) (*Selector, error) {
	if len(cfg.Weights) == 0 {
		cfg.Weights = DefaultConfig().Weights
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Selector{cfg: cfg, probes: probes, rng: rng}, nil
}

// Stats returns cumulative selection statistics.
func (s *Selector) Stats() Stats { return s.stats }

// PhiValue evaluates the integrated metric Φ (eq. 4) with explicit
// weights: Σᵢ ωᵢ·availᵢ/rᵢ + ω_{m+1}·availNet/bNet. Requirement dimensions
// that are zero contribute nothing. Exported so non-simulated deployments
// (the TCP prototype) can rank candidates with the same formula.
func PhiValue(weights, avail []float64, availNet float64, r []float64, bNet float64) float64 {
	m := len(weights) - 1
	var phi float64
	for i := 0; i < m && i < len(r) && i < len(avail); i++ {
		if r[i] > 0 {
			phi += weights[i] * avail[i] / r[i]
		}
	}
	if bNet > 0 && m >= 0 {
		phi += weights[m] * availNet / bNet
	}
	return phi
}

// Phi evaluates the integrated metric (eq. 4) for a candidate with probed
// info against the instance requirements r (end-system) and bKbps
// (bandwidth).
func (s *Selector) Phi(info probe.Info, r []float64, bKbps float64) float64 {
	return PhiValue(s.cfg.Weights, info.Available, info.AvailKbps, r, bKbps)
}

// SelectNext performs one hop-by-hop selection step at peer current:
// choose, among candidates, the peer to execute inst, for a session of
// dur minutes starting at now. rank is the benefit class the candidates
// enter current's neighbor table with. It reports the chosen peer and
// whether any choice was possible.
func (s *Selector) SelectNext(current topology.PeerID, inst *service.Instance,
	candidates []topology.PeerID, dur, now float64, rank probe.Rank) (topology.PeerID, bool) {

	chosen, ok, _, _ := s.selectStep(current, inst, candidates, dur, now, rank, false)
	return chosen, ok
}

// selectStep is SelectNext plus decision accounting. With report set it
// additionally returns every candidate's fate and the decision mode for
// the trace stream.
func (s *Selector) selectStep(current topology.PeerID, inst *service.Instance,
	candidates []topology.PeerID, dur, now float64, rank probe.Rank,
	report bool) (topology.PeerID, bool, string, []CandReport) {

	s.Counters.Steps.Inc()

	// Dynamic neighbor resolution + probing, bounded by M.
	s.probes.Resolve(current, candidates, rank, now)

	var cands []CandReport
	// lint:allow hotalloc non-escaping step-report closure; it only records when reporting is on, which the bench disables
	add := func(c topology.PeerID, reason string, phi float64) int {
		if !report {
			return -1
		}
		cands = append(cands, CandReport{Peer: c, Phi: phi, Reason: reason})
		return len(cands) - 1
	}

	// Two preference tiers (paper §3.3): first candidates whose uptime
	// matches the session duration, then — when no candidate qualifies on
	// uptime, e.g. in a young grid — any feasible candidate. Within a tier
	// the Φ metric decides.
	bestUp, bestAny := topology.PeerID(-1), topology.PeerID(-1)
	phiUp, phiAny := 0.0, 0.0
	upIdx, anyIdx := -1, -1
	var unknown []topology.PeerID
	var unknownIdx []int
	for _, c := range candidates {
		if c == current {
			add(c, "self", 0)
			continue
		}
		info, ok := s.probes.Fresh(current, c, now)
		if !ok {
			s.Counters.NoInfo.Inc()
			unknown = append(unknown, c)
			unknownIdx = append(unknownIdx, add(c, "no-info", 0))
			continue
		}
		if !info.Alive {
			add(c, "dead", 0)
			continue
		}
		if s.cfg.UseFeasibility {
			if !fits(info.Available, inst.R) || info.AvailKbps < inst.OutKbps {
				s.Counters.Infeasible.Inc()
				add(c, "infeasible", 0)
				continue
			}
		}
		phi := s.Phi(info, inst.R, inst.OutKbps)
		if !s.cfg.UseUptime || info.Uptime >= dur {
			ci := add(c, "lower-phi", phi)
			if bestUp < 0 || phi > phiUp {
				bestUp, phiUp, upIdx = c, phi, ci
			}
		} else {
			s.Counters.UptimeFiltered.Inc()
			ci := add(c, "short-uptime", phi)
			if bestAny < 0 || phi > phiAny {
				bestAny, phiAny, anyIdx = c, phi, ci
			}
		}
	}
	// lint:allow hotalloc non-escaping step-report closure; it only records when reporting is on, which the bench disables
	mark := func(i int) {
		if report && i >= 0 {
			cands[i].Reason = "chosen"
		}
	}
	if bestUp >= 0 {
		s.stats.Informed++
		s.Counters.Informed.Inc()
		mark(upIdx)
		return bestUp, true, "informed", cands
	}
	if bestAny >= 0 {
		s.stats.Informed++
		s.Counters.Informed.Inc()
		mark(anyIdx)
		return bestAny, true, "informed", cands
	}
	// The paper's fallback: random among candidates whose performance
	// information is not available.
	if len(unknown) > 0 {
		s.stats.Fallbacks++
		s.Counters.Fallbacks.Inc()
		i := s.rng.Intn(len(unknown))
		mark(unknownIdx[i])
		return unknown[i], true, "fallback", cands
	}
	s.stats.Failures++
	s.Counters.Failures.Inc()
	return -1, false, "none", cands
}

func fits(avail, req []float64) bool {
	for i := range req {
		if i >= len(avail) || avail[i] < req[i] {
			return false
		}
	}
	return true
}

// SelectPath runs the full distributed hop-by-hop procedure for a composed
// service path: instances in aggregation-flow order (source first) with
// providers[i] the candidate peers of instances[i]. Selection proceeds in
// the REVERSE direction of the flow, starting from the user. The user's
// host additionally resolves every hop's candidate set as its i-hop direct
// neighbors (the paper's neighbor definition, Figure 2). The returned
// slice is aligned with instances.
func (s *Selector) SelectPath(user topology.PeerID, instances []*service.Instance,
	providers [][]topology.PeerID, dur, now float64) ([]topology.PeerID, bool) {

	n := len(instances)
	if n == 0 || len(providers) != n {
		return nil, false
	}
	// User-side direct-neighbor resolution: the service at reverse hop i
	// makes its providers the user's i-hop direct neighbors.
	for k := 0; k < n; k++ {
		hop := n - k // instances[n-1] is 1 hop from the user
		if hop > 1 { // hop 1 is resolved inside the first SelectNext
			s.probes.Resolve(user, providers[k], probe.DirectRank(hop), now)
		}
	}
	// lint:allow hotalloc the selected peer path is the one output allocation per request, inside the 21 allocs/op budget
	chosen := make([]topology.PeerID, n)
	current := user
	for k := n - 1; k >= 0; k-- {
		rank := probe.IndirectRank(1)
		if current == user {
			rank = probe.DirectRank(1)
		}
		next, ok, mode, cands := s.selectStep(current, instances[k], providers[k], dur, now, rank, s.Obs != nil)
		if s.Obs != nil {
			// lint:allow hotalloc step-report callback; nil (and skipped) in the steady-state bench
			s.Obs(StepReport{
				Hop:    k + 1,
				At:     current,
				Inst:   instances[k].ID,
				Chosen: next,
				Mode:   mode,
				Cands:  cands,
			})
		}
		if !ok {
			return nil, false
		}
		chosen[k] = next
		current = next
	}
	return chosen, true
}

// Random is the paper's random baseline selector: it uniformly picks one
// provider per hop with no performance information at all.
type Random struct {
	rng *xrand.Source
}

// NewRandom returns a random selector driven by rng.
func NewRandom(rng *xrand.Source) *Random { return &Random{rng: rng} }

// SelectPath picks a uniform provider per hop.
func (r *Random) SelectPath(user topology.PeerID, instances []*service.Instance,
	providers [][]topology.PeerID, dur, now float64) ([]topology.PeerID, bool) {

	if len(instances) == 0 || len(providers) != len(instances) {
		return nil, false
	}
	// lint:allow hotalloc baseline selector allocates its result by design; only Phi selection is the tuned path
	chosen := make([]topology.PeerID, len(instances))
	for k := range instances {
		if len(providers[k]) == 0 {
			return nil, false
		}
		chosen[k] = providers[k][r.rng.Intn(len(providers[k]))]
	}
	return chosen, true
}

// Fixed is the paper's fixed baseline selector: every instance is always
// instantiated on the same dedicated peer — the conventional
// client-server deployment. The dedicated peer is the lowest-numbered
// provider, a stable choice for a stable provider set.
type Fixed struct{}

// NewFixed returns the fixed selector.
func NewFixed() *Fixed { return &Fixed{} }

// SelectPath picks the dedicated (lowest-ID) provider per hop.
func (f *Fixed) SelectPath(user topology.PeerID, instances []*service.Instance,
	providers [][]topology.PeerID, dur, now float64) ([]topology.PeerID, bool) {

	if len(instances) == 0 || len(providers) != len(instances) {
		return nil, false
	}
	// lint:allow hotalloc baseline selector allocates its result by design; only Phi selection is the tuned path
	chosen := make([]topology.PeerID, len(instances))
	for k := range instances {
		if len(providers[k]) == 0 {
			return nil, false
		}
		best := providers[k][0]
		for _, p := range providers[k][1:] {
			if p < best {
				best = p
			}
		}
		chosen[k] = best
	}
	return chosen, true
}
