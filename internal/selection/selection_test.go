package selection

import (
	"math"
	"testing"

	"repro/internal/probe"
	"repro/internal/qos"
	"repro/internal/resource"
	"repro/internal/service"
	"repro/internal/topology"
	"repro/internal/xrand"
)

func inst(r, b float64) *service.Instance {
	return &service.Instance{
		ID:      "svc#0",
		Service: "svc",
		Qin:     qos.MustVector(qos.Sym("format", "M")),
		Qout:    qos.MustVector(qos.Sym("format", "A")),
		R:       resource.Vec2(r, r),
		OutKbps: b,
	}
}

type fixture struct {
	net    *topology.Network
	probes *probe.Manager
	sel    *Selector
}

func newFixture(t *testing.T, peers int, cfg Config) *fixture {
	t.Helper()
	net, err := topology.New(topology.Default(1, peers))
	if err != nil {
		t.Fatal(err)
	}
	pm := probe.NewManager(probe.Config{}, net)
	if len(cfg.Weights) == 0 {
		cfg = DefaultConfig()
	}
	sel, err := New(cfg, pm, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{net: net, probes: pm, sel: sel}
}

func ids(xs ...int) []topology.PeerID {
	out := make([]topology.PeerID, len(xs))
	for i, x := range xs {
		out[i] = topology.PeerID(x)
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{Weights: []float64{0.9, 0.9}}).Validate(); err == nil {
		t.Fatal("weights not summing to 1 must fail eq. 5")
	}
	if err := (Config{Weights: []float64{1.5, -0.5}}).Validate(); err == nil {
		t.Fatal("negative weight must fail")
	}
	pm := probe.NewManager(probe.Config{}, nil)
	if _, err := New(Config{Weights: []float64{2}}, pm, xrand.New(1)); err == nil {
		t.Fatal("New must reject invalid config")
	}
}

func TestPhiFormula(t *testing.T) {
	f := newFixture(t, 3, Config{Weights: []float64{0.25, 0.25, 0.5}, UseUptime: true, UseFeasibility: true})
	info := probe.Info{Available: resource.Vec2(100, 200), AvailKbps: 1000, Alive: true}
	got := f.sel.Phi(info, []float64{10, 10}, 100)
	want := 0.25*100/10 + 0.25*200/10 + 0.5*1000/100
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Phi = %v, want %v", got, want)
	}
	// Zero requirements contribute nothing rather than dividing by zero.
	got = f.sel.Phi(info, []float64{0, 10}, 0)
	want = 0.25 * 200 / 10
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Phi with zero reqs = %v, want %v", got, want)
	}
}

func TestPhiValueStandalone(t *testing.T) {
	// Network-only weights: a single-entry weight vector prices only the
	// network term.
	got := PhiValue([]float64{1}, nil, 500, nil, 100)
	if got != 5 {
		t.Fatalf("network-only Φ = %v, want 5", got)
	}
	// Zero network requirement contributes nothing.
	if got := PhiValue([]float64{1}, nil, 500, nil, 0); got != 0 {
		t.Fatalf("Φ with zero bNet = %v", got)
	}
	// Mismatched avail/req lengths must not panic; extra dims ignored.
	got = PhiValue([]float64{0.5, 0.5}, []float64{10}, 0, []float64{5, 5}, 0)
	if got != 0.5*10/5 {
		t.Fatalf("Φ with short avail = %v", got)
	}
	if got := PhiValue(nil, []float64{1}, 1, []float64{1}, 1); got != 0 {
		t.Fatalf("Φ with no weights = %v", got)
	}
}

func TestSelectNextPicksMaxPhi(t *testing.T) {
	f := newFixture(t, 10, Config{})
	// Load peer candidates differently: the least loaded wins.
	heavy := f.net.MustPeer(1)
	heavy.Ledger.Reserve(heavy.Capacity.Scale(0.9))
	light := f.net.MustPeer(2)

	in := inst(10, 10)
	got, ok := f.sel.SelectNext(0, in, ids(1, 2), 5, 100, probe.DirectRank(1))
	if !ok {
		t.Fatal("selection failed")
	}
	// Both peers qualify, but the lightly loaded one has higher Φ
	// (bandwidth classes may differ; resource gap of 90% dominates with a
	// 1/3 bandwidth weight only if availability ratio gap is big — verify
	// via Phi directly).
	infoH, _ := f.probes.Fresh(0, 1, 100)
	infoL, _ := f.probes.Fresh(0, 2, 100)
	wantBest := topology.PeerID(1)
	if f.sel.Phi(infoL, in.R, in.OutKbps) > f.sel.Phi(infoH, in.R, in.OutKbps) {
		wantBest = 2
	}
	if got != wantBest {
		t.Fatalf("selected %d, Φ-max is %d", got, wantBest)
	}
	_ = light
	if f.sel.Stats().Informed != 1 {
		t.Fatalf("stats = %+v", f.sel.Stats())
	}
}

func TestUptimeFilter(t *testing.T) {
	f := newFixture(t, 10, Config{})
	// Peer 1 joined at t=0; a fresh peer joins at t=95.
	fresh, _ := f.net.Join(95)
	in := inst(10, 10)
	// Session of 20 min at t=100: fresh peer has uptime 5 < 20 and must be
	// filtered; peer 1 has uptime 100.
	got, ok := f.sel.SelectNext(0, in, []topology.PeerID{1, fresh.ID}, 20, 100, probe.DirectRank(1))
	if !ok || got != 1 {
		t.Fatalf("selected %v, want the long-uptime peer 1", got)
	}
	// Without the uptime filter the fresh peer is eligible again.
	cfgNoUp := DefaultConfig()
	cfgNoUp.UseUptime = false
	sel2, _ := New(cfgNoUp, f.probes, xrand.New(3))
	// Drain peer 1 so the fresh peer clearly wins on Φ.
	p1 := f.net.MustPeer(1)
	p1.Ledger.Reserve(p1.Capacity.Scale(0.99))
	got, ok = sel2.SelectNext(0, in, []topology.PeerID{1, fresh.ID}, 20, 102, probe.DirectRank(1))
	if !ok || got != fresh.ID {
		t.Fatalf("without uptime filter selected %v, want fresh peer %v", got, fresh.ID)
	}
}

func TestDeadCandidatesFiltered(t *testing.T) {
	f := newFixture(t, 10, Config{})
	f.net.Depart(1, 50)
	in := inst(10, 10)
	got, ok := f.sel.SelectNext(0, in, ids(1, 2), 5, 100, probe.DirectRank(1))
	if !ok || got != 2 {
		t.Fatalf("selected %v, want 2 (1 departed)", got)
	}
}

func TestFeasibilityFilter(t *testing.T) {
	f := newFixture(t, 10, Config{})
	// Overload peer 1 beyond the requirement.
	p1 := f.net.MustPeer(1)
	p1.Ledger.Reserve(p1.Capacity.Sub(resource.Vec2(5, 5)))
	in := inst(10, 10) // needs 10, peer 1 has 5
	got, ok := f.sel.SelectNext(0, in, ids(1, 2), 5, 100, probe.DirectRank(1))
	if !ok || got != 2 {
		t.Fatalf("selected %v, want 2 (1 infeasible)", got)
	}
}

func TestRandomFallbackWhenUninformed(t *testing.T) {
	// M=1: the table can hold a single neighbor, so with two candidates
	// one stays unknown. Make the probed one infeasible: the fallback must
	// pick the unknown one.
	net, _ := topology.New(topology.Default(1, 10))
	pm := probe.NewManager(probe.Config{M: 1}, net)
	sel, _ := New(DefaultConfig(), pm, xrand.New(4))
	p1 := net.MustPeer(1)
	p1.Ledger.Reserve(p1.Capacity) // fully loaded
	in := inst(10, 10)
	got, ok := sel.SelectNext(0, in, ids(1, 2), 5, 100, probe.DirectRank(1))
	if !ok {
		t.Fatal("selection failed despite unknown candidate")
	}
	if got != 2 {
		t.Fatalf("fallback selected %v, want the unprobed peer 2", got)
	}
	if sel.Stats().Fallbacks != 1 {
		t.Fatalf("stats = %+v", sel.Stats())
	}
}

func TestSelectionFailure(t *testing.T) {
	f := newFixture(t, 5, Config{})
	f.net.Depart(1, 0)
	f.net.Depart(2, 0)
	in := inst(10, 10)
	_, ok := f.sel.SelectNext(0, in, ids(1, 2), 5, 100, probe.DirectRank(1))
	if ok {
		t.Fatal("selection must fail when every candidate is dead and probed")
	}
	if f.sel.Stats().Failures != 1 {
		t.Fatalf("stats = %+v", f.sel.Stats())
	}
}

func TestSelfExcluded(t *testing.T) {
	f := newFixture(t, 5, Config{})
	in := inst(10, 10)
	got, ok := f.sel.SelectNext(3, in, ids(3, 4), 5, 100, probe.DirectRank(1))
	if !ok || got != 4 {
		t.Fatalf("selected %v, the selecting peer itself must be excluded", got)
	}
}

func TestSelectPathReverseOrder(t *testing.T) {
	f := newFixture(t, 20, Config{})
	instances := []*service.Instance{inst(5, 10), inst(5, 10), inst(5, 10)}
	providers := [][]topology.PeerID{ids(1, 2), ids(3, 4), ids(5, 6)}
	chosen, ok := f.sel.SelectPath(0, instances, providers, 5, 100)
	if !ok {
		t.Fatal("path selection failed")
	}
	if len(chosen) != 3 {
		t.Fatalf("chosen = %v", chosen)
	}
	for k, c := range chosen {
		found := false
		for _, p := range providers[k] {
			if p == c {
				found = true
			}
		}
		if !found {
			t.Fatalf("hop %d selected non-candidate %v", k, c)
		}
	}
	// The user resolved every hop's candidates as direct neighbors.
	if f.probes.NeighborCount(0) < 4 {
		t.Fatalf("user table has %d neighbors, expected all hop candidates", f.probes.NeighborCount(0))
	}
	// The hop-2 selector (chosen[2]) learned about hop-1 candidates.
	if _, ok := f.probes.Fresh(chosen[2], chosen[1], 100); !ok {
		t.Fatal("selecting peer did not resolve its next-hop candidates")
	}
}

func TestSelectPathDegenerate(t *testing.T) {
	f := newFixture(t, 5, Config{})
	if _, ok := f.sel.SelectPath(0, nil, nil, 5, 0); ok {
		t.Fatal("empty path must fail")
	}
	in := []*service.Instance{inst(1, 1)}
	if _, ok := f.sel.SelectPath(0, in, nil, 5, 0); ok {
		t.Fatal("provider/instance mismatch must fail")
	}
}

func TestRandomSelector(t *testing.T) {
	r := NewRandom(xrand.New(5))
	instances := []*service.Instance{inst(1, 1), inst(1, 1)}
	providers := [][]topology.PeerID{ids(1, 2, 3), ids(4, 5)}
	seen := map[topology.PeerID]bool{}
	for i := 0; i < 200; i++ {
		chosen, ok := r.SelectPath(0, instances, providers, 5, 0)
		if !ok {
			t.Fatal("random selection failed")
		}
		seen[chosen[0]] = true
	}
	if len(seen) != 3 {
		t.Fatalf("random selector not uniform over candidates: %v", seen)
	}
	if _, ok := r.SelectPath(0, instances, [][]topology.PeerID{ids(1), nil}, 5, 0); ok {
		t.Fatal("empty provider set must fail")
	}
	if _, ok := r.SelectPath(0, nil, nil, 5, 0); ok {
		t.Fatal("empty path must fail")
	}
}

func TestFixedSelector(t *testing.T) {
	f := NewFixed()
	instances := []*service.Instance{inst(1, 1), inst(1, 1)}
	providers := [][]topology.PeerID{ids(9, 3, 7), ids(5, 4)}
	chosen, ok := f.SelectPath(0, instances, providers, 5, 0)
	if !ok {
		t.Fatal("fixed selection failed")
	}
	if chosen[0] != 3 || chosen[1] != 4 {
		t.Fatalf("fixed chose %v, want dedicated peers [3 4]", chosen)
	}
	// Always the same.
	again, _ := f.SelectPath(0, instances, providers, 5, 0)
	if again[0] != chosen[0] || again[1] != chosen[1] {
		t.Fatal("fixed selector must be deterministic")
	}
	if _, ok := f.SelectPath(0, instances, [][]topology.PeerID{ids(1), nil}, 5, 0); ok {
		t.Fatal("empty provider set must fail")
	}
	if _, ok := f.SelectPath(0, nil, nil, 5, 0); ok {
		t.Fatal("empty path must fail")
	}
}

func TestLoadBalancePreference(t *testing.T) {
	// Statistical: across many selections with equal requirements, QSA
	// must spread load toward less-loaded peers, unlike random.
	f := newFixture(t, 30, Config{})
	in := inst(5, 10)
	// Load peers 1..5 at 80%, leave 6..10 idle.
	for p := 1; p <= 5; p++ {
		pr := f.net.MustPeer(topology.PeerID(p))
		pr.Ledger.Reserve(pr.Capacity.Scale(0.8))
	}
	cands := ids(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	idlePicks := 0
	for i := 0; i < 50; i++ {
		got, ok := f.sel.SelectNext(0, in, cands, 1, float64(100+i)*2, probe.DirectRank(1))
		if !ok {
			t.Fatal("selection failed")
		}
		if got >= 6 {
			idlePicks++
		}
	}
	if idlePicks < 45 {
		t.Fatalf("QSA picked idle peers only %d/50 times; load balance broken", idlePicks)
	}
}
