// Package wire is the QSA prototype's wire plane: the RPC message
// structs every peer exchanges, plus two interchangeable codecs for
// them — the original newline-delimited JSON encoding (the rollback
// format) and a compact binary encoding (fixed little-endian header,
// varint-encoded fields, CRC32C trailer) built for heavy traffic.
//
// The package is deliberately a leaf: standard library only, no
// dependency on the rest of the repo, so the transport layer
// (internal/netproto) and the fault plane (internal/faults) can both
// sit on top of it without cycles. Domain conversions (wire.Instance
// ↔ service.Instance) stay in netproto.
//
// Codec negotiation is by first byte on the wire: a JSON message
// starts with '{' (0x7B), a binary message with the magic byte 0x51
// ('Q'). A server therefore decodes either format without
// configuration, which is what makes the binary rollout reversible —
// see DESIGN.md §12.
package wire

// Message type strings — the RPC vocabulary of the prototype. The
// strings are the JSON wire values; the binary codec maps them to the
// one-byte kinds below.
const (
	TypeJoin      = "join"      // announce a member; response carries membership
	TypeLeave     = "leave"     // graceful departure announcement
	TypeLookup    = "lookup"    // discover a peer's registrations of a service
	TypeProbe     = "probe"     // resource availability + uptime
	TypeSelect    = "select"    // continue hop-by-hop selection at this peer
	TypeReserve   = "reserve"   // reserve resources for a session
	TypeRelease   = "release"   // drop a session's reservation early
	TypeAggregate = "aggregate" // run a full aggregation at the serving peer
	TypeGossip    = "gossip"    // batched membership/availability announcements
)

// Binary message kinds: the one-byte encoding of the Type string in
// the binary header. KindOther carries the literal string in the body
// so arbitrary (e.g. future or fuzzed) types still round-trip.
const (
	KindOther byte = iota
	KindJoin
	KindLeave
	KindLookup
	KindProbe
	KindSelect
	KindReserve
	KindRelease
	KindAggregate
	KindGossip
)

// kindOf maps a Type string to its binary kind.
func kindOf(typ string) byte {
	switch typ {
	case TypeJoin:
		return KindJoin
	case TypeLeave:
		return KindLeave
	case TypeLookup:
		return KindLookup
	case TypeProbe:
		return KindProbe
	case TypeSelect:
		return KindSelect
	case TypeReserve:
		return KindReserve
	case TypeRelease:
		return KindRelease
	case TypeAggregate:
		return KindAggregate
	case TypeGossip:
		return KindGossip
	default:
		return KindOther
	}
}

// typeOf maps a binary kind back to its Type string ("" for
// KindOther, whose string travels in the body).
func typeOf(kind byte) string {
	switch kind {
	case KindJoin:
		return TypeJoin
	case KindLeave:
		return TypeLeave
	case KindLookup:
		return TypeLookup
	case KindProbe:
		return TypeProbe
	case KindSelect:
		return TypeSelect
	case KindReserve:
		return TypeReserve
	case KindRelease:
		return TypeRelease
	case KindAggregate:
		return TypeAggregate
	case KindGossip:
		return TypeGossip
	default:
		return ""
	}
}

// Idempotent reports whether an RPC type may be retransmitted without
// changing the outcome: probing, discovery, membership and gossip
// messages are; reserve is not (a duplicate could double-book
// capacity), select is not (a duplicate would re-run the downstream
// selection recursion), and aggregate is not (it admits a session,
// so a duplicate would book a second one). The UDP transport consults
// this — via the header flag the codec sets — to decide whether a
// lost datagram may be resent.
func Idempotent(typ string) bool {
	switch typ {
	case TypeJoin, TypeLeave, TypeLookup, TypeProbe, TypeRelease, TypeGossip:
		return true
	}
	return false
}

// Param is the wire form of one QoS parameter.
type Param struct {
	Name string  `json:"name"`
	Sym  string  `json:"sym,omitempty"`
	Lo   float64 `json:"lo,omitempty"`
	Hi   float64 `json:"hi,omitempty"`
}

// Instance is the wire form of a service instance specification.
type Instance struct {
	ID      string  `json:"id"`
	Service string  `json:"service"`
	Qin     []Param `json:"qin"`
	Qout    []Param `json:"qout"`
	CPU     float64 `json:"cpu"`
	Memory  float64 `json:"memory"`
	Kbps    float64 `json:"kbps"`
}

// Cand is one candidate considered during a selection hop, with the Φ
// value it scored (when probed) and why it was or was not chosen.
type Cand struct {
	Addr   string  `json:"addr"`
	Phi    float64 `json:"phi,omitempty"`
	Reason string  `json:"reason"`
}

// Hop is the decision record of one distributed selection hop,
// carried back through the select recursion when the initiator asked
// for tracing (Request.Trace). Idx is the 0-based instance index in
// aggregation-flow order; At is the peer that executed the step.
type Hop struct {
	Idx    int    `json:"idx"`
	At     string `json:"at"`
	Inst   string `json:"inst"`
	Chosen string `json:"chosen,omitempty"`
	Mode   string `json:"mode,omitempty"`
	Cands  []Cand `json:"cands,omitempty"`
}

// Request is the wire envelope for every RPC.
type Request struct {
	Type string `json:"type"`

	// join
	Addr string `json:"addr,omitempty"`

	// lookup
	Service string `json:"service,omitempty"`

	// select
	Instances  []Instance          `json:"instances,omitempty"`
	Candidates map[string][]string `json:"candidates,omitempty"` // instance ID -> provider addrs
	Idx        int                 `json:"idx,omitempty"`
	Chain      []string            `json:"chain,omitempty"`
	UserAddr   string              `json:"user_addr,omitempty"`
	Trace      bool                `json:"trace,omitempty"` // carry Hop decision records back

	// reserve / release
	SessionID   string  `json:"session_id,omitempty"`
	InstanceID  string  `json:"instance_id,omitempty"`
	CPU         float64 `json:"cpu,omitempty"`
	Memory      float64 `json:"memory,omitempty"`
	DurationSec float64 `json:"duration_sec,omitempty"`

	// Causal trace context (optional): the caller's trace and current
	// span, so the serving peer can parent its spans under the request's
	// tree (DESIGN §13). Zero means untraced. In JSON the fields simply
	// omit when zero — a peer built without them ignores the extras — and
	// the binary codec gates them behind FlagTraceCtx at the body tail.
	TraceID uint64 `json:"trace_id,omitempty"`
	SpanID  uint64 `json:"span_id,omitempty"`

	// Serving plane (aggregate / gossip, DESIGN §14). In JSON the
	// fields omit when zero; the binary codec gates them behind
	// FlagServing at the body tail, after the trace context.
	Services  []string `json:"services,omitempty"`  // aggregate: abstract path
	MinRate   float64  `json:"min_rate,omitempty"`  // aggregate: end-to-end rate floor
	Priority  int      `json:"priority,omitempty"`  // aggregate: higher is more important
	Deadline  float64  `json:"deadline,omitempty"`  // aggregate: client latency budget, seconds
	DTolerant bool     `json:"dtolerant,omitempty"` // aggregate: disruption-tolerant flow
	Anns      []Ann    `json:"anns,omitempty"`      // gossip: batched announcements
}

// Ann is one gossiped peer announcement: the batched form of a probe
// response, so one datagram per gossip interval refreshes many
// entries (DESIGN §14). AgeSec is how stale the announcement already
// was at the sender — receivers only keep strictly fresher state.
type Ann struct {
	Addr      string    `json:"addr"`
	Avail     []float64 `json:"avail,omitempty"`
	UptimeSec float64   `json:"uptime_sec,omitempty"`
	AgeSec    float64   `json:"age_sec,omitempty"`
	Services  []string  `json:"services,omitempty"`
}

// Offer is one (instance, provider) discovery result.
type Offer struct {
	Instance Instance `json:"instance"`
	Provider string   `json:"provider"`
}

// Response is the wire envelope for every reply.
type Response struct {
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`

	Members []string `json:"members,omitempty"`
	Offers  []Offer  `json:"offers,omitempty"`

	// probe
	Avail     []float64 `json:"avail,omitempty"`
	UptimeSec float64   `json:"uptime_sec,omitempty"`

	// select
	Chain []string `json:"chain,omitempty"`
	Hops  []Hop    `json:"hops,omitempty"` // per-hop decision records (Request.Trace)

	// Serving plane (aggregate replies and backpressure, DESIGN §14).
	// Shed marks a request refused by admission control; RetryAfterSec
	// is the server's deterministic backoff hint. In JSON the fields
	// omit when zero; the binary codec gates them behind FlagServing.
	SessionID     string  `json:"session_id,omitempty"`
	Cost          float64 `json:"cost,omitempty"`
	Shed          bool    `json:"shed,omitempty"`
	RetryAfterSec float64 `json:"retry_after_sec,omitempty"`
}

// Codec encodes and decodes the RPC envelopes. Append* appends one
// framed message to dst (reusing its capacity) and returns the
// extended slice; Decode* overwrites every field of the destination
// struct, reusing its slice and map capacity where the codec supports
// it. reqID is the request correlation ID carried by the binary
// header (the JSON codec, which runs one exchange per TCP connection,
// ignores it and reports 0).
type Codec interface {
	// Name is the codec's configuration name: "json" or "binary".
	Name() string
	AppendRequest(dst []byte, reqID uint64, req *Request) ([]byte, error)
	AppendResponse(dst []byte, reqID uint64, resp *Response) ([]byte, error)
	DecodeRequest(data []byte, req *Request) (reqID uint64, err error)
	DecodeResponse(data []byte, resp *Response) (reqID uint64, err error)
}
