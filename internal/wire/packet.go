package wire

import (
	"errors"
	"hash/crc32"
)

// Datagram packet framing for the UDP transport. One framed message
// (the output of AppendRequest/AppendResponse) is carried by one or
// more packets, each individually checksummed so a corrupted datagram
// is dropped in isolation:
//
//	offset 0..1   packet magic "qp" (0x71 0x70) — distinct from the
//	              message magic so a stray message frame is never
//	              mistaken for a packet
//	offset 2      packet-layer version (1)
//	offset 3      packet type (PktData / PktResp / PktAck)
//	offset 4      flags (bit 0: an ack is acking a response)
//	offset 5..12  message ID, uint64 LE — the retransmit/dedup key
//	offset 13..14 fragment index, uint16 LE
//	offset 15..16 fragment count, uint16 LE
//	offset 17..   payload (one message slice; empty for acks)
//	last 4 bytes  CRC32C of everything preceding
//
// The message ID is transport-scoped (per client socket), not the
// codec's request ID: the JSON codec has no ID at all, and the packet
// layer must work for both.
const (
	pktMagic0  = 0x71 // 'q'
	pktMagic1  = 0x70 // 'p'
	pktVersion = 1

	pktOffType  = 3
	pktOffFlags = 4
	pktOffMsgID = 5
	pktOffFrag  = 13

	// PacketHeaderSize is the fixed datagram header length.
	PacketHeaderSize = 17
	// PacketOverhead is header + CRC trailer: the per-datagram tax
	// subtracted from the MTU to get usable payload.
	PacketOverhead = PacketHeaderSize + crcSize

	// MinMTU is the smallest configurable MTU: enough for the
	// overhead plus a few dozen payload bytes so every message makes
	// progress. MaxMTU is the absolute UDP datagram payload ceiling.
	MinMTU = 64
	MaxMTU = 65507
)

// Packet types.
const (
	// PktData carries a request-message fragment.
	PktData byte = 1
	// PktResp carries a response-message fragment.
	PktResp byte = 2
	// PktAck acknowledges complete receipt of a message (no payload).
	PktAck byte = 3
)

// AckOfResponse is the packet flag a client sets when acking a
// response, letting the server drop its dedup-cached reply early.
const AckOfResponse byte = 1 << 0

// Packet is one parsed datagram. Payload aliases the parse input —
// copy before the receive buffer recycles.
type Packet struct {
	Type      byte
	Flags     byte
	MsgID     uint64
	FragIdx   uint16
	FragCount uint16
	Payload   []byte
}

// Packet-layer errors (sentinels; the receive path drops bad
// datagrams without formatting anything).
var (
	ErrPacketMagic = errors.New("wire: not a datagram packet")
	ErrPacketShort = errors.New("wire: datagram too short")
	ErrPacketFrag  = errors.New("wire: inconsistent fragment numbering")
)

// AppendPacket appends one framed datagram to dst, reusing capacity.
//
// lint:hotpath per-datagram packet framing on the UDP send path
func AppendPacket(dst []byte, p *Packet) []byte {
	start := len(dst)
	dst = append(dst, pktMagic0, pktMagic1, pktVersion, p.Type, p.Flags,
		byte(p.MsgID), byte(p.MsgID>>8), byte(p.MsgID>>16), byte(p.MsgID>>24),
		byte(p.MsgID>>32), byte(p.MsgID>>40), byte(p.MsgID>>48), byte(p.MsgID>>56),
		byte(p.FragIdx), byte(p.FragIdx>>8),
		byte(p.FragCount), byte(p.FragCount>>8))
	dst = append(dst, p.Payload...)
	crc := crc32.Checksum(dst[start:], castagnoli)
	dst = append(dst, byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24))
	return dst
}

// ParsePacket validates one received datagram and fills p. Payload
// aliases data.
//
// lint:hotpath per-datagram packet parse on the UDP receive path
func ParsePacket(data []byte, p *Packet) error {
	if len(data) < PacketOverhead {
		return ErrPacketShort
	}
	if data[0] != pktMagic0 || data[1] != pktMagic1 {
		return ErrPacketMagic
	}
	if data[2] != pktVersion {
		return ErrVersion
	}
	payloadEnd := len(data) - crcSize
	want := uint32(data[payloadEnd]) | uint32(data[payloadEnd+1])<<8 |
		uint32(data[payloadEnd+2])<<16 | uint32(data[payloadEnd+3])<<24
	if crc32.Checksum(data[:payloadEnd], castagnoli) != want {
		return ErrCRC
	}
	p.Type = data[pktOffType]
	p.Flags = data[pktOffFlags]
	var id uint64
	for i := 0; i < 8; i++ {
		id |= uint64(data[pktOffMsgID+i]) << (8 * i)
	}
	p.MsgID = id
	p.FragIdx = uint16(data[pktOffFrag]) | uint16(data[pktOffFrag+1])<<8
	p.FragCount = uint16(data[pktOffFrag+2]) | uint16(data[pktOffFrag+3])<<8
	if p.FragCount == 0 || p.FragIdx >= p.FragCount {
		if p.Type != PktAck { // acks carry no fragment numbering
			return ErrPacketFrag
		}
	}
	p.Payload = data[PacketHeaderSize:payloadEnd]
	return nil
}

// Fragments returns how many datagrams a message of msgLen bytes
// needs at the given MTU, or 0 when the message cannot be carried
// (too many fragments for the uint16 numbering).
func Fragments(msgLen, mtu int) int {
	usable := mtu - PacketOverhead
	if usable <= 0 {
		return 0
	}
	if msgLen == 0 {
		return 1
	}
	n := (msgLen + usable - 1) / usable
	if n > 0xFFFF {
		return 0
	}
	return n
}
