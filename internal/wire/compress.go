package wire

import (
	"bytes"
	"compress/flate"
	"errors"
	"io"
	"sync"
)

// Flag-negotiated body compression (stdlib flate, DESIGN §14): large
// discovery and select fan-out payloads shrink 3-10x, while the
// steady-state small messages (probe, reserve) never cross the
// threshold and keep their zero-allocation encode path untouched.
//
// A compressed body is uvarint(raw body length) followed by one
// deflate stream. The length prefix is bounds-checked against
// MaxMessage before any buffer is sized, so a hostile frame cannot
// force a huge allocation, and the stream must inflate to exactly the
// advertised length. Framing (header, spliced body length, CRC32C)
// covers the compressed bytes, so transport-level integrity checking
// is unchanged.

// DefaultCompressMin is the body size at which compression starts to
// win: below ~1 KiB the deflate header and the extra CPU outweigh the
// byte savings on this codec's already-varint-packed bodies.
const DefaultCompressMin = 1 << 10

// ErrCompress rejects a FlagCompressed body whose length prefix or
// deflate stream is malformed.
var ErrCompress = errors.New("wire: bad compressed body")

// SetCompression enables flate compression of message bodies of at
// least min bytes (0 disables, the default; DefaultCompressMin is the
// recommended threshold). Requests then advertise FlagCompressOK so
// servers may compress their replies; decoding compressed frames
// works regardless of this setting.
func (c *Binary) SetCompression(min int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if min < 0 {
		min = 0
	}
	c.compressMin = min
}

// sliceWriter adapts an append target to io.Writer for flate.
type sliceWriter struct{ b *[]byte }

func (w sliceWriter) Write(p []byte) (int, error) {
	*w.b = append(*w.b, p...)
	return len(p), nil
}

// Writer and reader pooling: flate state is ~32-64 KiB per instance,
// far too heavy to build per message.
var flateWriters = sync.Pool{New: func() any {
	w, err := flate.NewWriter(io.Discard, flate.BestSpeed)
	if err != nil {
		// Unreachable: BestSpeed is a valid level. Returning the nil
		// writer would just crash later with less context.
		// lint:allow panic-in-library a static, valid flate level cannot fail
		panic(err)
	}
	return w
}}

var flateReaders = sync.Pool{New: func() any {
	return flate.NewReader(bytes.NewReader(nil))
}}

// compressBody replaces dst's body [bodyStart:] with
// uvarint(rawLen) + deflate(raw) and sets FlagCompressed in the
// header at start — but only when that actually shrinks the body, so
// incompressible payloads cost nothing on the wire. Runs between the
// body encode and finishFrame: the spliced length and the CRC then
// cover the compressed bytes.
//
// lint:coldpath only large fan-out payloads cross the compression threshold
func compressBody(dst []byte, start, bodyStart int) []byte {
	raw := dst[bodyStart:]
	scratch := GetBuf(len(raw) / 2)
	defer PutBuf(scratch)
	scratch.B = appendUvarint(scratch.B[:0], uint64(len(raw)))
	fw := flateWriters.Get().(*flate.Writer)
	fw.Reset(sliceWriter{&scratch.B})
	_, werr := fw.Write(raw)
	cerr := fw.Close()
	flateWriters.Put(fw)
	if werr != nil || cerr != nil || len(scratch.B) >= len(raw) {
		// Compression failed or did not win: keep the raw body.
		return dst
	}
	dst = append(dst[:bodyStart], scratch.B...)
	dst[start+offFlags] |= FlagCompressed
	return dst
}

// inflateBody decodes a FlagCompressed body into a pooled buffer the
// caller must PutBuf.
func inflateBody(body []byte) (*Buf, error) {
	r := reader{data: body}
	rawLen := r.uvarint()
	if r.fail || rawLen > MaxMessage {
		return nil, ErrCompress
	}
	fr := flateReaders.Get().(io.ReadCloser)
	if err := fr.(flate.Resetter).Reset(bytes.NewReader(body[r.pos:]), nil); err != nil {
		flateReaders.Put(fr)
		return nil, ErrCompress
	}
	buf := GetBuf(int(rawLen))
	buf.B = buf.B[:rawLen]
	_, err := io.ReadFull(fr, buf.B)
	if err == nil {
		// The stream must terminate cleanly exactly at the advertised
		// length: trailing data or a missing final block means a
		// corrupt or hostile frame.
		var probe [1]byte
		if n, perr := fr.Read(probe[:]); n != 0 || perr != io.EOF {
			err = ErrCompress
		}
	}
	flateReaders.Put(fr)
	if err != nil {
		PutBuf(buf)
		return nil, ErrCompress
	}
	return buf, nil
}
