package wire

import (
	"encoding/json"
	"testing"
)

// TestBinaryTraceContext covers the FlagTraceCtx extension tail: the
// flag bit appears exactly when a trace context is present, the IDs
// round-trip, and a flag-less frame decoded into a dirty struct
// zeroes the fields rather than leaking the previous message's IDs.
func TestBinaryTraceContext(t *testing.T) {
	bin := NewBinary()

	traced := Request{Type: TypeSelect, TraceID: 0xfeedface, SpanID: 7}
	buf, err := bin.AppendRequest(nil, 3, &traced)
	if err != nil {
		t.Fatal(err)
	}
	flags, ok := MessageFlags(buf)
	if !ok || flags&FlagTraceCtx == 0 {
		t.Fatalf("traced frame must carry FlagTraceCtx: flags=%08b ok=%v", flags, ok)
	}
	var got Request
	if _, err := bin.DecodeRequest(buf, &got); err != nil {
		t.Fatal(err)
	}
	if got.TraceID != 0xfeedface || got.SpanID != 7 {
		t.Fatalf("trace context lost in transit: %+v", got)
	}

	// A span ID alone (context joined mid-chain) still sets the flag.
	half := Request{Type: TypeProbe, SpanID: 9}
	hbuf, err := bin.AppendRequest(nil, 4, &half)
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := MessageFlags(hbuf); f&FlagTraceCtx == 0 {
		t.Fatal("SpanID alone must still set FlagTraceCtx")
	}

	// An untraced request encodes without the flag — the frame is
	// byte-for-byte what a pre-extension encoder would have produced.
	plain := Request{Type: TypeSelect}
	pbuf, err := bin.AppendRequest(nil, 5, &plain)
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := MessageFlags(pbuf); f&FlagTraceCtx != 0 {
		t.Fatal("untraced frame must not carry FlagTraceCtx")
	}
	// Decoding it into the struct that just held a traced message must
	// clear the IDs.
	if _, err := bin.DecodeRequest(pbuf, &got); err != nil {
		t.Fatal(err)
	}
	if got.TraceID != 0 || got.SpanID != 0 {
		t.Fatalf("flag-less frame leaked stale trace context: %+v", got)
	}
}

// TestTraceContextForwardCompatJSON is the satellite regression test:
// a frame carrying the new trace-context fields must decode cleanly on
// a peer built without them. oldRequest mirrors the pre-extension
// Request shape; encoding/json drops unknown keys, which is exactly
// the rollback property the JSON codec exists to guarantee.
func TestTraceContextForwardCompatJSON(t *testing.T) {
	type oldRequest struct {
		Type        string              `json:"type"`
		Addr        string              `json:"addr,omitempty"`
		Service     string              `json:"service,omitempty"`
		Instances   []Instance          `json:"instances,omitempty"`
		Candidates  map[string][]string `json:"candidates,omitempty"`
		Idx         int                 `json:"idx,omitempty"`
		Chain       []string            `json:"chain,omitempty"`
		UserAddr    string              `json:"user_addr,omitempty"`
		Trace       bool                `json:"trace,omitempty"`
		SessionID   string              `json:"session_id,omitempty"`
		InstanceID  string              `json:"instance_id,omitempty"`
		CPU         float64             `json:"cpu,omitempty"`
		Memory      float64             `json:"memory,omitempty"`
		DurationSec float64             `json:"duration_sec,omitempty"`
	}

	req := Request{
		Type:    TypeSelect,
		Idx:     2,
		Chain:   []string{"127.0.0.1:9001"},
		TraceID: 1<<62 | 42,
		SpanID:  0xabc,
	}
	frame, err := (JSON{}).AppendRequest(nil, 1, &req)
	if err != nil {
		t.Fatal(err)
	}
	var old oldRequest
	if err := json.Unmarshal(frame, &old); err != nil {
		t.Fatalf("pre-extension peer failed to decode a traced frame: %v", err)
	}
	if old.Type != TypeSelect || old.Idx != 2 || len(old.Chain) != 1 {
		t.Fatalf("traced frame mangled the pre-extension fields: %+v", old)
	}

	// And the converse: a pre-extension frame (no trace keys) decodes
	// on the new peer with the context zeroed, even into a dirty struct.
	oldFrame, err := json.Marshal(oldRequest{Type: TypeProbe, Addr: "127.0.0.1:9009"})
	if err != nil {
		t.Fatal(err)
	}
	dirty := Request{TraceID: 99, SpanID: 99}
	if _, err := (JSON{}).DecodeRequest(oldFrame, &dirty); err != nil {
		t.Fatal(err)
	}
	if dirty.TraceID != 0 || dirty.SpanID != 0 || dirty.Type != TypeProbe {
		t.Fatalf("old frame decoded wrong on the new peer: %+v", dirty)
	}

	// The wire encoding omits the keys entirely when unset, so untraced
	// JSON frames are byte-identical to pre-extension output.
	plain, err := (JSON{}).AppendRequest(nil, 1, &Request{Type: TypeProbe})
	if err != nil {
		t.Fatal(err)
	}
	var asMap map[string]any
	if err := json.Unmarshal(plain, &asMap); err != nil {
		t.Fatal(err)
	}
	if _, ok := asMap["trace_id"]; ok {
		t.Fatal("untraced frame must omit trace_id")
	}
	if _, ok := asMap["span_id"]; ok {
		t.Fatal("untraced frame must omit span_id")
	}
}
