package wire

import (
	"bufio"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"math/bits"
	"sync"
)

// Binary frame layout (little-endian throughout):
//
//	offset 0..1   magic "QS" (0x51 0x53) — first byte ≠ '{' is what
//	              lets a server tell binary from JSON without config
//	offset 2      version (currently 1)
//	offset 3      message kind (Kind*; KindOther carries the string)
//	offset 4      flags (response / idempotent / ok / trace / trace-ctx)
//	offset 5..12  request correlation ID, uint64
//	offset 13..   body length as uvarint, then the body
//	last 4 bytes  CRC32C (Castagnoli) of everything preceding
//
// Body fields are fixed-order per struct: strings are uvarint length +
// bytes, integers are zigzag varints, floats are the uvarint of their
// byte-reversed IEEE 754 bits (see appendF64), sequences are a count
// prefix. Sequences whose JSON tag has omitempty use a plain count
// (JSON cannot distinguish nil from empty there either); the nested
// always-present sequences (Instance.Qin/Qout, candidate provider
// lists) use count+1 with 0 meaning nil, so binary and JSON decode to
// identical structs — the cross-codec differential test pins this.
// Requests carrying causal trace context append (TraceID, SpanID)
// uvarints after every other body field, gated by FlagTraceCtx.
const (
	magic0     = 0x51 // 'Q'
	magic1     = 0x53 // 'S'
	binVersion = 1

	offVersion = 2
	offKind    = 3
	offFlags   = 4
	offReqID   = 5

	// HeaderSize is the fixed binary header length in bytes.
	HeaderSize = 13

	crcSize  = 4
	minFrame = HeaderSize + 1 + crcSize // empty body, 1-byte length
)

// Header flag bits.
const (
	// FlagResponse marks a frame as a reply envelope.
	FlagResponse byte = 1 << 0
	// FlagIdempotent marks a request safe to retransmit; the UDP
	// transport reads it straight off the raw bytes (MessageFlags).
	FlagIdempotent byte = 1 << 1

	flagOK    byte = 1 << 2
	flagTrace byte = 1 << 3

	// FlagTraceCtx marks a request whose body tail carries the causal
	// trace context (TraceID, SpanID uvarints appended after every other
	// field). Gating the extension behind a flag keeps old frames
	// byte-identical; a decoder built without the flag rejects extended
	// frames as trailing bytes, and the documented rollback remains the
	// JSON codec, which ignores unknown fields (DESIGN §12).
	FlagTraceCtx byte = 1 << 4

	// FlagServing marks a frame whose body tail carries the serving-plane
	// fields (aggregate path/priority/deadline, gossip announcements,
	// shed/retry-after — DESIGN §14), appended after the trace-context
	// tail. Same extension discipline as FlagTraceCtx: frames without
	// serving fields stay byte-identical to the pre-extension format.
	FlagServing byte = 1 << 5

	// FlagCompressed marks a frame whose body is flate-compressed:
	// uvarint(raw body length) followed by the deflate stream. The CRC
	// trailer covers the compressed bytes as written.
	FlagCompressed byte = 1 << 6
	// FlagCompressOK on a request advertises that the sender can decode
	// compressed responses; a server only compresses replies to clients
	// that set it, so the negotiation needs no handshake round-trip.
	FlagCompressOK byte = 1 << 7
)

// MaxMessage bounds one framed message (body + envelope). Anything
// larger is a protocol error — decoders reject it before allocating.
const MaxMessage = 16 << 20

// Binary decode/validation errors. They are sentinels so the
// steady-state decode path never formats error strings.
var (
	ErrMagic     = errors.New("wire: bad magic (not a binary frame)")
	ErrVersion   = errors.New("wire: unsupported binary version")
	ErrCRC       = errors.New("wire: CRC32C mismatch (corrupt frame)")
	ErrTruncated = errors.New("wire: truncated frame")
	ErrTooLarge  = errors.New("wire: message exceeds MaxMessage")
	errEnvelope  = errors.New("wire: frame/role mismatch (request vs response)")
	errTrailing  = errors.New("wire: trailing bytes after body")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// IsBinary reports whether b starts like a binary frame (the
// negotiation byte check a server does before choosing a decoder).
func IsBinary(b []byte) bool {
	return len(b) >= 1 && b[0] == magic0
}

// MessageFlags returns the header flag byte of a framed binary
// message without decoding it (false when b is not a binary frame).
// The UDP transport uses this to learn whether a message it is about
// to send may be retransmitted.
func MessageFlags(b []byte) (byte, bool) {
	if len(b) < HeaderSize || b[0] != magic0 || b[1] != magic1 || b[offVersion] != binVersion {
		return 0, false
	}
	return b[offFlags], true
}

// maxIntern bounds the decode-side string table; maxInternLen bounds
// which strings are worth remembering (peer addresses, instance IDs,
// service names — the identities that repeat every request).
const (
	maxIntern    = 4096
	maxInternLen = 64
)

// Binary is the production codec. One instance serializes its
// encode/decode calls behind a mutex: that keeps the intern table and
// the reuse scratch free of finer-grained locking, and a full
// encode or decode is microseconds of pure CPU, far below the network
// time it sits behind. Create with NewBinary; each peer owns one.
type Binary struct {
	mu       sync.Mutex
	tab      map[string]string // decode-side intern table
	keys     []string          // encode scratch: sorted candidate keys
	candFree [][]string        // decode scratch: recycled provider lists

	// compressMin, when > 0, flate-compresses bodies of at least that
	// many bytes and advertises FlagCompressOK on requests. 0 (the
	// default) sends every frame uncompressed; decoding compressed
	// frames works either way. See SetCompression.
	compressMin int
}

// NewBinary returns a ready codec with an empty intern table.
func NewBinary() *Binary {
	return &Binary{tab: make(map[string]string, 256)}
}

// Name implements Codec.
func (*Binary) Name() string { return "binary" }

// intern returns a stable string for the byte content, allocating
// only the first time an identity is seen. The map lookup keyed by
// string(b) is the compiler-recognized no-allocation form.
func (c *Binary) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	// lint:allow hotalloc map lookup keyed by string(b) is the compiler-optimized non-allocating form
	if s, ok := c.tab[string(b)]; ok {
		return s
	}
	return c.internMiss(b)
}

// internMiss materializes a string on first sight and remembers it
// when it looks like a repeating identity. A full table is reset
// wholesale: cheap, amortized, and it re-adapts to the current
// working set instead of growing without bound.
//
// lint:coldpath first-sight string materialization; the steady state hits the intern table
func (c *Binary) internMiss(b []byte) string {
	s := string(b)
	if len(s) <= maxInternLen {
		if len(c.tab) >= maxIntern {
			clear(c.tab)
		}
		c.tab[s] = s
	}
	return s
}

// --- primitive appenders ---------------------------------------------------

// lint:hotpath varint append is the innermost encode primitive
func appendUvarint(b []byte, x uint64) []byte {
	for x >= 0x80 {
		b = append(b, byte(x)|0x80)
		x >>= 7
	}
	b = append(b, byte(x))
	return b
}

// lint:hotpath zigzag append sits under every integer field encode
func appendZigzag(b []byte, x int) []byte {
	ux := uint64(x) << 1
	if x < 0 {
		ux = ^ux
	}
	return appendUvarint(b, ux)
}

// lint:hotpath string append sits under every identity field encode
func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	b = append(b, s...)
	return b
}

// appendF64 encodes a float as the uvarint of its byte-reversed IEEE
// bits: real-world QoS values (rates, megabytes, seconds) have mostly
// zero mantissa tails, which byte reversal turns into leading zeros
// the varint drops — 512.0 costs 3 bytes instead of 8. Lossless for
// every bit pattern (reversal is a bijection), worst case 10 bytes.
//
// lint:hotpath float append sits under every float field encode
func appendF64(b []byte, f float64) []byte {
	return appendUvarint(b, bits.ReverseBytes64(math.Float64bits(f)))
}

// appendSeqLen encodes a count for a nil-preserving sequence:
// 0 = nil, n+1 = n elements.
func appendSeqLen(b []byte, n int, isNil bool) []byte {
	if isNil {
		return appendUvarint(b, 0)
	}
	return appendUvarint(b, uint64(n)+1)
}

// --- reader ----------------------------------------------------------------

// reader is a bounds-checked cursor over a frame body. Overruns set
// fail instead of returning errors so the field decoders stay
// branch-light; the caller checks fail once at the end.
type reader struct {
	data []byte
	pos  int
	fail bool
}

func (r *reader) remaining() int { return len(r.data) - r.pos }

// lint:hotpath single-byte read sits under every flag-byte field decode
func (r *reader) byte() byte {
	if r.pos >= len(r.data) {
		r.fail = true
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// lint:hotpath varint read is the innermost decode primitive
func (r *reader) uvarint() uint64 {
	var x uint64
	var shift uint
	for i := 0; i < 10; i++ {
		if r.pos >= len(r.data) {
			r.fail = true
			return 0
		}
		c := r.data[r.pos]
		r.pos++
		x |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return x
		}
		shift += 7
	}
	r.fail = true
	return 0
}

// lint:hotpath zigzag read sits under every integer field decode
func (r *reader) zigzag() int {
	ux := r.uvarint()
	x := int64(ux >> 1)
	if ux&1 != 0 {
		x = ^x
	}
	return int(x)
}

// lint:hotpath float read sits under every float field decode
func (r *reader) f64() float64 {
	return math.Float64frombits(bits.ReverseBytes64(r.uvarint()))
}

// bytes returns the next length-prefixed byte run, aliasing the frame
// buffer — callers must copy (intern does) before the buffer recycles.
//
// lint:hotpath length-prefixed read sits under every string field decode
func (r *reader) bytes() []byte {
	n := r.uvarint()
	if r.fail || n > uint64(r.remaining()) {
		r.fail = true
		return nil
	}
	out := r.data[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return out
}

// count reads a plain sequence count, rejecting counts that could not
// possibly fit in the remaining bytes (minSize is the smallest
// encodable element) — the anti-OOM guard for hostile frames.
func (r *reader) count(minSize int) int {
	n := r.uvarint()
	if r.fail || n > uint64(r.remaining()/minSize) {
		r.fail = true
		return 0
	}
	return int(n)
}

// seqLen reads a nil-preserving count (see appendSeqLen).
func (r *reader) seqLen(minSize int) (n int, isNil bool) {
	v := r.uvarint()
	if r.fail {
		return 0, true
	}
	if v == 0 {
		return 0, true
	}
	v--
	if v > uint64(r.remaining()/minSize) {
		r.fail = true
		return 0, true
	}
	return int(v), false
}

// --- framing ---------------------------------------------------------------

// appendHeader writes the fixed header with a zero length slot — the
// caller patches the length and CRC via finishFrame.
func appendHeader(b []byte, kind, flags byte, reqID uint64) []byte {
	b = append(b, magic0, magic1, binVersion, kind, flags,
		byte(reqID), byte(reqID>>8), byte(reqID>>16), byte(reqID>>24),
		byte(reqID>>32), byte(reqID>>40), byte(reqID>>48), byte(reqID>>56))
	return b
}

// finishFrame splices the uvarint body length between header and body
// and appends the CRC32C trailer. start is len(dst) before the header
// was appended; bodyStart is len(dst) just after the header.
func finishFrame(dst []byte, start, bodyStart int) ([]byte, error) {
	bodyLen := len(dst) - bodyStart
	if bodyLen > MaxMessage {
		return dst, ErrTooLarge
	}
	// Encode the length, then shift the body right by its width. The
	// shift copies within the same backing array; steady-state bodies
	// are small enough that this beats a second buffer.
	var lenBuf [10]byte
	n := 0
	{
		x := uint64(bodyLen)
		for x >= 0x80 {
			lenBuf[n] = byte(x) | 0x80
			x >>= 7
			n++
		}
		lenBuf[n] = byte(x)
		n++
	}
	dst = append(dst, lenBuf[:n]...) // grow by the shift width
	copy(dst[bodyStart+n:], dst[bodyStart:len(dst)-n])
	copy(dst[bodyStart:], lenBuf[:n])
	crc := crc32.Checksum(dst[start:], castagnoli)
	dst = append(dst, byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24))
	return dst, nil
}

// openFrame validates magic, version and CRC and returns the header
// flag byte, request ID and body bytes.
func openFrame(data []byte) (kind, flags byte, reqID uint64, body []byte, err error) {
	if len(data) < minFrame {
		return 0, 0, 0, nil, ErrTruncated
	}
	if data[0] != magic0 || data[1] != magic1 {
		return 0, 0, 0, nil, ErrMagic
	}
	if data[offVersion] != binVersion {
		return 0, 0, 0, nil, ErrVersion
	}
	if len(data) > MaxMessage+HeaderSize+crcSize+10 {
		return 0, 0, 0, nil, ErrTooLarge
	}
	payloadEnd := len(data) - crcSize
	want := uint32(data[payloadEnd]) | uint32(data[payloadEnd+1])<<8 |
		uint32(data[payloadEnd+2])<<16 | uint32(data[payloadEnd+3])<<24
	if crc32.Checksum(data[:payloadEnd], castagnoli) != want {
		return 0, 0, 0, nil, ErrCRC
	}
	for i := 0; i < 8; i++ {
		reqID |= uint64(data[offReqID+i]) << (8 * i)
	}
	r := reader{data: data[:payloadEnd], pos: HeaderSize}
	bodyLen := r.uvarint()
	if r.fail || bodyLen != uint64(payloadEnd-r.pos) {
		return 0, 0, 0, nil, errTrailing
	}
	return data[offKind], data[offFlags], reqID, data[r.pos:payloadEnd], nil
}

// ReadFrame reads one binary frame from br into buf (reusing its
// capacity) and returns the full frame bytes, ready for Decode*. The
// stream position is left exactly after the frame, so frames and
// (newline-delimited) JSON messages can share a connection protocol.
func ReadFrame(br *bufio.Reader, buf []byte) ([]byte, error) {
	buf = buf[:0]
	if cap(buf) < HeaderSize {
		buf = make([]byte, 0, 512)
	}
	buf = buf[:HeaderSize]
	if _, err := io.ReadFull(br, buf); err != nil {
		return buf, err
	}
	if buf[0] != magic0 || buf[1] != magic1 {
		return buf, ErrMagic
	}
	if buf[offVersion] != binVersion {
		return buf, ErrVersion
	}
	var bodyLen uint64
	var shift uint
	for i := 0; ; i++ {
		if i >= 10 {
			return buf, ErrTooLarge
		}
		c, err := br.ReadByte()
		if err != nil {
			return buf, err
		}
		buf = append(buf, c)
		bodyLen |= uint64(c&0x7f) << shift
		if c < 0x80 {
			break
		}
		shift += 7
	}
	if bodyLen > MaxMessage {
		return buf, ErrTooLarge
	}
	head := len(buf)
	total := head + int(bodyLen) + crcSize
	if cap(buf) < total {
		grown := make([]byte, total)
		copy(grown, buf)
		buf = grown
	} else {
		buf = buf[:total]
	}
	if _, err := io.ReadFull(br, buf[head:]); err != nil {
		return buf, err
	}
	return buf, nil
}

// --- encode ----------------------------------------------------------------

// AppendRequest implements Codec: appends one framed binary request
// to dst, reusing its capacity. The steady-state path is
// allocation-free (hotalloc-gated); dst growth amortizes away once
// the buffer has seen the working set's largest message.
//
// lint:hotpath per-RPC request encode; pooled buffers keep the steady state allocation-free
func (c *Binary) AppendRequest(dst []byte, reqID uint64, req *Request) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	kind := kindOf(req.Type)
	flags := byte(0)
	if Idempotent(req.Type) {
		flags |= FlagIdempotent
	}
	if req.Trace {
		flags |= flagTrace
	}
	if req.TraceID != 0 || req.SpanID != 0 {
		flags |= FlagTraceCtx
	}
	if servingRequest(req) {
		flags |= FlagServing
	}
	if c.compressMin > 0 {
		flags |= FlagCompressOK
	}
	start := len(dst)
	dst = appendHeader(dst, kind, flags, reqID)
	bodyStart := len(dst)
	if kind == KindOther {
		dst = appendString(dst, req.Type)
	}
	dst = appendString(dst, req.Addr)
	dst = appendString(dst, req.Service)
	dst = appendString(dst, req.UserAddr)
	dst = appendString(dst, req.SessionID)
	dst = appendString(dst, req.InstanceID)
	dst = appendZigzag(dst, req.Idx)
	dst = appendF64(dst, req.CPU)
	dst = appendF64(dst, req.Memory)
	dst = appendF64(dst, req.DurationSec)
	dst = appendUvarint(dst, uint64(len(req.Instances)))
	for i := range req.Instances {
		dst = appendInstance(dst, &req.Instances[i])
	}
	dst = appendUvarint(dst, uint64(len(req.Candidates)))
	if len(req.Candidates) > 0 {
		c.keys = c.keys[:0]
		for k := range req.Candidates {
			c.keys = append(c.keys, k)
		}
		sortStrings(c.keys) // deterministic frames regardless of map order
		for _, k := range c.keys {
			dst = appendString(dst, k)
			provs := req.Candidates[k]
			dst = appendSeqLen(dst, len(provs), provs == nil)
			for _, p := range provs {
				dst = appendString(dst, p)
			}
		}
	}
	dst = appendUvarint(dst, uint64(len(req.Chain)))
	for _, s := range req.Chain {
		dst = appendString(dst, s)
	}
	// Extension tails: present only when their flag is set, so frames
	// without the extension stay byte-identical to the older format.
	if flags&FlagTraceCtx != 0 {
		dst = appendUvarint(dst, req.TraceID)
		dst = appendUvarint(dst, req.SpanID)
	}
	if flags&FlagServing != 0 {
		dst = appendUvarint(dst, uint64(len(req.Services)))
		for _, s := range req.Services {
			dst = appendString(dst, s)
		}
		dst = appendF64(dst, req.MinRate)
		dst = appendZigzag(dst, req.Priority)
		dst = appendF64(dst, req.Deadline)
		dst = append(dst, boolByte(req.DTolerant))
		dst = appendUvarint(dst, uint64(len(req.Anns)))
		for i := range req.Anns {
			dst = appendAnn(dst, &req.Anns[i])
		}
	}
	if c.compressMin > 0 && len(dst)-bodyStart >= c.compressMin {
		dst = compressBody(dst, start, bodyStart)
	}
	return finishFrame(dst, start, bodyStart)
}

// servingRequest reports whether any serving-plane request field is
// set (FlagServing travels only when the tail has content, keeping
// pre-serving frames byte-identical). The float tests compare bit
// patterns, mirroring the JSON omitempty zero test.
func servingRequest(req *Request) bool {
	return len(req.Services) > 0 || math.Float64bits(req.MinRate) != 0 ||
		req.Priority != 0 || math.Float64bits(req.Deadline) != 0 ||
		req.DTolerant || len(req.Anns) > 0
}

// servingResponse is servingRequest for the reply envelope.
func servingResponse(resp *Response) bool {
	return resp.SessionID != "" || math.Float64bits(resp.Cost) != 0 ||
		resp.Shed || math.Float64bits(resp.RetryAfterSec) != 0
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// lint:hotpath announcement encode runs per entry in every gossip batch
func appendAnn(dst []byte, a *Ann) []byte {
	dst = appendString(dst, a.Addr)
	dst = appendUvarint(dst, uint64(len(a.Avail)))
	for _, f := range a.Avail {
		dst = appendF64(dst, f)
	}
	dst = appendF64(dst, a.UptimeSec)
	dst = appendF64(dst, a.AgeSec)
	dst = appendUvarint(dst, uint64(len(a.Services)))
	for _, s := range a.Services {
		dst = appendString(dst, s)
	}
	return dst
}

// AppendResponse implements Codec. It assumes the receiver can decode
// compressed frames; servers replying to a request whose header did
// not advertise FlagCompressOK must use AppendResponseNegotiated.
//
// lint:hotpath per-RPC response encode; pooled buffers keep the steady state allocation-free
func (c *Binary) AppendResponse(dst []byte, reqID uint64, resp *Response) ([]byte, error) {
	return c.AppendResponseNegotiated(dst, reqID, resp, true)
}

// AppendResponseNegotiated is AppendResponse with the client's
// compression advertisement: compressOK is the request header's
// FlagCompressOK bit (read via MessageFlags), so a server never sends
// a compressed reply to a client that cannot decode one — the
// flag-negotiation that makes compression rollout reversible.
//
// lint:hotpath per-RPC response encode; pooled buffers keep the steady state allocation-free
func (c *Binary) AppendResponseNegotiated(dst []byte, reqID uint64, resp *Response, compressOK bool) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	flags := FlagResponse
	if resp.OK {
		flags |= flagOK
	}
	if servingResponse(resp) {
		flags |= FlagServing
	}
	start := len(dst)
	dst = appendHeader(dst, KindOther, flags, reqID)
	bodyStart := len(dst)
	dst = appendString(dst, resp.Err)
	dst = appendF64(dst, resp.UptimeSec)
	dst = appendUvarint(dst, uint64(len(resp.Members)))
	for _, s := range resp.Members {
		dst = appendString(dst, s)
	}
	dst = appendUvarint(dst, uint64(len(resp.Offers)))
	for i := range resp.Offers {
		dst = appendInstance(dst, &resp.Offers[i].Instance)
		dst = appendString(dst, resp.Offers[i].Provider)
	}
	dst = appendUvarint(dst, uint64(len(resp.Avail)))
	for _, f := range resp.Avail {
		dst = appendF64(dst, f)
	}
	dst = appendUvarint(dst, uint64(len(resp.Chain)))
	for _, s := range resp.Chain {
		dst = appendString(dst, s)
	}
	dst = appendUvarint(dst, uint64(len(resp.Hops)))
	for i := range resp.Hops {
		h := &resp.Hops[i]
		dst = appendZigzag(dst, h.Idx)
		dst = appendString(dst, h.At)
		dst = appendString(dst, h.Inst)
		dst = appendString(dst, h.Chosen)
		dst = appendString(dst, h.Mode)
		dst = appendUvarint(dst, uint64(len(h.Cands)))
		for j := range h.Cands {
			cd := &h.Cands[j]
			dst = appendString(dst, cd.Addr)
			dst = appendF64(dst, cd.Phi)
			dst = appendString(dst, cd.Reason)
		}
	}
	if flags&FlagServing != 0 {
		dst = appendString(dst, resp.SessionID)
		dst = appendF64(dst, resp.Cost)
		dst = appendF64(dst, resp.RetryAfterSec)
		dst = append(dst, boolByte(resp.Shed))
	}
	if compressOK && c.compressMin > 0 && len(dst)-bodyStart >= c.compressMin {
		dst = compressBody(dst, start, bodyStart)
	}
	return finishFrame(dst, start, bodyStart)
}

// lint:hotpath instance encode runs per offer in every discovery reply
func appendInstance(dst []byte, in *Instance) []byte {
	dst = appendString(dst, in.ID)
	dst = appendString(dst, in.Service)
	dst = appendParams(dst, in.Qin)
	dst = appendParams(dst, in.Qout)
	dst = appendF64(dst, in.CPU)
	dst = appendF64(dst, in.Memory)
	return appendF64(dst, in.Kbps)
}

// lint:hotpath parameter-vector encode runs per instance field
func appendParams(dst []byte, ps []Param) []byte {
	dst = appendSeqLen(dst, len(ps), ps == nil)
	for i := range ps {
		dst = appendString(dst, ps[i].Name)
		dst = appendString(dst, ps[i].Sym)
		dst = appendF64(dst, ps[i].Lo)
		dst = appendF64(dst, ps[i].Hi)
	}
	return dst
}

// --- decode ----------------------------------------------------------------

// minimum encoded sizes used by the anti-OOM count guards.
const (
	minStr   = 1                       // empty string = 1 length byte
	minF64   = 1                       // varint float: 1 byte when zero
	minParam = 2*minStr + 2*minF64     // two strings + two floats
	minInst  = 2*minStr + 2 + 3*minF64 // strings + two seq counts + floats
	minCand  = 2*minStr + minF64       // addr + reason + phi
	minHop   = 1 + 4*minStr + 1        // idx + four strings + cand count
	minOffer = minInst + minStr        // instance + provider
	minAnn   = minStr + 1 + 2*minF64 + 1
	// ^ addr + avail count + uptime + age + services count
)

// DecodeRequest implements Codec: overwrites every field of req,
// reusing its slice and map capacity, so decoding the same message
// shapes over and over settles at zero allocations per call. Strings
// are interned; nothing in req aliases data after the call returns.
//
// lint:hotpath per-RPC request decode; interning + capacity reuse keep the steady state allocation-free
func (c *Binary) DecodeRequest(data []byte, req *Request) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	kind, flags, reqID, body, err := openFrame(data)
	if err != nil {
		return 0, err
	}
	if flags&FlagResponse != 0 {
		return 0, errEnvelope
	}
	if flags&FlagCompressed != 0 {
		buf, cerr := inflateBody(body)
		if cerr != nil {
			return 0, cerr
		}
		err = c.decodeRequestBody(kind, flags, buf.B, req)
		PutBuf(buf)
		if err != nil {
			return 0, err
		}
		return reqID, nil
	}
	if err := c.decodeRequestBody(kind, flags, body, req); err != nil {
		return 0, err
	}
	return reqID, nil
}

// decodeRequestBody decodes a (possibly inflated) request body.
//
// lint:hotpath per-RPC request decode body walk
func (c *Binary) decodeRequestBody(kind, flags byte, body []byte, req *Request) error {
	r := reader{data: body}
	if kind == KindOther {
		req.Type = c.intern(r.bytes())
	} else {
		req.Type = typeOf(kind)
	}
	req.Trace = flags&flagTrace != 0
	req.Addr = c.intern(r.bytes())
	req.Service = c.intern(r.bytes())
	req.UserAddr = c.intern(r.bytes())
	req.SessionID = c.intern(r.bytes())
	req.InstanceID = c.intern(r.bytes())
	req.Idx = r.zigzag()
	req.CPU = r.f64()
	req.Memory = r.f64()
	req.DurationSec = r.f64()
	req.Instances = c.decodeInstances(&r, req.Instances)
	req.Candidates = c.decodeCandidates(&r, req.Candidates)
	req.Chain = c.decodeStrings(&r, req.Chain)
	if flags&FlagTraceCtx != 0 {
		req.TraceID = r.uvarint()
		req.SpanID = r.uvarint()
	} else {
		req.TraceID, req.SpanID = 0, 0
	}
	if flags&FlagServing != 0 {
		req.Services = c.decodeStrings(&r, req.Services)
		req.MinRate = r.f64()
		req.Priority = r.zigzag()
		req.Deadline = r.f64()
		req.DTolerant = r.byte() != 0
		req.Anns = c.decodeAnns(&r, req.Anns)
	} else {
		req.Services = nil
		req.MinRate, req.Priority, req.Deadline = 0, 0, 0
		req.DTolerant = false
		req.Anns = nil
	}
	if r.fail {
		return ErrTruncated
	}
	if r.remaining() != 0 {
		return errTrailing
	}
	return nil
}

// decodeAnns reads a gossip announcement batch, reusing dst capacity.
//
// lint:hotpath announcement decode runs per entry in every gossip batch
func (c *Binary) decodeAnns(r *reader, dst []Ann) []Ann {
	n := r.count(minAnn)
	if n == 0 {
		return nil
	}
	if cap(dst) < n {
		// lint:allow hotalloc grows once per working-set-larger batch shape, then reuses
		dst = make([]Ann, n)
	}
	dst = dst[:n]
	for i := range dst {
		a := &dst[i]
		a.Addr = c.intern(r.bytes())
		m := r.count(minF64)
		if m == 0 {
			a.Avail = nil
		} else {
			av := a.Avail[:0]
			for j := 0; j < m; j++ {
				av = append(av, r.f64())
			}
			a.Avail = av
		}
		a.UptimeSec = r.f64()
		a.AgeSec = r.f64()
		a.Services = c.decodeStrings(r, a.Services)
	}
	return dst
}

// DecodeResponse implements Codec.
//
// lint:hotpath per-RPC response decode; interning + capacity reuse keep the steady state allocation-free
func (c *Binary) DecodeResponse(data []byte, resp *Response) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, flags, reqID, body, err := openFrame(data)
	if err != nil {
		return 0, err
	}
	if flags&FlagResponse == 0 {
		return 0, errEnvelope
	}
	if flags&FlagCompressed != 0 {
		buf, cerr := inflateBody(body)
		if cerr != nil {
			return 0, cerr
		}
		err = c.decodeResponseBody(flags, buf.B, resp)
		PutBuf(buf)
		if err != nil {
			return 0, err
		}
		return reqID, nil
	}
	if err := c.decodeResponseBody(flags, body, resp); err != nil {
		return 0, err
	}
	return reqID, nil
}

// decodeResponseBody decodes a (possibly inflated) response body.
//
// lint:hotpath per-RPC response decode body walk
func (c *Binary) decodeResponseBody(flags byte, body []byte, resp *Response) error {
	r := reader{data: body}
	resp.OK = flags&flagOK != 0
	resp.Err = c.intern(r.bytes())
	resp.UptimeSec = r.f64()
	resp.Members = c.decodeStrings(&r, resp.Members)
	n := r.count(minOffer)
	if n == 0 {
		resp.Offers = nil
	} else {
		s := resp.Offers
		if cap(s) < n {
			// lint:allow hotalloc grows once per working-set-larger message shape, then reuses
			s = make([]Offer, n)
		}
		s = s[:n]
		for i := range s {
			c.decodeInstance(&r, &s[i].Instance)
			s[i].Provider = c.intern(r.bytes())
		}
		resp.Offers = s
	}
	n = r.count(minF64)
	if n == 0 {
		resp.Avail = nil
	} else {
		a := resp.Avail[:0]
		for i := 0; i < n; i++ {
			a = append(a, r.f64())
		}
		resp.Avail = a
	}
	resp.Chain = c.decodeStrings(&r, resp.Chain)
	n = r.count(minHop)
	if n == 0 {
		resp.Hops = nil
	} else {
		s := resp.Hops
		if cap(s) < n {
			// lint:allow hotalloc grows once per working-set-larger message shape, then reuses
			s = make([]Hop, n)
		}
		s = s[:n]
		for i := range s {
			h := &s[i]
			h.Idx = r.zigzag()
			h.At = c.intern(r.bytes())
			h.Inst = c.intern(r.bytes())
			h.Chosen = c.intern(r.bytes())
			h.Mode = c.intern(r.bytes())
			m := r.count(minCand)
			if m == 0 {
				h.Cands = nil
				continue
			}
			cs := h.Cands
			if cap(cs) < m {
				// lint:allow hotalloc grows once per working-set-larger message shape, then reuses
				cs = make([]Cand, m)
			}
			cs = cs[:m]
			for j := range cs {
				cs[j].Addr = c.intern(r.bytes())
				cs[j].Phi = r.f64()
				cs[j].Reason = c.intern(r.bytes())
			}
			h.Cands = cs
		}
		resp.Hops = s
	}
	if flags&FlagServing != 0 {
		resp.SessionID = c.intern(r.bytes())
		resp.Cost = r.f64()
		resp.RetryAfterSec = r.f64()
		resp.Shed = r.byte() != 0
	} else {
		resp.SessionID = ""
		resp.Cost, resp.RetryAfterSec = 0, 0
		resp.Shed = false
	}
	if r.fail {
		return ErrTruncated
	}
	if r.remaining() != 0 {
		return errTrailing
	}
	return nil
}

// decodeStrings reads a plain-count string sequence into dst's
// capacity (nil when empty, matching JSON omitempty round-trips).
//
// lint:hotpath string-sequence decode sits under members/chain fields
func (c *Binary) decodeStrings(r *reader, dst []string) []string {
	n := r.count(minStr)
	if n == 0 {
		return nil
	}
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, c.intern(r.bytes()))
	}
	return dst
}

// decodeParams reads a nil-preserving Param sequence.
//
// lint:hotpath parameter-vector decode runs per instance field
func (c *Binary) decodeParams(r *reader, dst []Param) []Param {
	n, isNil := r.seqLen(minParam)
	if isNil {
		return nil
	}
	if n == 0 {
		return emptyParams
	}
	if cap(dst) < n {
		// lint:allow hotalloc grows once per working-set-larger message shape, then reuses
		dst = make([]Param, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i].Name = c.intern(r.bytes())
		dst[i].Sym = c.intern(r.bytes())
		dst[i].Lo = r.f64()
		dst[i].Hi = r.f64()
	}
	return dst
}

// lint:hotpath instance decode runs per offer in every discovery reply
func (c *Binary) decodeInstance(r *reader, in *Instance) {
	in.ID = c.intern(r.bytes())
	in.Service = c.intern(r.bytes())
	in.Qin = c.decodeParams(r, in.Qin)
	in.Qout = c.decodeParams(r, in.Qout)
	in.CPU = r.f64()
	in.Memory = r.f64()
	in.Kbps = r.f64()
}

// lint:hotpath instance-sequence decode sits under every select request
func (c *Binary) decodeInstances(r *reader, dst []Instance) []Instance {
	n := r.count(minInst)
	if n == 0 {
		return nil
	}
	if cap(dst) < n {
		// lint:allow hotalloc grows once per working-set-larger message shape, then reuses
		dst = make([]Instance, n)
	}
	dst = dst[:n]
	for i := range dst {
		c.decodeInstance(r, &dst[i])
	}
	return dst
}

// decodeCandidates reads the candidate map, recycling the previous
// decode's provider slices through candFree so a stable request shape
// settles at zero allocations.
//
// lint:hotpath candidate-map decode sits under every select request
func (c *Binary) decodeCandidates(r *reader, m map[string][]string) map[string][]string {
	for k, v := range m {
		if len(c.candFree) < 64 {
			c.candFree = append(c.candFree, v[:0])
		}
		delete(m, k)
	}
	n := r.count(minStr + 1)
	if n == 0 {
		return nil
	}
	if m == nil {
		// lint:allow hotalloc allocated once per reused Request struct, then recycled across decodes
		m = make(map[string][]string, n)
	}
	for i := 0; i < n; i++ {
		k := c.intern(r.bytes())
		cnt, isNil := r.seqLen(minStr)
		if isNil {
			m[k] = nil
			continue
		}
		if cnt == 0 {
			m[k] = emptyStrings
			continue
		}
		var vals []string
		if l := len(c.candFree); l > 0 {
			vals = c.candFree[l-1]
			c.candFree = c.candFree[:l-1]
		}
		for j := 0; j < cnt; j++ {
			vals = append(vals, c.intern(r.bytes())) // recycled via candFree; grows only when the shape grows
		}
		m[k] = vals
	}
	return m
}

// Shared empties keep "present but empty" JSON-compatible without
// per-decode allocation.
var (
	emptyStrings = []string{}
	emptyParams  = []Param{}
)

// sortStrings is a small insertion sort: candidate maps hold a
// handful of keys, and the hand-rolled loop keeps sort.Slice's
// closure allocation off the encode path.
//
// lint:hotpath key ordering runs inside every candidate-map encode
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
