package wire

import (
	"bytes"
	"testing"
)

// fuzzSeeds returns valid frames of both directions plus assorted
// garbage, so the fuzzer starts from structurally interesting input.
func fuzzSeeds(tb testing.TB) [][]byte {
	bin := NewBinary()
	var seeds [][]byte
	for i, req := range sampleRequests() {
		b, err := bin.AppendRequest(nil, uint64(i), &req)
		if err != nil {
			tb.Fatal(err)
		}
		seeds = append(seeds, b)
	}
	for i, resp := range sampleResponses() {
		b, err := bin.AppendResponse(nil, uint64(i), &resp)
		if err != nil {
			tb.Fatal(err)
		}
		seeds = append(seeds, b)
	}
	seeds = append(seeds,
		[]byte{},
		[]byte("{\"type\":\"join\"}\n"),
		[]byte{magic0, magic1, binVersion},
		bytes.Repeat([]byte{magic0}, 64),
		AppendPacket(nil, &Packet{Type: PktData, MsgID: 9, FragIdx: 0, FragCount: 1, Payload: []byte("hi")}),
	)
	// Compressed frames: the decoder inflates these regardless of its
	// own compression setting, and canonicality still holds because
	// re-encoding goes through the (non-compressing) default codec.
	comp := NewBinary()
	comp.SetCompression(1)
	if b, err := comp.AppendRequest(nil, 99, &sampleRequests()[4]); err == nil {
		seeds = append(seeds, b)
	}
	big := bigLookupResponse()
	if b, err := comp.AppendResponse(nil, 99, &big); err == nil {
		seeds = append(seeds, b)
	}
	return seeds
}

// FuzzBinaryDecode throws arbitrary bytes at every decoder: none may
// panic or allocate unboundedly, and anything that decodes cleanly
// must be canonical — re-encoding the decoded struct and decoding
// again must reproduce byte-identical frames. (Bytes, not structs:
// fuzzed floats can be NaN, which reflect.DeepEqual rejects.)
func FuzzBinaryDecode(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	bin := NewBinary()
	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		if _, err := bin.DecodeRequest(data, &req); err == nil {
			re1, err := bin.AppendRequest(nil, 1, &req)
			if err != nil {
				t.Fatalf("accepted request failed to re-encode: %v", err)
			}
			var req2 Request
			if _, err := bin.DecodeRequest(re1, &req2); err != nil {
				t.Fatalf("re-encoded request failed to decode: %v", err)
			}
			re2, err := bin.AppendRequest(nil, 1, &req2)
			if err != nil {
				t.Fatalf("second re-encode failed: %v", err)
			}
			if !bytes.Equal(re1, re2) {
				t.Fatalf("request not canonical:\n1st: %x\n2nd: %x", re1, re2)
			}
		}
		var resp Response
		if _, err := bin.DecodeResponse(data, &resp); err == nil {
			re1, err := bin.AppendResponse(nil, 1, &resp)
			if err != nil {
				t.Fatalf("accepted response failed to re-encode: %v", err)
			}
			var resp2 Response
			if _, err := bin.DecodeResponse(re1, &resp2); err != nil {
				t.Fatalf("re-encoded response failed to decode: %v", err)
			}
			re2, err := bin.AppendResponse(nil, 1, &resp2)
			if err != nil {
				t.Fatalf("second re-encode failed: %v", err)
			}
			if !bytes.Equal(re1, re2) {
				t.Fatalf("response not canonical:\n1st: %x\n2nd: %x", re1, re2)
			}
		}
		var p Packet
		_ = ParsePacket(data, &p) // must not panic
	})
}

// TestFuzzSeedsClean runs the fuzz corpus as a plain test so the
// property holds even when ci runs without fuzzing support.
func TestFuzzSeedsClean(t *testing.T) {
	bin := NewBinary()
	for i, data := range fuzzSeeds(t) {
		var req Request
		var resp Response
		var p Packet
		_, _ = bin.DecodeRequest(data, &req)
		_, _ = bin.DecodeResponse(data, &resp)
		_ = ParsePacket(data, &p)
		_ = i
	}
}
