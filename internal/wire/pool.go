package wire

import "sync"

// Buffer pooling: the encode→send→receive→decode path borrows byte
// slices here instead of allocating. Pools are length-classed slabs —
// a handful of sync.Pools keyed by capacity class — so a 200-byte
// probe reply does not pin a megabyte slab and a fragmented select
// request does not thrash the small class. Returning a buffer to the
// wrong class is impossible: the class index rides inside Buf.
//
// Class sizes follow the traffic shape: most RPCs fit one MTU (512 B /
// 4 KiB), discovery fan-in replies fit 64 KiB, and the 1 MiB class
// covers reassembled multi-fragment messages up to the historical
// bufio reader bound in protocol.go.
var bufClasses = [...]int{512, 4 << 10, 64 << 10, 1 << 20}

// Buf is a pooled byte buffer. Use B (typically `buf.B = buf.B[:0]`
// then append) and return it with PutBuf when done; after PutBuf the
// slice must not be touched.
type Buf struct {
	B     []byte
	class int8
}

var bufPools = func() [len(bufClasses)]*sync.Pool {
	var ps [len(bufClasses)]*sync.Pool
	for i := range ps {
		size, class := bufClasses[i], int8(i)
		ps[i] = &sync.Pool{New: func() any {
			return &Buf{B: make([]byte, 0, size), class: class}
		}}
	}
	return ps
}()

// GetBuf returns a pooled buffer whose capacity is at least n (n may
// be 0 for "smallest class"). Requests beyond the largest class get a
// plain unpooled allocation; PutBuf quietly drops those.
//
// lint:hotpath buffer checkout is the allocation the pool exists to avoid
func GetBuf(n int) *Buf {
	for i := range bufClasses {
		if n <= bufClasses[i] {
			b := bufPools[i].Get().(*Buf)
			b.B = b.B[:0]
			return b
		}
	}
	// lint:allow hotalloc oversize (>1 MiB) buffers are off-pool by design; MaxMessage bounds them
	return &Buf{B: make([]byte, 0, n), class: -1}
}

// PutBuf returns a buffer to a class pool. The invariant is that pool
// i only holds buffers with capacity ≥ bufClasses[i], so a buffer is
// filed under the largest class its capacity covers: one that grew
// past its birth class migrates upward (a working set that settles at
// a larger message shape stops re-allocating), and an off-pool
// oversize buffer joins the largest class.
func PutBuf(b *Buf) {
	if b == nil {
		return
	}
	c := cap(b.B)
	for i := len(bufClasses) - 1; i >= 0; i-- {
		if c >= bufClasses[i] {
			b.class = int8(i)
			b.B = b.B[:0]
			bufPools[i].Put(b)
			return
		}
	}
}
