package wire

import (
	"bufio"
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// sampleInstance returns a fully-populated wire instance.
func sampleInstance(id string) Instance {
	return Instance{
		ID:      id,
		Service: "transcode",
		Qin: []Param{
			{Name: "rate", Sym: "kbps", Lo: 96, Hi: 512},
			{Name: "latency", Lo: 0.5, Hi: 20},
		},
		Qout:   []Param{{Name: "rate", Sym: "kbps", Lo: 64, Hi: 256}},
		CPU:    1.5,
		Memory: 256,
		Kbps:   512,
	}
}

// sampleRequests covers every RPC type plus the KindOther escape
// hatch and the nil/empty edge shapes the codec must preserve.
func sampleRequests() []Request {
	return []Request{
		{Type: TypeJoin, Addr: "127.0.0.1:9001"},
		{Type: TypeLeave, Addr: "127.0.0.1:9001"},
		{Type: TypeLookup, Service: "transcode"},
		{Type: TypeProbe},
		{
			Type:      TypeSelect,
			Instances: []Instance{sampleInstance("i0"), sampleInstance("i1")},
			Candidates: map[string][]string{
				"i0": {"127.0.0.1:9001", "127.0.0.1:9002"},
				"i1": {"127.0.0.1:9003"},
			},
			Idx:      1,
			Chain:    []string{"127.0.0.1:9001"},
			UserAddr: "127.0.0.1:9000",
			Trace:    true,
		},
		{Type: TypeReserve, SessionID: "s-1", InstanceID: "i0", CPU: 0.5, Memory: 64, DurationSec: 30},
		{Type: TypeRelease, SessionID: "s-1", InstanceID: "i0"},
		{Type: "future-op", Addr: "somewhere", Idx: -7},
		{}, // zero value: Type "" travels as KindOther
		{ // nil/empty shape edges
			Type: TypeSelect,
			Instances: []Instance{
				{ID: "bare", Service: "s"},                                  // nil qin/qout
				{ID: "empt", Service: "s", Qin: []Param{}, Qout: []Param{}}, // present but empty
			},
			Candidates: map[string][]string{"bare": nil, "empt": {}},
		},
		{ // trace context rides any request type, with full 64-bit IDs
			Type:    TypeProbe,
			TraceID: 1<<63 | 0xdeadbeef,
			SpanID:  0x1234567890abcdef,
		},
		{ // aggregate: the serving-plane request shape (FlagServing tail)
			Type:        TypeAggregate,
			Addr:        "127.0.0.1:9000",
			Services:    []string{"source", "transcode", "player"},
			MinRate:     15,
			Priority:    2,
			Deadline:    0.25,
			DTolerant:   true,
			DurationSec: 30,
		},
		{ // gossip: batched announcements, with nil-avail edge
			Type: TypeGossip,
			Addr: "127.0.0.1:9001",
			Anns: []Ann{
				{Addr: "127.0.0.1:9002", Avail: []float64{500, 256}, UptimeSec: 3600,
					AgeSec: 0.5, Services: []string{"transcode", "player"}},
				{Addr: "127.0.0.1:9003", UptimeSec: 10},
			},
		},
		{ // serving tail composes with the trace-context tail
			Type:     TypeAggregate,
			Services: []string{"source"},
			Priority: -1,
			TraceID:  42,
			SpanID:   43,
		},
	}
}

func sampleResponses() []Response {
	return []Response{
		{OK: true, Members: []string{"127.0.0.1:9001", "127.0.0.1:9002"}},
		{OK: false, Err: "no candidate for instance i0"},
		{OK: true, Offers: []Offer{
			{Instance: sampleInstance("i0"), Provider: "127.0.0.1:9001"},
			{Instance: sampleInstance("i1"), Provider: "127.0.0.1:9002"},
		}},
		{OK: true, Avail: []float64{1.5, 256, 0}, UptimeSec: 1234.5},
		{OK: true, Chain: []string{"127.0.0.1:9001", "127.0.0.1:9002"}, Hops: []Hop{
			{Idx: 0, At: "127.0.0.1:9001", Inst: "i0", Chosen: "127.0.0.1:9002", Mode: "remote",
				Cands: []Cand{
					{Addr: "127.0.0.1:9002", Phi: 0.82, Reason: "max-phi"},
					{Addr: "127.0.0.1:9003", Reason: "probe-failed"},
				}},
			{Idx: 1, At: "127.0.0.1:9002", Inst: "i1", Mode: "local"},
		}},
		{},
		{ // aggregate success: serving-plane reply fields
			OK: true, SessionID: "127.0.0.1:9000/1", Cost: 0.4231,
			Chain: []string{"127.0.0.1:9001", "127.0.0.1:9002"},
		},
		{ // backpressure: shed with a deterministic retry-after hint
			Err: "shed: queue full", Shed: true, RetryAfterSec: 0.2,
		},
	}
}

// TestCrossCodecDifferential is the satellite differential test: for
// every message shape, encoding+decoding with JSON and with binary
// must land on identical structs.
func TestCrossCodecDifferential(t *testing.T) {
	bin := NewBinary()
	js := JSON{}
	for i, req := range sampleRequests() {
		var jb, bb []byte
		jb, err := js.AppendRequest(jb, 7, &req)
		if err != nil {
			t.Fatalf("req %d: json encode: %v", i, err)
		}
		bb, err = bin.AppendRequest(bb, 7, &req)
		if err != nil {
			t.Fatalf("req %d: binary encode: %v", i, err)
		}
		var jr, br Request
		if _, err := js.DecodeRequest(jb, &jr); err != nil {
			t.Fatalf("req %d: json decode: %v", i, err)
		}
		id, err := bin.DecodeRequest(bb, &br)
		if err != nil {
			t.Fatalf("req %d: binary decode: %v", i, err)
		}
		if id != 7 {
			t.Fatalf("req %d: reqID = %d, want 7", i, id)
		}
		if !reflect.DeepEqual(jr, br) {
			t.Errorf("req %d: codec divergence\njson:   %+v\nbinary: %+v", i, jr, br)
		}
	}
	for i, resp := range sampleResponses() {
		var jb, bb []byte
		jb, err := js.AppendResponse(jb, 9, &resp)
		if err != nil {
			t.Fatalf("resp %d: json encode: %v", i, err)
		}
		bb, err = bin.AppendResponse(bb, 9, &resp)
		if err != nil {
			t.Fatalf("resp %d: binary encode: %v", i, err)
		}
		var jr, br Response
		if _, err := js.DecodeResponse(jb, &jr); err != nil {
			t.Fatalf("resp %d: json decode: %v", i, err)
		}
		id, err := bin.DecodeResponse(bb, &br)
		if err != nil {
			t.Fatalf("resp %d: binary decode: %v", i, err)
		}
		if id != 9 {
			t.Fatalf("resp %d: reqID = %d, want 9", i, id)
		}
		if !reflect.DeepEqual(jr, br) {
			t.Errorf("resp %d: codec divergence\njson:   %+v\nbinary: %+v", i, jr, br)
		}
	}
}

// TestBinaryDecodeIntoDirtyStructs proves decode fully overwrites a
// previously-used destination: decoding message A into a struct that
// held message B must equal decoding A into a fresh struct.
func TestBinaryDecodeIntoDirtyStructs(t *testing.T) {
	bin := NewBinary()
	reqs := sampleRequests()
	var dirty Request
	for round := 0; round < 3; round++ {
		for i := range reqs {
			var buf []byte
			buf, err := bin.AppendRequest(buf, uint64(i), &reqs[i])
			if err != nil {
				t.Fatal(err)
			}
			var fresh Request
			if _, err := bin.DecodeRequest(buf, &fresh); err != nil {
				t.Fatal(err)
			}
			if _, err := bin.DecodeRequest(buf, &dirty); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fresh, dirty) {
				t.Fatalf("req %d round %d: dirty-struct decode diverged\nfresh: %+v\ndirty: %+v", i, round, fresh, dirty)
			}
		}
	}
	resps := sampleResponses()
	var dirtyResp Response
	for round := 0; round < 3; round++ {
		for i := range resps {
			var buf []byte
			buf, err := bin.AppendResponse(buf, uint64(i), &resps[i])
			if err != nil {
				t.Fatal(err)
			}
			var fresh Response
			if _, err := bin.DecodeResponse(buf, &fresh); err != nil {
				t.Fatal(err)
			}
			if _, err := bin.DecodeResponse(buf, &dirtyResp); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fresh, dirtyResp) {
				t.Fatalf("resp %d round %d: dirty-struct decode diverged", i, round)
			}
		}
	}
}

// TestBinaryHeaderFlags checks the idempotency bit the UDP transport
// keys its retransmit decision on, and the envelope direction checks.
func TestBinaryHeaderFlags(t *testing.T) {
	bin := NewBinary()
	for _, tc := range []struct {
		typ  string
		idem bool
	}{
		{TypeJoin, true}, {TypeLeave, true}, {TypeLookup, true}, {TypeProbe, true},
		{TypeRelease, true}, {TypeReserve, false}, {TypeSelect, false}, {"weird", false},
	} {
		req := Request{Type: tc.typ}
		buf, err := bin.AppendRequest(nil, 1, &req)
		if err != nil {
			t.Fatal(err)
		}
		flags, ok := MessageFlags(buf)
		if !ok {
			t.Fatalf("%s: MessageFlags rejected a valid frame", tc.typ)
		}
		if got := flags&FlagIdempotent != 0; got != tc.idem {
			t.Errorf("%s: idempotent flag = %v, want %v", tc.typ, got, tc.idem)
		}
		if flags&FlagResponse != 0 {
			t.Errorf("%s: request frame carries response flag", tc.typ)
		}
		// Decoding a request frame as a response must fail, and vice versa.
		var resp Response
		if _, err := bin.DecodeResponse(buf, &resp); err == nil {
			t.Errorf("%s: request frame decoded as response", tc.typ)
		}
	}
	rbuf, err := bin.AppendResponse(nil, 1, &Response{OK: true})
	if err != nil {
		t.Fatal(err)
	}
	var req Request
	if _, err := bin.DecodeRequest(rbuf, &req); err == nil {
		t.Error("response frame decoded as request")
	}
	if _, ok := MessageFlags([]byte("{\"type\":\"join\"}")); ok {
		t.Error("MessageFlags accepted a JSON message")
	}
	if !IsBinary(rbuf) {
		t.Error("IsBinary rejected a binary frame")
	}
	if IsBinary([]byte("{")) {
		t.Error("IsBinary accepted JSON")
	}
}

// TestBinaryCRCRejectsEveryByteFlip corrupts each byte of a frame in
// turn; the CRC32C trailer (or a header check) must reject all of
// them — no corrupted frame may decode successfully.
func TestBinaryCRCRejectsEveryByteFlip(t *testing.T) {
	bin := NewBinary()
	req := sampleRequests()[4] // the big select request
	buf, err := bin.AppendRequest(nil, 42, &req)
	if err != nil {
		t.Fatal(err)
	}
	var dst Request
	for i := range buf {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0xA5
		if _, err := bin.DecodeRequest(mut, &dst); err == nil {
			t.Fatalf("byte %d/%d: corrupted frame decoded cleanly", i, len(buf))
		}
	}
}

// TestBinaryTruncationRejected: every strict prefix must error, never
// panic or return a bogus struct.
func TestBinaryTruncationRejected(t *testing.T) {
	bin := NewBinary()
	resp := sampleResponses()[4]
	buf, err := bin.AppendResponse(nil, 3, &resp)
	if err != nil {
		t.Fatal(err)
	}
	var dst Response
	for n := 0; n < len(buf); n++ {
		if _, err := bin.DecodeResponse(buf[:n], &dst); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded cleanly", n, len(buf))
		}
	}
}

// TestReadFrame streams several frames through one bufio.Reader and
// checks each is returned whole, with buffer reuse across reads.
func TestReadFrame(t *testing.T) {
	bin := NewBinary()
	var stream []byte
	reqs := sampleRequests()
	for i := range reqs {
		var err error
		stream, err = bin.AppendRequest(stream, uint64(i), &reqs[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(bytes.NewReader(stream))
	var buf []byte
	for i := range reqs {
		var err error
		buf, err = ReadFrame(br, buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		var got Request
		id, err := bin.DecodeRequest(buf, &got)
		if err != nil {
			t.Fatalf("frame %d: decode: %v", i, err)
		}
		if id != uint64(i) {
			t.Fatalf("frame %d: reqID %d", i, id)
		}
	}
	if _, err := ReadFrame(br, buf); err == nil {
		t.Fatal("ReadFrame at EOF succeeded")
	}
	if _, err := ReadFrame(bufio.NewReader(strings.NewReader("{\"type\":\"join\"}\n")), nil); err != ErrMagic {
		t.Fatalf("ReadFrame on JSON: err = %v, want ErrMagic", err)
	}
}

// TestBinaryWireSize pins the headline claim: binary select/offer
// payloads are at least 2× smaller than their JSON form.
func TestBinaryWireSize(t *testing.T) {
	bin := NewBinary()
	js := JSON{}
	req := sampleRequests()[4]
	jb, _ := js.AppendRequest(nil, 1, &req)
	bb, err := bin.AppendRequest(nil, 1, &req)
	if err != nil {
		t.Fatal(err)
	}
	if len(bb)*2 > len(jb) {
		t.Errorf("select request: binary %dB vs JSON %dB — want ≥2× smaller", len(bb), len(jb))
	}
	resp := sampleResponses()[2]
	jr, _ := js.AppendResponse(nil, 1, &resp)
	brv, err := bin.AppendResponse(nil, 1, &resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(brv)*2 > len(jr) {
		t.Errorf("offers response: binary %dB vs JSON %dB — want ≥2× smaller", len(brv), len(jr))
	}
}

// TestBinarySteadyStateAllocs is the hotalloc claim made measurable:
// after warm-up, encode and decode of a stable message shape run at
// zero allocations per operation. ci.sh gates on this test.
func TestBinarySteadyStateAllocs(t *testing.T) {
	bin := NewBinary()
	req := sampleRequests()[4]
	resp := sampleResponses()[4]
	var ebuf, rbuf []byte
	var dreq Request
	var dresp Response
	var err error
	// Warm up: grow buffers, populate intern table and reuse capacity.
	for i := 0; i < 4; i++ {
		if ebuf, err = bin.AppendRequest(ebuf[:0], 1, &req); err != nil {
			t.Fatal(err)
		}
		if _, err = bin.DecodeRequest(ebuf, &dreq); err != nil {
			t.Fatal(err)
		}
		if rbuf, err = bin.AppendResponse(rbuf[:0], 1, &resp); err != nil {
			t.Fatal(err)
		}
		if _, err = bin.DecodeResponse(rbuf, &dresp); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		ebuf, _ = bin.AppendRequest(ebuf[:0], 1, &req)
		_, _ = bin.DecodeRequest(ebuf, &dreq)
		rbuf, _ = bin.AppendResponse(rbuf[:0], 1, &resp)
		_, _ = bin.DecodeResponse(rbuf, &dresp)
	})
	if allocs != 0 {
		t.Fatalf("steady-state encode+decode allocates %.1f/op, want 0", allocs)
	}
}

// TestBufPool exercises the length-classed slab pool invariants.
func TestBufPool(t *testing.T) {
	for _, n := range []int{0, 1, 512, 513, 4096, 65536, 1 << 20} {
		b := GetBuf(n)
		if cap(b.B) < n {
			t.Fatalf("GetBuf(%d): cap %d", n, cap(b.B))
		}
		if len(b.B) != 0 {
			t.Fatalf("GetBuf(%d): len %d, want 0", n, len(b.B))
		}
		PutBuf(b)
	}
	// Oversize buffers are off-pool but PutBuf still accepts them.
	big := GetBuf(2 << 20)
	if cap(big.B) < 2<<20 {
		t.Fatal("oversize GetBuf under-allocated")
	}
	PutBuf(big)
	PutBuf(nil) // must not panic
	// A buffer that grew past its class migrates upward: after PutBuf
	// it must only ever be handed out by a class its capacity covers.
	b := GetBuf(100)
	b.B = append(b.B[:0], make([]byte, 9000)...)
	PutBuf(b)
	got := GetBuf(8000) // 64 KiB class
	if cap(got.B) < 8000 {
		t.Fatalf("re-homed buffer violates class invariant: cap %d", cap(got.B))
	}
	PutBuf(got)
}

// TestPacketRoundTrip covers the datagram framing and its guards.
func TestPacketRoundTrip(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, 900)
	p := Packet{Type: PktData, Flags: 0, MsgID: 0xDEADBEEFCAFE, FragIdx: 2, FragCount: 5, Payload: payload}
	buf := AppendPacket(nil, &p)
	if len(buf) != len(payload)+PacketOverhead {
		t.Fatalf("packet length %d, want %d", len(buf), len(payload)+PacketOverhead)
	}
	var got Packet
	if err := ParsePacket(buf, &got); err != nil {
		t.Fatal(err)
	}
	if got.Type != p.Type || got.MsgID != p.MsgID || got.FragIdx != 2 || got.FragCount != 5 || !bytes.Equal(got.Payload, payload) {
		t.Fatalf("packet round-trip mismatch: %+v", got)
	}
	for i := range buf {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0x5A
		if err := ParsePacket(mut, &got); err == nil {
			t.Fatalf("byte %d: corrupted packet parsed cleanly", i)
		}
	}
	for n := 0; n < len(buf); n++ {
		if err := ParsePacket(buf[:n], &got); err == nil {
			t.Fatalf("truncated packet (%d bytes) parsed cleanly", n)
		}
	}
	// Acks have no fragment numbering.
	ack := AppendPacket(nil, &Packet{Type: PktAck, Flags: AckOfResponse, MsgID: 7})
	if err := ParsePacket(ack, &got); err != nil {
		t.Fatalf("ack parse: %v", err)
	}
	if got.Type != PktAck || got.Flags&AckOfResponse == 0 || len(got.Payload) != 0 {
		t.Fatalf("ack round-trip mismatch: %+v", got)
	}
	// Data packets with bogus fragment numbering are rejected.
	bad := AppendPacket(nil, &Packet{Type: PktData, MsgID: 1, FragIdx: 5, FragCount: 5, Payload: []byte("x")})
	if err := ParsePacket(bad, &got); err != ErrPacketFrag {
		t.Fatalf("bad frag numbering: err = %v, want ErrPacketFrag", err)
	}
}

func TestFragments(t *testing.T) {
	usable := 1200 - PacketOverhead
	for _, tc := range []struct {
		msgLen, mtu, want int
	}{
		{0, 1200, 1},
		{1, 1200, 1},
		{usable, 1200, 1},
		{usable + 1, 1200, 2},
		{10 * usable, 1200, 10},
		{1, PacketOverhead, 0}, // no usable payload
		{1 << 30, 1200, 0},     // too many fragments for uint16
		{100, MinMTU, 100/(MinMTU-PacketOverhead) + 1},
	} {
		if got := Fragments(tc.msgLen, tc.mtu); got != tc.want {
			t.Errorf("Fragments(%d, %d) = %d, want %d", tc.msgLen, tc.mtu, got, tc.want)
		}
	}
}

// TestInternTableBounded fills the intern table past its cap and
// checks it resets rather than growing without bound.
func TestInternTableBounded(t *testing.T) {
	bin := NewBinary()
	var buf []byte
	var dst Request
	for i := 0; i < maxIntern+100; i++ {
		req := Request{Type: TypeJoin, Addr: "peer-" + strings.Repeat("x", i%7) + string(rune('a'+i%26)) + itoa(i)}
		var err error
		buf, err = bin.AppendRequest(buf[:0], uint64(i), &req)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := bin.DecodeRequest(buf, &dst); err != nil {
			t.Fatal(err)
		}
		if dst.Addr != req.Addr {
			t.Fatalf("intern corrupted string: %q != %q", dst.Addr, req.Addr)
		}
	}
	if len(bin.tab) > maxIntern {
		t.Fatalf("intern table grew to %d entries (cap %d)", len(bin.tab), maxIntern)
	}
	// Long strings are decoded correctly but never interned.
	long := strings.Repeat("L", maxInternLen+1)
	b2 := NewBinary()
	buf, err := b2.AppendRequest(buf[:0], 1, &Request{Type: TypeJoin, Addr: long})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b2.DecodeRequest(buf, &dst); err != nil || dst.Addr != long {
		t.Fatalf("long string decode: %v", err)
	}
	if _, ok := b2.tab[long]; ok {
		t.Fatal("over-length string was interned")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
