package wire

import (
	"bytes"
	"compress/flate"
	"reflect"
	"strings"
	"testing"
)

// bigLookupResponse builds a discovery fan-in reply large and
// repetitive enough that flate wins decisively.
func bigLookupResponse() Response {
	var resp Response
	resp.OK = true
	for i := 0; i < 64; i++ {
		in := sampleInstance("inst")
		in.ID = "inst/" + strings.Repeat("x", i%7) + "/variant"
		resp.Offers = append(resp.Offers, Offer{Instance: in, Provider: "10.0.0.1:9001"})
	}
	return resp
}

// TestCompressionCrossCodec is the satellite differential test for
// compression: for every sample shape plus a large fan-out payload,
// JSON, plain binary, and compressing binary must all decode to
// byte-identical structs.
func TestCompressionCrossCodec(t *testing.T) {
	js := JSON{}
	plain := NewBinary()
	comp := NewBinary()
	comp.SetCompression(1) // compress everything compressible
	reqs := sampleRequests()
	for i, req := range reqs {
		jb, err := js.AppendRequest(nil, 3, &req)
		if err != nil {
			t.Fatalf("req %d: json encode: %v", i, err)
		}
		cb, err := comp.AppendRequest(nil, 3, &req)
		if err != nil {
			t.Fatalf("req %d: compressed encode: %v", i, err)
		}
		var jr, cr Request
		if _, err := js.DecodeRequest(jb, &jr); err != nil {
			t.Fatalf("req %d: json decode: %v", i, err)
		}
		// Decode through the NON-compressing codec: compression support
		// is unconditional on the decode side.
		if _, err := plain.DecodeRequest(cb, &cr); err != nil {
			t.Fatalf("req %d: decode of compressed frame: %v", i, err)
		}
		if !reflect.DeepEqual(jr, cr) {
			t.Errorf("req %d: compressed divergence\njson:       %+v\ncompressed: %+v", i, jr, cr)
		}
	}

	big := bigLookupResponse()
	pb, err := plain.AppendResponse(nil, 5, &big)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := comp.AppendResponse(nil, 5, &big)
	if err != nil {
		t.Fatal(err)
	}
	flags, ok := MessageFlags(cb)
	if !ok || flags&FlagCompressed == 0 {
		t.Fatalf("large response not compressed (flags %08b)", flags)
	}
	if len(cb) >= len(pb) {
		t.Errorf("compressed frame %dB not smaller than plain %dB", len(cb), len(pb))
	}
	var pr, cr Response
	if _, err := plain.DecodeResponse(pb, &pr); err != nil {
		t.Fatal(err)
	}
	if _, err := plain.DecodeResponse(cb, &cr); err != nil {
		t.Fatalf("decode of compressed response: %v", err)
	}
	if !reflect.DeepEqual(pr, cr) {
		t.Error("compressed response decoded differently from plain")
	}
}

// TestCompressionNegotiation pins the flag handshake: requests from a
// compressing codec advertise FlagCompressOK, and a server honoring
// the negotiation never compresses toward a client that did not.
func TestCompressionNegotiation(t *testing.T) {
	plain := NewBinary()
	comp := NewBinary()
	comp.SetCompression(DefaultCompressMin)

	pReq, err := plain.AppendRequest(nil, 1, &Request{Type: TypeProbe})
	if err != nil {
		t.Fatal(err)
	}
	if flags, _ := MessageFlags(pReq); flags&FlagCompressOK != 0 {
		t.Error("non-compressing codec advertised FlagCompressOK")
	}
	cReq, err := comp.AppendRequest(nil, 2, &Request{Type: TypeProbe})
	if err != nil {
		t.Fatal(err)
	}
	if flags, _ := MessageFlags(cReq); flags&FlagCompressOK == 0 {
		t.Error("compressing codec did not advertise FlagCompressOK")
	}

	big := bigLookupResponse()
	denied, err := comp.AppendResponseNegotiated(nil, 3, &big, false)
	if err != nil {
		t.Fatal(err)
	}
	if flags, _ := MessageFlags(denied); flags&FlagCompressed != 0 {
		t.Error("server compressed a reply to a client without FlagCompressOK")
	}
	granted, err := comp.AppendResponseNegotiated(nil, 3, &big, true)
	if err != nil {
		t.Fatal(err)
	}
	if flags, _ := MessageFlags(granted); flags&FlagCompressed == 0 {
		t.Error("server skipped compression despite FlagCompressOK")
	}
	// Small bodies stay raw even when negotiated: the threshold keeps
	// the steady-state small-message path untouched.
	small, err := comp.AppendResponseNegotiated(nil, 4, &Response{OK: true}, true)
	if err != nil {
		t.Fatal(err)
	}
	if flags, _ := MessageFlags(small); flags&FlagCompressed != 0 {
		t.Error("sub-threshold response was compressed")
	}
}

// rebuildFrame re-frames a hand-mutated body with a fresh CRC so the
// decoder exercises the compression guards, not the CRC check.
func rebuildFrame(t *testing.T, frame []byte, mutate func(body []byte) []byte) []byte {
	t.Helper()
	kind, flags, reqID, body, err := openFrame(frame)
	if err != nil {
		t.Fatalf("rebuildFrame: %v", err)
	}
	out := appendHeader(nil, kind, flags, reqID)
	bodyStart := len(out)
	out = append(out, mutate(append([]byte(nil), body...))...)
	out, err = finishFrame(out, 0, bodyStart)
	if err != nil {
		t.Fatalf("rebuildFrame: %v", err)
	}
	return out
}

// TestCompressionHostileFrames drives the anti-OOM and
// exact-length guards on the compressed-body path.
func TestCompressionHostileFrames(t *testing.T) {
	comp := NewBinary()
	comp.SetCompression(1)
	big := bigLookupResponse()
	frame, err := comp.AppendResponse(nil, 7, &big)
	if err != nil {
		t.Fatal(err)
	}
	if flags, _ := MessageFlags(frame); flags&FlagCompressed == 0 {
		t.Fatal("fixture frame is not compressed")
	}
	var resp Response

	huge := rebuildFrame(t, frame, func(body []byte) []byte {
		// Replace the raw-length prefix with MaxMessage+1.
		var r reader
		r.data = body
		r.uvarint()
		return append(appendUvarint(nil, MaxMessage+1), body[r.pos:]...)
	})
	if _, err := comp.DecodeResponse(huge, &resp); err != ErrCompress {
		t.Errorf("oversize raw length: err = %v, want ErrCompress", err)
	}

	truncated := rebuildFrame(t, frame, func(body []byte) []byte {
		return body[:len(body)-4] // cut the deflate stream short
	})
	if _, err := comp.DecodeResponse(truncated, &resp); err != ErrCompress {
		t.Errorf("truncated stream: err = %v, want ErrCompress", err)
	}

	trailing := rebuildFrame(t, frame, func(body []byte) []byte {
		// Understate the raw length: the stream then inflates past it.
		var r reader
		r.data = body
		n := r.uvarint()
		return append(appendUvarint(nil, n-1), body[r.pos:]...)
	})
	if _, err := comp.DecodeResponse(trailing, &resp); err != ErrCompress {
		t.Errorf("trailing compressed data: err = %v, want ErrCompress", err)
	}

	garbage := rebuildFrame(t, frame, func(body []byte) []byte {
		return append(appendUvarint(nil, 100), bytes.Repeat([]byte{0xff}, 20)...)
	})
	if _, err := comp.DecodeResponse(garbage, &resp); err != ErrCompress {
		t.Errorf("garbage stream: err = %v, want ErrCompress", err)
	}
}

// TestCompressionIncompressible: when flate cannot shrink the body,
// the frame ships raw — no size regression on high-entropy payloads.
func TestCompressionIncompressible(t *testing.T) {
	comp := NewBinary()
	comp.SetCompression(1)
	// An already-compressed (deflate) byte string is incompressible.
	var noise bytes.Buffer
	fw, err := flate.NewWriter(&noise, flate.BestSpeed)
	if err != nil {
		t.Fatal(err)
	}
	seed := uint64(0x9e3779b97f4a7c15)
	raw := make([]byte, 2048)
	for i := range raw {
		seed = seed*6364136223846793005 + 1442695040888963407
		raw[i] = byte(seed >> 56)
	}
	if _, err := fw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	req := Request{Type: TypeJoin, Addr: noise.String()}
	frame, err := comp.AppendRequest(nil, 1, &req)
	if err != nil {
		t.Fatal(err)
	}
	if flags, _ := MessageFlags(frame); flags&FlagCompressed != 0 {
		t.Error("incompressible body was marked compressed")
	}
	var got Request
	if _, err := comp.DecodeRequest(frame, &got); err != nil {
		t.Fatal(err)
	}
	if got.Addr != req.Addr {
		t.Error("incompressible body round-trip mismatch")
	}
}
