package wire

import "encoding/json"

// JSON is the original codec: one marshaled JSON object per message,
// newline-terminated on the stream (the framing json.Decoder expects).
// It allocates freely — it exists for rollback and for debuggability
// (every message is readable with a packet capture and a pager), not
// for throughput. The zero value is ready to use.
type JSON struct{}

// Name implements Codec.
func (JSON) Name() string { return "json" }

// AppendRequest implements Codec. reqID is ignored: the JSON protocol
// runs one exchange per connection, so correlation is positional.
func (JSON) AppendRequest(dst []byte, _ uint64, req *Request) ([]byte, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return dst, err
	}
	dst = append(dst, b...)
	return append(dst, '\n'), nil
}

// AppendResponse implements Codec.
func (JSON) AppendResponse(dst []byte, _ uint64, resp *Response) ([]byte, error) {
	b, err := json.Marshal(resp)
	if err != nil {
		return dst, err
	}
	dst = append(dst, b...)
	return append(dst, '\n'), nil
}

// DecodeRequest implements Codec. The struct is fully reset first so
// reuse across messages cannot leak fields JSON omits when empty.
func (JSON) DecodeRequest(data []byte, req *Request) (uint64, error) {
	*req = Request{}
	return 0, json.Unmarshal(data, req)
}

// DecodeResponse implements Codec.
func (JSON) DecodeResponse(data []byte, resp *Response) (uint64, error) {
	*resp = Response{}
	return 0, json.Unmarshal(data, resp)
}
