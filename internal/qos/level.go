package qos

import "fmt"

// Level is the user's end-to-end QoS requirement. The paper's evaluation
// (§4.1) reduces the user requirement to a single parameter with three
// levels: high, average, and low.
type Level int

const (
	// Low is the least demanding level (e.g. 56 kbps audio-only stream).
	Low Level = iota
	// Average is the middle level (e.g. 500 kbps SD stream).
	Average
	// High is the most demanding level (e.g. Mbps-class HD stream).
	High
)

// Levels lists all levels in ascending order of demand.
var Levels = []Level{Low, Average, High}

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case Low:
		return "low"
	case Average:
		return "average"
	case High:
		return "high"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Valid reports whether l is one of the three defined levels.
func (l Level) Valid() bool { return l >= Low && l <= High }

// ParseLevel converts a string produced by Level.String back to a Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "low":
		return Low, nil
	case "average":
		return Average, nil
	case "high":
		return High, nil
	}
	return 0, fmt.Errorf("qos: unknown level %q", s)
}

// Requirements is the output of translating an application-level QoS
// request into resource terms: per-component end-system demand and per-edge
// network bandwidth demand. Units match the simulator: abstract end-system
// units for CPU/memory (peer capacities are 100–1000 units per the paper)
// and kbps for bandwidth (pairwise link classes are 10 Mbps … 56 kbps).
type Requirements struct {
	CPU       float64 // end-system CPU units per component
	Memory    float64 // end-system memory units per component
	Bandwidth float64 // network bandwidth (kbps) per service-path edge
}

// Translator maps a user QoS level to resource requirements. The paper
// assumes such a translator exists (§3.1, refs [3,13,21]: QoS compilers and
// QualProbes-style profiling); here it is a calibrated table — the
// analytical-translation approach.
type Translator struct {
	table map[Level]Requirements
}

// DefaultTranslator returns the translator used by the evaluation. The
// values are calibrated so that, with the paper's peer capacities
// (100–1000 units) and bandwidth classes, the 10⁴-peer grid transitions
// from unloaded to saturated across the paper's request-rate sweep
// (0–1000 req/min, sessions 1–60 min, paths 2–5 hops).
func DefaultTranslator() *Translator {
	return &Translator{table: map[Level]Requirements{
		Low:     {CPU: 8, Memory: 8, Bandwidth: 56},
		Average: {CPU: 16, Memory: 16, Bandwidth: 100},
		High:    {CPU: 32, Memory: 32, Bandwidth: 500},
	}}
}

// NewTranslator builds a translator from an explicit table. All three
// levels must be present.
func NewTranslator(table map[Level]Requirements) (*Translator, error) {
	for _, l := range Levels {
		r, ok := table[l]
		if !ok {
			return nil, fmt.Errorf("qos: translator table missing level %v", l)
		}
		if r.CPU < 0 || r.Memory < 0 || r.Bandwidth < 0 {
			return nil, fmt.Errorf("qos: negative requirement for level %v", l)
		}
	}
	cp := make(map[Level]Requirements, len(table))
	for k, v := range table {
		cp[k] = v
	}
	return &Translator{table: cp}, nil
}

// Translate maps a level to its resource requirements.
func (t *Translator) Translate(l Level) (Requirements, error) {
	r, ok := t.table[l]
	if !ok {
		return Requirements{}, fmt.Errorf("qos: no translation for level %v", l)
	}
	return r, nil
}
