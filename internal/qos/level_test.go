package qos

import "testing"

func TestLevelString(t *testing.T) {
	cases := map[Level]string{Low: "low", Average: "average", High: "high", Level(9): "Level(9)"}
	for l, want := range cases {
		if got := l.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(l), got, want)
		}
	}
}

func TestParseLevelRoundTrip(t *testing.T) {
	for _, l := range Levels {
		got, err := ParseLevel(l.String())
		if err != nil || got != l {
			t.Errorf("ParseLevel(%q) = %v, %v", l.String(), got, err)
		}
	}
	if _, err := ParseLevel("ultra"); err == nil {
		t.Error("ParseLevel of unknown string must fail")
	}
}

func TestLevelValid(t *testing.T) {
	for _, l := range Levels {
		if !l.Valid() {
			t.Errorf("%v should be valid", l)
		}
	}
	if Level(-1).Valid() || Level(3).Valid() {
		t.Error("out-of-range levels must be invalid")
	}
}

func TestDefaultTranslatorMonotone(t *testing.T) {
	tr := DefaultTranslator()
	var prev Requirements
	for i, l := range Levels {
		r, err := tr.Translate(l)
		if err != nil {
			t.Fatalf("Translate(%v): %v", l, err)
		}
		if r.CPU <= 0 || r.Memory <= 0 || r.Bandwidth <= 0 {
			t.Fatalf("level %v has non-positive requirements: %+v", l, r)
		}
		if i > 0 && (r.CPU < prev.CPU || r.Memory < prev.Memory || r.Bandwidth < prev.Bandwidth) {
			t.Fatalf("requirements must be monotone in level: %v < previous", l)
		}
		prev = r
	}
}

func TestTranslateUnknownLevel(t *testing.T) {
	tr := DefaultTranslator()
	if _, err := tr.Translate(Level(42)); err == nil {
		t.Fatal("Translate of undefined level must fail")
	}
}

func TestNewTranslatorValidation(t *testing.T) {
	if _, err := NewTranslator(map[Level]Requirements{Low: {1, 1, 1}}); err == nil {
		t.Fatal("missing levels must be rejected")
	}
	bad := map[Level]Requirements{
		Low: {1, 1, 1}, Average: {2, 2, 2}, High: {-1, 3, 3},
	}
	if _, err := NewTranslator(bad); err == nil {
		t.Fatal("negative requirements must be rejected")
	}
	good := map[Level]Requirements{
		Low: {1, 1, 1}, Average: {2, 2, 2}, High: {3, 3, 3},
	}
	tr, err := NewTranslator(good)
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's table must not affect the translator.
	good[Low] = Requirements{99, 99, 99}
	r, _ := tr.Translate(Low)
	if r.CPU != 1 {
		t.Fatal("translator must copy its table")
	}
}
