// Package qos models application-level quality-of-service parameters and
// the inter-component "satisfy" relation of the QSA paper (§2.1, eq. 1).
//
// Each service component consumes input with QoS level Qin and produces
// output with QoS level Qout; both are vectors of named parameters. A
// parameter is either a single symbolic value (data format "MPEG",
// resolution "720p") or a numeric range (frame rate [10,30] fps). Component
// A may feed component B iff Qout(A) satisfies Qin(B):
//
//	for every dimension i of Qin(B) there exists a dimension j of Qout(A)
//	with the same name such that
//	  - q_Aj == q_Bi          when q_Bi is a single value, or
//	  - q_Aj ⊆ q_Bi           when q_Bi is a range value.
package qos

import (
	"fmt"
	"sort"
	"strings"
)

// Param is one named QoS dimension. A Param is either symbolic (Sym != "")
// or a numeric range [Lo, Hi]. A single numeric value is the degenerate
// range Lo == Hi.
type Param struct {
	Name string
	Sym  string  // symbolic single value; "" means numeric range
	Lo   float64 // range lower bound (inclusive)
	Hi   float64 // range upper bound (inclusive)
}

// Symbolic reports whether the parameter is a single symbolic value.
func (p Param) Symbolic() bool { return p.Sym != "" }

// Sym returns a symbolic parameter.
func Sym(name, value string) Param { return Param{Name: name, Sym: value} }

// Range returns a numeric range parameter [lo, hi].
func Range(name string, lo, hi float64) Param {
	if hi < lo {
		// lint:allow panic-in-library constructor contract for literals; input parsers (spec, netproto) validate bounds first
		panic(fmt.Sprintf("qos: range %q has hi %v < lo %v", name, hi, lo))
	}
	return Param{Name: name, Lo: lo, Hi: hi}
}

// Point returns a single numeric value parameter (degenerate range).
func Point(name string, v float64) Param { return Param{Name: name, Lo: v, Hi: v} }

// satisfies reports whether an output parameter out can feed an input
// requirement in (same dimension assumed).
func satisfies(out, in Param) bool {
	if in.Symbolic() || out.Symbolic() {
		return in.Sym == out.Sym
	}
	// The produced range must fall entirely inside the accepted range.
	return out.Lo >= in.Lo && out.Hi <= in.Hi
}

// String renders a parameter, e.g. `format=MPEG` or `fps=[10,30]`.
func (p Param) String() string {
	if p.Symbolic() {
		return fmt.Sprintf("%s=%s", p.Name, p.Sym)
	}
	// lint:allow float-eq a degenerate range stores Lo and Hi as the same bits by construction (see Point)
	if p.Lo == p.Hi {
		return fmt.Sprintf("%s=%g", p.Name, p.Lo)
	}
	return fmt.Sprintf("%s=[%g,%g]", p.Name, p.Lo, p.Hi)
}

// Vector is an ordered set of QoS parameters, one per dimension name.
type Vector []Param

// NewVector builds a vector, rejecting duplicate dimension names.
func NewVector(params ...Param) (Vector, error) {
	seen := make(map[string]bool, len(params))
	for _, p := range params {
		if p.Name == "" {
			return nil, fmt.Errorf("qos: parameter with empty name")
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("qos: duplicate dimension %q", p.Name)
		}
		seen[p.Name] = true
	}
	v := make(Vector, len(params))
	copy(v, params)
	return v, nil
}

// MustVector is NewVector that panics on error; for literals in tests and
// catalog generation.
func MustVector(params ...Param) Vector {
	v, err := NewVector(params...)
	if err != nil {
		// lint:allow panic-in-library documented Must-variant contract for literals in tests and catalog generation
		panic(err)
	}
	return v
}

// Get returns the parameter with the given dimension name.
func (v Vector) Get(name string) (Param, bool) {
	for _, p := range v {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}

// Dim returns the number of dimensions (paper notation Dim(Q)).
func (v Vector) Dim() int { return len(v) }

// Clone returns an independent copy.
func (v Vector) Clone() Vector {
	if v == nil {
		return nil
	}
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// String renders the vector with dimensions sorted by name.
func (v Vector) String() string {
	parts := make([]string, len(v))
	for i, p := range v {
		parts[i] = p.String()
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ", ") + "}"
}

// Satisfies implements the paper's relation "out ⊑ in" (eq. 1): every
// dimension required by in must be covered by a same-named dimension of out
// whose value matches (symbolic equality) or is contained (range).
// An empty in is satisfied by anything; a dimension of in absent from out
// fails the relation.
func Satisfies(out, in Vector) bool {
	for _, req := range in {
		prod, ok := out.Get(req.Name)
		if !ok || !satisfies(prod, req) {
			return false
		}
	}
	return true
}

// Explain reports whether out satisfies in and, when it does not, the first
// offending dimension — useful in composition diagnostics.
func Explain(out, in Vector) (ok bool, reason string) {
	for _, req := range in {
		prod, found := out.Get(req.Name)
		if !found {
			return false, fmt.Sprintf("dimension %q required but not produced", req.Name)
		}
		if !satisfies(prod, req) {
			return false, fmt.Sprintf("dimension %q: produced %s does not satisfy required %s",
				req.Name, prod.String(), req.String())
		}
	}
	return true, ""
}
