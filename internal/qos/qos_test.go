package qos

import (
	"testing"
	"testing/quick"
)

func TestSymbolicSatisfy(t *testing.T) {
	out := MustVector(Sym("format", "MPEG"))
	in := MustVector(Sym("format", "MPEG"))
	if !Satisfies(out, in) {
		t.Fatal("equal symbolic values must satisfy")
	}
	in2 := MustVector(Sym("format", "JPEG"))
	if Satisfies(out, in2) {
		t.Fatal("different symbolic values must not satisfy")
	}
}

func TestRangeContainment(t *testing.T) {
	cases := []struct {
		out, in Param
		want    bool
	}{
		{Range("fps", 10, 20), Range("fps", 0, 30), true},  // strict subset
		{Range("fps", 0, 30), Range("fps", 10, 20), false}, // superset
		{Range("fps", 10, 20), Range("fps", 10, 20), true}, // equal
		{Range("fps", 10, 35), Range("fps", 0, 30), false}, // overlaps above
		{Range("fps", -5, 20), Range("fps", 0, 30), false}, // overlaps below
		{Point("fps", 15), Range("fps", 0, 30), true},      // point in range
		{Point("fps", 31), Range("fps", 0, 30), false},     // point outside
		{Point("fps", 30), Range("fps", 0, 30), true},      // inclusive bound
	}
	for _, c := range cases {
		out := MustVector(c.out)
		in := MustVector(c.in)
		if got := Satisfies(out, in); got != c.want {
			t.Errorf("Satisfies(%v, %v) = %v, want %v", c.out, c.in, got, c.want)
		}
	}
}

func TestSymbolicVsRangeMismatch(t *testing.T) {
	out := MustVector(Sym("x", "a"))
	in := MustVector(Range("x", 0, 1))
	if Satisfies(out, in) {
		t.Fatal("symbolic output cannot satisfy range input")
	}
	if Satisfies(MustVector(Range("x", 0, 1)), MustVector(Sym("x", "a"))) {
		t.Fatal("range output cannot satisfy symbolic input")
	}
}

func TestMissingDimensionFails(t *testing.T) {
	out := MustVector(Sym("format", "MPEG"))
	in := MustVector(Sym("format", "MPEG"), Range("fps", 0, 30))
	if Satisfies(out, in) {
		t.Fatal("input dimension absent from output must fail")
	}
}

func TestExtraOutputDimensionsIgnored(t *testing.T) {
	out := MustVector(Sym("format", "MPEG"), Range("fps", 10, 20), Sym("res", "720p"))
	in := MustVector(Sym("format", "MPEG"))
	if !Satisfies(out, in) {
		t.Fatal("extra output dimensions must not break satisfaction")
	}
}

func TestEmptyInputAlwaysSatisfied(t *testing.T) {
	if !Satisfies(nil, nil) {
		t.Fatal("empty requirement must always be satisfied")
	}
	if !Satisfies(MustVector(Sym("x", "a")), nil) {
		t.Fatal("empty requirement must be satisfied by any output")
	}
}

func TestNewVectorRejectsDuplicates(t *testing.T) {
	if _, err := NewVector(Sym("x", "a"), Sym("x", "b")); err == nil {
		t.Fatal("duplicate dimension must be rejected")
	}
	if _, err := NewVector(Param{Name: ""}); err == nil {
		t.Fatal("empty name must be rejected")
	}
}

func TestRangePanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Range with hi < lo should panic")
		}
	}()
	Range("x", 2, 1)
}

func TestGet(t *testing.T) {
	v := MustVector(Sym("a", "1"), Range("b", 0, 1))
	if p, ok := v.Get("b"); !ok || p.Lo != 0 || p.Hi != 1 {
		t.Fatalf("Get(b) = %v, %v", p, ok)
	}
	if _, ok := v.Get("c"); ok {
		t.Fatal("Get of absent dimension must report false")
	}
}

func TestCloneIndependence(t *testing.T) {
	v := MustVector(Sym("a", "1"))
	c := v.Clone()
	c[0].Sym = "2"
	if v[0].Sym != "1" {
		t.Fatal("Clone shares backing storage")
	}
	if Vector(nil).Clone() != nil {
		t.Fatal("Clone(nil) must be nil")
	}
}

func TestExplain(t *testing.T) {
	out := MustVector(Sym("format", "MPEG"), Range("fps", 10, 40))
	in := MustVector(Sym("format", "MPEG"), Range("fps", 0, 30))
	ok, reason := Explain(out, in)
	if ok {
		t.Fatal("fps [10,40] should not satisfy [0,30]")
	}
	if reason == "" {
		t.Fatal("Explain must name the offending dimension")
	}
	ok, reason = Explain(out, MustVector(Sym("format", "MPEG")))
	if !ok || reason != "" {
		t.Fatalf("Explain on satisfied pair = %v, %q", ok, reason)
	}
	ok, _ = Explain(out, MustVector(Sym("codec", "x")))
	if ok {
		t.Fatal("missing dimension should fail Explain")
	}
}

// Property: the satisfy relation is reflexive for range vectors
// (Qout == Qin always matches) and antitone in the output range width.
func TestPropertyReflexive(t *testing.T) {
	check := func(lo int8, width uint8) bool {
		l, h := float64(lo), float64(lo)+float64(width)
		v := MustVector(Range("x", l, h))
		return Satisfies(v, v)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: shrinking the produced range can never break satisfaction.
func TestPropertyShrinkPreservesSatisfaction(t *testing.T) {
	check := func(lo int8, width, shrinkL, shrinkR uint8) bool {
		l, h := float64(lo), float64(lo)+float64(width)+2
		in := MustVector(Range("x", l, h))
		// Produced range inside [l, h]. Use int arithmetic: width+1 would
		// overflow uint8 at width=255.
		span := int(width) + 1
		pl := l + float64(int(shrinkL)%span)
		ph := h - float64(int(shrinkR)%span)
		if ph < pl {
			pl, ph = ph, pl
		}
		if pl < l {
			pl = l
		}
		if ph > h {
			ph = h
		}
		out := MustVector(Range("x", pl, ph))
		return Satisfies(out, in)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: satisfaction is transitive across range-only vectors: if A ⊑ B's
// input and the chain uses nested ranges, nesting composes.
func TestPropertyRangeTransitivity(t *testing.T) {
	check := func(lo int8, w1, w2, w3 uint8) bool {
		// c ⊆ b ⊆ a by construction
		aLo, aHi := float64(lo), float64(lo)+float64(w1)+float64(w2)+float64(w3)
		bLo, bHi := aLo+float64(w3)/2, aHi-float64(w3)/2
		if bHi < bLo {
			bLo, bHi = (aLo+aHi)/2, (aLo+aHi)/2
		}
		cLo, cHi := bLo+float64(w2)/4, bHi-float64(w2)/4
		if cHi < cLo {
			cLo, cHi = (bLo+bHi)/2, (bLo+bHi)/2
		}
		a := MustVector(Range("x", aLo, aHi))
		b := MustVector(Range("x", bLo, bHi))
		c := MustVector(Range("x", cLo, cHi))
		// c sat b and b sat a implies c sat a.
		if Satisfies(c, b) && Satisfies(b, a) {
			return Satisfies(c, a)
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVectorString(t *testing.T) {
	v := MustVector(Range("fps", 10, 30), Sym("format", "MPEG"), Point("res", 720))
	s := v.String()
	want := "{format=MPEG, fps=[10,30], res=720}"
	if s != want {
		t.Fatalf("String() = %q, want %q", s, want)
	}
}
