package can

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func buildSpace(t *testing.T, seed uint64, n int) (*Space, []*Node) {
	t.Helper()
	s := NewSpace(Config{})
	rng := xrand.New(seed)
	nodes := make([]*Node, 0, n)
	for i := 0; i < n; i++ {
		nd, err := s.Join(fmt.Sprintf("peer-%d", i), rng)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
	}
	return s, nodes
}

// checkPartition verifies the zones tile the unit torus exactly: volumes
// sum to 1 and every probe point lies in exactly one zone.
func checkPartition(t *testing.T, s *Space, rng *xrand.Source) {
	t.Helper()
	var vol float64
	for _, z := range s.zones {
		vol += z.Volume()
	}
	if vol < 1-1e-9 || vol > 1+1e-9 {
		t.Fatalf("zone volumes sum to %v, want 1", vol)
	}
	for i := 0; i < 200; i++ {
		p := Point{rng.Float64(), rng.Float64()}
		found := 0
		for _, z := range s.zones {
			if z.Contains(p) {
				found++
			}
		}
		if found != 1 {
			t.Fatalf("point %v contained in %d zones", p, found)
		}
	}
}

func TestSingleNodeOwnsSpace(t *testing.T) {
	s, nodes := buildSpace(t, 1, 1)
	if s.ZoneCount() != 1 || nodes[0].Zones() != 1 {
		t.Fatalf("zones = %d", s.ZoneCount())
	}
	if v := nodes[0].zones[0].Volume(); v != 1 {
		t.Fatalf("volume = %v", v)
	}
	got, hops, err := s.Get(nodes[0], 42)
	if err != nil || hops != 0 || len(got) != 0 {
		t.Fatalf("Get on empty single-node space: %v %d %v", got, hops, err)
	}
}

func TestJoinsPartitionSpace(t *testing.T) {
	s, _ := buildSpace(t, 2, 64)
	if s.ZoneCount() != 64 {
		t.Fatalf("ZoneCount = %d, want one zone per node before churn", s.ZoneCount())
	}
	checkPartition(t, s, xrand.New(3))
}

func TestNeighborSymmetryAndCorrectness(t *testing.T) {
	s, _ := buildSpace(t, 4, 48)
	for _, z := range s.zones {
		for _, nb := range z.neighbors {
			if !adjacent(z, nb) {
				t.Fatalf("non-adjacent neighbor: %v / %v", z.lo, nb.lo)
			}
			found := false
			for _, back := range nb.neighbors {
				if back == z {
					found = true
				}
			}
			if !found {
				t.Fatal("neighbor relation not symmetric")
			}
		}
		if len(z.neighbors) == 0 && s.ZoneCount() > 1 {
			t.Fatal("zone with no neighbors in a multi-zone space")
		}
	}
	// Exhaustive: every adjacent pair is in each other's lists.
	for i, a := range s.zones {
		for _, b := range s.zones[i+1:] {
			if adjacent(a, b) {
				ok := false
				for _, nb := range a.neighbors {
					if nb == b {
						ok = true
					}
				}
				if !ok {
					t.Fatalf("missing neighbor link between %v and %v", a.lo, b.lo)
				}
			}
		}
	}
}

func TestRoutingFindsOwner(t *testing.T) {
	s, nodes := buildSpace(t, 5, 100)
	rng := xrand.New(6)
	for i := 0; i < 400; i++ {
		key := rng.Uint64()
		start := nodes[rng.Intn(len(nodes))]
		sz := start.zones[0]
		got, _ := s.route(sz, KeyPoint(key, s.cfg.Dims))
		if want := s.OwnerZone(key); got != want {
			t.Fatalf("route found zone %v, ground truth %v", got.lo, want.lo)
		}
	}
	if s.Stats().Fallbacks > uint64(40) {
		t.Fatalf("greedy routing fell back %d/400 times", s.Stats().Fallbacks)
	}
}

func TestRoutingHopsScaleSublinearly(t *testing.T) {
	// CAN expects O(d·N^(1/d)) hops: for d=2, N=400 → ~√400 = 20 · d/4.
	s, nodes := buildSpace(t, 7, 400)
	rng := xrand.New(8)
	for i := 0; i < 1000; i++ {
		s.route(nodes[rng.Intn(len(nodes))].zones[0], KeyPoint(rng.Uint64(), 2))
	}
	mean := s.Stats().MeanHops()
	if mean > 30 {
		t.Fatalf("mean hops %v too high for N=400, d=2", mean)
	}
	if mean < 1 {
		t.Fatalf("mean hops %v suspiciously low", mean)
	}
}

func TestPutGetUpdate(t *testing.T) {
	s, nodes := buildSpace(t, 9, 50)
	key := uint64(12345)
	if _, err := s.Update(nodes[3], key, "a", func(prev any) any {
		if prev != nil {
			t.Fatal("prev should be nil on first write")
		}
		return "v1"
	}); err != nil {
		t.Fatal(err)
	}
	got, _, err := s.Get(nodes[44], key)
	if err != nil || got["a"] != "v1" {
		t.Fatalf("Get = %v, %v", got, err)
	}
	// Read-modify-write.
	if _, err := s.Update(nodes[7], key, "a", func(prev any) any {
		if prev != "v1" {
			t.Fatalf("prev = %v", prev)
		}
		return "v2"
	}); err != nil {
		t.Fatal(err)
	}
	got, _, _ = s.Get(nodes[20], key)
	if got["a"] != "v2" {
		t.Fatalf("after update: %v", got)
	}
	// Delete via nil.
	s.Update(nodes[1], key, "a", func(any) any { return nil })
	got, _, _ = s.Get(nodes[2], key)
	if len(got) != 0 {
		t.Fatalf("after delete: %v", got)
	}
}

func TestGracefulLeaveKeepsData(t *testing.T) {
	s, nodes := buildSpace(t, 10, 40)
	key := uint64(999)
	s.Update(nodes[0], key, "x", func(any) any { return 7 })
	owner := s.OwnerZone(key).Owner()
	if err := s.Leave(owner); err != nil {
		t.Fatal(err)
	}
	if err := s.Leave(owner); err == nil {
		t.Fatal("double leave must fail")
	}
	var start *Node
	for _, n := range nodes {
		if n.Alive() {
			start = n
			break
		}
	}
	got, _, err := s.Get(start, key)
	if err != nil || got["x"] != 7 {
		t.Fatalf("data lost on graceful leave: %v, %v", got, err)
	}
	checkPartition(t, s, xrand.New(11))
}

func TestAbruptFailSurvivedByReplicas(t *testing.T) {
	s, nodes := buildSpace(t, 12, 60)
	key := uint64(4242)
	s.Update(nodes[0], key, "x", func(any) any { return "keep" })
	owner := s.OwnerZone(key).Owner()
	if err := s.Fail(owner); err != nil {
		t.Fatal(err)
	}
	var start *Node
	for _, n := range nodes {
		if n.Alive() {
			start = n
			break
		}
	}
	got, _, err := s.Get(start, key)
	if err != nil || got["x"] != "keep" {
		t.Fatalf("data lost despite replication: %v, %v", got, err)
	}
}

func TestTakeoverTransfersZones(t *testing.T) {
	s, nodes := buildSpace(t, 13, 20)
	victim := nodes[5]
	zonesBefore := s.ZoneCount()
	if err := s.Leave(victim); err != nil {
		t.Fatal(err)
	}
	if victim.Zones() != 0 || victim.Alive() {
		t.Fatal("leaver kept zones")
	}
	if s.ZoneCount() != zonesBefore {
		t.Fatalf("zones must persist through takeover: %d vs %d", s.ZoneCount(), zonesBefore)
	}
	// Every zone must have an alive owner.
	for _, z := range s.zones {
		if !z.Owner().Alive() {
			t.Fatal("zone with dead owner after takeover")
		}
	}
	checkPartition(t, s, xrand.New(14))
}

func TestRoutingAfterHeavyChurn(t *testing.T) {
	s, nodes := buildSpace(t, 15, 120)
	rng := xrand.New(16)
	// Remove a third of the nodes (mixed graceful/abrupt).
	removed := 0
	for _, n := range nodes {
		if removed >= 40 {
			break
		}
		if rng.Bool(0.5) {
			if rng.Bool(0.5) {
				s.Leave(n)
			} else {
				s.Fail(n)
			}
			removed++
		}
	}
	checkPartition(t, s, rng)
	for i := 0; i < 300; i++ {
		key := rng.Uint64()
		var start *Node
		for start == nil || !start.Alive() {
			start = nodes[rng.Intn(len(nodes))]
		}
		got, _, err := s.Get(start, key)
		if err != nil {
			t.Fatalf("Get after churn: %v", err)
		}
		_ = got
	}
}

func TestEmptySpaceAfterAllLeave(t *testing.T) {
	s, nodes := buildSpace(t, 17, 5)
	for _, n := range nodes {
		if err := s.Leave(n); err != nil {
			t.Fatal(err)
		}
	}
	if s.Size() != 0 || s.ZoneCount() != 0 {
		t.Fatalf("space not empty: %d nodes, %d zones", s.Size(), s.ZoneCount())
	}
	if _, _, err := s.Get(nodes[0], 1); err == nil {
		t.Fatal("Get from dead node must fail")
	}
}

func TestKeyPointDeterministicAndSpread(t *testing.T) {
	a := KeyPoint(7, 2)
	b := KeyPoint(7, 2)
	if a[0] != b[0] || a[1] != b[1] {
		t.Fatal("KeyPoint must be deterministic")
	}
	if a[0] == a[1] {
		t.Fatal("coordinates must be independently hashed")
	}
	// Spread: coordinates fill the space.
	buckets := make([]int, 4)
	for k := uint64(0); k < 1000; k++ {
		p := KeyPoint(k, 2)
		if p[0] < 0 || p[0] >= 1 || p[1] < 0 || p[1] >= 1 {
			t.Fatalf("point %v out of space", p)
		}
		buckets[int(p[0]*2)*2+int(p[1]*2)]++
	}
	for i, c := range buckets {
		if c < 150 {
			t.Fatalf("quadrant %d underfilled: %d/1000", i, c)
		}
	}
}

func TestAdjacency(t *testing.T) {
	mk := func(lo0, hi0, lo1, hi1 float64) *Zone {
		return &Zone{lo: []float64{lo0, lo1}, hi: []float64{hi0, hi1}}
	}
	cases := []struct {
		a, b *Zone
		want bool
	}{
		{mk(0, .5, 0, .5), mk(.5, 1, 0, .5), true},    // side by side
		{mk(0, .5, 0, .5), mk(.5, 1, .5, 1), false},   // corner only
		{mk(0, .5, 0, .5), mk(.5, 1, .25, .75), true}, // partial overlap
		{mk(0, .5, 0, .5), mk(0, .5, .5, 1), true},    // stacked
		{mk(0, .25, 0, 1), mk(.75, 1, 0, 1), true},    // torus wrap in x
		{mk(0, .25, 0, .5), mk(.3, .6, 0, .5), false}, // gap
	}
	for i, c := range cases {
		if got := adjacent(c.a, c.b); got != c.want {
			t.Errorf("case %d: adjacent = %v, want %v", i, got, c.want)
		}
		if got := adjacent(c.b, c.a); got != c.want {
			t.Errorf("case %d: adjacency not symmetric", i)
		}
	}
}

func TestTorusDist(t *testing.T) {
	if d := torusDist(0.1, 0.9); d < 0.2-1e-12 || d > 0.2+1e-12 {
		t.Fatalf("torusDist(0.1, 0.9) = %v", d)
	}
	if torusDist(0.3, 0.3) != 0 {
		t.Fatal("identical points must be at distance 0")
	}
}

// Property: after any sequence of joins, the space is a partition and
// every stored key is retrievable from every node.
func TestPropertyJoinPartition(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%40) + 2
		s := NewSpace(Config{})
		rng := xrand.New(seed)
		var nodes []*Node
		for i := 0; i < n; i++ {
			nd, err := s.Join("n", rng)
			if err != nil {
				return false
			}
			nodes = append(nodes, nd)
		}
		var vol float64
		for _, z := range s.zones {
			vol += z.Volume()
		}
		if vol < 1-1e-9 || vol > 1+1e-9 {
			return false
		}
		for k := uint64(0); k < 20; k++ {
			if _, err := s.Update(nodes[int(k)%n], k, "i", func(any) any { return k }); err != nil {
				return false
			}
		}
		for k := uint64(0); k < 20; k++ {
			got, _, err := s.Get(nodes[int(k*7)%n], k)
			if err != nil || got["i"] != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestThreeDimensionalSpace(t *testing.T) {
	s := NewSpace(Config{Dims: 3})
	rng := xrand.New(77)
	var nodes []*Node
	for i := 0; i < 60; i++ {
		n, err := s.Join("n", rng)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	var vol float64
	for _, z := range s.zones {
		vol += z.Volume()
	}
	if vol < 1-1e-9 || vol > 1+1e-9 {
		t.Fatalf("3-D volumes sum to %v", vol)
	}
	for k := uint64(0); k < 30; k++ {
		if _, err := s.Update(nodes[int(k)%60], k, "i", func(any) any { return k }); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 30; k++ {
		got, _, err := s.Get(nodes[int(k*13)%60], k)
		if err != nil || got["i"] != k {
			t.Fatalf("3-D retrieval failed for %d: %v, %v", k, got, err)
		}
	}
}

func TestNodeAccessors(t *testing.T) {
	s, nodes := buildSpace(t, 18, 3)
	n := nodes[0]
	if n.Label() != "peer-0" || !n.Alive() {
		t.Fatalf("accessors: %q %v", n.Label(), n.Alive())
	}
	if n.Items() != 0 {
		t.Fatal("fresh node must store nothing")
	}
	s.Update(n, 5, "a", func(any) any { return 1 })
	total := 0
	for _, nd := range nodes {
		total += nd.Items()
	}
	if total == 0 {
		t.Fatal("item not stored anywhere")
	}
}
