// Package can implements a Content-Addressable Network (Ratnasamy et al.,
// SIGCOMM 2001) — the second P2P lookup service the QSA paper names
// ("the P2P lookup protocol, such as Chord or CAN", §3.2).
//
// CAN organizes nodes into a d-dimensional torus [0,1)^d partitioned into
// rectangular zones. A key hashes to a point; the node owning the zone
// containing the point stores the key's items. Routing is greedy: each
// zone forwards toward the neighbor closest to the target point, costing
// O(d·N^(1/d)) hops.
//
// Like the Chord package, this is an in-process simulation with faithful
// routing: every forwarding decision uses only the current zone's own
// neighbor list, and hop counts are those of the real protocol.
// Simplifications relative to a full deployment, documented here:
//
//   - joins split the incumbent's zone at the midpoint of its longest
//     dimension (the classic splitting rule);
//   - on departure, each of the leaver's zones is taken over by the owner
//     of its smallest neighboring zone. Zones never merge, so the space
//     fragments the way a real CAN does between background defragmentation
//     rounds (which we do not simulate);
//   - items are replicated into the owner zone's first Replicas−1
//     neighbor zones, standing in for CAN's multiple-realities redundancy.
package can

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/xrand"
)

// Config parameterizes a Space.
type Config struct {
	// Dims is the dimensionality d of the coordinate space. Default 2.
	Dims int
	// Replicas is the number of zones each item is stored in (owner +
	// neighbors). Default 3.
	Replicas int
	// MaxHops bounds greedy routing before the oracle fallback. Default
	// 64 · Dims.
	MaxHops int
}

func (c *Config) fillDefaults() {
	if c.Dims == 0 {
		c.Dims = 2
	}
	if c.Replicas == 0 {
		c.Replicas = 3
	}
	if c.MaxHops == 0 {
		c.MaxHops = 64 * c.Dims
	}
}

// Point is a location in [0,1)^d.
type Point []float64

// KeyPoint maps a key onto the space by hashing each coordinate
// independently.
func KeyPoint(key uint64, dims int) Point {
	p := make(Point, dims)
	for i := range p {
		h := xrand.Mix64(key ^ (uint64(i+1) * 0xA24BAED4963EE407))
		p[i] = float64(h>>11) / (1 << 53)
	}
	return p
}

// torusDist is the circular distance between two coordinates.
func torusDist(a, b float64) float64 {
	d := math.Abs(a - b)
	if d > 0.5 {
		d = 1 - d
	}
	return d
}

// Zone is one rectangular region [lo, hi) of the space. Zones are the
// routing entities; a node may own several after takeovers.
type Zone struct {
	lo, hi    []float64
	owner     *Node
	items     map[uint64]map[string]any
	neighbors []*Zone // kept sorted by lo coordinates for determinism
}

// Contains reports whether the zone contains the point.
func (z *Zone) Contains(p Point) bool {
	for i := range p {
		if p[i] < z.lo[i] || p[i] >= z.hi[i] {
			return false
		}
	}
	return true
}

// Volume returns the zone's d-dimensional volume.
func (z *Zone) Volume() float64 {
	v := 1.0
	for i := range z.lo {
		v *= z.hi[i] - z.lo[i]
	}
	return v
}

// Owner returns the node currently responsible for the zone.
func (z *Zone) Owner() *Node { return z.owner }

// dist is the squared torus distance from the zone (as a rectangle) to p.
func (z *Zone) dist(p Point) float64 {
	var sum float64
	for i := range p {
		if p[i] >= z.lo[i] && p[i] < z.hi[i] {
			continue
		}
		d := math.Min(torusDist(p[i], z.lo[i]), torusDist(p[i], z.hi[i]))
		sum += d * d
	}
	return sum
}

// less orders zones lexicographically by lower corner, then upper.
func (z *Zone) less(o *Zone) bool {
	for i := range z.lo {
		// lint:allow float-eq zone corners are exact binary fractions (splits halve intervals); ordering must be exact
		if z.lo[i] != o.lo[i] {
			return z.lo[i] < o.lo[i]
		}
	}
	for i := range z.hi {
		// lint:allow float-eq zone corners are exact binary fractions (splits halve intervals); ordering must be exact
		if z.hi[i] != o.hi[i] {
			return z.hi[i] < o.hi[i]
		}
	}
	return false
}

// touch reports whether the intervals [aLo,aHi) and [bLo,bHi) abut on the
// unit circle.
func touch(aLo, aHi, bLo, bHi float64) bool {
	// lint:allow float-eq interval endpoints are exact binary fractions; abutment is exact by construction
	if aHi == bLo || bHi == aLo {
		return true
	}
	// Wraparound: 1.0 is identified with 0.0.
	// lint:allow float-eq interval endpoints are exact binary fractions; abutment is exact by construction
	return (aHi == 1 && bLo == 0) || (bHi == 1 && aLo == 0)
}

// overlap reports whether the intervals overlap with positive measure.
func overlap(aLo, aHi, bLo, bHi float64) bool {
	return aLo < bHi && bLo < aHi
}

// adjacent reports whether two zones are CAN neighbors: they abut in
// exactly one dimension and overlap in all others. Overlap takes priority
// over abutment: a dimension spanning the whole circle touches itself
// across the wrap but is an overlapping dimension, not the abutting one.
func adjacent(a, b *Zone) bool {
	touching := 0
	for i := range a.lo {
		switch {
		case overlap(a.lo[i], a.hi[i], b.lo[i], b.hi[i]):
			// fine: overlapping dimension
		case touch(a.lo[i], a.hi[i], b.lo[i], b.hi[i]):
			touching++
		default:
			return false
		}
	}
	return touching == 1
}

// Node is one CAN participant.
type Node struct {
	label string
	alive bool
	zones []*Zone
}

// Alive reports whether the node is still part of the overlay.
func (n *Node) Alive() bool { return n.alive }

// Label returns the external binding supplied at join.
func (n *Node) Label() string { return n.label }

// Zones returns the number of zones the node currently owns.
func (n *Node) Zones() int { return len(n.zones) }

// Items returns the number of (key, item) pairs stored across the node's
// zones.
func (n *Node) Items() int {
	c := 0
	for _, z := range n.zones {
		for _, m := range z.items {
			c += len(m)
		}
	}
	return c
}

// Stats accumulates space-wide routing statistics.
type Stats struct {
	Lookups   uint64
	TotalHops uint64
	Fallbacks uint64 // greedy stalls resolved by the oracle
}

// MeanHops returns the average hops per completed lookup.
func (s Stats) MeanHops() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.TotalHops) / float64(s.Lookups)
}

// Space is the whole coordinate space: all zones and nodes.
type Space struct {
	cfg   Config
	zones []*Zone
	nodes []*Node
	stats Stats
}

// NewSpace returns an empty space.
func NewSpace(cfg Config) *Space {
	cfg.fillDefaults()
	return &Space{cfg: cfg}
}

// Size returns the number of alive nodes.
func (s *Space) Size() int {
	n := 0
	for _, nd := range s.nodes {
		if nd.alive {
			n++
		}
	}
	return n
}

// ZoneCount returns the number of zones (≥ alive nodes; grows with
// fragmentation).
func (s *Space) ZoneCount() int { return len(s.zones) }

// Stats returns routing statistics accumulated so far.
func (s *Space) Stats() Stats { return s.stats }

// zoneAt returns the zone containing the point (ground truth).
func (s *Space) zoneAt(p Point) *Zone {
	for _, z := range s.zones {
		if z.Contains(p) {
			return z
		}
	}
	return nil
}

// OwnerZone returns the ground-truth zone containing the key's point.
func (s *Space) OwnerZone(key uint64) *Zone {
	return s.zoneAt(KeyPoint(key, s.cfg.Dims))
}

// insertNeighbor adds n to z's sorted neighbor list (idempotent).
func insertNeighbor(z, n *Zone) {
	if z == n {
		return
	}
	for _, e := range z.neighbors {
		if e == n {
			return
		}
	}
	z.neighbors = append(z.neighbors, n)
	sort.Slice(z.neighbors, func(i, j int) bool { return z.neighbors[i].less(z.neighbors[j]) })
}

// dropNeighbor removes n from z's neighbor list.
func dropNeighbor(z, n *Zone) {
	for i, e := range z.neighbors {
		if e == n {
			z.neighbors = append(z.neighbors[:i], z.neighbors[i+1:]...)
			return
		}
	}
}

// Join adds a node: a random point is drawn from rng, routed to, and the
// incumbent zone is split in half along its longest dimension; the joiner
// takes the half containing the point.
func (s *Space) Join(label string, rng *xrand.Source) (*Node, error) {
	n := &Node{label: label, alive: true}
	s.nodes = append(s.nodes, n)
	if len(s.zones) == 0 {
		z := &Zone{
			lo:    make([]float64, s.cfg.Dims),
			hi:    make([]float64, s.cfg.Dims),
			owner: n,
			items: make(map[uint64]map[string]any),
		}
		for i := range z.hi {
			z.hi[i] = 1
		}
		n.zones = []*Zone{z}
		s.zones = append(s.zones, z)
		return n, nil
	}
	p := make(Point, s.cfg.Dims)
	for i := range p {
		p[i] = rng.Float64()
	}
	target := s.zoneAt(p) // bootstrap placement uses ground truth, as a
	// real join would route via its bootstrap contact
	if target == nil {
		return nil, fmt.Errorf("can: no zone contains %v", p)
	}
	s.split(target, p, n)
	return n, nil
}

// split divides zone z at the midpoint of its longest dimension; the half
// containing p goes to the joiner, the other half stays with the
// incumbent. Items move with their points; neighbor lists are rebuilt
// locally.
func (s *Space) split(z *Zone, p Point, joiner *Node) {
	// Longest dimension, ties to the lowest index (classic CAN alternates;
	// longest-side keeps zones square-ish under random joins).
	dim := 0
	width := z.hi[0] - z.lo[0]
	for i := 1; i < len(z.lo); i++ {
		if w := z.hi[i] - z.lo[i]; w > width {
			dim, width = i, w
		}
	}
	mid := z.lo[dim] + width/2

	newZone := &Zone{
		lo:    append([]float64(nil), z.lo...),
		hi:    append([]float64(nil), z.hi...),
		items: make(map[uint64]map[string]any),
	}
	// z keeps the lower half; newZone takes the upper half.
	newZone.lo[dim] = mid
	zHiOld := z.hi[dim]
	z.hi[dim] = mid
	newZone.hi[dim] = zHiOld

	// The joiner takes whichever half contains its point.
	if p[dim] >= mid {
		newZone.owner = joiner
		joiner.zones = append(joiner.zones, newZone)
	} else {
		// Swap: joiner takes the lower half (object z), incumbent keeps the
		// upper. Transfer ownership of the zone objects accordingly.
		incumbent := z.owner
		newZone.owner = incumbent
		for i, oz := range incumbent.zones {
			if oz == z {
				incumbent.zones[i] = newZone
				break
			}
		}
		z.owner = joiner
		joiner.zones = append(joiner.zones, z)
	}
	s.zones = append(s.zones, newZone)

	// Items whose point now falls into the new half move there.
	for key, m := range z.items {
		kp := KeyPoint(key, s.cfg.Dims)
		if newZone.Contains(kp) {
			newZone.items[key] = m
			delete(z.items, key)
		}
	}

	// Rebuild neighbor lists locally: candidates are the old neighbor set
	// plus the two halves themselves.
	candidates := append([]*Zone{}, z.neighbors...)
	for _, c := range candidates {
		dropNeighbor(c, z)
		dropNeighbor(z, c)
	}
	candidates = append(candidates, z, newZone)
	for _, a := range []*Zone{z, newZone} {
		for _, c := range candidates {
			if a != c && adjacent(a, c) {
				insertNeighbor(a, c)
				insertNeighbor(c, a)
			}
		}
	}
}

// removeNode removes a node's zones, handing each to the owner of its
// smallest neighboring zone (deterministic tie-break). keepItems controls
// graceful (true) vs abrupt (false) departure.
func (s *Space) removeNode(n *Node, keepItems bool) error {
	if !n.alive {
		return fmt.Errorf("can: node %q already gone", n.label)
	}
	n.alive = false
	zones := n.zones
	n.zones = nil
	for _, z := range zones {
		if !keepItems {
			z.items = make(map[uint64]map[string]any)
		}
		var best *Zone
		for _, nb := range z.neighbors {
			if nb.owner == n || !nb.owner.alive {
				continue
			}
			if best == nil || nb.Volume() < best.Volume() ||
				// lint:allow float-eq deterministic tie-break; volumes of equal zones are bit-identical products of halves
				(nb.Volume() == best.Volume() && nb.less(best)) {
				best = nb
			}
		}
		if best == nil {
			// No living neighbor: the space is emptying; drop the zone.
			s.deleteZone(z)
			continue
		}
		z.owner = best.owner
		best.owner.zones = append(best.owner.zones, z)
	}
	return nil
}

func (s *Space) deleteZone(z *Zone) {
	for _, nb := range z.neighbors {
		dropNeighbor(nb, z)
	}
	for i, e := range s.zones {
		if e == z {
			s.zones = append(s.zones[:i], s.zones[i+1:]...)
			return
		}
	}
}

// Leave removes the node gracefully: its zones and items are handed over.
func (s *Space) Leave(n *Node) error { return s.removeNode(n, true) }

// Fail removes the node abruptly: its zones are taken over but their items
// are lost (replicas in neighbor zones survive).
func (s *Space) Fail(n *Node) error { return s.removeNode(n, false) }

// route forwards from zone start toward the point, returning the zone
// containing it and the hop count. Forwarding picks the unvisited neighbor
// closest to the target; allowing non-improving moves with a visited set
// lets the query walk around local minima, the role of CAN's perimeter
// traversal. If the walk exhausts its hop budget or its options, the
// ground-truth owner resolves the query (counted in Stats.Fallbacks).
func (s *Space) route(start *Zone, p Point) (*Zone, int) {
	cur := start
	hops := 0
	visited := map[*Zone]bool{start: true}
	for hops < s.cfg.MaxHops {
		if cur.Contains(p) {
			s.stats.Lookups++
			s.stats.TotalHops += uint64(hops)
			return cur, hops
		}
		var next *Zone
		bestDist := math.Inf(1)
		for _, nb := range cur.neighbors {
			if visited[nb] {
				continue
			}
			if d := nb.dist(p); d < bestDist {
				bestDist, next = d, nb
			}
		}
		if next == nil {
			break // every neighbor already visited
		}
		visited[next] = true
		cur = next
		hops++
	}
	s.stats.Fallbacks++
	for _, z := range s.zones {
		if z.Contains(p) {
			hops++
			s.stats.Lookups++
			s.stats.TotalHops += uint64(hops)
			return z, hops
		}
	}
	return nil, hops
}

// startZone returns the zone a node routes from.
func startZone(n *Node) (*Zone, error) {
	if n == nil || !n.alive || len(n.zones) == 0 {
		return nil, fmt.Errorf("can: routing from a dead or zoneless node")
	}
	return n.zones[0], nil
}

// replicaZones returns the owner zone plus its first Replicas−1 neighbors.
func (s *Space) replicaZones(owner *Zone) []*Zone {
	zones := []*Zone{owner}
	for _, nb := range owner.neighbors {
		if len(zones) >= s.cfg.Replicas {
			break
		}
		zones = append(zones, nb)
	}
	return zones
}

// Update routes from start to the owner of key and atomically applies fn
// to the value under itemID; the result is stored on the owner and its
// replica zones (nil deletes). It returns the routing hop count.
func (s *Space) Update(start *Node, key uint64, itemID string, fn func(prev any) any) (int, error) {
	sz, err := startZone(start)
	if err != nil {
		return 0, err
	}
	owner, hops := s.route(sz, KeyPoint(key, s.cfg.Dims))
	if owner == nil {
		return hops, fmt.Errorf("can: no zone for key %d", key)
	}
	var prev any
	if m, ok := owner.items[key]; ok {
		prev = m[itemID]
	}
	next := fn(prev)
	for _, z := range s.replicaZones(owner) {
		m, ok := z.items[key]
		if next == nil {
			if ok {
				delete(m, itemID)
				if len(m) == 0 {
					delete(z.items, key)
				}
			}
			continue
		}
		if !ok {
			m = make(map[string]any)
			z.items[key] = m
		}
		m[itemID] = next
	}
	return hops, nil
}

// Get routes from start to the owner of key and returns the stored items;
// empty owners fall back to replica zones.
func (s *Space) Get(start *Node, key uint64) (map[string]any, int, error) {
	sz, err := startZone(start)
	if err != nil {
		return nil, 0, err
	}
	owner, hops := s.route(sz, KeyPoint(key, s.cfg.Dims))
	if owner == nil {
		return nil, hops, fmt.Errorf("can: no zone for key %d", key)
	}
	for i, z := range s.replicaZones(owner) {
		if i > 0 {
			hops++ // consulting a replica costs a hop; the owner is free
		}
		if m, ok := z.items[key]; ok && len(m) > 0 {
			out := make(map[string]any, len(m))
			for k, v := range m {
				out[k] = v
			}
			return out, hops, nil
		}
	}
	return map[string]any{}, hops, nil
}
