package core

// Admission control for the serving plane (DESIGN §14): a bounded,
// priority-aware request queue in front of the aggregation pipeline.
// The paper's admission tier (§3.2) decides whether a composed path's
// reservations fit; this queue decides, earlier, whether the peer
// should spend pipeline work on a request at all under sustained
// open-loop load — the load-shedding discipline distributed
// composition needs to avoid queueing collapse (Klein et al.).
//
// AdmitQueue is the pure policy: a deterministic state machine over
// (active workers, bounded wait queue) with no clocks, channels or
// locks, so the same offer/release sequence always yields the same
// decisions. internal/netproto wraps it with the waiting and
// telemetry; the simulator can drive it directly from virtual time.
// Admission control is off by default in sim mode — the paper's
// figures are closed-loop and must stay byte-identical.

// AdmitDecision classifies the outcome of one Offer.
type AdmitDecision int

const (
	// AdmitRun means a worker slot was free: run immediately.
	AdmitRun AdmitDecision = iota
	// AdmitWait means the request was queued; the caller waits until a
	// Release pops it (or it is evicted by a better arrival).
	AdmitWait
	// AdmitShed means the request was refused: the queue is full and
	// every queued request is at least as important. The caller backs
	// off for RetryAfter.
	AdmitShed
)

// AdmitItem is one queued request as the policy sees it. Seq is the
// arrival number the queue assigned — the caller's handle for
// matching evictions and pops back to its waiters.
type AdmitItem struct {
	Priority  int
	DTolerant bool
	Seq       uint64
}

// shedBefore orders shed victims: a is shed before b when a is less
// important. Lower priority sheds first; within a priority class a
// disruption-tolerant flow sheds before a non-tolerant one (it can
// retry later by design, per the ServiceRequest model); within that,
// the younger arrival sheds first, preserving the work already
// invested in older waiters.
func shedBefore(a, b AdmitItem) bool {
	if a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	if a.DTolerant != b.DTolerant {
		return a.DTolerant
	}
	return a.Seq > b.Seq
}

// AdmitQueue is the bounded priority admission queue. Not safe for
// concurrent use — callers hold their own lock (netproto) or are
// single-threaded (the simulator).
type AdmitQueue struct {
	workers  int
	maxQueue int
	active   int
	queue    []AdmitItem // arrival order; scans pick victims/winners
	seq      uint64
}

// NewAdmitQueue returns a queue with the given concurrency (workers
// ≥ 1) and wait-queue bound (maxQueue ≥ 0).
func NewAdmitQueue(workers, maxQueue int) *AdmitQueue {
	if workers < 1 {
		workers = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &AdmitQueue{
		workers:  workers,
		maxQueue: maxQueue,
		queue:    make([]AdmitItem, 0, maxQueue),
	}
}

// Active returns the number of occupied worker slots.
func (q *AdmitQueue) Active() int { return q.active }

// QueueLen returns the number of waiting requests.
func (q *AdmitQueue) QueueLen() int { return len(q.queue) }

// Offer submits one request. The returned decision applies to the
// offered request; when admitting it evicts a queued victim, evicted
// is that item and hasEvict is true — the caller must fail the
// victim's waiter with a shed. item carries the queue's Seq handle
// for AdmitWait decisions.
//
// The uncontended path (a free worker slot) is two integer compares
// and an increment — the zero-allocation fast path ci.sh gates on.
//
// lint:hotpath admission decision runs per serving request
func (q *AdmitQueue) Offer(priority int, dtolerant bool) (d AdmitDecision, item AdmitItem, evicted AdmitItem, hasEvict bool) {
	if q.active < q.workers {
		q.active++
		return AdmitRun, AdmitItem{Priority: priority, DTolerant: dtolerant}, AdmitItem{}, false
	}
	q.seq++
	item = AdmitItem{Priority: priority, DTolerant: dtolerant, Seq: q.seq}
	if len(q.queue) < q.maxQueue {
		q.queue = append(q.queue, item)
		return AdmitWait, item, AdmitItem{}, false
	}
	// Queue full: shed the least important of (queue ∪ arrival).
	victim := -1
	for i := range q.queue {
		if victim < 0 || shedBefore(q.queue[i], q.queue[victim]) {
			victim = i
		}
	}
	if victim < 0 || shedBefore(item, q.queue[victim]) {
		// The arrival itself is the least important (or nothing can
		// queue at all): shed it.
		return AdmitShed, item, AdmitItem{}, false
	}
	evicted = q.queue[victim]
	copy(q.queue[victim:], q.queue[victim+1:])
	q.queue = q.queue[:len(q.queue)-1]
	q.queue = append(q.queue, item)
	return AdmitWait, item, evicted, true
}

// Release frees one worker slot. When waiters are queued, the most
// important one (inverse shed order: highest priority, non-tolerant
// before tolerant, oldest first) is popped and returned with ok=true
// — the slot passes directly to it. With an empty queue the slot is
// returned to the pool and ok is false.
//
// A caller that decides not to run the popped item (e.g. its deadline
// already expired while queued) must call Release again: the slot it
// was handed is free again.
func (q *AdmitQueue) Release() (next AdmitItem, ok bool) {
	if len(q.queue) == 0 {
		if q.active > 0 {
			q.active--
		}
		return AdmitItem{}, false
	}
	best := 0
	for i := 1; i < len(q.queue); i++ {
		if shedBefore(q.queue[best], q.queue[i]) {
			best = i
		}
	}
	next = q.queue[best]
	copy(q.queue[best:], q.queue[best+1:])
	q.queue = q.queue[:len(q.queue)-1]
	return next, true
}

// RetryAfter is the deterministic backoff hint for a shed request, in
// seconds, as a multiple of base: a fuller wait queue pushes clients
// further away. Pure in the queue state, so identical load states
// produce identical hints.
func (q *AdmitQueue) RetryAfter(base float64) float64 {
	return base * float64(1+len(q.queue))
}
