// Package core integrates the two tiers of the QSA model into the
// end-to-end aggregation pipeline of the paper's §3.2:
//
//	acquire request → discover candidate instances (DHT lookup) →
//	compose a QoS-consistent service path → select provisioning peers →
//	admit the session (reserve resources and bandwidth).
//
// It also implements the runtime recovery extension (paper §6 future
// work): when a provisioning peer departs, the failed component is
// re-discovered and re-selected from its downstream neighbor.
//
// The same engine runs the paper's three evaluated strategies and the
// ablation hybrids; Strategy picks the composer and the selector
// independently. Both the simulator (internal/sim) and the public façade
// (package qsa) delegate here, so the pipeline exists exactly once.
package core

import (
	"errors"
	"fmt"
	"strconv"

	"repro/internal/compose"
	"repro/internal/obs"
	"repro/internal/probe"
	"repro/internal/registry"
	"repro/internal/selection"
	"repro/internal/service"
	"repro/internal/session"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// ComposeKind selects the composition-tier algorithm.
type ComposeKind int

// Composition algorithms.
const (
	// ComposeQCS is the paper's QoS-consistent shortest composition.
	ComposeQCS ComposeKind = iota
	// ComposeRandom picks a random QoS-consistent path.
	ComposeRandom
	// ComposeFixed always picks the same QoS-consistent path.
	ComposeFixed
)

// SelectKind selects the peer-selection-tier algorithm.
type SelectKind int

// Peer selection algorithms.
const (
	// SelectPhi is the paper's Φ-based dynamic peer selection.
	SelectPhi SelectKind = iota
	// SelectRandom picks uniform random providers.
	SelectRandom
	// SelectFixed picks the dedicated (lowest-ID) provider.
	SelectFixed
)

// Strategy pairs a composer with a selector.
type Strategy struct {
	Compose ComposeKind
	Select  SelectKind

	// Retries is the number of recomposition attempts after a selection or
	// admission failure: the failed path's instances are excluded and the
	// composer runs again over the remaining candidates. This serves the
	// paper's efficiency goal (§3: "utilize resource pools ... so that it
	// can admit as many user requests as possible") — when the cheapest
	// instances' provider pools saturate, QSA falls over to the
	// next-cheapest tier instead of rejecting the request. 0 disables
	// (the paper-literal single-shot behaviour).
	Retries int
}

// The paper's three evaluated strategies. QSA retries twice; the
// baselines are single-shot (neither random nor fixed has a notion of a
// "next best" path).
var (
	StrategyQSA    = Strategy{Compose: ComposeQCS, Select: SelectPhi, Retries: 2}
	StrategyRandom = Strategy{Compose: ComposeRandom, Select: SelectRandom}
	StrategyFixed  = Strategy{Compose: ComposeFixed, Select: SelectFixed}
)

// Stage identifies where in the pipeline a request failed.
type Stage int

// Pipeline stages, in order.
const (
	// StageNone means the request was admitted.
	StageNone Stage = iota
	// StageDiscovery means some abstract service had no candidates.
	StageDiscovery
	// StageCompose means no QoS-consistent path exists.
	StageCompose
	// StageSelection means no peer could be selected at some hop.
	StageSelection
	// StageAdmission means a reservation was rejected.
	StageAdmission
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case StageNone:
		return "admitted"
	case StageDiscovery:
		return "discovery"
	case StageCompose:
		return "compose"
	case StageSelection:
		return "selection"
	case StageAdmission:
		return "admission"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// ErrAggregation wraps pipeline failures with their stage.
type ErrAggregation struct {
	Stage Stage
	Err   error
}

// Error implements the error interface.
func (e *ErrAggregation) Error() string {
	return fmt.Sprintf("core: %v failed: %v", e.Stage, e.Err)
}

// Unwrap exposes the underlying cause.
func (e *ErrAggregation) Unwrap() error { return e.Err }

// StageOf extracts the failure stage from an aggregation error; StageNone
// for nil or foreign errors.
func StageOf(err error) Stage {
	var ea *ErrAggregation
	if errors.As(err, &ea) {
		return ea.Stage
	}
	return StageNone
}

// aggScratch is the aggregation pipeline's reusable working memory: the
// discovery result, per-hop provider buffers, and the retry-excluded
// layer double buffer all live here and are recycled across Aggregate
// calls, so the steady-state request path performs no slice or map
// allocations of its own.
type aggScratch struct {
	disc      Discovery
	providers [][]topology.PeerID
	// retry alternates between two layer buffers: attempt n+1's filtered
	// layers are built while attempt n's (the source of the filter) are
	// still referenced, so a single buffer would alias itself.
	retry [2][][]*service.Instance
}

// Aggregator is the integrated QSA engine over a grid's subsystems. It is
// single-goroutine, like the simulation driving it: the scratch buffers,
// the RNG, and the tracer are all unsynchronized.
type Aggregator struct {
	Registry *registry.Registry
	Sessions *session.Manager

	// PhiSelector performs informed Φ selection (and recovery).
	PhiSelector *selection.Selector
	// RandomSelector and FixedSelector are the baseline selectors.
	RandomSelector *selection.Random
	FixedSelector  *selection.Fixed

	// ComposeConfig carries the Definition 3.1 weights.
	ComposeConfig compose.Config

	// RNG drives the random composer.
	RNG *xrand.Source

	// Tracer, when non-nil, receives decision-trace events (compose
	// results, retries, reservations, admissions, recoveries). Like RNG
	// it is used from the single simulation goroutine only.
	Tracer *obs.Tracer
	// ReqID is the request ID stamped onto trace events. The caller
	// (the simulator) sets it before each Aggregate call so core events
	// join the caller's request span; it is never read when Tracer is
	// nil.
	ReqID uint64
	// Spans, when enabled, mints the causal stage spans of the request
	// trace, and ReqSpan is the current request's root span context —
	// set by the caller alongside ReqID (the zero context marks the
	// request unsampled, making every stage span inert). Stage spans are
	// emitted only from the serial paths — Aggregate, AggregateFinish,
	// and the attempt loop — never from the Prepare* speculative stages,
	// so the span-ID sequence (and with it every trace byte) replays
	// identically across shard counts. In simulator virtual time the
	// whole pipeline runs at one instant, so these spans are
	// zero-duration: they carry structure (stage order, attempts,
	// outcomes), not latency; the prototype's wall-clock spans carry
	// both (DESIGN §13).
	Spans   *obs.Spans
	ReqSpan obs.SpanContext

	sc aggScratch
}

// stageName maps a pipeline stage onto the obs trace vocabulary.
func stageName(s Stage) string {
	switch s {
	case StageDiscovery:
		return obs.StageDiscovery
	case StageCompose:
		return obs.StageCompose
	case StageSelection:
		return obs.StageSelection
	default:
		return obs.StageAdmission
	}
}

// EventStage is the trace stage a pipeline error is attributed to —
// exported so event consumers and RequestStats bookkeeping agree on the
// mapping (every non-pipeline admission error is "admission").
func EventStage(err error) string {
	return stageName(StageOf(err))
}

// stageSpan closes one stage span under the current request's root.
// The disabled path (Spans nil or the request unsampled) is a couple of
// branches and allocates nothing; call sites that build allocating
// event fields gate on Spans.Enabled() first.
func (a *Aggregator) stageSpan(ev obs.Event) {
	a.Spans.Join(a.ReqSpan, a.ReqID).End(ev)
}

// Discovery is the result of looking up every service of an abstract path.
type Discovery struct {
	Layers  [][]*service.Instance
	Entries [][]*registry.InstanceEntry

	// byInst indexes every discovered entry by its instance, so Providers
	// is a map probe instead of a per-call layer scan. Instances are
	// registry-unique, so one flat index covers all layers.
	byInst map[*service.Instance]*registry.InstanceEntry
}

// Discover performs the DHT lookups for the request's abstract path from
// the user's peer.
func (a *Aggregator) Discover(user topology.PeerID, path []service.Name, now float64) (*Discovery, error) {
	d := &Discovery{}
	if err := a.discoverInto(d, user, path, now); err != nil {
		return nil, err
	}
	return d, nil
}

// discoverInto runs the lookups into d, reusing whatever buffers d
// already holds.
func (a *Aggregator) discoverInto(d *Discovery, user topology.PeerID, path []service.Name, now float64) error {
	for len(d.Layers) < len(path) {
		d.Layers = append(d.Layers, nil)
		d.Entries = append(d.Entries, nil)
	}
	d.Layers = d.Layers[:len(path)]
	d.Entries = d.Entries[:len(path)]
	if d.byInst == nil {
		// lint:allow hotalloc first-call initialization; the map is cleared and reused on every later request
		d.byInst = make(map[*service.Instance]*registry.InstanceEntry)
	} else {
		clear(d.byInst)
	}
	for k, name := range path {
		es, _, err := a.Registry.Lookup(user, name, now)
		if err != nil {
			return &ErrAggregation{StageDiscovery, err}
		}
		if len(es) == 0 {
			return &ErrAggregation{StageDiscovery, fmt.Errorf("no candidates for %q", name)}
		}
		d.Entries[k] = es
		layer := d.Layers[k][:0]
		for _, e := range es {
			layer = append(layer, e.Inst)
			d.byInst[e.Inst] = e
		}
		d.Layers[k] = layer
	}
	return nil
}

// Providers appends to dst the live provider peers of the chosen instance
// at layer k of the discovery and returns dst.
func (d *Discovery) Providers(k int, inst *service.Instance, now float64, dst []topology.PeerID) []topology.PeerID {
	if d.byInst != nil {
		if e, ok := d.byInst[inst]; ok {
			return e.Providers(now, dst)
		}
		return dst
	}
	for _, e := range d.Entries[k] {
		if e.Inst == inst {
			return e.Providers(now, dst)
		}
	}
	return dst
}

// Aggregate runs the full pipeline for one request. On success it returns
// the admitted session; on failure, an *ErrAggregation carrying the stage
// of the final attempt.
// lint:hotpath per-request steady-state pipeline; its allocation budget is the bench-gated 21 allocs/op
func (a *Aggregator) Aggregate(user topology.PeerID, req *service.Request,
	now float64, strat Strategy) (*session.Session, error) {

	if err := req.Validate(); err != nil {
		if a.Spans.Enabled() {
			a.stageSpan(obs.Event{Stage: obs.StageDiscovery, Err: err.Error()})
		}
		return nil, &ErrAggregation{StageDiscovery, err}
	}
	disc := &a.sc.disc
	if err := a.discoverInto(disc, user, req.App.Path, now); err != nil {
		if a.Spans.Enabled() {
			a.stageSpan(obs.Event{Stage: obs.StageDiscovery, Err: err.Error()})
		}
		return nil, err
	}
	if a.Spans.Enabled() {
		a.stageSpan(obs.Event{Stage: obs.StageDiscovery, OK: true})
	}
	return a.runAttempts(user, req, now, strat, disc, a.RNG, nil, nil, false)
}

// runAttempts is the compose→select→admit retry loop shared by Aggregate
// and AggregateFinish. When preComposed is true, attempt 0 consumes the
// already-computed (prepPath, prepErr) pair instead of composing; every
// later attempt composes over the exclusion-filtered layers with rng.
func (a *Aggregator) runAttempts(user topology.PeerID, req *service.Request, now float64,
	strat Strategy, disc *Discovery, rng *xrand.Source,
	prepPath *compose.Path, prepErr error, preComposed bool) (*session.Session, error) {

	layers := disc.Layers
	var lastErr error
	for attempt := 0; attempt <= strat.Retries; attempt++ {
		if attempt > 0 && a.Tracer != nil {
			a.Tracer.Emit(obs.Event{Kind: obs.KindRetry, Req: a.ReqID, Attempt: attempt})
		}
		var sess *session.Session
		var path *compose.Path
		var err error
		if attempt == 0 && preComposed {
			sess, path, err = a.attemptWith(user, req, now, strat, disc, prepPath, prepErr, attempt)
		} else {
			sess, path, err = a.attempt(user, req, now, strat, disc, layers, attempt, rng)
		}
		if err == nil {
			return sess, nil
		}
		lastErr = err
		stage := StageOf(err)
		if stage != StageSelection && stage != StageAdmission || path == nil {
			return nil, err // compose failures cannot improve by retrying
		}
		// Exclude the failed path's instances and recompose over the rest.
		next := a.sc.retry[attempt%2]
		for len(next) < len(layers) {
			next = append(next, nil)
		}
		next = next[:len(layers)]
		for k := range layers {
			nk := next[k][:0]
			for _, in := range layers[k] {
				if in != path.Instances[k] {
					nk = append(nk, in)
				}
			}
			next[k] = nk
			if len(nk) == 0 {
				a.sc.retry[attempt%2] = next
				return nil, err // a layer ran out of candidates
			}
		}
		a.sc.retry[attempt%2] = next
		layers = next
	}
	return nil, lastErr
}

// composePath runs the strategy's composition algorithm over layers.
// Dispatch assigns rather than tail-returns: hotalloc reads a block that
// terminates in `return ..., err` as a cold failure path, and the
// composer calls must stay inside the analyzed hot region.
func (a *Aggregator) composePath(layers [][]*service.Instance, req *service.Request,
	strat Strategy, rng *xrand.Source) (*compose.Path, error) {
	var path *compose.Path
	var err error
	switch strat.Compose {
	case ComposeQCS:
		path, err = compose.QCS(layers, req.UserQoS, a.ComposeConfig)
	case ComposeRandom:
		path, err = compose.Random(layers, req.UserQoS, rng, a.ComposeConfig)
	case ComposeFixed:
		path, err = compose.Fixed(layers, req.UserQoS, a.ComposeConfig)
	default:
		// lint:allow hotalloc invalid-Strategy guard; unreachable with the vetted strategies the bench and sim use
		err = fmt.Errorf("unknown composer %d", strat.Compose)
	}
	return path, err
}

// attempt runs one compose→select→admit pass over the given layers.
func (a *Aggregator) attempt(user topology.PeerID, req *service.Request, now float64,
	strat Strategy, disc *Discovery, layers [][]*service.Instance, attempt int,
	rng *xrand.Source) (*session.Session, *compose.Path, error) {

	path, err := a.composePath(layers, req, strat, rng)
	return a.attemptWith(user, req, now, strat, disc, path, err, attempt)
}

// attemptWith finishes one attempt from an already-computed composition
// outcome: it emits the compose trace event and runs the
// provider-resolution → selection → admission tail.
func (a *Aggregator) attemptWith(user topology.PeerID, req *service.Request, now float64,
	strat Strategy, disc *Discovery, path *compose.Path, err error, attempt int) (*session.Session, *compose.Path, error) {

	if err != nil {
		if a.Tracer != nil {
			a.Tracer.Emit(obs.Event{Kind: obs.KindCompose, Req: a.ReqID, Attempt: attempt, Err: err.Error()})
		}
		if a.Spans.Enabled() {
			a.stageSpan(obs.Event{Stage: obs.StageCompose, Attempt: attempt, Err: err.Error()})
		}
		return nil, nil, &ErrAggregation{StageCompose, err}
	}
	if a.Tracer != nil {
		// lint:allow hotalloc tracer-enabled block; the steady-state bench runs with Tracer nil
		ids := make([]string, len(path.Instances))
		for i, in := range path.Instances {
			ids[i] = in.ID
		}
		a.Tracer.Emit(obs.Event{Kind: obs.KindCompose, Req: a.ReqID, Attempt: attempt,
			Path: ids, Cost: path.Cost, OK: true})
	}
	if a.Spans.Enabled() {
		a.stageSpan(obs.Event{Stage: obs.StageCompose, Attempt: attempt, Cost: path.Cost, OK: true})
	}

	for len(a.sc.providers) < len(path.Instances) {
		a.sc.providers = append(a.sc.providers, nil)
	}
	providers := a.sc.providers[:len(path.Instances)]
	for k, inst := range path.Instances {
		providers[k] = disc.Providers(k, inst, now, providers[k][:0])
		if len(providers[k]) == 0 {
			if a.Spans.Enabled() {
				a.stageSpan(obs.Event{Stage: obs.StageSelection, Attempt: attempt,
					Err: "no live providers for " + inst.ID})
			}
			return nil, path, &ErrAggregation{StageSelection, fmt.Errorf("no live providers for %s", inst.ID)}
		}
	}
	var peers []topology.PeerID
	var ok bool
	switch strat.Select {
	case SelectPhi:
		peers, ok = a.PhiSelector.SelectPath(user, path.Instances, providers, req.Duration, now)
	case SelectRandom:
		peers, ok = a.RandomSelector.SelectPath(user, path.Instances, providers, req.Duration, now)
	case SelectFixed:
		peers, ok = a.FixedSelector.SelectPath(user, path.Instances, providers, req.Duration, now)
	}
	if !ok {
		if a.Spans.Enabled() {
			a.stageSpan(obs.Event{Stage: obs.StageSelection, Attempt: attempt, Err: "no selectable peer"})
		}
		return nil, path, &ErrAggregation{StageSelection, fmt.Errorf("no selectable peer")}
	}
	if a.Spans.Enabled() {
		a.stageSpan(obs.Event{Stage: obs.StageSelection, Attempt: attempt, OK: true})
	}

	sess, err := a.Sessions.Admit(user, path.Instances, peers, req.Duration)
	if err != nil {
		if a.Tracer != nil {
			a.Tracer.Emit(obs.Event{Kind: obs.KindReserve, Req: a.ReqID, Attempt: attempt, Err: err.Error()})
		}
		if a.Spans.Enabled() {
			a.stageSpan(obs.Event{Stage: obs.StageAdmission, Attempt: attempt, Err: err.Error()})
		}
		return nil, path, &ErrAggregation{StageAdmission, err}
	}
	if a.Tracer != nil {
		// lint:allow hotalloc tracer-enabled block; the steady-state bench runs with Tracer nil
		hosts := make([]string, len(peers))
		for i, p := range peers {
			// lint:allow hotalloc tracer-enabled block; the steady-state bench runs with Tracer nil
			hosts[i] = strconv.Itoa(int(p))
		}
		a.Tracer.Emit(obs.Event{Kind: obs.KindAdmit, Req: a.ReqID, Attempt: attempt,
			// lint:allow hotalloc tracer-enabled block; the steady-state bench runs with Tracer nil
			Session: strconv.FormatUint(sess.ID, 10), Path: hosts, OK: true})
	}
	if a.Spans.Enabled() {
		a.stageSpan(obs.Event{Stage: obs.StageAdmission, Attempt: attempt, OK: true,
			// lint:allow hotalloc span-enabled block; the steady-state bench runs with Spans nil
			Session: strconv.FormatUint(sess.ID, 10)})
	}
	return sess, path, nil
}

// PreparedAggregation carries the pre-stages of one request through the
// sharded engine: discovery (serial pre-pass) and the first composition
// attempt (speculative parallel stage). The commit validates it against
// the registry epoch and topology version captured by the caller and
// either finishes via AggregateFinish or discards it and redoes the
// request with plain Aggregate.
type PreparedAggregation struct {
	// Disc is the discovery result, owned by this request (not the
	// aggregator's scratch) so prepared requests can coexist within an
	// epoch.
	Disc *Discovery
	// Err is a validation or discovery failure; when set the other
	// fields are empty and AggregateFinish returns it unchanged.
	Err error
	// Path and ComposeErr are the speculative first composition outcome;
	// meaningful only when Composed is true.
	Path       *compose.Path
	ComposeErr error
	Composed   bool
}

// PrepareDiscovery runs the validation and discovery head of the
// pipeline for one request. It is the serial pre-stage of the sharded
// engine: it charges registry lookups (and their statistics) at claim
// time, in merged event order, so the charge sequence is identical for
// every shard count. The result is self-contained — it does not alias
// the aggregator's scratch buffers.
func (a *Aggregator) PrepareDiscovery(user topology.PeerID, req *service.Request,
	now float64) *PreparedAggregation {

	p := &PreparedAggregation{}
	if err := req.Validate(); err != nil {
		p.Err = &ErrAggregation{StageDiscovery, err}
		return p
	}
	d := &Discovery{}
	if err := a.discoverInto(d, user, req.App.Path, now); err != nil {
		p.Err = err
		return p
	}
	p.Disc = d
	return p
}

// PrepareCompose runs the speculative first composition attempt over a
// prepared discovery. It touches only the aggregator's compose scratch
// and memo (lane-local in the sharded simulator) plus rng, so it is safe
// on a prepare worker as long as each aggregator stays on one goroutine.
// A prepared request that failed discovery is left untouched.
func (a *Aggregator) PrepareCompose(p *PreparedAggregation, req *service.Request,
	strat Strategy, rng *xrand.Source) {

	if p.Err != nil || p.Disc == nil {
		return
	}
	p.Path, p.ComposeErr = a.composePath(p.Disc.Layers, req, strat, rng)
	p.Composed = true
}

// AggregateFinish commits a prepared request: it consumes the prepared
// discovery and first composition (composing inline if the speculative
// stage never ran) and continues through selection, admission, and the
// retry loop with rng. The caller must have validated that the registry
// and topology are unchanged since PrepareDiscovery; otherwise it must
// discard the preparation and call Aggregate instead.
func (a *Aggregator) AggregateFinish(p *PreparedAggregation, user topology.PeerID,
	req *service.Request, now float64, strat Strategy, rng *xrand.Source) (*session.Session, error) {

	if p.Err != nil {
		if a.Spans.Enabled() {
			a.stageSpan(obs.Event{Stage: EventStage(p.Err), Err: p.Err.Error()})
		}
		return nil, p.Err
	}
	// The discovery span is closed here — at the commit, not in
	// PrepareDiscovery — so the span-ID stream advances in commit order
	// exactly as the unsharded execution would.
	if a.Spans.Enabled() {
		a.stageSpan(obs.Event{Stage: obs.StageDiscovery, OK: true})
	}
	if !p.Composed {
		a.PrepareCompose(p, req, strat, rng)
	}
	return a.runAttempts(user, req, now, strat, p.Disc, rng, p.Path, p.ComposeErr, true)
}

// PathCost exposes the aggregated Definition 3.1 cost of an instance
// sequence.
func (a *Aggregator) PathCost(instances []*service.Instance) float64 {
	return a.ComposeConfig.PathCost(instances)
}

// Recover re-selects a replacement peer for component k of a session whose
// host departed — the session.RecoveryFunc implementation. The replacement
// is chosen from the component's current live providers by the downstream
// neighbor, using the Φ selector.
// lint:hotpath churn-path recovery runs once per departed host across every live session
func (a *Aggregator) Recover(s *session.Session, k int, now float64) (topology.PeerID, bool) {
	// Recovery runs from churn handling, outside any Aggregate call, so
	// the trace event is attributed via the session (ReqID is stale
	// here); Analyze joins it back to the request through the admit
	// event's session binding.
	replacement, ok := a.recoverStep(s, k, now)
	if a.Tracer != nil {
		// lint:allow hotalloc tracer-enabled block; recovery tracing is churn-path, not steady state
		ev := obs.Event{Kind: obs.KindRecover, Session: strconv.FormatUint(s.ID, 10),
			Hop: k + 1, Inst: s.Instances[k].ID, OK: ok}
		if ok {
			// lint:allow hotalloc tracer-enabled block; recovery tracing is churn-path, not steady state
			ev.Peer = strconv.Itoa(int(replacement))
		}
		a.Tracer.Emit(ev)
	}
	return replacement, ok
}

// recoverStep is the recovery decision proper.
func (a *Aggregator) recoverStep(s *session.Session, k int, now float64) (topology.PeerID, bool) {
	downstream := s.User
	if k < len(s.Peers)-1 {
		downstream = s.Peers[k+1]
	}
	inst := s.Instances[k]
	entries, _, err := a.Registry.Lookup(downstream, inst.Service, now)
	if err != nil {
		return -1, false
	}
	var cands []topology.PeerID
	for _, e := range entries {
		if e.Inst == inst {
			cands = e.Providers(now, cands)
			break
		}
	}
	// The failed host is known to be gone regardless of what (possibly
	// stale, within the probe period) measurements claim — exclude it.
	dead := s.Peers[k]
	live := cands[:0]
	for _, c := range cands {
		if c != dead {
			live = append(live, c)
		}
	}
	if len(live) == 0 {
		return -1, false
	}
	remaining := s.Start + s.Duration - now
	return a.PhiSelector.SelectNext(downstream, inst, live, remaining, now, probe.IndirectRank(1))
}
