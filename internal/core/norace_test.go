//go:build !race

package core

// raceEnabled reports whether the race detector is compiled in; the
// allocation-pinning tests skip under it (instrumentation inflates
// allocation counts).
const raceEnabled = false
