package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/eventsim"
	"repro/internal/probe"
	"repro/internal/qos"
	"repro/internal/registry"
	"repro/internal/resource"
	"repro/internal/selection"
	"repro/internal/service"
	"repro/internal/session"
	"repro/internal/topology"
	"repro/internal/xrand"
)

type fixture struct {
	net    *topology.Network
	engine *eventsim.Engine
	reg    *registry.Registry
	agg    *Aggregator
	app    *service.Application
}

// newFixture wires a 30-peer grid with a 2-service application: "src"
// (formats A→M) feeding "snk" (M→OUT), each with 2 instances on 4
// providers.
func newFixture(t *testing.T) *fixture {
	t.Helper()
	net, err := topology.New(topology.Default(1, 30))
	if err != nil {
		t.Fatal(err)
	}
	engine := eventsim.New()
	reg := registry.New(registry.Config{}, 1)
	for i := 0; i < 30; i++ {
		if err := reg.AddPeer(topology.PeerID(i)); err != nil {
			t.Fatal(err)
		}
	}
	probes := probe.NewManager(probe.Config{}, net)
	sel, err := selection.New(selection.DefaultConfig(), probes, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	sess := session.NewManager(net, engine)
	f := &fixture{
		net:    net,
		engine: engine,
		reg:    reg,
		agg: &Aggregator{
			Registry:       reg,
			Sessions:       sess,
			PhiSelector:    sel,
			RandomSelector: selection.NewRandom(xrand.New(3)),
			FixedSelector:  selection.NewFixed(),
			RNG:            xrand.New(4),
		},
		app: &service.Application{ID: "app", Path: []service.Name{"src", "snk"}},
	}
	mk := func(svc service.Name, i int, inFmt, outFmt string, r float64) *service.Instance {
		return &service.Instance{
			ID:      fmt.Sprintf("%s#%d", svc, i),
			Service: svc,
			Qin:     qos.MustVector(qos.Sym("format", inFmt)),
			Qout:    qos.MustVector(qos.Sym("format", outFmt), qos.Range("rate", 20, 25)),
			R:       resource.Vec2(r, r),
			OutKbps: 10,
		}
	}
	// Disjoint provider pools: src#0 on peers 2–5, src#1 on 6–9,
	// snk#0 on 10–13, snk#1 on 14–17.
	for i := 0; i < 2; i++ {
		src := mk("src", i, "A", "M", 20+float64(i)*30)
		snk := mk("snk", i, "M", "OUT", 20+float64(i)*30)
		for p := 0; p < 4; p++ {
			if err := reg.Register(topology.PeerID(p), src, topology.PeerID(2+4*i+p), 0); err != nil {
				t.Fatal(err)
			}
			if err := reg.Register(topology.PeerID(p), snk, topology.PeerID(10+4*i+p), 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	return f
}

func (f *fixture) request(dur float64) *service.Request {
	return &service.Request{
		App:      f.app,
		Level:    qos.Average,
		UserQoS:  qos.MustVector(qos.Range("rate", 10, 1e9)),
		Duration: dur,
	}
}

func TestAggregateAllStrategies(t *testing.T) {
	for _, strat := range []Strategy{StrategyQSA, StrategyRandom, StrategyFixed,
		{Compose: ComposeRandom, Select: SelectPhi}, {Compose: ComposeQCS, Select: SelectRandom}} {
		f := newFixture(t)
		sess, err := f.agg.Aggregate(0, f.request(5), 0, strat)
		if err != nil {
			t.Fatalf("%+v: %v", strat, err)
		}
		if len(sess.Instances) != 2 || len(sess.Peers) != 2 {
			t.Fatalf("%+v: session shape %v/%v", strat, sess.Instances, sess.Peers)
		}
		if sess.State != session.Active {
			t.Fatalf("%+v: state %v", strat, sess.State)
		}
	}
}

func TestQCSPicksCheapestInstances(t *testing.T) {
	f := newFixture(t)
	sess, err := f.agg.Aggregate(0, f.request(5), 0, StrategyQSA)
	if err != nil {
		t.Fatal(err)
	}
	// Instance #0 of each service is the cheap one (R=20 vs 50).
	if sess.Instances[0].ID != "src#0" || sess.Instances[1].ID != "snk#0" {
		t.Fatalf("QCS chose %v, %v", sess.Instances[0].ID, sess.Instances[1].ID)
	}
	if c := f.agg.PathCost(sess.Instances); c <= 0 {
		t.Fatalf("PathCost = %v", c)
	}
}

func TestStageDiscovery(t *testing.T) {
	f := newFixture(t)
	req := f.request(5)
	req.App = &service.Application{ID: "x", Path: []service.Name{"ghost"}}
	_, err := f.agg.Aggregate(0, req, 0, StrategyQSA)
	if StageOf(err) != StageDiscovery {
		t.Fatalf("stage = %v, err = %v", StageOf(err), err)
	}
}

func TestStageCompose(t *testing.T) {
	f := newFixture(t)
	req := f.request(5)
	req.UserQoS = qos.MustVector(qos.Range("rate", 30, 1e9)) // nobody produces ≥30
	_, err := f.agg.Aggregate(0, req, 0, StrategyQSA)
	if StageOf(err) != StageCompose {
		t.Fatalf("stage = %v, err = %v", StageOf(err), err)
	}
}

func TestStageSelection(t *testing.T) {
	f := newFixture(t)
	// Depart every snk provider (peers 10..17): selection cannot place it.
	for p := 10; p <= 17; p++ {
		f.net.Depart(topology.PeerID(p), 0)
	}
	_, err := f.agg.Aggregate(0, f.request(5), 0, StrategyQSA)
	if StageOf(err) != StageSelection {
		t.Fatalf("stage = %v, err = %v", StageOf(err), err)
	}
}

func TestStageAdmission(t *testing.T) {
	f := newFixture(t)
	// The random selector ignores load, so saturating all providers forces
	// an admission failure.
	f.net.AlivePeers(func(p *topology.Peer) {
		p.Ledger.Reserve(p.Capacity)
	})
	_, err := f.agg.Aggregate(0, f.request(5), 0, StrategyRandom)
	if StageOf(err) != StageAdmission {
		t.Fatalf("stage = %v, err = %v", StageOf(err), err)
	}
}

func TestInvalidRequest(t *testing.T) {
	f := newFixture(t)
	req := f.request(0) // zero duration
	if _, err := f.agg.Aggregate(0, req, 0, StrategyQSA); err == nil {
		t.Fatal("invalid request accepted")
	}
}

func TestRecover(t *testing.T) {
	f := newFixture(t)
	f.agg.Sessions.Recovery = f.agg.Recover
	sess, err := f.agg.Aggregate(0, f.request(30), 0, StrategyQSA)
	if err != nil {
		t.Fatal(err)
	}
	victim := sess.Peers[0]
	f.net.Depart(victim, 1)
	f.agg.Sessions.PeerDeparted(victim, 1)
	if sess.State != session.Active {
		t.Fatalf("state = %v after recoverable departure", sess.State)
	}
	if sess.Peers[0] == victim {
		t.Fatal("component not re-homed")
	}
	if sess.Recovered != 1 {
		t.Fatalf("Recovered = %d", sess.Recovered)
	}
}

func TestRecoverFailsWhenNoProviders(t *testing.T) {
	f := newFixture(t)
	f.agg.Sessions.Recovery = f.agg.Recover
	sess, err := f.agg.Aggregate(0, f.request(30), 0, StrategyQSA)
	if err != nil {
		t.Fatal(err)
	}
	// Kill all src providers (peers 2..9), then the chosen src host.
	for p := 2; p <= 9; p++ {
		if pp := f.net.MustPeer(topology.PeerID(p)); pp.Alive {
			f.net.Depart(topology.PeerID(p), 1)
		}
	}
	f.agg.Sessions.PeerDeparted(sess.Peers[0], 1)
	if sess.State != session.Failed {
		t.Fatalf("state = %v, recovery should have failed with no providers", sess.State)
	}
}

func TestRetryFallsOverToNextTier(t *testing.T) {
	f := newFixture(t)
	// Saturate the cheap instances' provider pools (src#0 on 2–5, snk#0 on
	// 10–13): single-shot QSA fails, QSA with retries lands on tier #1.
	for _, p := range []int{2, 3, 4, 5, 10, 11, 12, 13} {
		pr := f.net.MustPeer(topology.PeerID(p))
		pr.Ledger.Reserve(pr.Capacity)
	}
	single := StrategyQSA
	single.Retries = 0
	if _, err := f.agg.Aggregate(0, f.request(5), 0, single); err == nil {
		t.Fatal("single-shot QSA should fail with the cheap tier saturated")
	}
	sess, err := f.agg.Aggregate(0, f.request(5), 0, StrategyQSA)
	if err != nil {
		t.Fatalf("retrying QSA should fall over to the expensive tier: %v", err)
	}
	if sess.Instances[0].ID != "src#1" || sess.Instances[1].ID != "snk#1" {
		t.Fatalf("retry chose %v, %v", sess.Instances[0].ID, sess.Instances[1].ID)
	}
}

func TestRetryGivesUpWhenLayerExhausted(t *testing.T) {
	f := newFixture(t)
	// Saturate ALL providers: even retries cannot admit.
	f.net.AlivePeers(func(p *topology.Peer) { p.Ledger.Reserve(p.Capacity) })
	strat := StrategyQSA
	strat.Retries = 10
	_, err := f.agg.Aggregate(0, f.request(5), 0, strat)
	if err == nil {
		t.Fatal("fully saturated grid must still reject")
	}
	if s := StageOf(err); s != StageSelection && s != StageAdmission {
		t.Fatalf("stage = %v", s)
	}
}

func TestStageOfForeignError(t *testing.T) {
	if StageOf(nil) != StageNone {
		t.Fatal("StageOf(nil) must be StageNone")
	}
	if StageOf(errors.New("boom")) != StageNone {
		t.Fatal("foreign errors must map to StageNone")
	}
	wrapped := fmt.Errorf("outer: %w", &ErrAggregation{StageCompose, errors.New("in")})
	if StageOf(wrapped) != StageCompose {
		t.Fatal("wrapped aggregation errors must unwrap")
	}
}

func TestStageString(t *testing.T) {
	for s, want := range map[Stage]string{
		StageNone: "admitted", StageDiscovery: "discovery", StageCompose: "compose",
		StageSelection: "selection", StageAdmission: "admission", Stage(9): "Stage(9)",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestErrAggregationUnwrap(t *testing.T) {
	inner := errors.New("cause")
	e := &ErrAggregation{StageAdmission, inner}
	if !errors.Is(e, inner) {
		t.Fatal("Unwrap broken")
	}
	if e.Error() == "" {
		t.Fatal("empty error text")
	}
}

func TestUnknownComposer(t *testing.T) {
	f := newFixture(t)
	_, err := f.agg.Aggregate(0, f.request(5), 0, Strategy{Compose: ComposeKind(9), Select: SelectPhi})
	if StageOf(err) != StageCompose {
		t.Fatalf("stage = %v", StageOf(err))
	}
}

// pids collects a provider set into a comparable string-keyed map.
func pidSet(ps []topology.PeerID) map[topology.PeerID]bool {
	m := make(map[topology.PeerID]bool, len(ps))
	for _, p := range ps {
		m[p] = true
	}
	return m
}

// TestProvidersTTLConsistentAcrossRetries pins the retry contract of the
// discovery snapshot: every attempt of one Aggregate call evaluates
// provider liveness against the same clock, so repeated Providers queries
// on a Discovery return identical, TTL-filtered sets — through the
// instance index and through the linear fallback alike — and a later
// clock sees expirations without a fresh lookup.
func TestProvidersTTLConsistentAcrossRetries(t *testing.T) {
	f := newFixture(t)
	// One late registration: peer 20 joins src#0's provider set at t=5,
	// so it expires at 15 while the t=0 registrations expire at 10.
	disc0, err := f.agg.Discover(0, f.app.Path, 0)
	if err != nil {
		t.Fatal(err)
	}
	src0 := disc0.Layers[0][0]
	if err := f.reg.Register(0, src0, 20, 5); err != nil {
		t.Fatal(err)
	}

	disc, err := f.agg.Discover(0, f.app.Path, 6)
	if err != nil {
		t.Fatal(err)
	}
	inst := disc.Layers[0][0]
	first := disc.Providers(0, inst, 6, nil)
	if !pidSet(first)[20] || len(first) != 5 {
		t.Fatalf("expected 4 original + late provider at t=6, got %v", first)
	}
	// Simulated retry attempts: same snapshot, same clock, reused buffer.
	buf := first
	for attempt := 0; attempt < 3; attempt++ {
		buf = disc.Providers(0, inst, 6, buf[:0])
		if len(buf) != len(first) {
			t.Fatalf("attempt %d saw %v, first attempt saw %v", attempt, buf, first)
		}
		for i := range buf {
			if buf[i] != first[i] {
				t.Fatalf("attempt %d saw %v, first attempt saw %v", attempt, buf, first)
			}
		}
	}
	// The index path and the linear-scan fallback must agree exactly.
	linear := Discovery{Layers: disc.Layers, Entries: disc.Entries}
	lin := linear.Providers(0, inst, 6, nil)
	if len(lin) != len(first) {
		t.Fatalf("index %v vs linear fallback %v", first, lin)
	}
	for i := range lin {
		if lin[i] != first[i] {
			t.Fatalf("index %v vs linear fallback %v", first, lin)
		}
	}
	// Past the original TTL horizon only the late registration survives,
	// with no re-discovery needed.
	late := disc.Providers(0, inst, 12, nil)
	if len(late) != 1 || late[0] != 20 {
		t.Fatalf("expected only the late provider past t=10, got %v", late)
	}
	// An unknown instance yields the empty set, not a panic.
	ghost := &service.Instance{ID: "ghost", Service: "src"}
	if got := disc.Providers(0, ghost, 6, nil); len(got) != 0 {
		t.Fatalf("unknown instance returned %v", got)
	}
}
