package core

import "testing"

// TestAdmitFastPath: free worker slots admit immediately, without
// touching the queue or the sequence counter.
func TestAdmitFastPath(t *testing.T) {
	q := NewAdmitQueue(2, 4)
	for i := 0; i < 2; i++ {
		d, _, _, evict := q.Offer(0, false)
		if d != AdmitRun || evict {
			t.Fatalf("offer %d: decision %v evict %v, want AdmitRun", i, d, evict)
		}
	}
	if q.Active() != 2 || q.QueueLen() != 0 {
		t.Fatalf("active %d queue %d, want 2/0", q.Active(), q.QueueLen())
	}
}

// TestAdmitQueueAndShed: with workers busy, arrivals queue to the
// bound, then the least important of (queue ∪ arrival) sheds.
func TestAdmitQueueAndShed(t *testing.T) {
	q := NewAdmitQueue(1, 2)
	q.Offer(0, false) // occupies the worker
	d, w1, _, _ := q.Offer(1, false)
	if d != AdmitWait {
		t.Fatalf("first wait: %v", d)
	}
	d, _, _, _ = q.Offer(2, false)
	if d != AdmitWait {
		t.Fatalf("second wait: %v", d)
	}
	// Queue full. A lower-priority arrival sheds itself.
	d, _, _, evict := q.Offer(0, false)
	if d != AdmitShed || evict {
		t.Fatalf("low-priority arrival: %v evict=%v, want AdmitShed", d, evict)
	}
	// A higher-priority arrival evicts the least important waiter (w1,
	// priority 1).
	d, _, evicted, hasEvict := q.Offer(3, false)
	if d != AdmitWait || !hasEvict {
		t.Fatalf("high-priority arrival: %v evict=%v, want AdmitWait with eviction", d, hasEvict)
	}
	if evicted.Seq != w1.Seq {
		t.Fatalf("evicted seq %d, want %d (the lowest-priority waiter)", evicted.Seq, w1.Seq)
	}
	if q.QueueLen() != 2 {
		t.Fatalf("queue %d after eviction swap, want 2", q.QueueLen())
	}
}

// TestAdmitShedOrder pins the full shed ordering: priority, then
// disruption tolerance, then youth.
func TestAdmitShedOrder(t *testing.T) {
	cases := []struct {
		name string
		a, b AdmitItem
		want bool // a sheds before b
	}{
		{"lower priority first", AdmitItem{Priority: 0, Seq: 1}, AdmitItem{Priority: 1, Seq: 2}, true},
		{"higher priority later", AdmitItem{Priority: 2, Seq: 1}, AdmitItem{Priority: 1, Seq: 2}, false},
		{"tolerant before firm", AdmitItem{Priority: 1, DTolerant: true, Seq: 1}, AdmitItem{Priority: 1, Seq: 2}, true},
		{"firm after tolerant", AdmitItem{Priority: 1, Seq: 1}, AdmitItem{Priority: 1, DTolerant: true, Seq: 2}, false},
		{"younger first", AdmitItem{Priority: 1, Seq: 9}, AdmitItem{Priority: 1, Seq: 3}, true},
		{"older later", AdmitItem{Priority: 1, Seq: 3}, AdmitItem{Priority: 1, Seq: 9}, false},
	}
	for _, c := range cases {
		if got := shedBefore(c.a, c.b); got != c.want {
			t.Errorf("%s: shedBefore(%+v, %+v) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
	}
}

// TestAdmitReleaseOrder: Release pops waiters most-important first —
// the exact inverse of shed order.
func TestAdmitReleaseOrder(t *testing.T) {
	q := NewAdmitQueue(1, 4)
	q.Offer(0, false) // worker busy
	_, loPri, _, _ := q.Offer(0, false)
	_, hiTol, _, _ := q.Offer(2, true)
	_, hiOld, _, _ := q.Offer(2, false)
	_, hiYng, _, _ := q.Offer(2, false)
	wantOrder := []uint64{hiOld.Seq, hiYng.Seq, hiTol.Seq, loPri.Seq}
	for i, want := range wantOrder {
		next, ok := q.Release()
		if !ok {
			t.Fatalf("pop %d: queue empty early", i)
		}
		if next.Seq != want {
			t.Fatalf("pop %d: seq %d, want %d", i, next.Seq, want)
		}
		// The popped waiter "runs": the slot transfers, active stays 1.
		if q.Active() != 1 {
			t.Fatalf("pop %d: active %d, want 1", i, q.Active())
		}
	}
	if _, ok := q.Release(); ok {
		t.Fatal("empty queue still popped a waiter")
	}
	if q.Active() != 0 {
		t.Fatalf("final active %d, want 0", q.Active())
	}
}

// TestAdmitDeterministic: identical offer/release sequences make
// identical decisions — the property netproto's retry-after hints and
// the chaos suite lean on.
func TestAdmitDeterministic(t *testing.T) {
	run := func() []AdmitDecision {
		q := NewAdmitQueue(2, 3)
		var out []AdmitDecision
		offers := []struct {
			pri int
			dt  bool
		}{{0, false}, {1, true}, {2, false}, {0, false}, {3, false}, {1, false}, {0, true}}
		for i, o := range offers {
			d, _, _, _ := q.Offer(o.pri, o.dt)
			out = append(out, d)
			if i%3 == 2 {
				q.Release()
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestAdmitRetryAfter: the backoff hint scales linearly with queue
// depth and is pure in the queue state.
func TestAdmitRetryAfter(t *testing.T) {
	q := NewAdmitQueue(1, 3)
	if got := q.RetryAfter(0.1); got != 0.1 {
		t.Fatalf("idle hint %g, want 0.1", got)
	}
	q.Offer(0, false)
	for i := 1; i <= 3; i++ {
		q.Offer(0, false)
		want := 0.1 * float64(1+i)
		if got := q.RetryAfter(0.1); got != want {
			t.Fatalf("depth %d: hint %g, want %g", i, got, want)
		}
		if again := q.RetryAfter(0.1); again != want {
			t.Fatalf("depth %d: hint not pure (%g then %g)", i, want, again)
		}
	}
}

// TestAdmitClamps: degenerate constructor arguments clamp instead of
// producing a queue that can never run anything.
func TestAdmitClamps(t *testing.T) {
	q := NewAdmitQueue(0, -5)
	d, _, _, _ := q.Offer(0, false)
	if d != AdmitRun {
		t.Fatalf("clamped queue refused its first offer: %v", d)
	}
	// maxQueue clamped to 0: the next offer sheds immediately.
	d, _, _, _ = q.Offer(5, false)
	if d != AdmitShed {
		t.Fatalf("zero-length queue queued anyway: %v", d)
	}
}

// TestAdmitFastPathAllocs is the ci-gated zero-allocation property of
// the admission fast path: uncontended Offer/Release cycles touch no
// heap.
func TestAdmitFastPathAllocs(t *testing.T) {
	q := NewAdmitQueue(4, 8)
	per := testing.AllocsPerRun(1000, func() {
		q.Offer(1, false)
		q.Release()
	})
	if per != 0 {
		t.Fatalf("admission fast path allocates %.1f times per offer/release", per)
	}
	// The contended path must also stay allocation-free: queue slots are
	// preallocated to the bound.
	for i := 0; i < 4; i++ {
		q.Offer(0, false)
	}
	per = testing.AllocsPerRun(1000, func() {
		q.Offer(1, false) // queues (slots preallocated to the bound)
		q.Release()       // pops it; the slot transfers
		q.Offer(2, false)
		q.Release()
	})
	if per != 0 {
		t.Fatalf("admission queued path allocates %.1f times per cycle", per)
	}
}
