package core

import (
	"fmt"
	"testing"

	"repro/internal/compose"
	"repro/internal/eventsim"
	"repro/internal/probe"
	"repro/internal/qos"
	"repro/internal/registry"
	"repro/internal/resource"
	"repro/internal/selection"
	"repro/internal/service"
	"repro/internal/session"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// benchGrid wires a 100-peer grid with a 3-service application, 6
// instances per service on 8 providers each — big enough that the
// discovery, composition and selection tiers all do real work per
// request. Registrations never expire (the benchmarks measure the hot
// path, not soft-state churn).
func benchGrid(tb testing.TB) (*Aggregator, *eventsim.Engine, *service.Application) {
	tb.Helper()
	const peers = 100
	net, err := topology.New(topology.Default(1, peers))
	if err != nil {
		tb.Fatal(err)
	}
	engine := eventsim.New()
	reg := registry.New(registry.Config{TTL: 1e12}, 1)
	for i := 0; i < peers; i++ {
		if err := reg.AddPeer(topology.PeerID(i)); err != nil {
			tb.Fatal(err)
		}
	}
	reg.Stabilize()
	probes := probe.NewManager(probe.Config{}, net)
	sel, err := selection.New(selection.DefaultConfig(), probes, xrand.New(2))
	if err != nil {
		tb.Fatal(err)
	}
	sess := session.NewManager(net, engine)
	agg := &Aggregator{
		Registry:       reg,
		Sessions:       sess,
		PhiSelector:    sel,
		RandomSelector: selection.NewRandom(xrand.New(3)),
		FixedSelector:  selection.NewFixed(),
		ComposeConfig:  compose.Config{Memo: compose.NewMemo(), Scratch: compose.NewScratch()},
		RNG:            xrand.New(4),
	}
	app := &service.Application{ID: "bench", Path: []service.Name{"b/s0", "b/s1", "b/s2"}}
	fmts := []string{"A", "M", "N", "OUT"}
	prov := 0
	for k, name := range app.Path {
		for i := 0; i < 6; i++ {
			inst := &service.Instance{
				ID:      fmt.Sprintf("%s#%d", name, i),
				Service: name,
				Qin:     qos.MustVector(qos.Sym("format", fmts[k])),
				Qout:    qos.MustVector(qos.Sym("format", fmts[k+1]), qos.Range("rate", 20, 25)),
				R:       resource.Vec2(4+float64(i), 4+float64(i)),
				OutKbps: 10,
			}
			for p := 0; p < 8; p++ {
				if err := reg.Register(0, inst, topology.PeerID((prov+p)%peers), 0); err != nil {
					tb.Fatal(err)
				}
			}
			prov += 8
		}
	}
	return agg, engine, app
}

func benchRequest(app *service.Application) *service.Request {
	return &service.Request{
		App:      app,
		Level:    qos.Average,
		UserQoS:  qos.MustVector(qos.Range("rate", 10, 1e9)),
		Duration: 0.5,
	}
}

// BenchmarkDiscover measures the discovery tier in steady state: the
// registry is unchanged between calls, so lookups come off the epoch
// cache.
func BenchmarkDiscover(b *testing.B) {
	agg, _, app := benchGrid(b)
	if _, err := agg.Discover(99, app.Path, 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := agg.discoverInto(&agg.sc.disc, 99, app.Path, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// aggregateOnce runs one full request cycle: aggregate at the engine
// clock, then advance past the session's end so resources are released
// and the next cycle sees the same steady state.
func aggregateOnce(tb testing.TB, agg *Aggregator, engine *eventsim.Engine,
	req *service.Request, now *float64) {
	if _, err := agg.Aggregate(99, req, *now, StrategyQSA); err != nil {
		tb.Fatal(err)
	}
	*now += req.Duration + 0.1
	engine.RunUntil(*now)
}

// BenchmarkAggregate measures the full request pipeline (discover →
// compose → select → admit → complete) in steady state.
func BenchmarkAggregate(b *testing.B) {
	agg, engine, app := benchGrid(b)
	req := benchRequest(app)
	now := 0.0
	aggregateOnce(b, agg, engine, req, &now) // warm caches and scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		aggregateOnce(b, agg, engine, req, &now)
	}
}

// TestAggregateSteadyStateAllocs pins the allocation budget of the
// steady-state request pipeline. The pre-optimization pipeline spent 124
// allocations per admitted request on discovery slices, Dijkstra nodes,
// provider sets and probe measurement vectors; the epoch cache, the node
// slab, the reused provider buffers and the recycled measurement vectors
// take that to ~21 (what remains is the session object, the composed
// path, and the completion event — state that legitimately escapes the
// request). The budget of 24 keeps a little headroom while still
// guaranteeing the ≥80% reduction the performance plane promises.
func TestAggregateSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	agg, engine, app := benchGrid(t)
	req := benchRequest(app)
	now := 0.0
	for i := 0; i < 20; i++ {
		aggregateOnce(t, agg, engine, req, &now) // reach buffer high-water marks
	}
	avg := testing.AllocsPerRun(200, func() {
		aggregateOnce(t, agg, engine, req, &now)
	})
	const budget = 24
	if avg > budget {
		t.Fatalf("steady-state Aggregate allocates %.1f/op, budget %d", avg, budget)
	}
	t.Logf("steady-state Aggregate: %.1f allocs/op (budget %d)", avg, budget)
}
