// Package trace records and replays simulator workloads as JSON-lines
// streams. A trace pins down exactly which requests arrived when, from
// which users — so a run can be reproduced under a different algorithm,
// configuration, or build, holding the workload constant (the same
// request sequence the paper would call "a set of user requests generated
// each minute and assigned on randomly chosen peers").
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Entry is one user request issue event.
type Entry struct {
	// T is the issue time in simulated minutes.
	T float64 `json:"t"`
	// User is the requesting peer's ID at record time.
	User int `json:"user"`
	// App is the application ID from the catalog (e.g. "app3").
	App string `json:"app"`
	// Level is the QoS level string ("low", "average", "high").
	Level string `json:"level"`
	// Duration is the session duration in minutes.
	Duration float64 `json:"duration"`
}

// Validate checks structural sanity.
func (e Entry) Validate() error {
	if e.T < 0 {
		return fmt.Errorf("trace: negative time %v", e.T)
	}
	if e.User < 0 {
		return fmt.Errorf("trace: negative user %d", e.User)
	}
	if e.App == "" {
		return fmt.Errorf("trace: empty app")
	}
	switch e.Level {
	case "low", "average", "high":
	default:
		return fmt.Errorf("trace: unknown level %q", e.Level)
	}
	if e.Duration <= 0 {
		return fmt.Errorf("trace: non-positive duration %v", e.Duration)
	}
	return nil
}

// Writer encodes entries as JSON lines.
type Writer struct {
	w   *bufio.Writer
	enc *json.Encoder
	n   int
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{w: bw, enc: json.NewEncoder(bw)}
}

// Write appends one entry.
func (t *Writer) Write(e Entry) error {
	if err := e.Validate(); err != nil {
		return err
	}
	if err := t.enc.Encode(e); err != nil {
		return err
	}
	t.n++
	return nil
}

// Count returns how many entries were written.
func (t *Writer) Count() int { return t.n }

// Flush drains buffered output.
func (t *Writer) Flush() error { return t.w.Flush() }

// Read decodes a whole trace, validating every entry and requiring
// non-decreasing timestamps.
func Read(r io.Reader) ([]Entry, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var out []Entry
	prev := -1.0
	for {
		var e Entry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: entry %d: %w", len(out)+1, err)
		}
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("trace: entry %d: %w", len(out)+1, err)
		}
		if e.T < prev {
			return nil, fmt.Errorf("trace: entry %d: time %v goes backwards", len(out)+1, e.T)
		}
		prev = e.T
		out = append(out, e)
	}
	return out, nil
}
