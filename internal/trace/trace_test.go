package trace

import (
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf strings.Builder
	w := NewWriter(&buf)
	entries := []Entry{
		{T: 0.5, User: 3, App: "app1", Level: "low", Duration: 10},
		{T: 1.2, User: 9, App: "app7", Level: "high", Duration: 59.5},
		{T: 1.2, User: 9, App: "app7", Level: "average", Duration: 1},
	}
	for _, e := range entries {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("read %d entries", len(got))
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], entries[i])
		}
	}
}

func TestValidation(t *testing.T) {
	bad := []Entry{
		{T: -1, User: 1, App: "a", Level: "low", Duration: 1},
		{T: 1, User: -1, App: "a", Level: "low", Duration: 1},
		{T: 1, User: 1, App: "", Level: "low", Duration: 1},
		{T: 1, User: 1, App: "a", Level: "ultra", Duration: 1},
		{T: 1, User: 1, App: "a", Level: "low", Duration: 0},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("bad entry %d accepted", i)
		}
		var buf strings.Builder
		if err := NewWriter(&buf).Write(e); err == nil {
			t.Errorf("writer accepted bad entry %d", i)
		}
	}
}

func TestReadRejectsGarbageAndDisorder(t *testing.T) {
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	disorder := `{"t":5,"user":1,"app":"a","level":"low","duration":1}
{"t":4,"user":1,"app":"a","level":"low","duration":1}
`
	if _, err := Read(strings.NewReader(disorder)); err == nil {
		t.Fatal("time going backwards accepted")
	}
	invalid := `{"t":1,"user":1,"app":"a","level":"nope","duration":1}` + "\n"
	if _, err := Read(strings.NewReader(invalid)); err == nil {
		t.Fatal("invalid entry accepted")
	}
}

func TestReadEmpty(t *testing.T) {
	got, err := Read(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty trace: %v, %v", got, err)
	}
}
