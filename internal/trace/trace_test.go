package trace

import (
	"fmt"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf strings.Builder
	w := NewWriter(&buf)
	entries := []Entry{
		{T: 0.5, User: 3, App: "app1", Level: "low", Duration: 10},
		{T: 1.2, User: 9, App: "app7", Level: "high", Duration: 59.5},
		{T: 1.2, User: 9, App: "app7", Level: "average", Duration: 1},
	}
	for _, e := range entries {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("read %d entries", len(got))
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], entries[i])
		}
	}
}

func TestValidation(t *testing.T) {
	bad := []Entry{
		{T: -1, User: 1, App: "a", Level: "low", Duration: 1},
		{T: 1, User: -1, App: "a", Level: "low", Duration: 1},
		{T: 1, User: 1, App: "", Level: "low", Duration: 1},
		{T: 1, User: 1, App: "a", Level: "ultra", Duration: 1},
		{T: 1, User: 1, App: "a", Level: "low", Duration: 0},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("bad entry %d accepted", i)
		}
		var buf strings.Builder
		if err := NewWriter(&buf).Write(e); err == nil {
			t.Errorf("writer accepted bad entry %d", i)
		}
	}
}

func TestReadRejectsGarbageAndDisorder(t *testing.T) {
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	disorder := `{"t":5,"user":1,"app":"a","level":"low","duration":1}
{"t":4,"user":1,"app":"a","level":"low","duration":1}
`
	if _, err := Read(strings.NewReader(disorder)); err == nil {
		t.Fatal("time going backwards accepted")
	}
	invalid := `{"t":1,"user":1,"app":"a","level":"nope","duration":1}` + "\n"
	if _, err := Read(strings.NewReader(invalid)); err == nil {
		t.Fatal("invalid entry accepted")
	}
}

func TestReadEmpty(t *testing.T) {
	got, err := Read(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty trace: %v, %v", got, err)
	}
}

// failAfter is a writer that starts failing once n bytes have been
// accepted, like a filesystem running out of space mid-stream.
type failAfter struct {
	n       int
	written int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.written >= f.n {
		return 0, errWriterFull
	}
	f.written += len(p)
	return len(p), nil
}

var errWriterFull = fmt.Errorf("writer full")

func TestWriterSurfacesSinkErrors(t *testing.T) {
	// The bufio layer absorbs early writes; the sink error must surface
	// by Write once the buffer spills, or at the latest by Flush.
	w := NewWriter(&failAfter{n: 64})
	e := Entry{T: 1, User: 1, App: "app1", Level: "low", Duration: 1}
	var failed error
	for i := 0; i < 200; i++ {
		if err := w.Write(e); err != nil {
			failed = err
			break
		}
	}
	if failed == nil {
		failed = w.Flush()
	}
	if failed == nil {
		t.Fatal("200 writes into a 64-byte sink never reported an error")
	}
}

func TestReadBackwardsTimeMidStream(t *testing.T) {
	// The disorder must be reported with the position of the offending
	// entry, and entries after it must not be silently returned.
	stream := `{"t":1,"user":1,"app":"a","level":"low","duration":1}
{"t":2,"user":1,"app":"a","level":"low","duration":1}
{"t":1.5,"user":1,"app":"a","level":"low","duration":1}
{"t":3,"user":1,"app":"a","level":"low","duration":1}
`
	got, err := Read(strings.NewReader(stream))
	if err == nil {
		t.Fatal("mid-stream disorder accepted")
	}
	if !strings.Contains(err.Error(), "entry 3") {
		t.Fatalf("error %q does not name entry 3", err)
	}
	if got != nil {
		t.Fatalf("partial result %v returned alongside error", got)
	}
}

func TestReadInvalidEntryAtEOFBoundary(t *testing.T) {
	// A final invalid entry without a trailing newline sits exactly at
	// the EOF boundary of the decoder; it must still be validated, not
	// dropped as if the stream had ended cleanly.
	stream := `{"t":1,"user":1,"app":"a","level":"low","duration":1}
{"t":2,"user":-7,"app":"a","level":"low","duration":1}`
	if _, err := Read(strings.NewReader(stream)); err == nil {
		t.Fatal("invalid entry at EOF boundary accepted")
	}
	// And a truncated JSON object at EOF is a decode error, not success.
	trunc := `{"t":1,"user":1,"app":"a","level":"low","duration":1}
{"t":2,"user":`
	if _, err := Read(strings.NewReader(trunc)); err == nil {
		t.Fatal("truncated entry at EOF accepted")
	}
}
