package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
)

// skipIfShort skips the multi-second statistical replays under -short so
// `go test -race -short ./...` stays fast; TestFig5SmokeShort keeps
// end-to-end (and race) coverage of the harness in short mode.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("statistical replay; run without -short")
	}
}

// TestFig5SmokeShort is the -short stand-in for the Tiny suite: one Fig5
// point at toy scale, fanned out across workers so the race detector still
// sees the concurrent experiment harness.
func TestFig5SmokeShort(t *testing.T) {
	s := Scale{
		Seed:         1,
		Peers:        120,
		Fig5Rates:    []float64{15},
		Fig5Duration: 4,
		Fig6Rate:     10,
		Fig6Duration: 4,
		SampleWindow: 2,
		Fig7Churn:    []float64{0},
		Fig7Rate:     10,
		Fig7Duration: 4,
		Fig8Churn:    10,
		Fig8Rate:     10,
		Fig8Duration: 4,
		Workers:      8,
	}
	c, err := Fig5(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Points) != 1 {
		t.Fatalf("points = %d", len(c.Points))
	}
	for _, alg := range sim.Algorithms {
		v := c.Points[0].Psi[alg]
		if math.IsNaN(v) || v < 0 || v > 1 {
			t.Fatalf("ψ(%v) = %v", alg, v)
		}
		if c.Points[0].Results[alg] == nil {
			t.Fatalf("missing result for %v", alg)
		}
	}
}

// tinyScale keeps the integration tests fast while still running every
// subsystem end to end.
func tinyScale(seed uint64) Scale {
	return Scale{
		Seed:         seed,
		Peers:        400,
		Fig5Rates:    []float64{5, 30},
		Fig5Duration: 10,
		Fig6Rate:     20,
		Fig6Duration: 12,
		SampleWindow: 2,
		Fig7Churn:    []float64{0, 20},
		Fig7Rate:     10,
		Fig7Duration: 10,
		Fig8Churn:    20,
		Fig8Rate:     10,
		Fig8Duration: 10,
	}
}

func TestFig5ShapeTiny(t *testing.T) {
	skipIfShort(t)
	c, err := Fig5(tinyScale(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Points) != 2 {
		t.Fatalf("points = %d", len(c.Points))
	}
	for _, pt := range c.Points {
		for _, alg := range sim.Algorithms {
			v := pt.Psi[alg]
			if math.IsNaN(v) || v < 0 || v > 1 {
				t.Fatalf("ψ(%v)@%v = %v", alg, pt.X, v)
			}
			if pt.Results[alg] == nil || pt.Results[alg].Requests.Issued == 0 {
				t.Fatalf("missing result for %v@%v", alg, pt.X)
			}
		}
		// Fixed must trail QSA at every load point.
		if pt.Psi[sim.Fixed] >= pt.Psi[sim.QSA] {
			t.Fatalf("fixed %v >= qsa %v at rate %v", pt.Psi[sim.Fixed], pt.Psi[sim.QSA], pt.X)
		}
	}
}

func TestFig6SeriesTiny(t *testing.T) {
	skipIfShort(t)
	set, err := Fig6(tinyScale(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range sim.Algorithms {
		if len(set.Series[alg]) == 0 {
			t.Fatalf("no series for %v", alg)
		}
		if math.IsNaN(set.Overall[alg]) {
			t.Fatalf("no overall ψ for %v", alg)
		}
	}
}

func TestFig7ChurnHurtsTiny(t *testing.T) {
	skipIfShort(t)
	c, err := Fig7(tinyScale(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Points) != 2 {
		t.Fatalf("points = %d", len(c.Points))
	}
	noChurn := c.Points[0].Psi[sim.QSA]
	churn := c.Points[1].Psi[sim.QSA]
	if !(churn < noChurn) {
		t.Fatalf("churn did not degrade QSA: %v vs %v", churn, noChurn)
	}
}

func TestFig8Tiny(t *testing.T) {
	skipIfShort(t)
	set, err := Fig8(tinyScale(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Series[sim.QSA]) == 0 {
		t.Fatal("no QSA series")
	}
}

func TestAblationTiersTiny(t *testing.T) {
	skipIfShort(t)
	s := tinyScale(5)
	s.Fig5Rates = []float64{30}
	c, err := AblationTiers(s)
	if err != nil {
		t.Fatal(err)
	}
	pt := c.Points[0]
	for _, alg := range c.Algorithms {
		if math.IsNaN(pt.Psi[alg]) {
			t.Fatalf("no ψ for %v", alg)
		}
	}
	// Full QSA must beat fully random; each hybrid sits in between or at
	// least not above QSA by more than noise.
	if pt.Psi[sim.QSA] <= pt.Psi[sim.Random] {
		t.Fatalf("qsa %v <= random %v", pt.Psi[sim.QSA], pt.Psi[sim.Random])
	}
}

func TestAblationUptimeTiny(t *testing.T) {
	skipIfShort(t)
	s := tinyScale(6)
	s.Fig7Churn = []float64{25}
	c, err := AblationUptime(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.WithUptime) != 1 || len(c.WithoutUptime) != 1 {
		t.Fatalf("curve = %+v", c)
	}
}

func TestAblationProbeBudgetTiny(t *testing.T) {
	skipIfShort(t)
	c, err := AblationProbeBudget(tinyScale(7), []int{1, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.M) != 2 {
		t.Fatalf("budgets = %v", c.M)
	}
	// A starved probe budget must produce more random fallbacks.
	if c.Fallbacks[0] <= c.Fallbacks[1] {
		t.Fatalf("fallbacks = %v, starved budget should fall back more", c.Fallbacks)
	}
}

func TestAblationRecoveryTiny(t *testing.T) {
	skipIfShort(t)
	s := tinyScale(8)
	s.Fig7Churn = []float64{25}
	c, err := AblationRecovery(s)
	if err != nil {
		t.Fatal(err)
	}
	if c.Recoveries[0] == 0 {
		t.Fatal("recovery never exercised under churn")
	}
	if !(c.WithRecovery[0] >= c.WithoutRecovery[0]) {
		t.Fatalf("recovery hurt ψ: %v vs %v", c.WithRecovery[0], c.WithoutRecovery[0])
	}
}

func TestWriteCurve(t *testing.T) {
	skipIfShort(t)
	c, err := Fig5(tinyScale(9))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	WriteCurve(&b, c)
	out := b.String()
	for _, want := range []string{"Figure 5", "qsa", "random", "fixed", "%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Count(out, "\n")
	if lines != 2+len(c.Points) {
		t.Fatalf("table has %d lines, want %d", lines, 2+len(c.Points))
	}
}

func TestWriteSeries(t *testing.T) {
	skipIfShort(t)
	set, err := Fig8(tinyScale(10))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	WriteSeries(&b, set)
	out := b.String()
	if !strings.Contains(out, "time (min)") || !strings.Contains(out, "overall") {
		t.Fatalf("series table malformed:\n%s", out)
	}
}

func TestScalesSane(t *testing.T) {
	for _, s := range []Scale{PaperScale(1), QuickScale(1)} {
		if s.Peers <= 0 || len(s.Fig5Rates) == 0 || s.Fig5Duration <= 0 {
			t.Fatalf("degenerate scale %+v", s)
		}
		if s.Fig6Rate <= 0 || s.Fig7Rate <= 0 || s.Fig8Rate <= 0 {
			t.Fatalf("degenerate rates %+v", s)
		}
		if len(s.Fig7Churn) == 0 || s.Fig7Churn[0] != 0 {
			t.Fatalf("Fig7 sweep must start at zero churn: %+v", s.Fig7Churn)
		}
	}
	p := PaperScale(1)
	if p.Peers != 10000 || p.Fig5Duration != 400 || p.Fig6Rate != 200 ||
		p.Fig6Duration != 100 || p.SampleWindow != 2 || p.Fig8Churn != 100 {
		t.Fatalf("PaperScale deviates from §4.1: %+v", p)
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	skipIfShort(t)
	// Parallelism must not leak into results: the same scale with 1 worker
	// and N workers must agree bit for bit.
	s1 := tinyScale(11)
	s1.Workers = 1
	sN := tinyScale(11)
	sN.Workers = 8
	a, err := Fig5(s1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig5(sN)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		for _, alg := range sim.Algorithms {
			if a.Points[i].Psi[alg] != b.Points[i].Psi[alg] {
				t.Fatalf("worker count changed results at point %d, %v", i, alg)
			}
		}
	}
}

func TestRepeatsAggregateMeanStd(t *testing.T) {
	skipIfShort(t)
	s := tinyScale(30)
	s.Fig5Rates = []float64{20}
	s.Repeats = 3
	c, err := Fig5(s)
	if err != nil {
		t.Fatal(err)
	}
	pt := c.Points[0]
	for _, alg := range sim.Algorithms {
		if math.IsNaN(pt.Psi[alg]) {
			t.Fatalf("no mean for %v", alg)
		}
		if _, ok := pt.PsiStd[alg]; !ok {
			t.Fatalf("no stdev for %v", alg)
		}
		if pt.PsiStd[alg] < 0 || pt.PsiStd[alg] > 0.5 {
			t.Fatalf("implausible stdev %v for %v", pt.PsiStd[alg], alg)
		}
	}
	// Distinct seeds must actually be used: across 3 replicas of a noisy
	// metric, at least one algorithm should show nonzero variance.
	someVar := false
	for _, alg := range sim.Algorithms {
		if pt.PsiStd[alg] > 0 {
			someVar = true
		}
	}
	if !someVar {
		t.Fatal("replicas appear identical; seeds not varied")
	}
	var b strings.Builder
	WriteCurve(&b, c)
	if !strings.Contains(b.String(), "±") {
		t.Fatal("table must show mean±sd with repeats")
	}
}

func TestScalabilityTiny(t *testing.T) {
	skipIfShort(t)
	s := tinyScale(31)
	c, err := Scalability(s, []int{200, 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.N) != 2 {
		t.Fatalf("sizes = %v", c.N)
	}
	for i := range c.N {
		if c.ChordHops[i] <= 0 || c.CANHops[i] <= 0 {
			t.Fatalf("no hops measured at N=%d", c.N[i])
		}
		if c.ProbesPerRequest[i] <= 0 {
			t.Fatalf("no probing measured at N=%d", c.N[i])
		}
	}
	// Chord hops must grow slower than linearly with N (doubling N adds
	// about one hop).
	if c.ChordHops[1] > c.ChordHops[0]*1.8 {
		t.Fatalf("chord hops not logarithmic: %v", c.ChordHops)
	}
}
