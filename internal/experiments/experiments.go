// Package experiments contains parameterized runners that regenerate every
// figure of the QSA paper's evaluation (§4), plus the ablation studies
// DESIGN.md calls out. Each runner fans independent simulation runs out
// over a bounded worker pool — the simulator itself is single-threaded for
// determinism, so parallelism lives here.
//
// Figure index (paper §4.2):
//
//	Fig. 5 — average ψ vs request rate, 400 min, no churn
//	Fig. 6 — ψ fluctuation over 100 min at 200 req/min, 2-min samples
//	Fig. 7 — average ψ vs topological variation rate, 60 min, 100 req/min
//	Fig. 8 — ψ fluctuation over 60 min at churn 100 peers/min, 100 req/min
package experiments

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Scale bundles every knob of the evaluation so the same harness can run
// the paper's full setup or a laptop-quick variant.
type Scale struct {
	Seed  uint64
	Peers int // paper: 10000

	Fig5Rates    []float64 // request rates swept in Fig. 5
	Fig5Duration float64   // paper: 400 min

	Fig6Rate     float64 // paper: 200 req/min
	Fig6Duration float64 // paper: 100 min
	SampleWindow float64 // paper: 2 min

	Fig7Churn    []float64 // churn rates swept in Fig. 7 (peers/min)
	Fig7Rate     float64   // paper: 100 req/min
	Fig7Duration float64   // paper: 60 min

	Fig8Churn    float64 // paper: 100 peers/min
	Fig8Rate     float64 // paper: 100 req/min
	Fig8Duration float64 // paper: 60 min

	Workers int // parallel runs; 0 = GOMAXPROCS

	// Repeats replicates every curve cell with distinct seeds and reports
	// the mean ψ (and its standard deviation) across replicas. 0 or 1 runs
	// each cell once, like the paper.
	Repeats int

	// DisableCaches turns off the hot-path performance plane (the epoch
	// lookup cache and the compatibility memo) in every run. Results are
	// identical either way — the flag exists to measure the plane's cost,
	// not to change outcomes.
	DisableCaches bool

	// Shards runs every simulation on the sharded event engine with this
	// many lanes (0 = classic single-heap engine). Results are identical
	// for every positive value; see sim.Config.Shards.
	Shards int
	// ShardWorkers is passed through to sim.Config.ShardWorkers.
	ShardWorkers int
}

// PaperScale reproduces the paper's full evaluation parameters.
func PaperScale(seed uint64) Scale {
	return Scale{
		Seed:         seed,
		Peers:        10000,
		Fig5Rates:    []float64{50, 100, 200, 400, 600, 800, 1000},
		Fig5Duration: 400,
		Fig6Rate:     200,
		Fig6Duration: 100,
		SampleWindow: 2,
		Fig7Churn:    []float64{0, 25, 50, 100, 150, 200},
		Fig7Rate:     100,
		Fig7Duration: 60,
		Fig8Churn:    100,
		Fig8Rate:     100,
		Fig8Duration: 60,
	}
}

// QuickScale is a laptop-friendly variant preserving the paper's shape:
// the peer count, durations and rates shrink together so the load points
// stay comparable.
func QuickScale(seed uint64) Scale {
	return Scale{
		Seed:         seed,
		Peers:        2000,
		Fig5Rates:    []float64{10, 20, 40, 80, 120, 160, 200},
		Fig5Duration: 60,
		Fig6Rate:     40,
		Fig6Duration: 60,
		SampleWindow: 2,
		Fig7Churn:    []float64{0, 5, 10, 20, 30, 40},
		Fig7Rate:     20,
		Fig7Duration: 40,
		Fig8Churn:    20,
		Fig8Rate:     20,
		Fig8Duration: 40,
	}
}

func (s Scale) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// baseConfig builds a simulation config from the scale.
func (s Scale) baseConfig(alg sim.Algorithm, rate, churn, duration float64) sim.Config {
	cfg := sim.DefaultConfig(s.Seed, alg, s.Peers)
	cfg.RequestRate = rate
	cfg.ChurnRate = churn
	cfg.Duration = duration
	cfg.SampleWindow = s.SampleWindow
	if cfg.SampleWindow == 0 {
		cfg.SampleWindow = 2
	}
	cfg.DisableCaches = s.DisableCaches
	cfg.Shards = s.Shards
	cfg.ShardWorkers = s.ShardWorkers
	return cfg
}

// runAll executes every config on the worker pool, preserving order.
func runAll(cfgs []sim.Config, workers int) ([]*sim.Result, error) {
	results := make([]*sim.Result, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range cfgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// lint:allow goleak bounded-concurrency semaphore; wg.Wait joins every worker before runAll returns
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = sim.Run(cfgs[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// CurvePoint is one x-position of a multi-algorithm curve.
type CurvePoint struct {
	X   float64
	Psi map[sim.Algorithm]float64 // mean ψ across replicas
	// PsiStd is the standard deviation across replicas (0 with one
	// replica).
	PsiStd  map[sim.Algorithm]float64
	Results map[sim.Algorithm]*sim.Result // first replica's full result
}

// Curve is a figure of ψ versus a swept parameter, one line per algorithm.
type Curve struct {
	Name       string
	XLabel     string
	Algorithms []sim.Algorithm
	Points     []CurvePoint
}

// SeriesSet is a figure of ψ versus time, one line per algorithm.
type SeriesSet struct {
	Name       string
	Algorithms []sim.Algorithm
	Series     map[sim.Algorithm][]metrics.Point
	Overall    map[sim.Algorithm]float64
}

// sweep runs every (algorithm, x, replica) cell of a curve and aggregates
// replicas into mean ± stdev.
func (s Scale) sweep(name, xlabel string, algs []sim.Algorithm, xs []float64,
	mk func(alg sim.Algorithm, x float64) sim.Config) (*Curve, error) {

	reps := s.Repeats
	if reps < 1 {
		reps = 1
	}
	cfgs := make([]sim.Config, 0, len(algs)*len(xs)*reps)
	for _, x := range xs {
		for _, alg := range algs {
			for r := 0; r < reps; r++ {
				cfg := mk(alg, x)
				cfg.Seed += uint64(r) * 1_000_003 // distinct replica seeds
				cfgs = append(cfgs, cfg)
			}
		}
	}
	results, err := runAll(cfgs, s.workers())
	if err != nil {
		return nil, err
	}
	c := &Curve{Name: name, XLabel: xlabel, Algorithms: algs}
	idx := 0
	for _, x := range xs {
		pt := CurvePoint{
			X:       x,
			Psi:     make(map[sim.Algorithm]float64, len(algs)),
			PsiStd:  make(map[sim.Algorithm]float64, len(algs)),
			Results: make(map[sim.Algorithm]*sim.Result, len(algs)),
		}
		for _, alg := range algs {
			var sum, sq float64
			for r := 0; r < reps; r++ {
				res := results[idx]
				idx++
				if r == 0 {
					pt.Results[alg] = res
				}
				v := res.Psi.Value()
				sum += v
				sq += v * v
			}
			mean := sum / float64(reps)
			pt.Psi[alg] = mean
			variance := sq/float64(reps) - mean*mean
			if variance < 0 {
				variance = 0
			}
			pt.PsiStd[alg] = math.Sqrt(variance)
		}
		c.Points = append(c.Points, pt)
	}
	return c, nil
}

// fluctuation runs one config per algorithm and collects ψ time series.
func (s Scale) fluctuation(name string, algs []sim.Algorithm,
	mk func(alg sim.Algorithm) sim.Config) (*SeriesSet, error) {

	cfgs := make([]sim.Config, len(algs))
	for i, alg := range algs {
		cfgs[i] = mk(alg)
	}
	results, err := runAll(cfgs, s.workers())
	if err != nil {
		return nil, err
	}
	set := &SeriesSet{
		Name:       name,
		Algorithms: algs,
		Series:     make(map[sim.Algorithm][]metrics.Point, len(algs)),
		Overall:    make(map[sim.Algorithm]float64, len(algs)),
	}
	for i, alg := range algs {
		set.Series[alg] = results[i].Series
		set.Overall[alg] = results[i].Psi.Value()
	}
	return set, nil
}

// Fig5 regenerates Figure 5: average ψ under different service aggregation
// request rates, without topological variation.
func Fig5(s Scale) (*Curve, error) {
	return s.sweep("Figure 5: average success ratio vs request rate",
		"request rate (req/min)", sim.Algorithms, s.Fig5Rates,
		func(alg sim.Algorithm, rate float64) sim.Config {
			return s.baseConfig(alg, rate, 0, s.Fig5Duration)
		})
}

// Fig6 regenerates Figure 6: ψ fluctuation over time at a fixed request
// rate, without topological variation.
func Fig6(s Scale) (*SeriesSet, error) {
	return s.fluctuation("Figure 6: success ratio fluctuation (no churn)",
		sim.Algorithms, func(alg sim.Algorithm) sim.Config {
			return s.baseConfig(alg, s.Fig6Rate, 0, s.Fig6Duration)
		})
}

// Fig7 regenerates Figure 7: average ψ under different topological
// variation rates.
func Fig7(s Scale) (*Curve, error) {
	return s.sweep("Figure 7: average success ratio vs topological variation rate",
		"topological variation rate (peers/min)", sim.Algorithms, s.Fig7Churn,
		func(alg sim.Algorithm, churn float64) sim.Config {
			return s.baseConfig(alg, s.Fig7Rate, churn, s.Fig7Duration)
		})
}

// Fig8 regenerates Figure 8: ψ fluctuation over time under churn.
func Fig8(s Scale) (*SeriesSet, error) {
	return s.fluctuation("Figure 8: success ratio fluctuation under churn",
		sim.Algorithms, func(alg sim.Algorithm) sim.Config {
			return s.baseConfig(alg, s.Fig8Rate, s.Fig8Churn, s.Fig8Duration)
		})
}

// AblationTiers isolates the contribution of each QSA tier (A1/A2): full
// QSA vs random-path+Φ vs QCS+random-peers vs fully random, at the Fig. 6
// operating point.
func AblationTiers(s Scale) (*Curve, error) {
	algs := []sim.Algorithm{sim.QSA, sim.HybridRandomCompose, sim.HybridRandomSelect, sim.Random}
	return s.sweep("Ablation A1/A2: tier contributions vs request rate",
		"request rate (req/min)", algs, s.Fig5Rates,
		func(alg sim.Algorithm, rate float64) sim.Config {
			return s.baseConfig(alg, rate, 0, s.Fig5Duration)
		})
}

// AblationUptime isolates the uptime filter (A3) under churn: QSA with and
// without the uptime ≥ duration check, across the Fig. 7 churn sweep.
func AblationUptime(s Scale) (*UptimeCurve, error) {
	var cfgs []sim.Config
	for _, churn := range s.Fig7Churn {
		with := s.baseConfig(sim.QSA, s.Fig7Rate, churn, s.Fig7Duration)
		without := with
		without.Selection.UseUptime = false
		cfgs = append(cfgs, with, without)
	}
	results, err := runAll(cfgs, s.workers())
	if err != nil {
		return nil, err
	}
	c := &UptimeCurve{}
	for i, churn := range s.Fig7Churn {
		c.Churn = append(c.Churn, churn)
		c.WithUptime = append(c.WithUptime, results[2*i].Psi.Value())
		c.WithoutUptime = append(c.WithoutUptime, results[2*i+1].Psi.Value())
	}
	return c, nil
}

// UptimeCurve is the A3 result: ψ with and without the uptime filter.
type UptimeCurve struct {
	Churn         []float64
	WithUptime    []float64
	WithoutUptime []float64
}

// AblationProbeBudget sweeps the probing budget M (A4) at the Fig. 6
// operating point, quantifying how much locally probed information QSA
// needs.
func AblationProbeBudget(s Scale, budgets []int) (*BudgetCurve, error) {
	if len(budgets) == 0 {
		budgets = []int{1, 25, 100, 400}
	}
	var cfgs []sim.Config
	for _, m := range budgets {
		cfg := s.baseConfig(sim.QSA, s.Fig6Rate, 0, s.Fig6Duration)
		cfg.Probe.M = m
		cfgs = append(cfgs, cfg)
	}
	results, err := runAll(cfgs, s.workers())
	if err != nil {
		return nil, err
	}
	c := &BudgetCurve{}
	for i, m := range budgets {
		c.M = append(c.M, m)
		c.Psi = append(c.Psi, results[i].Psi.Value())
		c.Fallbacks = append(c.Fallbacks, results[i].Selection.Fallbacks)
	}
	return c, nil
}

// BudgetCurve is the A4 result: ψ and fallback counts per probing budget.
type BudgetCurve struct {
	M         []int
	Psi       []float64
	Fallbacks []uint64
}

// AblationRecovery compares QSA with and without runtime session recovery
// (A5, the paper's future-work extension) across the Fig. 7 churn sweep.
func AblationRecovery(s Scale) (*RecoveryCurve, error) {
	var cfgs []sim.Config
	for _, churn := range s.Fig7Churn {
		off := s.baseConfig(sim.QSA, s.Fig7Rate, churn, s.Fig7Duration)
		on := off
		on.EnableRecovery = true
		cfgs = append(cfgs, off, on)
	}
	results, err := runAll(cfgs, s.workers())
	if err != nil {
		return nil, err
	}
	c := &RecoveryCurve{}
	for i, churn := range s.Fig7Churn {
		c.Churn = append(c.Churn, churn)
		c.WithoutRecovery = append(c.WithoutRecovery, results[2*i].Psi.Value())
		c.WithRecovery = append(c.WithRecovery, results[2*i+1].Psi.Value())
		c.Recoveries = append(c.Recoveries, results[2*i+1].Sessions.Recoveries)
	}
	return c, nil
}

// RecoveryCurve is the A5 result.
type RecoveryCurve struct {
	Churn           []float64
	WithoutRecovery []float64
	WithRecovery    []float64
	Recoveries      []uint64
}

// AblationRetries (A6) quantifies the recomposition-on-failure extension:
// QSA with the default retry budget vs the paper-literal single shot,
// across the Fig. 5 rate sweep.
func AblationRetries(s Scale) (*RetryCurve, error) {
	var cfgs []sim.Config
	for _, rate := range s.Fig5Rates {
		with := s.baseConfig(sim.QSA, rate, 0, s.Fig5Duration)
		without := with
		without.DisableRetry = true
		cfgs = append(cfgs, with, without)
	}
	results, err := runAll(cfgs, s.workers())
	if err != nil {
		return nil, err
	}
	c := &RetryCurve{}
	for i, rate := range s.Fig5Rates {
		c.Rate = append(c.Rate, rate)
		c.WithRetry = append(c.WithRetry, results[2*i].Psi.Value())
		c.SingleShot = append(c.SingleShot, results[2*i+1].Psi.Value())
	}
	return c, nil
}

// RetryCurve is the A6 result.
type RetryCurve struct {
	Rate       []float64
	WithRetry  []float64
	SingleShot []float64
}

// Scalability sweeps the grid size N and measures the quantities behind
// the paper's scalability claims (§3): DHT lookup hops (O(log N) for
// Chord, O(√N) for CAN at d=2), probing cost per request (bounded by the
// M cap regardless of N), and ψ. The request rate scales with N so the
// per-peer load is constant.
func Scalability(s Scale, sizes []int) (*ScalabilityCurve, error) {
	if len(sizes) == 0 {
		sizes = []int{500, 1000, 2000, 4000, 8000}
	}
	var cfgs []sim.Config
	for _, n := range sizes {
		rate := s.Fig7Rate * float64(n) / float64(s.Peers)
		chordCfg := s.baseConfig(sim.QSA, rate, 0, s.Fig7Duration)
		chordCfg.Peers = n
		canCfg := chordCfg
		canCfg.Lookup = "can"
		cfgs = append(cfgs, chordCfg, canCfg)
	}
	results, err := runAll(cfgs, s.workers())
	if err != nil {
		return nil, err
	}
	c := &ScalabilityCurve{}
	for i, n := range sizes {
		chordRes, canRes := results[2*i], results[2*i+1]
		c.N = append(c.N, n)
		c.Psi = append(c.Psi, chordRes.Psi.Value())
		c.ChordHops = append(c.ChordHops, chordRes.Lookup.MeanHops())
		c.CANHops = append(c.CANHops, canRes.Lookup.MeanHops())
		probes := float64(chordRes.Probes.Probes)
		if chordRes.Requests.Issued > 0 {
			probes /= float64(chordRes.Requests.Issued)
		}
		c.ProbesPerRequest = append(c.ProbesPerRequest, probes)
	}
	return c, nil
}

// ScalabilityCurve is the size-sweep result.
type ScalabilityCurve struct {
	N                []int
	Psi              []float64
	ChordHops        []float64 // mean DHT hops per lookup, Chord
	CANHops          []float64 // mean DHT hops per lookup, CAN (d=2)
	ProbesPerRequest []float64
}

// WriteCurve renders a curve as an aligned text table, one row per x.
func WriteCurve(w io.Writer, c *Curve) {
	fmt.Fprintf(w, "%s\n", c.Name)
	fmt.Fprintf(w, "%-28s", c.XLabel)
	for _, alg := range c.Algorithms {
		fmt.Fprintf(w, "%14s", alg)
	}
	fmt.Fprintln(w)
	for _, pt := range c.Points {
		fmt.Fprintf(w, "%-28g", pt.X)
		for _, alg := range c.Algorithms {
			if sd := pt.PsiStd[alg]; sd > 0 {
				fmt.Fprintf(w, "%8.1f±%3.1f%%", 100*pt.Psi[alg], 100*sd)
			} else {
				fmt.Fprintf(w, "%13.1f%%", 100*pt.Psi[alg])
			}
		}
		fmt.Fprintln(w)
	}
}

// WriteSeries renders a fluctuation figure as an aligned text table, one
// row per sampling window.
func WriteSeries(w io.Writer, set *SeriesSet) {
	fmt.Fprintf(w, "%s\n", set.Name)
	fmt.Fprintf(w, "%-12s", "time (min)")
	for _, alg := range set.Algorithms {
		fmt.Fprintf(w, "%14s", alg)
	}
	fmt.Fprintln(w)
	// Align samples by time across algorithms.
	times := map[float64]bool{}
	for _, alg := range set.Algorithms {
		for _, p := range set.Series[alg] {
			times[p.Time] = true
		}
	}
	ordered := make([]float64, 0, len(times))
	for t := range times {
		ordered = append(ordered, t)
	}
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j-1] > ordered[j]; j-- {
			ordered[j-1], ordered[j] = ordered[j], ordered[j-1]
		}
	}
	for _, t := range ordered {
		fmt.Fprintf(w, "%-12g", t)
		for _, alg := range set.Algorithms {
			v := math.NaN()
			for _, p := range set.Series[alg] {
				// lint:allow float-eq membership test against timestamps collected verbatim from these same series
				if p.Time == t {
					v = p.Value
					break
				}
			}
			if math.IsNaN(v) {
				fmt.Fprintf(w, "%14s", "-")
			} else {
				fmt.Fprintf(w, "%13.1f%%", 100*v)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-12s", "overall")
	for _, alg := range set.Algorithms {
		fmt.Fprintf(w, "%13.1f%%", 100*set.Overall[alg])
	}
	fmt.Fprintln(w)
}
