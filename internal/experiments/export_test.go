package experiments

import (
	"encoding/csv"
	"encoding/xml"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestCurveChartAndCSV(t *testing.T) {
	skipIfShort(t)
	c, err := Fig5(tinyScale(20))
	if err != nil {
		t.Fatal(err)
	}
	ch := c.Chart()
	if len(ch.Lines) != len(sim.Algorithms) {
		t.Fatalf("chart lines = %d", len(ch.Lines))
	}
	var svg strings.Builder
	if err := ch.SVG(&svg); err != nil {
		t.Fatal(err)
	}
	dec := xml.NewDecoder(strings.NewReader(svg.String()))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() != "EOF" {
				t.Fatalf("figure SVG not well-formed: %v", err)
			}
			break
		}
	}

	var out strings.Builder
	if err := WriteCurveCSV(&out, c); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(out.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+len(c.Points) {
		t.Fatalf("CSV rows = %d", len(rows))
	}
	if rows[0][1] != "psi_qsa" || rows[0][2] != "psi_random" || rows[0][3] != "psi_fixed" {
		t.Fatalf("CSV header = %v", rows[0])
	}
	for _, row := range rows[1:] {
		if len(row) != 4 {
			t.Fatalf("CSV row = %v", row)
		}
	}
}

func TestSeriesChartAndCSV(t *testing.T) {
	skipIfShort(t)
	set, err := Fig8(tinyScale(21))
	if err != nil {
		t.Fatal(err)
	}
	ch := set.Chart()
	if len(ch.Lines) != len(sim.Algorithms) {
		t.Fatalf("chart lines = %d", len(ch.Lines))
	}
	var svg strings.Builder
	if err := ch.SVG(&svg); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := WriteSeriesCSV(&out, set); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(out.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("CSV rows = %d", len(rows))
	}
	if rows[0][0] != "time_min" {
		t.Fatalf("CSV header = %v", rows[0])
	}
}
