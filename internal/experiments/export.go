package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"

	"repro/internal/plot"
)

// Chart converts a ψ-vs-parameter curve into a renderable line chart with
// the ψ axis fixed to [0, 1], as in the paper's figures.
func (c *Curve) Chart() *plot.Chart {
	ch := &plot.Chart{
		Title:  c.Name,
		XLabel: c.XLabel,
		YLabel: "success ratio ψ",
		YFixed: true, YMin: 0, YMax: 1,
	}
	for _, alg := range c.Algorithms {
		l := plot.Line{Label: alg.String()}
		for _, pt := range c.Points {
			l.X = append(l.X, pt.X)
			l.Y = append(l.Y, pt.Psi[alg])
		}
		ch.Lines = append(ch.Lines, l)
	}
	return ch
}

// Chart converts a ψ fluctuation set into a renderable line chart.
func (s *SeriesSet) Chart() *plot.Chart {
	ch := &plot.Chart{
		Title:  s.Name,
		XLabel: "time (min)",
		YLabel: "success ratio ψ",
		YFixed: true, YMin: 0, YMax: 1,
	}
	for _, alg := range s.Algorithms {
		l := plot.Line{Label: alg.String()}
		for _, p := range s.Series[alg] {
			l.X = append(l.X, p.Time)
			l.Y = append(l.Y, p.Value)
		}
		ch.Lines = append(ch.Lines, l)
	}
	return ch
}

// WriteCurveCSV emits the curve as CSV: x followed by one ψ column per
// algorithm.
func WriteCurveCSV(w io.Writer, c *Curve) error {
	cw := csv.NewWriter(w)
	header := []string{c.XLabel}
	for _, alg := range c.Algorithms {
		header = append(header, "psi_"+alg.String())
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, pt := range c.Points {
		row := []string{fmt.Sprintf("%g", pt.X)}
		for _, alg := range c.Algorithms {
			row = append(row, fmt.Sprintf("%.6f", pt.Psi[alg]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSeriesCSV emits the fluctuation set as CSV: time followed by one ψ
// column per algorithm (empty cell when an algorithm has no sample in a
// window).
func WriteSeriesCSV(w io.Writer, s *SeriesSet) error {
	cw := csv.NewWriter(w)
	header := []string{"time_min"}
	for _, alg := range s.Algorithms {
		header = append(header, "psi_"+alg.String())
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	times := map[float64]bool{}
	for _, alg := range s.Algorithms {
		for _, p := range s.Series[alg] {
			times[p.Time] = true
		}
	}
	ordered := make([]float64, 0, len(times))
	for t := range times {
		ordered = append(ordered, t)
	}
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j-1] > ordered[j]; j-- {
			ordered[j-1], ordered[j] = ordered[j], ordered[j-1]
		}
	}
	for _, t := range ordered {
		row := []string{fmt.Sprintf("%g", t)}
		for _, alg := range s.Algorithms {
			v := math.NaN()
			for _, p := range s.Series[alg] {
				// lint:allow float-eq membership test against timestamps collected verbatim from these same series
				if p.Time == t {
					v = p.Value
					break
				}
			}
			if math.IsNaN(v) {
				row = append(row, "")
			} else {
				row = append(row, fmt.Sprintf("%.6f", v))
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
