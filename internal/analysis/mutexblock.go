package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// MutexAcrossBlock flags channel operations and blocking calls made while
// a sync.Mutex or sync.RWMutex is held. In the network prototype every
// RPC can take seconds; holding the peer mutex across one serializes the
// node and invites lock-ordering deadlocks. The analysis is
// intra-procedural over source order (the repo's locking style is
// straight-line lock/unlock), with one package-local extension: a
// function whose own body performs a blocking operation (directly or via
// another such function in the same package) is itself treated as
// blocking, so `p.mu.Lock(); rpc(...)` is caught even though the dial
// hides inside rpc.
//
// A `defer mu.Unlock()` keeps the mutex held for the rest of the
// function, so blocking operations after it are still flagged.
var MutexAcrossBlock = &Analyzer{
	Name: "mutex-across-block",
	Doc:  "flag channel ops and blocking calls while a sync mutex is held",
	Run:  runMutexAcrossBlock,
}

// syncBlockingMethods are sync/net methods that park the goroutine.
var syncBlockingMethods = map[string]map[string]bool{
	"sync": {"Wait": true}, // WaitGroup.Wait, Cond.Wait
	"net":  {"Accept": true, "Read": true, "Write": true},
}

// blockingPkgFuncs are package-level stdlib functions that park the
// goroutine.
var blockingPkgFuncs = map[string]map[string]bool{
	"time": {"Sleep": true},
	"net":  {"Dial": true, "DialTimeout": true, "DialIP": true, "DialTCP": true, "DialUDP": true},
}

// lockMethods classifies sync.(RW)Mutex methods into acquisitions and
// releases. TryLock variants never block and acquire only conditionally;
// they are ignored (a false-negative trade for zero false positives).
var lockMethods = map[string]int{
	"Lock":    +1,
	"RLock":   +1,
	"Unlock":  -1,
	"RUnlock": -1,
}

type mutexChecker struct {
	pass     *Pass
	info     *types.Info
	blocking map[*types.Func]bool // package-local functions known to block
}

func runMutexAcrossBlock(pass *Pass) {
	c := &mutexChecker{
		pass:     pass,
		info:     pass.TypesInfo(),
		blocking: make(map[*types.Func]bool),
	}
	c.findBlockingFuncs()
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.stmts(fd.Body.List, map[string]bool{})
		}
	}
}

// findBlockingFuncs computes, to a fixpoint, the package-local functions
// whose bodies block — directly or through another local blocking
// function.
func (c *mutexChecker) findBlockingFuncs() {
	type fn struct {
		obj  *types.Func
		body *ast.BlockStmt
	}
	var fns []fn
	for _, f := range c.pass.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := c.info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fns = append(fns, fn{obj: obj, body: fd.Body})
		}
	}
	for changed := true; changed; {
		changed = false
		for _, f := range fns {
			if c.blocking[f.obj] {
				continue
			}
			if c.bodyBlocks(f.body) {
				c.blocking[f.obj] = true
				changed = true
			}
		}
	}
}

// bodyBlocks reports whether a function body contains a blocking
// operation outside nested function literals.
func (c *mutexChecker) bodyBlocks(body *ast.BlockStmt) bool {
	blocks := false
	ast.Inspect(body, func(n ast.Node) bool {
		if blocks {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // runs later, on some other goroutine's schedule
		case *ast.GoStmt:
			return false // spawning is not blocking
		case *ast.SendStmt, *ast.SelectStmt:
			blocks = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				blocks = true
			}
		case *ast.RangeStmt:
			if t := c.info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					blocks = true
				}
			}
		case *ast.CallExpr:
			if c.callBlocks(n) {
				blocks = true
			}
		}
		return !blocks
	})
	return blocks
}

// callBlocks reports whether the call is a known-blocking stdlib call or
// a package-local function already classified as blocking.
func (c *mutexChecker) callBlocks(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if sel, ok := c.info.Selections[fun]; ok {
			if m, ok := sel.Obj().(*types.Func); ok {
				if pkg := m.Pkg(); pkg != nil && syncBlockingMethods[pkg.Name()][m.Name()] {
					return true
				}
				return c.blocking[m]
			}
			return false
		}
		// Package-qualified call.
		if pn, ok := c.info.Uses[identOf(fun.X)].(*types.PkgName); ok {
			return blockingPkgFuncs[pn.Imported().Path()][fun.Sel.Name]
		}
	case *ast.Ident:
		if obj, ok := c.info.Uses[fun].(*types.Func); ok {
			return c.blocking[obj]
		}
	}
	return false
}

func identOf(e ast.Expr) *ast.Ident {
	id, _ := e.(*ast.Ident)
	return id
}

// lockCall returns the held-set key and +1/-1 delta when call is a
// sync.(RW)Mutex Lock/Unlock style method call.
func (c *mutexChecker) lockCall(call *ast.CallExpr) (key string, delta int, ok bool) {
	fun, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	d, named := lockMethods[fun.Sel.Name]
	if !named {
		return "", 0, false
	}
	sel, isMethod := c.info.Selections[fun]
	if !isMethod {
		return "", 0, false
	}
	m, isFunc := sel.Obj().(*types.Func)
	if !isFunc || m.Pkg() == nil || m.Pkg().Path() != "sync" {
		return "", 0, false
	}
	recv := m.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", 0, false
	}
	t := recv.Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	n, isNamed := t.(*types.Named)
	if !isNamed {
		return "", 0, false
	}
	switch n.Obj().Name() {
	case "Mutex", "RWMutex":
		return types.ExprString(fun.X), d, true
	}
	return "", 0, false
}

// stmts walks a statement list in source order, tracking the held-mutex
// set and flagging blocking operations performed while it is non-empty.
// It returns the held set at the end of the list. Branches are merged by
// intersection (a lock is "held" after a branch only if every
// non-terminating path holds it) — the usual lint bias toward false
// negatives over false positives.
func (c *mutexChecker) stmts(list []ast.Stmt, held map[string]bool) map[string]bool {
	for _, s := range list {
		held = c.stmt(s, held)
	}
	return held
}

func (c *mutexChecker) stmt(s ast.Stmt, held map[string]bool) map[string]bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, delta, ok := c.lockCall(call); ok {
				if delta > 0 {
					held[key] = true
				} else {
					delete(held, key)
				}
				return held
			}
		}
		c.scanExpr(s.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock releases at return; the mutex stays held for
		// the remainder of the function. A deferred blocking call runs
		// after the function body, so it is not flagged here.
		if _, delta, ok := c.lockCall(s.Call); ok && delta > 0 {
			// Pathological `defer mu.Lock()`; treat as acquisition.
			key, _, _ := c.lockCall(s.Call)
			held[key] = true
		}
	case *ast.GoStmt:
		// The goroutine body starts with no inherited locks.
		for _, arg := range s.Call.Args {
			c.scanExpr(arg, held)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.stmts(lit.Body.List, map[string]bool{})
		}
	case *ast.SendStmt:
		c.flagIfHeld(s.Pos(), held, "channel send")
		c.scanExpr(s.Value, held)
	case *ast.SelectStmt:
		c.flagIfHeld(s.Pos(), held, "select statement")
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				c.stmts(cc.Body, copySet(held))
			}
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.scanExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.scanExpr(v, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.scanExpr(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			held = c.stmt(s.Init, held)
		}
		c.scanExpr(s.Cond, held)
		bodyOut := c.stmts(s.Body.List, copySet(held))
		var elseOut map[string]bool
		if s.Else != nil {
			elseOut = c.stmt(s.Else, copySet(held))
		} else {
			elseOut = held
		}
		return mergeBranches(held,
			branch{out: bodyOut, terminates: terminates(s.Body.List)},
			branch{out: elseOut, terminates: s.Else != nil && stmtTerminates(s.Else)})
	case *ast.BlockStmt:
		return c.stmts(s.List, held)
	case *ast.ForStmt:
		if s.Init != nil {
			held = c.stmt(s.Init, held)
		}
		if s.Cond != nil {
			c.scanExpr(s.Cond, held)
		}
		return c.stmts(s.Body.List, held)
	case *ast.RangeStmt:
		if t := c.info.Types[s.X].Type; t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				c.flagIfHeld(s.Pos(), held, "range over channel")
			}
		}
		c.scanExpr(s.X, held)
		return c.stmts(s.Body.List, held)
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = c.stmt(s.Init, held)
		}
		if s.Tag != nil {
			c.scanExpr(s.Tag, held)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				c.stmts(cc.Body, copySet(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				c.stmts(cc.Body, copySet(held))
			}
		}
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, held)
	}
	return held
}

type branch struct {
	out        map[string]bool
	terminates bool
}

// mergeBranches intersects the held sets of the branches that fall
// through; if every branch terminates, the pre-branch state continues.
func mergeBranches(pre map[string]bool, branches ...branch) map[string]bool {
	var live []map[string]bool
	for _, b := range branches {
		if !b.terminates {
			live = append(live, b.out)
		}
	}
	if len(live) == 0 {
		return pre
	}
	merged := copySet(live[0])
	for key := range merged {
		for _, other := range live[1:] {
			if !other[key] {
				delete(merged, key)
				break
			}
		}
	}
	return merged
}

// terminates reports whether a statement list ends in a control transfer.
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	return stmtTerminates(list[len(list)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	case *ast.BlockStmt:
		return terminates(s.List)
	}
	return false
}

// scanExpr flags receives and blocking calls inside an expression,
// without descending into function literals (their bodies run later).
func (c *mutexChecker) scanExpr(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.stmts(n.Body.List, map[string]bool{})
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.flagIfHeld(n.Pos(), held, "channel receive")
			}
		case *ast.CallExpr:
			if c.callBlocks(n) {
				c.flagIfHeld(n.Pos(), held, "blocking call "+types.ExprString(n.Fun))
			}
		}
		return true
	})
}

func (c *mutexChecker) flagIfHeld(pos token.Pos, held map[string]bool, what string) {
	if len(held) == 0 {
		return
	}
	keys := make([]string, 0, len(held))
	for key := range held {
		keys = append(keys, key)
	}
	sort.Strings(keys) // one deterministic report per site is enough
	c.pass.Reportf(pos, "%s while %s is locked; release the mutex before blocking", what, keys[0])
}

func copySet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}
