package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEq flags ==/!= between floating-point operands. QoS levels,
// resource quantities and simulated time are all float64; after any
// arithmetic, exact equality is a latent bug in the satisfy relation
// (paper eq. 1) and in reservation accounting. Two exemptions keep the
// signal clean:
//
//   - comparison against the exact literal 0 (the "unset config field"
//     sentinel idiom) — zero is exactly representable and never the
//     result of drift-prone arithmetic in those checks;
//   - sites annotated `// lint:allow float-eq <reason>` where exact
//     equality is the intent (e.g. heap tie-breaking on event
//     timestamps).
var FloatEq = &Analyzer{
	Name: "float-eq",
	Doc:  "flag ==/!= between float operands outside exact-zero sentinel checks",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) {
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			x, y := info.Types[be.X], info.Types[be.Y]
			if !isFloat(x.Type) || !isFloat(y.Type) {
				return true
			}
			// Both constant: evaluated at compile time, no runtime drift.
			if x.Value != nil && y.Value != nil {
				return true
			}
			// Exact-zero sentinel checks are the idiomatic "field unset"
			// test and are precise by IEEE-754 construction.
			if isExactZero(x.Value) || isExactZero(y.Value) {
				return true
			}
			pass.Reportf(be.OpPos, "%s compares floats exactly; use an ordering/tolerance or annotate with lint:allow float-eq", be.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isExactZero(v constant.Value) bool {
	if v == nil {
		return false
	}
	f, ok := constant.Float64Val(constant.ToFloat(v))
	return ok && f == 0
}
