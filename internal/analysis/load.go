package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked module package.
type Package struct {
	// ImportPath is the package's import path, e.g. "repro/internal/qos".
	ImportPath string
	// Module is the path of the module the package belongs to.
	Module string
	// Dir is the package's directory on disk.
	Dir string
	// Name is the package name from the source ("main" for commands).
	Name string

	Fset  *token.FileSet
	Files []*ast.File // non-test files, parsed with comments
	// TestFiles holds the package's _test.go files when the module was
	// loaded with Tests; analyzers opt in to them via Analyzer.Tests.
	TestFiles []*ast.File
	// ForTest marks an external test package (package foo_test): all of
	// its sources are test files and nothing can import it.
	ForTest bool

	Types *types.Package
	Info  *types.Info

	imports         []string // repo-internal imports, for topo ordering
	suppressions    []*suppression
	badSuppressions []Diagnostic
}

// ModulePath reads the module path from the go.mod at root.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", root)
}

// FindModuleRoot walks up from dir to the nearest directory containing a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// LoadOptions configures LoadModuleWith.
type LoadOptions struct {
	// Tests includes _test.go files: in-package test files type-check
	// together with their package (Go forbids import cycles through
	// them, so dependency order is unaffected), external foo_test
	// packages load as their own ForTest entries after everything they
	// import. Analyzers see test files only when they opt in via
	// Analyzer.Tests.
	Tests bool
}

// LoadModule parses and type-checks every package of the module rooted at
// root. Test files (_test.go) are excluded: the analyzers enforce library
// invariants, and tests legitimately use wall-clock timeouts and panics.
// Standard-library imports are type-checked from GOROOT source, so the
// loader works with a pure go.mod (zero external dependencies) and no
// installed export data.
func LoadModule(root string) ([]*Package, error) {
	return LoadModuleWith(root, LoadOptions{})
}

// LoadModuleWith is LoadModule with options; see LoadOptions.
func LoadModuleWith(root string, opt LoadOptions) ([]*Package, error) {
	modPath, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()

	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			if opt.Tests || !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	byPath := make(map[string]*Package, len(dirs))
	var pkgs []*Package
	for _, dir := range dirs {
		base, ext, err := parseDir(fset, root, modPath, dir, opt.Tests)
		if err != nil {
			return nil, err
		}
		if base != nil {
			byPath[base.ImportPath] = base
			pkgs = append(pkgs, base)
		}
		if ext != nil {
			// External test packages are not importable, so they join
			// the ordering but never the import-resolution map.
			pkgs = append(pkgs, ext)
		}
	}

	ordered, err := topoSort(pkgs, byPath)
	if err != nil {
		return nil, err
	}
	if err := typeCheck(fset, ordered, byPath); err != nil {
		return nil, err
	}
	return ordered, nil
}

// parseDir parses one package directory: the package proper (with its
// in-package test files when tests is set) and, separately, an external
// foo_test package if one exists.
func parseDir(fset *token.FileSet, root, modPath, dir string, tests bool) (base, ext *Package, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, nil, err
	}
	importPath := modPath
	if rel != "." {
		importPath = modPath + "/" + filepath.ToSlash(rel)
	}
	base = &Package{ImportPath: importPath, Module: modPath, Dir: dir, Fset: fset}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		isTest := strings.HasSuffix(name, "_test.go")
		if isTest && !tests {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		if !buildConstraintsOK(f) {
			continue
		}
		pkg := base
		if isTest && strings.HasSuffix(f.Name.Name, "_test") {
			if ext == nil {
				ext = &Package{ImportPath: importPath, Module: modPath, Dir: dir, Fset: fset, ForTest: true}
			}
			pkg = ext
		}
		if isTest {
			pkg.TestFiles = append(pkg.TestFiles, f)
		} else {
			pkg.Files = append(pkg.Files, f)
		}
		pkg.Name = f.Name.Name
		sup, bad := parseSuppressions(fset, f)
		pkg.suppressions = append(pkg.suppressions, sup...)
		pkg.badSuppressions = append(pkg.badSuppressions, bad...)
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == modPath || strings.HasPrefix(path, modPath+"/") {
				pkg.imports = append(pkg.imports, path)
			}
		}
	}
	if len(base.Files) == 0 && len(base.TestFiles) == 0 {
		base = nil
	}
	return base, ext, nil
}

// buildConstraintsOK evaluates a file's //go:build line (if any) against
// the default build context: current GOOS/GOARCH, gc, no race detector.
// Mutually exclusive race/!race test variants would otherwise both load
// and redeclare their shared symbols.
func buildConstraintsOK(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break // constraints must precede the package clause
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			return expr.Eval(func(tag string) bool {
				switch tag {
				case runtime.GOOS, runtime.GOARCH, "gc":
					return true
				}
				return strings.HasPrefix(tag, "go1.")
			})
		}
	}
	return true
}

// topoSort orders packages so every repo-internal dependency precedes its
// importers.
func topoSort(pkgs []*Package, byPath map[string]*Package) ([]*Package, error) {
	const (
		white = 0 // unvisited
		gray  = 1 // on the current path
		black = 2 // done
	)
	// Keyed by identity, not import path: an external test package
	// shares its directory's import path without being importable.
	state := make(map[*Package]int, len(pkgs))
	ordered := make([]*Package, 0, len(pkgs))
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("analysis: import cycle through %s", p.ImportPath)
		}
		state[p] = gray
		for _, dep := range p.imports {
			if d, ok := byPath[dep]; ok && d != p {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[p] = black
		ordered = append(ordered, p)
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return ordered, nil
}

// moduleImporter resolves repo-internal imports from the already-checked
// set and delegates everything else (the standard library) to a
// source-level importer rooted at GOROOT.
type moduleImporter struct {
	std  types.Importer
	repo map[string]*Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.repo[path]; ok {
		if pkg.Types == nil {
			return nil, fmt.Errorf("analysis: %s imported before it was checked", path)
		}
		return pkg.Types, nil
	}
	return m.std.Import(path)
}

// typeCheck runs go/types over the packages in dependency order, sharing
// one standard-library importer so GOROOT sources are checked once.
func typeCheck(fset *token.FileSet, ordered []*Package, byPath map[string]*Package) error {
	imp := &moduleImporter{
		std:  importer.ForCompiler(fset, "source", nil),
		repo: byPath,
	}
	for _, pkg := range ordered {
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		files := pkg.Files
		if len(pkg.TestFiles) > 0 {
			files = append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...)
		}
		checkPath := pkg.ImportPath
		if pkg.ForTest {
			checkPath += "_test"
		}
		tpkg, err := conf.Check(checkPath, fset, files, info)
		if err != nil {
			return fmt.Errorf("analysis: type-checking %s: %w", pkg.ImportPath, err)
		}
		pkg.Types = tpkg
		pkg.Info = info
	}
	return nil
}
