package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// keyedLitTargets are the specification-carrying struct types whose
// composite literals must use field keys. These structs grow fields as
// the model grows (the QoS vector gained levels, the instance spec gained
// bandwidth); positional literals compile on after a field insertion but
// bind values to the wrong dimensions. Keys are "package-basename.Type".
var keyedLitTargets = map[string]bool{
	"qos.Param":             true,
	"service.Instance":      true,
	"service.Application":   true,
	"service.Request":       true,
	"spec.Spec":             true,
	"netproto.WireParam":    true,
	"netproto.WireInstance": true,
	"netproto.Config":       true,
}

// KeyedLiterals requires field-keyed composite literals for the QoS,
// service-spec and wire structs listed in keyedLitTargets.
var KeyedLiterals = &Analyzer{
	Name: "keyed-literals",
	Doc:  "require field-keyed composite literals for QoS/spec/wire structs",
	Run:  runKeyedLiterals,
}

func runKeyedLiterals(pass *Pass) {
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || len(lit.Elts) == 0 {
				return true
			}
			tv, ok := info.Types[lit]
			if !ok {
				return true
			}
			name := targetName(tv.Type)
			if !keyedLitTargets[name] {
				return true
			}
			for _, elt := range lit.Elts {
				if _, keyed := elt.(*ast.KeyValueExpr); !keyed {
					pass.Reportf(lit.Pos(), "composite literal of %s must use field keys (fields shift as the spec model grows)", name)
					return true
				}
			}
			return true
		})
	}
}

// targetName renders a named struct type as "package-basename.Type", the
// key form used by keyedLitTargets. Non-struct and unnamed types return
// "".
func targetName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	path := obj.Pkg().Path()
	base := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		base = path[i+1:]
	}
	return base + "." + obj.Name()
}
