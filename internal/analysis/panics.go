package analysis

import (
	"go/ast"
	"go/types"
)

// PanicInLibrary flags panic() calls in library packages (anything that
// is not package main). Library code returns errors; a panic in the
// simulator tears down a whole multi-hour experiment batch instead of
// failing one request. Sites that assert genuinely unreachable internal
// invariants — corrupted reservation accounting, exhaustive switches —
// carry a `// lint:allow panic-in-library <reason>` annotation instead of
// being converted, keeping the distinction deliberate and auditable.
var PanicInLibrary = &Analyzer{
	Name: "panic-in-library",
	Doc:  "flag panic() in non-main packages without a lint:allow justification",
	Run:  runPanicInLibrary,
}

func runPanicInLibrary(pass *Pass) {
	if pass.Pkg.Name == "main" {
		return
	}
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			// The builtin, not a local function named panic.
			if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			pass.Reportf(call.Pos(), "panic in library package; return an error, or annotate an invariant with lint:allow panic-in-library")
			return true
		})
	}
}
