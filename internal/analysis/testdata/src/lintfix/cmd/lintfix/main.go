// Command lintfix is a fixture: main packages may panic, so nothing in
// this file is flagged.
package main

import "os"

func main() {
	if len(os.Args) > 99 {
		panic("mains may panic")
	}
}
