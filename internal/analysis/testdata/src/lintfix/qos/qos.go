// Package qos is a fixture for the float-eq and keyed-literals analyzers.
// Its package basename deliberately matches the real repo's qos package so
// that Param is a keyed-literal target.
package qos

// Param is a QoS parameter range, mirroring the real repo's shape.
type Param struct {
	Name   string
	Lo, Hi float64
}

// Equal compares floats with ==, the classic mistake.
func Equal(a, b float64) bool {
	return a == b // want float-eq
}

// Unset uses the exact-zero sentinel idiom, which is allowed.
func Unset(w float64) bool {
	return w == 0
}

// Degenerate is exempted with a justified suppression.
func Degenerate(p Param) bool {
	// lint:allow float-eq fixture: lo and hi share bits by construction
	return p.Lo == p.Hi
}

// Make builds a Param positionally, which the analyzer flags.
func Make(name string) Param {
	return Param{name, 0, 1} // want keyed-literals
}

// MakeKeyed is the negative case: fully keyed literal.
func MakeKeyed(name string) Param {
	return Param{Name: name, Lo: 0, Hi: 1}
}
