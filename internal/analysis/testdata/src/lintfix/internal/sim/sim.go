// Package sim is a fixture sink package: its basename matches the
// repo's simulation package, so RequestStats is a detflow sink.
package sim

import (
	"sort"

	"lintfix/internal/netproto"
	"lintfix/internal/obs"
)

// RequestStats is a replayed per-request artifact.
type RequestStats struct {
	Latency float64
	Seq     int
}

// Order lets map iteration order pick the value that lands in the
// replayed stats.
func Order(m map[int]float64) RequestStats {
	var last float64
	for _, v := range m {
		last = v
	}
	return RequestStats{Latency: last} // want detflow
}

// Sorted is the negative case: sorting the keys launders the iteration
// order, so the emitted series is deterministic.
func Sorted(m map[int]float64) []RequestStats {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]RequestStats, 0, len(keys))
	for _, k := range keys {
		out = append(out, RequestStats{Latency: m[k], Seq: k})
	}
	return out
}

// FromNet receives a wall-clock value through another package: the
// per-function determinism analyzer cannot see it, the module-wide
// taint fixpoint can.
func FromNet() RequestStats {
	t := netproto.NowSec()
	return RequestStats{Latency: t} // want detflow
}

// EmitOrder passes a map-order-dependent aggregate into a tracer sink.
func EmitOrder(tr *obs.Tracer, m map[string]int) {
	n := 0
	for _, v := range m {
		n += v
	}
	tr.Emit(float64(n)) // want detflow
}

// EmitClean is the negative case: a pure value may be traced.
func EmitClean(tr *obs.Tracer, x float64) {
	tr.Emit(x * 2)
}

// Record exercises the field-write sink: a map-ordered value assigned
// into a sink-typed struct field.
func Record(m map[int]float64) RequestStats {
	var rs RequestStats
	for _, v := range m {
		rs.Latency = v // want detflow
	}
	return rs
}

// SpecInit routes the taint through a var-declaration initializer.
func SpecInit(m map[int]int) RequestStats {
	var last int
	for k := range m {
		last = k
	}
	var lat = float64(last)
	return RequestStats{Latency: lat} // want detflow
}

// EmitEventClean is the negative case: a sink-typed literal built from
// pure values may cross into the tracer.
func EmitEventClean(tr *obs.Tracer, x float64) {
	tr.EmitEvent(obs.Event{T: x})
}

// SpanWallStart stamps a span endpoint from the wall clock (read
// through netproto, so only the module-wide fixpoint sees it): the
// taint must be caught at the span sink, proving wall time cannot
// reach sim-mode span timestamps unflagged.
func SpanWallStart(tr *obs.Tracer) {
	start := netproto.NowSec()
	tr.EmitSpan(obs.Event{}, start) // want detflow
}

// SpanWallEvent routes the same taint through the span event's
// timestamp field instead of the start argument.
func SpanWallEvent(tr *obs.Tracer) {
	e := obs.Event{T: netproto.NowSec()} // want detflow
	tr.EmitSpan(e, 0) // want detflow
}

// SpanVirtual is the negative case: span endpoints taken from the
// injected virtual clock replay byte-identically and pass clean.
func SpanVirtual(tr *obs.Tracer, now float64) {
	tr.EmitSpan(obs.Event{T: now}, now)
}
