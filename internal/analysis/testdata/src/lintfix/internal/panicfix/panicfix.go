// Package panicfix is a fixture for the panic-in-library analyzer.
package panicfix

import "errors"

// Bad panics on bad input instead of returning an error.
func Bad(x int) error {
	if x < 0 {
		panic("negative input") // want panic-in-library
	}
	return nil
}

// Invariant documents an unreachable condition with a suppression.
func Invariant(x int) error {
	if x < 0 {
		// lint:allow panic-in-library fixture: documented invariant
		panic("negative input")
	}
	return errors.New("always fails")
}
