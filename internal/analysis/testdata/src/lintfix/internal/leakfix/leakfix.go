// Package leakfix is a fixture: positive and negative cases for the
// goleak termination-path analyzer.
package leakfix

// step does a unit of work.
func step() {}

// forever has no exit; flagged at its spawn site, not here.
func forever() {
	for {
		step()
	}
}

var dynamic func()

// SpawnLoop spawns one goroutine with no termination path and one with
// a done-channel arm.
func SpawnLoop(done chan struct{}) {
	go func() {
		for { // want goleak
			step()
		}
	}()
	go func() { // negative: the select's done arm returns
		for {
			select {
			case <-done:
				return
			default:
				step()
			}
		}
	}()
}

// SpawnSend sends without a cancellation arm: the goroutine outlives a
// vanished receiver.
func SpawnSend(ch chan int) {
	go func() {
		ch <- 1 // want goleak
	}()
}

// SpawnSelect is the negative case: the send sits in a select with a
// done arm.
func SpawnSelect(ch chan int, done chan struct{}) {
	go func() {
		select {
		case ch <- 1:
		case <-done:
		}
	}()
}

// SpawnDynamic spawns through a function value the analyzer cannot
// resolve.
func SpawnDynamic() {
	go dynamic() // want goleak
}

// SpawnNamed spawns a named function with no exit; reported here, at
// the spawn, where the suppression context lives.
func SpawnNamed() {
	go forever() // want goleak
}

// SpawnSwitchReturn is the negative case: a switch arm returns.
func SpawnSwitchReturn(c chan int) {
	go func() {
		for {
			switch {
			case len(c) > 0:
				return
			default:
				step()
			}
		}
	}()
}

// SpawnLabeledBreak is the negative case: the labeled break leaves the
// outer loop.
func SpawnLabeledBreak() {
	go func() {
	outer:
		for {
			for {
				break outer
			}
		}
		step()
	}()
}

// SpawnBreakBindsSwitch is positive: the unlabeled break leaves the
// switch, not the loop, so the loop has no exit.
func SpawnBreakBindsSwitch(c chan int) {
	go func() {
		for { // want goleak
			switch {
			case len(c) > 0:
				break
			}
		}
	}()
}

// SpawnRangeInner is positive: the inner break binds to the range loop.
func SpawnRangeInner(items []int) {
	go func() {
		for { // want goleak
			for range items {
				break
			}
		}
	}()
}

// SpawnGoto is the negative case: goto is conservatively an exit.
func SpawnGoto(c chan int) {
	go func() {
		for {
			if len(c) == 0 {
				goto done
			}
			step()
		}
	done:
		step()
	}()
}

// SpawnTypeSwitch is the negative case: a type-switch arm returns.
func SpawnTypeSwitch(v interface{}) {
	go func() {
		for {
			switch v.(type) {
			case int:
				return
			default:
				step()
			}
		}
	}()
}

// SpawnPanicExit is the negative case for goleak: a panic is a
// termination path, if a rude one.
func SpawnPanicExit(c chan int) {
	go func() {
		for {
			if len(c) > 100 {
				panic("overflow") // want panic-in-library
			}
			step()
		}
	}()
}
