// Package lockfix is a fixture: positive and negative cases for the
// lockorder whole-module acquisition-graph analyzer.
package lockfix

import (
	"sync"

	"lintfix/internal/lockdep"
)

// A and B each own one mutex class.
type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

// Transport mimics the repo's RPC interface.
type Transport interface {
	Dial(addr string) error
}

// AB locks A then B; BA locks B then A. Together they form an
// acquisition cycle, reported at both inner acquisitions.
func AB(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want lockorder
	b.mu.Unlock()
	a.mu.Unlock()
}

func BA(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want lockorder
	a.mu.Unlock()
	b.mu.Unlock()
}

// Nested is the negative case: consistent A-then-B ordering elsewhere
// does not create a cycle on its own.
func Nested(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
}

// CrossPkg holds a mutex across a call into another package that
// blocks — invisible to the per-function mutex analyzer.
func CrossPkg(a *A, ch chan int) {
	a.mu.Lock()
	lockdep.Wait(ch) // want lockorder
	a.mu.Unlock()
}

// DialLocked dials the transport (a dynamic interface call) while the
// mutex is held.
func DialLocked(t Transport, a *A) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return t.Dial("peer:1") // want lockorder
}

// Released is the negative case: the lock is dropped before blocking.
func Released(a *A, ch chan int) {
	a.mu.Lock()
	a.mu.Unlock()
	lockdep.Wait(ch)
}

// C participates in no cycle; used for control-flow coverage below.
type C struct{ mu sync.Mutex }

// global gives the analyzer a package-level mutex class.
var global sync.Mutex

// GlobalOrder acquires a struct mutex under the package mutex — a
// consistent one-way order, no cycle, no finding.
func GlobalOrder(a *A) {
	global.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	global.Unlock()
}

// Guarded exercises branch merging: the held set after the switch is
// the intersection of its arms, and the early return releases first.
func Guarded(a *A, c *C, mode int) {
	a.mu.Lock()
	switch mode {
	case 0:
		c.mu.Lock()
		c.mu.Unlock()
	default:
	}
	if mode > 1 {
		a.mu.Unlock()
		return
	}
	a.mu.Unlock()
}

// LoopLocked exercises loop traversal: each iteration pairs its own
// acquire and release.
func LoopLocked(a *A, n int) {
	for i := 0; i < n; i++ {
		a.mu.Lock()
		a.mu.Unlock()
	}
}

// The functions below each hold a.mu across a cross-package call that
// blocks in a different way.

func RecvLocked(a *A, ch chan int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return lockdep.Recv(ch) // want lockorder
}

func DrainLocked(a *A, ch chan int) {
	a.mu.Lock()
	lockdep.Drain(ch) // want lockorder
	a.mu.Unlock()
}

func SelectLocked(a *A, x, y chan int) {
	a.mu.Lock()
	lockdep.Sel(x, y) // want lockorder
	a.mu.Unlock()
}

func JoinLocked(a *A, wg *sync.WaitGroup) {
	a.mu.Lock()
	lockdep.Join(wg) // want lockorder
	a.mu.Unlock()
}

// IndirectLocked blocks two calls deep: lockdep.Indirect itself only
// calls lockdep.Wait, so the reason arrives via the module fixpoint.
func IndirectLocked(a *A, ch chan int) {
	a.mu.Lock()
	lockdep.Indirect(ch) // want lockorder
	a.mu.Unlock()
}

// R holds a read-write mutex: reader locks order the same way.
type R struct{ mu sync.RWMutex }

func ReadLocked(r *R, ch chan int) {
	r.mu.RLock()
	lockdep.Wait(ch) // want lockorder
	r.mu.RUnlock()
}

// Branchy exercises if/else merge where one arm terminates.
func Branchy(a *A, ok bool) {
	a.mu.Lock()
	if ok {
		a.mu.Unlock()
		return
	} else {
		a.mu.Unlock()
	}
}
