// Package obs is a fixture sink package: its basename matches the
// repo's telemetry package, so detflow treats Tracer methods as sinks.
package obs

// Event is a replayed trace record.
type Event struct{ T float64 }

// Tracer ingests replayed telemetry.
type Tracer struct{ last float64 }

// Emit records one value.
func (t *Tracer) Emit(v float64) { t.last = v }

// EmitEvent records one event.
func (t *Tracer) EmitEvent(e Event) { t.last = e.T }

// EmitSpan closes a span whose start timestamp lands in the replayed
// stream, mirroring the real tracer's span sink.
func (t *Tracer) EmitSpan(e Event, start float64) { t.last = e.T - start }
