// Package lockdep is a fixture dependency: functions that block in
// every way the lockorder analyzer classifies, for lockfix to call
// while holding a mutex.
package lockdep

import "sync"

// Wait parks the goroutine until someone receives.
func Wait(ch chan int) {
	ch <- 1
}

// Recv blocks on a channel receive.
func Recv(ch chan int) int {
	return <-ch
}

// Drain blocks ranging over a channel until it closes.
func Drain(ch chan int) {
	for range ch {
	}
}

// Sel blocks in a select with no default.
func Sel(a, b chan int) {
	select {
	case <-a:
	case b <- 1:
	}
}

// Join blocks on a WaitGroup.
func Join(wg *sync.WaitGroup) {
	wg.Wait()
}

// Indirect blocks one call deep; only the module fixpoint sees it.
func Indirect(ch chan int) {
	Wait(ch)
}
