// Package simfix is a fixture: an internal "simulation" package that
// breaks the determinism rule in every supported way.
package simfix

import (
	"math/rand" // want determinism
	"time"
)

// Tick mixes wall-clock time and global randomness into what is supposed
// to be a reproducible computation.
func Tick() float64 {
	start := time.Now()    // want determinism
	d := time.Since(start) // want determinism
	return rand.Float64() + d.Seconds()
}

// Pure is the negative case: arithmetic only, nothing flagged.
func Pure(x float64) float64 {
	return x * 2
}
