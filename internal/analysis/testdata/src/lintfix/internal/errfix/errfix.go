// Package errfix is a fixture for the unchecked-error analyzer.
package errfix

import (
	"errors"
	"fmt"
)

func fail() error { return errors.New("nope") }

// Bad drops the error from a module-local call.
func Bad() {
	fail() // want unchecked-error
}

// Explicit discards the error deliberately, which is allowed.
func Explicit() {
	_ = fail()
}

// Stdlib calls are out of scope for this analyzer.
func Stdlib() {
	fmt.Println("stdlib errors are go vet's problem")
}
