// Package hotfix is a fixture: positive and negative cases for the
// hotalloc whole-module allocation analyzer.
package hotfix

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Thing is an arbitrary allocatable record.
type Thing struct{ X int }

// lint:hotpath fixture hot root: must be transitively allocation-free
func Hot(buf []int, a, b string, n int) []int {
	buf = append(buf[:0], n) // negative: self-append recycle idiom
	tmp := make([]int, n)    // want hotalloc
	_ = tmp
	f := func() {} // want hotalloc
	f()            // negative: the closure's creation is the allocation, not the call
	go spin()      // want hotalloc
	box := any(n)  // want hotalloc
	_ = box
	s := a + b // want hotalloc
	_ = s
	t := Cold() // negative: traversal stops at the lint:coldpath boundary
	_ = t
	if _, err := HotErr(n); err != nil {
		return buf
	}
	return appendFresh(buf, n)
}

// appendFresh is unannotated but reached from Hot, so it is checked too.
func appendFresh(buf []int, n int) []int {
	out := []int{n}            // want hotalloc
	return append(buf, out...) // want hotalloc
}

// spin terminates immediately; it exists so the go statement has a
// resolvable, leak-free target (hotalloc still flags the spawn).
func spin() {}

// lint:coldpath fixture telemetry boundary: allocations here are fine
func Cold() *Thing { return &Thing{} }

// HotErr allocates only on its failure path, which is not steady state.
func HotErr(n int) (int, error) {
	if n < 0 {
		msg := fmt.Sprintf("bad %d", n) // negative: error-return branch is cold
		return 0, errors.New(msg)
	}
	if n == 0 {
		return 0, nil // nil-error branch stays hot
	}
	if n > 1<<10 {
		s := fmt.Sprint(n) // negative: the nested block ends in an error return
		{
			return 0, errors.New(s)
		}
	}
	return n, nil
}

// EqF32 is a float-eq case unrelated to hot paths; it lives here so the
// fixture covers the float32 flavor too.
func EqF32(a, b float32) bool {
	return a == b // want float-eq
}

// lint:hotpath fixture hot root: conversions, formatting, panic blocks
func HotConv(b []byte, s string, n int) int {
	bs := []byte(s)               // want hotalloc
	ss := string(b)               // want hotalloc
	msg := fmt.Sprintf("n=%d", n) // want hotalloc
	id := strconv.Itoa(n)         // want hotalloc
	if strings.Compare(s, id) == 0 {
		return 0 // negative: non-allocating stdlib calls pass
	}
	if n < 0 {
		why := fmt.Sprintf("bad %d", n) // negative: the block ends in panic, so it is cold
		panic(why)                      // want panic-in-library
	}
	if n > 1<<20 {
		big := fmt.Sprint(n) // negative: nested-block panic termination
		{
			_ = big
			panic("huge") // want panic-in-library
		}
	}
	return len(bs) + len(ss) + len(msg)
}
