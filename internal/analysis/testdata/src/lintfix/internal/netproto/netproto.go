// Package netproto is a fixture: a real-network package exempt from the
// determinism rule, so wall-clock use here is legitimate.
package netproto

import "time"

// Uptime reads the wall clock; exempt packages may.
func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}
