package netproto

import "time"

// NowSec reads the wall clock — legitimate here (the package is exempt
// from the determinism rule) but tainted for detflow callers.
func NowSec() float64 {
	return float64(time.Now().UnixNano()) / 1e9
}
