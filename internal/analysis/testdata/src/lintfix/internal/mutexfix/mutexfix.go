// Package mutexfix is a fixture for the mutex-across-block analyzer.
package mutexfix

import "sync"

// Node guards a channel with a mutex, tempting callers to block while
// holding it.
type Node struct {
	mu sync.Mutex
	ch chan int
}

// Bad sends on a channel with the lock held.
func (n *Node) Bad() {
	n.mu.Lock()
	n.ch <- 1 // want mutex-across-block
	n.mu.Unlock()
}

// BadViaHelper blocks indirectly: send is a package-local function that
// performs a channel send, so calling it under the lock is flagged too.
func (n *Node) BadViaHelper() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.send() // want mutex-across-block
}

func (n *Node) send() {
	n.ch <- 2
}

// Good releases the lock before blocking.
func (n *Node) Good() {
	n.mu.Lock()
	n.mu.Unlock()
	n.ch <- 3
}

// GoodDefer holds the lock across straight-line code only.
func (n *Node) GoodDefer() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return 1
}
