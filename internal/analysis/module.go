package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// This file is the whole-module facts layer: one shared, cached
// cross-package call graph over every loaded package, plus the memoized
// transitive facts (allocation, blocking, lock acquisition, taint) the
// dataflow analyzers read. The per-function syntactic analyzers of PR 1
// see one package at a time; hotalloc, lockorder, goleak and detflow all
// need to follow calls across package boundaries, and they must not each
// rebuild that graph, so Run constructs one Module per invocation and
// every Pass shares it.

// CallKind classifies a call-graph edge.
type CallKind int

const (
	// EdgeCall is a direct static call: f(...) or recv.M(...).
	EdgeCall CallKind = iota
	// EdgeMethodValue is a method or function used as a value (x.M or f
	// without a call): the target may run later on an unknown schedule,
	// so reachability keeps the edge.
	EdgeMethodValue
	// EdgeGo is the callee of a go statement.
	EdgeGo
)

// String renders the edge kind for diagnostics.
func (k CallKind) String() string {
	switch k {
	case EdgeCall:
		return "call"
	case EdgeMethodValue:
		return "method value"
	case EdgeGo:
		return "go"
	default:
		return fmt.Sprintf("CallKind(%d)", int(k))
	}
}

// CallEdge is one resolved call-graph edge to a module function.
type CallEdge struct {
	Callee *FuncInfo
	Pos    token.Pos
	Kind   CallKind
	// InFuncLit marks edges textually inside a function literal of the
	// caller: they run on the closure's schedule, not the caller's, so
	// straight-line analyses (hotalloc, lockorder) skip them while
	// reachability analyses may keep them.
	InFuncLit bool
}

// FuncInfo is one declared function or method of the module.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Test marks functions declared in _test.go files.
	Test bool
	// Hot marks functions annotated // lint:hotpath in their doc
	// comment; hotalloc requires them transitively allocation-free.
	Hot bool
	// Cold marks functions annotated // lint:coldpath: a documented
	// boundary where hotalloc stops descending (telemetry sinks, error
	// formatting) because the steady-state benchmark never enters them.
	Cold bool

	edges []CallEdge
}

// Edges returns the function's outgoing resolved call edges in source
// order.
func (f *FuncInfo) Edges() []CallEdge { return f.edges }

// Name renders the function qualified enough for a diagnostic:
// "pkgbase.Func" or "pkgbase.(Recv).Method".
func (f *FuncInfo) Name() string {
	base := f.Pkg.ImportPath
	if i := strings.LastIndex(base, "/"); i >= 0 {
		base = base[i+1:]
	}
	if recv := f.Obj.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return fmt.Sprintf("%s.(%s).%s", base, n.Obj().Name(), f.Obj.Name())
		}
	}
	return base + "." + f.Obj.Name()
}

// pending is a diagnostic computed at module scope and delivered later
// through the owning package's pass, so lint:allow suppression applies
// exactly as it does for per-package analyzers.
type pending struct {
	pos token.Pos
	msg string
}

// emitPending reports a package's share of module-computed diagnostics.
func emitPending(pass *Pass, byPkg map[*Package][]pending) {
	for _, d := range byPkg[pass.Pkg] {
		pass.Reportf(d.pos, "%s", d.msg)
	}
}

// Module is the shared facts layer over every package of one Run.
type Module struct {
	Pkgs []*Package
	Fset *token.FileSet

	funcs map[*types.Func]*FuncInfo
	byPkg map[*Package][]*FuncInfo // source order within each package

	// Analyzer caches, each computed once per Run on first use.
	hotOnce   sync.Once
	hotDiags  map[*Package][]pending
	lockOnce  sync.Once
	lockDiags map[*Package][]pending
	detOnce   sync.Once
	detFacts  *detFacts

	blockOnce sync.Once
	blocking  map[*FuncInfo]string // why the function blocks, "" absent
	acqOnce   sync.Once
	acquires  map[*FuncInfo]map[string]bool // transitively locked classes
}

// hotpathMarker and coldpathMarker start the hot-path annotation
// comments. The contract (DESIGN §10): every function whose doc comment
// carries `// lint:hotpath <why>` must be transitively allocation-free
// on its steady-state success path, checked by the hotalloc analyzer;
// `// lint:coldpath <why>` declares a boundary the steady state never
// crosses, stopping the traversal there.
const (
	hotpathMarker  = "lint:hotpath"
	coldpathMarker = "lint:coldpath"
)

// NewModule indexes the packages' function declarations and builds the
// resolved call graph.
func NewModule(pkgs []*Package) *Module {
	m := &Module{
		Pkgs:  pkgs,
		funcs: make(map[*types.Func]*FuncInfo),
		byPkg: make(map[*Package][]*FuncInfo),
	}
	if len(pkgs) > 0 {
		m.Fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			m.indexFile(pkg, f, false)
		}
		for _, f := range pkg.TestFiles {
			m.indexFile(pkg, f, true)
		}
	}
	for _, pkg := range pkgs {
		for _, fi := range m.byPkg[pkg] {
			m.buildEdges(fi)
		}
	}
	return m
}

// indexFile registers one file's function declarations.
func (m *Module) indexFile(pkg *Package, f *ast.File, test bool) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		fi := &FuncInfo{
			Obj: obj, Decl: fd, Pkg: pkg, Test: test,
			Hot:  hasMarker(fd, hotpathMarker),
			Cold: hasMarker(fd, coldpathMarker),
		}
		m.funcs[obj] = fi
		m.byPkg[pkg] = append(m.byPkg[pkg], fi)
	}
}

// hasMarker reports whether the declaration's doc comment carries the
// given annotation marker.
func hasMarker(fd *ast.FuncDecl, marker string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
		if text == marker || strings.HasPrefix(text, marker+" ") {
			return true
		}
	}
	return false
}

// FuncOf returns the module's info for a function object, nil for
// functions outside the module (stdlib, interface methods).
func (m *Module) FuncOf(obj *types.Func) *FuncInfo {
	if obj == nil {
		return nil
	}
	return m.funcs[obj]
}

// Funcs returns the package's declared functions in source order.
func (m *Module) Funcs(pkg *Package) []*FuncInfo { return m.byPkg[pkg] }

// posRange is a half-open source interval.
type posRange struct{ lo, hi token.Pos }

// funcLitRanges collects the source extents of every function literal in
// the body, so edge construction can mark deferred-schedule edges.
func funcLitRanges(body *ast.BlockStmt) []posRange {
	var ranges []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			ranges = append(ranges, posRange{lit.Pos(), lit.End()})
		}
		return true
	})
	return ranges
}

func inRanges(ranges []posRange, pos token.Pos) bool {
	for _, r := range ranges {
		if r.lo <= pos && pos < r.hi {
			return true
		}
	}
	return false
}

// buildEdges resolves the function's static calls, go spawns and
// method/function values into call-graph edges.
func (m *Module) buildEdges(fi *FuncInfo) {
	info := fi.Pkg.Info
	lits := funcLitRanges(fi.Decl.Body)

	// Classify expression roles first so a SelectorExpr or Ident that is
	// the Fun of a call is not double-counted as a value edge.
	funNodes := make(map[ast.Expr]bool)
	goNodes := make(map[ast.Expr]bool)
	selSels := make(map[*ast.Ident]bool)
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			funNodes[n.Fun] = true
		case *ast.GoStmt:
			goNodes[n.Call.Fun] = true
		case *ast.SelectorExpr:
			selSels[n.Sel] = true
		}
		return true
	})

	addEdge := func(obj *types.Func, pos token.Pos, kind CallKind) {
		callee := m.FuncOf(obj)
		if callee == nil {
			return
		}
		fi.edges = append(fi.edges, CallEdge{
			Callee:    callee,
			Pos:       pos,
			Kind:      kind,
			InFuncLit: inRanges(lits, pos),
		})
	}

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			obj, ok := info.Uses[n.Sel].(*types.Func)
			if !ok {
				return true
			}
			switch {
			case goNodes[ast.Expr(n)]:
				addEdge(obj, n.Pos(), EdgeGo)
			case funNodes[ast.Expr(n)]:
				addEdge(obj, n.Pos(), EdgeCall)
			default:
				addEdge(obj, n.Pos(), EdgeMethodValue)
			}
			return true
		case *ast.Ident:
			// Selector targets are handled on their SelectorExpr above.
			if selSels[n] {
				return true
			}
			obj, ok := info.Uses[n].(*types.Func)
			if !ok {
				return true
			}
			switch {
			case goNodes[ast.Expr(n)]:
				addEdge(obj, n.Pos(), EdgeGo)
			case funNodes[ast.Expr(n)]:
				addEdge(obj, n.Pos(), EdgeCall)
			default:
				addEdge(obj, n.Pos(), EdgeMethodValue)
			}
			return true
		}
		return true
	})
}

// StaticCallee resolves the call's target to a module function, or nil
// when the target is dynamic (interface method, function value) or
// outside the module.
func (m *Module) StaticCallee(info *types.Info, call *ast.CallExpr) *FuncInfo {
	return m.FuncOf(calleeFunc(info, call))
}

// Reachable walks the call graph from the roots over edges selected by
// keep and returns every function reached (roots included), in
// deterministic order.
func (m *Module) Reachable(roots []*FuncInfo, keep func(CallEdge) bool) []*FuncInfo {
	seen := make(map[*FuncInfo]bool)
	var out []*FuncInfo
	var visit func(fi *FuncInfo)
	visit = func(fi *FuncInfo) {
		if seen[fi] {
			return
		}
		seen[fi] = true
		out = append(out, fi)
		for _, e := range fi.edges {
			if keep == nil || keep(e) {
				visit(e.Callee)
			}
		}
	}
	for _, r := range roots {
		visit(r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}
