package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// loadTemp materializes a module with writeModule and loads it.
func loadTemp(t *testing.T, files map[string]string) []*Package {
	t.Helper()
	dir := writeModule(t, files)
	pkgs, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("loading temp module: %v", err)
	}
	return pkgs
}

// findFunc locates a FuncInfo by its diagnostic name ("lib.Ping").
func findFunc(t *testing.T, mod *Module, pkgs []*Package, name string) *FuncInfo {
	t.Helper()
	for _, pkg := range pkgs {
		for _, fi := range mod.Funcs(pkg) {
			if fi.Name() == name {
				return fi
			}
		}
	}
	t.Fatalf("function %s not found in module", name)
	return nil
}

// TestCallGraphMutualRecursion checks that edge construction and
// reachability terminate on a call cycle and record both directions.
func TestCallGraphMutualRecursion(t *testing.T) {
	pkgs := loadTemp(t, map[string]string{
		"go.mod": "module tmpfix\n\ngo 1.24\n",
		"lib/lib.go": `package lib

func Ping(n int) {
	if n > 0 {
		Pong(n - 1)
	}
}

func Pong(n int) {
	if n > 0 {
		Ping(n - 1)
	}
}
`,
	})
	mod := NewModule(pkgs)
	ping := findFunc(t, mod, pkgs, "lib.Ping")
	pong := findFunc(t, mod, pkgs, "lib.Pong")
	if !hasEdge(ping, pong, EdgeCall) {
		t.Errorf("Ping -> Pong edge missing: %v", ping.Edges())
	}
	if !hasEdge(pong, ping, EdgeCall) {
		t.Errorf("Pong -> Ping edge missing: %v", pong.Edges())
	}
	reached := mod.Reachable([]*FuncInfo{ping}, func(CallEdge) bool { return true })
	names := make(map[string]bool)
	for _, fi := range reached {
		names[fi.Name()] = true
	}
	if !names["lib.Ping"] || !names["lib.Pong"] {
		t.Errorf("reachability over the cycle lost a node: %v", names)
	}
}

// TestCallGraphMethodValueAndGoEdges checks the edge kinds: a method
// used as a value, a direct method call, and a go-statement callee.
func TestCallGraphMethodValueAndGoEdges(t *testing.T) {
	pkgs := loadTemp(t, map[string]string{
		"go.mod": "module tmpfix\n\ngo 1.24\n",
		"lib/lib.go": `package lib

type T struct{}

func (T) M() {}

func Worker() {}

func Use(t T) {
	f := t.M
	f()
	t.M()
	go Worker()
}
`,
	})
	mod := NewModule(pkgs)
	use := findFunc(t, mod, pkgs, "lib.Use")
	m := findFunc(t, mod, pkgs, "lib.(T).M")
	worker := findFunc(t, mod, pkgs, "lib.Worker")
	if !hasEdge(use, m, EdgeMethodValue) {
		t.Errorf("Use -> T.M method-value edge missing: %v", use.Edges())
	}
	if !hasEdge(use, m, EdgeCall) {
		t.Errorf("Use -> T.M direct-call edge missing: %v", use.Edges())
	}
	if !hasEdge(use, worker, EdgeGo) {
		t.Errorf("Use -> Worker go edge missing: %v", use.Edges())
	}
}

func hasEdge(from, to *FuncInfo, kind CallKind) bool {
	for _, e := range from.Edges() {
		if e.Callee == to && e.Kind == kind {
			return true
		}
	}
	return false
}

// hotSrc builds a lint:hotpath function whose body is the given
// statements, for the hotalloc regression pair below.
func hotSrc(body string) string {
	return `package lib

// lint:hotpath regression fixture
func Hot(buf []int, n int) int {
` + body + `
}
`
}

// TestHotAllocRegression is the acceptance-criteria regression pair:
// the annotated hot path is clean as written, and introducing a single
// allocation into it makes hotalloc fail.
func TestHotAllocRegression(t *testing.T) {
	clean := loadTemp(t, map[string]string{
		"go.mod":     "module tmpfix\n\ngo 1.24\n",
		"lib/lib.go": hotSrc("	return n*2 + len(buf)"),
	})
	if diags := Run(clean, []*Analyzer{HotAlloc}); len(diags) != 0 {
		t.Fatalf("clean hot path must not be flagged, got %v", diags)
	}
	broken := loadTemp(t, map[string]string{
		"go.mod":     "module tmpfix\n\ngo 1.24\n",
		"lib/lib.go": hotSrc("	tmp := make([]int, n)\n	return len(tmp)"),
	})
	diags := Run(broken, []*Analyzer{HotAlloc})
	if len(diags) != 1 {
		t.Fatalf("introduced allocation must yield exactly one finding, got %v", diags)
	}
	d := diags[0]
	if d.Analyzer != "hotalloc" || !strings.Contains(d.Message, "hot path") {
		t.Errorf("want a hotalloc hot-path finding, got %s", d)
	}
	if d.Pos.Line != 5 {
		t.Errorf("finding should sit on the make line (5), got line %d", d.Pos.Line)
	}
}

// TestLoadModuleWithTests checks the -tests loader path: in-package
// test files merge into their package, external test packages load as
// ForTest, and neither appears in a default load.
func TestLoadModuleWithTests(t *testing.T) {
	files := map[string]string{
		"go.mod": "module tmpfix\n\ngo 1.24\n",
		"lib/lib.go": `package lib

func Add(a, b int) int { return a + b }
`,
		"lib/lib_test.go": `package lib

import "testing"

func TestAdd(t *testing.T) {
	if Add(1, 2) != 3 {
		t.Fatal("bad add")
	}
}
`,
		"lib/ext_test.go": `package lib_test

import (
	"testing"

	"tmpfix/lib"
)

func TestAddExt(t *testing.T) {
	if lib.Add(2, 2) != 4 {
		t.Fatal("bad add")
	}
}
`,
	}
	dir := writeModule(t, files)

	plain, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("default load: %v", err)
	}
	for _, pkg := range plain {
		if len(pkg.TestFiles) != 0 || pkg.ForTest {
			t.Errorf("default load must skip test files, got %s with %d test files (forTest=%v)",
				pkg.ImportPath, len(pkg.TestFiles), pkg.ForTest)
		}
	}

	withTests, err := LoadModuleWith(dir, LoadOptions{Tests: true})
	if err != nil {
		t.Fatalf("load with tests: %v", err)
	}
	var sawInPkg, sawExt bool
	for _, pkg := range withTests {
		if pkg.ImportPath == "tmpfix/lib" && len(pkg.TestFiles) == 1 {
			sawInPkg = true
		}
		if pkg.ForTest && pkg.ImportPath == "tmpfix/lib" && pkg.Name == "lib_test" {
			sawExt = true
		}
	}
	if !sawInPkg {
		t.Errorf("in-package test file not merged into tmpfix/lib")
	}
	if !sawExt {
		t.Errorf("external test package lib_test not loaded as ForTest")
	}
	if diags := Run(withTests, All()); len(diags) != 0 {
		t.Errorf("clean test module must produce no diagnostics, got %v", diags)
	}
}

// TestModulePathErrors checks the failure modes of go.mod parsing.
func TestModulePathErrors(t *testing.T) {
	if _, err := ModulePath(t.TempDir()); err == nil {
		t.Error("missing go.mod must error")
	}
	dir := writeModule(t, map[string]string{"go.mod": "go 1.24\n"})
	if _, err := ModulePath(dir); err == nil {
		t.Error("go.mod without a module line must error")
	}
}

// TestLoadSkipsExcludedBuildTags checks that mutually exclusive
// build-tagged files (//go:build race vs !race) do not collide when the
// loader type-checks test files.
func TestLoadSkipsExcludedBuildTags(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpfix\n\ngo 1.24\n",
		"lib/lib.go": `package lib

func Enabled() bool { return raceEnabled }
`,
		"lib/race.go": `//go:build race

package lib

const raceEnabled = true
`,
		"lib/norace.go": `//go:build !race

package lib

const raceEnabled = false
`,
	})
	pkgs, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("build-tagged variants must not collide: %v", err)
	}
	if diags := Run(pkgs, All()); len(diags) != 0 {
		t.Errorf("want no diagnostics, got %v", diags)
	}
}

// TestByName checks CLI analyzer selection: valid comma lists resolve,
// unknown or empty selections error.
func TestByName(t *testing.T) {
	as, err := ByName("hotalloc, goleak")
	if err != nil {
		t.Fatalf("valid selection: %v", err)
	}
	if len(as) != 2 || as[0].Name != "hotalloc" || as[1].Name != "goleak" {
		t.Errorf("want [hotalloc goleak], got %v", as)
	}
	if _, err := ByName("no-such-analyzer"); err == nil {
		t.Error("unknown analyzer must error")
	}
	if _, err := ByName(" , "); err == nil {
		t.Error("empty selection must error")
	}
}

// TestRenderers pins the human-readable forms used in diagnostics.
func TestRenderers(t *testing.T) {
	kinds := map[CallKind]string{EdgeCall: "call", EdgeMethodValue: "method value", EdgeGo: "go", CallKind(99): "CallKind(99)"}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("CallKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
	d := Diagnostic{Analyzer: "hotalloc", Message: "boom"}
	d.Pos.Filename, d.Pos.Line, d.Pos.Column = "x.go", 3, 7
	if got := d.String(); got != "x.go:3:7: [hotalloc] boom" {
		t.Errorf("Diagnostic.String() = %q", got)
	}
}

// TestFindModuleRoot checks go.mod discovery from a nested directory
// and the error when no module encloses the path.
func TestFindModuleRoot(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":     "module tmpfix\n\ngo 1.24\n",
		"lib/lib.go": "package lib\n",
	})
	root, err := FindModuleRoot(filepath.Join(dir, "lib"))
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	if root != dir {
		t.Errorf("root = %q, want %q", root, dir)
	}
	if _, err := FindModuleRoot("/proc/self"); err == nil {
		t.Error("module-less path must error")
	}
}
