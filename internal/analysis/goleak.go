package analysis

import (
	"go/ast"
	"go/token"
)

// GoLeak requires every goroutine spawned by library code to have a
// visible termination path. The paper's aggregation pipeline is
// request-scoped: probes, fan-out lookups and session reapers all start
// goroutines per request or per peer, and one leaked goroutine per
// request is the difference between the scalability claim (§5) holding
// and the node dying under churn. The analyzer resolves each go
// statement's body — a function literal, or a named module function via
// the shared call graph — and flags:
//
//   - infinite `for {}` loops with no return and no break out of the
//     loop: nothing ends the goroutine;
//   - `select {}` with no cases: blocks forever by definition;
//   - a plain channel send outside any select: if the receiver is gone
//     (request cancelled, peer dead) the goroutine blocks forever —
//     sends from spawned goroutines must carry a cancellation arm;
//   - spawn targets the analyzer cannot resolve (function values,
//     interface methods): termination cannot be audited, so the spawn
//     site must name a function or literal, or justify itself.
//
// package main and test files are exempt: commands die with the
// process, and test goroutines die with the test binary.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "require a visible termination path for every goroutine spawned in library code",
	Run:  runGoLeak,
}

func runGoLeak(pass *Pass) {
	if pass.Pkg.Name == "main" || pass.Pkg.ForTest {
		return
	}
	mod := pass.Mod
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				for _, p := range spawnProblems(pass, lit.Body) {
					pass.Reportf(p.pos, "goroutine %s; give the goroutine a context/done-channel/WaitGroup termination path", p.msg)
				}
				return true
			}
			callee := mod.StaticCallee(info, g.Call)
			if callee == nil {
				pass.Reportf(g.Pos(), "cannot resolve the spawned function; spawn a named function or literal so its termination path is auditable")
				return true
			}
			// Findings inside a named callee are reported at the spawn
			// site: the defect is spawning a function with no exit, and
			// the callee may live in another package whose suppressions
			// this pass cannot see.
			for _, p := range spawnProblems(pass, callee.Decl.Body) {
				pass.Reportf(g.Pos(), "spawned %s %s at %s; give the goroutine a termination path", callee.Name(), p.msg, pass.Fset.Position(p.pos))
			}
			return true
		})
	}
}

// spawnProblem is one termination defect found in a spawned body.
type spawnProblem struct {
	pos token.Pos
	msg string
}

// spawnProblems scans a goroutine body for constructs with no
// termination path. Nested function literals are skipped: they run on
// their own schedule and are audited at their own spawn sites.
func spawnProblems(pass *Pass, body *ast.BlockStmt) []spawnProblem {
	var out []spawnProblem
	var inSelect []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		if s, ok := n.(*ast.SelectStmt); ok && len(s.Body.List) > 0 {
			inSelect = append(inSelect, posRange{s.Pos(), s.End()})
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if n.Cond == nil && !loopHasExit(n) {
				out = append(out, spawnProblem{n.Pos(), "loops forever with no return or break"})
			}
		case *ast.SelectStmt:
			if len(n.Body.List) == 0 {
				out = append(out, spawnProblem{n.Pos(), "blocks forever on an empty select"})
			}
		case *ast.SendStmt:
			if !inRanges(inSelect, n.Pos()) {
				out = append(out, spawnProblem{n.Pos(), "sends on a channel with no select/cancellation arm, so it can outlive the receiver"})
			}
		}
		return true
	})
	return out
}

// loopHasExit reports whether an infinite for loop contains a return or
// an unlabeled break at its own nesting level (labeled breaks are
// accepted conservatively), outside nested function literals.
func loopHasExit(loop *ast.ForStmt) bool {
	return stmtsExit(loop.Body.List, 0)
}

// stmtsExit walks statements looking for an exit from the loop whose
// body sits at depth 0. depth counts enclosing constructs an unlabeled
// break would bind to instead of the loop under audit.
func stmtsExit(list []ast.Stmt, depth int) bool {
	for _, s := range list {
		if stmtExit(s, depth) {
			return true
		}
	}
	return false
}

func stmtExit(s ast.Stmt, depth int) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		switch s.Tok.String() {
		case "break":
			// A labeled break targets some enclosing statement; assume
			// it can leave the loop. An unlabeled break only counts at
			// the loop's own level.
			return s.Label != nil || depth == 0
		case "goto":
			return true // conservatively assume the label leads out
		}
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" && id.Obj == nil {
				return true // crash is a termination path, if a rude one
			}
		}
	case *ast.BlockStmt:
		return stmtsExit(s.List, depth)
	case *ast.IfStmt:
		if stmtsExit(s.Body.List, depth) {
			return true
		}
		if s.Else != nil && stmtExit(s.Else, depth) {
			return true
		}
	case *ast.ForStmt:
		return stmtsExit(s.Body.List, depth+1)
	case *ast.RangeStmt:
		return stmtsExit(s.Body.List, depth+1)
	case *ast.SwitchStmt:
		return clausesExit(s.Body.List, depth+1)
	case *ast.TypeSwitchStmt:
		return clausesExit(s.Body.List, depth+1)
	case *ast.SelectStmt:
		return commClausesExit(s.Body.List, depth+1)
	case *ast.LabeledStmt:
		return stmtExit(s.Stmt, depth)
	}
	return false
}

func clausesExit(list []ast.Stmt, depth int) bool {
	for _, c := range list {
		if cc, ok := c.(*ast.CaseClause); ok && stmtsExit(cc.Body, depth) {
			return true
		}
	}
	return false
}

func commClausesExit(list []ast.Stmt, depth int) bool {
	for _, c := range list {
		if cc, ok := c.(*ast.CommClause); ok && stmtsExit(cc.Body, depth) {
			return true
		}
	}
	return false
}
