package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// UncheckedError flags statements that call one of this repo's own
// functions and drop a returned error on the floor. Stdlib calls are out
// of scope (go vet and good taste cover the usual suspects); the point
// here is that repo APIs signal admission failures, registry
// inconsistencies and rollback problems through errors, and ignoring
// those silently skews ψ. An intentional best-effort call is written
// `_ = f()` (or `_, _ = f()`), which makes the drop explicit and is not
// flagged.
var UncheckedError = &Analyzer{
	Name: "unchecked-error",
	Doc:  "flag dropped error results from this module's own functions",
	Run:  runUncheckedError,
}

func runUncheckedError(pass *Pass) {
	mod := pass.Pkg.Module
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != mod && !strings.HasPrefix(path, mod+"/") {
				return true
			}
			if !returnsError(fn) {
				return true
			}
			pass.Reportf(call.Pos(), "result of %s carries an error that is dropped; handle it or discard explicitly with _ =", fn.Name())
			return true
		})
	}
}

// calleeFunc resolves the static callee of a call, if any.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// returnsError reports whether any result of fn is of type error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		if named, ok := results.At(i).Type().(*types.Named); ok {
			if named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
				return true
			}
		}
	}
	return false
}
