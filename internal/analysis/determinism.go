package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// determinismExempt lists internal packages allowed to touch the wall
// clock: the network prototype talks to a real network on real time, the
// fault plane injects real latency into real TCP dials (its *decisions*
// are still pure functions of the seed — see package faults), the
// open-loop load generator paces real arrivals against the wall clock
// by definition (its schedules and mixes are still pure functions of
// the seed — see package load), and this analysis package is not part
// of any simulation path.
var determinismExempt = map[string]bool{
	"netproto": true,
	"faults":   true,
	"analysis": true,
	"load":     true,
}

// forbiddenTimeFuncs are the time-package functions that inject
// wall-clock nondeterminism into a simulation. Simulation code must use
// the eventsim virtual clock instead.
var forbiddenTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// Determinism forbids math/rand and wall-clock time in simulation
// packages: every figure of the paper regenerates bit-for-bit from one
// seed, which holds only while all randomness flows through
// internal/xrand and all time through the eventsim clock.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid math/rand and wall-clock time in internal simulation packages",
	Run:  runDeterminism,
}

// determinismApplies reports whether the import path is a simulation
// package covered by the rule.
func determinismApplies(importPath string) bool {
	rest, ok := cutInternal(importPath)
	if !ok {
		return false
	}
	top, _, _ := strings.Cut(rest, "/")
	return !determinismExempt[top]
}

// cutInternal splits ".../internal/<rest>" out of an import path.
func cutInternal(importPath string) (rest string, ok bool) {
	const marker = "/internal/"
	if i := strings.Index(importPath, marker); i >= 0 {
		return importPath[i+len(marker):], true
	}
	return "", false
}

func runDeterminism(pass *Pass) {
	if !determinismApplies(pass.Pkg.ImportPath) {
		return
	}
	for _, f := range pass.Files() {
		// Alias tracking: `import mrand "math/rand"` must not evade the
		// check, and a package named time that is not the stdlib time
		// must not trip it.
		timeNames := map[string]bool{}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			switch path {
			case "math/rand", "math/rand/v2":
				pass.Reportf(imp.Pos(), "simulation package imports %s; derive randomness from internal/xrand so runs replay bit-for-bit", path)
			case "time":
				name := "time"
				if imp.Name != nil {
					name = imp.Name.Name
				}
				timeNames[name] = true
			}
		}
		if len(timeNames) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !timeNames[id.Name] || !forbiddenTimeFuncs[sel.Sel.Name] {
				return true
			}
			// Confirm the identifier really is the time package, not a
			// local variable shadowing the import.
			if pn, ok := pass.TypesInfo().Uses[id].(*types.PkgName); !ok || pn.Imported().Path() != "time" {
				return true
			}
			pass.Reportf(sel.Pos(), "simulation package calls time.%s; use the eventsim virtual clock so runs replay bit-for-bit", sel.Sel.Name)
			return true
		})
	}
}
