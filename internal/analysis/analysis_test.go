package analysis

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantRe matches expectation markers in fixture sources:
//
//	n.ch <- 1 // want mutex-across-block
//
// The marker names every analyzer expected to fire on that line.
var wantRe = regexp.MustCompile(`//\s*want\s+([a-z-]+(?:\s+[a-z-]+)*)\s*$`)

// collectWants scans fixture .go files for want markers and returns the
// expected analyzer names keyed by "file:line".
func collectWants(t *testing.T, root string) map[string][]string {
	t.Helper()
	wants := make(map[string][]string)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			key := fmt.Sprintf("%s:%d", path, line)
			wants[key] = append(wants[key], strings.Fields(m[1])...)
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatalf("scanning fixture: %v", err)
	}
	return wants
}

// TestAnalyzersOnFixture runs every analyzer over the lintfix fixture
// module and requires the diagnostics to match the want markers exactly:
// one positive and one negative case per analyzer live in the fixture.
func TestAnalyzersOnFixture(t *testing.T) {
	root := filepath.Join("testdata", "src", "lintfix")
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("loading fixture module: %v", err)
	}
	wants := collectWants(t, root)
	got := make(map[string][]string)
	for _, d := range Run(pkgs, All()) {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		got[key] = append(got[key], d.Analyzer)
	}
	for key, names := range wants {
		sort.Strings(names)
		g := append([]string(nil), got[key]...)
		sort.Strings(g)
		if strings.Join(names, " ") != strings.Join(g, " ") {
			t.Errorf("%s: want analyzers %v, got %v", key, names, g)
		}
	}
	for key, names := range got {
		if _, ok := wants[key]; !ok {
			t.Errorf("%s: unexpected diagnostics %v", key, names)
		}
	}
}

// writeModule materializes a throwaway module for loader-level tests.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestUnusedSuppression checks that a lint:allow comment with nothing to
// suppress is itself reported, so stale suppressions cannot accumulate.
func TestUnusedSuppression(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpfix\n\ngo 1.24\n",
		"lib/lib.go": `package lib

// lint:allow determinism nothing nondeterministic happens here
func Add(a, b int) int { return a + b }
`,
	})
	pkgs, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("loading temp module: %v", err)
	}
	diags := Run(pkgs, All())
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 diagnostic, got %d: %v", len(diags), diags)
	}
	if diags[0].Analyzer != "lint" || !strings.Contains(diags[0].Message, "unused") {
		t.Errorf("want unused-suppression report, got %s", diags[0])
	}
}

// TestMalformedSuppression checks that lint:allow without a justification
// is rejected rather than silently honored.
func TestMalformedSuppression(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpfix\n\ngo 1.24\n",
		"lib/lib.go": `package lib

// lint:allow float-eq
func Same(a, b float64) bool { return a == b }
`,
	})
	pkgs, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("loading temp module: %v", err)
	}
	diags := Run(pkgs, All())
	var sawBad, sawFloat bool
	for _, d := range diags {
		if d.Analyzer == "lint" && strings.Contains(d.Message, "justification") {
			sawBad = true
		}
		if d.Analyzer == "float-eq" {
			sawFloat = true
		}
	}
	if !sawBad {
		t.Errorf("want a malformed-suppression report, got %v", diags)
	}
	if !sawFloat {
		t.Errorf("malformed suppression must not suppress; got %v", diags)
	}
}

// TestSuppressionOnSameLine checks the trailing-comment suppression form.
func TestSuppressionOnSameLine(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpfix\n\ngo 1.24\n",
		"lib/lib.go": `package lib

func Same(a, b float64) bool {
	return a == b // lint:allow float-eq callers pass canonical bits
}
`,
	})
	pkgs, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("loading temp module: %v", err)
	}
	if diags := Run(pkgs, All()); len(diags) != 0 {
		t.Errorf("want no diagnostics, got %v", diags)
	}
}
