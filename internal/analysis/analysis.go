// Package analysis is the repo's own static-analysis pass: a small,
// zero-dependency (standard library only) framework plus the analyzers
// that mechanize the invariants the QSA reproduction's correctness rests
// on but the Go compiler cannot see:
//
//   - determinism: simulation packages derive all randomness from
//     internal/xrand and all time from the simulated clock — wall-clock
//     and math/rand calls silently break bit-for-bit reproducibility;
//   - float-eq: QoS and resource values are float64 vectors; comparing
//     them with ==/!= (outside exact-sentinel zero checks) is almost
//     always a bug in the satisfy relation (paper eq. 1);
//   - mutex-across-block: holding a sync.Mutex across a channel
//     operation or blocking call is the classic recipe for deadlock in
//     the network prototype;
//   - keyed-literals: QoS/spec structs gain fields as the model grows;
//     positional composite literals rot silently;
//   - panic-in-library: library packages return errors, they do not
//     panic, unless a site is annotated as a genuine invariant;
//   - unchecked-error: error results of this repo's own APIs must be
//     consumed or explicitly discarded.
//
// Diagnostics can be suppressed per line with a justification comment:
//
//	// lint:allow <analyzer-name> <one-line reason>
//
// placed on the offending line or the line directly above it. A
// suppression without a reason is itself reported. The cmd/qsalint CLI
// runs every analyzer over the module; lint_test.go at the repo root
// makes `go test ./...` fail on any finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// lint:allow suppression comments.
	Name string
	// Doc is a one-line description of what the analyzer enforces.
	Doc string
	// Run inspects the package behind pass and reports violations.
	Run func(pass *Pass)
	// Tests opts the analyzer in to _test.go files when the module was
	// loaded with LoadOptions.Tests. Most analyzers enforce library
	// invariants that tests legitimately break (wall-clock timeouts,
	// panics, dropped errors); the determinism-taint ones also guard
	// the chaos and differential suites.
	Tests bool
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders "file:line:col: [name] message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	// Mod is the shared whole-module facts layer (call graph, transitive
	// facts); every pass of one Run sees the same instance, so the
	// cross-package analyzers compute their dataflow once.
	Mod *Module

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos unless a lint:allow comment
// suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.Pkg.suppressed(p.Analyzer.Name, position) {
		return
	}
	p.report(Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Files returns the package's parsed non-test source files, plus its
// test files when the module holds them and the analyzer opted in.
func (p *Pass) Files() []*ast.File {
	if p.Analyzer.Tests && len(p.Pkg.TestFiles) > 0 {
		return append(append([]*ast.File{}, p.Pkg.Files...), p.Pkg.TestFiles...)
	}
	return p.Pkg.Files
}

// TypesInfo returns the package's type-checking results.
func (p *Pass) TypesInfo() *types.Info { return p.Pkg.Info }

// suppression is one parsed lint:allow comment.
type suppression struct {
	analyzer string
	reason   string
	file     string
	line     int
	used     bool
}

// allowPrefix starts a suppression comment.
const allowPrefix = "lint:allow"

// parseSuppressions collects lint:allow comments from a parsed file.
// Malformed suppressions (no analyzer name or no reason) are returned as
// bad so the framework can report them instead of silently ignoring.
func parseSuppressions(fset *token.FileSet, f *ast.File) (ok []*suppression, bad []Diagnostic) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
			if !strings.HasPrefix(text, allowPrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
			name, reason, _ := strings.Cut(rest, " ")
			pos := fset.Position(c.Pos())
			if name == "" || strings.TrimSpace(reason) == "" {
				bad = append(bad, Diagnostic{
					Pos:      pos,
					Analyzer: "lint",
					Message:  "lint:allow needs an analyzer name and a one-line justification",
				})
				continue
			}
			ok = append(ok, &suppression{
				analyzer: name,
				reason:   strings.TrimSpace(reason),
				file:     pos.Filename,
				line:     pos.Line,
			})
		}
	}
	return ok, bad
}

// suppressed reports whether a diagnostic from the named analyzer at pos
// is covered by a lint:allow comment on the same line or the line above.
func (pkg *Package) suppressed(analyzer string, pos token.Position) bool {
	for _, s := range pkg.suppressions {
		if s.analyzer != analyzer || s.file != pos.Filename {
			continue
		}
		if s.line == pos.Line || s.line == pos.Line-1 {
			s.used = true
			return true
		}
	}
	return false
}

// All returns the repo's analyzers in reporting order: the six
// per-function syntactic checks of PR 1, then the four whole-module
// dataflow analyzers built on the shared call graph.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		FloatEq,
		MutexAcrossBlock,
		KeyedLiterals,
		PanicInLibrary,
		UncheckedError,
		HotAlloc,
		LockOrder,
		GoLeak,
		DetFlow,
	}
}

// ByName resolves a comma-separated analyzer selection against All();
// unknown names are an error.
func ByName(names string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("analysis: empty analyzer selection %q", names)
	}
	return out, nil
}

// Run applies the given analyzers to every package and returns the
// surviving diagnostics sorted by position. Unused and malformed
// lint:allow comments are reported too, so suppressions cannot outlive
// the violation they excuse.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	mod := NewModule(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Pkg:      pkg,
				Mod:      mod,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			a.Run(pass)
		}
		diags = append(diags, pkg.badSuppressions...)
		active := make(map[string]bool, len(analyzers))
		for _, a := range analyzers {
			active[a.Name] = true
		}
		for _, s := range pkg.suppressions {
			if s.used || !active[s.analyzer] {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos:      token.Position{Filename: s.file, Line: s.line, Column: 1},
				Analyzer: "lint",
				Message:  fmt.Sprintf("unused lint:allow %s suppression (nothing to suppress here)", s.analyzer),
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags
}
