package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder lifts the PR 1 mutex discipline from one function to the
// whole module. It identifies every sync.(RW)Mutex by class — the named
// struct field or package-level variable that owns it — and builds the
// module-wide acquisition graph: an edge A→B is recorded whenever B is
// locked while A is held, directly or through any chain of calls the
// shared call graph can see. Two shapes are reported:
//
//   - acquisition cycles (A held while locking B somewhere, B held
//     while locking A somewhere else): the classic deadlock the
//     sharded event loops and Raft reservations on the roadmap would
//     otherwise invite;
//   - a lock held across a call into another package that blocks
//     (channel operation, net dial, Transport.Dial RPC): the
//     intra-package case is mutex-across-block's job, but a dial
//     hiding two packages deep is invisible to it.
//
// Classes are instance-insensitive: two different values of one struct
// type share a class, so self-edges (locking two sessions in sequence)
// are deliberately not reported.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "flag cyclic mutex acquisition orders and locks held across cross-package blocking calls",
	Run:  runLockOrder,
}

func runLockOrder(pass *Pass) {
	mod := pass.Mod
	mod.lockOnce.Do(func() { mod.lockDiags = computeLockOrder(mod) })
	emitPending(pass, mod.lockDiags)
}

// mutexClassOf names the lock behind the receiver expression of a
// Lock/Unlock call: "pkgpath.Type.field" for struct-owned mutexes,
// "pkgpath.var" for package-level ones, and a function-local fallback
// otherwise.
func mutexClassOf(info *types.Info, pkgPath string, x ast.Expr) string {
	switch x := x.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			recv := sel.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + x.Sel.Name
			}
		}
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	}
	return pkgPath + ":" + types.ExprString(x)
}

// shortClass renders a class for diagnostics: the import path shrinks
// to its base ("registry.Registry.mu").
func shortClass(class string) string {
	head, rest, ok := strings.Cut(class, ":")
	if !ok {
		head, rest = class, ""
	}
	if i := strings.LastIndex(head, "/"); i >= 0 {
		head = head[i+1:]
	}
	if rest != "" {
		return head + ":" + rest
	}
	return head
}

// lockClassCall classifies call as a sync.(RW)Mutex acquisition or
// release, returning the mutex class and +1/-1.
func lockClassCall(info *types.Info, pkgPath string, call *ast.CallExpr) (class string, delta int, ok bool) {
	fun, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	d, named := lockMethods[fun.Sel.Name]
	if !named {
		return "", 0, false
	}
	sel, isMethod := info.Selections[fun]
	if !isMethod {
		return "", 0, false
	}
	m, isFunc := sel.Obj().(*types.Func)
	if !isFunc || m.Pkg() == nil || m.Pkg().Path() != "sync" {
		return "", 0, false
	}
	recv := m.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", 0, false
	}
	t := recv.Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	n, isNamed := t.(*types.Named)
	if !isNamed {
		return "", 0, false
	}
	switch n.Obj().Name() {
	case "Mutex", "RWMutex":
		return mutexClassOf(info, pkgPath, fun.X), d, true
	}
	return "", 0, false
}

// dialMethods are RPC-shaped interface methods: a dynamic call to one
// of these while a mutex is held serializes the node on the network.
var dialMethods = map[string]bool{"Dial": true, "DialTimeout": true}

// blockReason computes, to a fixpoint over the call graph, why each
// module function blocks ("" when it does not). Direct reasons are
// channel operations, known-blocking stdlib calls and dynamic dials;
// indirect ones flow through static calls outside function literals.
func (m *Module) blockReason() map[*FuncInfo]string {
	m.blockOnce.Do(func() {
		m.blocking = make(map[*FuncInfo]string)
		direct := func(fi *FuncInfo) string {
			reason := ""
			ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
				if reason != "" {
					return false
				}
				switch n := n.(type) {
				case *ast.FuncLit, *ast.GoStmt:
					return false
				case *ast.SendStmt:
					reason = "sends on a channel"
				case *ast.SelectStmt:
					reason = "selects on channels"
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						reason = "receives from a channel"
					}
				case *ast.RangeStmt:
					if t := fi.Pkg.Info.Types[n.X].Type; t != nil {
						if _, ok := t.Underlying().(*types.Chan); ok {
							reason = "ranges over a channel"
						}
					}
				case *ast.CallExpr:
					if r := directCallBlocks(fi.Pkg.Info, n); r != "" {
						reason = r
					}
				}
				return reason == ""
			})
			return reason
		}
		for changed := true; changed; {
			changed = false
			for _, pkg := range m.Pkgs {
				for _, fi := range m.Funcs(pkg) {
					if m.blocking[fi] != "" {
						continue
					}
					if r := direct(fi); r != "" {
						m.blocking[fi] = r
						changed = true
						continue
					}
					for _, e := range fi.Edges() {
						if e.Kind != EdgeCall || e.InFuncLit {
							continue
						}
						if m.blocking[e.Callee] != "" {
							m.blocking[fi] = "calls " + e.Callee.Name() + ", which " + m.blocking[e.Callee]
							changed = true
							break
						}
					}
				}
			}
		}
	})
	return m.blocking
}

// directCallBlocks reports why a single call blocks, "" if it does not
// visibly block. Module callees are resolved by the fixpoint, not here.
func directCallBlocks(info *types.Info, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			mfn, ok := sel.Obj().(*types.Func)
			if !ok {
				return ""
			}
			if pkg := mfn.Pkg(); pkg != nil && syncBlockingMethods[pkg.Name()][mfn.Name()] {
				return "calls " + pkg.Name() + "." + mfn.Name()
			}
			// A dynamic dial: the Transport interface, or anything
			// shaped like it.
			if types.IsInterface(sel.Recv()) && dialMethods[mfn.Name()] {
				return "dials the transport"
			}
			return ""
		}
		if pn, ok := info.Uses[identOf(fun.X)].(*types.PkgName); ok {
			if blockingPkgFuncs[pn.Imported().Path()][fun.Sel.Name] {
				return "calls " + pn.Imported().Name() + "." + fun.Sel.Name
			}
		}
	}
	return ""
}

// lockAcquires computes, to a fixpoint, every mutex class each function
// may acquire, directly or through static calls.
func (m *Module) lockAcquires() map[*FuncInfo]map[string]bool {
	m.acqOnce.Do(func() {
		m.acquires = make(map[*FuncInfo]map[string]bool)
		add := func(fi *FuncInfo, class string) bool {
			set := m.acquires[fi]
			if set == nil {
				set = make(map[string]bool)
				m.acquires[fi] = set
			}
			if set[class] {
				return false
			}
			set[class] = true
			return true
		}
		for _, pkg := range m.Pkgs {
			for _, fi := range m.Funcs(pkg) {
				ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
					if _, ok := n.(*ast.FuncLit); ok {
						return false
					}
					if call, ok := n.(*ast.CallExpr); ok {
						if class, delta, ok := lockClassCall(pkg.Info, pkg.ImportPath, call); ok && delta > 0 {
							add(fi, class)
						}
					}
					return true
				})
			}
		}
		for changed := true; changed; {
			changed = false
			for _, pkg := range m.Pkgs {
				for _, fi := range m.Funcs(pkg) {
					for _, e := range fi.Edges() {
						if e.Kind != EdgeCall || e.InFuncLit {
							continue
						}
						for class := range m.acquires[e.Callee] {
							if add(fi, class) {
								changed = true
							}
						}
					}
				}
			}
		}
	})
	return m.acquires
}

// lockEdge is one observed acquisition ordering: to was locked (or
// reachable-locked) while from was held.
type lockEdge struct {
	from, to string
	pos      token.Pos
	pkg      *Package
	via      string // "" for a direct lock, callee name otherwise
}

// computeLockOrder walks every function with held-set tracking, records
// the acquisition graph and emits cycle plus held-across-blocking
// diagnostics.
func computeLockOrder(mod *Module) map[*Package][]pending {
	diags := make(map[*Package][]pending)
	blocking := mod.blockReason()
	acquires := mod.lockAcquires()

	edges := make(map[string]map[string]lockEdge)
	addEdge := func(e lockEdge) {
		if e.from == e.to {
			return // instance-insensitive classes: self-order is legal
		}
		m := edges[e.from]
		if m == nil {
			m = make(map[string]lockEdge)
			edges[e.from] = m
		}
		if prev, ok := m[e.to]; !ok || e.pos < prev.pos {
			m[e.to] = e
		}
	}

	for _, pkg := range mod.Pkgs {
		for _, fi := range mod.Funcs(pkg) {
			if fi.Test {
				continue // lockorder audits library code, not test scaffolding
			}
			w := &lockWalker{
				info:    pkg.Info,
				pkgPath: pkg.ImportPath,
				onLock: func(class string, pos token.Pos, held map[string]bool) {
					for from := range held {
						addEdge(lockEdge{from: from, to: class, pos: pos, pkg: pkg})
					}
				},
				onCall: func(call *ast.CallExpr, held map[string]bool) {
					if len(held) == 0 {
						return
					}
					heldSorted := sortedKeys(held)
					// Dynamic dial under a lock: invisible to
					// mutex-across-block, fatal in the prototype.
					if r := directCallBlocks(pkg.Info, call); r == "dials the transport" {
						diags[pkg] = append(diags[pkg], pending{
							pos: call.Pos(),
							msg: fmt.Sprintf("transport dial while %s is held; release the mutex before any RPC", shortClass(heldSorted[0])),
						})
						return
					}
					callee := mod.StaticCallee(pkg.Info, call)
					if callee == nil {
						return
					}
					for from := range held {
						for to := range acquires[callee] {
							addEdge(lockEdge{from: from, to: to, pos: call.Pos(), pkg: pkg, via: callee.Name()})
						}
					}
					if callee.Pkg != pkg {
						if r := blocking[callee]; r != "" {
							diags[pkg] = append(diags[pkg], pending{
								pos: call.Pos(),
								msg: fmt.Sprintf("call into %s, which %s, while %s is held; release the mutex before crossing packages", callee.Name(), r, shortClass(heldSorted[0])),
							})
						}
					}
				},
			}
			w.stmts(fi.Decl.Body.List, map[string]bool{})
		}
	}

	// Cycle detection over the class graph: any edge whose endpoints
	// reach each other participates in a deadlock-capable order.
	for _, from := range sortedEdgeKeys(edges) {
		for _, to := range sortedKeys(boolKeys(edges[from])) {
			if !classReaches(edges, to, from) {
				continue
			}
			e := edges[from][to]
			diags[e.pkg] = append(diags[e.pkg], pending{
				pos: e.pos,
				msg: lockCycleMessage(e),
			})
		}
	}
	return diags
}

func lockCycleMessage(e lockEdge) string {
	via := ""
	if e.via != "" {
		via = " (via " + e.via + ")"
	}
	return fmt.Sprintf("lock order cycle: %s acquired%s while %s is held, and elsewhere %s is acquired while %s is held; pick one global order",
		shortClass(e.to), via, shortClass(e.from), shortClass(e.from), shortClass(e.to))
}

// classReaches reports whether from reaches to in the acquisition graph.
func classReaches(edges map[string]map[string]lockEdge, from, to string) bool {
	seen := map[string]bool{}
	var dfs func(c string) bool
	dfs = func(c string) bool {
		if c == to {
			return true
		}
		if seen[c] {
			return false
		}
		seen[c] = true
		for next := range edges[c] {
			if dfs(next) {
				return true
			}
		}
		return false
	}
	return dfs(from)
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func boolKeys(m map[string]lockEdge) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

func sortedEdgeKeys(edges map[string]map[string]lockEdge) []string {
	out := make([]string, 0, len(edges))
	for k := range edges {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// lockWalker tracks the held-mutex class set through a function body in
// source order, with the same branch-intersection bias as
// mutex-across-block: a lock counts as held after a branch only when
// every non-terminating path holds it.
type lockWalker struct {
	info    *types.Info
	pkgPath string
	onLock  func(class string, pos token.Pos, held map[string]bool)
	onCall  func(call *ast.CallExpr, held map[string]bool)
}

func (w *lockWalker) stmts(list []ast.Stmt, held map[string]bool) map[string]bool {
	for _, s := range list {
		held = w.stmt(s, held)
	}
	return held
}

func (w *lockWalker) stmt(s ast.Stmt, held map[string]bool) map[string]bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if class, delta, ok := lockClassCall(w.info, w.pkgPath, call); ok {
				if delta > 0 {
					w.onLock(class, call.Pos(), held)
					held[class] = true
				} else {
					delete(held, class)
				}
				return held
			}
		}
		w.scanExpr(s.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the mutex held for the rest of the
		// function; a deferred blocking call runs after the body.
		if class, delta, ok := lockClassCall(w.info, w.pkgPath, s.Call); ok && delta > 0 {
			w.onLock(class, s.Call.Pos(), held)
			held[class] = true
		}
	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			w.scanExpr(arg, held)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.stmts(lit.Body.List, map[string]bool{})
		}
	case *ast.SendStmt:
		w.scanExpr(s.Value, held)
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				w.stmts(cc.Body, copySet(held))
			}
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scanExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scanExpr(v, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scanExpr(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		w.scanExpr(s.Cond, held)
		bodyOut := w.stmts(s.Body.List, copySet(held))
		var elseOut map[string]bool
		if s.Else != nil {
			elseOut = w.stmt(s.Else, copySet(held))
		} else {
			elseOut = held
		}
		return mergeBranches(held,
			branch{out: bodyOut, terminates: terminates(s.Body.List)},
			branch{out: elseOut, terminates: s.Else != nil && stmtTerminates(s.Else)})
	case *ast.BlockStmt:
		return w.stmts(s.List, held)
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond, held)
		}
		return w.stmts(s.Body.List, held)
	case *ast.RangeStmt:
		w.scanExpr(s.X, held)
		return w.stmts(s.Body.List, held)
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag, held)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copySet(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copySet(held))
			}
		}
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	}
	return held
}

// scanExpr visits calls inside an expression without descending into
// function literals (their bodies run on another schedule).
func (w *lockWalker) scanExpr(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.stmts(n.Body.List, map[string]bool{})
			return false
		case *ast.CallExpr:
			if _, _, isLock := lockClassCall(w.info, w.pkgPath, n); !isLock {
				w.onCall(n, held)
			}
		}
		return true
	})
}
