package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc makes the request hot path's allocation budget (DESIGN §9,
// gated dynamically by one benchmark in ci.sh) a static property:
// every function whose doc comment carries `// lint:hotpath <why>`
// must be transitively allocation-free on its steady-state success
// path. The analyzer walks the shared call graph from each annotated
// root and flags, in every reached function:
//
//   - make / new and heap-escaping composite literals;
//   - append that is not the amortized self-append recycle idiom
//     (`buf = append(buf, ...)` or `buf = append(buf[:0], ...)`);
//   - string concatenation and string<->[]byte/[]rune conversions;
//   - explicit conversions of concrete values to interface types
//     (boxing) and method values (closure allocation);
//   - function literals and go statements;
//   - calls into known-allocating stdlib functions (fmt, errors,
//     strconv formatting, strings/bytes builders, sort.Slice);
//   - dynamic calls (interface methods, function values) that cannot
//     be proven allocation-free.
//
// Two escapes keep the contract precise instead of noisy. Branches
// that terminate by returning a non-nil error are failure paths, not
// steady state, and are skipped entirely. Functions annotated
// `// lint:coldpath <why>` are boundaries the steady state never
// crosses (telemetry emission, error rendering); traversal stops
// there. Everything else that intentionally allocates — session
// construction on admit, cache-miss rebuilds — carries a
// `lint:allow hotalloc` justification, so the 21 allocs/op budget of
// PR 5 is enumerable in source instead of living in one benchmark.
//
// Map index writes are not flagged: the repo's hot maps are cleared
// and reused, so like self-append they amortize to zero.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "require lint:hotpath functions to be transitively allocation-free on the steady-state path",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	mod := pass.Mod
	mod.hotOnce.Do(func() { mod.hotDiags = computeHotAlloc(mod) })
	emitPending(pass, mod.hotDiags)
}

// allocPkgFuncs are stdlib package-level functions known to allocate on
// every call. The list is deliberately small and extensible; stdlib
// calls not listed here are assumed clean, with the ci.sh allocation
// benchmark as the dynamic backstop.
var allocPkgFuncs = map[string]map[string]bool{
	"fmt": nil, // nil means "every function in the package"
	"errors": {
		"New": true, "Join": true,
	},
	"strconv": {
		"Itoa": true, "FormatInt": true, "FormatUint": true,
		"FormatFloat": true, "Quote": true, "Unquote": true,
	},
	"strings": {
		"Join": true, "Repeat": true, "Split": true, "SplitN": true,
		"Fields": true, "Replace": true, "ReplaceAll": true,
		"ToUpper": true, "ToLower": true, "Clone": true, "Map": true,
	},
	"bytes": {
		"Join": true, "Repeat": true, "Split": true, "Fields": true,
		"Clone": true, "ToUpper": true, "ToLower": true,
	},
	"sort": {
		"Slice": true, "SliceStable": true,
	},
	"slices": {
		"Clone": true, "Collect": true, "Sorted": true, "Concat": true,
	},
	"maps": {
		"Clone": true, "Collect": true,
	},
}

// isAllocPkgFunc reports whether fn is a known-allocating stdlib call.
func isAllocPkgFunc(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	set, ok := allocPkgFuncs[pkg.Path()]
	if !ok {
		return false
	}
	return set == nil || set[fn.Name()]
}

// computeHotAlloc walks the call graph from every lint:hotpath root and
// scans each reached function for allocation sites.
func computeHotAlloc(mod *Module) map[*Package][]pending {
	diags := make(map[*Package][]pending)

	// attributedTo maps each reached function to the first annotated
	// root (in deterministic order) that reaches it, for diagnostics.
	attributedTo := make(map[*FuncInfo]*FuncInfo)
	var roots []*FuncInfo
	for _, pkg := range mod.Pkgs {
		for _, fi := range mod.Funcs(pkg) {
			if fi.Hot {
				roots = append(roots, fi)
			}
		}
	}

	coldCache := make(map[*FuncInfo][]posRange)
	coldOf := func(fi *FuncInfo) []posRange {
		if r, ok := coldCache[fi]; ok {
			return r
		}
		r := coldRanges(fi)
		coldCache[fi] = r
		return r
	}

	var visit func(fi, root *FuncInfo)
	visit = func(fi, root *FuncInfo) {
		if fi.Cold {
			return
		}
		if _, seen := attributedTo[fi]; seen {
			return
		}
		attributedTo[fi] = root
		cold := coldOf(fi)
		for _, e := range fi.Edges() {
			// Only straight calls on the live schedule extend the hot
			// region: spawns and closures are flagged at their site,
			// and error-path calls are not steady state.
			if e.Kind != EdgeCall || e.InFuncLit || inRanges(cold, e.Pos) {
				continue
			}
			visit(e.Callee, root)
		}
	}
	for _, r := range roots {
		visit(r, r)
	}

	for fi, root := range attributedTo {
		scanHotFunc(mod, fi, root, coldOf(fi), func(pos token.Pos, what string) {
			diags[fi.Pkg] = append(diags[fi.Pkg], pending{
				pos: pos,
				msg: fmt.Sprintf("%s in hot path (reached from %s); keep the steady state allocation-free or justify with lint:allow hotalloc", what, root.Name()),
			})
		})
	}
	return diags
}

// errorReturning reports whether the function's last result is error.
func errorReturning(fi *FuncInfo) bool {
	sig := fi.Obj.Type().(*types.Signature)
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	named, ok := res.At(res.Len() - 1).Type().(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// coldRanges collects the failure-path regions of an error-returning
// function: every block whose statement list terminates in a return
// whose final result is a non-nil error expression. Allocations there
// (wrapping errors, formatting messages) are not steady state.
func coldRanges(fi *FuncInfo) []posRange {
	errFn := errorReturning(fi)
	var ranges []posRange
	addIfCold := func(list []ast.Stmt, lo, hi token.Pos) {
		// Panic-terminated blocks are cold in any function; blocks
		// ending in `return ..., err` only count in functions whose
		// last result actually is an error.
		if endsInPanic(list) || (errFn && endsInErrorReturn(list)) {
			ranges = append(ranges, posRange{lo, hi})
		}
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.IfStmt:
			addIfCold(n.Body.List, n.Body.Pos(), n.Body.End())
			if blk, ok := n.Else.(*ast.BlockStmt); ok {
				addIfCold(blk.List, blk.Pos(), blk.End())
			}
		case *ast.CaseClause:
			if len(n.Body) > 0 {
				addIfCold(n.Body, n.Body[0].Pos(), n.Body[len(n.Body)-1].End())
			}
		}
		return true
	})
	return ranges
}

// endsInPanic reports whether the statement list terminates in panic.
func endsInPanic(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return endsInPanic(last.List)
	}
	return false
}

// endsInErrorReturn reports whether the statement list terminates in
// `return ..., <non-nil error expr>`.
func endsInErrorReturn(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt:
		if len(last.Results) == 0 {
			return false // bare return of named results: assume steady
		}
		final := last.Results[len(last.Results)-1]
		if id, ok := final.(*ast.Ident); ok && id.Name == "nil" {
			return false
		}
		return true
	case *ast.BlockStmt:
		return endsInErrorReturn(last.List)
	}
	return false
}

// scanHotFunc flags the allocation sites of one reached function,
// skipping failure-path regions and function-literal interiors.
func scanHotFunc(mod *Module, fi, root *FuncInfo, cold []posRange, report func(token.Pos, string)) {
	info := fi.Pkg.Info

	// Self-appends (`buf = append(buf, ...)`, `buf = append(buf[:0], ...)`)
	// are the recycle idiom and amortize to zero; collect them first.
	selfAppend := make(map[*ast.CallExpr]bool)
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
			return true
		}
		dst := types.ExprString(as.Lhs[0])
		src := call.Args[0]
		if sl, ok := src.(*ast.SliceExpr); ok {
			src = sl.X
		}
		if types.ExprString(src) == dst {
			selfAppend[call] = true
		}
		return true
	})

	// Calls through a local variable holding a function literal are not
	// re-flagged: the literal's creation is the allocation, and it was
	// (or will be) reported at its own site.
	closureVars := make(map[types.Object]bool)
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, r := range as.Rhs {
			if _, isLit := r.(*ast.FuncLit); !isLit {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					closureVars[obj] = true
				} else if obj := info.Uses[id]; obj != nil {
					closureVars[obj] = true
				}
			}
		}
		return true
	})

	consumedLits := make(map[*ast.CompositeLit]bool)
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if inRanges(cold, n.Pos()) {
			return true // nodes report individually; cheap to re-test
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "function literal (closure) allocates")
			return false
		case *ast.GoStmt:
			report(n.Pos(), "go statement spawns a goroutine")
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := n.X.(*ast.CompositeLit); ok {
					consumedLits[lit] = true
					report(n.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			if consumedLits[n] {
				return true
			}
			if t := info.Types[n].Type; t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					report(n.Pos(), "slice/map literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.Types[n.X].Type) {
				report(n.OpPos, "string concatenation allocates")
			}
		case *ast.CallExpr:
			scanHotCall(mod, info, n, selfAppend, closureVars, report)
		}
		return true
	})
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// scanHotCall classifies one call in a hot region.
func scanHotCall(mod *Module, info *types.Info, call *ast.CallExpr, selfAppend map[*ast.CallExpr]bool, closureVars map[types.Object]bool, report func(token.Pos, string)) {
	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				report(call.Pos(), "make allocates")
			case "new":
				report(call.Pos(), "new allocates")
			case "append":
				if !selfAppend[call] {
					report(call.Pos(), "append into a fresh destination may grow (reuse a recycled buffer with dst = append(dst[:0], ...))")
				}
			}
			return
		}
	}

	// Conversions: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		target := tv.Type
		argT := info.Types[call.Args[0]].Type
		if argT == nil {
			return
		}
		if types.IsInterface(target.Underlying()) && !types.IsInterface(argT.Underlying()) {
			if b, ok := argT.Underlying().(*types.Basic); !ok || b.Kind() != types.UntypedNil {
				report(call.Pos(), "conversion to interface boxes the value")
			}
			return
		}
		if isStringType(target) && isByteOrRuneSlice(argT) ||
			isByteOrRuneSlice(target) && isStringType(argT) {
			report(call.Pos(), "string<->slice conversion copies and allocates")
		}
		return
	}

	fn := calleeFunc(info, call)
	if fn == nil {
		if id, ok := call.Fun.(*ast.Ident); ok && closureVars[info.Uses[id]] {
			return // local closure: its creation is the reported allocation
		}
		// Dynamic call: interface method or function value. The
		// callee is invisible to the call graph, so allocation-freedom
		// cannot be established statically.
		report(call.Pos(), fmt.Sprintf("dynamic call %s cannot be proven allocation-free", strings.TrimSpace(types.ExprString(call.Fun))))
		return
	}
	if mod.FuncOf(fn) != nil {
		return // module function: traversal visits it separately
	}
	if isAllocPkgFunc(fn) {
		report(call.Pos(), fmt.Sprintf("%s.%s allocates", fn.Pkg().Name(), fn.Name()))
	}
}
