package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetFlow is determinism as dataflow. The per-function determinism
// analyzer bans wall-clock and math/rand calls inside the simulation
// packages outright; detflow instead follows the value: a
// nondeterministic source anywhere in the module — time.Now/Since/Until,
// math/rand (v1 or v2), map iteration order, or a module function whose
// return is itself tainted — must not flow into the artifacts the
// reproduction diffs bit-for-bit: per-request stats, psi series points,
// and trace payloads. The network prototype is allowed to read the wall
// clock (it is exempt from the determinism analyzer), but the moment
// such a value lands in a RequestStats or an obs.Event the replay
// guarantee of PR 3 is gone, and that is exactly the flow this analyzer
// reports. It also runs over _test.go files when loaded with -tests: the
// chaos and differential suites assert bit-for-bit equality, so a taint
// there invalidates the suite itself.
//
// Taint is tracked per function with calls summarized module-wide: a
// function returning a tainted value taints its callers' results, to a
// fixpoint over the shared call graph.
var DetFlow = &Analyzer{
	Name:  "detflow",
	Doc:   "forbid nondeterministic values (wall clock, map order, math/rand) from flowing into stats, series and traces",
	Tests: true,
	Run:   runDetFlow,
}

// detFacts is the module-wide taint summary: for each function whose
// return value is nondeterministic, why.
type detFacts struct {
	ret map[*types.Func]string
}

// detSinkTypes are the deterministic artifacts: constructing one of
// these (composite literal) or writing one of its fields from a tainted
// value is a finding. Names are "pkgbase.Type".
var detSinkTypes = map[string]bool{
	"sim.RequestStats": true,
	"sim.Result":       true,
	"obs.Event":        true,
	"obs.Candidate":    true,
	"metrics.Point":    true,
	"metrics.Ratio":    true,
}

// detSinkRecv are receiver types whose methods ingest deterministic
// artifacts: passing a tainted argument into them is a finding even
// without naming a sink type.
var detSinkRecv = map[string]bool{
	"obs.Tracer":      true,
	"metrics.Sampler": true,
}

func runDetFlow(pass *Pass) {
	mod := pass.Mod
	mod.detOnce.Do(func() { mod.detFacts = computeDetFacts(mod) })
	for _, fi := range mod.Funcs(pass.Pkg) {
		ft := newFuncTaint(mod, fi, mod.detFacts)
		ft.run()
		scanDetSinks(pass, fi, ft)
	}
}

// computeDetFacts summarizes, to a fixpoint over the call graph, every
// module function whose return value carries taint.
func computeDetFacts(mod *Module) *detFacts {
	facts := &detFacts{ret: make(map[*types.Func]string)}
	for changed := true; changed; {
		changed = false
		for _, pkg := range mod.Pkgs {
			for _, fi := range mod.Funcs(pkg) {
				if facts.ret[fi.Obj] != "" {
					continue
				}
				ft := newFuncTaint(mod, fi, facts)
				ft.run()
				if r := ft.returnReason(); r != "" {
					facts.ret[fi.Obj] = r
					changed = true
				}
			}
		}
	}
	return facts
}

// funcTaint tracks which local objects of one function hold
// nondeterministic values, and why.
type funcTaint struct {
	mod     *Module
	fi      *FuncInfo
	info    *types.Info
	facts   *detFacts
	tainted map[types.Object]string
	// sanitized holds objects passed to a sort call somewhere in the
	// function: sorting launders map-iteration-order taint (the values
	// are fine, only their order was nondeterministic), so such objects
	// never take an order-taint. Wall-clock and rand taints are value
	// taints and are not laundered.
	sanitized map[types.Object]bool
}

// sortSanitizers are the stdlib calls whose first argument comes out
// order-deterministic.
var sortSanitizers = map[string]map[string]bool{
	"sort":   {"Ints": true, "Strings": true, "Float64s": true, "Slice": true, "SliceStable": true, "Sort": true, "Stable": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

func newFuncTaint(mod *Module, fi *FuncInfo, facts *detFacts) *funcTaint {
	t := &funcTaint{mod: mod, fi: fi, info: fi.Pkg.Info, facts: facts,
		tainted: make(map[types.Object]string), sanitized: make(map[types.Object]bool)}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn := calleeFunc(t.info, call)
		if fn == nil || fn.Pkg() == nil || !sortSanitizers[fn.Pkg().Path()][fn.Name()] {
			return true
		}
		if id, ok := call.Args[0].(*ast.Ident); ok {
			if obj := t.objOf(id); obj != nil {
				t.sanitized[obj] = true
			}
		}
		return true
	})
	return t
}

// run propagates taint through assignments, declarations and range
// statements to a fixpoint.
func (t *funcTaint) run() {
	for changed := true; changed; {
		changed = false
		ast.Inspect(t.fi.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				reason := ""
				for _, r := range n.Rhs {
					if s := t.exprReason(r); s != "" {
						reason = s
						break
					}
				}
				if reason != "" {
					for _, l := range n.Lhs {
						if t.mark(l, reason) {
							changed = true
						}
					}
				}
			case *ast.ValueSpec:
				reason := ""
				for _, v := range n.Values {
					if s := t.exprReason(v); s != "" {
						reason = s
						break
					}
				}
				if reason != "" {
					for _, id := range n.Names {
						if t.markIdent(id, reason) {
							changed = true
						}
					}
				}
			case *ast.RangeStmt:
				reason := ""
				if tp := t.info.Types[n.X].Type; tp != nil {
					if _, isMap := tp.Underlying().(*types.Map); isMap {
						reason = "map iteration order"
					}
				}
				if reason == "" {
					reason = t.exprReason(n.X)
				}
				if reason != "" {
					if t.mark(n.Key, reason) {
						changed = true
					}
					if t.mark(n.Value, reason) {
						changed = true
					}
				}
			}
			return true
		})
	}
}

// mark taints the object behind an identifier target; non-identifier
// targets (field writes) are sink-checked separately, not tracked.
func (t *funcTaint) mark(e ast.Expr, reason string) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	return t.markIdent(id, reason)
}

func (t *funcTaint) markIdent(id *ast.Ident, reason string) bool {
	if id == nil || id.Name == "_" {
		return false
	}
	obj := t.objOf(id)
	if obj == nil || t.tainted[obj] != "" {
		return false
	}
	if t.sanitized[obj] && strings.HasPrefix(reason, "map iteration order") {
		return false
	}
	t.tainted[obj] = reason
	return true
}

func (t *funcTaint) objOf(id *ast.Ident) types.Object {
	if obj := t.info.Defs[id]; obj != nil {
		return obj
	}
	return t.info.Uses[id]
}

// exprReason reports why the expression's value is nondeterministic, ""
// when no taint is visible. Every sub-expression is scanned, so a
// source buried in a method chain or arithmetic still counts.
func (t *funcTaint) exprReason(e ast.Expr) string {
	if e == nil {
		return ""
	}
	reason := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if obj := t.objOf(n); obj != nil {
				if r := t.tainted[obj]; r != "" {
					reason = r
				}
			}
		case *ast.CallExpr:
			if r := t.callReason(n); r != "" {
				reason = r
			}
		}
		return reason == ""
	})
	return reason
}

// callReason classifies a call as a nondeterminism source: the known
// stdlib sources, or a module function the fixpoint marked tainted.
func (t *funcTaint) callReason(call *ast.CallExpr) string {
	fn := calleeFunc(t.info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return "the wall clock (time." + fn.Name() + ")"
		}
	case "math/rand", "math/rand/v2":
		return "unseeded " + fn.Pkg().Path() + "." + fn.Name()
	}
	if r := t.facts.ret[fn]; r != "" {
		if callee := t.mod.FuncOf(fn); callee != nil {
			return r + ", via " + callee.Name()
		}
		return r
	}
	return ""
}

// returnReason reports taint on any return value of the function,
// outside nested function literals.
func (t *funcTaint) returnReason() string {
	reason := ""
	ast.Inspect(t.fi.Decl.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if r := t.exprReason(res); r != "" {
					reason = r
					break
				}
			}
		}
		return reason == ""
	})
	return reason
}

// detTypeName renders a named (possibly pointed-to) type as
// "pkgbase.Type", "" for everything else.
func detTypeName(tp types.Type) string {
	if tp == nil {
		return ""
	}
	if p, ok := tp.(*types.Pointer); ok {
		tp = p.Elem()
	}
	n, ok := tp.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	path := n.Obj().Pkg().Path()
	if i := strings.LastIndex(path, "/"); i >= 0 {
		path = path[i+1:]
	}
	return path + "." + n.Obj().Name()
}

// scanDetSinks reports every flow of a tainted value into a sink:
// composite literals of sink types, field writes on sink types, and
// arguments to sink-receiver methods.
func scanDetSinks(pass *Pass, fi *FuncInfo, ft *funcTaint) {
	info := fi.Pkg.Info
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			name := detTypeName(info.Types[n].Type)
			if !detSinkTypes[name] {
				return true
			}
			for _, elt := range n.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if r := ft.exprReason(val); r != "" {
					pass.Reportf(val.Pos(), "nondeterministic value (%s) flows into %s; derive it from the seeded clock/rng or keep it out of replayed artifacts", r, name)
				}
			}
		case *ast.AssignStmt:
			for i, l := range n.Lhs {
				sel, ok := l.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				name := detTypeName(info.Types[sel.X].Type)
				if !detSinkTypes[name] {
					continue
				}
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				if r := ft.exprReason(rhs); r != "" {
					pass.Reportf(n.Pos(), "nondeterministic value (%s) written to %s.%s; derive it from the seeded clock/rng", r, name, sel.Sel.Name)
				}
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := info.Selections[sel]
			if !ok || !detSinkRecv[detTypeName(s.Recv())] {
				return true
			}
			for _, arg := range n.Args {
				// Sink-typed composite literal arguments are already
				// checked element-wise above.
				if lit, isLit := arg.(*ast.CompositeLit); isLit && detSinkTypes[detTypeName(info.Types[lit].Type)] {
					continue
				}
				if r := ft.exprReason(arg); r != "" {
					pass.Reportf(arg.Pos(), "nondeterministic value (%s) passed into %s.%s; replayed telemetry must be seed-derived", r, detTypeName(s.Recv()), sel.Sel.Name)
				}
			}
		}
		return true
	})
}
