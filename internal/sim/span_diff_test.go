package sim

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/obs"
)

// TestSpanShardInvariance is the causal-tracing acceptance bar: with
// every request sampled, the telemetry stream — span IDs, timestamps,
// interleaving and all — is byte-identical across shard counts.
func TestSpanShardInvariance(t *testing.T) {
	var ref []byte
	var refRes *Result
	for _, shards := range []int{1, 4} {
		var tel bytes.Buffer
		cfg := shardDiffConfig(QSA, shards)
		cfg.SpanSample = 1
		cfg.EnableRecovery = true
		cfg.TelemetryOut = &tel
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = append([]byte(nil), tel.Bytes()...)
			refRes = res
			continue
		}
		if res.Requests != refRes.Requests {
			t.Fatalf("shards=%d RequestStats diverged:\nref: %+v\ngot: %+v", shards, refRes.Requests, res.Requests)
		}
		if !bytes.Equal(tel.Bytes(), ref) {
			t.Fatalf("shards=%d span telemetry diverged (%d vs %d bytes)", shards, len(ref), tel.Len())
		}
	}
	evs, err := obs.ReadEvents(bytes.NewReader(ref))
	if err != nil {
		t.Fatal(err)
	}
	spans := 0
	for _, ev := range evs {
		if ev.Kind == obs.KindSpan {
			spans++
		}
	}
	if spans == 0 {
		t.Fatal("sampled run emitted no spans")
	}
}

// TestSpanSamplingInvisibleToResults: turning spans on must not change
// any figure — and the non-span events of the sampled stream must be
// exactly the unsampled stream (spans interleave; they never reorder or
// reword the decision trace).
func TestSpanSamplingInvisibleToResults(t *testing.T) {
	run := func(sample float64, tel *bytes.Buffer) *Result {
		cfg := diffConfig(QSA, false)
		cfg.EnableRecovery = true
		cfg.SpanSample = sample
		cfg.TelemetryOut = tel
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	var telOff, telOn bytes.Buffer
	off := run(0, &telOff)
	on := run(1, &telOn)

	if on.Requests != off.Requests {
		t.Fatalf("spans changed RequestStats:\noff: %+v\non:  %+v", off.Requests, on.Requests)
	}
	if on.Psi != off.Psi || on.Sessions != off.Sessions || on.Lookup != off.Lookup {
		t.Fatal("spans changed ψ, session counters, or routing stats")
	}
	if !reflect.DeepEqual(on.Series, off.Series) {
		t.Fatal("spans changed the ψ time series")
	}

	offEvs, err := obs.ReadEvents(&telOff)
	if err != nil {
		t.Fatal(err)
	}
	onEvs, err := obs.ReadEvents(&telOn)
	if err != nil {
		t.Fatal(err)
	}
	kept := onEvs[:0]
	for _, ev := range onEvs {
		if ev.Kind != obs.KindSpan {
			kept = append(kept, ev)
		}
	}
	if len(kept) == len(onEvs) {
		t.Fatal("sampled stream carried no spans")
	}
	if len(kept) != len(offEvs) {
		t.Fatalf("decision-event counts diverged: %d sampled vs %d unsampled", len(kept), len(offEvs))
	}
	for i := range kept {
		kept[i].Seq = offEvs[i].Seq // spans consume sequence numbers; all else must match
		if !reflect.DeepEqual(kept[i], offEvs[i]) {
			t.Fatalf("decision event %d diverged:\nsampled:   %+v\nunsampled: %+v", i, kept[i], offEvs[i])
		}
	}
}

// TestSpanTreeReconciles checks the structural contract qsastat's
// critical-path explainer stands on: with full sampling, every request
// has exactly one root span, every other span is parented inside its
// request's trace, and the root outcomes reconcile exactly with
// RequestStats.
func TestSpanTreeReconciles(t *testing.T) {
	var tel bytes.Buffer
	cfg := diffConfig(QSA, false)
	cfg.EnableRecovery = true
	cfg.SpanSample = 1
	cfg.TelemetryOut = &tel
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ReadEvents(&tel)
	if err != nil {
		t.Fatal(err)
	}

	roots := map[uint64]obs.Event{}         // request → root span
	members := map[uint64]map[uint64]bool{} // trace → span IDs
	var all []obs.Event
	for _, ev := range evs {
		if ev.Kind != obs.KindSpan {
			continue
		}
		if ev.Trace == 0 || ev.Span == 0 {
			t.Fatalf("span without identity: %+v", ev)
		}
		if members[ev.Trace] == nil {
			members[ev.Trace] = map[uint64]bool{}
		}
		if members[ev.Trace][ev.Span] {
			t.Fatalf("duplicate span ID %x in trace %x", ev.Span, ev.Trace)
		}
		members[ev.Trace][ev.Span] = true
		if ev.Parent == 0 {
			if _, dup := roots[ev.Req]; dup {
				t.Fatalf("request %d has two root spans", ev.Req)
			}
			roots[ev.Req] = ev
		}
		all = append(all, ev)
	}
	for _, ev := range all {
		if ev.Parent != 0 && !members[ev.Trace][ev.Parent] {
			t.Fatalf("span %x parented under %x, which is not in trace %x", ev.Span, ev.Parent, ev.Trace)
		}
	}

	if uint64(len(roots)) != res.Requests.Issued {
		t.Fatalf("%d root spans for %d issued requests", len(roots), res.Requests.Issued)
	}
	var okRoots uint64
	byStage := map[string]uint64{}
	for _, r := range roots {
		if r.OK {
			okRoots++
		} else {
			byStage[r.Stage]++
		}
	}
	if okRoots != res.Requests.Succeeded {
		t.Fatalf("%d OK roots vs %d succeeded requests", okRoots, res.Requests.Succeeded)
	}
	want := map[string]uint64{
		obs.StageDiscovery: res.Requests.DiscoveryFailed,
		obs.StageCompose:   res.Requests.ComposeFailed,
		obs.StageSelection: res.Requests.SelectionFailed,
		obs.StageAdmission: res.Requests.AdmissionFailed,
		obs.StageDeparture: res.Requests.DepartureFailed,
	}
	for stage, n := range want {
		if byStage[stage] != n {
			t.Errorf("%s: %d failed roots vs %d in RequestStats", stage, byStage[stage], n)
		}
	}
	if res.Sessions.Recoveries > 0 {
		sawRecovery := false
		for _, ev := range all {
			if ev.Stage == obs.StageRecovery {
				sawRecovery = true
				break
			}
		}
		if !sawRecovery {
			t.Error("sessions recovered but no recovery span was emitted")
		}
	}
}

// TestSpanSamplingIsDeterministicSubset: a fractional sample traces a
// strict, seed-determined subset of requests — rerunning yields the
// same subset, and every traced request still gets a complete tree
// (exactly one root).
func TestSpanSamplingIsDeterministicSubset(t *testing.T) {
	sampled := func() (map[uint64]bool, uint64) {
		var tel bytes.Buffer
		cfg := diffConfig(QSA, false)
		cfg.SpanSample = 0.5
		cfg.TelemetryOut = &tel
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		evs, err := obs.ReadEvents(&tel)
		if err != nil {
			t.Fatal(err)
		}
		reqs := map[uint64]bool{}
		for _, ev := range evs {
			if ev.Kind == obs.KindSpan && ev.Parent == 0 {
				if reqs[ev.Req] {
					t.Fatalf("request %d has two roots", ev.Req)
				}
				reqs[ev.Req] = true
			}
		}
		return reqs, res.Requests.Issued
	}
	a, issued := sampled()
	b, _ := sampled()
	if len(a) == 0 || uint64(len(a)) == issued {
		t.Fatalf("half sampling traced %d of %d requests", len(a), issued)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sampled request sets diverged between same-seed runs")
	}
}
