package sim

import (
	"bytes"
	"reflect"
	"testing"
)

// diffConfig is the differential suite's workload: small enough to run in
// -short mode, with nonzero churn so the epoch cache is invalidated
// mid-run and the TTL horizon actually bites.
func diffConfig(alg Algorithm, disable bool) Config {
	cfg := DefaultConfig(7, alg, 350)
	cfg.RequestRate = 30
	cfg.ChurnRate = 10
	cfg.Duration = 8
	cfg.DisableCaches = disable
	return cfg
}

// TestCachesAreInvisible is the performance plane's determinism contract:
// for every algorithm, a run with the epoch-keyed lookup cache and the
// compatibility memo enabled must be byte-identical — request outcomes,
// ψ, the ψ time series, and the full telemetry event stream — to the same
// seed run with both disabled. Only routing statistics (hop counts, cache
// hit counters) may differ.
func TestCachesAreInvisible(t *testing.T) {
	for _, alg := range Algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			var cachedTel, plainTel bytes.Buffer

			cfgCached := diffConfig(alg, false)
			cfgCached.TelemetryOut = &cachedTel
			cached, err := Run(cfgCached)
			if err != nil {
				t.Fatal(err)
			}

			cfgPlain := diffConfig(alg, true)
			cfgPlain.TelemetryOut = &plainTel
			plain, err := Run(cfgPlain)
			if err != nil {
				t.Fatal(err)
			}

			if cached.Requests != plain.Requests {
				t.Fatalf("RequestStats diverged:\ncached: %+v\nplain:  %+v", cached.Requests, plain.Requests)
			}
			if cached.Psi != plain.Psi {
				t.Fatalf("ψ diverged: %+v vs %+v", cached.Psi, plain.Psi)
			}
			if !reflect.DeepEqual(cached.Series, plain.Series) {
				t.Fatalf("ψ series diverged:\ncached: %+v\nplain:  %+v", cached.Series, plain.Series)
			}
			if cached.Sessions != plain.Sessions {
				t.Fatalf("session counters diverged: %+v vs %+v", cached.Sessions, plain.Sessions)
			}
			if cached.AliveAtEnd != plain.AliveAtEnd {
				t.Fatalf("population diverged: %d vs %d", cached.AliveAtEnd, plain.AliveAtEnd)
			}
			if !bytes.Equal(cachedTel.Bytes(), plainTel.Bytes()) {
				t.Fatalf("telemetry streams diverged (%d vs %d bytes)", cachedTel.Len(), plainTel.Len())
			}
			// The caches must actually have been exercised for the
			// comparison to mean anything.
			if cached.Lookup.CacheHits == 0 {
				t.Fatal("cached run recorded zero discovery-cache hits")
			}
			if plain.Lookup.CacheHits != 0 || plain.Lookup.CacheMisses != 0 {
				t.Fatalf("disabled-cache run counted cache traffic: %+v", plain.Lookup)
			}
			// Churn must have bumped the epoch past the initial joins, or
			// the invalidation path went untested.
			if cached.Lookup.Epoch == plain.Lookup.Epoch {
				// Same workload, same mutations — epochs agree; just make
				// sure there were plenty.
				if cached.Lookup.Epoch < uint64(cfgCached.Peers) {
					t.Fatalf("suspiciously few epoch bumps: %d", cached.Lookup.Epoch)
				}
			}
		})
	}
}

// TestSameSeedSameResult pins plain determinism under the performance
// plane: two identical cached runs replay byte-identically.
func TestSameSeedSameResult(t *testing.T) {
	var telA, telB bytes.Buffer
	cfgA := diffConfig(QSA, false)
	cfgA.TelemetryOut = &telA
	a, err := Run(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	cfgB := diffConfig(QSA, false)
	cfgB.TelemetryOut = &telB
	b, err := Run(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if a.Requests != b.Requests || a.Psi != b.Psi || a.Lookup != b.Lookup {
		t.Fatalf("same-seed runs diverged: %+v vs %+v", a.Requests, b.Requests)
	}
	if !bytes.Equal(telA.Bytes(), telB.Bytes()) {
		t.Fatal("same-seed telemetry streams diverged")
	}
}

// BenchmarkSimMinute measures one simulated minute of the paper's
// workload at small scale — the end-to-end number the performance plane
// optimizes.
func BenchmarkSimMinute(b *testing.B) {
	cfg := DefaultConfig(3, QSA, 400)
	cfg.RequestRate = 60
	cfg.ChurnRate = 4
	cfg.RegistryRefresh = 5 // explicit: the ticker below needs a period
	cfg.Duration = 1e9      // the loop below decides when to stop
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	engine := s.Engine()
	refresh := engine.Every(cfg.RegistryRefresh, cfg.RegistryRefresh, func() {
		s.refreshRegistrations(engine.Now())
	})
	defer refresh.Cancel()
	now := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.scheduleRequests(now)
		s.scheduleChurn(now)
		now++
		engine.RunUntil(now)
	}
}
