package sim

import (
	"bytes"
	"reflect"
	"testing"
)

// diffConfig is the differential suite's workload: small enough to run in
// -short mode, with nonzero churn so the epoch cache is invalidated
// mid-run and the TTL horizon actually bites.
func diffConfig(alg Algorithm, disable bool) Config {
	cfg := DefaultConfig(7, alg, 350)
	cfg.RequestRate = 30
	cfg.ChurnRate = 10
	cfg.Duration = 8
	cfg.DisableCaches = disable
	return cfg
}

// TestCachesAreInvisible is the performance plane's determinism contract:
// for every algorithm, a run with the epoch-keyed lookup cache and the
// compatibility memo enabled must be byte-identical — request outcomes,
// ψ, the ψ time series, and the full telemetry event stream — to the same
// seed run with both disabled. Only routing statistics (hop counts, cache
// hit counters) may differ.
func TestCachesAreInvisible(t *testing.T) {
	for _, alg := range Algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			var cachedTel, plainTel bytes.Buffer

			cfgCached := diffConfig(alg, false)
			cfgCached.TelemetryOut = &cachedTel
			cached, err := Run(cfgCached)
			if err != nil {
				t.Fatal(err)
			}

			cfgPlain := diffConfig(alg, true)
			cfgPlain.TelemetryOut = &plainTel
			plain, err := Run(cfgPlain)
			if err != nil {
				t.Fatal(err)
			}

			if cached.Requests != plain.Requests {
				t.Fatalf("RequestStats diverged:\ncached: %+v\nplain:  %+v", cached.Requests, plain.Requests)
			}
			if cached.Psi != plain.Psi {
				t.Fatalf("ψ diverged: %+v vs %+v", cached.Psi, plain.Psi)
			}
			if !reflect.DeepEqual(cached.Series, plain.Series) {
				t.Fatalf("ψ series diverged:\ncached: %+v\nplain:  %+v", cached.Series, plain.Series)
			}
			if cached.Sessions != plain.Sessions {
				t.Fatalf("session counters diverged: %+v vs %+v", cached.Sessions, plain.Sessions)
			}
			if cached.AliveAtEnd != plain.AliveAtEnd {
				t.Fatalf("population diverged: %d vs %d", cached.AliveAtEnd, plain.AliveAtEnd)
			}
			if !bytes.Equal(cachedTel.Bytes(), plainTel.Bytes()) {
				t.Fatalf("telemetry streams diverged (%d vs %d bytes)", cachedTel.Len(), plainTel.Len())
			}
			// The caches must actually have been exercised for the
			// comparison to mean anything.
			if cached.Lookup.CacheHits == 0 {
				t.Fatal("cached run recorded zero discovery-cache hits")
			}
			if plain.Lookup.CacheHits != 0 || plain.Lookup.CacheMisses != 0 {
				t.Fatalf("disabled-cache run counted cache traffic: %+v", plain.Lookup)
			}
			// Churn must have bumped the epoch past the initial joins, or
			// the invalidation path went untested.
			if cached.Lookup.Epoch == plain.Lookup.Epoch {
				// Same workload, same mutations — epochs agree; just make
				// sure there were plenty.
				if cached.Lookup.Epoch < uint64(cfgCached.Peers) {
					t.Fatalf("suspiciously few epoch bumps: %d", cached.Lookup.Epoch)
				}
			}
		})
	}
}

// TestSameSeedSameResult pins plain determinism under the performance
// plane: two identical cached runs replay byte-identically.
func TestSameSeedSameResult(t *testing.T) {
	var telA, telB bytes.Buffer
	cfgA := diffConfig(QSA, false)
	cfgA.TelemetryOut = &telA
	a, err := Run(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	cfgB := diffConfig(QSA, false)
	cfgB.TelemetryOut = &telB
	b, err := Run(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if a.Requests != b.Requests || a.Psi != b.Psi || a.Lookup != b.Lookup {
		t.Fatalf("same-seed runs diverged: %+v vs %+v", a.Requests, b.Requests)
	}
	if !bytes.Equal(telA.Bytes(), telB.Bytes()) {
		t.Fatal("same-seed telemetry streams diverged")
	}
}

// BenchmarkSimMinute measures one simulated minute of the paper's
// workload at small scale — the end-to-end number the performance plane
// optimizes.
func BenchmarkSimMinute(b *testing.B) {
	cfg := DefaultConfig(3, QSA, 400)
	cfg.RequestRate = 60
	cfg.ChurnRate = 4
	cfg.RegistryRefresh = 5 // explicit: the ticker below needs a period
	cfg.Duration = 1e9      // the loop below decides when to stop
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	engine := s.Engine()
	refresh := engine.Every(cfg.RegistryRefresh, cfg.RegistryRefresh, func() {
		s.refreshRegistrations(engine.Now())
	})
	defer refresh.Cancel()
	now := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.scheduleRequests(now)
		s.scheduleChurn(now)
		now++
		engine.RunUntil(now)
	}
}

// shardDiffConfig is the sharded differential workload: small enough for
// the -race suite, with churn high enough that topology versions and
// registry epochs move mid-epoch, exercising the stale-preparation redo
// path, and workers forced to the shard count so the prepare barrier is
// real even on one CPU.
func shardDiffConfig(alg Algorithm, shards int) Config {
	cfg := DefaultConfig(7, alg, 300)
	cfg.RequestRate = 30
	cfg.ChurnRate = 8
	cfg.Duration = 3
	cfg.Shards = shards
	cfg.ShardWorkers = shards
	return cfg
}

// TestShardCountInvariance is the sharded engine's determinism contract
// — the tentpole's acceptance bar: for each of the paper's three
// algorithms, runs at 1, 2, 4, and 8 shards replay byte-identically —
// request outcomes, ψ and its time series, session counters, routing
// statistics, and the full telemetry stream.
func TestShardCountInvariance(t *testing.T) {
	for _, alg := range Algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			var ref *Result
			var refTel []byte
			for _, shards := range []int{1, 2, 4, 8} {
				var tel bytes.Buffer
				cfg := shardDiffConfig(alg, shards)
				cfg.TelemetryOut = &tel
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if res.Requests.Issued == 0 {
					t.Fatal("no requests issued")
				}
				if ref == nil {
					ref, refTel = res, tel.Bytes()
					continue
				}
				if res.Requests != ref.Requests {
					t.Fatalf("shards=%d RequestStats diverged:\nref: %+v\ngot: %+v", shards, ref.Requests, res.Requests)
				}
				if res.Psi != ref.Psi {
					t.Fatalf("shards=%d ψ diverged: %+v vs %+v", shards, ref.Psi, res.Psi)
				}
				if !reflect.DeepEqual(res.Series, ref.Series) {
					t.Fatalf("shards=%d ψ series diverged", shards)
				}
				if res.Sessions != ref.Sessions {
					t.Fatalf("shards=%d session counters diverged: %+v vs %+v", shards, ref.Sessions, res.Sessions)
				}
				if res.Lookup != ref.Lookup {
					t.Fatalf("shards=%d routing stats diverged: %+v vs %+v", shards, ref.Lookup, res.Lookup)
				}
				if res.AliveAtEnd != ref.AliveAtEnd {
					t.Fatalf("shards=%d population diverged", shards)
				}
				if !bytes.Equal(tel.Bytes(), refTel) {
					t.Fatalf("shards=%d telemetry diverged (%d vs %d bytes)", shards, len(refTel), tel.Len())
				}
			}
		})
	}
}

// TestShardWorkerInvariance: the worker pool size is pure mechanism —
// the inline serial shadow (1 worker) and the full pool must replay
// byte-identically at a fixed shard count.
func TestShardWorkerInvariance(t *testing.T) {
	var ref []byte
	var refRes *Result
	for _, workers := range []int{1, 2, 4} {
		var tel bytes.Buffer
		cfg := shardDiffConfig(QSA, 4)
		cfg.ShardWorkers = workers
		cfg.TelemetryOut = &tel
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref, refRes = tel.Bytes(), res
			continue
		}
		if res.Requests != refRes.Requests || res.Psi != refRes.Psi || res.Lookup != refRes.Lookup {
			t.Fatalf("workers=%d results diverged", workers)
		}
		if !bytes.Equal(tel.Bytes(), ref) {
			t.Fatalf("workers=%d telemetry diverged", workers)
		}
	}
}

// TestShardLookaheadInvariance: the barrier window only batches work; it
// must never change request outcomes, ψ, or the telemetry stream. DHT
// routing statistics are the one deliberate exception — the window
// decides when speculative lookups are charged and how many preparations
// go stale and redo theirs — so they are excluded here (they are pinned
// across shard counts by TestShardCountInvariance, where the window is
// held fixed).
func TestShardLookaheadInvariance(t *testing.T) {
	var ref *Result
	var refTel []byte
	for _, la := range []float64{0.05, 0.25, 2} {
		var tel bytes.Buffer
		cfg := shardDiffConfig(QSA, 4)
		cfg.ShardLookahead = la
		cfg.TelemetryOut = &tel
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref, refTel = res, tel.Bytes()
			continue
		}
		if res.Requests != ref.Requests || res.Psi != ref.Psi || res.Sessions != ref.Sessions {
			t.Fatalf("lookahead=%g results diverged:\nref %+v\ngot %+v", la, ref.Requests, res.Requests)
		}
		if !reflect.DeepEqual(res.Series, ref.Series) {
			t.Fatalf("lookahead=%g ψ series diverged", la)
		}
		if !bytes.Equal(tel.Bytes(), refTel) {
			t.Fatalf("lookahead=%g telemetry diverged", la)
		}
	}
}

// TestMillionPeerSharded exercises the 10⁶-peer scale target: the flat
// slab topology, bulk DHT join, and the sharded engine must complete a
// short workload without blowing memory or time budgets. Skipped in
// -short mode; the full (race-free) suite runs it.
func TestMillionPeerSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("million-peer run is for the full suite")
	}
	cfg := DefaultConfig(5, QSA, 1_000_000)
	cfg.RequestRate = 20
	cfg.ChurnRate = 4
	cfg.Duration = 1
	cfg.Shards = 4
	cfg.ShardWorkers = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests.Issued == 0 {
		t.Fatal("no requests issued at 10⁶ peers")
	}
	if res.AliveAtEnd < 999_000 {
		t.Fatalf("population collapsed: %d alive", res.AliveAtEnd)
	}
}
