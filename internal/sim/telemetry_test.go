package sim

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

// telemetered builds a config with tracing and metrics enabled on a
// churning network so every failure stage can occur.
func telemetered(seed uint64, out *bytes.Buffer, reg *obs.Registry) Config {
	cfg := small(seed, QSA)
	cfg.ChurnRate = 12
	cfg.EnableRecovery = true
	cfg.TelemetryOut = out
	cfg.Metrics = reg
	return cfg
}

// TestTelemetryByteDeterminism is the ISSUE acceptance check: two runs
// with the same seed must produce byte-identical decision-trace streams.
func TestTelemetryByteDeterminism(t *testing.T) {
	skipIfShort(t)
	var a, b bytes.Buffer
	ra, err := Run(telemetered(21, &a, obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(telemetered(21, &b, obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	if ra.TelemetryErr != nil || rb.TelemetryErr != nil {
		t.Fatalf("telemetry errors: %v, %v", ra.TelemetryErr, rb.TelemetryErr)
	}
	if ra.TelemetryEvents == 0 {
		t.Fatal("no telemetry events emitted")
	}
	if ra.TelemetryEvents != rb.TelemetryEvents {
		t.Fatalf("event counts differ: %d vs %d", ra.TelemetryEvents, rb.TelemetryEvents)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same-seed telemetry streams are not byte-identical")
	}
}

// TestTelemetryAttribution checks that the trace accounts for every
// issued request, and that per-stage failure counts reconcile exactly
// with the simulator's own RequestStats (the ψ bookkeeping).
func TestTelemetryAttribution(t *testing.T) {
	skipIfShort(t)
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	res, err := Run(telemetered(22, &buf, reg))
	if err != nil {
		t.Fatal(err)
	}
	if res.TelemetryErr != nil {
		t.Fatal(res.TelemetryErr)
	}
	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(events)) != res.TelemetryEvents {
		t.Fatalf("read %d events, result says %d", len(events), res.TelemetryEvents)
	}
	rep, err := obs.Analyze(events)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Requests
	if uint64(rep.Total) != r.Issued {
		t.Fatalf("trace has %d requests, simulator issued %d", rep.Total, r.Issued)
	}
	want := map[string]uint64{
		obs.StageDiscovery:  r.DiscoveryFailed,
		obs.StageCompose:    r.ComposeFailed,
		obs.StageSelection:  r.SelectionFailed,
		obs.StageAdmission:  r.AdmissionFailed,
		obs.StageDeparture:  r.DepartureFailed,
		obs.OutcomeSuccess:  r.Succeeded,
		obs.OutcomeAdmitted: 0, // Run drains all sessions before returning
		obs.OutcomePending:  0,
	}
	for stage, n := range want {
		if got := uint64(rep.Count(stage)); got != n {
			t.Errorf("stage %q: trace says %d, stats say %d", stage, got, n)
		}
	}
	if r.DepartureFailed == 0 {
		t.Error("churn run produced no departure failures; attribution untested")
	}
	// The registry must have seen the same admission decisions the trace did.
	snap := reg.Snapshot()
	counters := make(map[string]uint64, len(snap.Counters))
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	if counters["session.admitted"] != res.Sessions.Admitted {
		t.Errorf("metric session.admitted = %d, want %d", counters["session.admitted"], res.Sessions.Admitted)
	}
	if counters["compose.runs"] == 0 {
		t.Error("compose.runs counter never incremented")
	}
	if counters["select.steps"] == 0 {
		t.Error("select.steps counter never incremented")
	}
}

// TestTelemetryDisabledIdentical checks the paper-facing invariant that
// enabling telemetry does not perturb the simulation: the ψ results with
// and without tracing must match exactly.
func TestTelemetryDisabledIdentical(t *testing.T) {
	skipIfShort(t)
	var buf bytes.Buffer
	with, err := Run(telemetered(23, &buf, obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	plain := telemetered(23, nil, nil)
	plain.TelemetryOut = nil
	plain.Metrics = nil
	without, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	if with.Requests != without.Requests {
		t.Fatalf("telemetry changed outcomes: %+v vs %+v", with.Requests, without.Requests)
	}
}
