package sim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/xrand"
)

// skipIfShort skips the multi-second simulation replays under -short so
// `go test -race -short ./...` stays fast; the sub-second tests below keep
// a full Run() in short-mode coverage.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("simulation replay; run without -short")
	}
}

// small returns a fast configuration that still exercises every subsystem.
func small(seed uint64, alg Algorithm) Config {
	cfg := DefaultConfig(seed, alg, 600)
	cfg.RequestRate = 40
	cfg.Duration = 15
	return cfg
}

func TestAlgorithmStringParse(t *testing.T) {
	for _, a := range Algorithms {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Errorf("round trip of %v failed: %v, %v", a, got, err)
		}
	}
	if _, err := ParseAlgorithm("oracle"); err == nil {
		t.Error("unknown algorithm must fail to parse")
	}
	if Algorithm(9).String() != "Algorithm(9)" {
		t.Error("fallback String broken")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Seed: 1, Peers: 0, Duration: 10, RequestRate: 1},
		{Seed: 1, Peers: 10, Duration: 0, RequestRate: 1},
		{Seed: 1, Peers: 10, Duration: 10, RequestRate: -1},
		{Seed: 1, Peers: 10, Duration: 10, ChurnRate: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	skipIfShort(t)
	a, err := Run(small(11, QSA))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(small(11, QSA))
	if err != nil {
		t.Fatal(err)
	}
	if a.Psi != b.Psi {
		t.Fatalf("ψ differs across identically seeded runs: %v vs %v", a.Psi, b.Psi)
	}
	if a.Requests != b.Requests {
		t.Fatalf("request stats differ: %+v vs %+v", a.Requests, b.Requests)
	}
	if a.Sessions != b.Sessions {
		t.Fatalf("session counters differ: %+v vs %+v", a.Sessions, b.Sessions)
	}
	if len(a.Series) != len(b.Series) {
		t.Fatalf("series lengths differ")
	}
	for i := range a.Series {
		if a.Series[i] != b.Series[i] {
			t.Fatalf("series point %d differs", i)
		}
	}
	c, err := Run(small(12, QSA))
	if err != nil {
		t.Fatal(err)
	}
	if c.Requests == a.Requests {
		t.Fatal("different seeds produced identical request stats")
	}
}

func TestStatsConsistency(t *testing.T) {
	skipIfShort(t)
	for _, alg := range Algorithms {
		res, err := Run(small(13, alg))
		if err != nil {
			t.Fatal(err)
		}
		r := res.Requests
		sum := r.DiscoveryFailed + r.ComposeFailed + r.SelectionFailed +
			r.AdmissionFailed + r.DepartureFailed + r.Succeeded
		if sum != r.Issued {
			t.Fatalf("%v: outcomes %d != issued %d (%+v)", alg, sum, r.Issued, r)
		}
		if res.Psi.Total() != r.Issued {
			t.Fatalf("%v: ψ total %d != issued %d", alg, res.Psi.Total(), r.Issued)
		}
		if res.Psi.Success != r.Succeeded {
			t.Fatalf("%v: ψ successes %d != succeeded %d", alg, res.Psi.Success, r.Succeeded)
		}
		if res.Sessions.Admitted != res.Sessions.Completed+res.Sessions.Failed {
			t.Fatalf("%v: sessions not drained: %+v", alg, res.Sessions)
		}
		if r.Issued == 0 {
			t.Fatalf("%v: no requests issued", alg)
		}
	}
}

func TestNoChurnMeansNoDepartureFailures(t *testing.T) {
	skipIfShort(t)
	res, err := Run(small(14, QSA))
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests.DepartureFailed != 0 || res.Sessions.Failed != 0 {
		t.Fatalf("static grid produced departure failures: %+v", res.Requests)
	}
	if res.AliveAtEnd != 600 {
		t.Fatalf("alive = %d, want 600", res.AliveAtEnd)
	}
}

func TestOrderingQSARandomFixed(t *testing.T) {
	skipIfShort(t)
	// The headline qualitative result (Fig. 5): ψ(QSA) ≥ ψ(random) ≫
	// ψ(fixed) under load. Scaled down but with the rate high enough to
	// load the grid.
	psi := map[Algorithm]float64{}
	for _, alg := range Algorithms {
		cfg := small(15, alg)
		cfg.RequestRate = 60
		cfg.Duration = 20
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		psi[alg] = res.Psi.Value()
	}
	if !(psi[QSA] > psi[Random]) {
		t.Fatalf("ψ(QSA)=%v not above ψ(random)=%v", psi[QSA], psi[Random])
	}
	if !(psi[Random] > psi[Fixed]) {
		t.Fatalf("ψ(random)=%v not above ψ(fixed)=%v", psi[Random], psi[Fixed])
	}
	if psi[QSA]-psi[Fixed] < 0.3 {
		t.Fatalf("QSA−fixed gap only %v; expected a large client-server penalty", psi[QSA]-psi[Fixed])
	}
}

func TestChurnDegradesSuccess(t *testing.T) {
	skipIfShort(t)
	static := small(16, QSA)
	churny := small(16, QSA)
	churny.ChurnRate = 30 // 5%/min of 600 peers — heavy
	a, err := Run(static)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(churny)
	if err != nil {
		t.Fatal(err)
	}
	if !(b.Psi.Value() < a.Psi.Value()) {
		t.Fatalf("churn did not hurt: %v vs %v", b.Psi.Value(), a.Psi.Value())
	}
	if b.Requests.DepartureFailed == 0 {
		t.Fatal("heavy churn produced no departure failures")
	}
}

func TestChurnKeepsPopulationStationary(t *testing.T) {
	skipIfShort(t)
	cfg := small(17, QSA)
	cfg.ChurnRate = 40
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AliveAtEnd < 500 || res.AliveAtEnd > 700 {
		t.Fatalf("alive at end = %d, want ≈600 (half-departures half-arrivals)", res.AliveAtEnd)
	}
}

func TestRecoveryReducesFailures(t *testing.T) {
	skipIfShort(t)
	base := small(18, QSA)
	base.ChurnRate = 30
	rec := base
	rec.EnableRecovery = true
	a, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(rec)
	if err != nil {
		t.Fatal(err)
	}
	if b.Sessions.Recoveries == 0 {
		t.Fatal("recovery enabled but never exercised")
	}
	if !(b.Psi.Value() > a.Psi.Value()) {
		t.Fatalf("recovery did not improve ψ: %v vs %v", b.Psi.Value(), a.Psi.Value())
	}
}

func TestSeriesCoversWorkloadWindow(t *testing.T) {
	cfg := small(19, QSA)
	cfg.SampleWindow = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) == 0 {
		t.Fatal("no samples")
	}
	last := res.Series[len(res.Series)-1]
	if last.Time > cfg.Duration+cfg.SampleWindow {
		t.Fatalf("sample at %v beyond workload window %v", last.Time, cfg.Duration)
	}
	var n uint64
	for i, p := range res.Series {
		if math.IsNaN(p.Value) || p.Value < 0 || p.Value > 1 {
			t.Fatalf("bad sample %+v", p)
		}
		if i > 0 && p.Time <= res.Series[i-1].Time {
			t.Fatal("series not strictly increasing in time")
		}
		n += p.N
	}
	if n != res.Requests.Issued {
		t.Fatalf("series accounts for %d requests, issued %d", n, res.Requests.Issued)
	}
}

func TestProbingOnlyForQSA(t *testing.T) {
	skipIfShort(t)
	q, err := Run(small(20, QSA))
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(small(20, Random))
	if err != nil {
		t.Fatal(err)
	}
	if q.Probes.Probes == 0 {
		t.Fatal("QSA issued no probes")
	}
	if r.Probes.Probes != 0 {
		t.Fatal("random baseline must not probe")
	}
	if q.Selection.Informed == 0 {
		t.Fatal("QSA made no informed selections")
	}
}

func TestChordLookupsHappen(t *testing.T) {
	skipIfShort(t)
	res, err := Run(small(21, QSA))
	if err != nil {
		t.Fatal(err)
	}
	if res.Lookup.Lookups == 0 {
		t.Fatal("no DHT lookups recorded")
	}
	if res.Lookup.MeanHops() <= 0 {
		t.Fatal("zero mean hops on a 600-node ring")
	}
}

func TestCANSubstrate(t *testing.T) {
	skipIfShort(t)
	// The whole closed loop also runs over the CAN lookup service, with a
	// comparable success ratio (discovery is substrate-independent).
	chordCfg := small(23, QSA)
	canCfg := small(23, QSA)
	canCfg.Lookup = "can"
	a, err := Run(chordCfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(canCfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.Requests.Issued == 0 || b.Lookup.Lookups == 0 {
		t.Fatal("CAN run issued no requests or lookups")
	}
	if diff := a.Psi.Value() - b.Psi.Value(); diff > 0.05 || diff < -0.05 {
		t.Fatalf("ψ diverges across substrates: chord %v vs can %v", a.Psi.Value(), b.Psi.Value())
	}
	if b.Lookup.MeanHops() <= 0 {
		t.Fatal("CAN lookups recorded no hops")
	}
}

func TestUnknownLookupSubstrate(t *testing.T) {
	cfg := small(24, QSA)
	cfg.Lookup = "pastry"
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown substrate must be rejected")
	}
}

func TestTraceRecordAndReplay(t *testing.T) {
	skipIfShort(t)
	// Record a run's workload, then replay it: the replayed run must issue
	// exactly the recorded requests and (static grid, same seed) reach the
	// same outcome.
	var recorded []trace.Entry
	cfg := small(25, QSA)
	cfg.TraceSink = func(e trace.Entry) { recorded = append(recorded, e) }
	orig, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(recorded)) != orig.Requests.Issued {
		t.Fatalf("recorded %d, issued %d", len(recorded), orig.Requests.Issued)
	}
	replayCfg := small(25, QSA)
	replayCfg.Replay = recorded
	rep, err := Run(replayCfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests.Issued != orig.Requests.Issued {
		t.Fatalf("replay issued %d, original %d", rep.Requests.Issued, orig.Requests.Issued)
	}
	if rep.Psi.Value() != orig.Psi.Value() {
		t.Fatalf("replay ψ %v, original %v (static grid should replay exactly)", rep.Psi.Value(), orig.Psi.Value())
	}
	// Replaying under a different algorithm holds the workload constant.
	replayCfg2 := small(25, Random)
	replayCfg2.Replay = recorded
	rep2, err := Run(replayCfg2)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Requests.Issued != orig.Requests.Issued {
		t.Fatalf("cross-algorithm replay issued %d", rep2.Requests.Issued)
	}
	if rep2.Psi.Value() >= rep.Psi.Value() {
		t.Fatalf("random on the same workload should trail QSA: %v vs %v",
			rep2.Psi.Value(), rep.Psi.Value())
	}
}

func TestReplayRoundTripsThroughEncoding(t *testing.T) {
	skipIfShort(t)
	var recorded []trace.Entry
	cfg := small(26, QSA)
	cfg.Duration = 5
	cfg.TraceSink = func(e trace.Entry) { recorded = append(recorded, e) }
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	w := trace.NewWriter(&buf)
	for _, e := range recorded {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	back, err := trace.Read(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recorded) {
		t.Fatalf("decoded %d of %d", len(back), len(recorded))
	}
}

func TestZeroRequestRate(t *testing.T) {
	skipIfShort(t)
	cfg := small(22, QSA)
	cfg.RequestRate = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests.Issued != 0 {
		t.Fatalf("issued %d requests at rate 0", res.Requests.Issued)
	}
}

func TestChurnCountsDeterministicAndStationary(t *testing.T) {
	// Same seed, same sequence — the contract the netproto chaos
	// harness relies on when it reuses the simulator's churn knob.
	a, b := xrand.New(5), xrand.New(5)
	for i := 0; i < 50; i++ {
		da, aa := ChurnCounts(a, 40)
		db, ab := ChurnCounts(b, 40)
		if da != db || aa != ab {
			t.Fatalf("round %d: (%d,%d) vs (%d,%d)", i, da, aa, db, ab)
		}
	}
	// Zero or negative rates schedule nothing and consume no randomness.
	c := xrand.New(9)
	if d, arr := ChurnCounts(c, 0); d != 0 || arr != 0 {
		t.Fatalf("rate 0 produced churn (%d,%d)", d, arr)
	}
	if d, arr := ChurnCounts(c, -3); d != 0 || arr != 0 {
		t.Fatalf("negative rate produced churn (%d,%d)", d, arr)
	}
	if got := c.Uint64(); got != xrand.New(9).Uint64() {
		t.Fatal("zero-rate ChurnCounts consumed randomness")
	}
	// The half/half split keeps the population stationary in expectation.
	rng := xrand.New(1)
	var dep, arr int
	for i := 0; i < 2000; i++ {
		d, a := ChurnCounts(rng, 10)
		dep += d
		arr += a
	}
	if dep < 9000 || dep > 11000 || arr < 9000 || arr > 11000 {
		t.Fatalf("rate 10 over 2000 minutes: %d departures, %d arrivals, want ≈10000 each", dep, arr)
	}
}
