// Package sim is the closed-loop QSA simulator: it binds the network
// model, Chord-based discovery, the composition and peer-selection tiers,
// probing, and session admission into the experiment loop of the paper's
// evaluation (§4.1):
//
//   - N peers (paper: 10⁴) with heterogeneous capacities;
//   - requests arrive at a configurable rate (req/min), each drawn from 10
//     applications with 2–5 hop paths, 3 QoS levels and 1–60 min sessions;
//   - peers churn at a configurable topological variation rate (peers/min,
//     half departures, half arrivals);
//   - a request succeeds iff it is composed, instantiated, admitted, and
//     every provisioning peer stays connected for the whole session.
//
// The simulator runs one of three algorithms: QSA (the paper's model),
// Random, or Fixed (the client-server baseline). All randomness derives
// from Config.Seed; identical configurations replay identically.
package sim

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/can"
	"repro/internal/catalog"
	"repro/internal/compose"
	"repro/internal/core"
	"repro/internal/eventsim"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/probe"
	"repro/internal/qos"
	"repro/internal/registry"
	"repro/internal/selection"
	"repro/internal/service"
	"repro/internal/session"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// Algorithm selects the aggregation strategy under test.
type Algorithm int

const (
	// QSA is the paper's QoS-aware service aggregation model: QCS
	// composition + Φ-based dynamic peer selection.
	QSA Algorithm = iota
	// Random composes a random QoS-consistent path and picks random peers.
	Random
	// Fixed always uses the same path on dedicated peers (client-server).
	Fixed
	// HybridRandomCompose isolates the peer-selection tier: random
	// QoS-consistent path, Φ-based peer selection (ablation A1).
	HybridRandomCompose
	// HybridRandomSelect isolates the composition tier: QCS path, random
	// peer selection (ablation A2).
	HybridRandomSelect
)

// Algorithms lists the paper's three strategies in presentation order.
var Algorithms = []Algorithm{QSA, Random, Fixed}

// AllAlgorithms additionally includes the ablation hybrids.
var AllAlgorithms = []Algorithm{QSA, Random, Fixed, HybridRandomCompose, HybridRandomSelect}

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case QSA:
		return "qsa"
	case Random:
		return "random"
	case Fixed:
		return "fixed"
	case HybridRandomCompose:
		return "randpath+phi"
	case HybridRandomSelect:
		return "qcs+randpeer"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm converts a string produced by String back to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "qsa":
		return QSA, nil
	case "random":
		return Random, nil
	case "fixed":
		return Fixed, nil
	case "randpath+phi":
		return HybridRandomCompose, nil
	case "qcs+randpeer":
		return HybridRandomSelect, nil
	}
	return 0, fmt.Errorf("sim: unknown algorithm %q", s)
}

// Strategy maps the algorithm onto the core engine's composer/selector
// pair.
func (a Algorithm) Strategy() core.Strategy {
	switch a {
	case QSA:
		return core.StrategyQSA
	case Random:
		return core.StrategyRandom
	case Fixed:
		return core.StrategyFixed
	case HybridRandomCompose:
		// The hybrids carry QSA's retry budget so the tier ablations vary
		// exactly one thing.
		return core.Strategy{Compose: core.ComposeRandom, Select: core.SelectPhi, Retries: core.StrategyQSA.Retries}
	case HybridRandomSelect:
		return core.Strategy{Compose: core.ComposeQCS, Select: core.SelectRandom, Retries: core.StrategyQSA.Retries}
	default:
		// lint:allow panic-in-library unreachable: the switch is exhaustive over the Algorithm enum
		panic(fmt.Sprintf("sim: unknown algorithm %d", int(a)))
	}
}

// Config parameterizes one simulation run.
type Config struct {
	Seed      uint64
	Algorithm Algorithm

	Peers       int     // N; paper: 10000
	RequestRate float64 // requests per minute
	ChurnRate   float64 // peers arriving+leaving per minute (0 = static)
	Duration    float64 // simulated minutes of workload

	SampleWindow float64 // ψ sampling window in minutes (paper Fig. 6: 2)

	// EnableRecovery turns on the runtime failure-recovery extension
	// (paper future work): on a provisioning peer's departure the session
	// re-selects a replacement peer instead of failing.
	EnableRecovery bool

	// RegistryRefresh is the provider re-registration period in minutes;
	// default half the registry TTL.
	RegistryRefresh float64

	// Lookup selects the discovery substrate: "chord" (default) or "can" —
	// the two protocols the paper names (§3.2). Ignored when Registry.DHT
	// is set explicitly.
	Lookup string

	// DisableRetry forces single-shot aggregation (the paper-literal
	// behaviour, without the recomposition-on-failure extension); used by
	// the A6 ablation.
	DisableRetry bool

	// TraceSink, when non-nil, receives every issued request — record it
	// with internal/trace to replay the workload later.
	TraceSink func(trace.Entry)

	// Replay, when non-empty, replaces the Poisson workload with this
	// exact request sequence; RequestRate is ignored. Entries whose user
	// has departed fall back to a random alive peer.
	Replay []trace.Entry

	// TelemetryOut, when non-nil, receives the JSON-lines decision-trace
	// stream (package obs): one span of events per request, timestamped
	// by the virtual clock — same-seed runs emit byte-identical streams.
	TelemetryOut io.Writer

	// SpanSample, in [0, 1], additionally emits causal spans (KindSpan)
	// for a deterministic fraction of requests: the sampling decision is
	// a pure function of (seed, request ID), so the same requests are
	// traced whatever the shard count. 0 — the default — disables spans
	// entirely, keeping the bare TelemetryOut stream byte-identical with
	// pre-span versions; 1 traces every request. Requires TelemetryOut.
	SpanSample float64

	// Metrics, when non-nil, receives runtime work counters from every
	// subsystem (compose, selection, probing, sessions, discovery cache,
	// compatibility memo).
	Metrics *obs.Registry

	// DisableCaches turns off the request hot-path caches — the
	// registry's epoch-keyed lookup cache and the composer's
	// compatibility memo. Results are byte-identical either way (the
	// differential suite asserts it); the switch exists for that
	// comparison and for perf analysis.
	DisableCaches bool

	// Shards, when > 0, runs the simulation on the sharded discrete-event
	// engine with this many physical event lanes (internal/eventsim,
	// ShardedEngine). Results are byte-identical across every shard count
	// — RequestStats, telemetry, ψ series all replay exactly for the same
	// seed whether Shards is 1 or 8 (the differential suite asserts it).
	// They intentionally differ from the Shards == 0 classic engine: the
	// sharded workload draws each request from a private per-request
	// random stream (seeded by request index) so speculative preparation
	// never contends on the shared workload source. 0 keeps the classic
	// single-heap engine and the exact pre-sharding realization.
	//
	// Compose and memo work counters (Config.Metrics) are not collected
	// in sharded mode: speculative composition runs against per-lane
	// scratch and memos, so those counters would depend on the physical
	// lane count — exactly what the sharded results must not do.
	Shards int

	// ShardWorkers is the number of prepare worker goroutines for the
	// sharded engine: 0 picks min(Shards, GOMAXPROCS), 1 forces the
	// inline serial shadow. The differential and race suites force
	// ShardWorkers = Shards so the barrier is exercised even on one CPU.
	ShardWorkers int

	// ShardLookahead is the conservative barrier's virtual-time window in
	// simulated minutes (0 = eventsim.DefaultLookahead). It bounds how
	// far speculation runs ahead of the commit frontier. Request
	// outcomes, ψ, and telemetry are identical for any value; only DHT
	// routing statistics shift, because the window decides when
	// speculative lookups are charged and which preparations go stale.
	ShardLookahead float64

	Catalog   catalog.Config
	Topology  topology.Config
	Probe     probe.Config
	Registry  registry.Config
	Compose   compose.Config
	Selection selection.Config
}

// DefaultConfig returns the paper's evaluation setup for the given
// algorithm, scaled to n peers (the paper uses n = 10000).
func DefaultConfig(seed uint64, alg Algorithm, n int) Config {
	return Config{
		Seed:         seed,
		Algorithm:    alg,
		Peers:        n,
		RequestRate:  100,
		ChurnRate:    0,
		Duration:     60,
		SampleWindow: 2,
		Catalog:      catalog.Default(seed),
		Topology:     topology.Default(seed, n),
		Selection:    selection.DefaultConfig(),
	}
}

func (c *Config) fillDefaults() error {
	if c.Peers <= 0 {
		return fmt.Errorf("sim: need a positive peer count")
	}
	if c.Duration <= 0 {
		return fmt.Errorf("sim: need a positive duration")
	}
	if c.RequestRate < 0 || c.ChurnRate < 0 {
		return fmt.Errorf("sim: negative rates")
	}
	if c.SampleWindow < 0 {
		return fmt.Errorf("sim: negative sample window %g", c.SampleWindow)
	}
	if c.SampleWindow == 0 {
		c.SampleWindow = 2
	}
	if c.Shards < 0 || c.ShardWorkers < 0 || c.ShardLookahead < 0 {
		return fmt.Errorf("sim: negative sharding parameters")
	}
	if c.SpanSample < 0 || c.SpanSample > 1 {
		return fmt.Errorf("sim: span sample fraction %g outside [0, 1]", c.SpanSample)
	}
	if c.Catalog.Apps == 0 {
		c.Catalog = catalog.Default(c.Seed)
	}
	if c.Topology.N == 0 {
		c.Topology = topology.Default(c.Seed, c.Peers)
	}
	c.Topology.N = c.Peers
	c.Topology.Seed = c.Seed
	if len(c.Selection.Weights) == 0 {
		c.Selection = selection.DefaultConfig()
	}
	if c.RegistryRefresh == 0 {
		ttl := c.Registry.TTL
		if ttl == 0 {
			ttl = 10
		}
		c.RegistryRefresh = ttl / 2
	}
	if c.Registry.DHT == nil {
		switch c.Lookup {
		case "", "chord":
			// registry.New builds a Chord ring by default.
		case "can":
			c.Registry.DHT = registry.NewCANDHT(can.Config{})
		default:
			return fmt.Errorf("sim: unknown lookup substrate %q", c.Lookup)
		}
	}
	return nil
}

// RequestStats breaks down request outcomes by failure stage.
type RequestStats struct {
	Issued          uint64
	DiscoveryFailed uint64 // some abstract service had no candidates
	ComposeFailed   uint64 // no QoS-consistent path
	SelectionFailed uint64 // no selectable peer at some hop
	AdmissionFailed uint64 // reservation rejected
	DepartureFailed uint64 // admitted but a provisioning peer left
	Succeeded       uint64
}

// Result is the outcome of one run.
type Result struct {
	Config     Config
	Psi        metrics.Ratio   // overall success ratio ψ
	Series     []metrics.Point // ψ per sampling window
	Requests   RequestStats
	Sessions   session.Counters
	Probes     probe.Stats
	Selection  selection.Stats      // meaningful for QSA only
	Lookup     registry.LookupStats // DHT routing statistics
	AliveAtEnd int

	// TelemetryEvents is the number of decision-trace events emitted
	// (0 when Config.TelemetryOut is nil); TelemetryErr carries the
	// first telemetry write error, if any.
	TelemetryEvents uint64
	TelemetryErr    error
}

// logicalLanes is the fixed number of logical event lanes requests are
// striped over in sharded mode. It is deliberately a constant — not the
// physical shard count — so the (time, lane, seq) total order, and with
// it every result byte, is identical whatever Config.Shards is. Physical
// lane = logical % Shards.
const logicalLanes = 64

// Simulator is one configured run.
type Simulator struct {
	cfg        Config
	engine     eventsim.Runner         // the active engine (heap or sharded)
	heapEngine *eventsim.Engine        // classic engine; nil in sharded mode
	shEngine   *eventsim.ShardedEngine // sharded engine; nil in classic mode
	net        *topology.Network
	cat        *catalog.Catalog
	reg        *registry.Registry
	probes     *probe.Manager
	sess       *session.Manager

	qsaSel *selection.Selector
	agg    *core.Aggregator
	tracer *obs.Tracer

	// Causal-span state: the span source (nil unless SpanSample > 0),
	// the per-request sampling salt, and the root spans of admitted
	// requests that are still open, keyed by session ID — a session's
	// root span closes from onSessionEnd with the final outcome.
	spans     *obs.Spans
	spanSalt  uint64
	openRoots map[uint64]obs.Span

	// Sharded-mode state: one aggregator per physical lane (so prepare
	// workers never share compose scratch), the strategy resolved once,
	// the per-request stream salt, and the schedule-order request index.
	laneAggs  []*core.Aggregator
	strat     core.Strategy
	shardSalt uint64
	reqIndex  uint64

	sampler *metrics.Sampler
	stats   RequestStats

	rngWorkload *xrand.Source
	rngChurn    *xrand.Source
	rngProvider *xrand.Source

	provides     map[topology.PeerID][]*service.Instance
	adoptPerJoin int // instances a freshly arrived peer starts providing
}

// New builds a simulator: network, DHT, catalog, initial provider
// placement and registrations.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	if err := cfg.Compose.Validate(); err != nil {
		return nil, err
	}
	sampler, err := metrics.NewSampler(cfg.SampleWindow)
	if err != nil {
		return nil, err
	}
	root := xrand.New(cfg.Seed)
	s := &Simulator{
		cfg:         cfg,
		sampler:     sampler,
		rngWorkload: root.SplitLabeled("workload"),
		rngChurn:    root.SplitLabeled("churn"),
		rngProvider: root.SplitLabeled("providers"),
		provides:    make(map[topology.PeerID][]*service.Instance),
	}
	if cfg.Shards > 0 {
		s.shEngine = eventsim.NewSharded(eventsim.ShardedConfig{
			Shards:    cfg.Shards,
			Lookahead: cfg.ShardLookahead,
			Parallel:  cfg.ShardWorkers,
		})
		s.engine = s.shEngine
		s.strat = cfg.Algorithm.Strategy()
		if cfg.DisableRetry {
			s.strat.Retries = 0
		}
		s.shardSalt = xrand.MixString(cfg.Seed, "shardreq")
	} else {
		s.heapEngine = eventsim.New()
		s.engine = s.heapEngine
	}
	if s.net, err = topology.New(cfg.Topology); err != nil {
		return nil, err
	}
	if s.cat, err = catalog.New(cfg.Catalog); err != nil {
		return nil, err
	}
	if cfg.DisableCaches {
		cfg.Registry.DisableCache = true
	}
	s.reg = registry.New(cfg.Registry, cfg.Seed)
	s.probes = probe.NewManager(cfg.Probe, s.net)
	s.sess = session.NewManager(s.net, s.engine)
	if s.qsaSel, err = selection.New(cfg.Selection, s.probes, root.SplitLabeled("selection")); err != nil {
		return nil, err
	}
	// The composer always gets a scratch arena (pure buffer reuse, no
	// semantic switch); the compatibility memo honours DisableCaches.
	cfg.Compose.Scratch = compose.NewScratch()
	if !cfg.DisableCaches {
		cfg.Compose.Memo = compose.NewMemo()
	}
	if cfg.Metrics != nil {
		cfg.Compose.Obs = obs.NewComposeCounters(cfg.Metrics)
		s.probes.Obs = obs.NewProbeCounters(cfg.Metrics)
		s.sess.Obs = obs.NewSessionCounters(cfg.Metrics)
		// Achieved session lifetimes (virtual minutes): completed sessions
		// land on their requested duration, departure-failed ones short.
		s.sess.Durations = cfg.Metrics.Latency("session.duration_minutes")
		s.sess.ActiveGauge = cfg.Metrics.Gauge("session.active")
		s.qsaSel.Counters = obs.NewSelectionCounters(cfg.Metrics)
		s.reg.Obs = obs.NewDiscoveryCounters(cfg.Metrics)
		if cfg.Compose.Memo != nil {
			cfg.Compose.Memo.Obs = obs.NewMemoCounters(cfg.Metrics)
		}
	}
	s.agg = &core.Aggregator{
		Registry:       s.reg,
		Sessions:       s.sess,
		PhiSelector:    s.qsaSel,
		RandomSelector: selection.NewRandom(root.SplitLabeled("randsel")),
		FixedSelector:  selection.NewFixed(),
		ComposeConfig:  cfg.Compose,
		RNG:            root.SplitLabeled("composerand"),
	}
	if cfg.Shards > 0 {
		// One aggregator per physical lane. They share every serial
		// subsystem (registry, sessions, selectors) — those are only
		// touched from the coordinator — but each gets a private compose
		// scratch and memo, because speculative composition for a lane
		// runs on that lane's prepare worker. Work counters stay off the
		// lane configs: per-lane memo hit rates depend on the physical
		// lane count, which results must not.
		s.laneAggs = make([]*core.Aggregator, cfg.Shards)
		for i := range s.laneAggs {
			cc := cfg.Compose
			cc.Obs = obs.ComposeCounters{}
			cc.Scratch = compose.NewScratch()
			cc.Memo = nil
			if !cfg.DisableCaches {
				cc.Memo = compose.NewMemo()
			}
			s.laneAggs[i] = &core.Aggregator{
				Registry:       s.reg,
				Sessions:       s.sess,
				PhiSelector:    s.qsaSel,
				RandomSelector: s.agg.RandomSelector,
				FixedSelector:  s.agg.FixedSelector,
				ComposeConfig:  cc,
			}
		}
	}
	if cfg.TelemetryOut != nil {
		// eventsim.Time is an alias for float64, so the engine clock is
		// the tracer clock — events carry simulated minutes.
		s.tracer = obs.NewTracer(cfg.TelemetryOut, s.engine.Now)
		s.agg.Tracer = s.tracer
		// Lane aggregators emit only from the serial commit phase, so they
		// can share the tracer.
		for _, la := range s.laneAggs {
			la.Tracer = s.tracer
		}
		if cfg.SpanSample > 0 {
			// Span IDs and the sampling decision both derive from the run
			// seed alone, so same-seed runs mint identical causal trees
			// whatever the shard count. The lane aggregators share the one
			// span source: like the tracer, they mint spans only from the
			// serial commit phase.
			s.spans = obs.NewSpans(s.tracer, xrand.MixString(cfg.Seed, "spans"))
			s.spanSalt = xrand.MixString(cfg.Seed, "spansample")
			s.openRoots = make(map[uint64]obs.Span)
			s.agg.Spans = s.spans
			for _, la := range s.laneAggs {
				la.Spans = s.spans
			}
		}
		// Hop reports join the request span via the aggregator's current
		// request ID (single simulation goroutine, so never stale here).
		s.qsaSel.Obs = func(rep selection.StepReport) {
			ev := obs.Event{
				Kind: obs.KindHop,
				Req:  s.agg.ReqID,
				Hop:  rep.Hop,
				Inst: rep.Inst,
				At:   strconv.Itoa(int(rep.At)),
				Mode: rep.Mode,
			}
			if rep.Chosen >= 0 {
				ev.Chosen = strconv.Itoa(int(rep.Chosen))
			}
			for _, c := range rep.Cands {
				ev.Cands = append(ev.Cands, obs.Candidate{
					Peer:   strconv.Itoa(int(c.Peer)),
					Phi:    c.Phi,
					Reason: c.Reason,
				})
			}
			s.tracer.Emit(ev)
		}
	}

	// Join every initial peer to the DHT in bulk (per-join sorted inserts
	// are quadratic at 10⁶ peers), then stabilize: the grid under
	// observation has been running, so its routing state starts converged.
	initial := make([]topology.PeerID, s.net.TotalCount())
	for i := range initial {
		initial[i] = topology.PeerID(i)
	}
	if err := s.reg.AddPeers(initial); err != nil {
		return nil, err
	}
	s.reg.Stabilize()

	// Initial provider placement: each instance gets 40–80 uniformly
	// chosen provider peers (paper §4.1).
	total := 0
	for _, inst := range s.cat.AllInstances() {
		n := s.cat.ProviderCount(s.rngProvider, s.net.TotalCount())
		total += n
		seen := make(map[topology.PeerID]bool, n)
		for len(seen) < n {
			p := topology.PeerID(s.rngProvider.Intn(s.net.TotalCount()))
			if seen[p] {
				continue
			}
			seen[p] = true
			s.provides[p] = append(s.provides[p], inst)
			if err := s.reg.Register(p, inst, p, 0); err != nil {
				return nil, err
			}
		}
	}
	s.adoptPerJoin = (total + s.net.TotalCount() - 1) / s.net.TotalCount()

	s.sess.OnEnd = s.onSessionEnd
	if cfg.EnableRecovery {
		s.sess.Recovery = s.recover
	}
	return s, nil
}

// Engine exposes the classic single-heap engine (for embedding in larger
// harnesses). It is nil when the run is sharded; use Runner then.
func (s *Simulator) Engine() *eventsim.Engine { return s.heapEngine }

// Runner exposes the active event engine regardless of sharding mode.
func (s *Simulator) Runner() eventsim.Runner { return s.engine }

// Network exposes the peer population.
func (s *Simulator) Network() *topology.Network { return s.net }

// Catalog exposes the generated application catalog.
func (s *Simulator) Catalog() *catalog.Catalog { return s.cat }

func (s *Simulator) onSessionEnd(sess *session.Session) {
	ok := sess.State == session.Completed
	// Session start times come off the engine clock, never negative.
	_ = s.sampler.Record(sess.Start, ok)
	if s.tracer != nil {
		ev := obs.Event{Kind: obs.KindEnd, Session: strconv.FormatUint(sess.ID, 10), OK: ok}
		if !ok {
			ev.Stage = obs.StageDeparture
			ev.Err = "provisioning peer departed"
		}
		s.tracer.Emit(ev)
	}
	if root, open := s.openRoots[sess.ID]; open {
		delete(s.openRoots, sess.ID)
		ev := obs.Event{OK: ok, Session: strconv.FormatUint(sess.ID, 10)}
		if !ok {
			ev.Stage = obs.StageDeparture
			ev.Err = "provisioning peer departed"
		}
		root.End(ev)
	}
	if ok {
		s.stats.Succeeded++
	} else {
		s.stats.DepartureFailed++
	}
}

// rootSpan mints the root span for the aggregator's current request ID,
// subject to deterministic sampling: the decision is a pure function of
// (seed, request ID), so the same requests are traced for every shard
// count. It returns the inert zero Span when spans are disabled or the
// request is unsampled.
func (s *Simulator) rootSpan() obs.Span {
	if s.spans == nil {
		return obs.Span{}
	}
	if s.cfg.SpanSample < 1 {
		h := xrand.MixIndex(s.spanSalt, s.agg.ReqID)
		if float64(h>>11)/(1<<53) >= s.cfg.SpanSample {
			return obs.Span{}
		}
	}
	return s.spans.Root(s.agg.ReqID)
}

// failEarly accounts a request that failed before the pipeline could
// even start (no alive user peer, or an unreplayable trace entry); the
// paper counts these against ψ like any other discovery failure.
func (s *Simulator) failEarly(now float64, app, reason string) {
	s.stats.Issued++
	s.stats.DiscoveryFailed++
	s.agg.ReqID++
	if s.tracer != nil {
		s.tracer.Emit(obs.Event{Kind: obs.KindRequest, Req: s.agg.ReqID, App: app})
		s.tracer.Emit(obs.Event{Kind: obs.KindFail, Req: s.agg.ReqID,
			Stage: obs.StageDiscovery, Err: reason})
	}
	s.rootSpan().End(obs.Event{Stage: obs.StageDiscovery, Err: reason})
	// Engine time is never negative, so the record cannot fail.
	_ = s.sampler.Record(now, false)
}

// recover implements the runtime-recovery extension via the core engine.
func (s *Simulator) recover(sess *session.Session, k int, now float64) (topology.PeerID, bool) {
	peer, ok := s.agg.Recover(sess, k, now)
	if root, open := s.openRoots[sess.ID]; open {
		// Mid-session repair: anchor it under the still-open request root
		// so the critical-path explainer sees what recovery cost.
		ev := obs.Event{Stage: obs.StageRecovery, Hop: k + 1,
			Inst: sess.Instances[k].ID, OK: ok}
		if ok {
			ev.Peer = strconv.Itoa(int(peer))
		}
		root.Child().End(ev)
	}
	return peer, ok
}

// issueRequest runs the full aggregation pipeline for one user request.
func (s *Simulator) issueRequest(now float64) {
	user := s.net.RandomAliveFrom(s.rngWorkload)
	req := s.cat.SampleRequest(s.rngWorkload)
	if user == nil {
		s.failEarly(now, req.App.ID, "no alive user peer")
		return
	}
	if s.cfg.TraceSink != nil {
		s.cfg.TraceSink(trace.Entry{
			T:        now,
			User:     int(user.ID),
			App:      req.App.ID,
			Level:    req.Level.String(),
			Duration: req.Duration,
		})
	}
	s.issueWith(now, user, req)
}

// issueReplayed replays one recorded request.
func (s *Simulator) issueReplayed(now float64, e trace.Entry) {
	var app *service.Application
	for _, a := range s.cat.Apps {
		if a.ID == e.App {
			app = a
			break
		}
	}
	if app == nil {
		s.failEarly(now, e.App, "replayed app not in catalog")
		return
	}
	lvl, err := qos.ParseLevel(e.Level)
	if err != nil {
		s.failEarly(now, e.App, err.Error())
		return
	}
	user, perr := s.net.Peer(topology.PeerID(e.User))
	if perr != nil || !user.Alive {
		user = s.net.RandomAliveFrom(s.rngWorkload)
	}
	if user == nil {
		s.failEarly(now, e.App, "no alive user peer")
		return
	}
	req := &service.Request{
		App:      app,
		Level:    lvl,
		UserQoS:  s.cat.UserQoS(s.rngWorkload, lvl),
		Duration: e.Duration,
	}
	s.issueWith(now, user, req)
}

// issueWith runs the aggregation pipeline for a concrete (user, request).
func (s *Simulator) issueWith(now float64, user *topology.Peer, req *service.Request) {
	s.stats.Issued++
	s.agg.ReqID++ // opens the request span; core events join it
	root := s.rootSpan()
	s.agg.ReqSpan = root.Context()
	if s.tracer != nil {
		s.tracer.Emit(obs.Event{Kind: obs.KindRequest, Req: s.agg.ReqID,
			User: strconv.Itoa(int(user.ID)), App: req.App.ID,
			Level: req.Level.String(), Duration: req.Duration})
	}
	strat := s.cfg.Algorithm.Strategy()
	if s.cfg.DisableRetry {
		strat.Retries = 0
	}
	sess, err := s.agg.Aggregate(user.ID, req, now, strat)
	if err == nil {
		if root.Active() {
			// The request root stays open for the session's lifetime; it
			// closes from onSessionEnd with the final outcome.
			s.openRoots[sess.ID] = root
		}
		return // outcome recorded by onSessionEnd
	}
	// The stage switch and the trace event use the same mapping
	// (core.EventStage), so qsastat's per-stage counts reconcile with
	// RequestStats exactly.
	switch core.StageOf(err) {
	case core.StageDiscovery:
		s.stats.DiscoveryFailed++
	case core.StageCompose:
		s.stats.ComposeFailed++
	case core.StageSelection:
		s.stats.SelectionFailed++
	default:
		s.stats.AdmissionFailed++
	}
	if s.tracer != nil {
		s.tracer.Emit(obs.Event{Kind: obs.KindFail, Req: s.agg.ReqID,
			Stage: core.EventStage(err), Err: err.Error()})
	}
	if root.Active() {
		root.End(obs.Event{Stage: core.EventStage(err), Err: err.Error()})
	}
	_ = s.sampler.Record(now, false)
}

// shardReq carries one sharded-mode request through the engine's three
// stages: serial discovery pre-pass, speculative composition, commit.
type shardReq struct {
	idx  uint64 // schedule-order index; seeds the private stream
	at   float64
	lane int // physical lane: picks the aggregator used throughout
	src  *xrand.Source
	user *topology.Peer
	req  *service.Request
	prep *core.PreparedAggregation

	// Validation tokens captured at the serial stage: if either moved by
	// commit time, the preparation saw state that has since changed and
	// the commit redoes the request serially.
	topoV, regE uint64
}

// scheduleRequestsSharded plans one simulated minute of workload on the
// sharded engine. Counts and arrival times still come from the shared
// workload stream — this runs at a ticker commit, a point in the total
// order identical for every shard count — while each request's own draws
// (user, request shape, compose randomness) come from a private stream
// seeded by its index, so the speculative stages never touch a shared
// source.
func (s *Simulator) scheduleRequestsSharded(now float64) {
	nReq := s.rngWorkload.Poisson(s.cfg.RequestRate)
	for i := 0; i < nReq; i++ {
		at := now + s.rngWorkload.Float64()
		r := &shardReq{idx: s.reqIndex, at: at}
		s.reqIndex++
		logical := int(r.idx % logicalLanes)
		r.lane = logical % s.shEngine.Shards()
		s.shEngine.AtPrepared(logical, at,
			func() { s.prepRequestSerial(r) },
			func() { s.prepRequestSpec(r) },
			func() { s.commitRequest(r) })
	}
}

// prepRequestSerial is the serial pre-stage: draw the request from its
// private stream, capture the validation tokens, and run discovery —
// charging DHT lookups at claim time, in merged event order, so the
// charge sequence is a pure function of the seed.
func (s *Simulator) prepRequestSerial(r *shardReq) {
	r.src = xrand.New(xrand.MixIndex(s.shardSalt, r.idx))
	r.user = s.net.RandomAliveFrom(r.src)
	r.req = s.cat.SampleRequest(r.src)
	if r.user == nil {
		return
	}
	r.topoV = s.net.Version()
	r.regE = s.reg.Epoch()
	r.prep = s.laneAggs[r.lane].PrepareDiscovery(r.user.ID, r.req, r.at)
}

// prepRequestSpec is the speculative parallel stage: the first
// composition attempt over the prepared discovery, using the lane's
// private compose scratch and memo.
func (s *Simulator) prepRequestSpec(r *shardReq) {
	if r.prep == nil || r.prep.Err != nil {
		return
	}
	s.laneAggs[r.lane].PrepareCompose(r.prep, r.req, s.strat, r.src)
}

// commitRequest finishes one sharded request at its committed position
// in the total order. If the registry or topology changed since the
// serial pre-stage, the whole preparation is discarded: the private
// stream is rewound and the request redone serially, which is exactly
// the unsharded execution of this commit. Either way the stream, the
// statistics, and the trace are bit-identical for every shard count.
func (s *Simulator) commitRequest(r *shardReq) {
	now := r.at
	la := s.laneAggs[r.lane]
	valid := r.prep != nil &&
		r.topoV == s.net.Version() && r.regE == s.reg.Epoch()
	if !valid {
		r.src = xrand.New(xrand.MixIndex(s.shardSalt, r.idx))
		r.user = s.net.RandomAliveFrom(r.src)
		r.req = s.cat.SampleRequest(r.src)
		r.prep = nil
	}
	s.stats.Issued++
	s.agg.ReqID++ // the request-span counter; hop reports read it
	la.ReqID = s.agg.ReqID
	root := s.rootSpan()
	la.ReqSpan = root.Context()
	if r.user == nil {
		s.stats.DiscoveryFailed++
		if s.tracer != nil {
			s.tracer.Emit(obs.Event{Kind: obs.KindRequest, Req: la.ReqID, App: r.req.App.ID})
			s.tracer.Emit(obs.Event{Kind: obs.KindFail, Req: la.ReqID,
				Stage: obs.StageDiscovery, Err: "no alive user peer"})
		}
		root.End(obs.Event{Stage: obs.StageDiscovery, Err: "no alive user peer"})
		_ = s.sampler.Record(now, false)
		return
	}
	if s.cfg.TraceSink != nil {
		s.cfg.TraceSink(trace.Entry{
			T:        now,
			User:     int(r.user.ID),
			App:      r.req.App.ID,
			Level:    r.req.Level.String(),
			Duration: r.req.Duration,
		})
	}
	if s.tracer != nil {
		s.tracer.Emit(obs.Event{Kind: obs.KindRequest, Req: la.ReqID,
			User: strconv.Itoa(int(r.user.ID)), App: r.req.App.ID,
			Level: r.req.Level.String(), Duration: r.req.Duration})
	}
	var sess *session.Session
	var err error
	if r.prep != nil {
		sess, err = la.AggregateFinish(r.prep, r.user.ID, r.req, now, s.strat, r.src)
	} else {
		la.RNG = r.src
		sess, err = la.Aggregate(r.user.ID, r.req, now, s.strat)
	}
	if err == nil {
		if root.Active() {
			s.openRoots[sess.ID] = root
		}
		return // outcome recorded by onSessionEnd
	}
	switch core.StageOf(err) {
	case core.StageDiscovery:
		s.stats.DiscoveryFailed++
	case core.StageCompose:
		s.stats.ComposeFailed++
	case core.StageSelection:
		s.stats.SelectionFailed++
	default:
		s.stats.AdmissionFailed++
	}
	if s.tracer != nil {
		s.tracer.Emit(obs.Event{Kind: obs.KindFail, Req: la.ReqID,
			Stage: core.EventStage(err), Err: err.Error()})
	}
	if root.Active() {
		root.End(obs.Event{Stage: core.EventStage(err), Err: err.Error()})
	}
	_ = s.sampler.Record(now, false)
}

// churnDepart removes one random peer and propagates the departure.
func (s *Simulator) churnDepart(now float64) {
	p := s.net.DepartRandom(now)
	if p == nil {
		return
	}
	s.sess.PeerDeparted(p.ID, now)
	s.probes.DropPeer(p.ID)
	// Abrupt departure: the DHT node fails, registrations age out via TTL.
	_ = s.reg.RemovePeer(p.ID, false)
}

// churnArrive adds a fresh peer that adopts a provider load matching the
// population average, keeping instance replication roughly stationary.
func (s *Simulator) churnArrive(now float64) {
	p, err := s.net.Join(now)
	if err != nil {
		return
	}
	if err := s.reg.AddPeer(p.ID); err != nil {
		return
	}
	all := s.cat.AllInstances()
	for i := 0; i < s.adoptPerJoin; i++ {
		inst := all[s.rngProvider.Intn(len(all))]
		s.provides[p.ID] = append(s.provides[p.ID], inst)
		_ = s.reg.Register(p.ID, inst, p.ID, now)
	}
}

// refreshRegistrations re-registers every alive provider's instances —
// the soft-state refresh that keeps discovery converged under churn.
func (s *Simulator) refreshRegistrations(now float64) {
	total := s.net.TotalCount()
	for id := 0; id < total; id++ {
		pid := topology.PeerID(id)
		insts := s.provides[pid]
		if len(insts) == 0 {
			continue
		}
		p := s.net.MustPeer(pid)
		if !p.Alive {
			continue
		}
		for _, inst := range insts {
			_ = s.reg.Register(pid, inst, pid, now)
		}
	}
}

// scheduleRequests plans one minute of workload starting at now.
func (s *Simulator) scheduleRequests(now float64) {
	nReq := s.rngWorkload.Poisson(s.cfg.RequestRate)
	for i := 0; i < nReq; i++ {
		at := now + s.rngWorkload.Float64()
		s.engine.Schedule(at, func() { s.issueRequest(at) })
	}
}

// ChurnCounts splits one minute of topological variation at the given
// rate (peers/min) into departure and arrival counts — Poisson-thinned
// half/half so the population stays stationary (DESIGN.md §6 churn
// model). Exported so other fault planes (the internal/faults chaos
// harness crashing and restarting prototype peers) schedule churn with
// exactly the distribution the simulator uses.
func ChurnCounts(rng *xrand.Source, perMinute float64) (departures, arrivals int) {
	if perMinute <= 0 {
		return 0, 0
	}
	return rng.Poisson(perMinute / 2), rng.Poisson(perMinute / 2)
}

// scheduleChurn plans one minute of topological variation starting at now.
func (s *Simulator) scheduleChurn(now float64) {
	dep, arr := ChurnCounts(s.rngChurn, s.cfg.ChurnRate)
	if dep == 0 && arr == 0 {
		return
	}
	for i := 0; i < dep; i++ {
		at := now + s.rngChurn.Float64()
		s.engine.Schedule(at, func() { s.churnDepart(at) })
	}
	for i := 0; i < arr; i++ {
		at := now + s.rngChurn.Float64()
		s.engine.Schedule(at, func() { s.churnArrive(at) })
	}
}

// Run executes the configured workload and returns the result. Sessions
// still active when the workload window closes are allowed to play out —
// with churn and registry refresh still running, so late sessions face the
// same departure risk as early ones — and every request gets a definite
// outcome.
func (s *Simulator) Run() *Result {
	// Sessions issued in the last workload minute can run for up to the
	// catalog's maximum duration past the window.
	maxDur := s.cfg.Catalog.MaxDuration
	if maxDur <= 0 {
		maxDur = 60
	}
	drainHorizon := s.cfg.Duration + maxDur
	var requests eventsim.Handle
	if len(s.cfg.Replay) > 0 {
		for _, e := range s.cfg.Replay {
			if e.T >= s.cfg.Duration {
				continue
			}
			e := e
			s.engine.Schedule(e.T, func() { s.issueReplayed(e.T, e) })
		}
	} else {
		schedule := s.scheduleRequests
		if s.shEngine != nil {
			schedule = s.scheduleRequestsSharded
		}
		requests = s.engine.ScheduleEvery(0, 1, func() {
			if s.engine.Now() < s.cfg.Duration {
				schedule(s.engine.Now())
			}
		})
	}
	churn := s.engine.ScheduleEvery(0, 1, func() {
		if s.engine.Now() < drainHorizon {
			s.scheduleChurn(s.engine.Now())
		}
	})
	refresh := s.engine.ScheduleEvery(s.cfg.RegistryRefresh, s.cfg.RegistryRefresh, func() {
		s.refreshRegistrations(s.engine.Now())
	})
	s.engine.RunUntil(s.cfg.Duration)
	if requests != nil {
		requests.Cancel()
	}
	s.engine.RunUntil(drainHorizon)
	churn.Cancel()
	refresh.Cancel()
	s.engine.Run() // drain any remaining completions
	if s.shEngine != nil {
		s.shEngine.Close() // terminate the prepare workers
	}

	res := &Result{
		Config:     s.cfg,
		Psi:        s.sampler.Total(),
		Series:     s.sampler.Series(),
		Requests:   s.stats,
		Sessions:   s.sess.Counters(),
		Probes:     s.probes.Stats(),
		Selection:  s.qsaSel.Stats(),
		Lookup:     s.reg.Stats(),
		AliveAtEnd: s.net.AliveCount(),
	}
	// Trim the series to the workload window (requests are attributed to
	// issue time, so later windows are empty anyway).
	trimmed := res.Series[:0]
	for _, p := range res.Series {
		if p.Time <= s.cfg.Duration+s.cfg.SampleWindow {
			trimmed = append(trimmed, p)
		}
	}
	res.Series = trimmed
	sort.SliceStable(res.Series, func(i, j int) bool { return res.Series[i].Time < res.Series[j].Time })
	if s.tracer != nil {
		res.TelemetryErr = s.tracer.Flush()
		res.TelemetryEvents = s.tracer.Count()
	}
	return res
}

// Run is the one-call convenience: build a simulator from cfg and run it.
func Run(cfg Config) (*Result, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run(), nil
}
