package load

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/netproto"
)

// Caller issues one serving-plane aggregation. netproto.Client
// satisfies it; tests substitute fakes.
type Caller interface {
	Aggregate(req netproto.AggRequest) (*netproto.AggResult, error)
}

// Config parameterizes one open-loop run.
type Config struct {
	// Schedule drives the arrival clock. Required.
	Schedule Schedule
	// ScheduleName labels the report ("constant", "bursty", "diurnal").
	ScheduleName string
	// RateRPS is the schedule's nominal offered rate, recorded in the
	// report for rate-vs-throughput comparison.
	RateRPS float64
	// Mix is the weighted request-class set. Required.
	Mix Mix
	// Requests is the number of arrivals to fire. Required.
	Requests int
	// MaxInFlight bounds concurrent outstanding requests. Open-loop
	// discipline: an arrival that finds all slots busy is counted as
	// dropped, never delayed — the arrival clock must not be backpressured
	// by the system under test. Default 256.
	MaxInFlight int
	// ShedRetries is how many times a shed request is retried after
	// waiting out the server's RetryAfter hint. Default 0 (sheds are
	// final). Retries hold their in-flight slot, so overload converts
	// into slot exhaustion rather than a retry storm.
	ShedRetries int
	// RetryBackoff is the wait before retrying a shed reply that carried
	// no hint. Default 100ms.
	RetryBackoff time.Duration
	// Seed fixes the class-assignment hash (and is recorded so schedule
	// seeds can be derived from it by callers).
	Seed uint64
}

func (c *Config) fillDefaults() {
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 256
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.ScheduleName == "" {
		c.ScheduleName = "constant"
	}
}

// Runner fires an open-loop request stream at one Caller.
type Runner struct {
	cfg    Config
	caller Caller
	col    *collector
}

// NewRunner validates cfg and binds it to a caller.
func NewRunner(cfg Config, caller Caller) (*Runner, error) {
	cfg.fillDefaults()
	if cfg.Schedule == nil {
		return nil, fmt.Errorf("load: nil schedule")
	}
	if caller == nil {
		return nil, fmt.Errorf("load: nil caller")
	}
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("load: %d requests (want > 0)", cfg.Requests)
	}
	if cfg.MaxInFlight < 1 {
		return nil, fmt.Errorf("load: max in-flight %d (want >= 1)", cfg.MaxInFlight)
	}
	if cfg.ShedRetries < 0 {
		return nil, fmt.Errorf("load: shed retries %d (want >= 0)", cfg.ShedRetries)
	}
	if err := cfg.Mix.Validate(); err != nil {
		return nil, err
	}
	return &Runner{cfg: cfg, caller: caller, col: newCollector()}, nil
}

// Run fires the configured arrivals and blocks until every in-flight
// request resolves, then returns the run's report.
func (r *Runner) Run() *Report {
	start := time.Now()
	slots := make(chan struct{}, r.cfg.MaxInFlight)
	var wg sync.WaitGroup
	for i := 0; i < r.cfg.Requests; i++ {
		at := r.cfg.Schedule.Next()
		if d := time.Until(start.Add(at)); d > 0 {
			time.Sleep(d)
		}
		cls := r.cfg.Mix.Pick(r.cfg.Seed, i)
		select {
		case slots <- struct{}{}:
			wg.Add(1)
			go func(cls *Class) {
				defer wg.Done()
				defer func() { <-slots }()
				r.one(cls)
			}(cls)
		default:
			// Every slot holds an unfinished request: the system under test
			// is behind the offered rate. Record the drop and keep the clock.
			r.col.record(cls.Name, outcomeDropped, 0, 0)
		}
	}
	wg.Wait()
	return r.col.snapshot(r.cfg.ScheduleName, r.cfg.RateRPS, time.Since(start).Seconds())
}

// one drives a single request to a terminal outcome, honouring the
// server's deterministic retry-after hints on shed replies.
func (r *Runner) one(cls *Class) {
	req := netproto.AggRequest{
		Services:  cls.Services,
		MinRate:   cls.MinRate,
		Priority:  cls.Priority,
		Deadline:  cls.Deadline.Seconds(),
		DTolerant: cls.DTolerant,
		Duration:  cls.Duration,
	}
	start := time.Now()
	var retries uint64
	for attempt := 0; ; attempt++ {
		res, err := r.caller.Aggregate(req)
		if err != nil {
			r.col.record(cls.Name, outcomeError, 0, retries)
			return
		}
		if res.OK {
			r.col.record(cls.Name, outcomeOK, time.Since(start).Seconds(), retries)
			return
		}
		if !res.Shed || attempt >= r.cfg.ShedRetries {
			r.col.record(cls.Name, outcomeShed, 0, retries)
			return
		}
		wait := res.RetryAfter
		if wait <= 0 {
			wait = r.cfg.RetryBackoff
		}
		if cls.Deadline > 0 && time.Since(start)+wait > cls.Deadline {
			// Retrying past the deadline would only be shed again at the
			// server; give up now.
			r.col.record(cls.Name, outcomeShed, 0, retries)
			return
		}
		retries++
		time.Sleep(wait)
	}
}
