package load

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/obs"
)

// Outcome labels in ClassStats counters.
const (
	outcomeOK      = "ok"
	outcomeShed    = "shed"
	outcomeError   = "error"
	outcomeDropped = "dropped"
)

// ClassStats is the per-class slice of a load report. Latency is a
// mergeable log-bucketed histogram of end-to-end completion times for
// successful requests (including any shed-retry waits — the time the
// caller actually experienced).
type ClassStats struct {
	Sent    uint64           `json:"sent"`
	OK      uint64           `json:"ok"`
	Shed    uint64           `json:"shed"`    // exhausted retries shed
	Errors  uint64           `json:"errors"`  // transport or pipeline errors
	Dropped uint64           `json:"dropped"` // arrivals past MaxInFlight, never sent
	Retries uint64           `json:"retries"` // shed responses that were retried
	Latency obs.LatencyValue `json:"latency"`
}

func (c *ClassStats) merge(o ClassStats) {
	c.Sent += o.Sent
	c.OK += o.OK
	c.Shed += o.Shed
	c.Errors += o.Errors
	c.Dropped += o.Dropped
	c.Retries += o.Retries
	c.Latency = c.Latency.Merge(o.Latency)
}

// Report is the outcome of one open-loop run. Reports from independent
// workers (or hosts) merge exactly: counters add and latency
// histograms combine bucket-wise, so fleet-wide p99 is computed from
// merged data, not averaged per-worker quantiles.
type Report struct {
	Schedule string                 `json:"schedule"`
	RateRPS  float64                `json:"rate_rps"`
	WallSec  float64                `json:"wall_sec"`
	Classes  map[string]*ClassStats `json:"classes"`
	Total    ClassStats             `json:"total"`
}

// Throughput is the achieved successful-completion rate in
// requests/sec over the run's wall clock.
func (r *Report) Throughput() float64 {
	if r.WallSec <= 0 {
		return 0
	}
	return float64(r.Total.OK) / r.WallSec
}

// MergeReports combines per-worker reports into one fleet view. Wall
// time is the maximum (workers ran concurrently); everything else adds
// or bucket-merges.
func MergeReports(reports ...*Report) *Report {
	out := &Report{Classes: map[string]*ClassStats{}}
	for _, r := range reports {
		if r == nil {
			continue
		}
		if out.Schedule == "" {
			out.Schedule = r.Schedule
		}
		out.RateRPS += r.RateRPS
		if r.WallSec > out.WallSec {
			out.WallSec = r.WallSec
		}
		for name, cs := range r.Classes {
			tgt, ok := out.Classes[name]
			if !ok {
				tgt = &ClassStats{}
				out.Classes[name] = tgt
			}
			tgt.merge(*cs)
		}
		out.Total.merge(r.Total)
	}
	return out
}

// collector accumulates outcomes during a run; Snapshot freezes it
// into a Report. Safe for concurrent use by in-flight request
// goroutines.
type collector struct {
	mu      sync.Mutex
	classes map[string]*classAcc
}

type classAcc struct {
	stats ClassStats
	lat   *obs.LatencyHist
}

func newCollector() *collector {
	return &collector{classes: map[string]*classAcc{}}
}

func (c *collector) acc(class string) *classAcc {
	a, ok := c.classes[class]
	if !ok {
		a = &classAcc{lat: obs.NewLatencyHist()}
		c.classes[class] = a
	}
	return a
}

func (c *collector) record(class, outcome string, latencySec float64, retries uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	a := c.acc(class)
	a.stats.Retries += retries
	switch outcome {
	case outcomeOK:
		a.stats.Sent++
		a.stats.OK++
		a.lat.Observe(latencySec)
	case outcomeShed:
		a.stats.Sent++
		a.stats.Shed++
	case outcomeError:
		a.stats.Sent++
		a.stats.Errors++
	case outcomeDropped:
		a.stats.Dropped++
	default:
		// lint:allow panic-in-library the outcome constants are package-private; an unknown one is a programming error
		panic(fmt.Sprintf("load: unknown outcome %q", outcome))
	}
}

func (c *collector) snapshot(schedule string, rate, wallSec float64) *Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := &Report{
		Schedule: schedule,
		RateRPS:  rate,
		WallSec:  wallSec,
		Classes:  make(map[string]*ClassStats, len(c.classes)),
	}
	names := make([]string, 0, len(c.classes))
	for name := range c.classes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := c.classes[name]
		cs := a.stats
		cs.Latency = a.lat.SnapshotValue(name)
		rep.Classes[name] = &cs
		rep.Total.merge(cs)
	}
	rep.Total.Latency.Name = "total"
	return rep
}
