package load

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/xrand"
)

// Class is one request flavour in a workload mix, mirroring the
// paper's ServiceRequest model: a service path with a rate floor, a
// priority class, an optional completion deadline, and the
// disruption-tolerance bit that lets the admission plane shed it
// first under pressure.
type Class struct {
	Name      string
	Weight    float64
	Services  []string
	MinRate   float64
	Priority  int
	Deadline  time.Duration // 0 = no deadline
	DTolerant bool
	Duration  time.Duration // session reservation length
}

// Mix is a weighted set of request classes.
type Mix []Class

// Validate rejects mixes the runner cannot sample from.
func (m Mix) Validate() error {
	if len(m) == 0 {
		return fmt.Errorf("load: empty mix")
	}
	total := 0.0
	for i, c := range m {
		if c.Weight < 0 {
			return fmt.Errorf("load: class %d (%s) weight %g < 0", i, c.Name, c.Weight)
		}
		if len(c.Services) == 0 {
			return fmt.Errorf("load: class %d (%s) has no services", i, c.Name)
		}
		if c.Priority < 0 {
			return fmt.Errorf("load: class %d (%s) priority %d < 0", i, c.Name, c.Priority)
		}
		total += c.Weight
	}
	if total <= 0 {
		return fmt.Errorf("load: mix weights sum to %g (want > 0)", total)
	}
	return nil
}

// Pick selects the class for arrival i, deterministically in (seed, i):
// the same seed replays the same per-request class assignment
// regardless of completion timing.
func (m Mix) Pick(seed uint64, i int) *Class {
	total := 0.0
	for _, c := range m {
		total += c.Weight
	}
	h := xrand.MixIndex(seed, uint64(i))
	// 53-bit mantissa slice of the hash → uniform in [0, 1).
	u := float64(h>>11) / (1 << 53)
	target := u * total
	for j := range m {
		target -= m[j].Weight
		if target < 0 {
			return &m[j]
		}
	}
	return &m[len(m)-1]
}

// DefaultMix mirrors the serving benchmark's standing workload over
// the stock two-provider "work" deployment: mostly best-effort
// disruption-tolerant traffic, a band of interactive deadline-bound
// requests, and a thin stream of critical flows that admission must
// protect under overload.
func DefaultMix() Mix {
	return Mix{
		{Name: "batch", Weight: 0.6, Services: []string{"work"}, MinRate: 10,
			Priority: 0, DTolerant: true, Duration: time.Second},
		{Name: "interactive", Weight: 0.3, Services: []string{"work"}, MinRate: 10,
			Priority: 1, Deadline: 500 * time.Millisecond, Duration: time.Second},
		{Name: "critical", Weight: 0.1, Services: []string{"work"}, MinRate: 10,
			Priority: 3, Deadline: time.Second, Duration: time.Second},
	}
}

// ParseMix decodes the qsaload -mix flag: semicolon-separated classes
// of the form
//
//	name:weight:svc1+svc2:priority[:deadline[:dtol]]
//
// e.g. "batch:0.6:work:0:0:dtol;rt:0.4:work:2:500ms". An empty spec
// yields DefaultMix.
func ParseMix(spec string) (Mix, error) {
	if strings.TrimSpace(spec) == "" {
		return DefaultMix(), nil
	}
	var m Mix
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f := strings.Split(part, ":")
		if len(f) < 4 {
			return nil, fmt.Errorf("load: mix class %q: want name:weight:services:priority[:deadline[:dtol]]", part)
		}
		w, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			return nil, fmt.Errorf("load: mix class %q: bad weight: %v", part, err)
		}
		prio, err := strconv.Atoi(f[3])
		if err != nil {
			return nil, fmt.Errorf("load: mix class %q: bad priority: %v", part, err)
		}
		c := Class{
			Name:     f[0],
			Weight:   w,
			Services: strings.Split(f[2], "+"),
			MinRate:  10,
			Priority: prio,
			Duration: time.Second,
		}
		if len(f) >= 5 && f[4] != "" && f[4] != "0" {
			d, err := time.ParseDuration(f[4])
			if err != nil {
				return nil, fmt.Errorf("load: mix class %q: bad deadline: %v", part, err)
			}
			c.Deadline = d
		}
		if len(f) >= 6 {
			c.DTolerant = f[5] == "dtol" || f[5] == "true" || f[5] == "1"
		}
		m = append(m, c)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
