package load

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/netproto"
)

func TestConstantSchedule(t *testing.T) {
	s, err := NewConstant(100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		got := s.Next()
		want := time.Duration(i) * 10 * time.Millisecond
		if got != want {
			t.Fatalf("arrival %d at %v, want %v", i, got, want)
		}
	}
}

func collect(s Schedule, n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

func TestBurstySchedule(t *testing.T) {
	const n = 4000
	a, err := NewBursty(1000, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewBursty(1000, 8, 42)
	got, again := collect(a, n), collect(b, n)
	clumped := 0
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("arrival %d: %v != %v (same seed must replay)", i, got[i], again[i])
		}
		if i > 0 {
			if got[i] < got[i-1] {
				t.Fatalf("arrival %d at %v before %d at %v", i, got[i], i-1, got[i-1])
			}
			if got[i] == got[i-1] {
				clumped++
			}
		}
	}
	// Poisson-burst clumps back-to-back arrivals at the burst epoch:
	// with mean burst 8, most arrivals share an epoch with a neighbour.
	if clumped < n/2 {
		t.Fatalf("only %d/%d arrivals clumped; bursts missing", clumped, n)
	}
	rate := float64(n) / got[n-1].Seconds()
	if rate < 700 || rate > 1400 {
		t.Fatalf("achieved rate %.0f/s, want ≈1000/s", rate)
	}
	other, _ := NewBursty(1000, 8, 43)
	if collect(other, 1)[0] == got[0] {
		t.Fatal("different seeds produced identical first arrival")
	}
}

func TestDiurnalSchedule(t *testing.T) {
	const n = 5000
	a, err := NewDiurnal(1000, 0.8, time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewDiurnal(1000, 0.8, time.Second, 7)
	got, again := collect(a, n), collect(b, n)
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("arrival %d: %v != %v (same seed must replay)", i, got[i], again[i])
		}
		if i > 0 && got[i] < got[i-1] {
			t.Fatalf("arrival %d regressed", i)
		}
	}
	rate := float64(n) / got[n-1].Seconds()
	if rate < 700 || rate > 1400 {
		t.Fatalf("achieved rate %.0f/s, want ≈1000/s", rate)
	}
	// The modulation must actually swing: arrivals per half-period
	// should differ markedly between peak and trough halves.
	var peak, trough int
	for _, at := range got {
		phase := math.Mod(at.Seconds(), 1.0)
		if phase < 0.5 {
			peak++ // sin > 0: above-base rate
		} else {
			trough++
		}
	}
	if peak < trough+n/10 {
		t.Fatalf("peak half got %d, trough %d; diurnal swing missing", peak, trough)
	}
}

func TestScheduleValidation(t *testing.T) {
	if _, err := NewConstant(0); err == nil {
		t.Error("constant rate 0 accepted")
	}
	if _, err := NewConstant(math.Inf(1)); err == nil {
		t.Error("constant rate +Inf accepted")
	}
	if _, err := NewBursty(-1, 8, 1); err == nil {
		t.Error("bursty rate -1 accepted")
	}
	if _, err := NewBursty(100, 0.5, 1); err == nil {
		t.Error("burst mean 0.5 accepted")
	}
	if _, err := NewDiurnal(0, 0.5, time.Second, 1); err == nil {
		t.Error("diurnal rate 0 accepted")
	}
	if _, err := NewDiurnal(100, 1.5, time.Second, 1); err == nil {
		t.Error("diurnal depth 1.5 accepted")
	}
	if _, err := NewDiurnal(100, 0.5, 0, 1); err == nil {
		t.Error("diurnal period 0 accepted")
	}
}

func TestParseSchedule(t *testing.T) {
	for _, kind := range []string{"constant", "bursty", "diurnal"} {
		if _, err := ParseSchedule(kind, 100, 0, 0, 0, 1); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
	if _, err := ParseSchedule("lunar", 100, 0, 0, 0, 1); err == nil {
		t.Error("unknown schedule kind accepted")
	}
	if _, err := ParseSchedule("constant", -5, 0, 0, 0, 1); err == nil {
		t.Error("bad rate accepted through ParseSchedule")
	}
}

func TestMixPick(t *testing.T) {
	m := Mix{
		{Name: "a", Weight: 3, Services: []string{"s"}},
		{Name: "b", Weight: 1, Services: []string{"s"}},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < 4000; i++ {
		c := m.Pick(99, i)
		if c != m.Pick(99, i) {
			t.Fatalf("pick %d not deterministic", i)
		}
		counts[c.Name]++
	}
	frac := float64(counts["a"]) / 4000
	if frac < 0.70 || frac > 0.80 {
		t.Fatalf("class a drew %.2f of picks, want ≈0.75", frac)
	}
}

func TestMixValidate(t *testing.T) {
	cases := []Mix{
		{},
		{{Name: "x", Weight: -1, Services: []string{"s"}}},
		{{Name: "x", Weight: 1}},
		{{Name: "x", Weight: 1, Services: []string{"s"}, Priority: -2}},
		{{Name: "x", Weight: 0, Services: []string{"s"}}},
	}
	for i, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid mix accepted", i)
		}
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("")
	if err != nil || len(m) != 3 {
		t.Fatalf("empty spec: mix %v err %v, want 3-class default", m, err)
	}
	m, err = ParseMix("batch:0.6:work:0:0:dtol; rt:0.4:a+b:2:500ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 {
		t.Fatalf("got %d classes, want 2", len(m))
	}
	if !m[0].DTolerant || m[0].Deadline != 0 || m[0].Priority != 0 {
		t.Fatalf("batch class parsed wrong: %+v", m[0])
	}
	if m[1].DTolerant || m[1].Deadline != 500*time.Millisecond || len(m[1].Services) != 2 {
		t.Fatalf("rt class parsed wrong: %+v", m[1])
	}
	for _, bad := range []string{
		"short:1:work",
		"x:notnum:work:0",
		"x:1:work:notnum",
		"x:1:work:0:notdur",
		"x:-1:work:0",
	} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// fakeCaller scripts Aggregate outcomes by global call index.
type fakeCaller struct {
	mu sync.Mutex
	n  int
	fn func(i int, req netproto.AggRequest) (*netproto.AggResult, error)
}

func (f *fakeCaller) Aggregate(req netproto.AggRequest) (*netproto.AggResult, error) {
	f.mu.Lock()
	i := f.n
	f.n++
	f.mu.Unlock()
	return f.fn(i, req)
}

func fastCfg(t *testing.T, requests int) Config {
	t.Helper()
	s, err := NewConstant(50000)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Schedule:     s,
		ScheduleName: "constant",
		RateRPS:      50000,
		Mix:          Mix{{Name: "only", Weight: 1, Services: []string{"work"}, MinRate: 10}},
		Requests:     requests,
		// Above Requests so a slow test box can never overflow the open
		// loop into drops here; TestRunnerOpenLoopDrops pins its own cap.
		MaxInFlight: requests + 1,
		Seed:        1,
	}
}

func TestRunnerOutcomes(t *testing.T) {
	fc := &fakeCaller{fn: func(i int, req netproto.AggRequest) (*netproto.AggResult, error) {
		switch i % 3 {
		case 0:
			return &netproto.AggResult{OK: true, SessionID: "s"}, nil
		case 1:
			return &netproto.AggResult{Shed: true, RetryAfter: time.Millisecond}, nil
		default:
			return nil, errTest
		}
	}}
	r, err := NewRunner(fastCfg(t, 90), fc)
	if err != nil {
		t.Fatal(err)
	}
	rep := r.Run()
	cs := rep.Classes["only"]
	if cs == nil {
		t.Fatal("class missing from report")
	}
	if cs.OK != 30 || cs.Shed != 30 || cs.Errors != 30 || cs.Sent != 90 {
		t.Fatalf("outcomes ok=%d shed=%d err=%d sent=%d, want 30/30/30/90", cs.OK, cs.Shed, cs.Errors, cs.Sent)
	}
	if cs.Latency.Count != 30 {
		t.Fatalf("latency count %d, want 30 (successes only)", cs.Latency.Count)
	}
	if rep.Total.Sent != 90 || rep.Total.OK != 30 {
		t.Fatalf("total sent=%d ok=%d, want 90/30", rep.Total.Sent, rep.Total.OK)
	}
	if rep.Throughput() <= 0 {
		t.Fatalf("throughput %.1f, want > 0", rep.Throughput())
	}
	if (&Report{}).Throughput() != 0 {
		t.Fatal("zero-wall report throughput not 0")
	}
}

func TestRunnerOpenLoopDrops(t *testing.T) {
	block := make(chan struct{})
	fc := &fakeCaller{fn: func(i int, req netproto.AggRequest) (*netproto.AggResult, error) {
		<-block
		return &netproto.AggResult{OK: true}, nil
	}}
	cfg := fastCfg(t, 10)
	cfg.MaxInFlight = 2
	r, err := NewRunner(cfg, fc)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *Report, 1)
	go func() { done <- r.Run() }()
	// The arrival clock runs 50k/s: all 10 arrivals fire in ~200µs while
	// both slots stay blocked, so 8 must be dropped, not delayed.
	time.Sleep(50 * time.Millisecond)
	close(block)
	rep := <-done
	cs := rep.Classes["only"]
	if cs.OK != 2 || cs.Dropped != 8 {
		t.Fatalf("ok=%d dropped=%d, want 2/8 (open loop must drop, not block)", cs.OK, cs.Dropped)
	}
}

func TestRunnerShedRetry(t *testing.T) {
	fc := &fakeCaller{fn: func(i int, req netproto.AggRequest) (*netproto.AggResult, error) {
		if i == 0 {
			return &netproto.AggResult{Shed: true, RetryAfter: 2 * time.Millisecond}, nil
		}
		return &netproto.AggResult{OK: true}, nil
	}}
	cfg := fastCfg(t, 1)
	cfg.ShedRetries = 2
	r, err := NewRunner(cfg, fc)
	if err != nil {
		t.Fatal(err)
	}
	rep := r.Run()
	cs := rep.Classes["only"]
	if cs.OK != 1 || cs.Retries != 1 || cs.Shed != 0 {
		t.Fatalf("ok=%d retries=%d shed=%d, want 1/1/0", cs.OK, cs.Retries, cs.Shed)
	}
}

func TestRunnerRetryRespectsDeadline(t *testing.T) {
	calls := 0
	fc := &fakeCaller{fn: func(i int, req netproto.AggRequest) (*netproto.AggResult, error) {
		calls++
		return &netproto.AggResult{Shed: true, RetryAfter: time.Hour}, nil
	}}
	cfg := fastCfg(t, 1)
	cfg.ShedRetries = 5
	cfg.Mix[0].Deadline = 10 * time.Millisecond
	r, err := NewRunner(cfg, fc)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rep := r.Run()
	if took := time.Since(start); took > time.Second {
		t.Fatalf("runner slept %v retrying past a 10ms deadline", took)
	}
	if calls != 1 || rep.Classes["only"].Shed != 1 {
		t.Fatalf("calls=%d shed=%d, want 1/1 (hour-long hint past deadline)", calls, rep.Classes["only"].Shed)
	}
}

func TestRunnerRetryFallbackBackoff(t *testing.T) {
	fc := &fakeCaller{fn: func(i int, req netproto.AggRequest) (*netproto.AggResult, error) {
		if i == 0 {
			return &netproto.AggResult{Shed: true}, nil // no hint
		}
		return &netproto.AggResult{OK: true}, nil
	}}
	cfg := fastCfg(t, 1)
	cfg.ShedRetries = 1
	cfg.RetryBackoff = 2 * time.Millisecond
	r, err := NewRunner(cfg, fc)
	if err != nil {
		t.Fatal(err)
	}
	if rep := r.Run(); rep.Total.OK != 1 || rep.Total.Retries != 1 {
		t.Fatalf("ok=%d retries=%d, want 1/1", rep.Total.OK, rep.Total.Retries)
	}
}

func TestRunnerValidation(t *testing.T) {
	good := fastCfg(t, 10)
	fc := &fakeCaller{fn: func(int, netproto.AggRequest) (*netproto.AggResult, error) {
		return &netproto.AggResult{OK: true}, nil
	}}
	if _, err := NewRunner(good, nil); err == nil {
		t.Error("nil caller accepted")
	}
	bad := good
	bad.Schedule = nil
	if _, err := NewRunner(bad, fc); err == nil {
		t.Error("nil schedule accepted")
	}
	bad = good
	bad.Requests = 0
	if _, err := NewRunner(bad, fc); err == nil {
		t.Error("0 requests accepted")
	}
	bad = good
	bad.MaxInFlight = -1
	if _, err := NewRunner(bad, fc); err == nil {
		t.Error("negative in-flight accepted")
	}
	bad = good
	bad.ShedRetries = -1
	if _, err := NewRunner(bad, fc); err == nil {
		t.Error("negative retries accepted")
	}
	bad = good
	bad.Mix = nil
	if _, err := NewRunner(bad, fc); err == nil {
		t.Error("empty mix accepted")
	}
}

func TestMergeReports(t *testing.T) {
	mk := func(okLat []float64, shed uint64) *Report {
		c := newCollector()
		for _, l := range okLat {
			c.record("a", outcomeOK, l, 0)
		}
		for i := uint64(0); i < shed; i++ {
			c.record("a", outcomeShed, 0, 1)
		}
		return c.snapshot("constant", 100, 2)
	}
	a := mk([]float64{0.010, 0.020}, 1)
	b := mk([]float64{0.040}, 2)
	m := MergeReports(a, b, nil)
	if m.Total.OK != 3 || m.Total.Shed != 3 || m.Total.Retries != 3 {
		t.Fatalf("merged ok=%d shed=%d retries=%d, want 3/3/3", m.Total.OK, m.Total.Shed, m.Total.Retries)
	}
	if m.RateRPS != 200 || m.WallSec != 2 {
		t.Fatalf("rate=%g wall=%g, want 200/2 (rates add, walls max)", m.RateRPS, m.WallSec)
	}
	cs := m.Classes["a"]
	if cs.Latency.Count != 3 {
		t.Fatalf("merged latency count %d, want 3", cs.Latency.Count)
	}
	// Merged quantile is computed from combined buckets, not averaged:
	// the max sits in the 40ms bucket (log buckets → midpoint ≤ a few %).
	if p := cs.Latency.Quantile(1.0); math.Abs(p-0.040) > 0.004 {
		t.Fatalf("merged p100 %.4f, want ≈0.040", p)
	}
	if m.Schedule != "constant" {
		t.Fatalf("schedule %q, want constant", m.Schedule)
	}
}

var errTest = errTestType{}

type errTestType struct{}

func (errTestType) Error() string { return "scripted failure" }
