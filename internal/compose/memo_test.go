package compose

import (
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/service"
	"repro/internal/xrand"
)

func TestMemoMatchesDirectEvaluation(t *testing.T) {
	m := NewMemo()
	a := inst("a", "X", "M", 1, 1)
	b := inst("b", "M", "A", 1, 1)
	for i := 0; i < 3; i++ {
		if m.CanFeed(a, b) != a.CanFeed(b) {
			t.Fatal("memoized CanFeed disagrees with direct evaluation")
		}
		if m.CanFeed(b, a) != b.CanFeed(a) {
			t.Fatal("memoized CanFeed disagrees on the false case")
		}
		if m.SatisfiesUser(b, userA) != qos.Satisfies(b.Qout, userA) {
			t.Fatal("memoized SatisfiesUser disagrees with direct evaluation")
		}
		if m.SatisfiesUser(a, userA) != qos.Satisfies(a.Qout, userA) {
			t.Fatal("memoized SatisfiesUser disagrees on the false case")
		}
	}
}

func TestMemoNilSafe(t *testing.T) {
	var m *Memo
	a := inst("a", "X", "M", 1, 1)
	b := inst("b", "M", "A", 1, 1)
	if !m.CanFeed(a, b) || m.CanFeed(b, a) {
		t.Fatal("nil memo must delegate CanFeed")
	}
	if !m.SatisfiesUser(b, userA) || m.SatisfiesUser(a, userA) {
		t.Fatal("nil memo must delegate SatisfiesUser")
	}
}

func TestMemoCountsHitsAndMisses(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMemo()
	m.Obs = obs.NewMemoCounters(reg)
	a := inst("a", "X", "M", 1, 1)
	b := inst("b", "M", "A", 1, 1)
	m.CanFeed(a, b)
	m.CanFeed(a, b)
	m.CanFeed(a, b)
	if h, ms := m.Obs.FeedHits.Value(), m.Obs.FeedMisses.Value(); h != 2 || ms != 1 {
		t.Fatalf("feed hits/misses = %d/%d, want 2/1", h, ms)
	}
	m.SatisfiesUser(b, userA)
	m.SatisfiesUser(b, userA)
	if h, ms := m.Obs.UserHits.Value(), m.Obs.UserMisses.Value(); h != 1 || ms != 1 {
		t.Fatalf("user hits/misses = %d/%d, want 1/1", h, ms)
	}
}

func TestMemoUserMapCapped(t *testing.T) {
	m := NewMemo()
	keep := make([]qos.Vector, 0, maxUserMemo+10)
	in := inst("a", "X", "A", 1, 1)
	for i := 0; i < maxUserMemo+10; i++ {
		v := qos.MustVector(qos.Sym("format", "A"))
		keep = append(keep, v)
		if !m.SatisfiesUser(in, v) {
			t.Fatal("satisfied check reported false")
		}
	}
	if len(m.user) > maxUserMemo {
		t.Fatalf("user memo grew to %d, cap is %d", len(m.user), maxUserMemo)
	}
	_ = keep
}

// memoLayers is a three-hop fixture where the lexically-first candidates
// at the final and middle layers are dead ends, forcing both baseline
// composers to backtrack across layers before finding the unique
// consistent path a2 -> b2 -> c2.
func memoLayers() [][]*service.Instance {
	return [][]*service.Instance{
		{
			inst("a1", "X", "K", 1, 1), // feeds only the dead b1
			inst("a2", "X", "M", 2, 2),
		},
		{
			inst("b1", "K", "A", 1, 1), // fed only by a1, feeds nobody's chain
			inst("b2", "M", "N", 2, 2),
		},
		{
			inst("c1", "Q", "A", 1, 1), // satisfies the user but cannot be fed
			inst("c2", "N", "A", 2, 2),
		},
	}
}

func TestFixedBacktracksAcrossLayers(t *testing.T) {
	layers := memoLayers()
	p, err := Fixed(layers, userA, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a2", "b2", "c2"}
	for i, in := range p.Instances {
		if in.ID != want[i] {
			t.Fatalf("fixed path[%d] = %s, want %s", i, in.ID, want[i])
		}
	}
	if !Consistent(p.Instances, userA) {
		t.Fatal("fixed path must satisfy Consistent")
	}
}

func TestBacktrackingNoPath(t *testing.T) {
	// Remove the only consistent chain's tail: every composer must report
	// ErrNoConsistentPath, memoized or not.
	layers := memoLayers()
	layers[2] = layers[2][:1] // only the unfeedable c1 remains
	cfg := Config{Memo: NewMemo(), Scratch: NewScratch()}
	for name, run := range map[string]func() error{
		"qcs":    func() error { _, err := QCS(layers, userA, cfg); return err },
		"random": func() error { _, err := Random(layers, userA, xrand.New(1), cfg); return err },
		"fixed":  func() error { _, err := Fixed(layers, userA, cfg); return err },
	} {
		if err := run(); err != ErrNoConsistentPath {
			t.Fatalf("%s: err = %v, want ErrNoConsistentPath", name, err)
		}
	}
}

func TestMemoizedComposersMatchPlain(t *testing.T) {
	// Same fixture, same seeds: the memo+scratch pipeline must produce
	// exactly the paths of the buffer-free pipeline, for all three
	// composers, across repeated runs that alternate graph shapes (so the
	// scratch is exercised at several high-water marks).
	memo := NewMemo()
	scratch := NewScratch()
	fast := Config{Memo: memo, Scratch: scratch}
	plain := Config{}
	rngFast, rngPlain := xrand.New(99), xrand.New(99)

	small := memoLayers()
	big := memoLayers()
	big[1] = append([]*service.Instance{inst("b0", "M", "N", 9, 9)}, big[1]...)

	for round := 0; round < 6; round++ {
		layers := small
		if round%2 == 1 {
			layers = big
		}
		for name, pair := range map[string][2]func() (*Path, error){
			"qcs": {
				func() (*Path, error) { return QCS(layers, userA, fast) },
				func() (*Path, error) { return QCS(layers, userA, plain) },
			},
			"random": {
				func() (*Path, error) { return Random(layers, userA, rngFast, fast) },
				func() (*Path, error) { return Random(layers, userA, rngPlain, plain) },
			},
			"fixed": {
				func() (*Path, error) { return Fixed(layers, userA, fast) },
				func() (*Path, error) { return Fixed(layers, userA, plain) },
			},
		} {
			a, errA := pair[0]()
			b, errB := pair[1]()
			if (errA == nil) != (errB == nil) {
				t.Fatalf("%s round %d: error mismatch %v vs %v", name, round, errA, errB)
			}
			if errA != nil {
				continue
			}
			if fmt.Sprint(pathIDs(a)) != fmt.Sprint(pathIDs(b)) || a.Cost != b.Cost {
				t.Fatalf("%s round %d: %v (%v) vs %v (%v)", name, round, pathIDs(a), a.Cost, pathIDs(b), b.Cost)
			}
			if !Consistent(a.Instances, userA) {
				t.Fatalf("%s round %d: inconsistent path", name, round)
			}
		}
	}
}

func pathIDs(p *Path) []string {
	ids := make([]string, len(p.Instances))
	for i, in := range p.Instances {
		ids[i] = in.ID
	}
	return ids
}
