package compose

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/catalog"
	"repro/internal/qos"
	"repro/internal/resource"
	"repro/internal/service"
	"repro/internal/xrand"
)

// inst builds a test instance with format-based consistency: accepts
// inFmt, produces outFmt, with resource demand r and edge bandwidth b.
func inst(id string, inFmt, outFmt string, r, b float64) *service.Instance {
	return &service.Instance{
		ID:      id,
		Service: "svc",
		Qin:     qos.MustVector(qos.Sym("format", inFmt)),
		Qout:    qos.MustVector(qos.Sym("format", outFmt)),
		R:       resource.Vec2(r, r),
		OutKbps: b,
	}
}

var userA = qos.MustVector(qos.Sym("format", "A"))

func TestQCSPicksCheapestConsistent(t *testing.T) {
	// Layer 0 feeds layer 1, layer 1 feeds the user (format A).
	layers := [][]*service.Instance{
		{
			inst("s0-cheap", "X", "M", 10, 100),
			inst("s0-pricy", "X", "M", 500, 100),
		},
		{
			inst("s1-pricy", "M", "A", 400, 100),
			inst("s1-cheap", "M", "A", 20, 100),
		},
	}
	p, err := QCS(layers, userA, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Instances[0].ID != "s0-cheap" || p.Instances[1].ID != "s1-cheap" {
		t.Fatalf("QCS chose %v", []string{p.Instances[0].ID, p.Instances[1].ID})
	}
	if !Consistent(p.Instances, userA) {
		t.Fatal("QCS path must be consistent")
	}
	want := Config{}.PathCost(p.Instances)
	if math.Abs(p.Cost-want) > 1e-12 {
		t.Fatalf("Cost = %v, want %v", p.Cost, want)
	}
}

func TestQCSRespectsConsistencyOverCost(t *testing.T) {
	// The cheap final instance produces the wrong format; QCS must pay for
	// the consistent one.
	layers := [][]*service.Instance{
		{inst("s0", "X", "M", 10, 100)},
		{
			inst("s1-wrongfmt", "M", "B", 1, 1),
			inst("s1-right", "M", "A", 300, 100),
		},
	}
	p, err := QCS(layers, userA, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Instances[1].ID != "s1-right" {
		t.Fatal("QCS chose a QoS-inconsistent final instance")
	}
}

func TestQCSGlobalOptimumOverGreedy(t *testing.T) {
	// A greedy (per-layer cheapest) choice is trapped: the cheap layer-1
	// instance only accepts format G, whose producer is very expensive.
	layers := [][]*service.Instance{
		{
			inst("s0-G", "X", "G", 900, 100), // expensive producer of G
			inst("s0-M", "X", "M", 50, 100),
		},
		{
			inst("s1-cheap-G", "G", "A", 10, 100),
			inst("s1-M", "M", "A", 100, 100),
		},
	}
	p, err := QCS(layers, userA, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Global optimum: s0-M (50) + s1-M (100) = 150 < s0-G (900) + s1-cheap-G (10).
	if p.Instances[0].ID != "s0-M" || p.Instances[1].ID != "s1-M" {
		t.Fatalf("QCS not globally optimal: %s, %s", p.Instances[0].ID, p.Instances[1].ID)
	}
}

func TestQCSBandwidthInCost(t *testing.T) {
	// Equal R; bandwidth term must break the tie.
	layers := [][]*service.Instance{{
		inst("hungry", "M", "A", 100, 9000),
		inst("lean", "M", "A", 100, 56),
	}}
	p, err := QCS(layers, userA, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Instances[0].ID != "lean" {
		t.Fatal("bandwidth term ignored in edge cost")
	}
}

func TestQCSNoPath(t *testing.T) {
	layers := [][]*service.Instance{
		{inst("s0", "X", "M", 10, 1)},
		{inst("s1", "K", "A", 10, 1)}, // cannot be fed: wants K, gets M
	}
	if _, err := QCS(layers, userA, Config{}); err != ErrNoConsistentPath {
		t.Fatalf("err = %v, want ErrNoConsistentPath", err)
	}
	// User requirement unsatisfiable.
	layers2 := [][]*service.Instance{{inst("s", "X", "B", 1, 1)}}
	if _, err := QCS(layers2, userA, Config{}); err != ErrNoConsistentPath {
		t.Fatalf("err = %v", err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := QCS(nil, userA, Config{}); err == nil {
		t.Fatal("empty layers must fail")
	}
	layers := [][]*service.Instance{{inst("s", "X", "A", 1, 1)}, {}}
	if _, err := QCS(layers, userA, Config{}); err == nil {
		t.Fatal("empty layer must fail")
	}
	if _, err := Random(nil, userA, xrand.New(1), Config{}); err == nil {
		t.Fatal("Random on empty layers must fail")
	}
	if _, err := Fixed(nil, userA, Config{}); err == nil {
		t.Fatal("Fixed on empty layers must fail")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := (Config{Weights: []float64{0.5, 0.5, 0.5}}).Validate(); err == nil {
		t.Fatal("weights summing to 1.5 must fail eq. 3")
	}
	if err := (Config{Weights: []float64{1.2, -0.2}}).Validate(); err == nil {
		t.Fatal("negative weight must fail")
	}
	if err := (Config{Weights: []float64{0.5, 0.25, 0.25}, RMax: -1}).Validate(); err == nil {
		t.Fatal("negative RMax must fail")
	}
}

func TestEdgeCostFormula(t *testing.T) {
	cfg := Config{Weights: []float64{0.25, 0.25, 0.5}, RMax: 1000, BMax: 10000}
	in := inst("x", "M", "A", 100, 500)
	got := cfg.EdgeCost(in)
	want := 0.25*100/1000 + 0.25*100/1000 + 0.5*500/10000
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("EdgeCost = %v, want %v", got, want)
	}
}

func TestRandomConsistentAndDiverse(t *testing.T) {
	layers := [][]*service.Instance{
		{
			inst("a1", "X", "M", 10, 10),
			inst("a2", "X", "M", 20, 10),
		},
		{
			inst("b1", "M", "A", 10, 10),
			inst("b2", "M", "A", 20, 10),
		},
	}
	rng := xrand.New(3)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		p, err := Random(layers, userA, rng, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if !Consistent(p.Instances, userA) {
			t.Fatal("random path inconsistent")
		}
		seen[p.Instances[0].ID+p.Instances[1].ID] = true
	}
	if len(seen) < 3 {
		t.Fatalf("random composer not diverse: %d distinct paths", len(seen))
	}
}

func TestRandomBacktracksThroughDeadEnds(t *testing.T) {
	// b-dead cannot be fed by any layer-0 instance; random must always
	// recover via backtracking.
	layers := [][]*service.Instance{
		{inst("a", "X", "M", 10, 10)},
		{
			inst("b-dead", "K", "A", 1, 1),
			inst("b-ok", "M", "A", 10, 10),
		},
	}
	rng := xrand.New(4)
	for i := 0; i < 50; i++ {
		p, err := Random(layers, userA, rng, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if p.Instances[1].ID != "b-ok" {
			t.Fatal("random produced an inconsistent path")
		}
	}
}

func TestFixedDeterministic(t *testing.T) {
	layers := [][]*service.Instance{
		{
			inst("a1", "X", "M", 10, 10),
			inst("a2", "X", "M", 20, 10),
		},
		{
			inst("b1", "M", "A", 10, 10),
			inst("b2", "M", "A", 20, 10),
		},
	}
	first, err := Fixed(layers, userA, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p, err := Fixed(layers, userA, Config{})
		if err != nil {
			t.Fatal(err)
		}
		for j := range p.Instances {
			if p.Instances[j] != first.Instances[j] {
				t.Fatal("fixed composer must always pick the same path")
			}
		}
	}
	if !Consistent(first.Instances, userA) {
		t.Fatal("fixed path inconsistent")
	}
}

func TestConsistentHelper(t *testing.T) {
	a := inst("a", "X", "M", 1, 1)
	b := inst("b", "M", "A", 1, 1)
	if !Consistent([]*service.Instance{a, b}, userA) {
		t.Fatal("valid chain reported inconsistent")
	}
	if Consistent([]*service.Instance{b, a}, userA) {
		t.Fatal("reversed chain reported consistent")
	}
	if Consistent(nil, userA) {
		t.Fatal("empty chain must be inconsistent")
	}
}

// Property on the generated catalog: whenever QCS finds a path, the path
// is consistent, spans every layer, and no other consistent path found by
// the random composer is cheaper.
func TestPropertyQCSOptimalOnCatalog(t *testing.T) {
	cat, err := catalog.New(catalog.Default(7))
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(8)
	cfg := Config{}
	checked := 0
	for trial := 0; trial < 60; trial++ {
		req := cat.SampleRequest(rng)
		layers := make([][]*service.Instance, 0, len(req.App.Path))
		for _, name := range req.App.Path {
			layers = append(layers, cat.InstancesOf(name))
		}
		best, err := QCS(layers, req.UserQoS, cfg)
		if err == ErrNoConsistentPath {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		checked++
		if len(best.Instances) != len(layers) {
			t.Fatal("QCS path does not span all layers")
		}
		if !Consistent(best.Instances, req.UserQoS) {
			t.Fatal("QCS path inconsistent on catalog instances")
		}
		for probe := 0; probe < 30; probe++ {
			rp, err := Random(layers, req.UserQoS, rng, cfg)
			if err != nil {
				t.Fatal("random failed where QCS succeeded")
			}
			if rp.Cost < best.Cost-1e-9 {
				t.Fatalf("random found cheaper path: %v < %v", rp.Cost, best.Cost)
			}
		}
	}
	if checked < 20 {
		t.Fatalf("only %d of 60 catalog requests were composable; catalog too tight", checked)
	}
}

// Property: path cost equals the sum of edge costs, for arbitrary weights.
func TestPropertyCostAdditive(t *testing.T) {
	check := func(r1, r2, b1, b2 uint16) bool {
		cfg := Config{}
		a := inst("a", "X", "M", float64(r1), float64(b1))
		b := inst("b", "M", "A", float64(r2), float64(b2))
		total := cfg.PathCost([]*service.Instance{a, b})
		return math.Abs(total-(cfg.EdgeCost(a)+cfg.EdgeCost(b))) < 1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// enumerate returns the cheapest consistent path cost by brute force.
func enumerate(layers [][]*service.Instance, userQoS qos.Vector, cfg Config) (float64, bool) {
	best := math.Inf(1)
	found := false
	var rec func(k int, next *service.Instance, cost float64)
	rec = func(k int, next *service.Instance, cost float64) {
		if k < 0 {
			if cost < best {
				best = cost
			}
			found = true
			return
		}
		for _, in := range layers[k] {
			okHere := false
			if next == nil {
				okHere = qos.Satisfies(in.Qout, userQoS)
			} else {
				okHere = in.CanFeed(next)
			}
			if okHere {
				rec(k-1, in, cost+cfg.EdgeCost(in))
			}
		}
	}
	rec(len(layers)-1, nil, 0)
	return best, found
}

// Property: QCS matches exhaustive enumeration on random small layered
// graphs (costs, formats and consistency all randomized).
func TestPropertyQCSMatchesBruteForce(t *testing.T) {
	rng := xrand.New(99)
	cfg := Config{}
	formats := []string{"A", "B", "C"}
	for trial := 0; trial < 300; trial++ {
		nLayers := rng.IntRange(1, 4)
		layers := make([][]*service.Instance, nLayers)
		id := 0
		for k := range layers {
			n := rng.IntRange(1, 5)
			for i := 0; i < n; i++ {
				layers[k] = append(layers[k], inst(
					fmt.Sprintf("i%d", id),
					formats[rng.Intn(3)],
					formats[rng.Intn(3)],
					rng.FloatRange(1, 500),
					rng.FloatRange(1, 500),
				))
				id++
			}
		}
		user := qos.MustVector(qos.Sym("format", formats[rng.Intn(3)]))
		want, feasible := enumerate(layers, user, cfg)
		got, err := QCS(layers, user, cfg)
		if !feasible {
			if err != ErrNoConsistentPath {
				t.Fatalf("trial %d: QCS found a path where none exists", trial)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: QCS failed on feasible graph: %v", trial, err)
		}
		if math.Abs(got.Cost-want) > 1e-9 {
			t.Fatalf("trial %d: QCS cost %v, brute force %v", trial, got.Cost, want)
		}
	}
}

func TestSingleLayerPath(t *testing.T) {
	// Single-hop aggregation (the paper's content-retrieval example).
	layers := [][]*service.Instance{{
		inst("x1", "X", "A", 50, 10),
		inst("x2", "X", "A", 10, 10),
	}}
	p, err := QCS(layers, userA, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Instances[0].ID != "x2" {
		t.Fatal("single-layer QCS must pick the cheapest satisfying instance")
	}
}
