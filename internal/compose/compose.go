// Package compose implements the on-demand service composition tier of QSA
// (paper §3.2): choosing, among all discovered candidate service instances,
// a QoS-consistent service path with minimum aggregated resource
// requirements — the QCS ("QoS consistent and shortest") algorithm — plus
// the paper's two baseline composers, random and fixed.
//
// The instance candidates form a layered graph: layer k holds the
// instances of the k-th abstract service of the application, in
// aggregation-flow order (source = layer 0 … last processing component =
// layer n−1), with the user's host as the data sink. QCS:
//
//  1. adds a directed edge between instances of adjacent layers when the
//     predecessor's Qout satisfies the successor's Qin (eq. 1), and from
//     the final layer to the user when Qout satisfies the user's
//     end-to-end QoS requirement;
//  2. prices each edge into predecessor B with the resource tuple
//     (R_B, b_{B,A}) of Definition 3.1, scalarized as
//     Σᵢ wᵢ·rᵢ/rᵢᵐᵃˣ + w_{m+1}·b/bᵐᵃˣ — the definition's weighted
//     normalized comparison is linear, so comparing summed scalar costs is
//     exactly comparing aggregated tuples, and ordinary Dijkstra applies
//     (the sink side's own resource demand is excluded, footnote 3);
//  3. runs Dijkstra from the user node in the reverse direction of the
//     aggregation flow (as in the paper's Figure 3) and stops at the first
//     settled source-layer instance.
//
// Complexity is O(K·V²) in the paper's notation (V candidate instances per
// service, K services).
package compose

import (
	"container/heap"
	"errors"
	"fmt"

	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/service"
	"repro/internal/xrand"
)

// ErrNoConsistentPath is returned when no QoS-consistent service path
// exists for the request.
var ErrNoConsistentPath = errors.New("compose: no QoS-consistent service path")

// Config holds the Definition 3.1 weighting and normalization constants.
type Config struct {
	// Weights are w₁…w_m for the end-system resource dimensions followed by
	// w_{m+1} for network bandwidth; they must sum to 1 (eq. 3). The paper's
	// evaluation distributes importance uniformly — the default is
	// [1/3, 1/3, 1/3] for (cpu, memory, bandwidth).
	Weights []float64
	// RMax is rᵢᵐᵃˣ, the normalization constant for end-system resources
	// (default 1000 units, the largest peer capacity).
	RMax float64
	// BMax is bᵐᵃˣ, the normalization constant for bandwidth (default
	// 10000 kbps, the largest pairwise class).
	BMax float64
	// Obs receives composition work counters (graph size, Dijkstra
	// relaxations). The zero value disables the accounting.
	Obs obs.ComposeCounters
	// Memo caches QoS-compatibility outcomes across composition runs (nil:
	// every check is evaluated).
	Memo *Memo
	// Scratch reuses the composer's working buffers across runs (nil:
	// buffers are allocated per run). Not safe for concurrent use.
	Scratch *Scratch
}

// Scratch holds the reusable working memory of one composition pipeline:
// the Dijkstra node slab, layer offsets, the priority-queue backing array,
// and per-layer candidate-order buffers for the backtracking baselines.
// The zero value is ready to use; buffers grow to the high-water mark and
// are then reused allocation-free. A Scratch serves one goroutine.
type Scratch struct {
	slab  []node
	off   []int
	heap  nodeHeap
	perms [][]int
}

// NewScratch returns an empty scratch arena.
func NewScratch() *Scratch { return &Scratch{} }

func (s *Scratch) ensurePerms(k int) {
	for len(s.perms) < k {
		s.perms = append(s.perms, nil)
	}
}

func (c *Config) fillDefaults() {
	if len(c.Weights) == 0 {
		// lint:allow hotalloc zero-value config defaulting; the aggregator holds one persistent config, so the steady state skips this
		c.Weights = []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	}
	if c.RMax == 0 {
		c.RMax = 1000
	}
	if c.BMax == 0 {
		c.BMax = 10000
	}
}

// Validate checks the weight vector against eq. 3.
func (c Config) Validate() error {
	cc := c
	cc.fillDefaults()
	var sum float64
	for _, w := range cc.Weights {
		if w < 0 {
			return fmt.Errorf("compose: negative weight %v", w)
		}
		sum += w
	}
	if sum < 1-1e-9 || sum > 1+1e-9 {
		return fmt.Errorf("compose: weights sum to %v, want 1", sum)
	}
	if cc.RMax <= 0 || cc.BMax <= 0 {
		return fmt.Errorf("compose: non-positive normalization constants")
	}
	return nil
}

// EdgeCost prices the edge into predecessor instance b — the scalarized
// Definition 3.1 tuple (R_b, b.OutKbps).
func (c Config) EdgeCost(b *service.Instance) float64 {
	cc := c
	cc.fillDefaults()
	m := len(cc.Weights) - 1
	var cost float64
	for i := 0; i < m && i < len(b.R); i++ {
		cost += cc.Weights[i] * b.R[i] / cc.RMax
	}
	cost += cc.Weights[m] * b.OutKbps / cc.BMax
	return cost
}

// Path is a composed, QoS-consistent service path in aggregation-flow
// order (source first) with its aggregated Definition 3.1 cost.
type Path struct {
	Instances []*service.Instance
	Cost      float64
}

// PathCost recomputes the aggregated cost of an instance sequence.
func (c Config) PathCost(instances []*service.Instance) float64 {
	var cost float64
	for _, in := range instances {
		cost += c.EdgeCost(in)
	}
	return cost
}

// Consistent reports whether the instance sequence is QoS-consistent end
// to end, including the final hop to the user requirement.
func Consistent(instances []*service.Instance, userQoS qos.Vector) bool {
	for i := 0; i+1 < len(instances); i++ {
		if !instances[i].CanFeed(instances[i+1]) {
			return false
		}
	}
	if len(instances) == 0 {
		return false
	}
	return qos.Satisfies(instances[len(instances)-1].Qout, userQoS)
}

// node addresses one instance in the layered graph during Dijkstra.
type node struct {
	layer, idx int
	dist       float64
	heapIdx    int
	settled    bool
	parent     *node // toward the user side (layer+1), nil for final layer
}

type nodeHeap []*node

func (h nodeHeap) Len() int           { return len(h) }
func (h nodeHeap) Less(i, j int) bool { return h[i].dist < h[j].dist }
func (h nodeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].heapIdx = i; h[j].heapIdx = j }
func (h *nodeHeap) Push(x any)        { n := x.(*node); n.heapIdx = len(*h); *h = append(*h, n) }
func (h *nodeHeap) Pop() any          { old := *h; n := old[len(old)-1]; *h = old[:len(old)-1]; return n }

func validateLayers(layers [][]*service.Instance) error {
	if len(layers) == 0 {
		return fmt.Errorf("compose: empty service path")
	}
	for k, layer := range layers {
		if len(layer) == 0 {
			return fmt.Errorf("compose: no candidate instances for service at hop %d", k)
		}
	}
	return nil
}

// QCS composes the QoS-consistent, resource-shortest service path for the
// layered candidates and the user's end-to-end QoS requirement. With
// cfg.Scratch set the node graph and priority queue live in reused
// buffers; with cfg.Memo set the compatibility checks are served from the
// memo — neither changes the result.
// lint:hotpath QCS relaxation is the per-request inner loop; Scratch/Memo exist so it stays allocation-free
func QCS(layers [][]*service.Instance, userQoS qos.Vector, cfg Config) (*Path, error) {
	if err := validateLayers(layers); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	cfg.Obs.Runs.Inc()

	sc := cfg.Scratch
	if sc == nil {
		// lint:allow hotalloc fallback for callers without a Scratch; the steady-state bench always supplies one
		sc = &Scratch{}
	}
	total := 0
	for _, layer := range layers {
		total += len(layer)
	}
	// Size the slab before taking node pointers: the graph must not grow
	// (and relocate) once *node handles exist.
	if cap(sc.slab) < total {
		// lint:allow hotalloc grow-once slab warm-up; amortizes to zero once sized for the topology
		sc.slab = make([]node, total)
	}
	sc.slab = sc.slab[:total]
	if cap(sc.off) < len(layers) {
		// lint:allow hotalloc grow-once warm-up; amortizes to zero once sized
		sc.off = make([]int, len(layers))
	}
	sc.off = sc.off[:len(layers)]
	at := 0
	for k, layer := range layers {
		sc.off[k] = at
		for i := range layer {
			sc.slab[at] = node{layer: k, idx: i, dist: -1, heapIdx: -1}
			at++
		}
		cfg.Obs.Vertices.Add(uint64(len(layer)))
	}

	sc.heap = sc.heap[:0]
	h := &sc.heap
	last := len(layers) - 1
	// Seed: edges from the virtual user node to final-layer instances whose
	// Qout satisfies the user requirement.
	for i, in := range layers[last] {
		if !cfg.Memo.SatisfiesUser(in, userQoS) {
			continue
		}
		cfg.Obs.Edges.Inc()
		n := &sc.slab[sc.off[last]+i]
		n.dist = cfg.EdgeCost(in)
		cfg.Obs.Relaxations.Inc()
		heap.Push(h, n)
	}

	for h.Len() > 0 {
		cur := heap.Pop(h).(*node)
		if cur.settled {
			continue
		}
		cur.settled = true
		if cur.layer == 0 {
			// First settled source instance: shortest aggregated cost.
			// lint:allow hotalloc the composed path is the one output allocation per request, inside the 21 allocs/op budget
			out := make([]*service.Instance, 0, len(layers))
			for n := cur; n != nil; n = n.parent {
				out = append(out, layers[n.layer][n.idx])
			}
			// lint:allow hotalloc one Path record per composed request, inside the budget
			return &Path{Instances: out, Cost: cur.dist}, nil
		}
		curInst := layers[cur.layer][cur.idx]
		for j, pred := range layers[cur.layer-1] {
			if !cfg.Memo.CanFeed(pred, curInst) {
				continue
			}
			cfg.Obs.Edges.Inc()
			n := &sc.slab[sc.off[cur.layer-1]+j]
			if n.settled {
				continue
			}
			d := cur.dist + cfg.EdgeCost(pred)
			if n.dist < 0 || d < n.dist {
				cfg.Obs.Relaxations.Inc()
				n.dist = d
				n.parent = cur
				if n.heapIdx >= 0 {
					heap.Fix(h, n.heapIdx)
				} else {
					heap.Push(h, n)
				}
			}
		}
	}
	cfg.Obs.NoPath.Inc()
	return nil, ErrNoConsistentPath
}

// backtrack builds a consistent path visiting layers from the user side
// toward the source, trying candidates in the order given by order (which
// may reuse a per-layer buffer: re-entries to a layer only happen after
// the previous iteration at that layer has fully unwound). chosen is
// filled in reverse (index last..0).
func backtrack(layers [][]*service.Instance, userQoS qos.Vector, memo *Memo,
	chosen []*service.Instance, layer int, order func(layer, n int) []int) bool {
	if layer < 0 {
		return true
	}
	// lint:allow hotalloc strategy callback installed by the composer; its literal is flagged and justified at its creation site
	for _, i := range order(layer, len(layers[layer])) {
		cand := layers[layer][i]
		if layer == len(layers)-1 {
			if !memo.SatisfiesUser(cand, userQoS) {
				continue
			}
		} else if !memo.CanFeed(cand, chosen[layer+1]) {
			continue
		}
		chosen[layer] = cand
		if backtrack(layers, userQoS, memo, chosen, layer-1, order) {
			return true
		}
	}
	return false
}

// Random composes a QoS-consistent path chosen without regard to resource
// consumption — the paper's random baseline composer. It randomizes the
// candidate order at every layer and backtracks on dead ends.
func Random(layers [][]*service.Instance, userQoS qos.Vector, rng *xrand.Source, cfg Config) (*Path, error) {
	if err := validateLayers(layers); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	sc := cfg.Scratch
	if sc == nil {
		// lint:allow hotalloc baseline composer; only QCS is the allocation-tuned path
		sc = &Scratch{}
	}
	sc.ensurePerms(len(layers))
	// lint:allow hotalloc baseline composer allocates its result by design; only QCS is the allocation-tuned path
	chosen := make([]*service.Instance, len(layers))
	// lint:allow hotalloc permutation callback closure; baseline composer is outside the tuned budget
	ok := backtrack(layers, userQoS, cfg.Memo, chosen, len(layers)-1, func(layer, n int) []int {
		sc.perms[layer] = rng.PermInto(sc.perms[layer], n)
		return sc.perms[layer]
	})
	if !ok {
		return nil, ErrNoConsistentPath
	}
	// lint:allow hotalloc baseline composer result record
	return &Path{Instances: chosen, Cost: cfg.PathCost(chosen)}, nil
}

// Fixed composes the same QoS-consistent path every time for the same
// candidate sets and user requirement — the paper's fixed baseline,
// representing a conventional client-server deployment. It is the first
// consistent path in deterministic candidate order.
func Fixed(layers [][]*service.Instance, userQoS qos.Vector, cfg Config) (*Path, error) {
	if err := validateLayers(layers); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	sc := cfg.Scratch
	if sc == nil {
		// lint:allow hotalloc baseline composer; only QCS is the allocation-tuned path
		sc = &Scratch{}
	}
	sc.ensurePerms(len(layers))
	// lint:allow hotalloc baseline composer allocates its result by design; only QCS is the allocation-tuned path
	chosen := make([]*service.Instance, len(layers))
	// lint:allow hotalloc index-order callback closure; baseline composer is outside the tuned budget
	ok := backtrack(layers, userQoS, cfg.Memo, chosen, len(layers)-1, func(layer, n int) []int {
		p := sc.perms[layer]
		if cap(p) < n {
			p = make([]int, n)
		}
		p = p[:n]
		for i := range p {
			p[i] = i
		}
		sc.perms[layer] = p
		return p
	})
	if !ok {
		return nil, ErrNoConsistentPath
	}
	// lint:allow hotalloc baseline composer result record
	return &Path{Instances: chosen, Cost: cfg.PathCost(chosen)}, nil
}
