package compose

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/qos"
	"repro/internal/service"
)

// WriteDOT renders the layered QoS-consistency graph as Graphviz DOT —
// the picture of the paper's Figure 3: one column per abstract service,
// edges where the predecessor's Qout satisfies the successor's Qin, the
// user node on the right, and (optionally) a chosen path highlighted.
//
// chosen may be nil; when given it must be one instance per layer.
func WriteDOT(w io.Writer, layers [][]*service.Instance, userQoS qos.Vector, chosen []*service.Instance) error {
	if err := validateLayers(layers); err != nil {
		return err
	}
	if chosen != nil && len(chosen) != len(layers) {
		return fmt.Errorf("compose: chosen path has %d instances for %d layers", len(chosen), len(layers))
	}
	onPath := make(map[*service.Instance]bool, len(chosen))
	for _, in := range chosen {
		onPath[in] = true
	}
	esc := func(s string) string { return strings.ReplaceAll(s, `"`, `\"`) }

	var b strings.Builder
	b.WriteString("digraph qcs {\n")
	b.WriteString("    rankdir=LR;\n")
	b.WriteString("    node [shape=box, fontsize=11];\n")
	for k, layer := range layers {
		fmt.Fprintf(&b, "    subgraph cluster_%d {\n", k)
		fmt.Fprintf(&b, "        label=\"%s\";\n", esc(string(layer[0].Service)))
		for _, in := range layer {
			attr := ""
			if onPath[in] {
				attr = ", style=filled, fillcolor=\"#cfe8ff\""
			}
			fmt.Fprintf(&b, "        \"%s\" [label=\"%s\\nR=%s b=%g\"%s];\n",
				esc(in.ID), esc(in.ID), in.R.String(), in.OutKbps, attr)
		}
		b.WriteString("    }\n")
	}
	b.WriteString("    user [shape=ellipse, label=\"user\"];\n")

	// Consistency edges between adjacent layers.
	for k := 0; k+1 < len(layers); k++ {
		for _, from := range layers[k] {
			for _, to := range layers[k+1] {
				if !from.CanFeed(to) {
					continue
				}
				attr := ""
				if onPath[from] && onPath[to] {
					attr = " [penwidth=2.5, color=\"#1f77b4\"]"
				}
				fmt.Fprintf(&b, "    \"%s\" -> \"%s\"%s;\n", esc(from.ID), esc(to.ID), attr)
			}
		}
	}
	// Final layer to the user.
	for _, in := range layers[len(layers)-1] {
		if !qos.Satisfies(in.Qout, userQoS) {
			continue
		}
		attr := ""
		if onPath[in] {
			attr = " [penwidth=2.5, color=\"#1f77b4\"]"
		}
		fmt.Fprintf(&b, "    \"%s\" -> user%s;\n", esc(in.ID), attr)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
