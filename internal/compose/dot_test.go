package compose

import (
	"strings"
	"testing"

	"repro/internal/service"
)

func TestWriteDOT(t *testing.T) {
	layers := [][]*service.Instance{
		{
			inst("a1", "X", "M", 10, 10),
			inst("a2", "X", "K", 20, 10),
		},
		{
			inst("b1", "M", "A", 10, 10),
			inst("b2", "K", "A", 20, 10),
		},
	}
	p, err := QCS(layers, userA, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteDOT(&b, layers, userA, p.Instances); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"digraph qcs", "cluster_0", "cluster_1", `"a1"`, `"b2"`, "-> user",
		"fillcolor", "penwidth",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
	// Exactly the consistent edges appear: a1→b1 (M) and a2→b2 (K); no
	// cross edges.
	if !strings.Contains(out, `"a1" -> "b1"`) || !strings.Contains(out, `"a2" -> "b2"`) {
		t.Fatal("consistent edges missing")
	}
	if strings.Contains(out, `"a1" -> "b2"`) || strings.Contains(out, `"a2" -> "b1"`) {
		t.Fatal("inconsistent edges drawn")
	}
}

func TestWriteDOTWithoutPath(t *testing.T) {
	layers := [][]*service.Instance{{inst("solo", "X", "A", 1, 1)}}
	var b strings.Builder
	if err := WriteDOT(&b, layers, userA, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "fillcolor") {
		t.Fatal("no highlight expected without a chosen path")
	}
}

func TestWriteDOTValidation(t *testing.T) {
	var b strings.Builder
	if err := WriteDOT(&b, nil, userA, nil); err == nil {
		t.Fatal("empty layers must fail")
	}
	layers := [][]*service.Instance{{inst("a", "X", "A", 1, 1)}}
	if err := WriteDOT(&b, layers, userA, make([]*service.Instance, 2)); err == nil {
		t.Fatal("wrong chosen length must fail")
	}
}
