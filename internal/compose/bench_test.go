package compose

import (
	"fmt"
	"testing"

	"repro/internal/service"
)

// benchLayers builds a dense 4-hop, 8-wide layered graph where every
// instance of layer k can feed every instance of layer k+1 — the
// worst-case edge count for the QCS Dijkstra pass.
func benchLayers() [][]*service.Instance {
	const hops, width = 4, 8
	fmts := []string{"F0", "F1", "F2", "F3", "A"}
	layers := make([][]*service.Instance, hops)
	for k := 0; k < hops; k++ {
		layers[k] = make([]*service.Instance, width)
		for i := 0; i < width; i++ {
			layers[k][i] = inst(fmt.Sprintf("l%d#%d", k, i),
				fmts[k], fmts[k+1], float64(1+(k+i)%5), 1)
		}
	}
	return layers
}

// BenchmarkQCS measures the memoized Dijkstra composition in steady
// state: the memo and scratch are warm, so per-call work is the graph
// walk itself plus the Path that escapes.
func BenchmarkQCS(b *testing.B) {
	layers := benchLayers()
	cfg := Config{
		Weights: []float64{1.0 / 3, 1.0 / 3, 1.0 / 3},
		Memo:    NewMemo(),
		Scratch: NewScratch(),
	}
	if _, err := QCS(layers, userA, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := QCS(layers, userA, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
