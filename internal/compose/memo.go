package compose

import (
	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/service"
)

// maxUserMemo caps the user-requirement memo: feed keys are bounded by the
// (small) instance population squared, but user QoS vectors are caller
// supplied, so an adversarial or long-lived embedder could grow the map
// without bound. Past the cap, checks still evaluate — they just stop
// being remembered.
const maxUserMemo = 4096

// feedKey memoizes Instance.CanFeed by pointer identity: instances are
// immutable after construction (their Qin/Qout never change), so the pair
// of pointers fully determines the outcome.
type feedKey struct{ a, b *service.Instance }

// userKey memoizes the final-layer user-requirement check. The user QoS
// vector is keyed by its backing array (&v[0]) plus length — callers that
// reuse a shared per-level vector (catalog.UserQoS does) hit; callers that
// rebuild vectors simply miss and re-evaluate, never getting a wrong
// answer, because identical backing means identical contents.
type userKey struct {
	inst *service.Instance
	p0   *qos.Param
	n    int
}

// Memo caches QoS-compatibility outcomes across composition runs. The
// checks it covers — CanFeed edges between instances of adjacent layers
// and Satisfies checks against the user requirement — are pure functions
// of immutable values, so an outcome computed once holds for the lifetime
// of the instances. Sharing one Memo across every request drops QCS's
// compatibility work from O(K·V²) per request to O(K·V²) total.
//
// A nil *Memo is valid and simply evaluates every check. Memo is not safe
// for concurrent use (the aggregation pipeline is single-goroutine).
type Memo struct {
	feed map[feedKey]bool
	user map[userKey]bool

	// Obs mirrors hit/miss counts into a metrics registry when wired; the
	// zero value no-ops.
	Obs obs.MemoCounters
}

// NewMemo returns an empty compatibility memo.
func NewMemo() *Memo {
	return &Memo{
		feed: make(map[feedKey]bool),
		user: make(map[userKey]bool),
	}
}

// CanFeed reports whether a's output satisfies b's input, remembering the
// outcome. Nil-safe: a nil memo delegates to the instances directly.
func (m *Memo) CanFeed(a, b *service.Instance) bool {
	if m == nil {
		return a.CanFeed(b)
	}
	k := feedKey{a, b}
	if v, ok := m.feed[k]; ok {
		m.Obs.FeedHits.Inc()
		return v
	}
	m.Obs.FeedMisses.Inc()
	v := a.CanFeed(b)
	m.feed[k] = v
	return v
}

// SatisfiesUser reports whether inst's output satisfies the user's
// end-to-end QoS requirement, remembering the outcome when the vector's
// backing array is reusable. Nil-safe.
func (m *Memo) SatisfiesUser(inst *service.Instance, userQoS qos.Vector) bool {
	if m == nil || len(userQoS) == 0 {
		return qos.Satisfies(inst.Qout, userQoS)
	}
	k := userKey{inst: inst, p0: &userQoS[0], n: len(userQoS)}
	if v, ok := m.user[k]; ok {
		m.Obs.UserHits.Inc()
		return v
	}
	m.Obs.UserMisses.Inc()
	v := qos.Satisfies(inst.Qout, userQoS)
	if len(m.user) < maxUserMemo {
		m.user[k] = v
	}
	return v
}
