package topology

import (
	"testing"
	"testing/quick"

	"repro/internal/resource"
)

func mustNet(t *testing.T, seed uint64, n int) *Network {
	t.Helper()
	net, err := New(Default(seed, n))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNewPopulation(t *testing.T) {
	net := mustNet(t, 1, 100)
	if net.AliveCount() != 100 || net.TotalCount() != 100 {
		t.Fatalf("counts = %d alive / %d total", net.AliveCount(), net.TotalCount())
	}
	arr, dep := net.Churn()
	if arr != 100 || dep != 0 {
		t.Fatalf("churn = %d/%d", arr, dep)
	}
}

func TestCapacityRange(t *testing.T) {
	net := mustNet(t, 2, 1000)
	net.AlivePeers(func(p *Peer) {
		c := p.Capacity
		if len(c) != 2 || c[0] != c[1] {
			t.Fatalf("capacity must be correlated 2-vector, got %v", c)
		}
		if c[0] < 100 || c[0] > 1000 {
			t.Fatalf("capacity %v outside [100,1000]", c[0])
		}
	})
}

func TestCapacityHeterogeneity(t *testing.T) {
	net := mustNet(t, 3, 1000)
	lo, hi := 0, 0
	net.AlivePeers(func(p *Peer) {
		if p.Capacity[0] < 400 {
			lo++
		}
		if p.Capacity[0] > 700 {
			hi++
		}
	})
	if lo < 100 || hi < 100 {
		t.Fatalf("capacities not heterogeneous: %d low, %d high of 1000", lo, hi)
	}
}

func TestBandwidthSymmetricStableClassed(t *testing.T) {
	net := mustNet(t, 4, 50)
	classes := map[float64]bool{10000: true, 500: true, 100: true, 56: true}
	for a := 0; a < 20; a++ {
		for b := a + 1; b < 20; b++ {
			bw := net.Bandwidth(PeerID(a), PeerID(b))
			if !classes[bw] {
				t.Fatalf("Bandwidth(%d,%d) = %v not in paper classes", a, b, bw)
			}
			if bw != net.Bandwidth(PeerID(b), PeerID(a)) {
				t.Fatalf("bandwidth asymmetric for (%d,%d)", a, b)
			}
			if bw != net.Bandwidth(PeerID(a), PeerID(b)) {
				t.Fatalf("bandwidth unstable for (%d,%d)", a, b)
			}
		}
	}
}

func TestLatencyClasses(t *testing.T) {
	net := mustNet(t, 5, 50)
	classes := map[float64]bool{200: true, 150: true, 80: true, 20: true, 1: true}
	seen := map[float64]bool{}
	for a := 0; a < 40; a++ {
		for b := a + 1; b < 40; b++ {
			l := net.Latency(PeerID(a), PeerID(b))
			if !classes[l] {
				t.Fatalf("Latency(%d,%d) = %v not in paper classes", a, b, l)
			}
			if l != net.Latency(PeerID(b), PeerID(a)) {
				t.Fatalf("latency asymmetric")
			}
			seen[l] = true
		}
	}
	if len(seen) < 4 {
		t.Fatalf("latency classes barely used: %v", seen)
	}
}

func TestBandwidthLatencyIndependent(t *testing.T) {
	// The salt must make bandwidth and latency class picks independent:
	// pairs with equal bandwidth should still spread over latency classes.
	net := mustNet(t, 6, 100)
	seenLat := map[float64]bool{}
	for a := 0; a < 60; a++ {
		for b := a + 1; b < 60; b++ {
			if net.Bandwidth(PeerID(a), PeerID(b)) == 10000 {
				seenLat[net.Latency(PeerID(a), PeerID(b))] = true
			}
		}
	}
	if len(seenLat) < 3 {
		t.Fatalf("latency not independent of bandwidth: %v", seenLat)
	}
}

func TestDepartAndJoin(t *testing.T) {
	net := mustNet(t, 7, 10)
	p := net.DepartRandom(5)
	if p == nil || p.Alive {
		t.Fatal("DepartRandom must return a departed peer")
	}
	if p.DepartTime != 5 {
		t.Fatalf("DepartTime = %v", p.DepartTime)
	}
	if net.AliveCount() != 9 {
		t.Fatalf("AliveCount = %d", net.AliveCount())
	}
	if err := net.Depart(p.ID, 6); err == nil {
		t.Fatal("double departure must fail")
	}
	fresh, err := net.Join(8)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID != 10 {
		t.Fatalf("fresh ID = %d, IDs must never be reused", fresh.ID)
	}
	if net.AliveCount() != 10 || net.TotalCount() != 11 {
		t.Fatalf("counts after join = %d/%d", net.AliveCount(), net.TotalCount())
	}
}

func TestUptime(t *testing.T) {
	cfg := Default(8, 3)
	cfg.InitialUptimeMax = -1 // cold start for exact arithmetic
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := net.MustPeer(0)
	if u := p.Uptime(30); u != 30 {
		t.Fatalf("Uptime = %v", u)
	}
	fresh, _ := net.Join(12)
	if u := fresh.Uptime(30); u != 18 {
		t.Fatalf("fresh peer Uptime = %v", u)
	}
	net.Depart(p.ID, 20)
	if u := p.Uptime(30); u != 0 {
		t.Fatalf("departed peer Uptime = %v, want 0", u)
	}
}

func TestPeerErrors(t *testing.T) {
	net := mustNet(t, 9, 3)
	if _, err := net.Peer(-1); err == nil {
		t.Fatal("negative ID must fail")
	}
	if _, err := net.Peer(99); err == nil {
		t.Fatal("out-of-range ID must fail")
	}
	if err := net.Depart(99, 0); err == nil {
		t.Fatal("departing unknown peer must fail")
	}
}

func TestBadConfig(t *testing.T) {
	if _, err := New(Config{Seed: 1, N: 0}); err == nil {
		t.Fatal("N=0 must fail")
	}
	if _, err := New(Config{Seed: 1, N: 5, MinCapacity: 10, MaxCapacity: 5}); err == nil {
		t.Fatal("inverted capacity range must fail")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := mustNet(t, 42, 200)
	b := mustNet(t, 42, 200)
	for i := 0; i < 200; i++ {
		pa, pb := a.MustPeer(PeerID(i)), b.MustPeer(PeerID(i))
		if pa.Capacity[0] != pb.Capacity[0] {
			t.Fatalf("peer %d capacity differs across identically seeded runs", i)
		}
	}
	if a.Bandwidth(3, 77) != b.Bandwidth(3, 77) {
		t.Fatal("bandwidth differs across identically seeded runs")
	}
	pa, pb := a.DepartRandom(1), b.DepartRandom(1)
	if pa.ID != pb.ID {
		t.Fatal("churn choice differs across identically seeded runs")
	}
}

func TestBandwidthLedgerUsesPairCapacity(t *testing.T) {
	net := mustNet(t, 10, 20)
	led := net.BandwidthLedger()
	// Find a 56 kbps pair and check the ledger enforces that capacity.
	for a := 0; a < 20; a++ {
		for b := a + 1; b < 20; b++ {
			if net.Bandwidth(PeerID(a), PeerID(b)) == 56 {
				if led.Reserve(a, b, 100) {
					t.Fatal("ledger admitted 100 kbps on a 56 kbps pair")
				}
				if !led.Reserve(a, b, 56) {
					t.Fatal("ledger rejected exact-capacity reservation")
				}
				led.Release(a, b, 56)
				return
			}
		}
	}
	t.Skip("no 56 kbps pair in the sample window")
}

func TestRandomAliveEmpty(t *testing.T) {
	net := mustNet(t, 11, 2)
	net.DepartRandom(0)
	net.DepartRandom(0)
	if net.RandomAlive() != nil || net.DepartRandom(0) != nil {
		t.Fatal("empty alive set must yield nil")
	}
}

// Property: after any churn sequence, AliveCount equals initial + arrivals
// beyond init − departures, and the alive set contains exactly the
// non-departed peers.
func TestPropertyChurnAccounting(t *testing.T) {
	check := func(ops []bool) bool {
		net, err := New(Default(99, 20))
		if err != nil {
			return false
		}
		for i, join := range ops {
			now := float64(i)
			if join {
				if _, err := net.Join(now); err != nil {
					return false
				}
			} else {
				net.DepartRandom(now)
			}
		}
		aliveSeen := 0
		net.AlivePeers(func(p *Peer) {
			if !p.Alive {
				return
			}
			aliveSeen++
		})
		arr, dep := net.Churn()
		return aliveSeen == net.AliveCount() && net.AliveCount() == arr-dep
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxClassHelpers(t *testing.T) {
	net := mustNet(t, 12, 5)
	if net.MaxBandwidthClass() != 10000 {
		t.Fatalf("MaxBandwidthClass = %v", net.MaxBandwidthClass())
	}
	if net.MaxCapacity() != 1000 {
		t.Fatalf("MaxCapacity = %v", net.MaxCapacity())
	}
}

func TestLedgerSharedWithPeers(t *testing.T) {
	net := mustNet(t, 13, 5)
	p := net.MustPeer(0)
	req := resource.Vec2(10, 10)
	if !p.Ledger.Reserve(req) {
		t.Fatal("fresh peer must admit a small reservation")
	}
	if got := p.Ledger.Available(); got[0] != p.Capacity[0]-10 {
		t.Fatalf("Available = %v", got)
	}
	p.Ledger.Release(req)
}
