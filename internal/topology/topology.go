// Package topology implements the network model of the QSA paper (§2.2,
// §4.1): a large population of heterogeneous peers connected over the
// wide-area Internet, with arbitrary arrivals and departures.
//
// Per the evaluation setup:
//
//   - each peer gets an initial end-system resource availability
//     RA = [cpu, memory] between [100,100] and [1000,1000] units
//     (heterogeneity: laptops ≈ 100, desktops ≈ 500, servers ≈ 1000);
//   - the end-to-end available bandwidth between any two peers is the
//     bottleneck bandwidth of the network path, drawn from
//     {10 Mbps, 500 kbps, 100 kbps, 56 kbps};
//   - the network latency between two peers is drawn from
//     {200, 150, 80, 20, 1} ms;
//   - peers arrive and depart at a configurable topological variation
//     rate; a peer's uptime is the duration it has remained connected.
//
// Pairwise link properties are derived from a keyed hash of the peer pair
// rather than stored: a 10⁴-peer grid would otherwise need a 10⁸-entry
// matrix. The hash is symmetric and stable for the lifetime of a run, so
// repeated queries agree — exactly the behaviour of the paper's statically
// initialized random matrix.
package topology

import (
	"fmt"

	"repro/internal/resource"
	"repro/internal/xrand"
)

// PeerID identifies a peer for the lifetime of a run. IDs are dense,
// starting at 0, and are never reused: a peer that departs keeps its ID and
// a newly arrived peer gets the next fresh ID.
type PeerID int

// Peer is one participant of the P2P grid.
type Peer struct {
	ID         PeerID
	Capacity   resource.Vector  // initial RA, immutable
	Ledger     *resource.Ledger // end-system reservation state
	JoinTime   float64          // simulated minute the peer connected
	Alive      bool
	DepartTime float64 // valid when !Alive
}

// Uptime returns how long the peer has been connected at time now — the
// paper's peer-selection metric for tolerating topological variation.
func (p *Peer) Uptime(now float64) float64 {
	if !p.Alive {
		return 0
	}
	return now - p.JoinTime
}

// Config parameterizes a Network. Zero values are replaced by the paper's
// defaults (see Default).
type Config struct {
	Seed uint64 // master seed for the whole run
	N    int    // initial number of peers (paper: 10⁴)

	// Per-peer capacity is a single scalar c drawn uniformly from
	// [MinCapacity, MaxCapacity] applied to both resource dimensions,
	// matching the paper's correlated examples ([100,100] laptop,
	// [500,500] desktop, [1000,1000] server).
	MinCapacity, MaxCapacity float64

	// BandwidthClasses are the possible pairwise bottleneck bandwidths in
	// kbps; LatencyClassesMs the possible pairwise latencies in ms. A pair's
	// class is chosen uniformly by hash.
	BandwidthClasses []float64
	LatencyClassesMs []float64

	// InitialUptimeMax seeds the initial population with ages: a peer
	// present at time 0 joined at −U(0, InitialUptimeMax), as in a grid
	// that has been running for a while (the paper measures a steady
	// system, not a cold start). 0 selects the default (240 minutes); a
	// negative value forces a cold start (all uptimes 0 at time 0).
	InitialUptimeMax float64

	// DepartureSample biases churn toward short-lived peers: a departure
	// samples this many alive peers and removes the youngest, giving
	// uptime the predictive power over remaining lifetime that measured
	// P2P populations show (Saroiu et al., MMCN'02 — the paper's [17]) and
	// that the QSA uptime heuristic exploits. 0 selects the default (3);
	// 1 makes departures uniform (memoryless churn).
	DepartureSample int
}

// Default returns the paper's evaluation configuration for n peers.
func Default(seed uint64, n int) Config {
	return Config{
		Seed:             seed,
		N:                n,
		MinCapacity:      100,
		MaxCapacity:      1000,
		BandwidthClasses: []float64{10000, 500, 100, 56}, // 10M, 500k, 100k, 56k bps
		LatencyClassesMs: []float64{200, 150, 80, 20, 1},
	}
}

func (c *Config) fillDefaults() {
	d := Default(c.Seed, c.N)
	if c.MinCapacity == 0 && c.MaxCapacity == 0 {
		c.MinCapacity, c.MaxCapacity = d.MinCapacity, d.MaxCapacity
	}
	if len(c.BandwidthClasses) == 0 {
		c.BandwidthClasses = d.BandwidthClasses
	}
	if len(c.LatencyClassesMs) == 0 {
		c.LatencyClassesMs = d.LatencyClassesMs
	}
	if c.InitialUptimeMax == 0 {
		c.InitialUptimeMax = 240
	}
	if c.DepartureSample == 0 {
		c.DepartureSample = 3
	}
}

// peerChunk is the slab chunk size. Chunks are allocated with this fixed
// capacity and never reallocated, so *Peer pointers handed to callers
// stay valid as the population grows.
const peerChunk = 16384

// Network is the peer population plus the pairwise link model and the
// shared bandwidth reservation ledger.
//
// Peers live in a chunked slab of Peer values rather than a []*Peer:
// at 10⁶–10⁷ peers, one allocation per peer and a pointer-chasing index
// dominate both the allocator and the cache. IDs are dense, so the
// alive index is a flat []int32 instead of a map.
type Network struct {
	cfg   Config
	rng   *xrand.Source
	slab  [][]Peer // chunked storage, indexed by PeerID via peerChunk
	total int      // peers ever created

	alive    []PeerID // alive set, order unspecified
	aliveIdx []int32  // PeerID -> index in alive, -1 when departed

	bw *resource.BandwidthLedger

	departures, arrivals int    // cumulative churn counters
	version              uint64 // bumped on every Join/Depart
}

// New builds a network with cfg.N peers joined at time 0.
func New(cfg Config) (*Network, error) {
	cfg.fillDefaults()
	if cfg.N <= 0 {
		return nil, fmt.Errorf("topology: need a positive number of peers, got %d", cfg.N)
	}
	if cfg.MaxCapacity < cfg.MinCapacity || cfg.MinCapacity < 0 {
		return nil, fmt.Errorf("topology: bad capacity range [%v, %v]", cfg.MinCapacity, cfg.MaxCapacity)
	}
	n := &Network{
		cfg:      cfg,
		rng:      xrand.New(cfg.Seed).SplitLabeled("topology"),
		aliveIdx: make([]int32, 0, cfg.N),
	}
	bw, err := resource.NewBandwidthLedger(func(a, b int) float64 {
		return n.pairClass(a, b, 0, cfg.BandwidthClasses)
	})
	if err != nil {
		return nil, err
	}
	n.bw = bw
	for i := 0; i < cfg.N; i++ {
		p, err := n.Join(0)
		if err != nil {
			return nil, err
		}
		if cfg.InitialUptimeMax > 0 {
			// Pre-age the initial population: the grid was already running.
			p.JoinTime = -n.rng.FloatRange(0, cfg.InitialUptimeMax)
		}
	}
	return n, nil
}

// pairClass deterministically picks one of classes for the unordered pair
// (a, b), salted so bandwidth and latency use independent choices.
func (n *Network) pairClass(a, b int, salt uint64, classes []float64) float64 {
	k := resource.Pair(a, b)
	h := xrand.Mix64(n.cfg.Seed ^ salt ^ xrand.Mix64(uint64(k.Lo)*0x9E3779B97F4A7C15+uint64(k.Hi)))
	return classes[h%uint64(len(classes))]
}

// Bandwidth returns the pairwise bottleneck bandwidth capacity in kbps.
// Symmetric: Bandwidth(a,b) == Bandwidth(b,a).
func (n *Network) Bandwidth(a, b PeerID) float64 {
	return n.pairClass(int(a), int(b), 0, n.cfg.BandwidthClasses)
}

// Latency returns the pairwise latency in ms. Symmetric.
func (n *Network) Latency(a, b PeerID) float64 {
	return n.pairClass(int(a), int(b), 0xD1F1ED, n.cfg.LatencyClassesMs)
}

// BandwidthLedger exposes the shared bandwidth reservation state used by
// session admission control.
func (n *Network) BandwidthLedger() *resource.BandwidthLedger { return n.bw }

// allocPeer reserves the next slab slot and returns its stable address.
func (n *Network) allocPeer() *Peer {
	if len(n.slab) == 0 || len(n.slab[len(n.slab)-1]) == peerChunk {
		n.slab = append(n.slab, make([]Peer, 0, peerChunk))
	}
	last := len(n.slab) - 1
	n.slab[last] = append(n.slab[last], Peer{})
	n.total++
	return &n.slab[last][len(n.slab[last])-1]
}

// peerAt returns the stable address of a peer the network issued.
func (n *Network) peerAt(id PeerID) *Peer {
	return &n.slab[int(id)/peerChunk][int(id)%peerChunk]
}

// Join adds a fresh peer at time now, with a capacity drawn from the
// configured range, and returns it.
func (n *Network) Join(now float64) (*Peer, error) {
	c := n.rng.FloatRange(n.cfg.MinCapacity, n.cfg.MaxCapacity)
	cap := resource.Vec2(c, c)
	ledger, err := resource.NewLedger(cap)
	if err != nil {
		return nil, err
	}
	p := n.allocPeer()
	*p = Peer{
		ID:       PeerID(n.total - 1),
		Capacity: cap,
		Ledger:   ledger,
		JoinTime: now,
		Alive:    true,
	}
	n.aliveIdx = append(n.aliveIdx, int32(len(n.alive)))
	n.alive = append(n.alive, p.ID)
	n.arrivals++
	n.version++
	return p, nil
}

// Depart removes the peer from the alive set at time now. It returns an
// error if the peer is unknown or already departed. The caller (session
// manager) is responsible for failing sessions hosted on the peer.
func (n *Network) Depart(id PeerID, now float64) error {
	p, err := n.Peer(id)
	if err != nil {
		return err
	}
	if !p.Alive {
		return fmt.Errorf("topology: peer %d already departed", id)
	}
	p.Alive = false
	p.DepartTime = now
	// O(1) removal from the alive slice: swap with last.
	i := n.aliveIdx[id]
	last := n.alive[len(n.alive)-1]
	n.alive[i] = last
	n.aliveIdx[last] = i
	n.alive = n.alive[:len(n.alive)-1]
	n.aliveIdx[id] = -1
	n.departures++
	n.version++
	return nil
}

// DepartRandom departs one alive peer chosen as the youngest of
// DepartureSample uniform draws (short-lived peers are the likeliest to
// leave) and returns it; it returns nil when no peer is alive.
func (n *Network) DepartRandom(now float64) *Peer {
	if len(n.alive) == 0 {
		return nil
	}
	k := n.cfg.DepartureSample
	if k < 1 {
		k = 1
	}
	var victim *Peer
	for i := 0; i < k; i++ {
		p := n.peerAt(n.alive[n.rng.Intn(len(n.alive))])
		if victim == nil || p.JoinTime > victim.JoinTime {
			victim = p // later join = younger
		}
	}
	if err := n.Depart(victim.ID, now); err != nil {
		// lint:allow panic-in-library unreachable: the victim was just drawn from the alive set
		panic(err)
	}
	return victim
}

// Peer returns the peer with the given ID.
func (n *Network) Peer(id PeerID) (*Peer, error) {
	if id < 0 || int(id) >= n.total {
		return nil, fmt.Errorf("topology: unknown peer %d", id)
	}
	return n.peerAt(id), nil
}

// MustPeer is Peer for callers holding IDs the network itself issued.
func (n *Network) MustPeer(id PeerID) *Peer {
	p, err := n.Peer(id)
	if err != nil {
		// lint:allow panic-in-library documented Must-variant contract; callers hold network-issued IDs
		panic(err)
	}
	return p
}

// Version returns the membership mutation counter: it advances on every
// Join and Depart. The sharded simulator uses it as a validation token —
// a speculative computation that read the alive set is safe to reuse
// only if the version is unchanged at commit time.
func (n *Network) Version() uint64 { return n.version }

// AliveCount returns the number of currently connected peers.
func (n *Network) AliveCount() int { return len(n.alive) }

// TotalCount returns the number of peers ever created.
func (n *Network) TotalCount() int { return n.total }

// Churn returns cumulative (arrivals, departures) including the initial N
// joins.
func (n *Network) Churn() (arrivals, departures int) {
	return n.arrivals, n.departures
}

// AlivePeers calls fn for every currently alive peer. The order is
// unspecified but deterministic for a given history.
func (n *Network) AlivePeers(fn func(*Peer)) {
	for _, id := range n.alive {
		fn(n.peerAt(id))
	}
}

// RandomAlive returns a uniformly chosen alive peer, or nil when none.
func (n *Network) RandomAlive() *Peer {
	return n.RandomAliveFrom(n.rng)
}

// RandomAliveFrom is RandomAlive drawing from the caller's random source,
// so workload randomness stays independent of topology randomness.
func (n *Network) RandomAliveFrom(rng *xrand.Source) *Peer {
	if len(n.alive) == 0 {
		return nil
	}
	return n.peerAt(n.alive[rng.Intn(len(n.alive))])
}

// MaxBandwidthClass returns the largest configured pairwise bandwidth
// (b_max in Definition 3.1's normalization).
func (n *Network) MaxBandwidthClass() float64 {
	var max float64
	for _, c := range n.cfg.BandwidthClasses {
		if c > max {
			max = c
		}
	}
	return max
}

// MaxCapacity returns the maximum per-dimension end-system capacity
// (r_max in Definition 3.1's normalization).
func (n *Network) MaxCapacity() float64 { return n.cfg.MaxCapacity }
