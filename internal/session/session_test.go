package session

import (
	"testing"

	"repro/internal/eventsim"
	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/resource"
	"repro/internal/service"
	"repro/internal/topology"
)

func inst(r, b float64) *service.Instance {
	return &service.Instance{
		ID:      "svc#0",
		Service: "svc",
		Qin:     qos.MustVector(qos.Sym("format", "M")),
		Qout:    qos.MustVector(qos.Sym("format", "A")),
		R:       resource.Vec2(r, r),
		OutKbps: b,
	}
}

type fixture struct {
	net    *topology.Network
	engine *eventsim.Engine
	mgr    *Manager
}

func newFixture(t *testing.T, peers int) *fixture {
	t.Helper()
	net, err := topology.New(topology.Default(1, peers))
	if err != nil {
		t.Fatal(err)
	}
	engine := eventsim.New()
	return &fixture{net: net, engine: engine, mgr: NewManager(net, engine)}
}

func ids(xs ...int) []topology.PeerID {
	out := make([]topology.PeerID, len(xs))
	for i, x := range xs {
		out[i] = topology.PeerID(x)
	}
	return out
}

// fullyAvailable asserts every peer's ledger and the bandwidth ledger are
// back to pristine state — the conservation invariant after all sessions
// end.
func (f *fixture) fullyAvailable(t *testing.T) {
	t.Helper()
	f.net.AlivePeers(func(p *topology.Peer) {
		av := p.Ledger.Available()
		if av[0] != p.Capacity[0] || av[1] != p.Capacity[1] {
			t.Fatalf("peer %d leaked reservations: %v of %v", p.ID, av, p.Capacity)
		}
	})
	if n := f.net.BandwidthLedger().ActivePairs(); n != 0 {
		t.Fatalf("bandwidth ledger leaked %d pairs", n)
	}
}

func TestAdmitReservesAndCompletes(t *testing.T) {
	f := newFixture(t, 10)
	instances := []*service.Instance{inst(10, 50), inst(20, 50)}
	var ended *Session
	f.mgr.OnEnd = func(s *Session) { ended = s }
	s, err := f.mgr.Admit(0, instances, ids(1, 2), 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.State != Active || f.mgr.Active() != 1 {
		t.Fatalf("state = %v, active = %d", s.State, f.mgr.Active())
	}
	p1 := f.net.MustPeer(1)
	if got := p1.Ledger.Available(); got[0] != p1.Capacity[0]-10 {
		t.Fatalf("component reservation missing: %v", got)
	}
	// Bandwidth edges: 1→2 and 2→user(0).
	bw := f.net.BandwidthLedger()
	if bw.Available(1, 2) != f.net.Bandwidth(1, 2)-50 {
		t.Fatal("edge 1→2 not reserved")
	}
	if bw.Available(2, 0) != f.net.Bandwidth(2, 0)-50 {
		t.Fatal("edge 2→user not reserved")
	}

	f.engine.RunUntil(5)
	if s.State != Completed || ended != s {
		t.Fatalf("state = %v after duration", s.State)
	}
	if f.mgr.Active() != 0 {
		t.Fatal("session not deregistered")
	}
	f.fullyAvailable(t)
	c := f.mgr.Counters()
	if c.Admitted != 1 || c.Completed != 1 || c.Failed != 0 || c.Rejected != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestAdmitRejectsOnResources(t *testing.T) {
	f := newFixture(t, 10)
	p1 := f.net.MustPeer(1)
	p1.Ledger.Reserve(p1.Capacity) // fully loaded
	_, err := f.mgr.Admit(0, []*service.Instance{inst(10, 10)}, ids(1), 5)
	if err == nil {
		t.Fatal("admission must fail on loaded peer")
	}
	p1.Ledger.Release(p1.Capacity) // drop the test's own load
	f.fullyAvailable(t)
	if f.mgr.Counters().Rejected != 1 {
		t.Fatalf("counters = %+v", f.mgr.Counters())
	}
}

func TestAdmitRejectsOnBandwidthWithRollback(t *testing.T) {
	f := newFixture(t, 30)
	// Find a pair (a, user) with only 56 kbps and demand more.
	var a topology.PeerID = -1
	for p := 1; p < 30; p++ {
		if f.net.Bandwidth(topology.PeerID(p), 0) == 56 {
			a = topology.PeerID(p)
			break
		}
	}
	if a < 0 {
		t.Skip("no 56 kbps pair to user in sample")
	}
	_, err := f.mgr.Admit(0, []*service.Instance{inst(10, 500)}, []topology.PeerID{a}, 5)
	if err == nil {
		t.Fatal("admission must fail on thin edge")
	}
	// The component reservation made before the edge failure must be
	// rolled back.
	f.fullyAvailable(t)
}

func TestAdmitValidation(t *testing.T) {
	f := newFixture(t, 5)
	if _, err := f.mgr.Admit(0, nil, nil, 5); err == nil {
		t.Fatal("empty path must be rejected")
	}
	if _, err := f.mgr.Admit(0, []*service.Instance{inst(1, 1)}, ids(1, 2), 5); err == nil {
		t.Fatal("length mismatch must be rejected")
	}
	if _, err := f.mgr.Admit(0, []*service.Instance{inst(1, 1)}, ids(1), 0); err == nil {
		t.Fatal("zero duration must be rejected")
	}
	f.net.Depart(3, 0)
	if _, err := f.mgr.Admit(3, []*service.Instance{inst(1, 1)}, ids(1), 5); err == nil {
		t.Fatal("dead user must be rejected")
	}
	if _, err := f.mgr.Admit(0, []*service.Instance{inst(1, 1)}, ids(3), 5); err == nil {
		t.Fatal("dead host must be rejected")
	}
	if f.mgr.Counters().Rejected != 5 {
		t.Fatalf("counters = %+v", f.mgr.Counters())
	}
}

func TestPeerDepartureFailsSession(t *testing.T) {
	f := newFixture(t, 10)
	instances := []*service.Instance{inst(10, 50), inst(20, 50)}
	s, err := f.mgr.Admit(0, instances, ids(1, 2), 30)
	if err != nil {
		t.Fatal(err)
	}
	f.engine.RunUntil(10)
	f.net.Depart(2, 10)
	f.mgr.PeerDeparted(2, 10)
	if s.State != Failed {
		t.Fatalf("state = %v, want failed", s.State)
	}
	f.engine.RunUntil(100)
	if f.mgr.Counters().Completed != 0 || f.mgr.Counters().Failed != 1 {
		t.Fatalf("counters = %+v", f.mgr.Counters())
	}
	f.fullyAvailable(t)
}

func TestUserDepartureFailsSession(t *testing.T) {
	f := newFixture(t, 10)
	s, _ := f.mgr.Admit(0, []*service.Instance{inst(10, 50)}, ids(1), 30)
	f.net.Depart(0, 5)
	f.mgr.PeerDeparted(0, 5)
	if s.State != Failed {
		t.Fatal("session must fail when the user departs")
	}
	f.fullyAvailable(t)
}

func TestUnrelatedDepartureHarmless(t *testing.T) {
	f := newFixture(t, 10)
	s, _ := f.mgr.Admit(0, []*service.Instance{inst(10, 50)}, ids(1), 30)
	f.net.Depart(7, 5)
	f.mgr.PeerDeparted(7, 5)
	if s.State != Active {
		t.Fatal("unrelated departure must not touch the session")
	}
	f.engine.RunUntil(30)
	if s.State != Completed {
		t.Fatal("session must still complete")
	}
	f.fullyAvailable(t)
}

func TestRecoveryReplacesComponent(t *testing.T) {
	f := newFixture(t, 10)
	f.mgr.Recovery = func(s *Session, k int, now float64) (topology.PeerID, bool) {
		return 5, true
	}
	instances := []*service.Instance{inst(10, 50), inst(20, 50)}
	s, err := f.mgr.Admit(0, instances, ids(1, 2), 30)
	if err != nil {
		t.Fatal(err)
	}
	f.engine.RunUntil(10)
	f.net.Depart(1, 10)
	f.mgr.PeerDeparted(1, 10)
	if s.State != Active {
		t.Fatalf("state = %v, recovery should keep the session alive", s.State)
	}
	if s.Peers[0] != 5 || s.Recovered != 1 {
		t.Fatalf("peers = %v, recovered = %d", s.Peers, s.Recovered)
	}
	p5 := f.net.MustPeer(5)
	if got := p5.Ledger.Available(); got[0] != p5.Capacity[0]-10 {
		t.Fatal("replacement host has no reservation")
	}
	f.engine.RunUntil(30)
	if s.State != Completed {
		t.Fatalf("state = %v", s.State)
	}
	c := f.mgr.Counters()
	if c.Recoveries != 1 || c.Completed != 1 || c.Failed != 0 {
		t.Fatalf("counters = %+v", c)
	}
	f.fullyAvailable(t)
}

func TestRecoveryFailureFailsSession(t *testing.T) {
	f := newFixture(t, 10)
	f.mgr.Recovery = func(s *Session, k int, now float64) (topology.PeerID, bool) {
		return -1, false
	}
	s, _ := f.mgr.Admit(0, []*service.Instance{inst(10, 50)}, ids(1), 30)
	f.net.Depart(1, 5)
	f.mgr.PeerDeparted(1, 5)
	if s.State != Failed {
		t.Fatal("failed recovery must fail the session")
	}
	f.fullyAvailable(t)
}

func TestRecoveryToLoadedPeerFails(t *testing.T) {
	f := newFixture(t, 10)
	p5 := f.net.MustPeer(5)
	p5.Ledger.Reserve(p5.Capacity) // replacement target is full
	f.mgr.Recovery = func(s *Session, k int, now float64) (topology.PeerID, bool) {
		return 5, true
	}
	s, _ := f.mgr.Admit(0, []*service.Instance{inst(10, 50)}, ids(1), 30)
	f.net.Depart(1, 5)
	f.mgr.PeerDeparted(1, 5)
	if s.State != Failed {
		t.Fatal("recovery onto a full peer must fail the session")
	}
	// Crucially: no reservation leaks and no panic from double release.
	p5.Ledger.Release(p5.Capacity)
	f.fullyAvailable(t)
}

func TestCoLocatedComponentsShareNoEdge(t *testing.T) {
	f := newFixture(t, 10)
	instances := []*service.Instance{inst(10, 50), inst(10, 50)}
	// Both components on peer 1: the 1→1 edge needs no bandwidth.
	s, err := f.mgr.Admit(0, instances, ids(1, 1), 5)
	if err != nil {
		t.Fatal(err)
	}
	if f.net.BandwidthLedger().ActivePairs() != 1 { // only 1→user
		t.Fatalf("ActivePairs = %d, want 1", f.net.BandwidthLedger().ActivePairs())
	}
	f.engine.RunUntil(5)
	if s.State != Completed {
		t.Fatal("co-located session must complete")
	}
	f.fullyAvailable(t)
}

func TestManySessionsConservation(t *testing.T) {
	f := newFixture(t, 50)
	instances := []*service.Instance{inst(5, 10), inst(5, 10), inst(5, 10)}
	admitted := 0
	for i := 0; i < 200; i++ {
		u := topology.PeerID(i % 50)
		a := topology.PeerID((i + 7) % 50)
		b := topology.PeerID((i + 13) % 50)
		c := topology.PeerID((i + 29) % 50)
		if _, err := f.mgr.Admit(u, instances, []topology.PeerID{a, b, c}, float64(1+i%10)); err == nil {
			admitted++
		}
		f.engine.RunUntil(float64(i) / 10)
	}
	f.engine.Run()
	if f.mgr.Active() != 0 {
		t.Fatalf("%d sessions leaked", f.mgr.Active())
	}
	f.fullyAvailable(t)
	c := f.mgr.Counters()
	if int(c.Admitted) != admitted || c.Admitted != c.Completed {
		t.Fatalf("counters = %+v, admitted = %d", c, admitted)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Active: "active", Completed: "completed", Failed: "failed", State(7): "State(7)"} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q", int(s), got)
		}
	}
}

func TestDepartureOfMultiComponentHost(t *testing.T) {
	// Peer 2 hosts two components; with recovery both must be replaced.
	f := newFixture(t, 10)
	replacements := []topology.PeerID{5, 6}
	i := 0
	f.mgr.Recovery = func(s *Session, k int, now float64) (topology.PeerID, bool) {
		r := replacements[i%2]
		i++
		return r, true
	}
	// Small bandwidth demand: edges 2→3 and 3→2 share one unordered pair
	// whose bottleneck class can be as low as 56 kbps.
	instances := []*service.Instance{inst(10, 5), inst(10, 5), inst(10, 5)}
	s, err := f.mgr.Admit(0, instances, ids(2, 3, 2), 30)
	if err != nil {
		t.Fatal(err)
	}
	f.net.Depart(2, 5)
	f.mgr.PeerDeparted(2, 5)
	if s.State != Active || s.Recovered != 2 {
		t.Fatalf("state = %v, recovered = %d", s.State, s.Recovered)
	}
	if s.Peers[0] == 2 || s.Peers[2] == 2 {
		t.Fatalf("peers = %v still reference the departed host", s.Peers)
	}
	f.engine.RunUntil(30)
	if s.State != Completed {
		t.Fatalf("state = %v", s.State)
	}
	f.fullyAvailable(t)
}

func TestActiveGaugeTracksSessions(t *testing.T) {
	f := newFixture(t, 10)
	g := obs.NewRegistry().Gauge("session.active")
	f.mgr.ActiveGauge = g
	s1, err := f.mgr.Admit(0, []*service.Instance{inst(10, 50)}, ids(1), 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.mgr.Admit(0, []*service.Instance{inst(10, 50)}, ids(2), 9); err != nil {
		t.Fatal(err)
	}
	if g.Value() != 2 {
		t.Fatalf("gauge = %d after two admissions, want 2", g.Value())
	}
	f.engine.RunUntil(5) // s1 completes
	if s1.State != Completed || g.Value() != 1 {
		t.Fatalf("gauge = %d after one completion, want 1", g.Value())
	}
	f.net.MustPeer(2).Alive = false
	f.mgr.PeerDeparted(2, 6) // s2 fails (no recovery wired)
	if g.Value() != 0 {
		t.Fatalf("gauge = %d after failure, want 0", g.Value())
	}
}
