// Package session manages the lifecycle of admitted service aggregations:
// resource/bandwidth reservation at setup, scheduled completion, failure
// when a provisioning peer departs mid-session, and — as an extension the
// paper defers to future work (§4.2, §6) — optional runtime recovery that
// re-selects a replacement peer for the failed component.
//
// Admission is all-or-nothing: every component reserves its end-system
// requirement R on its host peer, and every application-level connection
// reserves the upstream component's bandwidth requirement on the peer
// pair, for the whole session duration. Any reservation failure rolls the
// session back and the request is rejected (it counts against ψ).
package session

import (
	"fmt"

	"repro/internal/eventsim"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/topology"
)

// State is a session's lifecycle phase.
type State int

const (
	// Active means the session holds reservations and is running.
	Active State = iota
	// Completed means the session ran for its full duration.
	Completed
	// Failed means a provisioning peer departed and recovery (if any)
	// could not replace it.
	Failed
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Completed:
		return "completed"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Session is one admitted service aggregation.
type Session struct {
	ID        uint64
	User      topology.PeerID
	Instances []*service.Instance // aggregation-flow order, source first
	Peers     []topology.PeerID   // aligned with Instances
	Start     float64
	Duration  float64
	State     State
	Recovered int // components replaced by runtime recovery

	// Reservation bookkeeping: which component/edge reservations this
	// session currently holds. Indexed like Instances; edge k is the
	// connection out of component k (the last edge ends at the user).
	resHeld  []bool
	edgeHeld []bool

	done eventsim.Handle
}

// hosts reports whether the session has a component on peer p (or p is
// the user-side sink).
func (s *Session) hosts(p topology.PeerID) bool {
	if s.User == p {
		return true
	}
	for _, h := range s.Peers {
		if h == p {
			return true
		}
	}
	return false
}

// edge returns the (from, to, kbps) triple of the session's k-th outgoing
// connection: component k feeds component k+1, the last component feeds
// the user.
func (s *Session) edge(k int) (from, to topology.PeerID, kbps float64) {
	from = s.Peers[k]
	if k == len(s.Peers)-1 {
		to = s.User
	} else {
		to = s.Peers[k+1]
	}
	return from, to, s.Instances[k].OutKbps
}

// RecoveryFunc re-selects a replacement peer for component k of a session
// whose host departed at time now. Returning ok=false fails the session.
// The callback must not touch reservations; the manager handles them.
type RecoveryFunc func(s *Session, k int, now float64) (topology.PeerID, bool)

// Counters tallies session outcomes.
type Counters struct {
	Admitted   uint64
	Rejected   uint64 // admission-time reservation failures
	Completed  uint64
	Failed     uint64 // mid-session failures (departures)
	Recoveries uint64 // successful component replacements
}

// Manager owns all sessions of a run.
type Manager struct {
	net    *topology.Network
	engine eventsim.Scheduler

	nextID   uint64
	sessions map[uint64]*Session
	byPeer   map[topology.PeerID]map[uint64]*Session

	counters Counters

	// Recovery, when non-nil, is invoked for each component lost to a peer
	// departure before the session is failed.
	Recovery RecoveryFunc
	// OnEnd, when non-nil, is invoked once per admitted session when it
	// completes or fails.
	OnEnd func(s *Session)
	// Obs mirrors the Counters increments into a metrics registry when
	// wired; the zero value no-ops.
	Obs obs.SessionCounters
	// Durations, when wired, receives each ended session's achieved
	// lifetime in engine-clock units (admission to completion or
	// failure) — the SLO latency plane's session timer. nil no-ops.
	Durations *obs.LatencyHist
	// ActiveGauge, when wired, mirrors the live session count — the
	// simulator's sibling of the serving plane's queue-depth gauge, so
	// a load report can show reservations held over time. nil no-ops.
	ActiveGauge *obs.Gauge
}

// NewManager returns a session manager bound to the network and engine.
func NewManager(net *topology.Network, engine eventsim.Scheduler) *Manager {
	return &Manager{
		net:      net,
		engine:   engine,
		sessions: make(map[uint64]*Session),
		byPeer:   make(map[topology.PeerID]map[uint64]*Session),
	}
}

// Counters returns cumulative outcome counts.
func (m *Manager) Counters() Counters { return m.counters }

// Active returns the number of live sessions.
func (m *Manager) Active() int { return len(m.sessions) }

// reserveComponent reserves component k's end-system resources on its
// current host. It requires the host to be alive.
func (m *Manager) reserveComponent(s *Session, k int) bool {
	if s.resHeld[k] {
		// lint:allow panic-in-library double reservation means the manager's held-flag bookkeeping is corrupted
		panic("session: double component reservation")
	}
	p, err := m.net.Peer(s.Peers[k])
	if err != nil || !p.Alive {
		return false
	}
	if !p.Ledger.Reserve(s.Instances[k].R) {
		return false
	}
	s.resHeld[k] = true
	return true
}

func (m *Manager) releaseComponent(s *Session, k int) {
	if !s.resHeld[k] {
		return
	}
	// A departed peer's ledger still exists in memory; releasing keeps the
	// session accounting conservative either way.
	if p, err := m.net.Peer(s.Peers[k]); err == nil {
		p.Ledger.Release(s.Instances[k].R)
	}
	s.resHeld[k] = false
}

func (m *Manager) reserveEdge(s *Session, k int) bool {
	if s.edgeHeld[k] {
		// lint:allow panic-in-library double reservation means the manager's held-flag bookkeeping is corrupted
		panic("session: double edge reservation")
	}
	from, to, kbps := s.edge(k)
	if from != to && !m.net.BandwidthLedger().Reserve(int(from), int(to), kbps) {
		return false
	}
	s.edgeHeld[k] = true // co-located edges "hold" a zero reservation
	return true
}

func (m *Manager) releaseEdge(s *Session, k int) {
	if !s.edgeHeld[k] {
		return
	}
	from, to, kbps := s.edge(k)
	if from != to {
		m.net.BandwidthLedger().Release(int(from), int(to), kbps)
	}
	s.edgeHeld[k] = false
}

// releaseAll returns every reservation the session still holds.
func (m *Manager) releaseAll(s *Session) {
	for k := range s.Peers {
		m.releaseEdge(s, k)
		m.releaseComponent(s, k)
	}
}

// Admit attempts to start a session for the composed path on the selected
// peers. On success the session is registered and will complete after dur
// minutes unless a hosting peer departs first. On failure everything is
// rolled back and an error describing the first unsatisfiable reservation
// is returned.
func (m *Manager) Admit(user topology.PeerID, instances []*service.Instance,
	peers []topology.PeerID, dur float64) (*Session, error) {

	if len(instances) == 0 || len(instances) != len(peers) {
		m.counters.Rejected++
		m.Obs.Rejected.Inc()
		return nil, fmt.Errorf("session: %d instances vs %d peers", len(instances), len(peers))
	}
	if dur <= 0 {
		m.counters.Rejected++
		m.Obs.Rejected.Inc()
		return nil, fmt.Errorf("session: non-positive duration %v", dur)
	}
	if up, err := m.net.Peer(user); err != nil || !up.Alive {
		m.counters.Rejected++
		m.Obs.Rejected.Inc()
		return nil, fmt.Errorf("session: user peer %d not alive", user)
	}
	// lint:allow hotalloc session admission allocates the session record; counted in the 21 allocs/op budget
	s := &Session{
		ID:        m.nextID,
		User:      user,
		Instances: instances,
		// lint:allow hotalloc admission copies the peer path it retains; counted in the budget
		Peers:    append([]topology.PeerID(nil), peers...),
		Start:    m.engine.Now(),
		Duration: dur,
		// lint:allow hotalloc per-session hold flags; counted in the budget
		resHeld: make([]bool, len(peers)),
		// lint:allow hotalloc per-session hold flags; counted in the budget
		edgeHeld: make([]bool, len(peers)),
	}

	// lint:allow hotalloc rejection-path closure shared by the admission guards; non-escaping on success
	fail := func(reason string) (*Session, error) {
		m.releaseAll(s)
		m.counters.Rejected++
		m.Obs.Rejected.Inc()
		return nil, fmt.Errorf("session: %s", reason)
	}
	for k := range peers {
		if !m.reserveComponent(s, k) {
			return fail(fmt.Sprintf("component %d: peer %d cannot host %v", k, peers[k], instances[k].R))
		}
	}
	for k := range peers {
		if !m.reserveEdge(s, k) {
			from, to, kbps := s.edge(k)
			return fail(fmt.Sprintf("edge %d→%d: %v kbps unavailable", from, to, kbps))
		}
	}

	m.nextID++
	m.sessions[s.ID] = s
	m.indexPeer(user, s)
	for _, p := range peers {
		m.indexPeer(p, s)
	}
	// lint:allow hotalloc session-expiry timer closure, one per admitted session; counted in the budget
	s.done = m.engine.ScheduleAfter(dur, func() { m.complete(s) })
	m.counters.Admitted++
	m.Obs.Admitted.Inc()
	m.ActiveGauge.Set(int64(len(m.sessions)))
	return s, nil
}

func (m *Manager) indexPeer(p topology.PeerID, s *Session) {
	set, ok := m.byPeer[p]
	if !ok {
		// lint:allow hotalloc per-peer index created on first session; reused for the peer lifetime
		set = make(map[uint64]*Session)
		m.byPeer[p] = set
	}
	set[s.ID] = s
}

func (m *Manager) unindexPeer(p topology.PeerID, s *Session) {
	if set, ok := m.byPeer[p]; ok {
		delete(set, s.ID)
		if len(set) == 0 {
			delete(m.byPeer, p)
		}
	}
}

func (m *Manager) unindex(s *Session) {
	m.unindexPeer(s.User, s)
	for _, p := range s.Peers {
		m.unindexPeer(p, s)
	}
}

func (m *Manager) complete(s *Session) {
	if s.State != Active {
		return
	}
	m.releaseAll(s)
	m.unindex(s)
	delete(m.sessions, s.ID)
	s.State = Completed
	m.counters.Completed++
	m.Obs.Completed.Inc()
	m.ActiveGauge.Set(int64(len(m.sessions)))
	m.Durations.Observe(m.engine.Now() - s.Start)
	if m.OnEnd != nil {
		m.OnEnd(s)
	}
}

func (m *Manager) failSession(s *Session) {
	if s.State != Active {
		return
	}
	m.releaseAll(s)
	m.unindex(s)
	delete(m.sessions, s.ID)
	s.State = Failed
	s.done.Cancel()
	m.counters.Failed++
	m.Obs.Failed.Inc()
	m.ActiveGauge.Set(int64(len(m.sessions)))
	m.Durations.Observe(m.engine.Now() - s.Start)
	if m.OnEnd != nil {
		m.OnEnd(s)
	}
}

// PeerDeparted fails (or, with Recovery configured, repairs) every session
// with a component on the departed peer. Call it right after
// Network.Depart.
func (m *Manager) PeerDeparted(p topology.PeerID, now float64) {
	set, ok := m.byPeer[p]
	if !ok {
		return
	}
	// Collect first: recovery and failure mutate the index. Process in ID
	// order for determinism.
	affected := make([]*Session, 0, len(set))
	for _, s := range set {
		affected = append(affected, s)
	}
	for i := 1; i < len(affected); i++ {
		for j := i; j > 0 && affected[j-1].ID > affected[j].ID; j-- {
			affected[j-1], affected[j] = affected[j], affected[j-1]
		}
	}
	for _, s := range affected {
		if s.State != Active || !s.hosts(p) {
			continue
		}
		if s.User == p {
			// The requesting user vanished; nobody to deliver to.
			m.failSession(s)
			continue
		}
		if !m.recoverSession(s, p, now) {
			m.failSession(s)
		}
	}
}

// recoverSession tries to replace every component hosted on the departed
// peer. It reports whether the session survives; when it does not, the
// caller fails the session (held-flag accounting stays consistent either
// way).
func (m *Manager) recoverSession(s *Session, departed topology.PeerID, now float64) bool {
	if m.Recovery == nil {
		return false
	}
	for k := range s.Peers {
		if s.Peers[k] != departed {
			continue
		}
		replacement, ok := m.Recovery(s, k, now)
		if !ok || replacement == departed {
			return false
		}
		if !m.moveComponent(s, k, replacement) {
			return false
		}
		s.Recovered++
		m.counters.Recoveries++
	}
	return true
}

// moveComponent re-homes component k onto peer np, adjusting end-system
// and adjacent edge reservations. On failure, released reservations stay
// released (the held flags record exactly what the session still holds)
// and the caller fails the session.
func (m *Manager) moveComponent(s *Session, k int, np topology.PeerID) bool {
	old := s.Peers[k]
	m.releaseComponent(s, k)
	m.releaseEdge(s, k)
	if k > 0 {
		m.releaseEdge(s, k-1)
	}
	s.Peers[k] = np
	if !m.reserveComponent(s, k) {
		s.Peers[k] = old
		return false
	}
	if !m.reserveEdge(s, k) {
		m.releaseComponent(s, k)
		s.Peers[k] = old
		return false
	}
	if k > 0 && !m.reserveEdge(s, k-1) {
		m.releaseEdge(s, k)
		m.releaseComponent(s, k)
		s.Peers[k] = old
		return false
	}
	// Update the peer index: drop the old host (unless it still hosts
	// another component or the user), add the new one.
	if !s.hosts(old) {
		m.unindexPeer(old, s)
	}
	m.indexPeer(np, s)
	return true
}
