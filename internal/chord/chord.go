// Package chord implements a Chord distributed hash table (Stoica et al.,
// SIGCOMM 2001) — the P2P lookup service the QSA paper invokes to discover
// candidate service instances ("the P2P lookup protocol, such as Chord or
// CAN, is invoked to retrieve the locations and QoS specifications of all
// candidate service instances", §3.2).
//
// This is an in-process simulation of the protocol: nodes are objects, a
// "hop" is one application-level forwarding step. Routing is faithful —
// each node forwards using only its own finger table and successor list,
// so lookup paths and hop counts are those of real Chord (O(log N)).
// What is simulated away is the asynchronous stabilization gossip: instead
// of stabilize()/fix_fingers() message exchanges, RefreshNode recomputes a
// node's fingers from ring ground truth. Between refreshes fingers go stale
// exactly as in a real deployment, and routing must survive that (dead
// fingers are skipped, successor lists provide the fallback path).
package chord

import (
	"fmt"
	"hash/fnv"
	"math/bits"
	"sort"

	"repro/internal/xrand"
)

// ID is a point on the 2⁶⁴ identifier ring.
type ID = uint64

// HashString maps an arbitrary string (service name, peer address) onto
// the ring with FNV-1a, the consistent-hashing step of Chord.
func HashString(s string) ID {
	h := fnv.New64a()
	// lint:allow hotalloc FNV-1a over short service-name keys; the lookup is epoch-cached so this amortizes across requests
	h.Write([]byte(s))
	return h.Sum64()
}

// between reports whether x lies in the half-open ring interval (a, b],
// handling wraparound. When a == b the interval is the whole ring.
func between(a, b, x ID) bool {
	if a < b {
		return x > a && x <= b
	}
	return x > a || x <= b
}

// Config parameterizes a Ring.
type Config struct {
	// SuccessorListLen is the length of each node's successor list (Chord's
	// r parameter); it bounds tolerance to simultaneous failures. Default 8.
	SuccessorListLen int
	// Replicas is the number of consecutive successors each data item is
	// stored on (including the owner). Default 3.
	Replicas int
	// MaxHops bounds a single lookup; beyond it the lookup falls back to a
	// linear successor walk. Default 4 * 64.
	MaxHops int
	// AutoRefreshEvery refreshes a node's routing state after it has
	// forwarded this many lookups — the traffic-proportional stand-in for
	// Chord's periodic stabilization, bounding finger staleness under
	// load. 0 selects the default 32; negative disables.
	AutoRefreshEvery int
}

func (c *Config) fillDefaults() {
	if c.SuccessorListLen == 0 {
		c.SuccessorListLen = 8
	}
	if c.Replicas == 0 {
		c.Replicas = 3
	}
	if c.MaxHops == 0 {
		c.MaxHops = 4 * 64
	}
	if c.AutoRefreshEvery == 0 {
		c.AutoRefreshEvery = 32
	}
}

// Node is one Chord participant.
type Node struct {
	id    ID
	label string
	alive bool

	fingers  []*Node // fingers[i] ≈ successor(id + 2^i); may be stale or dead
	succList []*Node // first SuccessorListLen successors; may be stale
	visits   int     // lookups forwarded since the last refresh

	store map[ID]map[string]any // key -> itemID -> value
}

// ID returns the node's ring identifier.
func (n *Node) ID() ID { return n.id }

// Label returns the external binding supplied at join (e.g. a peer address).
func (n *Node) Label() string { return n.label }

// Alive reports whether the node is still part of the ring.
func (n *Node) Alive() bool { return n.alive }

// Items returns the number of (key, item) pairs stored on this node.
func (n *Node) Items() int {
	c := 0
	for _, m := range n.store {
		c += len(m)
	}
	return c
}

// Ring is the collection of Chord nodes plus the ground-truth membership
// used by RefreshNode (the stand-in for the stabilization protocol).
type Ring struct {
	cfg    Config
	sorted []*Node      // alive nodes ordered by id
	byID   map[ID]*Node // alive nodes
	stats  Stats
}

// Stats accumulates ring-wide routing statistics.
type Stats struct {
	Lookups   uint64
	TotalHops uint64
	Fallbacks uint64 // lookups that exhausted MaxHops and walked successors
}

// NewRing returns an empty ring.
func NewRing(cfg Config) *Ring {
	cfg.fillDefaults()
	return &Ring{cfg: cfg, byID: make(map[ID]*Node)}
}

// Size returns the number of alive nodes.
func (r *Ring) Size() int { return len(r.sorted) }

// Stats returns routing statistics accumulated so far.
func (r *Ring) Stats() Stats { return r.stats }

// Join adds a node with the given id, transfers the keys it now owns from
// its successor, and refreshes its routing state. It fails on duplicate ids.
func (r *Ring) Join(label string, id ID) (*Node, error) {
	if _, dup := r.byID[id]; dup {
		return nil, fmt.Errorf("chord: id %d already on the ring", id)
	}
	n := &Node{id: id, label: label, alive: true, store: make(map[ID]map[string]any)}
	idx := sort.Search(len(r.sorted), func(i int) bool { return r.sorted[i].id >= id })
	r.sorted = append(r.sorted, nil)
	copy(r.sorted[idx+1:], r.sorted[idx:])
	r.sorted[idx] = n
	r.byID[id] = n

	// Take over keys in (pred, n] from the successor.
	if len(r.sorted) > 1 {
		succ := r.successorOf(id, true)
		pred := r.predecessorOf(id)
		for key, items := range succ.store {
			if between(pred.id, n.id, key) {
				n.store[key] = items
				delete(succ.store, key)
			}
		}
	}
	r.RefreshNode(n)
	return n, nil
}

// JoinRandom joins a node at a fresh pseudo-random id drawn from rng.
func (r *Ring) JoinRandom(label string, rng *xrand.Source) (*Node, error) {
	for tries := 0; tries < 64; tries++ {
		id := rng.Uint64()
		if _, dup := r.byID[id]; dup {
			continue
		}
		return r.Join(label, id)
	}
	return nil, fmt.Errorf("chord: could not find a free id after 64 tries")
}

// JoinBulk joins one node per label at fresh pseudo-random ids, sorting
// the ring once and refreshing all routing state once at the end,
// instead of the per-join O(N) sorted insert + refresh that makes 10⁶
// sequential joins infeasible. It draws ids from rng in exactly the
// order sequential JoinRandom calls would, so a run that populates the
// ring either way sees identical node placement.
//
// JoinBulk is for initial population only: it must run before any data
// is stored on the ring (there is nothing to transfer ownership of) and
// it returns an error if any existing node already holds items.
func (r *Ring) JoinBulk(labels []string, rng *xrand.Source) ([]*Node, error) {
	for _, n := range r.sorted {
		if len(n.store) > 0 {
			return nil, fmt.Errorf("chord: JoinBulk on a ring holding data (node %d has %d keys)", n.id, len(n.store))
		}
	}
	out := make([]*Node, 0, len(labels))
	for _, label := range labels {
		id, ok := ID(0), false
		for tries := 0; tries < 64; tries++ {
			id = rng.Uint64()
			if _, dup := r.byID[id]; !dup {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("chord: could not find a free id after 64 tries")
		}
		n := &Node{id: id, label: label, alive: true, store: make(map[ID]map[string]any)}
		r.sorted = append(r.sorted, n)
		r.byID[id] = n
		out = append(out, n)
	}
	sort.Slice(r.sorted, func(i, j int) bool { return r.sorted[i].id < r.sorted[j].id })
	r.RefreshAll()
	return out, nil
}

// Leave removes the node gracefully: its keys are handed to its successor
// before departure.
func (r *Ring) Leave(n *Node) error {
	if !n.alive {
		return fmt.Errorf("chord: node %d already gone", n.id)
	}
	if len(r.sorted) > 1 {
		succ := r.successorOf(n.id, true)
		for key, items := range n.store {
			dst, ok := succ.store[key]
			if !ok {
				dst = make(map[string]any, len(items))
				succ.store[key] = dst
			}
			for itemID, v := range items {
				dst[itemID] = v
			}
		}
	}
	r.remove(n)
	return nil
}

// Fail removes the node abruptly: its keys are lost (replicas on successors
// survive), and other nodes' fingers pointing at it go stale until their
// next refresh — the churn behaviour the QSA paper studies.
func (r *Ring) Fail(n *Node) error {
	if !n.alive {
		return fmt.Errorf("chord: node %d already gone", n.id)
	}
	r.remove(n)
	return nil
}

func (r *Ring) remove(n *Node) {
	n.alive = false
	idx := sort.Search(len(r.sorted), func(i int) bool { return r.sorted[i].id >= n.id })
	if idx < len(r.sorted) && r.sorted[idx] == n {
		r.sorted = append(r.sorted[:idx], r.sorted[idx+1:]...)
	}
	delete(r.byID, n.id)
	n.store = make(map[ID]map[string]any)
}

// successorOf returns the first alive node with id >= target (wrapping).
// When excludeSelf is true a node exactly at target is skipped.
func (r *Ring) successorOf(target ID, excludeSelf bool) *Node {
	if len(r.sorted) == 0 {
		return nil
	}
	idx := sort.Search(len(r.sorted), func(i int) bool { return r.sorted[i].id >= target })
	if excludeSelf {
		idx = sort.Search(len(r.sorted), func(i int) bool { return r.sorted[i].id > target })
	}
	if idx == len(r.sorted) {
		idx = 0
	}
	return r.sorted[idx]
}

// predecessorOf returns the last alive node with id < target (wrapping).
func (r *Ring) predecessorOf(target ID) *Node {
	if len(r.sorted) == 0 {
		return nil
	}
	idx := sort.Search(len(r.sorted), func(i int) bool { return r.sorted[i].id >= target })
	if idx == 0 {
		return r.sorted[len(r.sorted)-1]
	}
	return r.sorted[idx-1]
}

// Owner returns the ground-truth owner of key: successor(key).
func (r *Ring) Owner(key ID) *Node { return r.successorOf(key, false) }

// RefreshNode recomputes n's finger table and successor list from ring
// ground truth — the simulation stand-in for Chord's periodic
// stabilize/fix_fingers exchanges. Call it periodically; between calls the
// node routes with whatever (possibly stale) state it has.
func (r *Ring) RefreshNode(n *Node) {
	if !n.alive || len(r.sorted) == 0 {
		return
	}
	if n.fingers == nil {
		n.fingers = make([]*Node, 64)
	}
	for i := 0; i < 64; i++ {
		start := n.id + (ID(1) << uint(i)) // wraps mod 2^64 naturally
		n.fingers[i] = r.successorOf(start, false)
	}
	n.succList = n.succList[:0]
	cur := n.id
	for len(n.succList) < r.cfg.SuccessorListLen && len(n.succList) < len(r.sorted)-1 {
		s := r.successorOf(cur, true)
		if s == n {
			break
		}
		n.succList = append(n.succList, s)
		cur = s.id
	}
}

// RefreshAll refreshes every alive node. It computes exactly the state
// per-node RefreshNode calls would (the equivalence is pinned by a
// test), but in O(64·N) instead of O(64·N·log N): for each finger level
// the targets id+2^i are monotone in ring order except for one wrap, so
// a single successor pointer sweeps the sorted ring once per level.
func (r *Ring) RefreshAll() {
	n := len(r.sorted)
	if n == 0 {
		return
	}
	for _, nd := range r.sorted {
		if nd.fingers == nil {
			nd.fingers = make([]*Node, 64)
		}
	}
	for i := 0; i < 64; i++ {
		off := ID(1) << uint(i)
		// Targets wrap past 2⁶⁴ exactly when id > ^off; those nodes have
		// the smallest targets and are swept first.
		wrapFrom := sort.Search(n, func(j int) bool { return r.sorted[j].id > ^off })
		p := 0
		assign := func(j int) {
			start := r.sorted[j].id + off // wraps mod 2^64 naturally
			for p < n && r.sorted[p].id < start {
				p++
			}
			if p == n {
				r.sorted[j].fingers[i] = r.sorted[0]
			} else {
				r.sorted[j].fingers[i] = r.sorted[p]
			}
		}
		for j := wrapFrom; j < n; j++ {
			assign(j)
		}
		for j := 0; j < wrapFrom; j++ {
			assign(j)
		}
	}
	k := r.cfg.SuccessorListLen
	if k > n-1 {
		k = n - 1
	}
	for j, nd := range r.sorted {
		nd.succList = nd.succList[:0]
		for t := 1; t <= k; t++ {
			nd.succList = append(nd.succList, r.sorted[(j+t)%n])
		}
	}
}

// firstAliveSuccessor returns the first alive entry of n's successor list,
// or nil when the whole list is dead/stale.
func (n *Node) firstAliveSuccessor() *Node {
	for _, s := range n.succList {
		if s.alive {
			return s
		}
	}
	return nil
}

// closestPrecedingFinger returns the alive finger of n that most closely
// precedes key, or nil when no finger makes progress.
func (n *Node) closestPrecedingFinger(key ID) *Node {
	for i := len(n.fingers) - 1; i >= 0; i-- {
		f := n.fingers[i]
		if f == nil || !f.alive || f == n {
			continue
		}
		if between(n.id, key, f.id) && f.id != key {
			// f strictly precedes key going around from n.
			if f.id != n.id {
				return f
			}
		}
	}
	return nil
}

// Lookup routes from start to the owner of key using finger tables,
// returning the owner and the number of application-level hops taken.
// It fails only when the ring is empty or start is dead.
func (r *Ring) Lookup(start *Node, key ID) (*Node, int, error) {
	if len(r.sorted) == 0 {
		return nil, 0, fmt.Errorf("chord: empty ring")
	}
	if start == nil || !start.alive {
		return nil, 0, fmt.Errorf("chord: lookup from dead node")
	}
	cur := start
	hops := 0
	for hops < r.cfg.MaxHops {
		r.touch(cur)
		succ := cur.firstAliveSuccessor()
		if succ == nil {
			// Isolated routing state (e.g. single node or fully stale
			// list): consult ground truth as last resort — equivalent to a
			// node falling back to its bootstrap contact.
			succ = r.successorOf(cur.id, true)
		}
		if succ == nil || succ == cur { // single-node ring
			r.finish(hops)
			return cur, hops, nil
		}
		if between(cur.id, succ.id, key) {
			// cur believes succ owns the key, but cur's successor pointer
			// may be stale (a node joined in between). As in Chord's
			// find_successor, the candidate confirms ownership and the
			// query walks forward until the true owner is reached.
			hops++
			for succ != r.Owner(key) {
				succ = r.successorOf(succ.id, true)
				hops++
				if hops >= r.cfg.MaxHops+len(r.sorted) {
					return nil, hops, fmt.Errorf("chord: owner walk for %d diverged", key)
				}
			}
			r.finish(hops)
			return succ, hops, nil
		}
		next := cur.closestPrecedingFinger(key)
		if next == nil || next == cur {
			next = succ
		}
		cur = next
		hops++
	}
	// Fingers too stale to converge: linear successor walk from cur.
	r.stats.Fallbacks++
	for walked := 0; walked <= len(r.sorted); walked++ {
		succ := r.successorOf(cur.id, true)
		hops++
		if between(cur.id, succ.id, key) {
			r.finish(hops)
			return succ, hops, nil
		}
		cur = succ
	}
	return nil, hops, fmt.Errorf("chord: lookup for %d failed to converge", key)
}

func (r *Ring) finish(hops int) {
	r.stats.Lookups++
	r.stats.TotalHops += uint64(hops)
}

// touch counts a forwarded lookup and refreshes the node's routing state
// when it has carried enough traffic since the last refresh.
func (r *Ring) touch(n *Node) {
	if r.cfg.AutoRefreshEvery <= 0 {
		return
	}
	n.visits++
	if n.visits >= r.cfg.AutoRefreshEvery {
		r.RefreshNode(n)
		n.visits = 0
	}
}

// replicaTargets returns the owner and up to Replicas−1 distinct alive
// successors of owner.
func (r *Ring) replicaTargets(owner *Node) []*Node {
	targets := []*Node{owner}
	cur := owner.id
	for len(targets) < r.cfg.Replicas && len(targets) < len(r.sorted) {
		s := r.successorOf(cur, true)
		if s == owner {
			break
		}
		targets = append(targets, s)
		cur = s.id
	}
	return targets
}

// Put routes from start to the owner of key and stores (itemID → value)
// there and on Replicas−1 successors. It returns the routing hop count.
func (r *Ring) Put(start *Node, key ID, itemID string, value any) (int, error) {
	owner, hops, err := r.Lookup(start, key)
	if err != nil {
		return hops, err
	}
	for _, t := range r.replicaTargets(owner) {
		m, ok := t.store[key]
		if !ok {
			m = make(map[string]any)
			t.store[key] = m
		}
		m[itemID] = value
	}
	return hops, nil
}

// Get routes from start to the owner of key and returns the stored items.
// If the owner has none (it may have just joined and not yet received
// re-replication), the replicas are consulted.
func (r *Ring) Get(start *Node, key ID) (map[string]any, int, error) {
	owner, hops, err := r.Lookup(start, key)
	if err != nil {
		return nil, hops, err
	}
	for i, t := range r.replicaTargets(owner) {
		if i > 0 {
			hops++ // consulting a replica costs a hop; the owner is free
		}
		if m, ok := t.store[key]; ok && len(m) > 0 {
			out := make(map[string]any, len(m))
			for k, v := range m {
				out[k] = v
			}
			return out, hops, nil
		}
	}
	return map[string]any{}, hops, nil
}

// Update routes from start to the owner of key and atomically applies fn
// to the current value stored under itemID (nil when absent); the returned
// value replaces it on the owner and its replicas. Returning nil deletes
// the item. It returns the routing hop count.
func (r *Ring) Update(start *Node, key ID, itemID string, fn func(prev any) any) (int, error) {
	owner, hops, err := r.Lookup(start, key)
	if err != nil {
		return hops, err
	}
	var prev any
	if m, ok := owner.store[key]; ok {
		prev = m[itemID]
	}
	next := fn(prev)
	for _, t := range r.replicaTargets(owner) {
		m, ok := t.store[key]
		if next == nil {
			if ok {
				delete(m, itemID)
				if len(m) == 0 {
					delete(t.store, key)
				}
			}
			continue
		}
		if !ok {
			m = make(map[string]any)
			t.store[key] = m
		}
		m[itemID] = next
	}
	return hops, nil
}

// Remove deletes itemID under key from the owner and its replicas.
func (r *Ring) Remove(start *Node, key ID, itemID string) (int, error) {
	owner, hops, err := r.Lookup(start, key)
	if err != nil {
		return hops, err
	}
	for _, t := range r.replicaTargets(owner) {
		if m, ok := t.store[key]; ok {
			delete(m, itemID)
			if len(m) == 0 {
				delete(t.store, key)
			}
		}
	}
	return hops, nil
}

// MeanHops returns the average hops per completed lookup.
func (s Stats) MeanHops() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.TotalHops) / float64(s.Lookups)
}

// Log2Size returns ceil(log2(n)) for hop-bound assertions in tests.
func Log2Size(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}
