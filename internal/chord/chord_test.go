package chord

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func buildRing(t *testing.T, seed uint64, n int) (*Ring, []*Node) {
	t.Helper()
	r := NewRing(Config{})
	rng := xrand.New(seed)
	nodes := make([]*Node, 0, n)
	for i := 0; i < n; i++ {
		nd, err := r.JoinRandom(fmt.Sprintf("peer-%d", i), rng)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
	}
	r.RefreshAll()
	return r, nodes
}

func TestBetween(t *testing.T) {
	cases := []struct {
		a, b, x ID
		want    bool
	}{
		{10, 20, 15, true},
		{10, 20, 20, true},  // inclusive right
		{10, 20, 10, false}, // exclusive left
		{10, 20, 25, false},
		{20, 10, 25, true}, // wraparound
		{20, 10, 5, true},
		{20, 10, 15, false},
		{7, 7, 99, true}, // whole ring
	}
	for _, c := range cases {
		if got := between(c.a, c.b, c.x); got != c.want {
			t.Errorf("between(%d,%d,%d) = %v, want %v", c.a, c.b, c.x, got, c.want)
		}
	}
}

func TestHashStringStable(t *testing.T) {
	if HashString("video-server") != HashString("video-server") {
		t.Fatal("hash must be deterministic")
	}
	if HashString("a") == HashString("b") {
		t.Fatal("distinct names should hash apart")
	}
}

func TestLookupFindsGroundTruthOwner(t *testing.T) {
	r, nodes := buildRing(t, 1, 128)
	rng := xrand.New(9)
	for i := 0; i < 500; i++ {
		key := rng.Uint64()
		start := nodes[rng.Intn(len(nodes))]
		got, _, err := r.Lookup(start, key)
		if err != nil {
			t.Fatal(err)
		}
		if want := r.Owner(key); got != want {
			t.Fatalf("Lookup(%d) = node %d, ground truth %d", key, got.id, want.id)
		}
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	r, nodes := buildRing(t, 2, 1024)
	rng := xrand.New(5)
	var total int
	const lookups = 2000
	for i := 0; i < lookups; i++ {
		_, hops, err := r.Lookup(nodes[rng.Intn(len(nodes))], rng.Uint64())
		if err != nil {
			t.Fatal(err)
		}
		total += hops
	}
	mean := float64(total) / lookups
	// Chord's expected path length is ~ (1/2) log2 N = 5 for N=1024; allow
	// generous slack but catch linear behaviour.
	if mean > 2*float64(Log2Size(1024)) {
		t.Fatalf("mean hops = %v, not logarithmic for N=1024", mean)
	}
	if r.Stats().Lookups != lookups {
		t.Fatalf("stats recorded %d lookups", r.Stats().Lookups)
	}
}

func TestSingleNodeRing(t *testing.T) {
	r := NewRing(Config{})
	n, err := r.Join("solo", 42)
	if err != nil {
		t.Fatal(err)
	}
	got, hops, err := r.Lookup(n, 7)
	if err != nil || got != n {
		t.Fatalf("single-node lookup = %v, %v", got, err)
	}
	if hops != 0 {
		t.Fatalf("single-node lookup hops = %d", hops)
	}
}

func TestDuplicateIDRejected(t *testing.T) {
	r := NewRing(Config{})
	if _, err := r.Join("a", 7); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Join("b", 7); err == nil {
		t.Fatal("duplicate id must be rejected")
	}
}

func TestPutGetRemove(t *testing.T) {
	r, nodes := buildRing(t, 3, 64)
	key := HashString("video-server")
	if _, err := r.Put(nodes[0], key, "inst-1", "spec-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put(nodes[10], key, "inst-2", "spec-2"); err != nil {
		t.Fatal(err)
	}
	got, _, err := r.Get(nodes[33], key)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got["inst-1"] != "spec-1" || got["inst-2"] != "spec-2" {
		t.Fatalf("Get = %v", got)
	}
	if _, err := r.Remove(nodes[5], key, "inst-1"); err != nil {
		t.Fatal(err)
	}
	got, _, _ = r.Get(nodes[60], key)
	if len(got) != 1 {
		t.Fatalf("after Remove, Get = %v", got)
	}
}

func TestKeysMoveOnJoin(t *testing.T) {
	r := NewRing(Config{Replicas: 1})
	a, _ := r.Join("a", 100)
	r.RefreshAll()
	// Key 50 is owned by a (only node).
	if _, err := r.Put(a, 50, "x", 1); err != nil {
		t.Fatal(err)
	}
	// A node at 60 takes over ownership of key 50.
	b, _ := r.Join("b", 60)
	r.RefreshAll()
	if owner := r.Owner(50); owner != b {
		t.Fatalf("owner of 50 = %d, want 60", owner.id)
	}
	got, _, err := r.Get(a, 50)
	if err != nil || got["x"] != 1 {
		t.Fatalf("item did not move with ownership: %v, %v", got, err)
	}
	if _, ok := a.store[50]; ok {
		t.Fatal("old owner kept the key after handoff")
	}
}

func TestGracefulLeaveKeepsData(t *testing.T) {
	r, nodes := buildRing(t, 4, 32)
	key := HashString("translator")
	r.Put(nodes[0], key, "i", "v")
	owner := r.Owner(key)
	if err := r.Leave(owner); err != nil {
		t.Fatal(err)
	}
	r.RefreshAll()
	var start *Node
	for _, n := range nodes {
		if n.Alive() {
			start = n
			break
		}
	}
	got, _, err := r.Get(start, key)
	if err != nil || got["i"] != "v" {
		t.Fatalf("data lost on graceful leave: %v, %v", got, err)
	}
	if err := r.Leave(owner); err == nil {
		t.Fatal("double leave must fail")
	}
}

func TestAbruptFailureSurvivedByReplicas(t *testing.T) {
	r, nodes := buildRing(t, 5, 64) // Replicas default 3
	key := HashString("image-enhancer")
	r.Put(nodes[0], key, "i", "v")
	owner := r.Owner(key)
	if err := r.Fail(owner); err != nil {
		t.Fatal(err)
	}
	r.RefreshAll()
	var start *Node
	for _, n := range nodes {
		if n.Alive() {
			start = n
			break
		}
	}
	got, _, err := r.Get(start, key)
	if err != nil || got["i"] != "v" {
		t.Fatalf("data lost despite replication: %v, %v", got, err)
	}
}

func TestRoutingSurvivesStaleFingers(t *testing.T) {
	r, nodes := buildRing(t, 6, 256)
	// Kill a quarter of the ring WITHOUT refreshing survivors: their
	// fingers now dangle. Lookups must still converge.
	rng := xrand.New(7)
	killed := 0
	for _, n := range nodes {
		if n.Alive() && rng.Bool(0.25) {
			r.Fail(n)
			killed++
		}
	}
	if killed == 0 {
		t.Skip("nothing killed")
	}
	for i := 0; i < 300; i++ {
		var start *Node
		for start == nil || !start.Alive() {
			start = nodes[rng.Intn(len(nodes))]
		}
		key := rng.Uint64()
		got, _, err := r.Lookup(start, key)
		if err != nil {
			t.Fatalf("lookup with stale fingers failed: %v", err)
		}
		if want := r.Owner(key); got != want {
			t.Fatalf("stale lookup found %d, ground truth %d", got.id, want.id)
		}
	}
}

func TestLookupFromDeadNode(t *testing.T) {
	r, nodes := buildRing(t, 8, 8)
	r.Fail(nodes[0])
	if _, _, err := r.Lookup(nodes[0], 1); err == nil {
		t.Fatal("lookup from dead node must fail")
	}
}

func TestEmptyRingLookup(t *testing.T) {
	r := NewRing(Config{})
	if _, _, err := r.Lookup(nil, 1); err == nil {
		t.Fatal("lookup on empty ring must fail")
	}
}

func TestJoinRandomCollisionRetry(t *testing.T) {
	r := NewRing(Config{})
	rng := xrand.New(42)
	for i := 0; i < 100; i++ {
		if _, err := r.JoinRandom("n", rng); err != nil {
			t.Fatal(err)
		}
	}
	if r.Size() != 100 {
		t.Fatalf("Size = %d", r.Size())
	}
}

// Property: for any set of node ids, every key's lookup agrees with the
// sorted-ring ground truth owner.
func TestPropertyLookupMatchesOwner(t *testing.T) {
	check := func(rawIDs []uint16, keys []uint64) bool {
		if len(rawIDs) == 0 {
			return true
		}
		r := NewRing(Config{})
		seen := map[ID]bool{}
		var any *Node
		for _, raw := range rawIDs {
			id := ID(raw)
			if seen[id] {
				continue
			}
			seen[id] = true
			n, err := r.Join("n", id)
			if err != nil {
				return false
			}
			any = n
		}
		r.RefreshAll()
		for _, k := range keys {
			got, _, err := r.Lookup(any, k)
			if err != nil || got != r.Owner(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: items put under arbitrary keys are retrievable from any start
// node, before and after a graceful leave of the owner.
func TestPropertyDataDurability(t *testing.T) {
	check := func(keys []uint64) bool {
		r := NewRing(Config{})
		rng := xrand.New(11)
		var nodes []*Node
		for i := 0; i < 40; i++ {
			n, err := r.JoinRandom("n", rng)
			if err != nil {
				return false
			}
			nodes = append(nodes, n)
		}
		r.RefreshAll()
		for i, k := range keys {
			if _, err := r.Put(nodes[i%len(nodes)], k, fmt.Sprintf("it%d", i), i); err != nil {
				return false
			}
		}
		for i, k := range keys {
			got, _, err := r.Get(nodes[(i*7)%len(nodes)], k)
			if err != nil {
				return false
			}
			if v, ok := got[fmt.Sprintf("it%d", i)]; !ok || v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLookupCorrectDespiteStaleSuccessors(t *testing.T) {
	// Join 200 nodes one at a time WITHOUT refreshing the earlier ones:
	// their successor lists miss the late joiners, the situation that made
	// lookups land on the pre-join owner. The final-step owner walk must
	// still deliver the true owner from any start node.
	r := NewRing(Config{AutoRefreshEvery: -1}) // no refresh at all
	rng := xrand.New(33)
	var nodes []*Node
	for i := 0; i < 200; i++ {
		n, err := r.JoinRandom("n", rng)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	for i := 0; i < 300; i++ {
		key := rng.Uint64()
		start := nodes[rng.Intn(len(nodes))]
		got, _, err := r.Lookup(start, key)
		if err != nil {
			t.Fatal(err)
		}
		if want := r.Owner(key); got != want {
			t.Fatalf("stale-successor lookup found %d, true owner %d", got.id, want.id)
		}
	}
}

func TestAutoRefreshBoundsStaleness(t *testing.T) {
	// With traffic-triggered refresh, sustained lookups after heavy churn
	// must repair routing state (fewer hops than the never-refresh ring).
	mk := func(refresh int) float64 {
		r := NewRing(Config{AutoRefreshEvery: refresh})
		rng := xrand.New(44)
		var nodes []*Node
		for i := 0; i < 300; i++ {
			n, _ := r.JoinRandom("n", rng)
			nodes = append(nodes, n)
		}
		r.RefreshAll()
		for i := 0; i < 150; i++ { // heavy churn, survivors unrefreshed
			for _, n := range nodes {
				if n.Alive() {
					r.Fail(n)
					break
				}
			}
			r.JoinRandom("n", rng)
		}
		var start *Node
		for _, n := range nodes {
			if n.Alive() {
				start = n
				break
			}
		}
		for i := 0; i < 2000; i++ {
			r.Lookup(start, rng.Uint64())
		}
		return r.Stats().MeanHops()
	}
	withRefresh := mk(8)
	noRefresh := mk(-1)
	if withRefresh >= noRefresh {
		t.Fatalf("auto-refresh did not reduce mean hops: %v vs %v", withRefresh, noRefresh)
	}
}

func TestMeanHopsAndLog2(t *testing.T) {
	var s Stats
	if s.MeanHops() != 0 {
		t.Fatal("MeanHops on zero lookups must be 0")
	}
	s = Stats{Lookups: 4, TotalHops: 10}
	if s.MeanHops() != 2.5 {
		t.Fatalf("MeanHops = %v", s.MeanHops())
	}
	for n, want := range map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 1024: 10, 1025: 11} {
		if got := Log2Size(n); got != want {
			t.Errorf("Log2Size(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestFallbackWalkWhenFingersUseless(t *testing.T) {
	// MaxHops of 1 forces the linear successor-walk fallback; lookups must
	// still return the true owner and count a fallback.
	r := NewRing(Config{MaxHops: 1, AutoRefreshEvery: -1})
	rng := xrand.New(55)
	var nodes []*Node
	for i := 0; i < 64; i++ {
		n, err := r.JoinRandom("n", rng)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	r.RefreshAll()
	for i := 0; i < 50; i++ {
		key := rng.Uint64()
		got, _, err := r.Lookup(nodes[i%len(nodes)], key)
		if err != nil {
			t.Fatal(err)
		}
		if got != r.Owner(key) {
			t.Fatal("fallback walk returned the wrong owner")
		}
	}
	if r.Stats().Fallbacks == 0 {
		t.Fatal("no fallbacks recorded despite MaxHops=1")
	}
}

func TestOpsFromDeadNodeFail(t *testing.T) {
	r, nodes := buildRing(t, 77, 8)
	r.Fail(nodes[0])
	if _, err := r.Put(nodes[0], 1, "i", 1); err == nil {
		t.Fatal("Put from dead node must fail")
	}
	if _, _, err := r.Get(nodes[0], 1); err == nil {
		t.Fatal("Get from dead node must fail")
	}
	if _, err := r.Remove(nodes[0], 1, "i"); err == nil {
		t.Fatal("Remove from dead node must fail")
	}
	if _, err := r.Update(nodes[0], 1, "i", func(any) any { return 1 }); err == nil {
		t.Fatal("Update from dead node must fail")
	}
	if err := r.Fail(nodes[0]); err == nil {
		t.Fatal("double Fail must error")
	}
}

func TestRemoveLastItemCleansKey(t *testing.T) {
	r, nodes := buildRing(t, 78, 16)
	key := HashString("solo")
	r.Put(nodes[0], key, "only", 1)
	r.Remove(nodes[1], key, "only")
	owner := r.Owner(key)
	if owner.Items() != 0 {
		t.Fatalf("owner still stores %d items", owner.Items())
	}
}

func TestNodeAccessors(t *testing.T) {
	r := NewRing(Config{})
	n, _ := r.Join("peer-9", 77)
	if n.ID() != 77 || n.Label() != "peer-9" || !n.Alive() {
		t.Fatalf("accessors: %d %q %v", n.ID(), n.Label(), n.Alive())
	}
	if n.Items() != 0 {
		t.Fatal("fresh node must store nothing")
	}
	r.Put(n, 5, "a", 1)
	if n.Items() != 1 {
		t.Fatalf("Items = %d", n.Items())
	}
}

// refreshAllSlow is the pre-optimization RefreshAll: one RefreshNode per
// node. It is the oracle for the linear-time sweep.
func refreshAllSlow(r *Ring) {
	for _, n := range r.sorted {
		r.RefreshNode(n)
	}
}

// TestRefreshAllMatchesPerNodeRefresh pins the metamorphic equivalence:
// the O(64·N) RefreshAll sweep must compute exactly the fingers and
// successor lists that per-node RefreshNode calls produce, across ring
// sizes that exercise the wrap split and short rings.
func TestRefreshAllMatchesPerNodeRefresh(t *testing.T) {
	for _, n := range []int{1, 2, 3, 9, 64, 257} {
		rng := xrand.New(uint64(n)*77 + 1)
		r := NewRing(Config{})
		for i := 0; i < n; i++ {
			if _, err := r.JoinRandom(fmt.Sprintf("p%d", i), rng); err != nil {
				t.Fatal(err)
			}
		}
		refreshAllSlow(r)
		wantFingers := make([][]*Node, n)
		wantSucc := make([][]*Node, n)
		for j, nd := range r.sorted {
			wantFingers[j] = append([]*Node(nil), nd.fingers...)
			wantSucc[j] = append([]*Node(nil), nd.succList...)
		}
		r.RefreshAll()
		for j, nd := range r.sorted {
			for i := range nd.fingers {
				if nd.fingers[i] != wantFingers[j][i] {
					t.Fatalf("n=%d node %d finger %d: fast %v want %v", n, j, i, nd.fingers[i].id, wantFingers[j][i].id)
				}
			}
			if len(nd.succList) != len(wantSucc[j]) {
				t.Fatalf("n=%d node %d succList len %d want %d", n, j, len(nd.succList), len(wantSucc[j]))
			}
			for i := range nd.succList {
				if nd.succList[i] != wantSucc[j][i] {
					t.Fatalf("n=%d node %d succ %d mismatch", n, j, i)
				}
			}
		}
	}
}

// TestJoinBulkMatchesSequentialJoins pins that bulk population draws the
// same ids and ends with the same routing state as sequential JoinRandom
// calls followed by a full refresh.
func TestJoinBulkMatchesSequentialJoins(t *testing.T) {
	const n = 120
	labels := make([]string, n)
	for i := range labels {
		labels[i] = fmt.Sprintf("p%d", i)
	}

	seq := NewRing(Config{})
	rngA := xrand.New(31)
	for _, l := range labels {
		if _, err := seq.JoinRandom(l, rngA); err != nil {
			t.Fatal(err)
		}
	}
	seq.RefreshAll()

	bulk := NewRing(Config{})
	rngB := xrand.New(31)
	nodes, err := bulk.JoinBulk(labels, rngB)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != n {
		t.Fatalf("JoinBulk returned %d nodes, want %d", len(nodes), n)
	}
	if rngA.Uint64() != rngB.Uint64() {
		t.Fatal("bulk join consumed a different number of rng draws than sequential joins")
	}
	if seq.Size() != bulk.Size() {
		t.Fatalf("sizes differ: %d vs %d", seq.Size(), bulk.Size())
	}
	for j := range seq.sorted {
		a, b := seq.sorted[j], bulk.sorted[j]
		if a.id != b.id || a.label != b.label {
			t.Fatalf("node %d: (%d,%s) vs (%d,%s)", j, a.id, a.label, b.id, b.label)
		}
		for i := range a.fingers {
			if a.fingers[i].id != b.fingers[i].id {
				t.Fatalf("node %d finger %d differs", j, i)
			}
		}
	}
}

// TestJoinBulkRefusesDataBearingRing pins the precondition: bulk join is
// for initial population only.
func TestJoinBulkRefusesDataBearingRing(t *testing.T) {
	rng := xrand.New(3)
	r := NewRing(Config{})
	a, err := r.JoinRandom("a", rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put(a, 42, "item", "v"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.JoinBulk([]string{"b"}, rng); err == nil {
		t.Fatal("JoinBulk on a data-bearing ring should fail")
	}
}
