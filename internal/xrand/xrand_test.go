package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child and parent must not emit the same stream.
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			t.Fatalf("parent and child emitted identical value at %d", i)
		}
	}
}

func TestSplitLabeledStable(t *testing.T) {
	a := New(7).SplitLabeled("workload")
	b := New(7).SplitLabeled("workload")
	c := New(7).SplitLabeled("churn")
	if a.Uint64() != b.Uint64() {
		t.Fatal("same label should derive same stream")
	}
	a2 := New(7).SplitLabeled("workload")
	if a2.Uint64() == c.Uint64() {
		t.Fatal("different labels should derive different streams")
	}
}

func TestSplitLabeledDoesNotConsumeParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.SplitLabeled("x")
	if a.Uint64() != b.Uint64() {
		t.Fatal("SplitLabeled must not advance the parent stream")
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	s := New(11)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := s.IntRange(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("IntRange(5,9) = %d", v)
		}
		seen[v] = true
	}
	for v := 5; v <= 9; v++ {
		if !seen[v] {
			t.Errorf("value %d never produced", v)
		}
	}
}

func TestIntRangeSingle(t *testing.T) {
	s := New(1)
	if v := s.IntRange(4, 4); v != 4 {
		t.Fatalf("IntRange(4,4) = %d", v)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(6)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of Float64 = %v, want ~0.5", mean)
	}
}

func TestExpMean(t *testing.T) {
	s := New(8)
	const rate = 2.0
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Exp(rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("Exp(%v) mean = %v, want %v", rate, mean, 1/rate)
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(10)
	for _, mean := range []float64{0.5, 3, 20, 200} {
		var sum float64
		const n = 50000
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Errorf("Poisson(%v) empirical mean = %v", mean, got)
		}
	}
}

func TestPoissonZero(t *testing.T) {
	s := New(1)
	if s.Poisson(0) != 0 || s.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive mean must be 0")
	}
}

func TestNormMoments(t *testing.T) {
	s := New(12)
	var sum, sq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sq += v * v
	}
	mean, variance := sum/n, sq/n
	if math.Abs(mean) > 0.02 {
		t.Fatalf("Norm mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("Norm variance = %v", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		p := New(seed).Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	s := New(77)
	xs := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 28 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestPickEmpty(t *testing.T) {
	if New(1).Pick(0) != -1 {
		t.Fatal("Pick(0) must be -1")
	}
}

func TestWeightedPick(t *testing.T) {
	s := New(13)
	w := []float64{0, 1, 3, 0}
	counts := make([]int, len(w))
	const n = 100000
	for i := 0; i < n; i++ {
		idx := s.WeightedPick(w)
		if idx < 0 || idx >= len(w) {
			t.Fatalf("index %d out of range", idx)
		}
		counts[idx]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Fatalf("zero-weight entries picked: %v", counts)
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}

func TestWeightedPickDegenerate(t *testing.T) {
	s := New(1)
	if s.WeightedPick(nil) != -1 {
		t.Fatal("nil weights must be -1")
	}
	if s.WeightedPick([]float64{0, 0}) != -1 {
		t.Fatal("all-zero weights must be -1")
	}
	if s.WeightedPick([]float64{-1, 2}) != 1 {
		t.Fatal("negative weights must be skipped")
	}
}

func TestMix64Bijective(t *testing.T) {
	// Spot-check injectivity on a window of inputs.
	seen := make(map[uint64]uint64, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision: Mix64(%d) == Mix64(%d)", i, prev)
		}
		seen[h] = i
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(21)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate = %v", p)
	}
}

func TestMixStringBoundariesAndDeterminism(t *testing.T) {
	if MixString(1, "abc") != MixString(1, "abc") {
		t.Fatal("MixString not deterministic")
	}
	if MixString(MixString(1, "ab"), "c") == MixString(MixString(1, "a"), "bc") {
		t.Fatal("field boundary ambiguity: (ab,c) collides with (a,bc)")
	}
	if MixString(1, "") == 1 {
		t.Fatal("empty string must still perturb the state")
	}
	if MixString(1, "x") == MixString(2, "x") {
		t.Fatal("seed ignored")
	}
}
