// Package xrand provides a small, fast, deterministic random number
// generator used throughout the QSA simulator.
//
// Every run of the simulator derives all of its randomness from a single
// user-provided seed, which makes experiments reproducible bit-for-bit.
// The generator is splitmix64 (Steele, Lea, Flood: "Fast Splittable
// Pseudorandom Number Generators", OOPSLA 2014), chosen because it is
// splittable: independent child streams can be derived for sub-systems
// (catalog generation, churn, workload, per-peer jitter) so that changing
// how much randomness one sub-system consumes does not perturb the others.
package xrand

import "math"

// Source is a deterministic pseudo-random source. The zero value is a valid
// source seeded with 0; prefer New to make seeding explicit.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// golden gamma, the splitmix64 increment.
const gamma = 0x9E3779B97F4A7C15

// Uint64 returns the next pseudo-random 64-bit value.
func (s *Source) Uint64() uint64 {
	s.state += gamma
	return Mix64(s.state)
}

// Mix64 is the splitmix64 finalizer: a bijective mixing function on 64-bit
// integers. It is exported because the topology package uses it to derive
// stable pairwise link properties without storing an O(N²) matrix.
func Mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// MixString absorbs s into the hash state h byte-wise, closing with a
// length-keyed finalizer so field boundaries are unambiguous:
// MixString(MixString(h,"ab"),"c") differs from
// MixString(MixString(h,"a"),"bc"). It is the stateless companion of
// SplitLabeled, used where per-(label, counter) values must be derived
// without allocating a Source — e.g. per-link fault verdicts and
// per-target retry jitter in the network prototype.
func MixString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = Mix64(h ^ uint64(s[i]))
	}
	return Mix64(h ^ uint64(len(s))*gamma)
}

// MixIndex derives an independent value from hash state h and a counter
// i, keyed so consecutive indices land far apart. It is the numeric
// companion of MixString: the sharded simulator uses it to give every
// request its own self-contained random stream seeded by
// (run salt, request index), so speculative preparation never has to
// consume — or contend on — a shared source.
func MixIndex(h, i uint64) uint64 {
	return Mix64(h ^ Mix64((i+1)*gamma))
}

// Split derives an independent child source. The child's stream is
// statistically independent of the parent's subsequent output.
func (s *Source) Split() *Source {
	return &Source{state: Mix64(s.Uint64())}
}

// SplitLabeled derives an independent child source whose stream depends on
// both the parent seed and the label, without consuming parent state. Use
// it to give stable per-subsystem streams.
func (s *Source) SplitLabeled(label string) *Source {
	h := s.state
	for i := 0; i < len(label); i++ {
		h = Mix64(h ^ uint64(label[i])*gamma)
	}
	return &Source{state: Mix64(h)}
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		// lint:allow panic-in-library mirrors the documented math/rand Intn contract
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation is overkill here;
	// modulo bias is negligible for n << 2^63 and determinism is what we
	// actually care about.
	return int(s.Uint64() % uint64(n))
}

// IntRange returns a uniform integer in [lo, hi] inclusive. It panics if
// hi < lo.
func (s *Source) IntRange(lo, hi int) int {
	if hi < lo {
		// lint:allow panic-in-library mirrors the documented math/rand-style bounds contract
		panic("xrand: IntRange with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// FloatRange returns a uniform value in [lo, hi).
func (s *Source) FloatRange(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (s *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		// lint:allow panic-in-library mirrors the documented math/rand-style parameter contract
		panic("xrand: Exp with non-positive rate")
	}
	u := s.Float64()
	// Guard against log(0): Float64 is in [0,1), so 1-u is in (0,1].
	return -math.Log(1-u) / rate
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method for small means and a normal approximation for large ones.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		// Normal approximation with continuity correction; adequate for
		// workload generation where mean is a request count per tick.
		n := int(math.Round(mean + math.Sqrt(mean)*s.Norm()))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Norm returns a standard normally distributed value (Box-Muller).
func (s *Source) Norm() float64 {
	u1 := 1 - s.Float64() // in (0,1]
	u2 := s.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	return s.PermInto(nil, n)
}

// PermInto fills dst with a pseudo-random permutation of [0, n), growing
// it only when its capacity is insufficient, and returns it. It consumes
// exactly the same stream as Perm.
func (s *Source) PermInto(dst []int, n int) []int {
	if cap(dst) < n {
		dst = make([]int, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		j := s.Intn(i + 1)
		dst[i] = dst[j]
		dst[j] = i
	}
	return dst
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly chosen index in [0, n), or -1 when n == 0.
func (s *Source) Pick(n int) int {
	if n == 0 {
		return -1
	}
	return s.Intn(n)
}

// WeightedPick returns an index chosen with probability proportional to
// weights[i]. Non-positive weights are treated as zero. It returns -1 when
// all weights are zero or the slice is empty.
func (s *Source) WeightedPick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return -1
	}
	x := s.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
