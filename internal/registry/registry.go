// Package registry implements the service discovery layer of QSA: a
// soft-state registry of (service instance, provider peer) bindings built
// on the Chord DHT.
//
// This is the paper's step two of on-demand service composition (§3.2):
// "the P2P lookup protocol, such as Chord or CAN, is invoked to retrieve
// the locations (i.e., IP addresses) and QoS specifications (Qin, Qout, R)
// of all candidate service instances, according to the abstract service
// path."
//
// Providers register themselves under the hash of the abstract service
// name; registrations are soft state with a TTL and must be refreshed
// periodically, so a departed peer's bindings age out on their own —
// mirroring the paper's soft-state neighbor lists (§3.3). Between the
// departure and the TTL expiry a lookup may still return the dead
// provider; peer selection has to cope (and the churn experiments measure
// exactly that window).
package registry

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/chord"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// providerReg is one soft-state provider registration.
type providerReg struct {
	pid     topology.PeerID
	expires float64
}

// InstanceEntry is the registry record for one service instance: its
// QoS/resource specification plus the soft-state provider set. Provider
// registrations are kept as a contiguous slice sorted by ascending PeerID
// (the registry's deterministic order), with a side index for O(1)
// refresh — the hot paths (Providers, expiry pruning) are straight array
// walks with no map iteration and no per-call sort.
type InstanceEntry struct {
	Inst  *service.Instance
	provs []providerReg           // ascending pid
	idx   map[topology.PeerID]int // pid -> index in provs
}

// upsert records (or refreshes) a provider registration.
func (e *InstanceEntry) upsert(p topology.PeerID, expires float64) {
	if i, ok := e.idx[p]; ok {
		e.provs[i].expires = expires
		return
	}
	at := sort.Search(len(e.provs), func(i int) bool { return e.provs[i].pid >= p })
	e.provs = append(e.provs, providerReg{})
	copy(e.provs[at+1:], e.provs[at:])
	e.provs[at] = providerReg{pid: p, expires: expires}
	e.idx[p] = at
	for i := at + 1; i < len(e.provs); i++ {
		e.idx[e.provs[i].pid] = i
	}
}

// drop removes a provider registration if present.
func (e *InstanceEntry) drop(p topology.PeerID) {
	i, ok := e.idx[p]
	if !ok {
		return
	}
	copy(e.provs[i:], e.provs[i+1:])
	e.provs = e.provs[:len(e.provs)-1]
	delete(e.idx, p)
	for ; i < len(e.provs); i++ {
		e.idx[e.provs[i].pid] = i
	}
}

// pruneExpired drops registrations whose expiry is at or before now.
func (e *InstanceEntry) pruneExpired(now float64) {
	kept := e.provs[:0]
	for _, r := range e.provs {
		if r.expires > now {
			kept = append(kept, r)
		} else {
			delete(e.idx, r.pid)
		}
	}
	if len(kept) < len(e.provs) {
		e.provs = kept
		for i, r := range e.provs {
			e.idx[r.pid] = i
		}
	}
}

// Providers appends to dst the peers whose registration is live at time
// now, in ascending PeerID order (deterministic), and returns dst.
func (e *InstanceEntry) Providers(now float64, dst []topology.PeerID) []topology.PeerID {
	for _, r := range e.provs {
		if r.expires > now {
			dst = append(dst, r.pid)
		}
	}
	return dst
}

// ProviderCount returns the number of live registrations at time now.
func (e *InstanceEntry) ProviderCount(now float64) int {
	c := 0
	for _, r := range e.provs {
		if r.expires > now {
			c++
		}
	}
	return c
}

// minExpiry returns the earliest live-registration expiry after now, or
// +Inf when none is live — the time at which this entry's provider set
// next changes without a registry mutation.
func (e *InstanceEntry) minExpiry(now float64) float64 {
	min := math.Inf(1)
	for _, r := range e.provs {
		if r.expires > now && r.expires < min {
			min = r.expires
		}
	}
	return min
}

// Config parameterizes the registry.
type Config struct {
	// TTL is the soft-state lifetime of one registration in minutes;
	// providers must refresh within it. Default 10.
	TTL float64
	// Chord configures the default underlying DHT ring; ignored when DHT
	// is set explicitly.
	Chord chord.Config
	// DHT overrides the lookup substrate (default: a Chord ring built
	// from the Chord config; internal/can provides the alternative).
	DHT DHT
	// DisableCache turns off the epoch-keyed lookup cache, forcing every
	// Lookup through the DHT. Results are byte-identical either way (the
	// differential suite asserts this); only routing statistics differ.
	DisableCache bool
}

func (c *Config) fillDefaults() {
	if c.TTL == 0 {
		c.TTL = 10
	}
}

// cachedLookup is one epoch-cache slot: the Lookup result for a service
// name, valid while the registry epoch is unchanged AND the virtual clock
// has not crossed the earliest provider expiry in the result (the TTL
// horizon) — past either boundary the uncached result could differ.
type cachedLookup struct {
	epoch      uint64
	validUntil float64 // earliest provider expiry across the entries
	entries    []*InstanceEntry
}

// Registry binds peers to DHT nodes and stores instance/provider records.
type Registry struct {
	cfg   Config
	dht   DHT
	nodes map[topology.PeerID]DHTNode
	rng   *xrand.Source

	// epoch is the monotonic mutation counter: every Register, Unregister,
	// peer join and peer leave bumps it, invalidating the lookup cache.
	epoch uint64
	cache map[service.Name]*cachedLookup

	cacheHits, cacheMisses uint64

	// lookupMu serializes Lookup. Chord lookups mutate routing state (the
	// traffic-proportional auto-refresh), so when the sharded simulator
	// speculatively prepares discovery on lane workers, concurrent Lookups
	// must not interleave. Everything else on the registry stays
	// single-goroutine (commit-phase only) and unguarded.
	lookupMu sync.Mutex

	// Obs mirrors cache activity into a metrics registry when wired; the
	// zero value no-ops.
	Obs obs.DiscoveryCounters
}

// New returns an empty registry.
func New(cfg Config, seed uint64) *Registry {
	cfg.fillDefaults()
	dht := cfg.DHT
	if dht == nil {
		dht = NewChordDHT(cfg.Chord)
	}
	return &Registry{
		cfg:   cfg,
		dht:   dht,
		nodes: make(map[topology.PeerID]DHTNode),
		rng:   xrand.New(seed).SplitLabeled("registry"),
		cache: make(map[service.Name]*cachedLookup),
	}
}

// Stats exposes the lookup substrate's routing statistics plus the
// registry's own cache effectiveness counters. Lookups/TotalHops count
// real DHT traversals only; cache hits pay no hops and are reported
// separately.
func (r *Registry) Stats() LookupStats {
	s := r.dht.Stats()
	s.CacheHits = r.cacheHits
	s.CacheMisses = r.cacheMisses
	s.Epoch = r.epoch
	return s
}

// Epoch returns the current mutation epoch.
func (r *Registry) Epoch() uint64 { return r.epoch }

// bumpEpoch advances the mutation epoch, invalidating every cache slot.
func (r *Registry) bumpEpoch() {
	r.epoch++
	r.Obs.EpochBumps.Inc()
}

// Stabilize asks the lookup substrate to bring all routing state to
// convergence. Call it after bulk joins (initial grid setup): a real
// deployment would have run its stabilization protocol continuously, so a
// freshly *observed* grid starts converged. Substrates without the hook
// (CAN keeps exact neighbor state by construction) ignore it.
func (r *Registry) Stabilize() {
	if s, ok := r.dht.(interface{ Stabilize() }); ok {
		s.Stabilize()
	}
}

// TTL returns the soft-state registration lifetime.
func (r *Registry) TTL() float64 { return r.cfg.TTL }

// AddPeer joins the peer's DHT node. Idempotent additions are an error:
// the caller owns peer lifecycle.
func (r *Registry) AddPeer(p topology.PeerID) error {
	if _, ok := r.nodes[p]; ok {
		return fmt.Errorf("registry: peer %d already joined", p)
	}
	n, err := r.dht.Join(fmt.Sprintf("peer-%d", p), r.rng)
	if err != nil {
		return err
	}
	r.nodes[p] = n
	r.bumpEpoch() // the join may have re-homed stored keys
	return nil
}

// BulkJoiner is the optional DHT fast path for initial population: join
// one node per label, drawing placement from rng exactly as sequential
// Join calls would, with routing state brought to convergence once at
// the end instead of per join.
type BulkJoiner interface {
	JoinBulk(labels []string, rng *xrand.Source) ([]DHTNode, error)
}

// AddPeers joins many peers' DHT nodes at once. Substrates implementing
// BulkJoiner (Chord) avoid the per-join O(N) insert + refresh that makes
// a 10⁶-peer population infeasible; others fall back to sequential
// AddPeer. The epoch advances once per peer either way, so epoch counts
// match the sequential path exactly.
func (r *Registry) AddPeers(ps []topology.PeerID) error {
	bulk, ok := r.dht.(BulkJoiner)
	if !ok {
		for _, p := range ps {
			if err := r.AddPeer(p); err != nil {
				return err
			}
		}
		return nil
	}
	labels := make([]string, len(ps))
	for i, p := range ps {
		if _, dup := r.nodes[p]; dup {
			return fmt.Errorf("registry: peer %d already joined", p)
		}
		labels[i] = fmt.Sprintf("peer-%d", p)
	}
	nodes, err := bulk.JoinBulk(labels, r.rng)
	if err != nil {
		return err
	}
	for i, p := range ps {
		r.nodes[p] = nodes[i]
		r.bumpEpoch()
	}
	return nil
}

// RemovePeer removes the peer's DHT node — gracefully (keys handed over)
// or abruptly (fail, as under churn).
func (r *Registry) RemovePeer(p topology.PeerID, graceful bool) error {
	n, ok := r.nodes[p]
	if !ok {
		return fmt.Errorf("registry: unknown peer %d", p)
	}
	delete(r.nodes, p)
	r.bumpEpoch() // an abrupt removal may lose stored data
	return r.dht.Remove(n, graceful)
}

// node returns the DHT node of a joined peer.
func (r *Registry) node(p topology.PeerID) (DHTNode, error) {
	n, ok := r.nodes[p]
	if !ok || !n.Alive() {
		return nil, fmt.Errorf("registry: peer %d not on the DHT", p)
	}
	return n, nil
}

func serviceKey(name service.Name) chord.ID { return chord.HashString(string(name)) }

// Register records (or refreshes) provider as hosting inst, from the
// perspective of peer from (which pays the routing hops). The registration
// expires TTL minutes after now unless refreshed. Expired co-registrations
// of the same instance are pruned opportunistically.
func (r *Registry) Register(from topology.PeerID, inst *service.Instance, provider topology.PeerID, now float64) error {
	if err := inst.Validate(); err != nil {
		return err
	}
	n, err := r.node(from)
	if err != nil {
		return err
	}
	r.bumpEpoch()
	_, err = r.dht.Update(n, serviceKey(inst.Service), inst.ID, func(prev any) any {
		e, ok := prev.(*InstanceEntry)
		if !ok || e == nil {
			e = &InstanceEntry{Inst: inst, idx: make(map[topology.PeerID]int)}
		}
		e.pruneExpired(now)
		e.upsert(provider, now+r.cfg.TTL)
		return e
	})
	return err
}

// Unregister drops provider's registration for inst immediately (graceful
// provider shutdown; abrupt departures just let the TTL lapse).
func (r *Registry) Unregister(from topology.PeerID, inst *service.Instance, provider topology.PeerID) error {
	n, err := r.node(from)
	if err != nil {
		return err
	}
	r.bumpEpoch()
	_, err = r.dht.Update(n, serviceKey(inst.Service), inst.ID, func(prev any) any {
		e, ok := prev.(*InstanceEntry)
		if !ok || e == nil {
			return nil
		}
		e.drop(provider)
		if len(e.provs) == 0 {
			return nil
		}
		return e
	})
	return err
}

// Lookup retrieves all candidate instances of the abstract service, with
// their live provider sets, by routing a DHT query from peer from. Entries
// whose provider sets are entirely expired are omitted. The result is
// sorted by instance ID (deterministic). hops is the DHT routing cost.
//
// Results are served from the epoch cache when no registry mutation has
// occurred since the last real lookup for the same name AND the clock has
// not crossed the result's earliest provider expiry (so a soft-state
// lapse can never be masked). Cache hits pay zero hops and are counted in
// LookupStats.CacheHits, never in Lookups. The returned slice is shared
// with the cache and other callers: treat it as immutable.
func (r *Registry) Lookup(from topology.PeerID, name service.Name, now float64) (entries []*InstanceEntry, hops int, err error) {
	r.lookupMu.Lock()
	defer r.lookupMu.Unlock()
	n, err := r.node(from)
	if err != nil {
		return nil, 0, err
	}
	if !r.cfg.DisableCache {
		if c, ok := r.cache[name]; ok && c.epoch == r.epoch && now < c.validUntil {
			r.cacheHits++
			r.Obs.CacheHits.Inc()
			return c.entries, 0, nil
		}
		r.cacheMisses++
		r.Obs.CacheMisses.Inc()
	}
	r.Obs.Lookups.Inc()
	items, hops, err := r.dht.Get(n, serviceKey(name))
	if err != nil {
		return nil, hops, err
	}
	validUntil := math.Inf(1)
	for _, v := range items {
		e, ok := v.(*InstanceEntry)
		if !ok || e == nil {
			continue
		}
		if e.ProviderCount(now) == 0 {
			continue
		}
		if m := e.minExpiry(now); m < validUntil {
			validUntil = m
		}
		entries = append(entries, e)
	}
	// lint:allow hotalloc cache-miss rebuild; epoch-cached discovery amortizes this across steady-state requests
	sort.Slice(entries, func(i, j int) bool { return entries[i].Inst.ID < entries[j].Inst.ID })
	if !r.cfg.DisableCache {
		// lint:allow hotalloc cache-miss rebuild; epoch-cached discovery amortizes this across steady-state requests
		r.cache[name] = &cachedLookup{epoch: r.epoch, validUntil: validUntil, entries: entries}
	}
	return entries, hops, nil
}

// PeerCount returns the number of peers currently joined to the DHT.
func (r *Registry) PeerCount() int { return len(r.nodes) }
