// Package registry implements the service discovery layer of QSA: a
// soft-state registry of (service instance, provider peer) bindings built
// on the Chord DHT.
//
// This is the paper's step two of on-demand service composition (§3.2):
// "the P2P lookup protocol, such as Chord or CAN, is invoked to retrieve
// the locations (i.e., IP addresses) and QoS specifications (Qin, Qout, R)
// of all candidate service instances, according to the abstract service
// path."
//
// Providers register themselves under the hash of the abstract service
// name; registrations are soft state with a TTL and must be refreshed
// periodically, so a departed peer's bindings age out on their own —
// mirroring the paper's soft-state neighbor lists (§3.3). Between the
// departure and the TTL expiry a lookup may still return the dead
// provider; peer selection has to cope (and the churn experiments measure
// exactly that window).
package registry

import (
	"fmt"
	"sort"

	"repro/internal/chord"
	"repro/internal/service"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// InstanceEntry is the registry record for one service instance: its
// QoS/resource specification plus the soft-state provider set.
type InstanceEntry struct {
	Inst      *service.Instance
	providers map[topology.PeerID]float64 // peer -> expiry time
}

// Providers appends to dst the peers whose registration is live at time
// now, in ascending PeerID order (deterministic), and returns dst.
func (e *InstanceEntry) Providers(now float64, dst []topology.PeerID) []topology.PeerID {
	for p, exp := range e.providers {
		if exp > now {
			dst = append(dst, p)
		}
	}
	sort.Slice(dst, func(i, j int) bool { return dst[i] < dst[j] })
	return dst
}

// ProviderCount returns the number of live registrations at time now.
func (e *InstanceEntry) ProviderCount(now float64) int {
	c := 0
	for _, exp := range e.providers {
		if exp > now {
			c++
		}
	}
	return c
}

// Config parameterizes the registry.
type Config struct {
	// TTL is the soft-state lifetime of one registration in minutes;
	// providers must refresh within it. Default 10.
	TTL float64
	// Chord configures the default underlying DHT ring; ignored when DHT
	// is set explicitly.
	Chord chord.Config
	// DHT overrides the lookup substrate (default: a Chord ring built
	// from the Chord config; internal/can provides the alternative).
	DHT DHT
}

func (c *Config) fillDefaults() {
	if c.TTL == 0 {
		c.TTL = 10
	}
}

// Registry binds peers to DHT nodes and stores instance/provider records.
type Registry struct {
	cfg   Config
	dht   DHT
	nodes map[topology.PeerID]DHTNode
	rng   *xrand.Source
}

// New returns an empty registry.
func New(cfg Config, seed uint64) *Registry {
	cfg.fillDefaults()
	dht := cfg.DHT
	if dht == nil {
		dht = NewChordDHT(cfg.Chord)
	}
	return &Registry{
		cfg:   cfg,
		dht:   dht,
		nodes: make(map[topology.PeerID]DHTNode),
		rng:   xrand.New(seed).SplitLabeled("registry"),
	}
}

// Stats exposes the lookup substrate's routing statistics.
func (r *Registry) Stats() LookupStats { return r.dht.Stats() }

// Stabilize asks the lookup substrate to bring all routing state to
// convergence. Call it after bulk joins (initial grid setup): a real
// deployment would have run its stabilization protocol continuously, so a
// freshly *observed* grid starts converged. Substrates without the hook
// (CAN keeps exact neighbor state by construction) ignore it.
func (r *Registry) Stabilize() {
	if s, ok := r.dht.(interface{ Stabilize() }); ok {
		s.Stabilize()
	}
}

// TTL returns the soft-state registration lifetime.
func (r *Registry) TTL() float64 { return r.cfg.TTL }

// AddPeer joins the peer's DHT node. Idempotent additions are an error:
// the caller owns peer lifecycle.
func (r *Registry) AddPeer(p topology.PeerID) error {
	if _, ok := r.nodes[p]; ok {
		return fmt.Errorf("registry: peer %d already joined", p)
	}
	n, err := r.dht.Join(fmt.Sprintf("peer-%d", p), r.rng)
	if err != nil {
		return err
	}
	r.nodes[p] = n
	return nil
}

// RemovePeer removes the peer's DHT node — gracefully (keys handed over)
// or abruptly (fail, as under churn).
func (r *Registry) RemovePeer(p topology.PeerID, graceful bool) error {
	n, ok := r.nodes[p]
	if !ok {
		return fmt.Errorf("registry: unknown peer %d", p)
	}
	delete(r.nodes, p)
	return r.dht.Remove(n, graceful)
}

// node returns the DHT node of a joined peer.
func (r *Registry) node(p topology.PeerID) (DHTNode, error) {
	n, ok := r.nodes[p]
	if !ok || !n.Alive() {
		return nil, fmt.Errorf("registry: peer %d not on the DHT", p)
	}
	return n, nil
}

func serviceKey(name service.Name) chord.ID { return chord.HashString(string(name)) }

// Register records (or refreshes) provider as hosting inst, from the
// perspective of peer from (which pays the routing hops). The registration
// expires TTL minutes after now unless refreshed. Expired co-registrations
// of the same instance are pruned opportunistically.
func (r *Registry) Register(from topology.PeerID, inst *service.Instance, provider topology.PeerID, now float64) error {
	if err := inst.Validate(); err != nil {
		return err
	}
	n, err := r.node(from)
	if err != nil {
		return err
	}
	_, err = r.dht.Update(n, serviceKey(inst.Service), inst.ID, func(prev any) any {
		e, ok := prev.(*InstanceEntry)
		if !ok || e == nil {
			e = &InstanceEntry{Inst: inst, providers: make(map[topology.PeerID]float64)}
		}
		for p, exp := range e.providers {
			if exp <= now {
				delete(e.providers, p)
			}
		}
		e.providers[provider] = now + r.cfg.TTL
		return e
	})
	return err
}

// Unregister drops provider's registration for inst immediately (graceful
// provider shutdown; abrupt departures just let the TTL lapse).
func (r *Registry) Unregister(from topology.PeerID, inst *service.Instance, provider topology.PeerID) error {
	n, err := r.node(from)
	if err != nil {
		return err
	}
	_, err = r.dht.Update(n, serviceKey(inst.Service), inst.ID, func(prev any) any {
		e, ok := prev.(*InstanceEntry)
		if !ok || e == nil {
			return nil
		}
		delete(e.providers, provider)
		if len(e.providers) == 0 {
			return nil
		}
		return e
	})
	return err
}

// Lookup retrieves all candidate instances of the abstract service, with
// their live provider sets, by routing a DHT query from peer from. Entries
// whose provider sets are entirely expired are omitted. The result is
// sorted by instance ID (deterministic). hops is the DHT routing cost.
func (r *Registry) Lookup(from topology.PeerID, name service.Name, now float64) (entries []*InstanceEntry, hops int, err error) {
	n, err := r.node(from)
	if err != nil {
		return nil, 0, err
	}
	items, hops, err := r.dht.Get(n, serviceKey(name))
	if err != nil {
		return nil, hops, err
	}
	for _, v := range items {
		e, ok := v.(*InstanceEntry)
		if !ok || e == nil {
			continue
		}
		if e.ProviderCount(now) == 0 {
			continue
		}
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Inst.ID < entries[j].Inst.ID })
	return entries, hops, nil
}

// PeerCount returns the number of peers currently joined to the DHT.
func (r *Registry) PeerCount() int { return len(r.nodes) }
