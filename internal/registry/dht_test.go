package registry

import (
	"testing"

	"repro/internal/can"
	"repro/internal/chord"
	"repro/internal/topology"
)

// substrates returns both lookup services the paper names, so the registry
// behaviour tests run against each.
func substrates() map[string]func() DHT {
	return map[string]func() DHT{
		"chord": func() DHT { return NewChordDHT(chord.Config{}) },
		"can":   func() DHT { return NewCANDHT(can.Config{}) },
	}
}

func TestRegistryOverBothSubstrates(t *testing.T) {
	for name, mk := range substrates() {
		t.Run(name, func(t *testing.T) {
			r := New(Config{DHT: mk()}, 1)
			for p := 0; p < 30; p++ {
				if err := r.AddPeer(topology.PeerID(p)); err != nil {
					t.Fatal(err)
				}
			}
			inst := testInst("svc", 0)
			if err := r.Register(3, inst, 3, 0); err != nil {
				t.Fatal(err)
			}
			if err := r.Register(9, inst, 9, 0); err != nil {
				t.Fatal(err)
			}
			entries, hops, err := r.Lookup(17, "svc", 1)
			if err != nil {
				t.Fatal(err)
			}
			if hops < 0 {
				t.Fatalf("hops = %d", hops)
			}
			if len(entries) != 1 || entries[0].ProviderCount(1) != 2 {
				t.Fatalf("entries = %v", entries)
			}
			// Abrupt removal of a non-owner peer must not lose the record.
			if err := r.RemovePeer(20, false); err != nil {
				t.Fatal(err)
			}
			entries, _, err = r.Lookup(5, "svc", 1)
			if err != nil || len(entries) != 1 {
				t.Fatalf("after failure: %v, %v", entries, err)
			}
			if r.Stats().Lookups == 0 {
				t.Fatal("no lookups recorded")
			}
		})
	}
}

func TestLookupStatsMeanHops(t *testing.T) {
	var s LookupStats
	if s.MeanHops() != 0 {
		t.Fatal("MeanHops on empty stats must be 0")
	}
	s = LookupStats{Lookups: 5, TotalHops: 20}
	if s.MeanHops() != 4 {
		t.Fatalf("MeanHops = %v", s.MeanHops())
	}
}
