package registry

import (
	"repro/internal/can"
	"repro/internal/chord"
	"repro/internal/xrand"
)

// DHT abstracts the P2P lookup service the registry is built on. The
// paper invokes "the P2P lookup protocol, such as Chord or CAN" (§3.2);
// both are implemented in this repository (internal/chord,
// internal/can) and satisfy this interface through thin adapters.
type DHT interface {
	// Join adds a node for the given label using rng for placement and
	// returns its handle.
	Join(label string, rng *xrand.Source) (DHTNode, error)
	// Remove removes a node — gracefully (handing its data over) or
	// abruptly (data lost up to replication).
	Remove(n DHTNode, graceful bool) error
	// Update routes from start to the owner of key and atomically applies
	// fn to the value stored under itemID (nil when absent); the returned
	// value replaces it (nil deletes). It returns the routing hop count.
	Update(start DHTNode, key uint64, itemID string, fn func(prev any) any) (int, error)
	// Get routes from start to the owner of key and returns the stored
	// items and the routing hop count.
	Get(start DHTNode, key uint64) (map[string]any, int, error)
	// Stats returns cumulative routing statistics.
	Stats() LookupStats
}

// DHTNode is one participant handle issued by a DHT.
type DHTNode interface {
	// Alive reports whether the node is still part of the overlay.
	Alive() bool
}

// LookupStats is the DHT-independent routing statistics view. Lookups and
// TotalHops count real DHT traversals; the remaining fields are filled by
// the registry's epoch cache (DHT adapters leave them zero) — cache hits
// skip routing entirely and are never counted as Lookups, so hop averages
// stay attributed to real traversals only.
type LookupStats struct {
	Lookups   uint64
	TotalHops uint64

	CacheHits   uint64 // lookups served from the registry's epoch cache
	CacheMisses uint64 // lookups that fell through to the DHT
	Epoch       uint64 // the registry's mutation epoch at snapshot time
}

// MeanHops returns the average routing hops per lookup.
func (s LookupStats) MeanHops() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.TotalHops) / float64(s.Lookups)
}

// ChordDHT adapts a chord.Ring to the DHT interface.
type ChordDHT struct {
	Ring *chord.Ring
}

// NewChordDHT wraps a fresh Chord ring with the given configuration.
func NewChordDHT(cfg chord.Config) *ChordDHT {
	return &ChordDHT{Ring: chord.NewRing(cfg)}
}

// Join implements DHT.
func (c *ChordDHT) Join(label string, rng *xrand.Source) (DHTNode, error) {
	return c.Ring.JoinRandom(label, rng)
}

// JoinBulk implements BulkJoiner: initial population in O(N log N)
// total (one sort + one linear refresh sweep) instead of O(N²).
func (c *ChordDHT) JoinBulk(labels []string, rng *xrand.Source) ([]DHTNode, error) {
	nodes, err := c.Ring.JoinBulk(labels, rng)
	if err != nil {
		return nil, err
	}
	out := make([]DHTNode, len(nodes))
	for i, n := range nodes {
		out[i] = n
	}
	return out, nil
}

// Remove implements DHT.
func (c *ChordDHT) Remove(n DHTNode, graceful bool) error {
	node := n.(*chord.Node)
	if graceful {
		return c.Ring.Leave(node)
	}
	return c.Ring.Fail(node)
}

// Update implements DHT.
func (c *ChordDHT) Update(start DHTNode, key uint64, itemID string, fn func(any) any) (int, error) {
	return c.Ring.Update(start.(*chord.Node), key, itemID, fn)
}

// Get implements DHT.
func (c *ChordDHT) Get(start DHTNode, key uint64) (map[string]any, int, error) {
	return c.Ring.Get(start.(*chord.Node), key)
}

// Stats implements DHT.
func (c *ChordDHT) Stats() LookupStats {
	s := c.Ring.Stats()
	return LookupStats{Lookups: s.Lookups, TotalHops: s.TotalHops}
}

// Stabilize implements the optional stabilization hook: all nodes refresh
// their routing state from ring ground truth, the converged end state of
// Chord's stabilize/fix_fingers rounds.
func (c *ChordDHT) Stabilize() { c.Ring.RefreshAll() }

// CANDHT adapts a can.Space to the DHT interface — the paper's alternative
// lookup substrate.
type CANDHT struct {
	Space *can.Space
}

// NewCANDHT wraps a fresh CAN space with the given configuration.
func NewCANDHT(cfg can.Config) *CANDHT {
	return &CANDHT{Space: can.NewSpace(cfg)}
}

// Join implements DHT.
func (c *CANDHT) Join(label string, rng *xrand.Source) (DHTNode, error) {
	return c.Space.Join(label, rng)
}

// Remove implements DHT.
func (c *CANDHT) Remove(n DHTNode, graceful bool) error {
	node := n.(*can.Node)
	if graceful {
		return c.Space.Leave(node)
	}
	return c.Space.Fail(node)
}

// Update implements DHT.
func (c *CANDHT) Update(start DHTNode, key uint64, itemID string, fn func(any) any) (int, error) {
	return c.Space.Update(start.(*can.Node), key, itemID, fn)
}

// Get implements DHT.
func (c *CANDHT) Get(start DHTNode, key uint64) (map[string]any, int, error) {
	return c.Space.Get(start.(*can.Node), key)
}

// Stats implements DHT.
func (c *CANDHT) Stats() LookupStats {
	s := c.Space.Stats()
	return LookupStats{Lookups: s.Lookups, TotalHops: s.TotalHops}
}
